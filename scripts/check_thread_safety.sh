#!/usr/bin/env bash
# Vets the host-parallel ExperimentSuite executor under ThreadSanitizer:
# builds the tree with SCALECHECK_SANITIZE=thread and runs the concurrency
# tests (the suite grid at jobs=4, the raw ThreadPool, and the shared
# CalcOutputCache hammering).
#
#   scripts/check_thread_safety.sh [build-dir]       # default build-tsan/
#   SCALECHECK_SANITIZE=address scripts/check_thread_safety.sh build-asan
set -euo pipefail

cd "$(dirname "$0")/.."
SANITIZER="${SCALECHECK_SANITIZE:-thread}"
BUILD_DIR="${1:-build-${SANITIZER:0:1}san}"

cmake -B "$BUILD_DIR" -S . -DSCALECHECK_SANITIZE="$SANITIZER" >/dev/null
cmake --build "$BUILD_DIR" --target scalecheck_suite_test common_thread_pool_test -j"$(nproc)"

echo "== common_thread_pool_test ($SANITIZER) =="
"$BUILD_DIR/tests/common_thread_pool_test"
echo "== scalecheck_suite_test ($SANITIZER) =="
"$BUILD_DIR/tests/scalecheck_suite_test"

echo "OK: parallel executor is clean under ${SANITIZER} sanitizer"
