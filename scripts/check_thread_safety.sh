#!/usr/bin/env bash
# Vets the host-parallel ExperimentSuite executor and the fault-injection
# subsystem under sanitizers: builds the tree with SCALECHECK_SANITIZE and
# runs the concurrency tests (the suite grid at jobs=4, the raw ThreadPool,
# the shared CalcOutputCache hammering) plus the faults tests (crash/restart
# lifecycle, injector scheduling, jobs>1 determinism under chaos).
#
#   scripts/check_thread_safety.sh [build-dir]       # default build-tsan/
#   SCALECHECK_SANITIZE=address scripts/check_thread_safety.sh build-asan
#
# CI runs both legs: TSan for races in the parallel executor, ASan for
# lifetime bugs in the crash/restart path (a restarted node re-allocates its
# runtime state; ASan proves nothing dangles across the Crash/Restart seam).
set -euo pipefail

cd "$(dirname "$0")/.."
SANITIZER="${SCALECHECK_SANITIZE:-thread}"
BUILD_DIR="${1:-build-${SANITIZER:0:1}san}"

# scalecheck_selfheal_test exercises the watchdog/retry/quarantine path with
# jobs=4 (aborted Simulator::Run + MemoStore snapshot restore across worker
# threads); sim_fidelity_guard_test and pil_replay_policy_test cover the guard
# probes and the strict-abort seam those retries depend on;
# faults_search_test drives the ChaosSearch executor (per-generation suite
# grids at jobs=4, including the jobs=1-vs-4 byte-identity check);
# transport_conformance_test and real_cluster_test exercise the threaded
# TcpTransport/RealClock carrier (socket reader threads, the timer thread,
# and the per-node monitor) — TSan over those is the race gate for src/net;
# net_link_filter_test hammers the TcpTransport link-filter handoff
# (concurrent SetLinkFilter/SeverConnsTo against sending threads — the
# real-carrier fault-injection path).
TARGETS=(scalecheck_suite_test common_thread_pool_test
         faults_test faults_determinism_test sim_sync_crash_test
         scalecheck_selfheal_test sim_fidelity_guard_test
         pil_replay_policy_test pil_memo_corruption_test
         faults_search_test
         transport_conformance_test real_cluster_test
         net_link_filter_test
         kv_merkle_test kv_repair_test)

cmake -B "$BUILD_DIR" -S . -DSCALECHECK_SANITIZE="$SANITIZER" >/dev/null
cmake --build "$BUILD_DIR" --target "${TARGETS[@]}" -j"$(nproc)"

for t in "${TARGETS[@]}"; do
  echo "== $t ($SANITIZER) =="
  "$BUILD_DIR/tests/$t"
done

# Perf bench in smoke mode: no wall-clock thresholds, just the deterministic
# operation-count assertions (same-seed runs must produce byte-identical
# RunResult JSON through the pooled/incremental hot paths) — under the
# sanitizer, which is exactly where lifetime bugs in payload recycling or the
# event-slot slab would surface.
cmake --build "$BUILD_DIR" --target perf_simcore -j"$(nproc)"
echo "== perf_simcore --smoke ($SANITIZER) =="
"$BUILD_DIR/bench/perf_simcore" --smoke

echo "OK: parallel executor, fault injection, and perf smoke are clean under ${SANITIZER} sanitizer"
