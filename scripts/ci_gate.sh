#!/usr/bin/env bash
# The tier-1 CI gate: everything a change must pass before merge.
#
#   scripts/ci_gate.sh [build-dir]        # default build/
#
# Four legs:
#   1. full build + ctest (the tier-1 suite),
#   2. perf_simcore --smoke (deterministic hot-path assertions, no wall-clock
#      thresholds, so it cannot flake on loaded CI hosts) plus the N=256
#      events/s floor (--floor, trips only on a >20% regression vs the
#      recorded reference, so ordinary host noise passes),
#   3. fidelity-guard exit-code contract: scalecheck_cli must exit 3 — and
#      only 3 — when a run's verdict is invalid, so downstream automation can
#      reject untrustworthy colocation results without parsing JSON,
#   4. ChaosSearch smoke: a pinned-seed bounded search must find the planted
#      left-join bug, shrink it to a <=3-event reproducer, and the emitted
#      repro artifact must replay to the identical violation (exit 4),
#   5. crash-durability smoke: a pinned-seed crash-restart FaultPlan under
#      QUORUM KV load with the WAL on must lose zero acked writes (exit 0);
#      then a pinned-seed search against the planted ack-before-sync bug
#      must find kv-durability, shrink to <=3 events, and the repro artifact
#      must replay to the identical violation (exit 4),
#   6. anti-entropy smoke: a pinned-seed crash-restart plan with repair on
#      must converge the diverged replicas (replica-convergence armed, exit
#      0, repair sessions actually opened); then a pinned-seed search
#      against the planted repair-storm bug must find replica-convergence,
#      shrink to <=3 events, and the repro artifact must replay to the
#      identical violation (exit 4); finally the same planted storm on the
#      REAL socket carrier must trip the session-rate budget facet (exit 4),
#   7. real-mode smoke: the same protocol code on REAL localhost TCP sockets
#      (--mode=real) must gossip an 8-node cluster to convergence under a
#      wall-clock timeout, complete a WAL-backed quorum KV smoke (group
#      commit over real sockets), and exit 0,
#   8. real-mode chaos smoke: replay the islanding FaultPlan against the
#      socket carrier (--mode=real --faults=island) — the link filter must
#      actually drop frames, and after the heal the gossip-to-unreachable
#      escape hatch must reconverge the cluster (0 islanded endpoints)
#      within the partition-heal bound.
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"

echo "== build =="
cmake -B "$BUILD_DIR" -S . >/dev/null
cmake --build "$BUILD_DIR" -j"$(nproc)"

echo "== tier-1 tests =="
ctest --test-dir "$BUILD_DIR" --output-on-failure -j"$(nproc)"

echo "== perf smoke =="
"$BUILD_DIR/bench/perf_simcore" --smoke

echo "== perf floor (N=256 events/s) =="
"$BUILD_DIR/bench/perf_simcore" --floor

echo "== fidelity-guard exit codes =="
CLI="$BUILD_DIR/examples/scalecheck_cli"

# A comfortable run must exit 0 with an ok verdict.
if ! "$CLI" --bug=C3831 --mode=colo --nodes=16 --json >/dev/null; then
  echo "FAIL: healthy run did not exit 0" >&2
  exit 1
fi

# An impossible lateness budget must produce an invalid verdict and exit 3.
set +e
"$CLI" --bug=C3831 --mode=colo --nodes=96 --guard-lateness-p99-ms=1 --json \
  > /dev/null
code=$?
set -e
if [[ "$code" -ne 3 ]]; then
  echo "FAIL: invalid-verdict run exited $code, expected 3" >&2
  exit 1
fi

# Usage errors stay on their own exit code (2), distinct from verdicts.
set +e
"$CLI" --replay-policy=bogus >/dev/null 2>&1
code=$?
set -e
if [[ "$code" -ne 2 ]]; then
  echo "FAIL: usage error exited $code, expected 2" >&2
  exit 1
fi

echo "== chaos-search smoke =="
REPRO="$BUILD_DIR/chaos_smoke_repro.json"
rm -f "$REPRO"

# A bounded pinned-seed search against the planted left-join bug must find
# the violation (exit 4), and the minimizer must shrink the schedule to at
# most 3 events.
set +e
out="$("$CLI" --bug=C3831 --mode=search --nodes=12 --plant-bug \
  --search-budget=8 --jobs=4 --json --repro-out="$REPRO")"
code=$?
set -e
if [[ "$code" -ne 4 ]]; then
  echo "FAIL: chaos search exited $code, expected 4 (violation found)" >&2
  exit 1
fi
minimized="$(sed -n 's/.*"minimized_events":\([0-9]*\).*/\1/p' <<<"$out")"
if [[ -z "$minimized" || "$minimized" -lt 1 || "$minimized" -gt 3 ]]; then
  echo "FAIL: minimized reproducer has ${minimized:-?} events, expected 1..3" >&2
  exit 1
fi

# The emitted artifact replays to the byte-identical violation, still exit 4.
set +e
"$CLI" --repro="$REPRO" >/dev/null
code=$?
set -e
if [[ "$code" -ne 4 ]]; then
  echo "FAIL: repro replay exited $code, expected 4" >&2
  exit 1
fi

echo "== crash-durability smoke =="
KV_REPRO="$BUILD_DIR/kv_durability_repro.json"
rm -f "$KV_REPRO"

# A pinned-seed crash-restart plan under QUORUM load with the WAL on: the
# kv-durability invariant audits every acked write across the crash and the
# restart, and a correct group-commit data path loses none of them (exit 0).
set +e
out="$("$CLI" --bug=C3831-fixed --workload=steady-state --mode=suite \
  --sim-modes=colo --nodes=12 --seed=7 --faults=crash-restart \
  --kv-wal --kv-consistency=quorum --kv-rate=100 --json)"
code=$?
set -e
if [[ "$code" -ne 0 ]]; then
  echo "FAIL: crash-durability clean run exited $code, expected 0" >&2
  exit 1
fi
if [[ "$out" != *'"kv_checked":true'* ]]; then
  echo "FAIL: crash-durability clean run did not arm the KV checkers" >&2
  exit 1
fi
if [[ "$out" == *'"kv_wal_bytes":0,'* ]]; then
  echo "FAIL: crash-durability clean run wrote no WAL bytes" >&2
  exit 1
fi

# The planted ack-before-sync bug: a bounded pinned-seed search must crash a
# replica inside its group-commit window and catch the lost acked write.
set +e
out="$("$CLI" --bug=C3831-fixed --workload=steady-state --mode=search \
  --nodes=12 --plant-kv-bug --kv-wal --kv-rate=100 \
  --search-budget=8 --jobs=4 --json --repro-out="$KV_REPRO")"
code=$?
set -e
if [[ "$code" -ne 4 ]]; then
  echo "FAIL: kv-durability search exited $code, expected 4" >&2
  exit 1
fi
if [[ "$out" != *'"kv-durability"'* ]]; then
  echo "FAIL: kv-durability search violated something else" >&2
  exit 1
fi
minimized="$(sed -n 's/.*"minimized_events":\([0-9]*\).*/\1/p' <<<"$out")"
if [[ -z "$minimized" || "$minimized" -lt 1 || "$minimized" -gt 3 ]]; then
  echo "FAIL: kv-durability reproducer has ${minimized:-?} events, expected 1..3" >&2
  exit 1
fi

# The artifact replays to the byte-identical kv-durability violation.
set +e
"$CLI" --repro="$KV_REPRO" >/dev/null
code=$?
set -e
if [[ "$code" -ne 4 ]]; then
  echo "FAIL: kv-durability repro replay exited $code, expected 4" >&2
  exit 1
fi

echo "== anti-entropy smoke =="
AE_REPRO="$BUILD_DIR/anti_entropy_repro.json"
rm -f "$AE_REPRO"

# Throttled repair under a pinned-seed crash-restart plan: the restarted
# replica misses acked writes, anti-entropy streams the Merkle diff back,
# and the replica-convergence invariant (armed by --kv-repair) holds.
set +e
out="$("$CLI" --bug=C3831-fixed --workload=steady-state --mode=suite \
  --sim-modes=colo --nodes=12 --seed=7 --faults=crash-restart \
  --kv-wal --kv-consistency=quorum --kv-rate=100 --kv-repair --json)"
code=$?
set -e
if [[ "$code" -ne 0 ]]; then
  echo "FAIL: throttled anti-entropy run exited $code, expected 0" >&2
  exit 1
fi
if [[ "$out" != *'"kv_checked":true'* ]]; then
  echo "FAIL: throttled anti-entropy run did not arm the KV checkers" >&2
  exit 1
fi
if [[ "$out" == *'"kv_repair_sessions":0,'* ]]; then
  echo "FAIL: throttled anti-entropy run opened no repair sessions" >&2
  exit 1
fi

# The planted repair storm: the scheduler ignores its rate limit, session
# cap, and pressure yield; a bounded pinned-seed search must catch the
# replica-convergence budget facet and shrink the schedule.
set +e
out="$("$CLI" --bug=C5456 --mode=search --nodes=12 --seed=7 \
  --workload=steady-state --kv-rate=200 --kv-wal --kv-repair \
  --kv-repair-rate=4096 --plant-kv-bug=repair-storm \
  --search-budget=8 --jobs=4 --json --repro-out="$AE_REPRO")"
code=$?
set -e
if [[ "$code" -ne 4 ]]; then
  echo "FAIL: repair-storm search exited $code, expected 4" >&2
  exit 1
fi
if [[ "$out" != *'"replica-convergence"'* ]]; then
  echo "FAIL: repair-storm search violated something else" >&2
  exit 1
fi
# The storm is a planted code bug, not a fault-schedule bug: ddmin
# typically shrinks the reproducer all the way to ZERO fault events — the
# unthrottled scheduler floods on a perfectly healthy cluster.
minimized="$(sed -n 's/.*"minimized_events":\([0-9]*\).*/\1/p' <<<"$out")"
if [[ -z "$minimized" || "$minimized" -gt 3 ]]; then
  echo "FAIL: repair-storm reproducer has ${minimized:-?} events, expected 0..3" >&2
  exit 1
fi

# The artifact replays to the byte-identical replica-convergence violation.
set +e
"$CLI" --repro="$AE_REPRO" >/dev/null
code=$?
set -e
if [[ "$code" -ne 4 ]]; then
  echo "FAIL: repair-storm repro replay exited $code, expected 4" >&2
  exit 1
fi

# The same planted storm on real localhost sockets: the session-rate budget
# facet must flag it (exit 4) — the throttled scheduler opens at most
# max_sessions per interval, the storm one per co-replica per tick.
set +e
out="$(timeout 90 "$CLI" --mode=real --nodes=5 --kv-ops=40 --gossip-ms=50 \
  --kv-repair --plant-kv-bug=repair-storm --json)"
code=$?
set -e
if [[ "$code" -ne 4 ]]; then
  echo "FAIL: real-mode repair-storm smoke exited $code, expected 4" >&2
  exit 1
fi
if [[ "$out" != *'"replica-convergence"'* ]]; then
  echo "FAIL: real-mode repair-storm smoke flagged no replica-convergence" >&2
  exit 1
fi

echo "== real-mode smoke =="
# 8 nodes on real localhost sockets must converge well inside 30s (typical:
# well under a second) and exit 0; `timeout` guards the gate against a hang
# in the threaded carrier. A non-converged run exits 1, a hang exits 124 —
# either fails the gate. The KV smoke rides the WAL: 8 quorum writes whose
# acks defer to the group commit on real sockets, then 8 quorum reads.
set +e
out="$(timeout 60 "$CLI" --mode=real --nodes=8 --kv-ops=8 --kv-wal \
  --kv-consistency=quorum --json)"
code=$?
set -e
if [[ "$code" -ne 0 ]]; then
  echo "FAIL: real-mode smoke exited $code, expected 0" >&2
  exit 1
fi
if [[ "$out" != *'"settled":true'* || "$out" != *'"mode":"RealNet"'* ]]; then
  echo "FAIL: real-mode smoke JSON lacks settled:true / mode:RealNet" >&2
  exit 1
fi
if [[ "$out" != *'"kv_ok":16,'* ]]; then
  echo "FAIL: real-mode WAL-backed KV smoke did not complete 16/16 ops" >&2
  exit 1
fi
if [[ "$out" == *'"kv_wal_bytes":0,'* ]]; then
  echo "FAIL: real-mode KV smoke wrote no WAL bytes (WAL not wired?)" >&2
  exit 1
fi

echo "== real-mode chaos smoke =="
# The same islanding plan ChaosSearch found in the simulator, replayed on
# real sockets: drop all links to one node long enough for conviction, heal,
# and demand reconvergence. Exit 0 means the partition-heals probe passed;
# a cluster that stays split exits 4 (invariant violation), a hang exits 124.
set +e
out="$(timeout 90 "$CLI" --mode=real --nodes=8 --faults=island --json)"
code=$?
set -e
if [[ "$code" -ne 0 ]]; then
  echo "FAIL: real-mode chaos smoke exited $code, expected 0" >&2
  exit 1
fi
if [[ "$out" != *'"fault_events_applied":1'* ]]; then
  echo "FAIL: real-mode chaos smoke did not apply the partition" >&2
  exit 1
fi
if [[ "$out" == *'"messages_blocked":0,'* ]]; then
  echo "FAIL: real-mode chaos smoke blocked no frames (filter not wired?)" >&2
  exit 1
fi
if [[ "$out" != *'"unreachable_endpoints":0,'* ]]; then
  echo "FAIL: real-mode chaos smoke left endpoints unreachable" >&2
  exit 1
fi

# Deprecated mode aliases still work (one release) and warn on stderr.
if ! "$CLI" --bug=C3831 --mode=colo --nodes=16 --json 2>/dev/null >/dev/null; then
  echo "FAIL: deprecated --mode=colo alias no longer runs" >&2
  exit 1
fi

echo "OK: build, tier-1 tests, perf smoke, guard exit codes, chaos-search, crash-durability, anti-entropy and real-mode smokes all pass"
