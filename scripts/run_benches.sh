#!/usr/bin/env bash
# Perf-regression harness: builds the optimized tree and runs the
# simulation-core bench end to end, leaving BENCH_simcore.json in the repo
# root. The JSON embeds the pre-overhaul baseline, so `speedup_vs_baseline`
# is the number to watch — it must not drift back toward 1.0.
#
#   scripts/run_benches.sh               # full sweep (N=512,1024,2048)
#   scripts/run_benches.sh --smoke       # deterministic assertions only, fast
#   scripts/run_benches.sh --nodes=256   # smaller probe for quick iteration
#
# BENCH_simcore.json is an array of rows, one per N, each with the run's
# fidelity verdict and memory-layout profile counters; the N=512 row embeds
# the pre-overhaul baseline and speedup.
#
# Timing runs want a quiet machine and jobs=1 (the probe measures the
# single-run inner loop the paper's Figure 2 executes thousands of times);
# smoke mode has no wall-clock thresholds and is safe anywhere, so CI uses
# `--smoke` (see scripts/check_thread_safety.sh).
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${BUILD_DIR:-build}"

cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo >/dev/null
cmake --build "$BUILD_DIR" --target perf_simcore -j"$(nproc)" >/dev/null

if [[ "${1:-}" == "--smoke" ]]; then
  "$BUILD_DIR/bench/perf_simcore" --smoke
  exit 0
fi

if [[ "$*" == *--nodes=* ]]; then
  "$BUILD_DIR/bench/perf_simcore" --out=BENCH_simcore.json "$@"
else
  "$BUILD_DIR/bench/perf_simcore" --out=BENCH_simcore.json --nodes=512,1024,2048 "$@"
fi
echo
echo "BENCH_simcore.json:"
cat BENCH_simcore.json
