// Reproduces §4's argument against extrapolation (Vrisha-style [41]):
// "bug symptoms might not appear in the small training scale, hence the
// behaviors are hard to extrapolate accurately."
//
// We train on real-scale runs at 16..64 nodes and extrapolate two signals to
// 256 nodes:
//   - the SYMPTOM (flap count): identically zero at every training scale, so
//     any extrapolation predicts zero — and misses the storm entirely;
//   - the MECHANISM (offending-function duration): a clean power law that
//     extrapolates to a red-flag duration — but §5 reminds us a long duration
//     alone does not decide the bug (C5456's fix kept the computation), which
//     is why the paper replays behaviour instead of extrapolating signals.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/sfind/fitter.h"

int main(int argc, char** argv) {
  using namespace scalecheck;
  const BugSpec& spec = BugCatalog::Get("C3831");

  // Training scales plus the ground-truth scale, all independent real-scale
  // runs — one grid.
  std::vector<int> training = {16, 32, 48, 64};
  ExperimentSpec grid;
  grid.bugs = {spec};
  grid.modes = {RunMode::kRealScale};
  grid.scales = {16, 32, 48, 64, 256};
  grid.jobs = bench::JobsFromArgs(argc, argv);
  SuiteReport report = ExperimentSuite(grid).Run();

  std::vector<std::pair<double, double>> flap_points;
  std::vector<std::pair<double, double>> duration_points;

  std::printf("Training runs (real scale):\n");
  for (int n : training) {
    const RunResult& r = report.Get(spec.id, RunMode::kRealScale, n, kDefaultSuiteSeed);
    std::printf("  n=%-3d flaps=%-6lld calc_max=%.4fs\n", n,
                static_cast<long long>(r.flaps), r.calc_duration_seconds.max());
    flap_points.emplace_back(n, static_cast<double>(r.flaps));
    duration_points.emplace_back(n, r.calc_duration_seconds.max());
  }

  ComplexityFit flap_fit = FitPowerLaw(flap_points);
  ComplexityFit duration_fit = FitPowerLaw(duration_points);

  std::printf("\nExtrapolations to N=256:\n");
  std::printf("  symptom (flaps):    %s -> predicts %.1f flaps\n",
              flap_fit.num_points < 2 ? "no usable signal (all zero)"
                                      : flap_fit.Describe().c_str(),
              flap_fit.num_points < 2 ? 0.0 : PredictOps(flap_fit, 256));
  std::printf("  mechanism (calc t): %s -> predicts %.2fs per invocation\n",
              duration_fit.Describe().c_str(), PredictOps(duration_fit, 256));

  std::printf("\nGround truth at N=256 (real-scale run):\n");
  const RunResult& truth =
      report.Get(spec.id, RunMode::kRealScale, 256, kDefaultSuiteSeed);
  std::printf("  flaps=%lld calc_max=%.2fs shed=%llu\n",
              static_cast<long long>(truth.flaps), truth.calc_duration_seconds.max(),
              static_cast<unsigned long long>(truth.stage_tasks_dropped));

  std::printf("\nThe symptom extrapolation predicts ~0 flaps and is off by the whole\n"
              "storm; the duration extrapolation red-flags correctly but cannot say\n"
              "whether a 10s computation actually destabilizes THIS implementation —\n"
              "which is exactly the gap scale-check replay fills (§4, §5).\n");
  return 0;
}
