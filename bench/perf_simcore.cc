// Simulation-core perf-regression bench (BENCH_simcore.json).
//
// Measures the harness's own overhead — not the modelled work — on the two
// hot paths that dominate wall-clock at large N: the discrete-event engine
// and the per-round gossip digest machinery. The headline scenario is the §8
// colocation-limit probe (SEDA runtime, N=512 on one simulated 16-core box)
// run end to end with jobs=1, which is exactly the configuration the paper
// says a scale check must keep cheap.
//
//   bench/perf_simcore [--nodes=512,1024,2048] [--out=BENCH_simcore.json]
//   bench/perf_simcore --smoke        # operation-count assertions, no timing
//   bench/perf_simcore --floor        # N=256 events/s floor (CI gate leg)
//
// `--nodes=` takes a comma-separated list; the JSON output is an ARRAY of
// rows, one per N, each carrying the run's fidelity verdict and the
// memory-layout profile counters (digest bytes, arena bytes, intern table).
// The N=512 row embeds the pre-overhaul baseline numbers (recorded on this
// machine, RelWithDebInfo, jobs=1) so every future run reports its speedup
// against a fixed reference.

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/common/logging.h"
#include "src/common/rng.h"
#include "src/sim/event_queue.h"
#include "src/sim/fidelity_guard.h"
#include "src/sim/profiler.h"

namespace scalecheck {
namespace {

// Pre-overhaul baseline, measured on the CI container (single core,
// RelWithDebInfo) at N=512, horizon 120 s, seed 1234, jobs=1. Mean of five
// runs of the pre-overhaul tree recorded 2026-08-07, interleaved with
// post-overhaul runs on the same host to cancel machine drift (individual
// runs ranged 48.4–57.4 s wall). See EXPERIMENTS.md for how to re-derive.
constexpr double kBaselineWallS = 53.17;
constexpr double kBaselineEventsPerS = 8742.0;
constexpr double kBaselineQueueOpsPerS = 873781.0;

BugSpec ProbeSpec() {
  BugSpec spec;
  spec.id = "perf-probe-seda";
  spec.description = "simulation-core perf probe (§8 colocation limit)";
  spec.calc_version = CalcVersion::kV3C3881Fix;
  spec.placement = CalcPlacement::kInlineGossipStage;
  spec.vnodes_per_node = 1;
  spec.workload = WorkloadKind::kScaleOut;
  spec.join_fraction = 1.0 / 32;
  spec.horizon = VirtualDuration::Seconds(120);
  spec.transition_override = VirtualDuration::Seconds(20);
  spec.exec_model = ExecModel::kSedaSingleProcess;
  return spec;
}

// Event-queue micro throughput: schedule/cancel/pop mix, cancel-heavy the way
// timer-driven simulations are (every retry timer is armed and then almost
// always cancelled).
double QueueOpsPerSecond() {
  constexpr int kOps = 2'000'000;
  EventQueue q;
  Rng rng(42);
  std::vector<EventId> live;
  live.reserve(1024);
  bench::WallTimer timer;
  int64_t done = 0;
  while (done < kOps) {
    double roll = rng.UniformDouble();
    if (roll < 0.55 || q.empty()) {
      VirtualTime t = VirtualTime::Zero() +
                      VirtualDuration::Nanos(rng.UniformInt(0, 1'000'000'000));
      live.push_back(q.Schedule(t, [] {}));
    } else if (roll < 0.80 && !live.empty()) {
      size_t idx = rng.PickIndex(live.size());
      q.Cancel(live[idx]);
      live[idx] = live.back();
      live.pop_back();
    } else {
      VirtualTime t;
      q.Pop(&t);
    }
    ++done;
  }
  while (!q.empty()) {
    VirtualTime t;
    q.Pop(&t);
    ++done;
  }
  return static_cast<double>(done) / timer.Seconds();
}

// Recorded N=256 floor reference for `--floor` (same probe, horizon 120 s,
// seed 1234, jobs=1, RelWithDebInfo, quiet host, post-overhaul tree,
// 2026-08-09). The gate trips only on a >20% events/s regression, which
// leaves margin for ordinary CI-host noise.
constexpr double kFloorNodes256EventsPerS = 96000.0;
constexpr double kFloorAllowedRegression = 0.20;

std::vector<int> NodesListFromArgs(int argc, char** argv) {
  std::vector<int> nodes;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    const std::string prefix = "--nodes=";
    if (arg.rfind(prefix, 0) == 0) {
      std::string list = arg.substr(prefix.size());
      size_t start = 0;
      while (start <= list.size()) {
        size_t comma = list.find(',', start);
        std::string item = list.substr(
            start, comma == std::string::npos ? std::string::npos : comma - start);
        if (!item.empty()) {
          nodes.push_back(std::stoi(item));
        }
        if (comma == std::string::npos) {
          break;
        }
        start = comma + 1;
      }
    }
  }
  if (nodes.empty()) {
    nodes.push_back(512);
  }
  return nodes;
}

std::string OutFromArgs(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    const std::string prefix = "--out=";
    if (arg.rfind(prefix, 0) == 0) {
      return arg.substr(prefix.size());
    }
  }
  return "BENCH_simcore.json";
}

bool FlagInArgs(int argc, char** argv, const std::string& flag) {
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == flag) {
      return true;
    }
  }
  return false;
}

// One timed probe run at `nodes`, profiled so the row can report the
// memory-layout counters alongside throughput and the fidelity verdict.
struct ProbeRow {
  int nodes = 0;
  double wall_s = 0.0;
  uint64_t events_executed = 0;
  double events_per_s = 0.0;
  std::string fidelity_verdict;
  SimProfiler::Counters counters;
};

ProbeRow RunProbe(int nodes) {
  BugSpec spec = ProbeSpec();
  std::printf("colocation probe N=%d (horizon %s, jobs=1): ", nodes,
              spec.horizon.ToString().c_str());
  std::fflush(stdout);
  SimProfiler profiler;
  RunOptions options;
  options.profiler = &profiler;
  bench::WallTimer timer;
  RunResult result = RunSingle(spec, nodes, RunMode::kColocated, 1234, options);
  ProbeRow row;
  row.nodes = nodes;
  row.wall_s = timer.Seconds();
  row.events_executed = result.events_executed;
  row.events_per_s = static_cast<double>(result.events_executed) / row.wall_s;
  row.fidelity_verdict = FidelityVerdictName(result.fidelity.verdict);
  if (result.fidelity.verdict != FidelityVerdict::kOk) {
    row.fidelity_verdict += ":" + result.fidelity.violated_budget;
  }
  row.counters = profiler.counters();
  std::printf("%.2fs wall, %llu events (%.0f events/s), fidelity %s\n",
              row.wall_s, static_cast<unsigned long long>(row.events_executed),
              row.events_per_s, row.fidelity_verdict.c_str());
  return row;
}

// Floor mode: the ci_gate.sh perf leg. Runs the N=256 probe and fails if
// events/s regressed more than 20% below the recorded reference — coarse
// enough to survive CI noise, tight enough to catch a real hot-path
// regression (the pre-overhaul tree was ~10x below the floor).
int RunFloor() {
  ProbeRow row = RunProbe(256);
  double floor = kFloorNodes256EventsPerS * (1.0 - kFloorAllowedRegression);
  std::printf("floor check: %.0f events/s vs floor %.0f (reference %.0f)\n",
              row.events_per_s, floor, kFloorNodes256EventsPerS);
  if (row.events_per_s < floor) {
    std::fprintf(stderr,
                 "FAIL: N=256 probe at %.0f events/s regressed >%.0f%% below "
                 "the recorded %.0f events/s reference\n",
                 row.events_per_s, kFloorAllowedRegression * 100,
                 kFloorNodes256EventsPerS);
    return 1;
  }
  return 0;
}

void WriteRow(JsonWriter* w, const ProbeRow& row, double queue_ops,
              double horizon_s) {
  w->BeginObject();
  w->Field("bench", "perf_simcore");
  w->Field("scenario", "sec8-colocation-limit probe-seda");
  w->Field("nodes", row.nodes);
  w->Field("horizon_s", horizon_s);
  w->Field("seed", 1234);
  w->Field("jobs", 1);
  w->Field("wall_s", row.wall_s);
  w->Field("events_executed", static_cast<int64_t>(row.events_executed));
  w->Field("events_per_s", row.events_per_s);
  w->Field("queue_ops_per_s", queue_ops);
  w->Field("fidelity_verdict", row.fidelity_verdict);
  w->Key("profile").BeginObject();
  w->Field("gossip_digest_bytes_sent", row.counters.gossip_digest_bytes_sent);
  w->Field("gossip_arena_bytes", row.counters.gossip_arena_bytes);
  w->Field("endpoint_store_bytes", row.counters.endpoint_store_bytes);
  w->Field("intern_table_size", row.counters.intern_table_size);
  w->Field("intern_table_bytes", row.counters.intern_table_bytes);
  w->EndObject();
  if (row.nodes == 512) {
    double speedup = kBaselineWallS > 0.0 ? kBaselineWallS / row.wall_s : 0.0;
    w->Key("baseline").BeginObject();
    w->Field("recorded",
             "2026-08-07 pre-overhaul seed, mean of 5 runs interleaved with "
             "post-overhaul runs, RelWithDebInfo, jobs=1");
    w->Field("nodes", 512);
    w->Field("wall_s", kBaselineWallS);
    w->Field("events_per_s", kBaselineEventsPerS);
    w->Field("queue_ops_per_s", kBaselineQueueOpsPerS);
    w->EndObject();
    w->Field("speedup_vs_baseline", speedup);
  }
  w->EndObject();
}

// Smoke mode: cheap, deterministic assertions on operation counts — no
// wall-clock thresholds, so it is CI-safe on arbitrarily loaded hosts.
int RunSmoke() {
  constexpr int kNodes = 32;
  BugSpec spec = ProbeSpec();
  spec.horizon = VirtualDuration::Seconds(60);
  SimProfiler profiler;
  RunOptions options;
  options.profiler = &profiler;
  RunResult a = RunSingle(spec, kNodes, RunMode::kColocated, 1234, options);
  RunResult b = RunSingle(spec, kNodes, RunMode::kColocated, 1234);
  // The profiler must be a pure observer: the profiled run's JSON minus its
  // opt-in "profile" object is the unprofiled run's JSON.
  if (!a.has_profile) {
    std::fprintf(stderr, "FAIL: profiled run reported no profile\n");
    return 1;
  }
  a.has_profile = false;
  if (a.ToJson() != b.ToJson()) {
    std::fprintf(stderr, "FAIL: same seed produced different RunResult JSON\n");
    return 1;
  }
  if (a.events_executed == 0 || a.messages_delivered == 0) {
    std::fprintf(stderr, "FAIL: probe run executed no events/messages\n");
    return 1;
  }
  // The incremental-digest bound (see gossip_incremental_test.cc): entry
  // refreshes are paid for by applied updates, membership rebuilds, or the
  // builder's own heartbeat bump — never by a per-build O(N) recompute.
  const SimProfiler::Counters& c = profiler.counters();
  uint64_t rebuild_entries = c.digest_full_rebuilds * kNodes;
  if (c.digest_entries_refreshed >
      c.gossip_updates_applied + rebuild_entries + c.digest_builds) {
    std::fprintf(stderr, "FAIL: digest maintenance exceeded O(changes) bound\n");
    return 1;
  }
  if (c.payload_reuses == 0) {
    std::fprintf(stderr, "FAIL: payload pool never recycled a buffer\n");
    return 1;
  }
  std::printf(
      "smoke OK: %llu events, %llu messages, deterministic JSON; "
      "digest refreshes %llu <= updates %llu + rebuild entries %llu + builds "
      "%llu; payload reuse %llu/%llu\n",
      static_cast<unsigned long long>(a.events_executed),
      static_cast<unsigned long long>(a.messages_delivered),
      static_cast<unsigned long long>(c.digest_entries_refreshed),
      static_cast<unsigned long long>(c.gossip_updates_applied),
      static_cast<unsigned long long>(rebuild_entries),
      static_cast<unsigned long long>(c.digest_builds),
      static_cast<unsigned long long>(c.payload_reuses),
      static_cast<unsigned long long>(c.payload_allocs));
  return 0;
}

}  // namespace
}  // namespace scalecheck

int main(int argc, char** argv) {
  using namespace scalecheck;
  SetLogLevel(LogLevel::kError);
  if (FlagInArgs(argc, argv, "--smoke")) {
    return RunSmoke();
  }
  if (FlagInArgs(argc, argv, "--floor")) {
    return RunFloor();
  }

  std::vector<int> nodes_list = NodesListFromArgs(argc, argv);
  std::string out_path = OutFromArgs(argc, argv);

  std::printf("queue micro: ");
  std::fflush(stdout);
  double queue_ops = QueueOpsPerSecond();
  std::printf("%.0f ops/s\n", queue_ops);

  double horizon_s = ProbeSpec().horizon.seconds();
  JsonWriter w;
  w.BeginArray();
  for (int nodes : nodes_list) {
    ProbeRow row = RunProbe(nodes);
    if (row.nodes == 512) {
      std::printf("speedup vs pre-overhaul baseline: %.2fx\n",
                  kBaselineWallS / row.wall_s);
    }
    WriteRow(&w, row, queue_ops, horizon_s);
  }
  w.EndArray();

  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(f, "%s\n", w.str().c_str());
  std::fclose(f);
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}
