// Reproduces Figure 3(c): bug C5456 (scale-out under a coarse ring lock).
//
// The calculator itself is the fast vnode-aware generation; the symptom
// comes from holding the ring-table lock across each (frequent) invocation,
// which blocks gossip-state application. Note the much smaller flap counts
// than Figure 3(a) — the paper's y-axis shrinks from 300k to 8k — and the
// same "invisible at 128" onset.

#include "bench/bench_util.h"

int main(int argc, char** argv) {
  using namespace scalecheck;
  bench::RunFigure3Series(BugCatalog::Get("C5456"), bench::ScalesFromArgs(argc, argv),
                          bench::JobsFromArgs(argc, argv),
                          "Figure 3(c): #Flaps vs #Nodes, c5456 Scale-Out (ring lock)");
  return 0;
}
