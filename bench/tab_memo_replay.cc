// Reproduces the §8 memoization-vs-replay timing claims:
//
//   "for 256-node colocation, the memoization time for the bugs we
//    reproduced takes between 7 to 125 minutes while the replay time is only
//    between 4 to 15 minutes, similar to the real deployments"
//
// We report, per bug, the virtual duration of the one-time memoization run
// (colocated, contended), the PIL replay, and the real-scale test. The shape
// to check: memoize >> replay, and replay ~= real.

#include <cstdio>

#include "bench/bench_util.h"

int main(int argc, char** argv) {
  using namespace scalecheck;
  int n = 256;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--nodes=", 0) == 0) {
      n = std::stoi(arg.substr(8));
    }
  }

  std::printf("Section 8 table: memoization vs replay vs real time at %d-node scale\n\n",
              n);
  std::vector<std::string> header = {"bug",        "memoize",    "replay",
                                     "real",       "replay/real", "memo/replay",
                                     "memo DB",    "hit rate"};
  std::vector<std::vector<std::string>> rows;

  for (BugSpec spec : {C3831Spec(), C3881Spec(), C5456Spec()}) {
    // Longer horizon than the figure benches so contended memoize runs can
    // settle instead of being truncated (which would compress the ratios).
    spec.horizon = VirtualDuration::Seconds(900);
    ScaleCheckRunner runner(spec);
    ScaleCheckResult r = runner.RunFull(n);
    double lookups = static_cast<double>(r.replay.pil.replay_hits +
                                         r.replay.pil.replay_misses);
    rows.push_back({
        spec.id,
        r.memoize.test_duration.ToString(),
        r.replay.test_duration.ToString(),
        r.real.test_duration.ToString(),
        StrFormat("%.2f", r.replay.test_duration.seconds() /
                              std::max(1.0, r.real.test_duration.seconds())),
        StrFormat("%.2f", r.memoize.test_duration.seconds() /
                              std::max(1.0, r.replay.test_duration.seconds())),
        StrFormat("%llu rec", static_cast<unsigned long long>(r.memo.records)),
        StrFormat("%.0f%%", lookups == 0 ? 0.0
                                         : 100.0 * static_cast<double>(
                                                       r.replay.pil.replay_hits) /
                                               lookups),
    });
  }
  std::printf("%s\n", RenderTable(header, rows).c_str());
  std::printf("Expected shape (paper): memoize/replay in the 2-10x range, replay/real ~1.\n");
  return 0;
}
