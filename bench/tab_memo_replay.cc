// Reproduces the §8 memoization-vs-replay timing claims:
//
//   "for 256-node colocation, the memoization time for the bugs we
//    reproduced takes between 7 to 125 minutes while the replay time is only
//    between 4 to 15 minutes, similar to the real deployments"
//
// We report, per bug, the virtual duration of the one-time memoization run
// (colocated, contended), the PIL replay, and the real-scale test. The shape
// to check: memoize >> replay, and replay ~= real.

#include <cstdio>

#include "bench/bench_util.h"

int main(int argc, char** argv) {
  using namespace scalecheck;
  int n = bench::NodesFromArgs(argc, argv, 256);

  std::printf("Section 8 table: memoization vs replay vs real time at %d-node scale\n\n",
              n);

  // One declarative grid over the three bugs; the per-bug triples are
  // independent, so --jobs=N runs them concurrently without changing any
  // number in the table.
  ExperimentSpec grid;
  for (const char* id : {"C3831", "C3881", "C5456"}) {
    BugSpec spec = BugCatalog::Get(id);
    // Longer horizon than the figure benches so contended memoize runs can
    // settle instead of being truncated (which would compress the ratios).
    spec.horizon = VirtualDuration::Seconds(900);
    grid.bugs.push_back(std::move(spec));
  }
  grid.modes = {RunMode::kRealScale, RunMode::kMemoize, RunMode::kPilReplay};
  grid.scales = {n};
  grid.jobs = bench::JobsFromArgs(argc, argv);
  SuiteReport report = ExperimentSuite(grid).Run();

  std::vector<std::string> header = {"bug",        "memoize",    "replay",
                                     "real",       "replay/real", "memo/replay",
                                     "memo DB",    "hit rate"};
  std::vector<std::vector<std::string>> rows;

  for (const BugSpec& spec : grid.bugs) {
    const RunResult& real = report.Get(spec.id, RunMode::kRealScale, n, kDefaultSuiteSeed);
    const RunResult& memoize = report.Get(spec.id, RunMode::kMemoize, n, kDefaultSuiteSeed);
    const RunResult& replay = report.Get(spec.id, RunMode::kPilReplay, n, kDefaultSuiteSeed);
    double lookups =
        static_cast<double>(replay.pil.replay_hits + replay.pil.replay_misses);
    rows.push_back({
        spec.id,
        memoize.test_duration.ToString(),
        replay.test_duration.ToString(),
        real.test_duration.ToString(),
        StrFormat("%.2f", replay.test_duration.seconds() /
                              std::max(1.0, real.test_duration.seconds())),
        StrFormat("%.2f", memoize.test_duration.seconds() /
                              std::max(1.0, replay.test_duration.seconds())),
        StrFormat("%llu rec", static_cast<unsigned long long>(replay.memo.records)),
        StrFormat("%.0f%%", lookups == 0 ? 0.0
                                         : 100.0 * static_cast<double>(
                                                       replay.pil.replay_hits) /
                                               lookups),
    });
  }
  std::printf("%s\n", RenderTable(header, rows).c_str());
  std::printf("Expected shape (paper): memoize/replay in the 2-10x range, replay/real ~1.\n");
  return 0;
}
