// Shared helpers for the figure/table reproduction binaries.

#ifndef SCALECHECK_BENCH_BENCH_UTIL_H_
#define SCALECHECK_BENCH_BENCH_UTIL_H_

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "src/common/strings.h"
#include "src/scalecheck/bug_catalog.h"
#include "src/scalecheck/experiment_suite.h"
#include "src/scalecheck/scale_check.h"

namespace scalecheck {
namespace bench {

inline std::vector<int> DefaultScales() { return {32, 64, 128, 256}; }

// Parses "--scales=32,64" style overrides (keeps benches fast in CI).
inline std::vector<int> ScalesFromArgs(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    const std::string prefix = "--scales=";
    if (arg.rfind(prefix, 0) == 0) {
      std::vector<int> scales;
      std::string rest = arg.substr(prefix.size());
      size_t pos = 0;
      while (pos < rest.size()) {
        size_t comma = rest.find(',', pos);
        if (comma == std::string::npos) {
          comma = rest.size();
        }
        scales.push_back(std::stoi(rest.substr(pos, comma - pos)));
        pos = comma + 1;
      }
      return scales;
    }
  }
  return DefaultScales();
}

// Parses "--jobs=N" (host worker threads for the ExperimentSuite executor;
// 0 = hardware concurrency). Defaults to 1 so bench output stays directly
// comparable run-to-run; pass --jobs=0 on a multi-core host for the speedup.
inline int JobsFromArgs(int argc, char** argv, int default_jobs = 1) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    const std::string prefix = "--jobs=";
    if (arg.rfind(prefix, 0) == 0) {
      return std::stoi(arg.substr(prefix.size()));
    }
  }
  return default_jobs;
}

// Parses "--nodes=N" single-scale overrides used by the table benches.
inline int NodesFromArgs(int argc, char** argv, int default_nodes) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    const std::string prefix = "--nodes=";
    if (arg.rfind(prefix, 0) == 0) {
      return std::stoi(arg.substr(prefix.size()));
    }
  }
  return default_nodes;
}

class WallTimer {
 public:
  WallTimer() : start_(std::chrono::steady_clock::now()) {}
  double Seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

// Runs Real / Colo / Memoize+Replay for a bug at each scale through one
// host-parallel ExperimentSuite and prints the Figure 3 series ("#Flaps
// (x1000)" per mode) plus accuracy columns.
void RunFigure3Series(const BugSpec& spec, const std::vector<int>& scales, int jobs,
                      const char* figure_label);

}  // namespace bench
}  // namespace scalecheck

#endif  // SCALECHECK_BENCH_BENCH_UTIL_H_
