// Reproduces the §8 colocation-limit experiment:
//
//   "Currently, on the 16-core 32-GB Nome machine, we can reach a maximum
//    colocation factor of 512. When we tried colocating 600 nodes, we hit
//    one of the following limitations: high CPU contention (>90%
//    utilization), memory exhaustion (nodes receive out-of-memory exceptions
//    and crash), or high event lateness (queuing delays from thread context
//    switching)."
//
// and §6's scale-checkability comparison: one process per node (JVM-like
// 70 MB overhead, per-node daemon threads) vs the paper's redesign (single
// process, SEDA-like global event architecture). The per-process design dies
// of memory exhaustion far below 512; the redesigned runtime reaches ~512
// and then hits CPU/lateness walls — including the §6 space-oblivious
// over-allocation variant as a third column.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/common/logging.h"

namespace scalecheck {
namespace {

// The three runtime variants as declarative specs: same calculator, same
// small scale-out (rebalance allocations are the point of §6), different
// deployment engineering.
BugSpec LimitProbeSpec(const char* id, ExecModel exec_model, bool space_oblivious) {
  BugSpec spec;
  spec.id = id;
  spec.description = "colocation-limit probe (§8 Nome machine)";
  spec.calc_version = CalcVersion::kV3C3881Fix;
  spec.placement = CalcPlacement::kInlineGossipStage;
  spec.vnodes_per_node = 1;
  spec.workload = WorkloadKind::kScaleOut;
  spec.join_fraction = 1.0 / 32;
  spec.horizon = VirtualDuration::Seconds(120);
  spec.transition_override = VirtualDuration::Seconds(20);
  spec.exec_model = exec_model;
  spec.space_oblivious_rebalance = space_oblivious;
  return spec;
}

// The table cell is now the FidelityGuard's own verdict: instead of the bench
// re-deriving thresholds, the guard that runs inside every simulation names
// the first budget it saw violated (§8's CPU / memory / lateness triad).
std::string Verdict(const RunResult& r) {
  const FidelityReport& fidelity = r.fidelity;
  std::string verdict;
  if (fidelity.verdict == FidelityVerdict::kOk) {
    verdict = "OK";
  } else {
    verdict = StrFormat("%s:%s", FidelityVerdictName(fidelity.verdict),
                        fidelity.violated_budget.c_str());
    if (r.oom) {
      verdict += StrFormat(" (%d crashed)", r.crashed_nodes);
    }
  }
  return StrFormat("%s [cpu %.0f%%, p99 %s]", verdict.c_str(),
                   r.max_cpu_utilization * 100, r.lateness_p99.ToString().c_str());
}

}  // namespace
}  // namespace scalecheck

int main(int argc, char** argv) {
  using namespace scalecheck;
  SetLogLevel(LogLevel::kError);  // OOM crashes are the point, not noise
  std::printf(
      "Section 8: maximum colocation factor on one 16-core/32GB machine\n"
      "(per-process vs SEDA-redesigned runtime vs space-oblivious rebalance)\n\n");

  constexpr uint64_t kProbeSeed = 1234;
  ExperimentSpec grid;
  grid.bugs = {LimitProbeSpec("probe-process", ExecModel::kProcessPerNode, false),
               LimitProbeSpec("probe-seda", ExecModel::kSedaSingleProcess, false),
               LimitProbeSpec("probe-oblivious", ExecModel::kSedaSingleProcess, true)};
  grid.modes = {RunMode::kColocated};
  grid.scales = {128, 256, 384, 448, 512, 640, 1024, 2048};
  grid.seeds = {kProbeSeed};
  grid.jobs = bench::JobsFromArgs(argc, argv);
  SuiteReport report = ExperimentSuite(grid).Run();

  std::vector<std::string> header = {"N", "process/node", "SEDA redesign",
                                     "SEDA + space-oblivious"};
  std::vector<std::vector<std::string>> rows;
  for (int n : grid.scales) {
    rows.push_back({
        StrFormat("%d", n),
        Verdict(report.Get("probe-process", RunMode::kColocated, n, kProbeSeed)),
        Verdict(report.Get("probe-seda", RunMode::kColocated, n, kProbeSeed)),
        Verdict(report.Get("probe-oblivious", RunMode::kColocated, n, kProbeSeed)),
    });
  }
  std::printf("%s\n", RenderTable(header, rows).c_str());

  // Machine-readable guard reports for the SEDA sweep: the ok -> degraded ->
  // invalid progression over N, each step naming the violated budget and the
  // virtual time of the first crossing.
  std::printf("SEDA-redesign fidelity reports over N:\n");
  for (int n : grid.scales) {
    const RunResult& r = report.Get("probe-seda", RunMode::kColocated, n, kProbeSeed);
    std::printf("  n=%-4d %s\n", n, r.fidelity.ToJson().c_str());
  }
  std::printf("\nExpected: process-per-node exhausts 32GB well below 512 nodes; the\n"
              "redesigned runtime reaches ~512 before hitting CPU/lateness walls;\n"
              "space-oblivious allocation OOMs at a fraction of that.\n");
  return 0;
}
