// Reproduces the §8 colocation-limit experiment:
//
//   "Currently, on the 16-core 32-GB Nome machine, we can reach a maximum
//    colocation factor of 512. When we tried colocating 600 nodes, we hit
//    one of the following limitations: high CPU contention (>90%
//    utilization), memory exhaustion (nodes receive out-of-memory exceptions
//    and crash), or high event lateness (queuing delays from thread context
//    switching)."
//
// and §6's scale-checkability comparison: one process per node (JVM-like
// 70 MB overhead, per-node daemon threads) vs the paper's redesign (single
// process, SEDA-like global event architecture). The per-process design dies
// of memory exhaustion far below 512; the redesigned runtime reaches ~512
// and then hits CPU/lateness walls — including the §6 space-oblivious
// over-allocation variant as a third column.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/common/logging.h"

namespace scalecheck {
namespace {

struct LimitRow {
  double cpu = 0.0;
  bool oom = false;
  int crashed = 0;
  VirtualDuration lateness_p99;
  std::string verdict;
};

LimitRow Probe(int n, ExecModel exec_model, bool space_oblivious) {
  ClusterConfig config;
  config.initial_nodes = n;
  config.vnodes_per_node = 1;
  config.calc_version = CalcVersion::kV3C3881Fix;
  config.calc_placement = CalcPlacement::kInlineGossipStage;
  config.run_mode = RunMode::kColocated;
  config.exec_model = exec_model;
  config.space_oblivious_rebalance = space_oblivious;
  config.seed = 1234;

  WorkloadSpec wl;
  // A small scale-out so the rebalance allocations (§6) actually happen.
  wl.kind = WorkloadKind::kScaleOut;
  wl.joining_nodes = std::max(1, n / 32);
  wl.horizon = VirtualDuration::Seconds(120);
  wl.transition = VirtualDuration::Seconds(20);

  Cluster::Options options;
  options.config = config;
  options.workload = wl;
  Cluster cluster(std::move(options));
  RunResult r = cluster.Run();

  LimitRow row;
  row.cpu = r.max_cpu_utilization;
  row.oom = r.oom;
  row.crashed = r.crashed_nodes;
  row.lateness_p99 = r.lateness_p99;
  if (r.oom) {
    row.verdict = StrFormat("OOM (%d crashed)", r.crashed_nodes);
  } else if (r.max_cpu_utilization > 0.9) {
    row.verdict = "CPU >90%";
  } else if (r.lateness_p99 > VirtualDuration::Seconds(2)) {
    row.verdict = "event lateness";
  } else {
    row.verdict = "OK";
  }
  return row;
}

}  // namespace
}  // namespace scalecheck

int main(int argc, char** argv) {
  using namespace scalecheck;
  SetLogLevel(LogLevel::kError);  // OOM crashes are the point, not noise
  std::printf(
      "Section 8: maximum colocation factor on one 16-core/32GB machine\n"
      "(per-process vs SEDA-redesigned runtime vs space-oblivious rebalance)\n\n");

  std::vector<std::string> header = {"N", "process/node", "SEDA redesign",
                                     "SEDA + space-oblivious"};
  std::vector<std::vector<std::string>> rows;
  for (int n : {128, 256, 384, 448, 512, 640}) {
    LimitRow process = Probe(n, ExecModel::kProcessPerNode, false);
    LimitRow seda = Probe(n, ExecModel::kSedaSingleProcess, false);
    LimitRow oblivious = Probe(n, ExecModel::kSedaSingleProcess, true);
    auto cell = [](const LimitRow& row) {
      return StrFormat("%s [cpu %.0f%%, p99 %s]", row.verdict.c_str(), row.cpu * 100,
                       row.lateness_p99.ToString().c_str());
    };
    rows.push_back({StrFormat("%d", n), cell(process), cell(seda), cell(oblivious)});
  }
  std::printf("%s\n", RenderTable(header, rows).c_str());
  std::printf("Expected: process-per-node exhausts 32GB well below 512 nodes; the\n"
              "redesigned runtime reaches ~512 before hitting CPU/lateness walls;\n"
              "space-oblivious allocation OOMs at a fraction of that.\n");
  return 0;
}
