// Fault-injection accuracy table: does SC+PIL keep tracking the real
// deployment when the run is subjected to chaos, while colocation diverges?
//
// Every mode runs the same bug under the same seed-deterministic
// "standard-chaos" FaultPlan (partition, degraded links, crash+restart,
// slow node, memory ballast) with a retrying KV client. We report per scale:
// flap counts for Real / Colo / SC+PIL, the relative flap errors, and the
// fault/KV counters that prove the chaos actually ran (events applied and
// healed, restarts, blocked messages, retries, gave-ups).
//
// Two invariants are asserted for every run (nonzero exit on violation):
//   kv_issued  == kv_ok + kv_unavailable + kv_timeout + kv_inflight_at_stop
//   kv_gave_up == kv_unavailable + kv_timeout
// i.e. no client request is silently lost: each one ends OK, ends as a
// counted give-up, or is still in flight when the horizon stops the run.

#include <cstdio>

#include "bench/bench_util.h"

int main(int argc, char** argv) {
  using namespace scalecheck;
  std::vector<int> scales = {64, 128, 256};
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]).rfind("--scales=", 0) == 0) {
      scales = bench::ScalesFromArgs(argc, argv);
    }
  }

  BugSpec spec = BugCatalog::Get("C3831");
  spec.fault_plan = "standard-chaos";
  spec.kv_ops_per_second = 40.0;
  // The chaos plan ends around t=190s; leave room for the heals to take
  // effect and the cluster to re-converge before the settlement check.
  spec.horizon = VirtualDuration::Seconds(300);

  std::printf("Fault-injection accuracy: %s under '%s'\n", spec.id.c_str(),
              spec.fault_plan.c_str());
  std::printf("%s\n\n",
              spec.MakeFaultPlan(scales.empty() ? 64 : scales.front(),
                                 kDefaultSuiteSeed)
                  .Describe()
                  .c_str());

  ExperimentSpec grid;
  grid.bugs = {spec};
  grid.modes = {RunMode::kRealScale, RunMode::kColocated, RunMode::kMemoize,
                RunMode::kPilReplay};
  grid.scales = scales;
  grid.jobs = bench::JobsFromArgs(argc, argv);
  SuiteReport report = ExperimentSuite(grid).Run();

  int violations = 0;
  auto check_conservation = [&violations](const char* label, int n,
                                          const RunResult& r) {
    int64_t accounted =
        r.kv_ok + r.kv_unavailable + r.kv_timeout + r.kv_inflight_at_stop;
    if (r.kv_issued != accounted) {
      std::fprintf(stderr,
                   "CONSERVATION VIOLATION (%s n=%d): issued=%lld but "
                   "ok+unavail+timeout+inflight=%lld\n",
                   label, n, static_cast<long long>(r.kv_issued),
                   static_cast<long long>(accounted));
      ++violations;
    }
    if (r.kv_gave_up != r.kv_unavailable + r.kv_timeout) {
      std::fprintf(stderr,
                   "CONSERVATION VIOLATION (%s n=%d): gave_up=%lld != "
                   "unavail+timeout=%lld\n",
                   label, n, static_cast<long long>(r.kv_gave_up),
                   static_cast<long long>(r.kv_unavailable + r.kv_timeout));
      ++violations;
    }
  };

  std::vector<std::string> header = {"nodes",     "real",      "colo",
                                     "sc+pil",    "colo err",  "pil err",
                                     "faults",    "restarts",  "blocked",
                                     "retries",   "gave up"};
  std::vector<std::vector<std::string>> rows;

  for (int n : scales) {
    const RunResult& real =
        report.Get(spec.id, RunMode::kRealScale, n, kDefaultSuiteSeed);
    const RunResult& colo =
        report.Get(spec.id, RunMode::kColocated, n, kDefaultSuiteSeed);
    const RunResult& replay =
        report.Get(spec.id, RunMode::kPilReplay, n, kDefaultSuiteSeed);
    check_conservation("real", n, real);
    check_conservation("colo", n, colo);
    check_conservation("memoize", n,
                       report.Get(spec.id, RunMode::kMemoize, n, kDefaultSuiteSeed));
    check_conservation("replay", n, replay);
    rows.push_back({
        StrFormat("%d", n),
        StrFormat("%lld", static_cast<long long>(real.flaps)),
        StrFormat("%lld", static_cast<long long>(colo.flaps)),
        StrFormat("%lld", static_cast<long long>(replay.flaps)),
        StrFormat("%.0f%%", RelativeFlapError(colo.flaps, real.flaps) * 100.0),
        StrFormat("%.0f%%", RelativeFlapError(replay.flaps, real.flaps) * 100.0),
        StrFormat("%lld/%lld", static_cast<long long>(real.fault_events_applied),
                  static_cast<long long>(real.fault_events_healed)),
        StrFormat("%d", real.restarted_nodes),
        StrFormat("%llu", static_cast<unsigned long long>(real.messages_blocked)),
        StrFormat("%lld", static_cast<long long>(real.kv_retries)),
        StrFormat("%lld", static_cast<long long>(real.kv_gave_up)),
    });
  }
  std::printf("%s\n", RenderTable(header, rows).c_str());
  std::printf(
      "Expected shape: SC+PIL flap error stays small at every scale while\n"
      "colocation's grows with N; fault/KV columns are from the real run.\n");
  if (violations > 0) {
    std::fprintf(stderr, "\n%d conservation violation(s) — KV requests were lost\n",
                 violations);
    return 1;
  }
  std::printf("KV conservation held for every run (no request lost).\n");
  return 0;
}
