#include "bench/bench_util.h"

namespace scalecheck {
namespace bench {

void RunFigure3Series(const BugSpec& spec, const std::vector<int>& scales, int jobs,
                      const char* figure_label) {
  std::printf("%s — bug %s: %s\n", figure_label, spec.id.c_str(),
              spec.description.c_str());
  std::printf("calculator=%s placement=%s vnodes=%d workload=%s jobs=%d\n\n",
              CalcVersionName(spec.calc_version), CalcPlacementName(spec.placement),
              spec.vnodes_per_node, WorkloadKindName(spec.workload), jobs);

  // The whole figure is one declarative grid; the suite fans the independent
  // runs out across host threads (replays still wait for their memoize runs).
  ExperimentSpec grid;
  grid.bugs = {spec};
  grid.modes = {RunMode::kRealScale, RunMode::kColocated, RunMode::kMemoize,
                RunMode::kPilReplay};
  grid.scales = scales;
  grid.jobs = jobs;

  WallTimer timer;
  SuiteReport report = ExperimentSuite(grid).Run();
  double elapsed = timer.Seconds();

  std::vector<std::string> header = {"#Nodes",   "Real",      "Colo",
                                     "SC+PIL",   "PIL err",   "Colo err",
                                     "memoDB",   "hit rate",  "run wall(s)"};
  std::vector<std::vector<std::string>> rows;

  for (int n : scales) {
    ScaleCheckResult r = report.Assemble(spec.id, n, kDefaultSuiteSeed);
    double cell_wall = 0.0;
    for (RunMode mode : grid.modes) {
      cell_wall += report.Find(spec.id, mode, n, kDefaultSuiteSeed)->wall_seconds;
    }
    rows.push_back({
        StrFormat("%d", n),
        StrFormat("%.1fk", static_cast<double>(r.real.flaps) / 1000.0),
        StrFormat("%.1fk", static_cast<double>(r.colo.flaps) / 1000.0),
        StrFormat("%.1fk", static_cast<double>(r.replay.flaps) / 1000.0),
        StrFormat("%.0f%%", r.replay_flap_error * 100.0),
        StrFormat("%.0f%%", r.colo_flap_error * 100.0),
        StrFormat("%llu", static_cast<unsigned long long>(r.memo.records)),
        StrFormat("%.0f%%",
                  r.replay.pil.replay_hits + r.replay.pil.replay_misses == 0
                      ? 0.0
                      : 100.0 * static_cast<double>(r.replay.pil.replay_hits) /
                            static_cast<double>(r.replay.pil.replay_hits +
                                                r.replay.pil.replay_misses)),
        StrFormat("%.1f", cell_wall),
    });
    std::printf("  n=%-4d real: %s\n", n, r.real.Summary().c_str());
    std::printf("         colo: %s\n", r.colo.Summary().c_str());
    std::printf("         memo: %s\n", r.memoize.Summary().c_str());
    std::printf("       replay: %s\n\n", r.replay.Summary().c_str());
  }

  std::printf("%s\n", RenderTable(header, rows).c_str());
  if (jobs <= 0) {
    std::printf("suite wall-clock: %.1fs elapsed for %.1fs of runs (auto host threads)\n",
                elapsed, report.total_run_wall_seconds());
  } else {
    std::printf("suite wall-clock: %.1fs elapsed for %.1fs of runs (%d host thread%s)\n",
                elapsed, report.total_run_wall_seconds(), jobs, jobs == 1 ? "" : "s");
  }
  std::printf("Paper shape check: flaps surface only at the largest scales; Colo is "
              "far off Real at every scale; SC+PIL tracks Real.\n");
}

}  // namespace bench
}  // namespace scalecheck
