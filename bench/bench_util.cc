#include "bench/bench_util.h"

namespace scalecheck {
namespace bench {

void RunFigure3Series(const BugSpec& spec, const std::vector<int>& scales,
                      const char* figure_label) {
  std::printf("%s — bug %s: %s\n", figure_label, spec.id.c_str(),
              spec.description.c_str());
  std::printf("calculator=%s placement=%s vnodes=%d workload=%s\n\n",
              CalcVersionName(spec.calc_version), CalcPlacementName(spec.placement),
              spec.vnodes_per_node, WorkloadKindName(spec.workload));

  std::vector<std::string> header = {"#Nodes",   "Real",      "Colo",
                                     "SC+PIL",   "PIL err",   "Colo err",
                                     "memoDB",   "hit rate",  "wall(s)"};
  std::vector<std::vector<std::string>> rows;

  for (int n : scales) {
    WallTimer timer;
    ScaleCheckRunner runner(spec);
    ScaleCheckResult r = runner.RunFull(n);
    rows.push_back({
        StrFormat("%d", n),
        StrFormat("%.1fk", static_cast<double>(r.real.flaps) / 1000.0),
        StrFormat("%.1fk", static_cast<double>(r.colo.flaps) / 1000.0),
        StrFormat("%.1fk", static_cast<double>(r.replay.flaps) / 1000.0),
        StrFormat("%.0f%%", r.replay_flap_error * 100.0),
        StrFormat("%.0f%%", r.colo_flap_error * 100.0),
        StrFormat("%llu", static_cast<unsigned long long>(r.memo.records)),
        StrFormat("%.0f%%",
                  r.replay.pil.replay_hits + r.replay.pil.replay_misses == 0
                      ? 0.0
                      : 100.0 * static_cast<double>(r.replay.pil.replay_hits) /
                            static_cast<double>(r.replay.pil.replay_hits +
                                                r.replay.pil.replay_misses)),
        StrFormat("%.1f", timer.Seconds()),
    });
    std::printf("  n=%-4d real: %s\n", n, r.real.Summary().c_str());
    std::printf("         colo: %s\n", r.colo.Summary().c_str());
    std::printf("         memo: %s\n", r.memoize.Summary().c_str());
    std::printf("       replay: %s\n\n", r.replay.Summary().c_str());
  }

  std::printf("%s\n", RenderTable(header, rows).c_str());
  std::printf("Paper shape check: flaps surface only at the largest scales; Colo is "
              "far off Real at every scale; SC+PIL tracks Real.\n");
}

}  // namespace bench
}  // namespace scalecheck
