// Reproduces Figure 1's conceptual timing comparison with measured numbers.
//
// A batch of N nodes each runs one compute burst of duration t (on a
// dedicated core). We measure the virtual completion time of the whole batch
// under:
//   (a) real scale        — N machines: finishes in t
//   (b) basic colocation  — one single-core machine: finishes in ~N*t
//   (c) PIL replay        — one machine, bursts replaced by sleep(t): t+e
// plus the DieCast-style time-dilation comparator from §4: accuracy equals
// real scale, but each debugging iteration costs TDF*t of wall time.

#include <cstdio>
#include <memory>
#include <vector>

#include "bench/bench_util.h"
#include "src/sim/machine.h"

namespace scalecheck {
namespace {

// Completion time of N bursts of `work` units on the given machine pool.
VirtualDuration RunBatch(int n, WorkUnits work, int machines_count, double cores,
                         bool as_sleep) {
  Simulator sim(1);
  MachineSpec spec;
  spec.cores = cores;
  spec.ctx_switch_penalty = 0.0;
  MachineSet machines(&sim, spec, machines_count);
  int done = 0;
  for (int i = 0; i < n; ++i) {
    Machine* m = machines.Place(i, (n + machines_count - 1) / machines_count);
    if (as_sleep) {
      sim.ScheduleAfter(VirtualDuration::FromSecondsF(
                            static_cast<double>(work) / spec.core_speed),
                        [&done] { ++done; });
    } else {
      m->cpu().StartTask(work, [&done] { ++done; });
    }
  }
  sim.RunUntilIdle();
  return sim.Now() - VirtualTime::Zero();
}

}  // namespace
}  // namespace scalecheck

int main(int argc, char** argv) {
  using namespace scalecheck;
  const WorkUnits kWork = 2'000'000'000;  // t = 2s on one core
  const double kT = 2.0;

  std::printf("Figure 1: scale-testing approaches, batch of N 2s-bursts, 1-core hosts\n\n");
  std::vector<std::string> header = {"N",       "Real (N machines)", "Basic colo (1 machine)",
                                     "PIL replay", "DieCast wall (TDF=N)"};
  std::vector<std::vector<std::string>> rows;
  for (int n : {2, 4, 8, 16, 32}) {
    VirtualDuration real = RunBatch(n, kWork, n, 1.0, false);
    VirtualDuration colo = RunBatch(n, kWork, 1, 1.0, false);
    VirtualDuration pil = RunBatch(n, kWork, 1, 1.0, true);
    rows.push_back({
        StrFormat("%d", n),
        real.ToString(),
        StrFormat("%s (%.1fx t)", colo.ToString().c_str(), colo.seconds() / kT),
        StrFormat("%s (t+e)", pil.ToString().c_str()),
        StrFormat("%.0fs", kT * n),
    });
  }
  std::printf("%s\n", RenderTable(header, rows).c_str());
  std::printf("Real-scale finishes in t; basic colocation in ~N*t; PIL replay in t+e;\n"
              "DieCast matches real behaviour but pays TDF*t wall-clock per iteration.\n");
  return 0;
}
