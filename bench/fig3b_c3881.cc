// Reproduces Figure 3(b): bug C3881 (scale-out with virtual nodes).
//
// The C3831 fix is quadratic in ring entries; with P vnodes per node the
// entry count is N*P and the calculation explodes at much smaller N than
// C3831 did — the paper's flapping for this bug becomes visible already at
// 128 nodes.

#include "bench/bench_util.h"

int main(int argc, char** argv) {
  using namespace scalecheck;
  bench::RunFigure3Series(BugCatalog::Get("C3881"), bench::ScalesFromArgs(argc, argv),
                          bench::JobsFromArgs(argc, argv),
                          "Figure 3(b): #Flaps vs #Nodes, c3881 Scale-Out (vnodes)");
  return 0;
}
