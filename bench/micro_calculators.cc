// Microbenchmarks: wall-clock of the real calculator loop nests across ring
// sizes, verifying that the implementations really exhibit their claimed
// scale-dependence (the complexity classes behind Figure 3).

#include <benchmark/benchmark.h>

#include "src/ring/calculators.h"

namespace scalecheck {
namespace {

CalcInput MakeInput(TokenRing* ring, int n, int p, int changes) {
  ring->AddNode(0, GenerateTokens(0, p, 5));
  for (NodeId id = 1; id < n; ++id) {
    ring->AddNode(id, GenerateTokens(id, p, 5));
  }
  CalcInput input;
  input.ring = ring;
  input.rf = 3;
  for (int c = 0; c < changes; ++c) {
    NodeId id = n + c;
    input.changes.push_back(
        PendingChange{id, ChangeKind::kJoining, GenerateTokens(id, p, 5)});
  }
  return input;
}

void BM_Calculator(benchmark::State& state, CalcVersion version, int p) {
  int n = static_cast<int>(state.range(0));
  TokenRing ring;
  CalcInput input = MakeInput(&ring, n, p, std::max(1, n / 8));
  auto calc = MakeCalculator(version);
  int64_t ops = 0;
  for (auto _ : state) {
    CalcResult result = calc->Execute(input);
    ops = result.ops;
    benchmark::DoNotOptimize(result.pending);
  }
  state.counters["ops"] = static_cast<double>(ops);
  state.counters["ops_model"] = static_cast<double>(calc->ModelOps(input));
  state.SetComplexityN(n);
}

BENCHMARK_CAPTURE(BM_Calculator, reference_p4, CalcVersion::kReference, 4)
    ->RangeMultiplier(2)
    ->Range(8, 64)
    ->Complexity();
BENCHMARK_CAPTURE(BM_Calculator, v1_p1, CalcVersion::kV1PreC3831, 1)
    ->RangeMultiplier(2)
    ->Range(8, 64)
    ->Complexity();
BENCHMARK_CAPTURE(BM_Calculator, v2_p1, CalcVersion::kV2C3831Fix, 1)
    ->RangeMultiplier(2)
    ->Range(8, 64)
    ->Complexity();
BENCHMARK_CAPTURE(BM_Calculator, v2_p8, CalcVersion::kV2C3831Fix, 8)
    ->RangeMultiplier(2)
    ->Range(8, 32)
    ->Complexity();
BENCHMARK_CAPTURE(BM_Calculator, v3_p16, CalcVersion::kV3C3881Fix, 16)
    ->RangeMultiplier(2)
    ->Range(8, 64)
    ->Complexity();
BENCHMARK_CAPTURE(BM_Calculator, bootstrap_p16, CalcVersion::kBootstrapC6127, 16)
    ->RangeMultiplier(2)
    ->Range(8, 64)
    ->Complexity();

}  // namespace
}  // namespace scalecheck

BENCHMARK_MAIN();
