// Reproduces the Figure 2(b) artifact: the offending-function finder report.
//
// Profiles the substrate at small scales across three workloads, fits
// per-function complexity, checks PIL safety, and prints which functions
// should "take the PIL" — including the path-dependence result: the C6127
// fresh-ring construction is only reached by the bootstrap-from-scratch
// workload.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/sfind/finder.h"

int main(int argc, char** argv) {
  using namespace scalecheck;

  std::printf("sfind: offending-function report (profiled at small scales)\n\n");

  SfindOptions options;
  options.calc_version = CalcVersion::kV1PreC3831;
  options.vnodes_per_node = 1;
  options.scales = {8, 12, 16, 24};
  options.target_scale = 256;

  OffendingFunctionFinder finder(options);
  std::vector<OffenderReport> reports = finder.Run();
  std::printf("%s\n",
              OffendingFunctionFinder::RenderReport(reports, options.target_scale)
                  .c_str());

  std::printf(
      "Reading the report:\n"
      " - calculatePendingRanges/v1 fits a superlinear exponent, is PIL-safe\n"
      "   (memoizable, no side effects) => replace with sleep() in replays.\n"
      " - freshRingConstruction/C6127 is reached ONLY by the bootstrap-fresh\n"
      "   workload (the paper's path-dependence warning, Figure 2-b).\n"
      " - gossip handleSyn/applyStates are linear scale-dependent (the other\n"
      "   53%% class) but NOT PIL-safe: they send messages.\n"
      " - the failure-detector sweep reads the clock: not memoizable.\n");
  return 0;
}
