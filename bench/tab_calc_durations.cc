// Reproduces the §3 observation that offending-function durations are
// impossible to eyeball: "the design model and proof did not account gossip
// processing time during bootstrap/cluster-rescale, whose duration is hard
// to predict (ranges from 0.001 to 4 seconds in our test)".
//
// For every calculator generation we print the single-invocation duration
// (dedicated core) across scales and change-set sizes, from the calibrated
// cost models (which tests pin against the executed loop nests).

#include <cstdio>

#include "bench/bench_util.h"
#include "src/ring/calculators.h"

namespace scalecheck {
namespace {

VirtualDuration DurationAt(const PendingRangeCalculator& calc, int n, int p,
                           int changes, bool leaving) {
  TokenRing ring;
  for (NodeId id = 0; id < n; ++id) {
    ring.AddNode(id, GenerateTokens(id, p, 77));
  }
  CalcInput input;
  input.ring = &ring;
  input.rf = 3;
  for (int c = 0; c < changes; ++c) {
    if (leaving) {
      input.changes.push_back(PendingChange{c, ChangeKind::kLeaving, {}});
    } else {
      NodeId id = n + c;
      input.changes.push_back(
          PendingChange{id, ChangeKind::kJoining, GenerateTokens(id, p, 77)});
    }
  }
  return VirtualDuration::FromSecondsF(
      static_cast<double>(calc.ModelWork(input)) / 1e9);
}

}  // namespace
}  // namespace scalecheck

int main(int argc, char** argv) {
  using namespace scalecheck;
  std::printf("Section 3: offending-function durations across scale and input\n\n");

  struct Row {
    CalcVersion version;
    int p;
    int changes_for(int n) const { return std::max(1, n / 4); }
  };
  std::vector<std::string> header = {"calculator", "P", "N=32", "N=64", "N=128", "N=256"};
  std::vector<std::vector<std::string>> rows;

  for (const auto& [version, p] :
       std::vector<std::pair<CalcVersion, int>>{{CalcVersion::kV1PreC3831, 1},
                                                {CalcVersion::kV2C3831Fix, 1},
                                                {CalcVersion::kV2C3831Fix, 8},
                                                {CalcVersion::kV3C3881Fix, 16},
                                                {CalcVersion::kBootstrapC6127, 16},
                                                {CalcVersion::kReference, 16}}) {
    auto calc = MakeCalculator(version);
    std::vector<std::string> row = {calc->name(), StrFormat("%d", p)};
    for (int n : {32, 64, 128, 256}) {
      bool leaving = version == CalcVersion::kV1PreC3831;
      int changes = leaving ? 1 : std::max(1, n / 4);
      row.push_back(DurationAt(*calc, n, p, changes, leaving).ToString());
    }
    rows.push_back(std::move(row));
  }
  std::printf("%s\n", RenderTable(header, rows).c_str());
  std::printf("The paper's observed 0.001-4s range corresponds to the sub-200-node\n"
              "cells; the >4s cells are exactly the deployments where flapping starts.\n");
  return 0;
}
