// Reproduces the §2-§4 bug-study aggregates: 38 scalability bugs across
// seven systems, their protocols, root-cause split, symptom scales, and
// time-to-fix.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/study/bug_database.h"

int main(int argc, char** argv) {
  using namespace scalecheck;

  std::printf("Sections 2-4: the scalability-bug study (38 bugs)\n\n");

  // Per-system counts — §2: "9 Cassandra, 5 Couchbase, 2 Hadoop, 9 HBase,
  // 11 HDFS, 1 Riak, and 1 Voldemort".
  std::vector<std::string> header = {"system", "bugs", "CPU-class", "serialization"};
  std::vector<std::vector<std::string>> rows;
  for (auto system :
       {StudySystem::kCassandra, StudySystem::kCouchbase, StudySystem::kHadoop,
        StudySystem::kHBase, StudySystem::kHdfs, StudySystem::kRiak,
        StudySystem::kVoldemort}) {
    auto bugs = BugDatabase::BySystem(system);
    int cpu = 0;
    for (const StudyBug& bug : bugs) {
      if (bug.root_cause == RootCauseClass::kScaleDependentComputation) {
        ++cpu;
      }
    }
    rows.push_back({StudySystemName(system), StrFormat("%zu", bugs.size()),
                    StrFormat("%d", cpu), StrFormat("%zu", bugs.size() - cpu)});
  }
  std::printf("%s\n", RenderTable(header, rows).c_str());

  std::printf("total bugs: %zu\n", BugDatabase::All().size());
  std::printf("scale-dependent CPU computation: %.0f%% (paper: 47%%)\n",
              BugDatabase::CpuComputationFraction() * 100.0);
  std::printf("unexpected O(N) serialization:   %.0f%% (paper: 53%%)\n",
              (1.0 - BugDatabase::CpuComputationFraction()) * 100.0);
  std::printf("average time-to-fix: %.1f months (paper: ~1 month)\n",
              BugDatabase::AverageFixMonths());
  std::printf("maximum time-to-fix: %d months (paper: 5 months)\n",
              BugDatabase::MaxFixMonths());
  std::printf("symptoms needing >100 nodes to surface: %.0f%%\n",
              BugDatabase::FractionRequiringScale(100) * 100.0);

  std::printf("\nPer-protocol distribution (§3: \"diverse protocols\"):\n");
  std::vector<std::string> pheader = {"protocol", "bugs"};
  std::vector<std::vector<std::string>> prows;
  for (auto p : {ProtocolPath::kBootstrap, ProtocolPath::kScaleOut,
                 ProtocolPath::kDecommission, ProtocolPath::kRebalance,
                 ProtocolPath::kFailover, ProtocolPath::kDataPath}) {
    prows.push_back(
        {ProtocolPathName(p), StrFormat("%zu", BugDatabase::ByProtocol(p).size())});
  }
  std::printf("%s\n", RenderTable(pheader, prows).c_str());

  std::printf("The Cassandra lineage (named in the paper):\n");
  for (const StudyBug& bug : BugDatabase::BySystem(StudySystem::kCassandra)) {
    if (!bug.curated) {
      std::printf("  %-16s %-13s %s — %s\n", bug.id.c_str(),
                  ProtocolPathName(bug.protocol), bug.complexity.c_str(),
                  bug.symptom.c_str());
    }
  }
  std::printf("(entries not individually named in the paper are curated from its "
              "aggregate statistics and marked as such in src/study/)\n");
  return 0;
}
