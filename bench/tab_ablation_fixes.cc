// Ablation: the historical patches make the symptoms vanish.
//
// §2 narrates bug -> fix -> new bug; this bench confirms each fix works at
// the scale where its bug flapped, using real-scale runs:
//   C3831 (V1, decommission)  vs  its fix (V2, same workload)
//   C5456 (coarse ring lock)  vs  its fix (clone + early release)
// and quantifies the C5456 mechanism via ring-lock hold times.

#include <cstdio>

#include "bench/bench_util.h"

namespace scalecheck {
namespace {

void CompareAtScale(const SuiteReport& report, const std::string& buggy_id,
                    const std::string& fixed_id, int n,
                    std::vector<std::vector<std::string>>* rows) {
  const RunResult& b = report.Get(buggy_id, RunMode::kRealScale, n, kDefaultSuiteSeed);
  const RunResult& f = report.Get(fixed_id, RunMode::kRealScale, n, kDefaultSuiteSeed);
  rows->push_back({
      buggy_id + " vs " + fixed_id,
      StrFormat("%d", n),
      StrFormat("%lld", static_cast<long long>(b.flaps)),
      StrFormat("%lld", static_cast<long long>(f.flaps)),
      StrFormat("%.3fs", b.calc_duration_seconds.max()),
      StrFormat("%.3fs", f.calc_duration_seconds.max()),
      StrFormat("%.3fs", b.calc_lock_hold_seconds.max()),
      StrFormat("%.3fs", f.calc_lock_hold_seconds.max()),
  });
}

}  // namespace
}  // namespace scalecheck

int main(int argc, char** argv) {
  using namespace scalecheck;
  int n = bench::NodesFromArgs(argc, argv, 256);
  std::printf("Ablation: buggy configuration vs its historical fix (real-scale runs "
              "at N=%d)\n\n", n);

  // Four independent real-scale runs — one grid, parallel under --jobs=N.
  ExperimentSpec grid;
  grid.bugs = {BugCatalog::Get("C3831"), BugCatalog::Get("C3831-fixed"),
               BugCatalog::Get("C5456"), BugCatalog::Get("C5456-fixed")};
  grid.modes = {RunMode::kRealScale};
  grid.scales = {n};
  grid.jobs = bench::JobsFromArgs(argc, argv);
  SuiteReport report = ExperimentSuite(grid).Run();

  std::vector<std::string> header = {"pair",        "N",          "flaps(bug)",
                                     "flaps(fix)",  "calc max(bug)", "calc max(fix)",
                                     "lock max(bug)", "lock max(fix)"};
  std::vector<std::vector<std::string>> rows;
  CompareAtScale(report, "C3831", "C3831-fixed", n, &rows);
  CompareAtScale(report, "C5456", "C5456-fixed", n, &rows);
  std::printf("%s\n", RenderTable(header, rows).c_str());
  std::printf("Expected: each fix eliminates (or slashes) the flaps its bug caused —\n"
              "C3831's fix by removing the cubic computation, C5456's by shrinking\n"
              "the ring-lock hold from the whole calculation to just the clone.\n");
  return 0;
}
