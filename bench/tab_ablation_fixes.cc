// Ablation: the historical patches make the symptoms vanish.
//
// §2 narrates bug -> fix -> new bug; this bench confirms each fix works at
// the scale where its bug flapped, using real-scale runs:
//   C3831 (V1, decommission)  vs  its fix (V2, same workload)
//   C5456 (coarse ring lock)  vs  its fix (clone + early release)
// and quantifies the C5456 mechanism via ring-lock hold times.

#include <cstdio>

#include "bench/bench_util.h"

namespace scalecheck {
namespace {

void CompareAtScale(const BugSpec& buggy, const BugSpec& fixed, int n,
                    std::vector<std::vector<std::string>>* rows) {
  ScaleCheckRunner buggy_runner(buggy);
  ScaleCheckRunner fixed_runner(fixed);
  RunResult b = buggy_runner.RunReal(n);
  RunResult f = fixed_runner.RunReal(n);
  rows->push_back({
      buggy.id + " vs " + fixed.id,
      StrFormat("%d", n),
      StrFormat("%lld", static_cast<long long>(b.flaps)),
      StrFormat("%lld", static_cast<long long>(f.flaps)),
      StrFormat("%.3fs", b.calc_duration_seconds.max()),
      StrFormat("%.3fs", f.calc_duration_seconds.max()),
      StrFormat("%.3fs", b.calc_lock_hold_seconds.max()),
      StrFormat("%.3fs", f.calc_lock_hold_seconds.max()),
  });
}

}  // namespace
}  // namespace scalecheck

int main(int argc, char** argv) {
  using namespace scalecheck;
  int n = 256;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--nodes=", 0) == 0) {
      n = std::stoi(arg.substr(8));
    }
  }
  std::printf("Ablation: buggy configuration vs its historical fix (real-scale runs "
              "at N=%d)\n\n", n);
  std::vector<std::string> header = {"pair",        "N",          "flaps(bug)",
                                     "flaps(fix)",  "calc max(bug)", "calc max(fix)",
                                     "lock max(bug)", "lock max(fix)"};
  std::vector<std::vector<std::string>> rows;
  CompareAtScale(C3831Spec(), C3831FixedSpec(), n, &rows);
  CompareAtScale(C5456Spec(), C5456FixedSpec(), n, &rows);
  std::printf("%s\n", RenderTable(header, rows).c_str());
  std::printf("Expected: each fix eliminates (or slashes) the flaps its bug caused —\n"
              "C3831's fix by removing the cubic computation, C5456's by shrinking\n"
              "the ring-lock hold from the whole calculation to just the clone.\n");
  return 0;
}
