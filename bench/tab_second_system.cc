// §7 future work: "integrate the process to other distributed systems beyond
// Cassandra". Scale-checks the HDFS-like master/worker substrate (src/dfs/):
// the startup block-report storm — a member of the §4 footnote's
// serialization class (53% of the studied bugs) — surfaces only past ~100
// DataNodes, and the PIL-safe re-replication scan takes the PIL in replays.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/dfs/dfs.h"

int main(int argc, char** argv) {
  using namespace scalecheck;
  std::printf("Second target system: HDFS-like startup block-report storm\n\n");

  std::vector<std::string> header = {"#DataNodes", "mode",   "dead marks",
                                     "re-regs",    "shed",   "scans",
                                     "stable",     "NN util"};
  std::vector<std::vector<std::string>> rows;
  for (int n : bench::ScalesFromArgs(argc, argv)) {
    DfsConfig config;
    config.datanodes = n;

    DfsResult real = RunDfsStartup(config, DfsMode::kRealScale);
    DfsResult colo = RunDfsStartup(config, DfsMode::kColocated);
    MemoStore store;
    DfsResult memoize = RunDfsStartup(config, DfsMode::kMemoize, &store);
    DfsResult replay = RunDfsStartup(config, DfsMode::kPilReplay, &store);
    (void)memoize;

    auto row = [&](const char* mode, const DfsResult& r) {
      rows.push_back({StrFormat("%d", n), mode,
                      StrFormat("%lld", static_cast<long long>(r.dead_marks)),
                      StrFormat("%lld", static_cast<long long>(r.re_registrations)),
                      StrFormat("%lld", static_cast<long long>(r.reports_shed)),
                      StrFormat("%lld", static_cast<long long>(r.scans_run)),
                      r.stabilized ? r.stabilize_time.ToString() : "NEVER",
                      StrFormat("%.1f%%", r.namenode_utilization * 100)});
    };
    row("Real", real);
    row("Colo", colo);
    row("SC+PIL", replay);
    std::printf("  n=%-4d real:   %s\n", n, real.Summary().c_str());
    std::printf("         colo:   %s\n", colo.Summary().c_str());
    std::printf("         replay: %s\n\n", replay.Summary().c_str());
  }
  std::printf("%s\n", RenderTable(header, rows).c_str());
  std::printf(
      "Expected: clean startup at <=64 DataNodes; dead-mark/re-registration storms\n"
      "past ~128 (invisible in small-cluster testing); SC+PIL tracks Real. Unlike\n"
      "the Cassandra bugs, the bottleneck here is ONE node's lock, so basic\n"
      "colocation distorts less — this is the 53%% serialization class the paper\n"
      "says PIL's program analysis must be 'slightly extended' for.\n");
  return 0;
}
