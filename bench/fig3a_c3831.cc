// Reproduces Figure 3(a): bug C3831 (decommission).
//
// The y-axis is the total number of flaps observed cluster-wide while a node
// is decommissioned, for real-scale deployment, basic colocation, and
// PIL-infused scale-check, at N = 32..256. The paper's shape: no flapping up
// to 128 nodes, a storm at 256; Colo wildly over-reports at smaller scales;
// SC+PIL tracks Real.

#include "bench/bench_util.h"

int main(int argc, char** argv) {
  using namespace scalecheck;
  bench::RunFigure3Series(BugCatalog::Get("C3831"), bench::ScalesFromArgs(argc, argv),
                          bench::JobsFromArgs(argc, argv),
                          "Figure 3(a): #Flaps vs #Nodes, c3831 Decommission");
  return 0;
}
