#include "src/check/invariants.h"

#include <algorithm>
#include <unordered_map>

#include "src/cluster/node.h"
#include "src/common/check.h"
#include "src/common/strings.h"
#include "src/kv/kv_history.h"
#include "src/kv/kv_service.h"
#include "src/kv/storage_engine.h"

namespace scalecheck {

std::vector<std::string> InvariantReport::ViolatedNames() const {
  std::vector<std::string> names;
  names.reserve(violations.size());
  for (const InvariantViolation& v : violations) names.push_back(v.invariant);
  return names;
}

void InvariantReport::WriteJson(JsonWriter* w) const {
  w->BeginObject();
  w->Field("checked", checked);
  w->Field("probes", probes);
  w->Field("kv_checked", kv_checked);
  w->Field("ok", ok());
  w->Key("violations").BeginArray();
  for (const InvariantViolation& v : violations) {
    w->BeginObject();
    w->Field("invariant", v.invariant);
    w->Field("first_at_ns", v.first_at.nanos());
    w->Field("count", v.count);
    w->Field("detail", v.detail);
    w->EndObject();
  }
  w->EndArray();
  w->EndObject();
}

std::string InvariantReport::ToJson() const {
  JsonWriter w;
  WriteJson(&w);
  return w.str();
}

namespace {

// Gate shared by every membership-sensitive checker: the node is running and
// participating.
bool Running(const Node* node) { return !node->crashed() && node->started(); }

// ---- ring-ownership ---------------------------------------------------------

class RingOwnershipInvariant : public Invariant {
 public:
  const char* name() const override { return "ring-ownership"; }

  void Probe(const InvariantContext& ctx, InvariantRegistry* sink) override {
    for (const Node* viewer : *ctx.nodes) {
      if (!Running(viewer) || !viewer->IsSettledView()) continue;
      for (const Node* subject : *ctx.nodes) {
        if (!Running(subject) || subject->my_status() != StatusKind::kNormal) {
          continue;
        }
        if (!viewer->ring().HasNode(subject->id())) continue;
        // TokensOf spans are already sorted (AddNode sorts the slice).
        TokenSpan seen = viewer->ring().TokensOf(subject->id());
        std::vector<Token> truth = subject->my_tokens();
        std::sort(truth.begin(), truth.end());
        if (seen.size() != truth.size() ||
            !std::equal(seen.begin(), seen.end(), truth.begin())) {
          sink->ReportViolation(
              name(), ctx.now,
              StrFormat("node %lld's ring assigns node %lld %zu tokens, "
                        "owner holds %zu",
                        static_cast<long long>(viewer->id()),
                        static_cast<long long>(subject->id()), seen.size(),
                        truth.size()));
        }
      }
    }
  }
};

// ---- gossip-convergence -----------------------------------------------------

class GossipConvergenceInvariant : public Invariant {
 public:
  const char* name() const override { return "gossip-convergence"; }

  void Probe(const InvariantContext& ctx, InvariantRegistry* sink) override {
    const VirtualDuration grace = sink->options().convergence_grace;
    if (ctx.now < ctx.fault_quiet_at + grace) return;
    // Participants: NORMAL, running, and stable in this incarnation long
    // enough that dissemination must have completed.
    std::vector<const Node*> stable;
    for (const Node* node : *ctx.nodes) {
      if (!Running(node) || node->my_status() != StatusKind::kNormal) continue;
      auto it = sink->tracks().find(node->id());
      if (it == sink->tracks().end() || !it->second.has_normal_since) continue;
      if (ctx.now < it->second.normal_since + grace) continue;
      stable.push_back(node);
    }
    for (const Node* viewer : stable) {
      for (const Node* subject : stable) {
        if (viewer == subject) continue;
        if (!viewer->gossiper().IsAlive(subject->id())) {
          sink->ReportViolation(
              name(), ctx.now,
              StrFormat("node %lld still considers live node %lld dead %llds "
                        "after fault quiescence",
                        static_cast<long long>(viewer->id()),
                        static_cast<long long>(subject->id()),
                        static_cast<long long>(
                            (ctx.now - ctx.fault_quiet_at).seconds())));
        }
      }
    }
  }
};

// ---- partition-heals --------------------------------------------------------

// The liveness half of healing, separate from gossip-convergence: the bound
// is denominated in gossip ROUNDS (partition_heal_rounds * gossip_interval),
// so the same invariant checks a 1s-interval simulation and a 100ms-interval
// real-socket cluster with identical protocol-time semantics. This is the
// invariant the ChaosSearch islanding reproducer violated before the
// gossip-to-unreachable escape hatch existed.
class PartitionHealsInvariant : public Invariant {
 public:
  const char* name() const override { return "partition-heals"; }

  void Probe(const InvariantContext& ctx, InvariantRegistry* sink) override {
    const VirtualDuration bound =
        ctx.gossip_interval * sink->options().partition_heal_rounds;
    if (ctx.now < ctx.fault_quiet_at + bound) return;
    // Same stable-participant filter as gossip-convergence, with the heal
    // bound as the stability window: a node that crashed and came back (or
    // just turned NORMAL) gets a fresh window before it must have healed.
    std::vector<const Node*> stable;
    for (const Node* node : *ctx.nodes) {
      if (!Running(node) || node->my_status() != StatusKind::kNormal) continue;
      auto it = sink->tracks().find(node->id());
      if (it == sink->tracks().end() || !it->second.has_normal_since) continue;
      if (ctx.now < it->second.normal_since + bound) continue;
      stable.push_back(node);
    }
    for (const Node* viewer : stable) {
      for (const Node* subject : stable) {
        if (viewer == subject) continue;
        if (!viewer->gossiper().IsAlive(subject->id())) {
          sink->ReportViolation(
              name(), ctx.now,
              StrFormat("node %lld is still islanded from node %lld %lld "
                        "gossip rounds after fault quiescence — the "
                        "unreachable escape hatch never re-established "
                        "contact",
                        static_cast<long long>(subject->id()),
                        static_cast<long long>(viewer->id()),
                        static_cast<long long>(
                            (ctx.now - ctx.fault_quiet_at).nanos() /
                            std::max<int64_t>(1, ctx.gossip_interval.nanos()))));
        }
      }
    }
  }
};

// ---- zombie-endpoint --------------------------------------------------------

class ZombieEndpointInvariant : public Invariant {
 public:
  const char* name() const override { return "zombie-endpoint"; }

  void Probe(const InvariantContext& ctx, InvariantRegistry* sink) override {
    const VirtualDuration grace = sink->options().convergence_grace;
    for (const Node* target : *ctx.nodes) {
      if (target->crashed() || !target->started()) continue;
      StatusKind status = target->my_status();
      if (status != StatusKind::kLeft && status != StatusKind::kRemoved) {
        continue;
      }
      auto it = sink->tracks().find(target->id());
      if (it == sink->tracks().end() || !it->second.has_left_seen) continue;
      VirtualTime quiet = std::max(ctx.fault_quiet_at, it->second.left_seen_at);
      if (ctx.now < quiet + grace) continue;
      for (const Node* viewer : *ctx.nodes) {
        if (viewer == target || !Running(viewer) || !viewer->IsSettledView()) {
          continue;
        }
        if (viewer->ring().HasNode(target->id())) {
          sink->ReportViolation(
              name(), ctx.now,
              StrFormat("node %lld's ring still contains node %lld, which "
                        "completed decommission",
                        static_cast<long long>(viewer->id()),
                        static_cast<long long>(target->id())));
        }
      }
    }
  }
};

// ---- generation-monotonic ---------------------------------------------------

class GenVersionMonotonicInvariant : public Invariant {
 public:
  const char* name() const override { return "generation-monotonic"; }

  void Probe(const InvariantContext& ctx, InvariantRegistry* sink) override {
    for (const Node* viewer : *ctx.nodes) {
      if (!Running(viewer)) continue;
      int64_t viewer_gen =
          viewer->gossiper().LocalState().heartbeat().generation;
      PerViewer& mine = seen_[viewer->id()];
      if (mine.viewer_generation != viewer_gen) {
        // The viewer restarted: its endpoint map was rebuilt from scratch, so
        // old observations no longer constrain it.
        mine.viewer_generation = viewer_gen;
        mine.last.clear();
      }
      for (const auto& [ep, state] : viewer->gossiper().endpoints()) {
        HeartbeatState hb = state.heartbeat();
        int64_t max_version = state.MaxVersion();
        auto it = mine.last.find(ep);
        if (it != mine.last.end()) {
          if (hb.generation < it->second.generation) {
            sink->ReportViolation(
                name(), ctx.now,
                StrFormat("node %lld saw node %lld's generation move "
                          "backwards (%lld -> %lld)",
                          static_cast<long long>(viewer->id()),
                          static_cast<long long>(ep),
                          static_cast<long long>(it->second.generation),
                          static_cast<long long>(hb.generation)));
          } else if (hb.generation == it->second.generation &&
                     max_version < it->second.version) {
            sink->ReportViolation(
                name(), ctx.now,
                StrFormat("node %lld saw node %lld's version move backwards "
                          "(%lld -> %lld) within generation %lld",
                          static_cast<long long>(viewer->id()),
                          static_cast<long long>(ep),
                          static_cast<long long>(it->second.version),
                          static_cast<long long>(max_version),
                          static_cast<long long>(hb.generation)));
          }
        }
        mine.last[ep] = HeartbeatState{hb.generation, max_version};
      }
    }
  }

 private:
  struct PerViewer {
    int64_t viewer_generation = -1;
    std::map<NodeId, HeartbeatState> last;  // generation + max version
  };
  std::map<NodeId, PerViewer> seen_;
};

// ---- kv-history -------------------------------------------------------------

// Verifies the linear client history: an acknowledged write must stay
// visible. A read R of key k returning v is legal iff some write W with value
// v (issue order irrelevant) is not superseded — no OK write W2 exists with
// W.concluded_at < W2.issued_at and W2.concluded_at < R.issued_at. An empty
// read is legal iff no OK write concluded before R was issued. Ops concurrent
// with each other (overlapping issue..conclude windows) are unordered, so the
// check never flags legitimate races — only acknowledged state that later
// vanished.
class KvHistoryInvariant : public Invariant {
 public:
  const char* name() const override { return "kv-history"; }

  void Probe(const InvariantContext& ctx, InvariantRegistry* sink) override {
    if (!ctx.kv_checkable || ctx.history == nullptr) return;
    const KvHistory& h = *ctx.history;
    const auto& ops = h.ops();
    // Index newly issued writes.
    for (; issue_watermark_ < ops.size(); ++issue_watermark_) {
      const KvOpRecord& rec = ops[issue_watermark_];
      if (rec.is_write) writes_by_key_[rec.key].push_back(rec.id);
    }
    // Validate newly concluded reads. Conclusions are processed in order, so
    // every write a read could observe is already indexed (it was issued
    // before the read concluded).
    const auto& order = h.conclusion_order();
    for (; conclude_watermark_ < order.size(); ++conclude_watermark_) {
      const KvOpRecord& rec = ops[order[conclude_watermark_]];
      if (!rec.is_write && rec.outcome == KvOutcome::kOk) {
        CheckRead(rec, ops, sink);
      }
    }
  }

 private:
  void CheckRead(const KvOpRecord& read, const std::vector<KvOpRecord>& ops,
                 InvariantRegistry* sink) {
    auto it = writes_by_key_.find(read.key);
    const std::vector<uint64_t> empty;
    const std::vector<uint64_t>& write_ids =
        it == writes_by_key_.end() ? empty : it->second;

    if (read.result_value.empty()) {
      for (uint64_t wid : write_ids) {
        const KvOpRecord& w = ops[wid];
        if (w.concluded && w.outcome == KvOutcome::kOk &&
            w.concluded_at < read.issued_at) {
          sink->ReportViolation(
              name(), read.concluded_at,
              StrFormat("read op %llu of key %llu returned empty, but write "
                        "op %llu was acknowledged before the read was issued",
                        static_cast<unsigned long long>(read.id),
                        static_cast<unsigned long long>(read.key),
                        static_cast<unsigned long long>(w.id)));
          return;
        }
      }
      return;
    }

    bool matched = false;
    bool legal = false;
    uint64_t superseded_by = 0;
    for (uint64_t wid : write_ids) {
      const KvOpRecord& w = ops[wid];
      if (w.value != read.result_value) continue;
      matched = true;
      bool superseded = false;
      if (w.concluded) {
        for (uint64_t wid2 : write_ids) {
          const KvOpRecord& w2 = ops[wid2];
          if (w2.id == w.id || !w2.concluded ||
              w2.outcome != KvOutcome::kOk) {
            continue;
          }
          if (w.concluded_at < w2.issued_at &&
              w2.concluded_at < read.issued_at) {
            superseded = true;
            superseded_by = w2.id;
            break;
          }
        }
      }
      if (!superseded) {
        legal = true;
        break;
      }
    }
    if (!matched) {
      sink->ReportViolation(
          name(), read.concluded_at,
          StrFormat("read op %llu of key %llu returned a value no write ever "
                    "wrote",
                    static_cast<unsigned long long>(read.id),
                    static_cast<unsigned long long>(read.key)));
    } else if (!legal) {
      sink->ReportViolation(
          name(), read.concluded_at,
          StrFormat("read op %llu of key %llu returned a value superseded by "
                    "acknowledged write op %llu (lost acknowledged write)",
                    static_cast<unsigned long long>(read.id),
                    static_cast<unsigned long long>(read.key),
                    static_cast<unsigned long long>(superseded_by)));
    }
  }

  size_t issue_watermark_ = 0;
  size_t conclude_watermark_ = 0;
  std::map<uint64_t, std::vector<uint64_t>> writes_by_key_;
};

// ---- kv-durability ----------------------------------------------------------

// No-lost-acked-writes at the REPLICA level: every node that acknowledged an
// OK write and is currently running must hold a version of the key at least
// as new as the one it acked — across crash and restart. The audit targets
// the CONCRETE acker set recorded at ack time (KvOpRecord::ackers), not the
// current natural endpoints, so ring movement under failover workloads can't
// produce false positives and a single crashed acker out of a quorum is still
// caught. Crashed/never-restarted ackers are skipped (nothing to inspect);
// restart recovery is synchronous, so a running restarted node has already
// replayed its durable WAL prefix by the time any probe sees it. Gated on
// kv_wal because the default in-memory store survives crashes by construction
// (the check would be vacuous) — with the WAL on, an ack must imply a synced
// record, which is exactly what the plant_kv_ack_before_sync bug breaks.
class KvDurabilityInvariant : public Invariant {
 public:
  const char* name() const override { return "kv-durability"; }

  void Probe(const InvariantContext& ctx, InvariantRegistry* sink) override {
    if (!ctx.kv_checkable || !ctx.kv_wal || ctx.history == nullptr) return;
    const KvHistory& h = *ctx.history;
    const auto& ops = h.ops();
    const auto& order = h.conclusion_order();
    // Fold newly concluded OK writes into the per-(key, acker) obligation:
    // the newest timestamp that acker vouched for.
    for (; conclude_watermark_ < order.size(); ++conclude_watermark_) {
      const KvOpRecord& rec = ops[order[conclude_watermark_]];
      if (!rec.is_write || rec.outcome != KvOutcome::kOk) continue;
      for (NodeId acker : rec.ackers) {
        int64_t& ts = required_[std::make_pair(rec.key, acker)];
        ts = std::max(ts, rec.write_timestamp);
      }
    }
    if (required_.empty()) return;
    std::map<NodeId, const Node*> by_id;
    for (const Node* node : *ctx.nodes) by_id[node->id()] = node;
    for (const auto& [key_acker, ts] : required_) {
      const Node* node = by_id.count(key_acker.second)
                             ? by_id[key_acker.second]
                             : nullptr;
      if (node == nullptr || !Running(node) || node->kv() == nullptr) continue;
      int64_t have = node->kv()->storage().TimestampOf(key_acker.first);
      if (have < ts) {
        sink->ReportViolation(
            name(), ctx.now,
            StrFormat("node %lld acknowledged a write of key %llu at "
                      "timestamp %lld but now holds %lld (acked write lost "
                      "across crash/restart)",
                      static_cast<long long>(key_acker.second),
                      static_cast<unsigned long long>(key_acker.first),
                      static_cast<long long>(ts),
                      static_cast<long long>(have)));
      }
    }
  }

 private:
  size_t conclude_watermark_ = 0;
  // (key, acker) -> newest acked timestamp that pair is on the hook for.
  std::map<std::pair<uint64_t, NodeId>, int64_t> required_;
};

// ---- replica-convergence ----------------------------------------------------

// Anti-entropy health, gated on kv_repair (without repair, divergence that
// hinted handoff missed is EXPECTED to persist, so the check would flag
// healthy runs). Two facets:
//
// Data: after fault quiescence plus convergence_grace, every stable NORMAL
// node that considers itself a natural replica of a sampled key (by its own
// ring view) must hold a version at least as new as the winning acknowledged
// timestamp among OK writes concluded before the grace window opened. The
// winning timestamp only audits writes concluded a full grace period ago, so
// a write racing the probe never false-positives, and a replica holding a
// NEWER version trivially passes (LWW). Sampling covers the most recently
// concluded distinct keys (bounded), newest first — exactly the keys a
// repair pass has had the least time to fix, which is where convergence
// failures hide.
//
// Budget: no node may stream repair bytes beyond twice its configured rate
// integrated over the run plus a fixed slack. The token bucket's burst and
// the post-charged stream overdraft both fit comfortably inside 2x+slack;
// a repair storm that ignores its throttle (plant_repair_storm) does not.
class ReplicaConvergenceInvariant : public Invariant {
 public:
  const char* name() const override { return "replica-convergence"; }

  void Probe(const InvariantContext& ctx, InvariantRegistry* sink) override {
    if (!ctx.kv_repair) return;
    ProbeBudget(ctx, sink);
    if (!ctx.kv_checkable || ctx.history == nullptr) return;
    IndexNewConclusions(*ctx.history);
    const VirtualDuration grace = sink->options().convergence_grace;
    if (ctx.now < ctx.fault_quiet_at + grace) return;
    const VirtualTime cutoff = ctx.now - grace;

    // Sample the most recently concluded distinct keys old enough to audit.
    std::vector<uint64_t> sample;
    {
      std::unordered_map<uint64_t, bool> picked;
      for (auto it = concluded_.rbegin();
           it != concluded_.rend() && sample.size() < kSampleKeys; ++it) {
        if (!(it->concluded_at < cutoff)) continue;
        if (picked.emplace(it->key, true).second) sample.push_back(it->key);
      }
    }
    if (sample.empty()) return;
    std::sort(sample.begin(), sample.end());

    for (const Node* node : *ctx.nodes) {
      if (!Running(node) || node->my_status() != StatusKind::kNormal ||
          node->kv() == nullptr || !node->IsSettledView()) {
        continue;
      }
      auto it = sink->tracks().find(node->id());
      if (it == sink->tracks().end() || !it->second.has_normal_since) continue;
      if (ctx.now < it->second.normal_since + grace) continue;
      for (uint64_t key : sample) {
        int64_t expected = WinningTimestampBefore(key, cutoff);
        if (expected <= 0) continue;
        std::vector<NodeId> replicas = node->ring().NaturalEndpointsForKey(
            KvTokenForKey(key), ctx.replication_factor);
        if (std::find(replicas.begin(), replicas.end(), node->id()) ==
            replicas.end()) {
          continue;
        }
        int64_t have = node->kv()->storage().TimestampOf(key);
        if (have < expected) {
          sink->ReportViolation(
              name(), ctx.now,
              StrFormat("replica %lld of key %llu still holds timestamp %lld "
                        "(< acknowledged %lld) %llds after fault quiescence — "
                        "anti-entropy never converged it",
                        static_cast<long long>(node->id()),
                        static_cast<unsigned long long>(key),
                        static_cast<long long>(have),
                        static_cast<long long>(expected),
                        static_cast<long long>(
                            (ctx.now - ctx.fault_quiet_at).seconds())));
        }
      }
    }
  }

 private:
  static constexpr size_t kSampleKeys = 64;

  struct ConcludedWrite {
    VirtualTime concluded_at;
    uint64_t key = 0;
  };
  struct TimedTimestamp {
    VirtualTime concluded_at;
    int64_t prefix_max_ts = 0;  // max write_timestamp up to this conclusion
  };

  void ProbeBudget(const InvariantContext& ctx, InvariantRegistry* sink) {
    if (ctx.kv_repair_rate_bytes <= 0) return;
    const double elapsed_seconds =
        static_cast<double>(ctx.now.nanos()) / 1e9;
    const double allowance =
        static_cast<double>(ctx.kv_repair_rate_bytes) * elapsed_seconds * 2.0 +
        4.0 * 1024.0 * 1024.0;
    for (const Node* node : *ctx.nodes) {
      if (!Running(node) || node->kv() == nullptr) continue;
      int64_t streamed = node->kv()->stats().repair_bytes_streamed;
      if (static_cast<double>(streamed) > allowance) {
        sink->ReportViolation(
            name(), ctx.now,
            StrFormat("node %lld streamed %lld repair bytes in %.1fs, over "
                      "2x its %lld B/s budget — repair storm",
                      static_cast<long long>(node->id()),
                      static_cast<long long>(streamed), elapsed_seconds,
                      static_cast<long long>(ctx.kv_repair_rate_bytes)));
      }
    }
  }

  // Folds newly concluded OK writes into the recency list and the per-key
  // prefix-max timestamp series (conclusion order is non-decreasing in
  // concluded_at, so each series stays sorted).
  void IndexNewConclusions(const KvHistory& h) {
    const auto& ops = h.ops();
    const auto& order = h.conclusion_order();
    for (; conclude_watermark_ < order.size(); ++conclude_watermark_) {
      const KvOpRecord& rec = ops[order[conclude_watermark_]];
      if (!rec.is_write || rec.outcome != KvOutcome::kOk) continue;
      concluded_.push_back(ConcludedWrite{rec.concluded_at, rec.key});
      std::vector<TimedTimestamp>& series = by_key_[rec.key];
      int64_t prev = series.empty() ? 0 : series.back().prefix_max_ts;
      series.push_back(TimedTimestamp{
          rec.concluded_at, std::max(prev, rec.write_timestamp)});
    }
  }

  // Largest acked write_timestamp of `key` among writes concluded strictly
  // before `cutoff` (0 when none) — O(log series) via the prefix max.
  int64_t WinningTimestampBefore(uint64_t key, VirtualTime cutoff) const {
    auto it = by_key_.find(key);
    if (it == by_key_.end()) return 0;
    const std::vector<TimedTimestamp>& series = it->second;
    auto pos = std::lower_bound(
        series.begin(), series.end(), cutoff,
        [](const TimedTimestamp& t, VirtualTime c) {
          return t.concluded_at < c;
        });
    if (pos == series.begin()) return 0;
    return std::prev(pos)->prefix_max_ts;
  }

  size_t conclude_watermark_ = 0;
  std::vector<ConcludedWrite> concluded_;  // conclusion order
  std::map<uint64_t, std::vector<TimedTimestamp>> by_key_;
};

}  // namespace

InvariantRegistry::InvariantRegistry(CheckOptions options)
    : options_(options) {}

InvariantRegistry::~InvariantRegistry() = default;

void InvariantRegistry::AddBuiltins() {
  Add(std::make_unique<RingOwnershipInvariant>());
  Add(std::make_unique<GossipConvergenceInvariant>());
  Add(std::make_unique<PartitionHealsInvariant>());
  Add(std::make_unique<ZombieEndpointInvariant>());
  Add(std::make_unique<GenVersionMonotonicInvariant>());
  Add(std::make_unique<KvHistoryInvariant>());
  Add(std::make_unique<KvDurabilityInvariant>());
  Add(std::make_unique<ReplicaConvergenceInvariant>());
}

void InvariantRegistry::Add(std::unique_ptr<Invariant> invariant) {
  invariants_.push_back(std::move(invariant));
}

void InvariantRegistry::UpdateTracks(const InvariantContext& ctx) {
  for (const Node* node : *ctx.nodes) {
    NodeTrack& track = tracks_[node->id()];
    bool crashed = node->crashed();
    int64_t generation =
        node->gossiper().LocalState().heartbeat().generation;
    if (!track.seen || crashed || generation != track.generation) {
      // New incarnation (or mid-crash): stability clocks restart.
      track.has_normal_since = false;
    }
    track.seen = true;
    track.crashed = crashed;
    track.generation = generation;
    track.status = node->my_status();
    if (!crashed && node->started() &&
        track.status == StatusKind::kNormal && !track.has_normal_since) {
      track.has_normal_since = true;
      track.normal_since = ctx.now;
    }
    if ((track.status == StatusKind::kLeft ||
         track.status == StatusKind::kRemoved) &&
        !track.has_left_seen) {
      track.has_left_seen = true;
      track.left_seen_at = ctx.now;
    }
  }
}

void InvariantRegistry::Probe(const InvariantContext& ctx) {
  CHECK(ctx.nodes != nullptr);
  report_.checked = true;
  report_.kv_checked = ctx.kv_checkable && ctx.history != nullptr;
  ++report_.probes;
  UpdateTracks(ctx);
  for (const std::unique_ptr<Invariant>& invariant : invariants_) {
    invariant->Probe(ctx, this);
  }
}

void InvariantRegistry::ReportViolation(const std::string& invariant,
                                        VirtualTime at,
                                        const std::string& detail) {
  for (InvariantViolation& v : report_.violations) {
    if (v.invariant == invariant) {
      ++v.count;
      return;
    }
  }
  InvariantViolation v;
  v.invariant = invariant;
  v.first_at = at;
  v.detail = detail;
  v.count = 1;
  report_.violations.push_back(std::move(v));
}

}  // namespace scalecheck
