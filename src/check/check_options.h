// Configuration for the runtime invariant checker (src/check/invariants.h).
//
// Lives in its own header so ClusterConfig can embed it without pulling the
// checker implementation (and its Node introspection) into every config
// consumer.

#ifndef SCALECHECK_SRC_CHECK_CHECK_OPTIONS_H_
#define SCALECHECK_SRC_CHECK_CHECK_OPTIONS_H_

#include "src/common/types.h"

namespace scalecheck {

struct CheckOptions {
  // Master switch: when false the cluster creates no registry and RunResult's
  // invariants block reports checked=false.
  bool enabled = true;

  // Virtual-time probe cadence. Probes are deterministic model inspections
  // (no messages, no CPU charge), so the cadence only trades detection
  // latency against event count.
  VirtualDuration probe_period = VirtualDuration::Seconds(10);

  // Convergence-style invariants (gossip convergence, zombie endpoints) only
  // fire this long after the last fault healed AND after the relevant
  // membership transition was first observed — dissemination takes O(log N)
  // gossip rounds, and flagging a cluster that was never given time to
  // converge would be noise, not a bug. Must stay below the cluster's
  // post-settlement cooldown (40s) so quiesced runs always get at least one
  // gated probe.
  VirtualDuration convergence_grace = VirtualDuration::Seconds(30);

  // partition-heals: after the last fault heals, every stable NORMAL node
  // must see every other stable NORMAL node alive within this many gossip
  // rounds — the liveness bound the gossip-to-unreachable escape hatch must
  // meet (islanded node SYNs a seed in round one; the recovered heartbeat
  // then disseminates in O(log N) rounds). Denominated in rounds, not
  // seconds, so the same bound means the same thing at any gossip interval
  // on either carrier. At the default 1s interval this must stay below the
  // 40s post-settlement cooldown, like convergence_grace.
  int partition_heal_rounds = 35;

  // Test-only planted bug (the ChaosSearch smoke target): a node that first
  // learns about an endpoint through a LEFT status treats it as a join and
  // adds its tokens to the ring — the classic "fresh view mishandles
  // tombstone state" recovery bug. A restarted node re-learns every endpoint
  // from scratch, so a crash after a completed decommission resurrects the
  // decommissioned node in the restarted node's ring: a zombie endpoint.
  bool plant_left_join_bug = false;

  // Test-only planted bug (the crash-durability ChaosSearch smoke target): a
  // replica acknowledges a write at WAL-append time instead of waiting for
  // the group-commit sync — the classic ack-before-fsync mistake. A crash
  // inside the sync window then silently loses acknowledged writes, which
  // the kv-durability invariant reports when the restarted replica's
  // recovered storage is missing a version it acked. Only meaningful with
  // the WAL enabled (ClusterConfig::kv_wal).
  bool plant_kv_ack_before_sync = false;

  // Test-only planted bug (the repair-storm ChaosSearch target): the
  // anti-entropy scheduler ignores its rate limiter, session cap, and
  // pressure yield, and streams full shared token ranges to every co-replica
  // peer on every tick. The replica-convergence invariant's repair-budget
  // facet flags any node whose streamed repair bytes exceed what the
  // configured token bucket could have issued. Only meaningful with
  // ClusterConfig::kv_repair on.
  bool plant_repair_storm = false;
};

}  // namespace scalecheck

#endif  // SCALECHECK_SRC_CHECK_CHECK_OPTIONS_H_
