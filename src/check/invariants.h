// Runtime invariant checking over live cluster state.
//
// A FaultPlan tells us what we did to the cluster; these invariants tell us
// whether the cluster stayed *correct* — the judgment ChaosSearch optimizes
// against. The registry is probed on a virtual-time cadence by the Cluster
// (plus once at run end); probes are pure inspections of deterministic model
// state (no messages, no CPU charge), so the resulting report is part of the
// byte-identical-JSON determinism contract and survives memoize/replay.
//
// Built-in invariants (AddBuiltins):
//   ring-ownership       every live settled node's ring view assigns each
//                        live NORMAL member exactly the member's own durable
//                        token set (token ranges owned by who should own them)
//   gossip-convergence   after faults quiesce and a grace period, every live
//                        NORMAL node sees every other live NORMAL node alive
//   partition-heals      the rounds-denominated liveness bound on healing:
//                        within partition_heal_rounds gossip rounds of fault
//                        quiescence no stable NORMAL node may still consider
//                        another stable NORMAL node dead (the islanding bug
//                        ChaosSearch found — without gossip-to-unreachable a
//                        healed full partition stays islanded forever)
//   zombie-endpoint      a node that completed decommission (LEFT/REMOVED)
//                        must leave every live settled ring view
//   generation-monotonic a viewer's record of a peer's (generation, max
//                        version) never moves backwards within the viewer's
//                        own incarnation
//   kv-history           the recorded client op history satisfies
//                        read-your-writes / no-lost-acknowledged-writes
//                        (only on workloads that preserve key ownership; the
//                        simulator has no data-streaming model, so membership
//                        changes legitimately strand acked data)
//   kv-durability        every replica that acknowledged an OK write and is
//                        currently running must hold a version of the key at
//                        least as new as the acked write — across crash and
//                        restart. Auditing the CONCRETE ackers (not the
//                        current natural endpoints) makes the check immune to
//                        ring movement; only meaningful with the WAL enabled
//                        (kv_wal), since without it replica storage is
//                        unrealistically crash-durable by construction
//   replica-convergence  two facets of anti-entropy health. Data: after fault
//                        quiescence plus a grace period, every stable NORMAL
//                        natural replica of a sampled set of acknowledged
//                        writes must hold a version at least as new as the
//                        winning acked timestamp — divergence that hinted
//                        handoff missed must be repaired by anti-entropy
//                        within the grace window. Budget: with repair on
//                        (kv_repair), no node may stream repair bytes beyond
//                        2x its configured rate over the run (plus a fixed
//                        slack) — the signature of a repair storm that
//                        ignores its throttle (plant_repair_storm)

#ifndef SCALECHECK_SRC_CHECK_INVARIANTS_H_
#define SCALECHECK_SRC_CHECK_INVARIANTS_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/check/check_options.h"
#include "src/common/types.h"
#include "src/gossip/endpoint_state.h"

namespace scalecheck {

class JsonWriter;
class KvHistory;
class Node;

// Aggregated sighting of one invariant: the virtual time and detail of the
// first violation plus how many sightings followed (a persistent zombie is
// re-seen every probe; count separates transient from sticky).
struct InvariantViolation {
  std::string invariant;
  VirtualTime first_at;
  std::string detail;  // first sighting's detail
  int64_t count = 0;
};

struct InvariantReport {
  bool checked = false;
  uint64_t probes = 0;
  bool kv_checked = false;
  // One entry per violated invariant name, in first-violation order.
  std::vector<InvariantViolation> violations;

  bool ok() const { return violations.empty(); }
  std::vector<std::string> ViolatedNames() const;
  void WriteJson(JsonWriter* w) const;
  std::string ToJson() const;
};

// What the registry learned about each node across probes; shared scaffolding
// for the incarnation- and transition-aware gates above.
struct NodeTrack {
  bool seen = false;
  bool crashed = false;
  int64_t generation = 0;  // node's own gossip generation (bumps on restart)
  StatusKind status = StatusKind::kUnknown;
  // First probe that saw this node NORMAL under its current incarnation;
  // cleared by crash or generation bump.
  bool has_normal_since = false;
  VirtualTime normal_since;
  // First probe that saw this node LEFT/REMOVED (never cleared: tombstones
  // are permanent).
  bool has_left_seen = false;
  VirtualTime left_seen_at;
};

class InvariantRegistry;

struct InvariantContext {
  VirtualTime now;
  // All cluster nodes in id order (crashed ones included; checkers filter).
  const std::vector<const Node*>* nodes = nullptr;
  int replication_factor = 3;
  // Virtual instant the last scheduled fault heals (Zero when no faults).
  VirtualTime fault_quiet_at;
  // The deployment's gossip round period (scales partition_heal_rounds).
  VirtualDuration gossip_interval = VirtualDuration::Seconds(1);
  // True when the run's workload preserves key ownership (see kv-history).
  bool kv_checkable = false;
  // True when the durable replica path is on (ClusterConfig::kv_wal); gates
  // kv-durability, which is vacuous against the crash-durable default store.
  bool kv_wal = false;
  // True when anti-entropy repair is on (ClusterConfig::kv_repair); gates the
  // replica-convergence data facet's repair expectation and the budget facet.
  bool kv_repair = false;
  // Per-node repair stream budget in bytes/sec (ClusterConfig's
  // kv_repair_rate_bytes); the budget facet allows 2x this rate integrated
  // over the run plus a fixed slack before calling storm.
  int64_t kv_repair_rate_bytes = 0;
  const KvHistory* history = nullptr;
};

class Invariant {
 public:
  virtual ~Invariant() = default;
  virtual const char* name() const = 0;
  // Inspect ctx and report violations through the registry. Must be
  // deterministic: iterate ordered containers only.
  virtual void Probe(const InvariantContext& ctx, InvariantRegistry* sink) = 0;
};

class InvariantRegistry {
 public:
  explicit InvariantRegistry(CheckOptions options);
  ~InvariantRegistry();
  InvariantRegistry(const InvariantRegistry&) = delete;
  InvariantRegistry& operator=(const InvariantRegistry&) = delete;

  // Registers the eight built-in invariants documented above.
  void AddBuiltins();
  void Add(std::unique_ptr<Invariant> invariant);

  // Updates node tracks, then dispatches every registered invariant.
  void Probe(const InvariantContext& ctx);

  // Aggregates into the report keyed by invariant name: first sighting wins
  // the timestamp/detail, later sightings bump the count.
  void ReportViolation(const std::string& invariant, VirtualTime at,
                       const std::string& detail);

  const InvariantReport& report() const { return report_; }
  const CheckOptions& options() const { return options_; }
  const std::map<NodeId, NodeTrack>& tracks() const { return tracks_; }

 private:
  void UpdateTracks(const InvariantContext& ctx);

  CheckOptions options_;
  InvariantReport report_;
  std::vector<std::unique_ptr<Invariant>> invariants_;
  std::map<NodeId, NodeTrack> tracks_;
};

}  // namespace scalecheck

#endif  // SCALECHECK_SRC_CHECK_INVARIANTS_H_
