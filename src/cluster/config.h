// Cluster and run configuration.

#ifndef SCALECHECK_SRC_CLUSTER_CONFIG_H_
#define SCALECHECK_SRC_CLUSTER_CONFIG_H_

#include <cstdint>

#include "src/check/check_options.h"
#include "src/common/types.h"
#include "src/gossip/failure_detector.h"
#include "src/gossip/gossiper.h"
#include "src/kv/kv_consistency.h"
#include "src/pil/boundary.h"
#include "src/ring/calculators.h"
#include "src/sim/fidelity_guard.h"
#include "src/sim/machine.h"

namespace scalecheck {

// How the cluster under test is deployed onto simulated machines — the axis
// Figure 3 compares.
enum class RunMode : int {
  kRealScale = 0,  // N/8 machines, 8 nodes each (the paper's real testbed)
  kColocated = 1,  // one machine hosts everything; computation runs for real
  kMemoize = 2,    // colocated + PIL recording (Figure 2-d)
  kPilReplay = 3,  // one machine; offending functions sleep (Figure 2-f)
  // Not a simulation deployment at all: the same protocol code on real
  // localhost TCP sockets and wall-clock timers (src/net/). Results carry
  // this mode so RunResult JSON distinguishes measured-for-real runs.
  kRealSockets = 4,
};

const char* RunModeName(RunMode mode);

// Where the pending-range calculation runs and how it synchronizes with
// gossip processing — the third dimension of the bug history.
enum class CalcPlacement : int {
  // C3831/C3881 era: the calculation runs inline on the gossip stage thread,
  // blocking all message processing for its duration.
  kInlineGossipStage = 0,
  // C5456 bug: separate calculation thread, but the ring-table lock is held
  // across the entire calculation; gossip applies block on the lock.
  kSeparateThreadCoarseLock = 1,
  // C5456 fix: the calculation thread clones the ring under the lock and
  // releases it before computing.
  kSeparateThreadClone = 2,
};

const char* CalcPlacementName(CalcPlacement placement);

// When a node re-runs the pending-range calculation (§2: the buggy era
// recalculated far more often than topology actually changed).
enum class RecalcTrigger : int {
  // Only when a STATUS application state changes (the minimal behaviour).
  kStatusChangeOnly = 0,
  // Any state apply (including heartbeats) for an endpoint with an in-flight
  // membership change marks the ring dirty — the historical behaviour that
  // turns one decommission into a recalculation storm.
  kAnyApplyOfPendingEndpoint = 1,
};

// §6: how the colocated deployment is engineered.
enum class ExecModel : int {
  // One OS process per node: per-process runtime overhead (JVM-like ~70 MB)
  // and context-switch degradation from thousands of threads.
  kProcessPerNode = 0,
  // The paper's scale-checkability redesign: all nodes in one process, one
  // global event queue (SEDA-like) — small per-node overhead, few threads.
  kSedaSingleProcess = 1,
};

const char* ExecModelName(ExecModel model);

struct ClusterConfig {
  // ---- Cluster under test -------------------------------------------------
  int initial_nodes = 64;
  int vnodes_per_node = 1;  // P
  int replication_factor = 3;
  CalcVersion calc_version = CalcVersion::kV1PreC3831;
  CalcPlacement calc_placement = CalcPlacement::kInlineGossipStage;
  RecalcTrigger recalc_trigger = RecalcTrigger::kAnyApplyOfPendingEndpoint;
  VirtualDuration gossip_interval = VirtualDuration::Seconds(1);
  PhiAccrualFailureDetector::Config fd;
  Gossiper::WorkCosts gossip_costs;
  WorkUnits fd_check_cost_per_endpoint = 25;
  // Gossip-stage task shedding: queued SYN/ACK/ACK2 processing older than
  // this is dropped unprocessed (Cassandra sheds stage tasks past the RPC
  // timeout — the "GossipStage dropped messages" signature of the studied
  // bugs). Zero disables shedding.
  VirtualDuration gossip_stage_timeout = VirtualDuration::Seconds(4);

  // ---- Deployment -----------------------------------------------------------
  RunMode run_mode = RunMode::kRealScale;
  MachineSpec machine_spec = MachineSpec::Nome();
  int nodes_per_machine_real = 8;  // the paper packed 8 nodes per Nome machine
  ExecModel exec_model = ExecModel::kProcessPerNode;

  // ---- Memory model (§6) ----------------------------------------------------
  int64_t process_overhead_bytes = 70LL * 1024 * 1024;  // JVM-like runtime
  int64_t seda_overhead_bytes = 5LL * 1024 * 1024;
  int64_t endpoint_state_bytes = 1200;  // per known endpoint
  int64_t partition_service_bytes = 1300 * 1024;  // §6: 1.3 MB per service
  // The §6 space-oblivious over-allocation: (N-1)*P services instead of P.
  bool space_oblivious_rebalance = false;

  // ---- Data path -------------------------------------------------------------
  // Enables the quorum KV service on every node (examples, user-impact
  // metrics). The control-plane experiments leave it off.
  bool enable_kv = false;
  // Per-attempt quorum timeout and the client-request retry policy (see
  // KvService::Deps). The default is non-retrying so the control-plane
  // experiments observe raw unavailability; fault-injection runs opt in.
  VirtualDuration kv_timeout = VirtualDuration::Seconds(2);
  int kv_max_attempts = 1;
  VirtualDuration kv_retry_base_backoff = VirtualDuration::Millis(50);
  VirtualDuration kv_request_deadline = VirtualDuration::Seconds(8);
  // Ack threshold for reads and writes (ONE / QUORUM / ALL).
  KvConsistency kv_consistency = KvConsistency::kQuorum;
  // Durable replica path: per-node WAL with group commit; a crash loses the
  // unsynced tail plus the in-memory engine, restart replays the durable
  // prefix. Off by default so the control-plane experiments keep their
  // calibrated (unrealistically crash-durable) storage behaviour.
  bool kv_wal = false;
  VirtualDuration kv_wal_sync_interval = VirtualDuration::Millis(250);
  // Hinted handoff bounds (total hints per coordinator; zero disables) and
  // per-hint TTL.
  size_t kv_hint_limit = 1024;
  VirtualDuration kv_hint_ttl = VirtualDuration::Seconds(120);
  // Background read-repair probability on mismatch-free reads (observed
  // mismatches always repair).
  double kv_read_repair_chance = 0.1;
  // Anti-entropy repair (src/kv/anti_entropy.h): periodic Merkle-tree
  // sessions against co-replica peers, streaming only differing leaf ranges.
  // Off by default — when off no AntiEntropy instance exists and the
  // pre-anti-entropy RNG/golden behaviour is untouched.
  bool kv_repair = false;
  VirtualDuration kv_repair_interval = VirtualDuration::Seconds(10);
  // Overload-safety knobs: token-bucket byte rate, concurrent session cap,
  // per-session timeout/retries, and the in-flight-op threshold above which
  // the scheduler yields to foreground traffic.
  int64_t kv_repair_rate_bytes = 256 * 1024;
  int kv_repair_max_sessions = 1;
  VirtualDuration kv_repair_session_timeout = VirtualDuration::Seconds(10);
  int kv_repair_max_retries = 2;
  size_t kv_repair_pressure_max_inflight = 16;

  // ---- Fidelity guardrails (§8) ---------------------------------------------
  // Budgets for the FidelityGuard that classifies each run ok/degraded/
  // invalid. Enabled by default; all probing is on deterministic model
  // state so the verdict is part of the byte-identical JSON contract.
  FidelityBudgets guard;
  // What a replay divergence does to the run (only meaningful in kPilReplay).
  ReplayPolicy replay_policy = ReplayPolicy::kFallbackToModelled;

  // ---- Invariant checking (correctness, not fidelity) -----------------------
  // The runtime invariant checker (src/check/): probes deterministic model
  // state on a virtual-time cadence and lands an InvariantReport in
  // RunResult. On by default — the report is part of the byte-identical JSON
  // contract, like the guard verdict.
  CheckOptions check;

  // ---- Harness --------------------------------------------------------------
  uint64_t seed = 0x5eedf00d;
  // Calculators execute their real loop nest up to this predicted op count;
  // beyond it the (identical) output comes from the reference oracle and the
  // cost from the calibrated model (DESIGN.md §2).
  int64_t execute_threshold_ops = 2'000'000;

  int64_t RuntimeOverheadBytes() const {
    return exec_model == ExecModel::kProcessPerNode ? process_overhead_bytes
                                                    : seda_overhead_bytes;
  }
  double CtxSwitchPenalty() const {
    // One global queue with a fixed handler pool barely context-switches;
    // thousands of per-node daemon threads do (§6).
    return exec_model == ExecModel::kProcessPerNode ? machine_spec.ctx_switch_penalty
                                                    : machine_spec.ctx_switch_penalty / 10.0;
  }
};

}  // namespace scalecheck

#endif  // SCALECHECK_SRC_CLUSTER_CONFIG_H_
