#include "src/cluster/cluster.h"

#include <algorithm>
#include <cmath>
#include <optional>
#include <utility>

#include "src/common/check.h"
#include "src/common/logging.h"
#include "src/common/strings.h"

namespace scalecheck {

const char* RunModeName(RunMode mode) {
  switch (mode) {
    case RunMode::kRealScale:
      return "Real";
    case RunMode::kColocated:
      return "Colo";
    case RunMode::kMemoize:
      return "Memoize";
    case RunMode::kPilReplay:
      return "SC+PIL";
    case RunMode::kRealSockets:
      return "RealNet";
  }
  return "?";
}

const char* CalcPlacementName(CalcPlacement placement) {
  switch (placement) {
    case CalcPlacement::kInlineGossipStage:
      return "inline-gossip-stage";
    case CalcPlacement::kSeparateThreadCoarseLock:
      return "coarse-lock";
    case CalcPlacement::kSeparateThreadClone:
      return "clone-early-release";
  }
  return "?";
}

const char* ExecModelName(ExecModel model) {
  switch (model) {
    case ExecModel::kProcessPerNode:
      return "process-per-node";
    case ExecModel::kSedaSingleProcess:
      return "seda-single-process";
  }
  return "?";
}

const char* WorkloadKindName(WorkloadKind kind) {
  switch (kind) {
    case WorkloadKind::kSteadyState:
      return "steady-state";
    case WorkloadKind::kDecommission:
      return "decommission";
    case WorkloadKind::kScaleOut:
      return "scale-out";
    case WorkloadKind::kBootstrapFresh:
      return "bootstrap-fresh";
    case WorkloadKind::kFailover:
      return "failover";
    case WorkloadKind::kRebalance:
      return "rebalance";
  }
  return "?";
}

Result<WorkloadKind> WorkloadKindFromName(const std::string& name) {
  static constexpr WorkloadKind kKinds[] = {
      WorkloadKind::kSteadyState,    WorkloadKind::kDecommission,
      WorkloadKind::kScaleOut,       WorkloadKind::kBootstrapFresh,
      WorkloadKind::kFailover,       WorkloadKind::kRebalance,
  };
  for (WorkloadKind kind : kKinds) {
    if (name == WorkloadKindName(kind)) {
      return kind;
    }
  }
  return Status::InvalidArgument("unknown workload '" + name + "'");
}

std::string WorkloadSpec::Describe() const {
  return StrFormat("%s(join=%d target=%d start=%s transition=%s horizon=%s)",
                   WorkloadKindName(kind), joining_nodes, target,
                   start_at.ToString().c_str(), transition.ToString().c_str(),
                   horizon.ToString().c_str());
}

Cluster::Cluster(Options options) : options_(std::move(options)) {
  SimProfiler::Timed timed(options_.profiler, SimProfiler::kPhaseBuild);
  BuildDeployment();
}

Cluster::~Cluster() {
  // Nodes must die before machines/simulator (their threads deregister from
  // the CPU model); vector order guarantees it because nodes_ is declared
  // last among owning members... but be explicit:
  nodes_.clear();
}

void Cluster::BuildDeployment() {
  const ClusterConfig& cfg = options_.config;
  const WorkloadSpec& wl = options_.workload;

  initial_nodes_ = cfg.initial_nodes;
  joining_nodes_ = wl.joining_nodes;
  if (wl.kind == WorkloadKind::kBootstrapFresh) {
    // Everyone bootstraps; "initial" nodes are fresh too.
    joining_nodes_ = 0;
  }
  int total = initial_nodes_ + joining_nodes_;
  CHECK_GT(total, 1);

  sim_ = std::make_unique<Simulator>(cfg.seed);

  // ---- Machines -----------------------------------------------------------
  MachineSpec spec = cfg.machine_spec;
  spec.ctx_switch_penalty = cfg.CtxSwitchPenalty();
  int num_machines = 1;
  int nodes_per_machine = total;
  if (cfg.run_mode == RunMode::kRealScale) {
    nodes_per_machine = cfg.nodes_per_machine_real;
    num_machines = (total + nodes_per_machine - 1) / nodes_per_machine;
  }
  machines_ = std::make_unique<MachineSet>(sim_.get(), spec, num_machines);

  // ---- Network --------------------------------------------------------------
  network_ = std::make_unique<NetworkModel>(sim_.get(), options_.network,
                                            Mix64(cfg.seed ^ 0x6e7209c4ULL));
  network_->set_same_machine_fn([this](NodeId a, NodeId b) {
    return machines_->SameMachine(a, b);
  });
  // ---- Calculators + PIL -----------------------------------------------------
  calculator_ = MakeCalculator(cfg.calc_version);
  bootstrap_calc_ = MakeCalculator(CalcVersion::kBootstrapC6127);
  calc_function_ = registry_.Register(
      calculator_->name(), calculator_->complexity(),
      SideEffects{},  // pure: memoizable, no I/O, no messages, no locks inside
      /*scale_dependent=*/true);
  bootstrap_function_ =
      registry_.Register(bootstrap_calc_->name(), bootstrap_calc_->complexity(),
                         SideEffects{}, /*scale_dependent=*/true);
  // Profiled-only functions: scale-dependent but NOT PIL-safe — handleSyn
  // and applyStates send/receive gossip, the FD sweep reads the clock. sfind
  // must report them as un-replaceable (§5's safety rule).
  SideEffects network_effects;
  network_effects.network_messages = true;
  SideEffects clock_effects;
  clock_effects.nondeterministic = true;
  gossip_syn_function_ = registry_.Register(
      "gossip.handleSynDigests", "O(N digests)", network_effects, true);
  gossip_apply_function_ = registry_.Register(
      "gossip.applyEndpointStates", "O(states applied)", network_effects, true);
  fd_sweep_function_ = registry_.Register("failureDetector.interpretAll",
                                          "O(N endpoints)", clock_effects, true);

  PilMode pil_mode = PilMode::kDirect;
  if (cfg.run_mode == RunMode::kMemoize) {
    pil_mode = PilMode::kMemoize;
    CHECK_NOTNULL(options_.memo_store) << "memoize mode needs a MemoStore";
  } else if (cfg.run_mode == RunMode::kPilReplay) {
    pil_mode = PilMode::kReplay;
    CHECK_NOTNULL(options_.memo_store) << "replay mode needs a MemoStore";
  }
  pil_ = std::make_unique<PilBoundary>(sim_.get(), pil_mode, options_.memo_store,
                                       spec.core_speed);
  pil_->set_replay_policy(cfg.replay_policy);
  pil_->set_order_context_fn([this] {
    uint64_t enforced = 0;
    uint64_t divergences = 0;
    for (const auto& node : nodes_) {
      enforced += node->order_enforced();
      divergences += node->order_divergences();
    }
    return StrFormat("order_enforced=%llu order_divergences=%llu pending_events=%llu",
                     static_cast<unsigned long long>(enforced),
                     static_cast<unsigned long long>(divergences),
                     static_cast<unsigned long long>(sim_->pending_events()));
  });

  // ---- Fidelity guard ------------------------------------------------------
  if (cfg.guard.enabled) {
    guard_ = std::make_unique<FidelityGuard>(sim_.get(), machines_.get(), cfg.guard);
  }

  // ---- Invariant checker ---------------------------------------------------
  if (cfg.check.enabled) {
    invariants_ = std::make_unique<InvariantRegistry>(cfg.check);
    invariants_->AddBuiltins();
    if (cfg.enable_kv) {
      kv_history_ = std::make_unique<KvHistory>();
    }
  }

  if (options_.shared_output_cache == nullptr) {
    owned_output_cache_ = std::make_unique<CalcOutputCache>();
  }
  if (options_.enable_trace) {
    trace_ = std::make_unique<TraceRecorder>();
  }

  // ---- Node environment -------------------------------------------------------
  sim_clock_ = std::make_unique<SimClock>(sim_.get());
  sim_transport_ = std::make_unique<SimTransport>(network_.get());
  env_.sim = sim_.get();
  env_.transport = sim_transport_.get();
  env_.clock = sim_clock_.get();
  env_.flaps = &flaps_;
  env_.pil = pil_.get();
  env_.config = &options_.config;
  env_.calculator = calculator_.get();
  env_.bootstrap_calc = bootstrap_calc_.get();
  env_.calc_function = calc_function_;
  env_.bootstrap_function = bootstrap_function_;
  env_.gossip_syn_function = gossip_syn_function_;
  env_.gossip_apply_function = gossip_apply_function_;
  env_.fd_sweep_function = fd_sweep_function_;
  env_.output_cache = options_.shared_output_cache != nullptr
                          ? options_.shared_output_cache
                          : owned_output_cache_.get();
  env_.trace = trace_.get();
  env_.order_log = options_.record_order_log;
  env_.record_order = cfg.run_mode == RunMode::kMemoize &&
                      options_.record_order_log != nullptr;
  env_.calc_durations = &calc_durations_;
  env_.calc_invocations = &calc_invocations_;
  env_.calc_executed_real = &calc_executed_real_;
  env_.profile_hook = options_.profile_hook;
  env_.kv_history = kv_history_.get();

  // ---- Nodes -------------------------------------------------------------------
  Rng node_seeds(HashCombine(cfg.seed, 0xc1057e70ULL));
  std::map<NodeId, std::vector<Token>> settled_members;
  bool fresh = wl.kind == WorkloadKind::kBootstrapFresh;
  if (!fresh) {
    for (NodeId id = 0; id < initial_nodes_; ++id) {
      settled_members[id] = GenerateTokens(id, cfg.vnodes_per_node, cfg.seed);
    }
  }

  for (NodeId id = 0; id < total; ++id) {
    // The intern table is the deployment's name->id authority: interning in
    // boot order makes the dense EndpointId coincide with NodeId, which is
    // the invariant every id-indexed array in the gossip layer relies on.
    EndpointId interned = interner_.Intern("node-" + std::to_string(id));
    CHECK_EQ(interned, id);
    Machine* machine = machines_->Place(id, nodes_per_machine);
    auto node = std::make_unique<Node>(&env_, id, machine, node_seeds.Next());
    nodes_.push_back(std::move(node));
  }

  // Wire OOM -> crash on every machine.
  for (size_t i = 0; i < machines_->size(); ++i) {
    machines_->at(i).memory().set_oom_handler([this](NodeId victim, int64_t bytes) {
      SC_LOG(Warning) << "OOM: node " << victim << " allocating " << bytes;
      if (guard_ != nullptr) {
        // Report at the exact OOM instant rather than the next guard probe.
        guard_->ReportViolation("oom", FidelityVerdict::kInvalid,
                                static_cast<double>(bytes), 0.0, sim_->Now());
      }
      if (victim >= 0 && static_cast<size_t>(victim) < nodes_.size() &&
          !nodes_[static_cast<size_t>(victim)]->crashed()) {
        ++crashed_nodes_;
        nodes_[static_cast<size_t>(victim)]->Crash();
      }
    });
  }

  // ---- Fault injection ---------------------------------------------------
  if (!options_.faults.empty()) {
    FaultInjector::Hooks hooks;
    hooks.clock = sim_clock_.get();
    hooks.links = network_.get();
    hooks.trace = trace_.get();
    hooks.crash_node = [this](NodeId victim) {
      if (victim >= 0 && static_cast<size_t>(victim) < nodes_.size() &&
          !nodes_[static_cast<size_t>(victim)]->crashed()) {
        ++crashed_nodes_;
        nodes_[static_cast<size_t>(victim)]->Crash();
      }
    };
    hooks.restart_node = [this](NodeId victim) {
      if (victim < 0 || static_cast<size_t>(victim) >= nodes_.size()) {
        return;
      }
      Node* node = nodes_[static_cast<size_t>(victim)].get();
      if (!node->crashed()) {
        return;
      }
      ++restarted_nodes_;
      std::vector<NodeId> contacts;
      for (NodeId c = 0; c < std::min(initial_nodes_, 3); ++c) {
        contacts.push_back(c);
      }
      node->Restart(contacts);
    };
    hooks.node_crashed = [this](NodeId victim) {
      return victim >= 0 && static_cast<size_t>(victim) < nodes_.size() &&
             nodes_[static_cast<size_t>(victim)]->crashed();
    };
    hooks.machine_of = [this](NodeId victim) { return machines_->MachineOf(victim); };
    injector_ = std::make_unique<FaultInjector>(options_.faults, std::move(hooks));
    injector_->Arm();
  }

  // Prime knowledge.
  std::map<NodeId, std::vector<Token>> seed_members;
  if (!fresh) {
    for (NodeId id = 0; id < std::min(initial_nodes_, 3); ++id) {
      seed_members[id] = settled_members[id];
    }
  }
  std::vector<NodeId> seed_contacts;
  for (NodeId id = 0; id < std::min(initial_nodes_, 3); ++id) {
    seed_contacts.push_back(id);
  }
  for (NodeId id = 0; id < total; ++id) {
    Node* node = nodes_[static_cast<size_t>(id)].get();
    node->SetSeedContacts(seed_contacts);
    if (!fresh && id < initial_nodes_) {
      node->PrimeSettled(settled_members);
    } else if (!fresh) {
      node->PrimeSeeds(seed_members);
    }
    if (cfg.run_mode == RunMode::kPilReplay && options_.replay_order_log != nullptr) {
      node->EnableOrderEnforcement(options_.replay_order_log->SequenceOf(id));
    }
  }
}

void Cluster::ScheduleWorkload() {
  const WorkloadSpec& wl = options_.workload;
  const ClusterConfig& cfg = options_.config;

  // Start settled nodes at t=0.
  bool fresh = wl.kind == WorkloadKind::kBootstrapFresh;
  if (!fresh) {
    for (NodeId id = 0; id < initial_nodes_; ++id) {
      nodes_[static_cast<size_t>(id)]->Start(/*as_joiner=*/false, wl.transition);
    }
  }

  switch (wl.kind) {
    case WorkloadKind::kSteadyState:
      settled_ = true;
      settle_time_ = VirtualTime::Zero();
      break;

    case WorkloadKind::kDecommission: {
      CHECK_LT(wl.target, initial_nodes_);
      NodeId target = wl.target;
      VirtualDuration transition = wl.transition;
      sim_->ScheduleAt(VirtualTime::Zero() + wl.start_at, [this, target, transition] {
        nodes_[static_cast<size_t>(target)]->BeginDecommission(transition);
      });
      break;
    }

    case WorkloadKind::kScaleOut:
    case WorkloadKind::kRebalance: {
      VirtualDuration transition = wl.transition;
      if (wl.kind == WorkloadKind::kRebalance) {
        CHECK_LT(wl.target, initial_nodes_);
        CHECK_GE(joining_nodes_, 1);
        NodeId target = wl.target;
        sim_->ScheduleAt(VirtualTime::Zero() + wl.start_at,
                         [this, target, transition] {
                           nodes_[static_cast<size_t>(target)]->BeginDecommission(
                               transition);
                         });
      }
      VirtualDuration join_start =
          wl.kind == WorkloadKind::kRebalance
              ? wl.start_at + wl.transition + VirtualDuration::Seconds(10)
              : wl.start_at;
      for (int j = 0; j < joining_nodes_; ++j) {
        NodeId id = initial_nodes_ + j;
        VirtualDuration at = join_start + wl.stagger * static_cast<int64_t>(j);
        sim_->ScheduleAt(VirtualTime::Zero() + at, [this, id, transition] {
          nodes_[static_cast<size_t>(id)]->Start(/*as_joiner=*/true, transition);
        });
      }
      break;
    }

    case WorkloadKind::kBootstrapFresh: {
      // Everyone is a fresh joiner knowing only the contact points (nodes
      // 0..2), which are themselves bootstrapping.
      std::vector<NodeId> contacts;
      for (NodeId id = 0; id < std::min(initial_nodes_, 3); ++id) {
        contacts.push_back(id);
      }
      VirtualDuration transition = wl.transition;
      for (NodeId id = 0; id < initial_nodes_; ++id) {
        Node* node = nodes_[static_cast<size_t>(id)].get();
        node->PrimeContacts(contacts);
        VirtualDuration at = wl.stagger * static_cast<int64_t>(id);
        sim_->ScheduleAt(VirtualTime::Zero() + at, [node, transition] {
          node->Start(/*as_joiner=*/true, transition);
        });
      }
      break;
    }

    case WorkloadKind::kFailover: {
      CHECK_LT(wl.target, initial_nodes_);
      NodeId target = wl.target;
      sim_->ScheduleAt(VirtualTime::Zero() + wl.start_at, [this, target] {
        ++crashed_nodes_;
        nodes_[static_cast<size_t>(target)]->Crash();
      });
      break;
    }
  }
  (void)cfg;
}

bool Cluster::WorkloadSettled() const {
  const WorkloadSpec& wl = options_.workload;
  switch (wl.kind) {
    case WorkloadKind::kSteadyState:
      return true;

    case WorkloadKind::kDecommission:
      if (sim_->Now() < VirtualTime::Zero() + wl.start_at + wl.transition) {
        return false;
      }
      for (const auto& node : nodes_) {
        if (node->id() == wl.target || node->crashed()) {
          continue;
        }
        if (node->ring().HasNode(wl.target) || !node->IsSettledView()) {
          return false;
        }
      }
      return true;

    case WorkloadKind::kScaleOut:
    case WorkloadKind::kRebalance:
    case WorkloadKind::kBootstrapFresh: {
      for (const auto& node : nodes_) {
        if (node->crashed() ||
            (wl.kind == WorkloadKind::kRebalance && node->id() == wl.target)) {
          continue;
        }
        if (!node->IsSettledView()) {
          return false;
        }
        // Every live node must be NORMAL in everyone's ring.
        for (const auto& other : nodes_) {
          if (other->crashed() ||
              (wl.kind == WorkloadKind::kRebalance && other->id() == wl.target)) {
            continue;
          }
          if (other->my_status() == StatusKind::kNormal &&
              !node->ring().HasNode(other->id())) {
            return false;
          }
        }
      }
      return true;
    }

    case WorkloadKind::kFailover: {
      if (sim_->Now() < VirtualTime::Zero() + wl.start_at) {
        return false;
      }
      for (const auto& node : nodes_) {
        if (node->crashed()) {
          continue;
        }
        if (node->gossiper().IsAlive(wl.target)) {
          return false;
        }
      }
      return true;
    }
  }
  return false;
}

RunResult Cluster::Run() {
  std::optional<SimProfiler::Timed> run_timer;
  if (options_.profiler != nullptr) {
    run_timer.emplace(options_.profiler, SimProfiler::kPhaseRun);
  }
  ScheduleWorkload();
  const WorkloadSpec& wl = options_.workload;
  VirtualTime horizon = VirtualTime::Zero() + wl.horizon;

  // KV client load: ops against random coordinators (70% reads).
  std::unique_ptr<PeriodicTimer> kv_driver;
  if (options_.kv_ops_per_second > 0.0) {
    CHECK(options_.config.enable_kv) << "kv load needs config.enable_kv";
    kv_rng_ = std::make_unique<Rng>(Mix64(options_.config.seed ^ 0x4b56ULL));
    if (options_.kv_key_dist == KvKeyDist::kZipf && kv_zipf_cdf_.empty()) {
      // Normalized cumulative weights 1/(k+1)^s; sampling is one uniform
      // draw plus a binary search, so the RNG stream stays in lockstep with
      // the uniform distribution's.
      kv_zipf_cdf_.reserve(options_.kv_key_space);
      double total = 0.0;
      for (uint64_t k = 0; k < options_.kv_key_space; ++k) {
        total += std::pow(static_cast<double>(k + 1), -options_.kv_zipf_s);
        kv_zipf_cdf_.push_back(total);
      }
      for (double& c : kv_zipf_cdf_) c /= total;
    }
    VirtualDuration period =
        VirtualDuration::FromSecondsF(1.0 / options_.kv_ops_per_second);
    kv_driver = std::make_unique<PeriodicTimer>(sim_.get(), period, [this] {
      // Pick a running coordinator.
      for (int attempt = 0; attempt < 4; ++attempt) {
        size_t idx = kv_rng_->PickIndex(nodes_.size());
        Node* coordinator = nodes_[idx].get();
        if (coordinator->crashed() || coordinator->kv() == nullptr ||
            coordinator->my_status() != StatusKind::kNormal) {
          continue;
        }
        uint64_t key = SampleKvKey();
        ++kv_issued_;
        VirtualTime issued = sim_->Now();
        auto done = [this, issued](KvOutcome outcome, const std::string&) {
          switch (outcome) {
            case KvOutcome::kOk:
              ++kv_ok_;
              kv_latency_.AddDuration(sim_->Now() - issued);
              break;
            case KvOutcome::kUnavailable:
              ++kv_unavailable_;
              break;
            case KvOutcome::kTimeout:
              ++kv_timeout_;
              break;
          }
        };
        if (kv_rng_->Bernoulli(0.3)) {
          // Unique per-write values (padded to the configured size) so the
          // KV history checker can attribute any read result to exactly one
          // write.
          std::string value =
              StrFormat("v%lld.", static_cast<long long>(kv_issued_));
          if (value.size() < static_cast<size_t>(options_.kv_value_bytes)) {
            value.resize(static_cast<size_t>(options_.kv_value_bytes), 'v');
          }
          coordinator->kv()->Write(key, std::move(value), done);
        } else {
          coordinator->kv()->Read(key, done);
        }
        return;
      }
    });
    kv_driver->Start(VirtualDuration::Millis(10));
  }

  // Settlement polling. A run with a fault plan cannot settle before the
  // last fault has healed — otherwise a steady-state workload would declare
  // itself done at t=0 and stop before the chaos even starts.
  VirtualTime fault_quiet_at = VirtualTime::Zero() + options_.faults.End();
  VirtualTime stop_at = VirtualTime::Max();
  auto checker = std::make_shared<PeriodicTimer>(
      sim_.get(), VirtualDuration::Seconds(5),
      [this, &stop_at, horizon, fault_quiet_at] {
        if (!settled_ && sim_->Now() >= fault_quiet_at && WorkloadSettled()) {
          settled_ = true;
          settle_time_ = sim_->Now();
          stop_at = std::min(horizon, sim_->Now() + options_.cooldown);
        }
        if (settled_ && sim_->Now() >= stop_at) {
          sim_->RequestStop();
        }
      });
  checker->Start(VirtualDuration::Seconds(5));

  // Invariant probing on its own virtual-time cadence (deterministic model
  // inspection; no messages, no CPU charge).
  std::unique_ptr<PeriodicTimer> invariant_timer;
  if (invariants_ != nullptr) {
    invariant_timer = std::make_unique<PeriodicTimer>(
        sim_.get(), options_.config.check.probe_period,
        [this] { ProbeInvariants(); });
    invariant_timer->Start(options_.config.check.probe_period);
  }

  if (guard_ != nullptr) {
    guard_->Arm();
  }
  sim_->SetWallBudget(options_.wall_budget_seconds);
  sim_->Run(horizon);
  checker->Stop();
  if (invariant_timer != nullptr) {
    invariant_timer->Stop();
  }
  if (guard_ != nullptr) {
    guard_->Disarm();
    // Final sample at the stop instant, so budgets crossed in the last probe
    // period are still observed.
    guard_->Probe();
  }
  // Final invariant probe at the stop instant (post-cooldown state: anything
  // still violated here is sticky, not transitional).
  ProbeInvariants();
  run_timer.reset();

  SimProfiler::Timed collect_timer(options_.profiler, SimProfiler::kPhaseCollect);
  RunResult result;
  CollectResult(&result);
  return result;
}

uint64_t Cluster::SampleKvKey() {
  if (options_.kv_key_dist == KvKeyDist::kZipf) {
    double u = kv_rng_->UniformDouble();
    size_t idx = static_cast<size_t>(
        std::upper_bound(kv_zipf_cdf_.begin(), kv_zipf_cdf_.end(), u) -
        kv_zipf_cdf_.begin());
    if (idx >= kv_zipf_cdf_.size()) idx = kv_zipf_cdf_.size() - 1;
    return static_cast<uint64_t>(idx);
  }
  return static_cast<uint64_t>(kv_rng_->UniformInt(
      0, static_cast<int64_t>(options_.kv_key_space) - 1));
}

void Cluster::ProbeInvariants() {
  if (invariants_ == nullptr) {
    return;
  }
  if (node_view_.size() != nodes_.size()) {
    node_view_.clear();
    node_view_.reserve(nodes_.size());
    for (const auto& node : nodes_) {
      node_view_.push_back(node.get());
    }
  }
  const WorkloadSpec& wl = options_.workload;
  InvariantContext ctx;
  ctx.now = sim_->Now();
  ctx.nodes = &node_view_;
  ctx.replication_factor = options_.config.replication_factor;
  ctx.fault_quiet_at = VirtualTime::Zero() + options_.faults.End();
  ctx.gossip_interval = options_.config.gossip_interval;
  // The KV history checker is only sound on workloads that preserve key
  // ownership: the simulator has no data-streaming model, so a membership
  // change legitimately strands acknowledged data on the old replicas. It
  // also requires intersecting read/write sets, which consistency ONE does
  // not provide (a ONE read legitimately misses a ONE write).
  ctx.kv_checkable = (wl.kind == WorkloadKind::kSteadyState ||
                      wl.kind == WorkloadKind::kFailover) &&
                     options_.config.kv_consistency != KvConsistency::kOne;
  ctx.kv_wal = options_.config.kv_wal;
  ctx.kv_repair = options_.config.kv_repair;
  ctx.kv_repair_rate_bytes = options_.config.kv_repair_rate_bytes;
  ctx.history = kv_history_.get();
  invariants_->Probe(ctx);
}

void Cluster::CollectResult(RunResult* result) const {
  const ClusterConfig& cfg = options_.config;
  result->mode = cfg.run_mode;
  result->num_nodes = static_cast<int>(nodes_.size());
  result->vnodes_per_node = cfg.vnodes_per_node;

  result->flaps = flaps_.total_flaps();
  result->flapped_pairs = flaps_.flapped_pairs();
  for (const auto& node : nodes_) {  // id order: deterministic sums
    if (node->crashed() || !node->started()) {
      continue;
    }
    result->live_endpoints +=
        static_cast<int64_t>(node->gossiper().LiveEndpointsView().size());
    result->unreachable_endpoints +=
        static_cast<int64_t>(node->gossiper().UnreachableEndpointsView().size());
  }

  result->test_duration = sim_->Now() - VirtualTime::Zero();
  result->settled = settled_;
  result->settle_time = settled_ ? settle_time_ - VirtualTime::Zero()
                                 : result->test_duration;

  double max_util = 0.0;
  int64_t peak_mem = 0;
  bool oom = false;
  VirtualDuration lateness_p99;
  VirtualDuration lateness_max;
  int64_t lateness_early = 0;
  for (size_t i = 0; i < machines_->size(); ++i) {
    Machine& m = const_cast<MachineSet*>(machines_.get())->at(i);
    max_util = std::max(max_util, m.cpu().Utilization());
    peak_mem += m.memory().peak_bytes();
    oom = oom || m.memory().oom_observed();
    lateness_p99 = std::max(lateness_p99, m.lateness().p99());
    lateness_max = std::max(lateness_max, m.lateness().max());
    lateness_early += m.lateness().early_count();
  }
  result->max_cpu_utilization = max_util;
  result->peak_memory_bytes = peak_mem;
  result->oom = oom;
  result->crashed_nodes = crashed_nodes_;
  result->restarted_nodes = restarted_nodes_;
  if (injector_ != nullptr) {
    result->fault_events_applied = injector_->stats().events_applied;
    result->fault_events_healed = injector_->stats().events_healed;
  }
  result->messages_blocked = network_->messages_blocked();
  result->lateness_p99 = lateness_p99;
  result->lateness_max = lateness_max;
  result->lateness_early_count = lateness_early;
  result->watchdog_fired = sim_->wall_budget_exceeded();

  // ---- Fidelity verdict ----------------------------------------------------
  const DriftReport& drift = pil_->drift();
  result->replay_drift.misses = drift.misses;
  result->replay_drift.diverged = drift.diverged;
  result->replay_drift.aborted = drift.aborted;
  if (drift.diverged) {
    const PilFunctionInfo* info = registry_.Find(drift.first_function);
    result->replay_drift.first_function = info != nullptr ? info->name : "?";
    result->replay_drift.first_digest = drift.first_digest.ToHex();
    result->replay_drift.first_at = drift.first_at;
    result->replay_drift.first_call_index = drift.first_call_index;
    result->replay_drift.order_context = drift.order_context;
  }
  if (guard_ != nullptr) {
    if (drift.aborted) {
      guard_->ReportViolation("replay_divergence", FidelityVerdict::kInvalid,
                              static_cast<double>(drift.misses), 0.0,
                              drift.first_at);
    } else if (drift.diverged && cfg.replay_policy == ReplayPolicy::kWarn) {
      guard_->ReportViolation("replay_divergence", FidelityVerdict::kDegraded,
                              static_cast<double>(drift.misses), 0.0,
                              drift.first_at);
    }
    if (result->watchdog_fired) {
      guard_->ReportViolation("watchdog", FidelityVerdict::kInvalid,
                              options_.wall_budget_seconds,
                              options_.wall_budget_seconds, sim_->Now());
    }
    result->fidelity = guard_->report();
  }
  if (invariants_ != nullptr) {
    result->invariants = invariants_->report();
  }

  result->calc_invocations = calc_invocations_;
  result->calc_executed_real = calc_executed_real_;
  result->calc_duration_seconds = calc_durations_;
  RunningStat lock_holds;
  uint64_t divergences = 0;
  uint64_t enforced = 0;
  uint64_t dropped = 0;
  for (const auto& node : nodes_) {
    lock_holds.Merge(node->ring_lock().hold_seconds());
    divergences += node->order_divergences();
    enforced += node->order_enforced();
    dropped += node->stage_tasks_dropped();
  }
  result->stage_tasks_dropped = dropped;
  result->calc_lock_hold_seconds = lock_holds;
  result->order_divergences = divergences;
  result->order_enforced = enforced;

  result->pil = pil_->stats();
  if (options_.memo_store != nullptr) {
    result->memo = options_.memo_store->stats();
  }
  result->kv_issued = kv_issued_;
  result->kv_ok = kv_ok_;
  result->kv_unavailable = kv_unavailable_;
  result->kv_timeout = kv_timeout_;
  result->kv_inflight_at_stop = kv_issued_ - (kv_ok_ + kv_unavailable_ + kv_timeout_);
  result->kv_latency_p50 = kv_latency_.PercentileDuration(50);
  result->kv_latency_p99 = kv_latency_.PercentileDuration(99);
  result->kv_latency_p999 = kv_latency_.PercentileDuration(99.9);
  int64_t kv_retries = 0;
  int64_t kv_gave_up = 0;
  for (const auto& node : nodes_) {
    if (const KvService* kv = node->kv(); kv != nullptr) {
      kv_retries += kv->stats().retries;
      kv_gave_up += kv->stats().gave_up;
      result->kv_wal_bytes += kv->stats().wal_bytes;
      result->kv_hints_queued += kv->stats().hints_queued;
      result->kv_hints_replayed += kv->stats().hints_replayed;
      result->kv_hints_expired += kv->stats().hints_expired;
      result->kv_read_repairs += kv->stats().read_repairs;
      result->kv_ops_one += kv->stats().ops_one;
      result->kv_ops_quorum += kv->stats().ops_quorum;
      result->kv_ops_all += kv->stats().ops_all;
      result->kv_repair_sessions += kv->stats().repair_sessions;
      result->kv_repair_bytes_streamed += kv->stats().repair_bytes_streamed;
      result->kv_repair_keys_fixed += kv->stats().repair_keys_fixed;
      result->kv_repair_aborted += kv->stats().repair_aborted;
    }
  }
  result->kv_retries = kv_retries;
  result->kv_gave_up = kv_gave_up;

  result->messages_sent = network_->messages_sent();
  result->messages_delivered = network_->messages_delivered();
  result->events_executed = sim_->events_executed();

  if (options_.profiler != nullptr) {
    SimProfiler::Counters run;
    run.events_executed = sim_->events_executed();
    run.events_cancelled = sim_->events_cancelled();
    run.event_slot_high_water = sim_->event_slot_high_water();
    run.messages_sent = network_->messages_sent();
    for (const auto& node : nodes_) {
      const Gossiper& g = node->gossiper();
      run.gossip_syn_handled += g.syn_handled();
      run.gossip_states_applied += g.states_applied();
      run.gossip_updates_applied += g.updates_applied();
      run.digest_builds += g.digest_builds();
      run.digest_entries_refreshed += g.digest_entries_refreshed();
      run.digest_full_rebuilds += g.digest_full_rebuilds();
      run.payload_reuses += node->payload_reuses();
      run.payload_allocs += node->payload_allocs();
      run.gossip_digest_bytes_sent += node->digest_bytes_sent();
      run.gossip_arena_bytes += node->arena_bytes_reserved();
      run.endpoint_store_bytes += g.endpoint_store_bytes();
    }
    run.intern_table_size = interner_.size();
    run.intern_table_bytes = interner_.ApproxBytes();
    result->profile = run;
    result->has_profile = true;

    // The profiler itself aggregates across runs when reused.
    SimProfiler::Counters& total = options_.profiler->counters();
    total.events_executed += run.events_executed;
    total.events_cancelled += run.events_cancelled;
    total.event_slot_high_water += run.event_slot_high_water;
    total.messages_sent += run.messages_sent;
    total.gossip_syn_handled += run.gossip_syn_handled;
    total.gossip_states_applied += run.gossip_states_applied;
    total.gossip_updates_applied += run.gossip_updates_applied;
    total.digest_builds += run.digest_builds;
    total.digest_entries_refreshed += run.digest_entries_refreshed;
    total.digest_full_rebuilds += run.digest_full_rebuilds;
    total.payload_reuses += run.payload_reuses;
    total.payload_allocs += run.payload_allocs;
    total.gossip_digest_bytes_sent += run.gossip_digest_bytes_sent;
    total.gossip_arena_bytes += run.gossip_arena_bytes;
    total.endpoint_store_bytes += run.endpoint_store_bytes;
    total.intern_table_size += run.intern_table_size;
    total.intern_table_bytes += run.intern_table_bytes;
  }
}

}  // namespace scalecheck
