// A simulated Cassandra-like node.
//
// Thread structure mirrors the real system (and the paper's observation that
// each node runs "at most 2 busy cores (e.g., gossiper and gossip-processing
// threads)"):
//
//   gossip_task_thread   every second: heartbeat++, SYN to a random live
//                        peer, failure-detector sweep (convictions happen
//                        here, so a node keeps convicting even when its
//                        processing stage is starved — as in Cassandra).
//   gossip_stage_thread  processes SYN/ACK/ACK2, applies endpoint states,
//                        maintains the local ring view; in the C3831/C3881
//                        era also runs the pending-range calculation INLINE,
//                        which is the whole disaster.
//   calc_thread          (C5456-era placements) runs the calculation off the
//                        stage, synchronizing via the ring-table SimMutex.
//
// The pending-range calculation crosses the PIL boundary: depending on the
// run mode it executes (real/colocated/memoize) or sleeps (replay).

#ifndef SCALECHECK_SRC_CLUSTER_NODE_H_
#define SCALECHECK_SRC_CLUSTER_NODE_H_

#include <array>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <unordered_set>
#include <vector>

#include "src/cluster/config.h"
#include "src/cluster/workload.h"
#include "src/common/rng.h"
#include "src/common/stats.h"
#include "src/gossip/failure_detector.h"
#include "src/gossip/flap_counter.h"
#include "src/gossip/gossiper.h"
#include "src/gossip/messages.h"
#include "src/kv/kv_service.h"
#include "src/pil/boundary.h"
#include "src/pil/order_log.h"
#include "src/ring/calculators.h"
#include "src/sim/machine.h"
#include "src/sim/network.h"
#include "src/sim/payload_pool.h"
#include "src/sim/thread.h"
#include "src/sim/trace.h"
#include "src/transport/sim_substrate.h"
#include "src/transport/substrate.h"

namespace scalecheck {

class KvHistory;

// Process-level cache of calculator outputs keyed by input digest. A harness
// optimization, not a semantic one: the calculators are pure functions, and
// hundreds of nodes redundantly computing identical inputs is precisely the
// redundancy the paper's PIL exploits. Virtual-time cost is still charged per
// invocation; only host wall-clock is saved.
//
// Internally synchronized: one cache is shared across every concurrently
// executing run of an ExperimentSuite. Because an entry is a pure function of
// its key (same input digest + calculator version => same output/work/ops for
// a fixed execute_threshold_ops), cache hits are value-identical to
// recomputation regardless of which host thread populated the entry first —
// parallel suites stay byte-deterministic. Entries are never erased, so
// returned pointers stay valid for the cache's lifetime (std::unordered_map
// never invalidates element pointers on insert).
//
// Sharded by key hash: every worker of a parallel suite hits this cache on
// every recalc, so a single mutex would serialize them; sixteen independent
// shards keep lock hold times off each other's critical paths.
class CalcOutputCache {
 public:
  struct Entry {
    std::vector<uint8_t> output;
    WorkUnits work = 0;
    int64_t ops = 0;
    bool executed = false;
  };

  const Entry* Find(CalcVersion version, const DigestValue& digest) const;
  void Put(CalcVersion version, const DigestValue& digest, Entry entry);
  uint64_t hits() const;
  size_t size() const;

 private:
  struct Key {
    int version;
    DigestValue digest;
    bool operator==(const Key&) const = default;
  };
  struct KeyHash {
    size_t operator()(const Key& k) const {
      return DigestValueHash()(k.digest) ^ static_cast<size_t>(k.version * 1099511);
    }
  };
  static constexpr size_t kShards = 16;
  struct Shard {
    mutable std::mutex mu;
    std::unordered_map<Key, Entry, KeyHash> map;
    mutable uint64_t hits = 0;
  };
  Shard& ShardFor(const Key& k) const {
    size_t h = KeyHash()(k);
    // Fold the high bits in; the map inside the shard reuses the same hash,
    // so the low bits alone would correlate with bucket choice.
    return shards_[(h ^ (h >> 17)) % kShards];
  }
  mutable std::array<Shard, kShards> shards_;
};

class Node {
 public:
  // Shared environment owned by the Cluster.
  struct Env {
    // The simulator is used only to host sim-side machinery (stage threads,
    // the ring SimMutex); all protocol-visible time and messaging goes
    // through the substrate seam below.
    Simulator* sim = nullptr;
    Transport* transport = nullptr;
    Clock* clock = nullptr;
    FlapCounter* flaps = nullptr;
    PilBoundary* pil = nullptr;
    const ClusterConfig* config = nullptr;
    PendingRangeCalculator* calculator = nullptr;      // configured generation
    PendingRangeCalculator* bootstrap_calc = nullptr;  // C6127 fresh path
    PilFunctionId calc_function = kInvalidPilFunction;
    PilFunctionId bootstrap_function = kInvalidPilFunction;
    // Profiled but NOT PIL-replaceable (side effects / nondeterminism);
    // these are the linear serialization class of §4's footnote.
    PilFunctionId gossip_syn_function = kInvalidPilFunction;
    PilFunctionId gossip_apply_function = kInvalidPilFunction;
    PilFunctionId fd_sweep_function = kInvalidPilFunction;
    CalcOutputCache* output_cache = nullptr;
    // Memoization runs record processing order here.
    OrderLog* order_log = nullptr;
    bool record_order = false;
    // Optional execution trace (determinism digests, debug dumps).
    TraceRecorder* trace = nullptr;

    // Metric sinks (owned by Cluster).
    RunningStat* calc_durations = nullptr;
    int64_t* calc_invocations = nullptr;
    int64_t* calc_executed_real = nullptr;
    // sfind hook: (function, executed ops, ring entries at invocation).
    std::function<void(PilFunctionId, int64_t, size_t)> profile_hook = nullptr;
    // Client-op history sink for the KV invariant checker (null = off).
    KvHistory* kv_history = nullptr;
  };

  Node(Env* env, NodeId id, Machine* machine, uint64_t seed);
  ~Node();
  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  NodeId id() const { return id_; }

  // ---- Pre-start configuration -------------------------------------------

  // Installs knowledge of a settled cluster: all members NORMAL with their
  // tokens, ring populated, failure-detector windows primed.
  void PrimeSettled(const std::map<NodeId, std::vector<Token>>& members);
  // For joiners: the only peers known at start.
  void PrimeSeeds(const std::map<NodeId, std::vector<Token>>& seed_members);
  // For fresh bootstrap: bare contact addresses with no known state (the
  // contacts themselves are bootstrapping too).
  void PrimeContacts(const std::vector<NodeId>& contacts);
  // Seed addresses for the gossip-to-unreachable escape hatch: when the live
  // view is empty (islanded after a partition), the round SYNs one of these
  // unconditionally so the node can rejoin. Self is filtered out.
  void SetSeedContacts(const std::vector<NodeId>& contacts);
  // Replay mode: enforce this recorded processing order.
  void EnableOrderEnforcement(std::vector<MessageKey> sequence);

  // ---- Lifecycle -----------------------------------------------------------

  // Registers with the network and starts periodic gossip. A joiner
  // announces BOOT with its tokens and turns NORMAL after `transition`.
  void Start(bool as_joiner, VirtualDuration transition);
  // Announces LEAVING now and LEFT after `transition`.
  void BeginDecommission(VirtualDuration transition);
  // Hard crash: threads die, network unregisters, the ring lock is
  // force-released (a dead process holds no locks), the KV service goes
  // down, memory is freed.
  void Crash();
  // Brings a crashed node back as a fresh process with a bumped gossip
  // generation: protocol state is rebuilt from scratch, the ring view is
  // re-learned via `contacts`, and the durable token assignment is kept.
  void Restart(const std::vector<NodeId>& contacts);
  bool crashed() const { return crashed_; }
  bool started() const { return started_; }

  // ---- Introspection -------------------------------------------------------

  const TokenRing& ring() const { return ring_; }
  const Gossiper& gossiper() const { return gossiper_; }
  const PendingRanges& pending_ranges() const { return pending_ranges_; }
  const std::vector<PendingChange>& pending_changes() const { return pending_changes_; }
  bool recalc_inflight() const { return recalc_inflight_; }
  const SimMutex& ring_lock() const { return ring_lock_; }
  uint64_t order_divergences() const;
  uint64_t order_enforced() const;
  // Non-null iff config.enable_kv.
  KvService* kv() { return kv_.get(); }
  const KvService* kv() const { return kv_.get(); }
  // Gossip-processing tasks shed for staleness (stage overload signature).
  uint64_t stage_tasks_dropped() const { return gossip_stage_.jobs_dropped(); }
  // Payload-pool recycling stats summed over the SYN/ACK/ACK2 pools.
  uint64_t payload_reuses() const {
    return syn_pool_.reuses() + ack_pool_.reuses() + ack2_pool_.reuses();
  }
  uint64_t payload_allocs() const {
    return syn_pool_.allocs() + ack_pool_.allocs() + ack2_pool_.allocs();
  }
  // Total SYN digest-section bytes shipped (delta-varint encoded measure);
  // divide by the profiler's digest_builds for bytes/round.
  uint64_t digest_bytes_sent() const { return digest_bytes_sent_; }
  // Arena footprint of the gossip scratch (what MemoryModel is charged
  // under the "gossip-arena" tag while the node is up).
  uint64_t arena_bytes_reserved() const {
    return gossiper_.scratch_arena().bytes_reserved();
  }
  std::vector<Token> my_tokens() const { return my_tokens_; }
  Machine* machine() const { return machine_; }
  StatusKind my_status() const { return gossiper_.LocalState().Status(); }
  bool IsSettledView() const;  // no pending changes, no recalc in flight

 private:
  // ---- Gossip plumbing -----------------------------------------------------
  void OnMessage(const Message& msg);
  void ProcessMessage(const Message& msg);
  void GossipRound();
  void FailureSweep();
  void SendSyn(NodeId peer);
  void HandleSynMessage(const Message& msg);
  void HandleAckMessage(const Message& msg);
  void HandleAck2Message(const Message& msg);

  // ---- Gossiper callbacks --------------------------------------------------
  void OnStatusChange(NodeId ep, StatusKind old_status, StatusKind new_status);
  void OnHeartbeat(NodeId ep);
  void OnRestart(NodeId ep);

  // ---- Ring / pending-range machinery ---------------------------------------
  void AddPendingChange(PendingChange change);
  void RemovePendingChange(NodeId ep);
  bool HasPendingChange(NodeId ep) const;
  void MarkRingDirty();
  void MaybeScheduleRecalc();
  void BuildRecalcJob();
  // The PIL compute closure (consults the output cache; real-vs-model).
  PilBoundary::ComputeOutput ComputeCalc(const CalcInput& input, bool bootstrap_path);
  void UpdatePartitionServiceMemory();

  bool UsesRingLock() const {
    return env_->config->calc_placement != CalcPlacement::kInlineGossipStage;
  }
  SimThread* CalcThread() {
    return env_->config->calc_placement == CalcPlacement::kInlineGossipStage
               ? &gossip_stage_
               : calc_thread_.get();
  }

  Env* env_;
  NodeId id_;
  Machine* machine_;
  Rng rng_;

  Gossiper gossiper_;
  PhiAccrualFailureDetector fd_;
  TokenRing ring_;
  SimMutex ring_lock_;

  SimThread gossip_task_;
  SimThread gossip_stage_;
  std::unique_ptr<SimThread> calc_thread_;
  std::unique_ptr<SimThread> kv_stage_;
  std::unique_ptr<SimStage> kv_stage_adapter_;  // seam view of kv_stage_
  std::unique_ptr<KvService> kv_;
  std::unique_ptr<PeriodicClockTimer> gossip_timer_;

  std::vector<Token> my_tokens_;
  std::vector<PendingChange> pending_changes_;
  PendingRanges pending_ranges_;
  bool ring_dirty_ = false;
  bool recalc_inflight_ = false;
  bool partition_services_allocated_ = false;
  int64_t partition_services_bytes_ = 0;

  // Recycled payload buffers for the three gossip message kinds.
  PayloadPool<SynPayload> syn_pool_;
  PayloadPool<AckPayload> ack_pool_;
  PayloadPool<Ack2Payload> ack2_pool_;

  // Endpoints we do not failure-monitor (ourselves, LEFT nodes). Membership
  // queries only — never iterated, so unordered is deterministic here.
  std::unordered_set<NodeId> unmonitored_;
  std::vector<NodeId> seed_contacts_;  // excludes self

  std::unique_ptr<OrderEnforcer> enforcer_;
  uint64_t digest_bytes_sent_ = 0;
  bool started_ = false;
  bool crashed_ = false;
  int64_t generation_ = 1;  // bumped on every restart
};

}  // namespace scalecheck

#endif  // SCALECHECK_SRC_CLUSTER_NODE_H_
