#include "src/cluster/node.h"

#include <algorithm>
#include <utility>

#include "src/common/check.h"
#include "src/common/logging.h"
#include "src/common/strings.h"
#include "src/gossip/messages.h"
#include "src/kv/anti_entropy.h"

namespace scalecheck {

const CalcOutputCache::Entry* CalcOutputCache::Find(CalcVersion version,
                                                    const DigestValue& digest) const {
  Key key{static_cast<int>(version), digest};
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.map.find(key);
  if (it == shard.map.end()) {
    return nullptr;
  }
  ++shard.hits;
  return &it->second;
}

void CalcOutputCache::Put(CalcVersion version, const DigestValue& digest, Entry entry) {
  Key key{static_cast<int>(version), digest};
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  // First put wins; concurrent writers compute identical values anyway.
  shard.map.emplace(std::move(key), std::move(entry));
}

uint64_t CalcOutputCache::hits() const {
  uint64_t total = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    total += shard.hits;
  }
  return total;
}

size_t CalcOutputCache::size() const {
  size_t total = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    total += shard.map.size();
  }
  return total;
}

Node::Node(Env* env, NodeId id, Machine* machine, uint64_t seed)
    : env_(env),
      id_(id),
      machine_(machine),
      rng_(seed),
      gossiper_(id, /*generation=*/1,
                Gossiper::Callbacks{
                    [this](NodeId ep, StatusKind o, StatusKind n) { OnStatusChange(ep, o, n); },
                    [this](NodeId ep) { OnHeartbeat(ep); },
                    [this](NodeId ep) { OnRestart(ep); },
                }),
      fd_(env->config->fd),
      ring_lock_(env->sim, StrFormat("ring-lock/%d", id)),
      gossip_task_(env->sim, machine, StrFormat("n%d/gossip-task", id)),
      gossip_stage_(env->sim, machine, StrFormat("n%d/gossip-stage", id)) {
  CHECK_NOTNULL(env);
  CHECK_NOTNULL(machine);
  if (env_->config->calc_placement != CalcPlacement::kInlineGossipStage) {
    calc_thread_ = std::make_unique<SimThread>(env->sim, machine,
                                               StrFormat("n%d/calc", id));
  }
  if (env_->config->enable_kv) {
    kv_stage_ = std::make_unique<SimThread>(env->sim, machine,
                                            StrFormat("n%d/kv-stage", id));
    kv_stage_adapter_ = std::make_unique<SimStage>(kv_stage_.get());
    KvService::Deps deps;
    deps.clock = env->clock;
    deps.transport = env->transport;
    deps.stage = kv_stage_adapter_.get();
    deps.ring = &ring_;
    deps.gossiper = &gossiper_;
    deps.self = id_;
    deps.replication_factor = env->config->replication_factor;
    deps.timeout = env->config->kv_timeout;
    deps.max_attempts = env->config->kv_max_attempts;
    deps.retry_base_backoff = env->config->kv_retry_base_backoff;
    deps.request_deadline = env->config->kv_request_deadline;
    deps.consistency = env->config->kv_consistency;
    deps.wal_enabled = env->config->kv_wal;
    deps.wal_sync_interval = env->config->kv_wal_sync_interval;
    deps.plant_ack_before_sync = env->config->check.plant_kv_ack_before_sync;
    deps.hint_limit = env->config->kv_hint_limit;
    deps.hint_ttl = env->config->kv_hint_ttl;
    deps.read_repair_chance = env->config->kv_read_repair_chance;
    // Derived from the ctor seed without consuming rng_ state, so enabling
    // retries (or read repair) leaves every other per-node random draw
    // untouched.
    deps.retry_seed = HashCombine(seed, 0x4b565254ULL);   // "KVRT"
    deps.repair_seed = HashCombine(seed, 0x4b565252ULL);  // "KVRR"
    deps.repair_enabled = env->config->kv_repair;
    deps.repair_interval = env->config->kv_repair_interval;
    deps.repair_rate_bytes = env->config->kv_repair_rate_bytes;
    deps.repair_max_sessions = env->config->kv_repair_max_sessions;
    deps.repair_session_timeout = env->config->kv_repair_session_timeout;
    deps.repair_max_retries = env->config->kv_repair_max_retries;
    deps.repair_pressure_max_inflight =
        env->config->kv_repair_pressure_max_inflight;
    deps.plant_repair_storm = env->config->check.plant_repair_storm;
    deps.anti_entropy_seed = HashCombine(seed, 0x4b565245ULL);  // "KVRE"
    // Data-path footprint (WAL + memtable/runs + hint queue) lands in the
    // machine memory model like the gossip arena below: deltas follow the
    // deterministic event order, so FidelityGuard memory verdicts and
    // colocation OOMs see the storage bytes deterministically.
    deps.charge = [this](int64_t delta) {
      if (!started_ || crashed_) {
        return;
      }
      if (delta > 0) {
        machine_->memory().Allocate(id_, "kv-storage", delta);
      } else {
        machine_->memory().Release(id_, "kv-storage", -delta);
      }
    };
    deps.history = env->kv_history;
    kv_ = std::make_unique<KvService>(deps);
  }
  unmonitored_.insert(id_);
  // Charge gossip-scratch arena growth to the memory model as it happens.
  // Growth points are deterministic (they follow the deterministic event
  // order), so the charges — and FidelityGuard's memory verdict — are too.
  // Pre-start growth is folded into the bulk charge in Start()/Restart();
  // post-crash growth is impossible (the node's threads are dead).
  gossiper_.scratch_arena().SetGrowHook([this](size_t block_bytes) {
    if (started_ && !crashed_) {
      machine_->memory().Allocate(id_, "gossip-arena",
                                  static_cast<int64_t>(block_bytes));
    }
  });
}

Node::~Node() = default;

void Node::PrimeSettled(const std::map<NodeId, std::vector<Token>>& members) {
  CHECK(!started_);
  auto self_it = members.find(id_);
  CHECK(self_it != members.end()) << "settled node" << id_ << "not in member map";
  my_tokens_ = self_it->second;

  VersionedValue status;
  status.status = StatusKind::kNormal;
  status.tokens = my_tokens_;
  gossiper_.SetLocalState(ApplicationStateKey::kStatus, status);

  for (const auto& [peer, tokens] : members) {
    ring_.AddNode(peer, tokens);
    if (peer == id_) {
      continue;
    }
    EndpointState state(/*generation=*/1);
    VersionedValue peer_status;
    peer_status.version = 1;
    peer_status.status = StatusKind::kNormal;
    peer_status.tokens = tokens;
    state.Set(ApplicationStateKey::kStatus, peer_status);
    gossiper_.AddKnownEndpoint(peer, state);
    // Prime the failure detector so phi is meaningful from t=0.
    fd_.Report(peer, env_->clock->Now());
  }
}

void Node::PrimeSeeds(const std::map<NodeId, std::vector<Token>>& seed_members) {
  CHECK(!started_);
  for (const auto& [peer, tokens] : seed_members) {
    if (peer == id_) {
      continue;
    }
    EndpointState state(/*generation=*/1);
    VersionedValue peer_status;
    peer_status.version = 1;
    peer_status.status = StatusKind::kNormal;
    peer_status.tokens = tokens;
    state.Set(ApplicationStateKey::kStatus, peer_status);
    gossiper_.AddKnownEndpoint(peer, state);
    // A fresh joiner has an established view of the seeds only.
    if (!ring_.HasNode(peer)) {
      ring_.AddNode(peer, tokens);
    }
  }
}

void Node::PrimeContacts(const std::vector<NodeId>& contacts) {
  CHECK(!started_);
  for (NodeId peer : contacts) {
    if (peer == id_) {
      continue;
    }
    // Generation 0: any real state the contact later advertises wins.
    gossiper_.AddKnownEndpoint(peer, EndpointState(/*generation=*/0));
  }
}

void Node::SetSeedContacts(const std::vector<NodeId>& contacts) {
  seed_contacts_.clear();
  for (NodeId peer : contacts) {
    if (peer != id_) {
      seed_contacts_.push_back(peer);
    }
  }
}

void Node::EnableOrderEnforcement(std::vector<MessageKey> sequence) {
  enforcer_ = std::make_unique<OrderEnforcer>(
      std::move(sequence), /*max_buffer=*/48,
      [this](const Message& msg) { ProcessMessage(msg); });
}

void Node::Start(bool as_joiner, VirtualDuration transition) {
  CHECK(!started_);
  started_ = true;

  machine_->memory().Allocate(id_, "runtime", env_->config->RuntimeOverheadBytes());
  machine_->memory().Allocate(
      id_, "endpoints",
      static_cast<int64_t>(gossiper_.endpoints().size()) *
          env_->config->endpoint_state_bytes);
  machine_->memory().Allocate(
      id_, "gossip-arena",
      static_cast<int64_t>(gossiper_.scratch_arena().bytes_reserved()));

  env_->transport->RegisterNode(id_, [this](const Message& msg) { OnMessage(msg); });
  if (kv_ != nullptr) {
    kv_->Start();  // arms the anti-entropy scheduler when repair is on
  }

  if (as_joiner) {
    CHECK(my_tokens_.empty());
    my_tokens_ = GenerateTokens(id_, env_->config->vnodes_per_node, env_->config->seed);
    VersionedValue boot;
    boot.status = StatusKind::kBootstrapping;
    boot.tokens = my_tokens_;
    gossiper_.SetLocalState(ApplicationStateKey::kStatus, boot);
    AddPendingChange(PendingChange{id_, ChangeKind::kJoining, my_tokens_});
    MarkRingDirty();

    // BOOT -> NORMAL after the transition period. The continuation belongs to
    // the incarnation that scheduled it: if the node crashes and restarts in
    // the window, the restarted process must not be promoted by a timer armed
    // by its dead predecessor.
    const int64_t gen = generation_;
    env_->clock->ScheduleAfter(transition, [this, gen] {
      if (crashed_ || generation_ != gen) {
        return;
      }
      VersionedValue normal;
      normal.status = StatusKind::kNormal;
      normal.tokens = my_tokens_;
      gossiper_.SetLocalState(ApplicationStateKey::kStatus, normal);
      if (!ring_.HasNode(id_)) {
        ring_.AddNode(id_, my_tokens_);
      }
      RemovePendingChange(id_);
      MarkRingDirty();
      MaybeScheduleRecalc();
    });
  }

  // Desynchronize rounds across nodes, as real deployments are.
  VirtualDuration phase = VirtualDuration::Nanos(static_cast<int64_t>(
      rng_.UniformDouble() * static_cast<double>(env_->config->gossip_interval.nanos())));
  gossip_timer_ = std::make_unique<PeriodicClockTimer>(
      env_->clock, env_->config->gossip_interval, [this] { GossipRound(); });
  gossip_timer_->Start(phase);
}

void Node::BeginDecommission(VirtualDuration transition) {
  CHECK(started_);
  VersionedValue leaving;
  leaving.status = StatusKind::kLeaving;
  leaving.tokens = my_tokens_;
  gossiper_.SetLocalState(ApplicationStateKey::kStatus, leaving);
  AddPendingChange(PendingChange{id_, ChangeKind::kLeaving, {}});
  MarkRingDirty();
  MaybeScheduleRecalc();

  // Both deferred steps are guarded on the scheduling incarnation: a crash +
  // restart inside the transition window must not let the stale continuation
  // announce LEFT (or silence gossip) on behalf of the fresh process.
  const int64_t gen = generation_;
  env_->clock->ScheduleAfter(transition, [this, gen] {
    if (crashed_ || generation_ != gen) {
      return;
    }
    VersionedValue left;
    left.status = StatusKind::kLeft;
    left.tokens = my_tokens_;
    gossiper_.SetLocalState(ApplicationStateKey::kStatus, left);
    if (ring_.HasNode(id_)) {
      ring_.RemoveNode(id_);
    }
    RemovePendingChange(id_);
    MarkRingDirty();
    MaybeScheduleRecalc();
  });
  // Keep gossiping LEFT for a grace period so it disseminates, then stop.
  env_->clock->ScheduleAfter(transition + VirtualDuration::Seconds(20), [this, gen] {
    if (crashed_ || generation_ != gen) {
      return;
    }
    gossip_timer_->Stop();
    env_->transport->UnregisterNode(id_);
  });
}

void Node::Crash() {
  if (crashed_) {
    return;
  }
  crashed_ = true;
  if (env_->trace != nullptr) {
    env_->trace->Record(env_->clock->Now(), TraceKind::kNodeCrash, id_);
  }
  if (gossip_timer_ != nullptr) {
    gossip_timer_->Stop();
  }
  env_->transport->UnregisterNode(id_);
  gossip_task_.Kill();
  gossip_stage_.Kill();
  if (calc_thread_ != nullptr) {
    calc_thread_->Kill();
  }
  if (kv_stage_ != nullptr) {
    kv_stage_->Kill();
  }
  // A dead process holds no locks: force-release the ring lock (abandoning
  // any waiters, whose threads just died with it) so survivors — and a later
  // restart — are not wedged behind a lock nobody can ever release.
  ring_lock_.ResetForCrash();
  if (kv_ != nullptr) {
    // Process death for the data path: pending group-commit acks and the
    // volatile hint queue vanish; with the WAL on, so do the unsynced tail
    // and the in-memory storage engine.
    kv_->OnCrash();
  }
  machine_->memory().ReleaseAll(id_);
}

void Node::Restart(const std::vector<NodeId>& contacts) {
  CHECK(crashed_) << "Restart of a live node " << id_;
  CHECK(started_);
  crashed_ = false;
  ++generation_;
  if (env_->trace != nullptr) {
    env_->trace->Record(env_->clock->Now(), TraceKind::kNodeRestart, id_, kInvalidNode,
                        generation_);
  }

  // Fresh process: threads come back, all in-memory protocol state is gone.
  gossip_task_.Revive();
  gossip_stage_.Revive();
  if (calc_thread_ != nullptr) {
    calc_thread_->Revive();
  }
  if (kv_stage_ != nullptr) {
    kv_stage_->Revive();
  }

  gossiper_.ResetForRestart(generation_);
  fd_ = PhiAccrualFailureDetector(env_->config->fd);
  ring_ = TokenRing();
  pending_changes_.clear();
  pending_ranges_ = PendingRanges();
  ring_dirty_ = false;
  recalc_inflight_ = false;
  partition_services_allocated_ = false;
  partition_services_bytes_ = 0;
  unmonitored_.clear();
  unmonitored_.insert(id_);

  // We restart with our durable token assignment and announce NORMAL under
  // the bumped generation; peers replace our stale state wholesale. The
  // cluster view is re-learned from the contacts.
  for (NodeId peer : contacts) {
    if (peer != id_) {
      gossiper_.AddKnownEndpoint(peer, EndpointState(/*generation=*/0));
    }
  }
  VersionedValue normal;
  normal.status = StatusKind::kNormal;
  normal.tokens = my_tokens_;
  gossiper_.SetLocalState(ApplicationStateKey::kStatus, normal);
  ring_.AddNode(id_, my_tokens_);

  machine_->memory().Allocate(id_, "runtime", env_->config->RuntimeOverheadBytes());
  machine_->memory().Allocate(
      id_, "endpoints",
      static_cast<int64_t>(gossiper_.endpoints().size()) *
          env_->config->endpoint_state_bytes);
  // The arena survives the crash (it is process memory of the simulator, and
  // its blocks are reused by the fresh incarnation); re-charge the footprint
  // the restarted process would re-acquire.
  machine_->memory().Allocate(
      id_, "gossip-arena",
      static_cast<int64_t>(gossiper_.scratch_arena().bytes_reserved()));
  env_->transport->RegisterNode(id_, [this](const Message& msg) { OnMessage(msg); });
  if (kv_ != nullptr) {
    // With the WAL on, this replays the durable prefix into a fresh storage
    // engine — the acked writes the kv-durability invariant audits.
    kv_->OnRestart();
  }

  VirtualDuration phase = VirtualDuration::Nanos(static_cast<int64_t>(
      rng_.UniformDouble() * static_cast<double>(env_->config->gossip_interval.nanos())));
  gossip_timer_ = std::make_unique<PeriodicClockTimer>(
      env_->clock, env_->config->gossip_interval, [this] { GossipRound(); });
  gossip_timer_->Start(phase);
}

uint64_t Node::order_divergences() const {
  return enforcer_ == nullptr ? 0 : enforcer_->divergences();
}

uint64_t Node::order_enforced() const {
  return enforcer_ == nullptr ? 0 : enforcer_->enforced_in_order();
}

bool Node::IsSettledView() const {
  return pending_changes_.empty() && !recalc_inflight_ && !ring_dirty_;
}

// ---- Gossip plumbing -------------------------------------------------------

void Node::OnMessage(const Message& msg) {
  if (crashed_) {
    return;
  }
  if (enforcer_ != nullptr) {
    enforcer_->Submit(msg);
  } else {
    ProcessMessage(msg);
  }
}

void Node::ProcessMessage(const Message& msg) {
  if (env_->record_order && env_->order_log != nullptr) {
    // Stage jobs run FIFO, so enqueue order here IS processing order.
    env_->order_log->Append(id_, MessageKey::Of(msg));
  }
  switch (msg.type) {
    case kGossipSyn:
      HandleSynMessage(msg);
      break;
    case kGossipAck:
      HandleAckMessage(msg);
      break;
    case kGossipAck2:
      HandleAck2Message(msg);
      break;
    case kKvWriteReq:
    case kKvWriteResp:
    case kKvReadReq:
    case kKvReadResp:
    case kKvRepairHashReq:
    case kKvRepairHashResp:
    case kKvRepairStreamWrite:
      if (kv_ != nullptr) {
        kv_->HandleMessage(msg);
      }
      break;
    default:
      SC_LOG(Warning) << "node " << id_ << ": unknown message type " << msg.type;
  }
}

void Node::GossipRound() {
  if (crashed_) {
    return;
  }
  VirtualTime intended = env_->clock->Now();

  Job round("gossip.round");
  round.IntendedAt(intended);
  round
      .Run([this] {
        gossiper_.IncrementHeartbeat();
      })
      .Compute([this] {
        return gossiper_.EstimateRoundWork(env_->config->gossip_costs);
      })
      .Run([this] {
        const std::vector<NodeId>& live = gossiper_.LiveEndpointsView();
        if (!live.empty()) {
          SendSyn(live[rng_.PickIndex(live.size())]);
        }
        // Gossip-to-unreachable escape hatch: a healed partition only
        // re-converges if somebody eventually SYNs across the conviction
        // boundary. Probability |unreachable|/(|live|+1), Cassandra-style;
        // draws happen only when the unreachable set is non-empty.
        NodeId unreachable = gossiper_.PickUnreachableSynTarget(&rng_);
        if (unreachable != kInvalidNode) {
          SendSyn(unreachable);
        }
        // Fully islanded (empty live view): fall back to a seed contact
        // unconditionally, so even a node that convicted the whole cluster
        // re-establishes contact within one round of the partition healing.
        if (live.empty() && !seed_contacts_.empty()) {
          SendSyn(seed_contacts_[rng_.PickIndex(seed_contacts_.size())]);
        }
      });
  gossip_task_.Enqueue(std::move(round));

  FailureSweep();
}

void Node::FailureSweep() {
  Job sweep("gossip.fd-sweep");
  sweep
      .Compute([this] {
        return env_->config->fd_check_cost_per_endpoint *
               static_cast<WorkUnits>(gossiper_.endpoints().size());
      })
      .Run([this] {
        VirtualTime now = env_->clock->Now();
        // Iterating the cached live view is equivalent to scanning all
        // endpoints and skipping the dead: Node keeps alive ⊆ known. MarkDead
        // inside the loop only defers a rebuild, it does not move the vector.
        for (NodeId ep : gossiper_.LiveEndpointsView()) {
          if (unmonitored_.count(ep) > 0) {
            continue;
          }
          if (fd_.Phi(ep, now) > fd_.config().threshold) {
            gossiper_.MarkDead(ep);
            env_->flaps->RecordDown(id_, ep, now);
            if (env_->trace != nullptr) {
              env_->trace->Record(now, TraceKind::kConviction, id_, ep);
            }
          }
        }
        if (env_->profile_hook) {
          env_->profile_hook(env_->fd_sweep_function,
                             env_->config->fd_check_cost_per_endpoint *
                                 static_cast<int64_t>(gossiper_.endpoints().size()),
                             gossiper_.endpoints().size());
        }
      });
  gossip_task_.Enqueue(std::move(sweep));
}

void Node::SendSyn(NodeId peer) {
  std::shared_ptr<SynPayload> syn = syn_pool_.Acquire();
  gossiper_.CopySynDigests(&syn->digests);
  digest_bytes_sent_ += syn->SizeBytes();
  env_->transport->Send(id_, peer, kGossipSyn, std::move(syn));
}

void Node::HandleSynMessage(const Message& msg) {
  auto syn = std::static_pointer_cast<const SynPayload>(msg.payload);
  NodeId peer = msg.from;
  Job job("gossip.handle-syn");
  if (!env_->config->gossip_stage_timeout.IsZero()) {
    job.ExpiresAfter(env_->config->gossip_stage_timeout);
  }
  job.Compute([this, syn] {
       return Gossiper::EstimateSynWork(*syn, env_->config->gossip_costs);
     })
      .Run([this, syn, peer] {
        std::shared_ptr<AckPayload> ack = ack_pool_.Acquire();
        gossiper_.HandleSyn(syn->digests, &ack->requests, &ack->states);
        if (env_->profile_hook) {
          env_->profile_hook(env_->gossip_syn_function,
                             Gossiper::EstimateSynWork(*syn, env_->config->gossip_costs),
                             gossiper_.endpoints().size());
        }
        env_->transport->Send(id_, peer, kGossipAck, std::move(ack));
      });
  gossip_stage_.Enqueue(std::move(job));
}

void Node::HandleAckMessage(const Message& msg) {
  auto ack = std::static_pointer_cast<const AckPayload>(msg.payload);
  NodeId peer = msg.from;
  Job job("gossip.handle-ack");
  if (!env_->config->gossip_stage_timeout.IsZero()) {
    job.ExpiresAfter(env_->config->gossip_stage_timeout);
  }
  job.Compute([this, ack] {
    return Gossiper::EstimateAckWork(*ack, env_->config->gossip_costs);
  });
  if (UsesRingLock()) {
    job.Lock(&ring_lock_);
  }
  job.Run([this, ack] {
    gossiper_.ApplyStates(ack->states);
    if (env_->profile_hook) {
      env_->profile_hook(env_->gossip_apply_function,
                         Gossiper::EstimateAckWork(*ack, env_->config->gossip_costs),
                         gossiper_.endpoints().size());
    }
  });
  if (UsesRingLock()) {
    job.Unlock(&ring_lock_);
  }
  job.Run([this, ack, peer] {
    if (!ack->requests.empty()) {
      std::shared_ptr<Ack2Payload> ack2 = ack2_pool_.Acquire();
      gossiper_.StatesForRequests(ack->requests, &ack2->states);
      if (!ack2->states.empty()) {
        env_->transport->Send(id_, peer, kGossipAck2, std::move(ack2));
      }
    }
    MaybeScheduleRecalc();
  });
  gossip_stage_.Enqueue(std::move(job));
}

void Node::HandleAck2Message(const Message& msg) {
  auto ack2 = std::static_pointer_cast<const Ack2Payload>(msg.payload);
  Job job("gossip.handle-ack2");
  if (!env_->config->gossip_stage_timeout.IsZero()) {
    job.ExpiresAfter(env_->config->gossip_stage_timeout);
  }
  job.Compute([this, ack2] {
    return Gossiper::EstimateAck2Work(*ack2, env_->config->gossip_costs);
  });
  if (UsesRingLock()) {
    job.Lock(&ring_lock_);
  }
  job.Run([this, ack2] { gossiper_.ApplyStates(ack2->states); });
  if (UsesRingLock()) {
    job.Unlock(&ring_lock_);
  }
  job.Run([this] { MaybeScheduleRecalc(); });
  gossip_stage_.Enqueue(std::move(job));
}

// ---- Gossiper callbacks ------------------------------------------------------

void Node::OnStatusChange(NodeId ep, StatusKind old_status, StatusKind new_status) {
  if (env_->trace != nullptr) {
    env_->trace->Record(env_->clock->Now(), TraceKind::kStatusChange, id_, ep,
                        static_cast<int64_t>(new_status), StatusKindName(new_status));
  }
  switch (new_status) {
    case StatusKind::kBootstrapping: {
      const EndpointState* state = gossiper_.StateOf(ep);
      CHECK_NOTNULL(state);
      AddPendingChange(PendingChange{ep, ChangeKind::kJoining, state->Tokens()});
      MarkRingDirty();
      break;
    }
    case StatusKind::kNormal: {
      const EndpointState* state = gossiper_.StateOf(ep);
      CHECK_NOTNULL(state);
      if (!ring_.HasNode(ep)) {
        ring_.AddNode(ep, state->Tokens());
      }
      RemovePendingChange(ep);
      MarkRingDirty();
      break;
    }
    case StatusKind::kLeaving:
      AddPendingChange(PendingChange{ep, ChangeKind::kLeaving, {}});
      MarkRingDirty();
      break;
    case StatusKind::kLeft:
    case StatusKind::kRemoved:
      if (env_->config->check.plant_left_join_bug &&
          old_status == StatusKind::kUnknown && !ring_.HasNode(ep)) {
        // Planted recovery bug (CheckOptions::plant_left_join_bug): a view
        // meeting a tombstoned endpoint for the first time — e.g. a process
        // that restarted after a peer finished decommissioning — mishandles
        // the LEFT state as a join and claims the departed node's tokens
        // back into its ring. The zombie-endpoint invariant exists to catch
        // exactly this class of mistake.
        const EndpointState* state = gossiper_.StateOf(ep);
        if (state != nullptr && !state->Tokens().empty()) {
          ring_.AddNode(ep, state->Tokens());
          RemovePendingChange(ep);
          MarkRingDirty();
          break;
        }
      }
      if (ring_.HasNode(ep)) {
        ring_.RemoveNode(ep);
      }
      RemovePendingChange(ep);
      // A properly departed node is no longer monitored; its silence is not
      // a failure and must not produce flaps.
      unmonitored_.insert(ep);
      fd_.Forget(ep);
      gossiper_.MarkDead(ep);
      MarkRingDirty();
      break;
    case StatusKind::kUnknown:
      break;
  }
}

void Node::OnHeartbeat(NodeId ep) {
  if (unmonitored_.count(ep) > 0) {
    return;
  }
  fd_.Report(ep, env_->clock->Now());
  if (!gossiper_.IsAlive(ep)) {
    gossiper_.MarkAlive(ep);
    env_->flaps->RecordUp(id_, ep, env_->clock->Now());
    if (env_->trace != nullptr) {
      env_->trace->Record(env_->clock->Now(), TraceKind::kRescue, id_, ep);
    }
    if (kv_ != nullptr) {
      // The failure detector just un-convicted this replica: deliver (or
      // expire) whatever writes we hinted for it while it was down.
      kv_->OnReplicaAlive(ep);
    }
  }
  if (env_->config->recalc_trigger == RecalcTrigger::kAnyApplyOfPendingEndpoint &&
      HasPendingChange(ep)) {
    MarkRingDirty();
  }
}

void Node::OnRestart(NodeId ep) {
  // Treat a restarted peer as freshly alive.
  if (!gossiper_.IsAlive(ep)) {
    gossiper_.MarkAlive(ep);
    env_->flaps->RecordUp(id_, ep, env_->clock->Now());
    if (kv_ != nullptr) {
      kv_->OnReplicaAlive(ep);
    }
  }
}

// ---- Ring / pending-range machinery -------------------------------------------

void Node::AddPendingChange(PendingChange change) {
  for (const PendingChange& existing : pending_changes_) {
    if (existing.node == change.node && existing.kind == change.kind) {
      return;
    }
  }
  pending_changes_.push_back(std::move(change));
  UpdatePartitionServiceMemory();
}

void Node::RemovePendingChange(NodeId ep) {
  auto removed = std::remove_if(pending_changes_.begin(), pending_changes_.end(),
                                [ep](const PendingChange& c) { return c.node == ep; });
  if (removed != pending_changes_.end()) {
    pending_changes_.erase(removed, pending_changes_.end());
    UpdatePartitionServiceMemory();
  }
}

bool Node::HasPendingChange(NodeId ep) const {
  for (const PendingChange& c : pending_changes_) {
    if (c.node == ep) {
      return true;
    }
  }
  return false;
}

void Node::UpdatePartitionServiceMemory() {
  bool want = !pending_changes_.empty();
  if (want == partition_services_allocated_) {
    return;
  }
  if (want) {
    // §6: the rebalance protocol allocates partition services up front. The
    // space-oblivious variant allocates (N-1)*P of them; the fixed code P.
    int64_t services =
        env_->config->space_oblivious_rebalance
            ? static_cast<int64_t>(gossiper_.endpoints().size() - 1) *
                  env_->config->vnodes_per_node
            : env_->config->vnodes_per_node;
    partition_services_bytes_ = services * env_->config->partition_service_bytes;
    machine_->memory().Allocate(id_, "partition-services", partition_services_bytes_);
    partition_services_allocated_ = true;
  } else {
    machine_->memory().Release(id_, "partition-services", partition_services_bytes_);
    partition_services_bytes_ = 0;
    partition_services_allocated_ = false;
  }
}

void Node::MarkRingDirty() { ring_dirty_ = true; }

void Node::MaybeScheduleRecalc() {
  if (crashed_ || !ring_dirty_ || recalc_inflight_) {
    return;
  }
  if (pending_changes_.empty()) {
    // Nothing in flight: the recalculation is trivial; skip it (the cheap
    // path real code takes too).
    ring_dirty_ = false;
    pending_ranges_ = PendingRanges();
    return;
  }
  recalc_inflight_ = true;
  BuildRecalcJob();
}

void Node::BuildRecalcJob() {
  struct RecalcState {
    TokenRing ring_copy;
    CalcInput input;
    bool bootstrap_path = false;
    bool digest_ready = false;
    DigestValue digest;
  };
  auto state = std::make_shared<RecalcState>();

  auto digest_fn = [state] {
    if (!state->digest_ready) {
      state->digest = state->input.ComputeDigest();
      state->digest_ready = true;
    }
    return state->digest;
  };
  auto compute_fn = [this, state] {
    return ComputeCalc(state->input, state->bootstrap_path);
  };
  auto apply_fn = [this](const std::vector<uint8_t>& output, bool from_memo) {
    PendingRanges decoded;
    if (!PendingRanges::Decode(output, &decoded)) {
      SC_LOG(Error) << "node " << id_ << ": undecodable pending-range output";
      return;
    }
    pending_ranges_ = std::move(decoded);
  };

  auto prepare = [this, state] {
    ring_dirty_ = false;
    ++*env_->calc_invocations;
    if (env_->trace != nullptr) {
      env_->trace->Record(env_->clock->Now(), TraceKind::kCalcStart, id_, kInvalidNode,
                          static_cast<int64_t>(pending_changes_.size()));
    }
    state->bootstrap_path =
        ring_.num_nodes() < static_cast<size_t>(env_->config->replication_factor);
    state->input.changes = pending_changes_;
    state->input.rf = env_->config->replication_factor;
  };
  auto finish = [this] {
    recalc_inflight_ = false;
    if (env_->trace != nullptr) {
      env_->trace->Record(env_->clock->Now(), TraceKind::kCalcDone, id_, kInvalidNode,
                          static_cast<int64_t>(pending_ranges_.size()));
    }
    MaybeScheduleRecalc();  // re-run if dirtied during the calculation
  };

  Job job("ring.recalc");
  switch (env_->config->calc_placement) {
    case CalcPlacement::kInlineGossipStage:
      job.Run([prepare, state, this] {
        prepare();
        state->input.ring = &ring_;
      });
      break;
    case CalcPlacement::kSeparateThreadCoarseLock:
      // The C5456 bug: the whole calculation (or its PIL sleep) happens with
      // the ring lock held.
      job.Lock(&ring_lock_);
      job.Run([prepare, state, this] {
        prepare();
        state->input.ring = &ring_;
      });
      break;
    case CalcPlacement::kSeparateThreadClone:
      // The C5456 fix: clone under the lock, release, then compute.
      job.Lock(&ring_lock_);
      job.Compute([this] { return static_cast<WorkUnits>(ring_.num_entries()) * 6; });
      job.Run([prepare, state, this] {
        prepare();
        state->ring_copy = ring_.Clone();
        state->input.ring = &state->ring_copy;
      });
      job.Unlock(&ring_lock_);
      break;
  }

  // The PIL boundary itself. The function id must distinguish the two code
  // paths (they memoize separately).
  PilFunctionId main_id = env_->calc_function;
  PilFunctionId boot_id = env_->bootstrap_function;
  // We cannot know the path before prepare() runs, so wrap the boundary with
  // the main id and fold the path into the digest: same effect, stable keys.
  auto path_digest_fn = [digest_fn, state, boot_id, main_id] {
    DigestValue d = digest_fn();
    d.lo = HashCombine(d.lo, state->bootstrap_path ? boot_id : main_id);
    return d;
  };
  env_->pil->Apply(&job, main_id, path_digest_fn, compute_fn, apply_fn);

  if (env_->config->calc_placement == CalcPlacement::kSeparateThreadCoarseLock) {
    job.Unlock(&ring_lock_);
  }
  job.Run(finish);
  CalcThread()->Enqueue(std::move(job));
}

PilBoundary::ComputeOutput Node::ComputeCalc(const CalcInput& input,
                                             bool bootstrap_path) {
  PendingRangeCalculator* calc =
      bootstrap_path ? env_->bootstrap_calc : env_->calculator;
  DigestValue digest = input.ComputeDigest();

  PilBoundary::ComputeOutput out;
  const CalcOutputCache::Entry* cached =
      env_->output_cache == nullptr ? nullptr
                                    : env_->output_cache->Find(calc->version(), digest);
  int64_t ops = 0;
  bool executed = false;
  if (cached != nullptr) {
    out.output = cached->output;
    out.work = cached->work;
    ops = cached->ops;
    executed = cached->executed;
  } else {
    PendingRangeCalculator::RunOutcome outcome =
        calc->Run(input, env_->config->execute_threshold_ops);
    out.output = outcome.pending.Encode();
    out.work = outcome.work;
    ops = outcome.ops;
    executed = outcome.executed;
    if (env_->output_cache != nullptr) {
      env_->output_cache->Put(calc->version(), digest,
                              CalcOutputCache::Entry{out.output, out.work, ops, executed});
    }
  }
  if (executed) {
    ++*env_->calc_executed_real;
  }
  env_->calc_durations->Add(env_->pil->WorkToDuration(out.work).seconds());
  if (env_->profile_hook) {
    env_->profile_hook(bootstrap_path ? env_->bootstrap_function : env_->calc_function,
                       ops, input.ring->num_entries());
  }
  return out;
}

}  // namespace scalecheck
