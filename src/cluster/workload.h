// Protocol workloads (§3: "bootstrap, scale-out, decommission, rebalance,
// and failover protocols, all must be tested at scale").

#ifndef SCALECHECK_SRC_CLUSTER_WORKLOAD_H_
#define SCALECHECK_SRC_CLUSTER_WORKLOAD_H_

#include <string>

#include "src/common/result.h"
#include "src/common/types.h"

namespace scalecheck {

enum class WorkloadKind : int {
  // Nothing changes; the cluster should stay flap-free (control workload).
  kSteadyState = 0,
  // One settled node announces LEAVING, later LEFT (bug C3831's trigger).
  kDecommission = 1,
  // `joining_nodes` fresh nodes BOOT into a settled cluster (C3881, C5456).
  kScaleOut = 2,
  // The whole cluster bootstraps from scratch — the only workload that
  // exercises the C6127 fresh-ring code path.
  kBootstrapFresh = 3,
  // A node crashes without announcing anything (failover detection).
  kFailover = 4,
  // A node moves to new tokens: decommission + immediate re-join.
  kRebalance = 5,
};

const char* WorkloadKindName(WorkloadKind kind);

// Inverse of WorkloadKindName; InvalidArgument on an unknown spelling. Used
// by the CLI's --workload= override and the repro artifact, which must pin
// the workload because invariant checkability depends on it.
Result<WorkloadKind> WorkloadKindFromName(const std::string& name);

struct WorkloadSpec {
  WorkloadKind kind = WorkloadKind::kDecommission;
  // Nodes beyond the initial cluster that join (kScaleOut). A common setting
  // is initial_nodes / 4 — the "+25%" rescale.
  int joining_nodes = 0;
  // Which node leaves / crashes / moves (kDecommission/kFailover/kRebalance).
  NodeId target = 0;
  // When the perturbation starts.
  VirtualDuration start_at = VirtualDuration::Seconds(20);
  // LEAVING->LEFT and BOOT->NORMAL transition time (Cassandra's RING_DELAY
  // neighborhood).
  VirtualDuration transition = VirtualDuration::Seconds(30);
  // Start jitter between joining nodes.
  VirtualDuration stagger = VirtualDuration::Millis(500);
  // Total test window.
  VirtualDuration horizon = VirtualDuration::Seconds(420);

  std::string Describe() const;
};

}  // namespace scalecheck

#endif  // SCALECHECK_SRC_CLUSTER_WORKLOAD_H_
