// Builds a deployment (simulator + machines + nodes), drives a workload, and
// collects a RunResult. One Cluster = one run of Figure 3's inner loop.

#ifndef SCALECHECK_SRC_CLUSTER_CLUSTER_H_
#define SCALECHECK_SRC_CLUSTER_CLUSTER_H_

#include <functional>
#include <memory>
#include <vector>

#include "src/check/invariants.h"
#include "src/common/interner.h"
#include "src/cluster/config.h"
#include "src/cluster/node.h"
#include "src/cluster/run_result.h"
#include "src/cluster/workload.h"
#include "src/kv/kv_history.h"
#include "src/faults/fault_injector.h"
#include "src/faults/fault_plan.h"
#include "src/gossip/flap_counter.h"
#include "src/pil/boundary.h"
#include "src/pil/function_registry.h"
#include "src/pil/memo_store.h"
#include "src/pil/order_log.h"
#include "src/sim/machine.h"
#include "src/sim/network.h"
#include "src/transport/sim_substrate.h"
#include "src/sim/profiler.h"
#include "src/sim/simulator.h"

namespace scalecheck {

// Key popularity for the KV load driver: uniform over the key space, or
// Zipf(s) where key k has weight 1/(k+1)^s — a hot-key skew that concentrates
// both foreground traffic and repair divergence on a few token ranges.
enum class KvKeyDist { kUniform, kZipf };

class Cluster {
 public:
  struct Options {
    ClusterConfig config;
    WorkloadSpec workload;
    // kMemoize: records into these. kPilReplay: reads from them.
    MemoStore* memo_store = nullptr;
    OrderLog* record_order_log = nullptr;        // filled during memoization
    const OrderLog* replay_order_log = nullptr;  // enforced during replay
    // Optional cross-run calculator output cache (harness wall-clock only).
    CalcOutputCache* shared_output_cache = nullptr;
    // sfind profiling hook: (function, executed ops, ring entries).
    std::function<void(PilFunctionId, int64_t, size_t)> profile_hook;
    NetworkModel::Config network;
    // Stop this long after the workload settles (flap recovery tail).
    VirtualDuration cooldown = VirtualDuration::Seconds(40);
    // Client load on the KV data path (requires config.enable_kv).
    double kv_ops_per_second = 0.0;
    int kv_value_bytes = 128;
    uint64_t kv_key_space = 100000;
    // Key distribution for the driver. Zipf sampling draws from the same RNG
    // stream as uniform (one draw per op), so switching distributions changes
    // which keys are hit but not the rest of the run's randomness.
    KvKeyDist kv_key_dist = KvKeyDist::kUniform;
    double kv_zipf_s = 1.0;  // Zipf exponent (only read when kv_key_dist=kZipf)
    // Record an execution trace (determinism digests, debugging dumps).
    bool enable_trace = false;
    // Optional profiler: deterministic op counters land in
    // RunResult::profile, host wall timers stay on the profiler itself.
    SimProfiler* profiler = nullptr;
    // Seed-deterministic fault schedule injected during the run. Part of the
    // run's identity: memoize and replay apply the identical schedule.
    FaultPlan faults;
    // Host wall-clock watchdog for this run (0 disables). When it fires the
    // simulation stops early and RunResult::watchdog_fired is set — the
    // self-healing suite executor uses this to bound runaway cells.
    double wall_budget_seconds = 0.0;
  };

  explicit Cluster(Options options);
  ~Cluster();
  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  // Runs the workload to settle+cooldown (or the horizon) and reports.
  RunResult Run();

  // ---- Introspection (tests, examples) ------------------------------------
  Simulator& sim() { return *sim_; }
  Node* node(NodeId id) { return nodes_.at(static_cast<size_t>(id)).get(); }
  size_t total_nodes() const { return nodes_.size(); }
  const FlapCounter& flaps() const { return flaps_; }
  const FunctionRegistry& registry() const { return registry_; }
  MachineSet& machines() { return *machines_; }
  // Non-null iff Options::enable_trace.
  const TraceRecorder* trace() const { return trace_.get(); }
  // Non-null iff Options::faults is non-empty.
  const FaultInjector* injector() const { return injector_.get(); }
  PilFunctionId calc_function() const { return calc_function_; }
  PilFunctionId bootstrap_function() const { return bootstrap_function_; }
  const PendingRangeCalculator* calculator() const { return calculator_.get(); }
  const PendingRangeCalculator* bootstrap_calc() const { return bootstrap_calc_.get(); }
  // Non-null iff config.check.enabled.
  const InvariantRegistry* invariants() const { return invariants_.get(); }
  // Non-null iff config.check.enabled && config.enable_kv.
  const KvHistory* kv_history() const { return kv_history_.get(); }
  // Deployment name->id authority; interning order == NodeId (checked).
  const EndpointInterner& interner() const { return interner_; }

 private:
  void BuildDeployment();
  void ScheduleWorkload();
  bool WorkloadSettled() const;
  void ProbeInvariants();
  void CollectResult(RunResult* result) const;

  Options options_;
  std::unique_ptr<Simulator> sim_;
  std::unique_ptr<MachineSet> machines_;
  std::unique_ptr<NetworkModel> network_;
  // Substrate seam adapters the nodes actually talk through.
  std::unique_ptr<SimClock> sim_clock_;
  std::unique_ptr<SimTransport> sim_transport_;
  FlapCounter flaps_;
  FunctionRegistry registry_;
  PilFunctionId calc_function_ = kInvalidPilFunction;
  PilFunctionId bootstrap_function_ = kInvalidPilFunction;
  PilFunctionId gossip_syn_function_ = kInvalidPilFunction;
  PilFunctionId gossip_apply_function_ = kInvalidPilFunction;
  PilFunctionId fd_sweep_function_ = kInvalidPilFunction;
  std::unique_ptr<PendingRangeCalculator> calculator_;
  std::unique_ptr<PendingRangeCalculator> bootstrap_calc_;
  std::unique_ptr<PilBoundary> pil_;
  std::unique_ptr<FidelityGuard> guard_;  // null iff config.guard.enabled is false
  std::unique_ptr<InvariantRegistry> invariants_;  // null iff !config.check.enabled
  std::unique_ptr<KvHistory> kv_history_;
  std::vector<const Node*> node_view_;  // lazy id-ordered view for probes
  std::unique_ptr<CalcOutputCache> owned_output_cache_;
  std::unique_ptr<TraceRecorder> trace_;
  Node::Env env_;

  EndpointInterner interner_;
  std::vector<std::unique_ptr<Node>> nodes_;
  int initial_nodes_ = 0;
  int joining_nodes_ = 0;

  // Metric sinks wired into Node::Env.
  RunningStat calc_durations_;
  int64_t calc_invocations_ = 0;
  int64_t calc_executed_real_ = 0;

  bool settled_ = false;
  VirtualTime settle_time_;
  int crashed_nodes_ = 0;
  int restarted_nodes_ = 0;

  // Fault injection (null when Options::faults is empty).
  std::unique_ptr<FaultInjector> injector_;

  // KV load-driver aggregates.
  std::unique_ptr<Rng> kv_rng_;
  std::vector<double> kv_zipf_cdf_;  // built once when kv_key_dist=kZipf
  uint64_t SampleKvKey();
  int64_t kv_issued_ = 0;
  int64_t kv_ok_ = 0;
  int64_t kv_unavailable_ = 0;
  int64_t kv_timeout_ = 0;
  LogHistogram kv_latency_{1e5, 1.5, 80};
};

}  // namespace scalecheck

#endif  // SCALECHECK_SRC_CLUSTER_CLUSTER_H_
