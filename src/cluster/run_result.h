// Per-run metrics, the raw material of every table and figure.

#ifndef SCALECHECK_SRC_CLUSTER_RUN_RESULT_H_
#define SCALECHECK_SRC_CLUSTER_RUN_RESULT_H_

#include <cstdint>
#include <string>

#include "src/check/invariants.h"
#include "src/common/stats.h"
#include "src/common/strings.h"
#include "src/common/types.h"
#include "src/cluster/config.h"
#include "src/pil/boundary.h"
#include "src/pil/memo_store.h"
#include "src/sim/profiler.h"

namespace scalecheck {

struct RunResult {
  // Configuration echoes.
  RunMode mode = RunMode::kRealScale;
  int num_nodes = 0;
  int vnodes_per_node = 1;

  // ---- Figure 3 ---------------------------------------------------------
  int64_t flaps = 0;          // total alive->dead transitions cluster-wide
  int64_t flapped_pairs = 0;  // distinct (observer, subject) pairs
  // End-of-run liveness views, summed over running nodes: peers considered
  // alive vs unreachable (known, dead, not departed). A healed cluster ends
  // with unreachable_endpoints == 0; a nonzero value means somebody is still
  // islanded. Exported by both carriers.
  int64_t live_endpoints = 0;
  int64_t unreachable_endpoints = 0;

  // ---- Timing (Figure 1 / §8 table) --------------------------------------
  VirtualDuration test_duration;    // virtual time the run occupied
  VirtualDuration settle_time;      // when the workload transition completed
  bool settled = false;

  // ---- Colocation limits (§8) ---------------------------------------------
  double max_cpu_utilization = 0.0;
  int64_t peak_memory_bytes = 0;
  bool oom = false;
  int crashed_nodes = 0;
  VirtualDuration lateness_p99;
  VirtualDuration lateness_max;
  // Samples that arrived *before* their intended instant (clamped to zero in
  // the histogram; see LatenessTracker::early_count).
  int64_t lateness_early_count = 0;

  // ---- Fidelity guardrails --------------------------------------------------
  // Tri-state trustworthiness verdict with the violated budgets and their
  // first-violation virtual timestamps. Always serialized (deterministic).
  FidelityReport fidelity;
  // The host wall-clock watchdog stopped this run before the horizon; the
  // result below covers only the prefix that executed. The self-healing
  // suite executor treats such results as retry/quarantine candidates and
  // never serializes them.
  bool watchdog_fired = false;

  // ---- Invariant checking ----------------------------------------------------
  // Correctness verdict from the runtime invariant checker (src/check/):
  // violated invariants with first-violation virtual timestamps. Distinct
  // from fidelity: fidelity says "trust this run's numbers", invariants say
  // "the cluster broke". Always serialized (checked=false when the checker
  // was disabled).
  InvariantReport invariants;

  // ---- Replay drift ---------------------------------------------------------
  // Populated from PilBoundary::drift(); all-zero outside kPilReplay runs.
  struct ReplayDrift {
    uint64_t misses = 0;
    bool diverged = false;
    bool aborted = false;
    std::string first_function;  // registry name of the first diverging call
    std::string first_digest;    // input digest of that call, hex
    VirtualTime first_at;
    uint64_t first_call_index = 0;
    std::string order_context;
  };
  ReplayDrift replay_drift;

  // ---- Fault injection ------------------------------------------------------
  int restarted_nodes = 0;
  int64_t fault_events_applied = 0;
  int64_t fault_events_healed = 0;
  uint64_t messages_blocked = 0;  // dropped by partitions specifically

  // ---- Offending-function behaviour (§3's 0.001–4 s observation) ----------
  int64_t calc_invocations = 0;
  int64_t calc_executed_real = 0;  // real loop nest vs modelled cost
  RunningStat calc_duration_seconds;
  RunningStat calc_lock_hold_seconds;  // ring-lock hold times (C5456)

  // ---- PIL accuracy metrics ------------------------------------------------
  PilBoundary::Stats pil;
  MemoStore::Stats memo;
  uint64_t order_divergences = 0;
  uint64_t order_enforced = 0;

  // ---- Data-path user impact (when the KV load driver runs) -----------------
  // Conservation: kv_issued == kv_ok + kv_unavailable + kv_timeout +
  // kv_inflight_at_stop, and kv_gave_up == kv_unavailable + kv_timeout — no
  // client request is silently lost, with or without retries.
  int64_t kv_issued = 0;
  int64_t kv_ok = 0;
  int64_t kv_unavailable = 0;
  int64_t kv_timeout = 0;
  int64_t kv_inflight_at_stop = 0;
  int64_t kv_retries = 0;
  int64_t kv_gave_up = 0;
  // Client latency percentiles from the same LogHistogram on both carriers,
  // so a repair storm's foreground impact reads off one table.
  VirtualDuration kv_latency_p50;
  VirtualDuration kv_latency_p99;
  VirtualDuration kv_latency_p999;
  // Durable-path counters (all zero unless the WAL / data path is enabled):
  // bytes made durable by group-commit syncs, hinted-handoff queue activity,
  // read-repair writebacks, and per-consistency-level op counts.
  int64_t kv_wal_bytes = 0;
  int64_t kv_hints_queued = 0;
  int64_t kv_hints_replayed = 0;
  int64_t kv_hints_expired = 0;
  int64_t kv_read_repairs = 0;
  int64_t kv_ops_one = 0;
  int64_t kv_ops_quorum = 0;
  int64_t kv_ops_all = 0;
  // Anti-entropy repair counters (zero unless kv_repair is on), summed over
  // nodes on both carriers.
  int64_t kv_repair_sessions = 0;
  int64_t kv_repair_bytes_streamed = 0;
  int64_t kv_repair_keys_fixed = 0;
  int64_t kv_repair_aborted = 0;

  // ---- Traffic / engine ----------------------------------------------------
  uint64_t messages_sent = 0;
  uint64_t messages_delivered = 0;
  // Gossip-stage tasks shed for staleness cluster-wide — the overload
  // signature that accompanies (and amplifies) flap storms.
  uint64_t stage_tasks_dropped = 0;
  uint64_t events_executed = 0;

  // ---- Profiler snapshot (opt-in) ------------------------------------------
  // Present only when the run was given a SimProfiler. The counters are
  // deterministic operation counts (no host wall-clock), and the "profile"
  // JSON object is emitted only when has_profile is set — so default output
  // stays byte-identical to profiler-less builds.
  bool has_profile = false;
  SimProfiler::Counters profile;

  std::string Summary() const;

  // Stable machine-readable form. Contains only virtual-time / simulation
  // metrics (no host wall-clock), so for a fixed (spec, scale, mode, seed)
  // the JSON is byte-identical across runs and across host-parallel
  // executors — the ExperimentSuite determinism contract.
  std::string ToJson() const;
  // Appends the same fields to an in-progress writer (suite reports).
  void WriteJson(JsonWriter* writer) const;
};

}  // namespace scalecheck

#endif  // SCALECHECK_SRC_CLUSTER_RUN_RESULT_H_
