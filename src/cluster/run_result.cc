// RunResult rendering: the human Summary line and the stable JSON form.

#include "src/cluster/run_result.h"

#include "src/cluster/config.h"

namespace scalecheck {

namespace {

void WriteStat(JsonWriter* w, const std::string& key, const RunningStat& stat) {
  w->Key(key).BeginObject();
  w->Field("count", stat.count());
  w->Field("mean", stat.mean());
  w->Field("min", stat.min());
  w->Field("max", stat.max());
  w->Field("sum", stat.sum());
  w->EndObject();
}

}  // namespace

std::string RunResult::Summary() const {
  std::string guard_tag = FidelityVerdictName(fidelity.verdict);
  if (fidelity.verdict != FidelityVerdict::kOk) {
    guard_tag += ":" + fidelity.violated_budget;
  }
  if (invariants.checked && !invariants.ok()) {
    guard_tag += " INVARIANT:" + Join(invariants.ViolatedNames(), ",");
  }
  return StrFormat(
      "%s N=%d P=%d: flaps=%lld pairs=%lld dur=%s settle=%s%s util=%.1f%% mem=%s "
      "calcs=%lld (real=%lld, avg=%.3fs max=%.3fs) pil(hit=%llu miss=%llu) div=%llu "
      "shed=%llu guard=%s",
      RunModeName(mode), num_nodes, vnodes_per_node, static_cast<long long>(flaps),
      static_cast<long long>(flapped_pairs), test_duration.ToString().c_str(),
      settle_time.ToString().c_str(), settled ? "" : "(!)",
      max_cpu_utilization * 100.0, HumanBytes(peak_memory_bytes).c_str(),
      static_cast<long long>(calc_invocations),
      static_cast<long long>(calc_executed_real), calc_duration_seconds.mean(),
      calc_duration_seconds.max(), static_cast<unsigned long long>(pil.replay_hits),
      static_cast<unsigned long long>(pil.replay_misses),
      static_cast<unsigned long long>(order_divergences),
      static_cast<unsigned long long>(stage_tasks_dropped), guard_tag.c_str());
}

void RunResult::WriteJson(JsonWriter* w) const {
  w->BeginObject();
  w->Field("mode", RunModeName(mode));
  w->Field("num_nodes", num_nodes);
  w->Field("vnodes_per_node", vnodes_per_node);

  w->Field("flaps", flaps);
  w->Field("flapped_pairs", flapped_pairs);
  w->Field("live_endpoints", live_endpoints);
  w->Field("unreachable_endpoints", unreachable_endpoints);

  w->Field("test_duration_ns", test_duration.nanos());
  w->Field("settle_time_ns", settle_time.nanos());
  w->Field("settled", settled);

  w->Field("max_cpu_utilization", max_cpu_utilization);
  w->Field("peak_memory_bytes", peak_memory_bytes);
  w->Field("oom", oom);
  w->Field("crashed_nodes", crashed_nodes);
  w->Field("restarted_nodes", restarted_nodes);
  w->Field("fault_events_applied", fault_events_applied);
  w->Field("fault_events_healed", fault_events_healed);
  w->Field("messages_blocked", messages_blocked);
  w->Field("lateness_p99_ns", lateness_p99.nanos());
  w->Field("lateness_max_ns", lateness_max.nanos());
  w->Field("lateness_early_count", lateness_early_count);

  w->Key("fidelity");
  fidelity.WriteJson(w);
  w->Key("invariants");
  invariants.WriteJson(w);
  w->Field("watchdog_fired", watchdog_fired);

  w->Key("replay_drift").BeginObject();
  w->Field("misses", replay_drift.misses);
  w->Field("diverged", replay_drift.diverged);
  w->Field("aborted", replay_drift.aborted);
  w->Field("first_function", replay_drift.first_function);
  w->Field("first_digest", replay_drift.first_digest);
  w->Field("first_at_ns", replay_drift.first_at.nanos());
  w->Field("first_call_index", replay_drift.first_call_index);
  w->Field("order_context", replay_drift.order_context);
  w->EndObject();

  w->Field("calc_invocations", calc_invocations);
  w->Field("calc_executed_real", calc_executed_real);
  WriteStat(w, "calc_duration_seconds", calc_duration_seconds);
  WriteStat(w, "calc_lock_hold_seconds", calc_lock_hold_seconds);

  w->Key("pil").BeginObject();
  w->Field("direct_runs", pil.direct_runs);
  w->Field("memoized_runs", pil.memoized_runs);
  w->Field("replay_hits", pil.replay_hits);
  w->Field("replay_misses", pil.replay_misses);
  w->EndObject();

  w->Key("memo").BeginObject();
  w->Field("records", memo.records);
  w->Field("duplicate_puts", memo.duplicate_puts);
  w->Field("determinism_violations", memo.determinism_violations);
  w->Field("lookups", memo.lookups);
  w->Field("hits", memo.hits);
  w->Field("misses", memo.misses);
  w->EndObject();

  w->Field("order_divergences", order_divergences);
  w->Field("order_enforced", order_enforced);

  w->Field("kv_issued", kv_issued);
  w->Field("kv_ok", kv_ok);
  w->Field("kv_unavailable", kv_unavailable);
  w->Field("kv_timeout", kv_timeout);
  w->Field("kv_inflight_at_stop", kv_inflight_at_stop);
  w->Field("kv_retries", kv_retries);
  w->Field("kv_gave_up", kv_gave_up);
  w->Field("kv_latency_p50_ns", kv_latency_p50.nanos());
  w->Field("kv_latency_p99_ns", kv_latency_p99.nanos());
  w->Field("kv_latency_p999_ns", kv_latency_p999.nanos());
  w->Field("kv_wal_bytes", kv_wal_bytes);
  w->Field("kv_hints_queued", kv_hints_queued);
  w->Field("kv_hints_replayed", kv_hints_replayed);
  w->Field("kv_hints_expired", kv_hints_expired);
  w->Field("kv_read_repairs", kv_read_repairs);
  w->Field("kv_ops_one", kv_ops_one);
  w->Field("kv_ops_quorum", kv_ops_quorum);
  w->Field("kv_ops_all", kv_ops_all);
  w->Field("kv_repair_sessions", kv_repair_sessions);
  w->Field("kv_repair_bytes_streamed", kv_repair_bytes_streamed);
  w->Field("kv_repair_keys_fixed", kv_repair_keys_fixed);
  w->Field("kv_repair_aborted", kv_repair_aborted);

  w->Field("messages_sent", messages_sent);
  w->Field("messages_delivered", messages_delivered);
  w->Field("stage_tasks_dropped", stage_tasks_dropped);
  w->Field("events_executed", events_executed);
  if (has_profile) {
    w->Key("profile");
    profile.WriteJson(w);
  }
  w->EndObject();
}

std::string RunResult::ToJson() const {
  JsonWriter w;
  WriteJson(&w);
  return w.str();
}

}  // namespace scalecheck
