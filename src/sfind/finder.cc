#include "src/sfind/finder.h"

#include <algorithm>

#include "src/common/check.h"
#include "src/common/strings.h"

namespace scalecheck {

const char* ScaleClassName(ScaleClass c) {
  switch (c) {
    case ScaleClass::kOffendingSuperlinear:
      return "OFFENDING (superlinear)";
    case ScaleClass::kLinearScaleDependent:
      return "linear scale-dependent";
    case ScaleClass::kScaleIndependent:
      return "scale-independent";
  }
  return "?";
}

OffendingFunctionFinder::OffendingFunctionFinder(SfindOptions options)
    : options_(std::move(options)) {
  CHECK_GE(options_.scales.size(), 2u) << "need >= 2 scales to fit exponents";
}

void OffendingFunctionFinder::ProfileOne(WorkloadKind workload, int scale) {
  ClusterConfig config;
  config.initial_nodes = scale;
  config.vnodes_per_node = options_.vnodes_per_node;
  config.calc_version = options_.calc_version;
  config.calc_placement = options_.placement;
  config.run_mode = RunMode::kRealScale;
  config.seed = options_.seed + static_cast<uint64_t>(scale) * 131;
  // Profile runs must execute the real loop nests to count real ops.
  config.execute_threshold_ops = INT64_MAX;

  WorkloadSpec wl;
  wl.kind = workload;
  wl.target = scale / 2;
  wl.joining_nodes =
      workload == WorkloadKind::kScaleOut ? std::max(1, scale / 4) : 0;
  if (workload == WorkloadKind::kRebalance) {
    wl.joining_nodes = 1;
  }
  wl.horizon = VirtualDuration::Seconds(240);

  WorkProfile local;
  Cluster::Options opts;
  opts.config = config;
  opts.workload = wl;
  opts.profile_hook = [&local, scale](PilFunctionId fn, int64_t ops, size_t entries) {
    local.Record(fn, scale, ops);
  };
  Cluster cluster(std::move(opts));
  cluster.Run();

  // Translate per-cluster function ids into stable names.
  for (const auto& [fn, by_scale] : local.cells()) {
    const PilFunctionInfo* info = cluster.registry().Find(fn);
    CHECK_NOTNULL(info);
    infos_[info->name] = *info;
    if (fn == cluster.calc_function()) {
      op_cost_[info->name] = static_cast<double>(cluster.calculator()->op_cost());
    } else if (fn == cluster.bootstrap_function()) {
      op_cost_[info->name] = static_cast<double>(cluster.bootstrap_calc()->op_cost());
    } else if (op_cost_.find(info->name) == op_cost_.end()) {
      op_cost_[info->name] = 1.0;  // gossip-style hooks report work units
    }
    for (const auto& [s, cell] : by_scale) {
      WorkProfile::Cell& merged = cells_[info->name][s];
      merged.invocations += cell.invocations;
      merged.total_ops += cell.total_ops;
      merged.max_ops = std::max(merged.max_ops, cell.max_ops);
    }
    reached_by_[info->name].insert(WorkloadKindName(workload));
  }
}

std::vector<OffenderReport> OffendingFunctionFinder::Run() {
  for (WorkloadKind workload : options_.workloads) {
    for (int scale : options_.scales) {
      ProfileOne(workload, scale);
    }
  }

  std::vector<OffenderReport> reports;
  for (const auto& [name, by_scale] : cells_) {
    OffenderReport report;
    report.name = name;
    const PilFunctionInfo& info = infos_.at(name);
    report.claimed_complexity = info.complexity;
    report.effects = info.effects;
    report.pil_safe = info.IsPilSafe();

    std::vector<std::pair<double, double>> max_points;
    std::vector<std::pair<double, double>> total_points;
    for (const auto& [scale, cell] : by_scale) {
      max_points.emplace_back(static_cast<double>(scale),
                              static_cast<double>(cell.max_ops));
      total_points.emplace_back(static_cast<double>(scale),
                                static_cast<double>(cell.total_ops));
    }
    report.fit = FitPowerLaw(max_points);
    report.total_fit = FitPowerLaw(total_points);
    if (report.fit.IsSuperlinear()) {
      report.scale_class = ScaleClass::kOffendingSuperlinear;
    } else if (report.fit.IsLinearScaleDependent()) {
      report.scale_class = ScaleClass::kLinearScaleDependent;
    } else {
      report.scale_class = ScaleClass::kScaleIndependent;
    }
    for (const std::string& w : reached_by_.at(name)) {
      report.reached_by.push_back(w);
    }
    double cost = op_cost_.at(name);
    report.predicted_seconds_at_target =
        PredictOps(report.fit, static_cast<double>(options_.target_scale)) * cost /
        options_.core_speed;
    reports.push_back(std::move(report));
  }

  std::sort(reports.begin(), reports.end(),
            [](const OffenderReport& a, const OffenderReport& b) {
              return a.fit.exponent > b.fit.exponent;
            });
  return reports;
}

std::string OffendingFunctionFinder::RenderReport(
    const std::vector<OffenderReport>& reports, int target_scale) {
  std::vector<std::string> header = {"function",  "class",      "fitted",
                                     "claimed",   "PIL-safe",   "verdict",
                                     "reached by", StrFormat("t@N=%d", target_scale)};
  std::vector<std::vector<std::string>> rows;
  for (const OffenderReport& r : reports) {
    std::string effects;
    if (r.effects.network_messages) {
      effects = " (sends messages)";
    } else if (r.effects.nondeterministic) {
      effects = " (nondeterministic)";
    } else if (r.effects.disk_io) {
      effects = " (disk I/O)";
    } else if (r.effects.acquires_locks) {
      effects = " (locks)";
    }
    rows.push_back({
        r.name,
        ScaleClassName(r.scale_class),
        StrFormat("n^%.2f R2=%.2f", r.fit.exponent, r.fit.r_squared),
        r.claimed_complexity,
        std::string(r.pil_safe ? "yes" : "NO") + effects,
        r.TakeThePil() ? "TAKE THE PIL" : "-",
        Join(r.reached_by, ","),
        StrFormat("%.3fs", r.predicted_seconds_at_target),
    });
  }
  return RenderTable(header, rows);
}

}  // namespace scalecheck
