// Work profiles: per-function operation counts observed at each test scale.

#ifndef SCALECHECK_SRC_SFIND_PROFILE_H_
#define SCALECHECK_SRC_SFIND_PROFILE_H_

#include <cstdint>
#include <map>

#include "src/pil/function_registry.h"

namespace scalecheck {

class WorkProfile {
 public:
  struct Cell {
    int64_t invocations = 0;
    int64_t total_ops = 0;
    int64_t max_ops = 0;
  };

  void Record(PilFunctionId function, int scale, int64_t ops) {
    Cell& cell = cells_[function][scale];
    ++cell.invocations;
    cell.total_ops += ops;
    cell.max_ops = std::max(cell.max_ops, ops);
  }

  // function -> scale -> cell.
  const std::map<PilFunctionId, std::map<int, Cell>>& cells() const { return cells_; }

  const Cell* Find(PilFunctionId function, int scale) const {
    auto fn = cells_.find(function);
    if (fn == cells_.end()) {
      return nullptr;
    }
    auto sc = fn->second.find(scale);
    return sc == fn->second.end() ? nullptr : &sc->second;
  }

 private:
  std::map<PilFunctionId, std::map<int, Cell>> cells_;
};

}  // namespace scalecheck

#endif  // SCALECHECK_SRC_SFIND_PROFILE_H_
