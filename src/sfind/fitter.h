// Complexity fitting: log-log least squares over (scale, ops) observations.
//
// The finder profiles instrumented functions at several small scales and
// fits ops ≈ c * n^k. A function is *offending* when its fitted exponent is
// clearly superlinear — the paper's scale-dependent loops (§5). Linear fits
// flag the O(N) serialization class that the §4 footnote attributes the
// other 53% of scalability bugs to.

#ifndef SCALECHECK_SRC_SFIND_FITTER_H_
#define SCALECHECK_SRC_SFIND_FITTER_H_

#include <string>
#include <utility>
#include <vector>

namespace scalecheck {

struct ComplexityFit {
  double exponent = 0.0;     // k in ops ≈ c * n^k
  double coefficient = 0.0;  // c
  double r_squared = 0.0;
  int num_points = 0;

  // Classification thresholds.
  bool IsSuperlinear() const { return exponent >= 1.5; }
  bool IsLinearScaleDependent() const { return exponent >= 0.5 && exponent < 1.5; }
  bool IsScaleIndependent() const { return exponent < 0.5; }

  std::string Describe() const;  // e.g. "ops ~ 2.1 * n^2.97 (R^2=0.999)"
};

// Fits a power law through (scale, ops) points; requires >= 2 distinct
// scales with positive values. Points with non-positive coordinates are
// dropped.
ComplexityFit FitPowerLaw(const std::vector<std::pair<double, double>>& points);

// Predicted ops at scale n under the fit.
double PredictOps(const ComplexityFit& fit, double n);

}  // namespace scalecheck

#endif  // SCALECHECK_SRC_SFIND_FITTER_H_
