// The offending-function finder (Figure 2, steps a-b).
//
// The paper proposes a program analysis that, starting from @scaledep
// annotations on scale-dependent data structures, finds the loops that
// iterate them, reports the offending functions and the paths (workloads)
// that reach them, and checks PIL safety. This implementation realizes the
// same report dynamically (ScaleCheck FAST'19 "SFind" style): it runs the
// instrumented system at several small scales, fits per-function operation
// counts against cluster size, and classifies:
//
//   superlinear (k >= 1.5)  the offending functions — candidates for PIL
//   linear (0.5 <= k < 1.5) the O(N) serialization class (the other 53%)
//   flat (k < 0.5)          scale-independent
//
// Reachability matters (§5: the C6127 loop is only exercised when a cluster
// bootstraps from scratch), so each candidate workload is profiled
// separately and the report lists which workloads reach which function.

#ifndef SCALECHECK_SRC_SFIND_FINDER_H_
#define SCALECHECK_SRC_SFIND_FINDER_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "src/cluster/cluster.h"
#include "src/sfind/fitter.h"
#include "src/sfind/profile.h"

namespace scalecheck {

enum class ScaleClass : int {
  kOffendingSuperlinear = 0,
  kLinearScaleDependent = 1,
  kScaleIndependent = 2,
};

const char* ScaleClassName(ScaleClass c);

struct OffenderReport {
  std::string name;
  std::string claimed_complexity;
  SideEffects effects;
  bool pil_safe = false;
  ComplexityFit fit;          // max ops per invocation vs node count
  ComplexityFit total_fit;    // total ops per run vs node count
  ScaleClass scale_class = ScaleClass::kScaleIndependent;
  std::vector<std::string> reached_by;  // workload names that exercised it
  // Predicted single-invocation duration at a target scale (seconds on one
  // core) — the red-flag column.
  double predicted_seconds_at_target = 0.0;

  // The verdict: offending AND PIL-safe functions take the PIL (§5).
  bool TakeThePil() const {
    return scale_class == ScaleClass::kOffendingSuperlinear && pil_safe;
  }
};

struct SfindOptions {
  CalcVersion calc_version = CalcVersion::kV1PreC3831;
  CalcPlacement placement = CalcPlacement::kInlineGossipStage;
  int vnodes_per_node = 1;
  std::vector<int> scales = {8, 12, 16, 24};
  std::vector<WorkloadKind> workloads = {WorkloadKind::kDecommission,
                                         WorkloadKind::kScaleOut,
                                         WorkloadKind::kBootstrapFresh};
  // Scale at which to extrapolate the duration red flag.
  int target_scale = 256;
  double core_speed = 1e9;
  uint64_t seed = 0xf17d5eedULL;
};

class OffendingFunctionFinder {
 public:
  explicit OffendingFunctionFinder(SfindOptions options);

  // Runs every (workload, scale) profile and produces per-function reports,
  // most offending first.
  std::vector<OffenderReport> Run();

  static std::string RenderReport(const std::vector<OffenderReport>& reports,
                                  int target_scale);

 private:
  void ProfileOne(WorkloadKind workload, int scale);

  SfindOptions options_;
  // Keyed by function *name* (ids are per-cluster).
  std::map<std::string, std::map<int, WorkProfile::Cell>> cells_;
  std::map<std::string, std::set<std::string>> reached_by_;
  std::map<std::string, PilFunctionInfo> infos_;
  // Work-unit cost per op, captured per function for duration prediction.
  std::map<std::string, double> op_cost_;
};

}  // namespace scalecheck

#endif  // SCALECHECK_SRC_SFIND_FINDER_H_
