#include "src/sfind/fitter.h"

#include <cmath>

#include "src/common/strings.h"

namespace scalecheck {

ComplexityFit FitPowerLaw(const std::vector<std::pair<double, double>>& points) {
  ComplexityFit fit;
  std::vector<std::pair<double, double>> logs;
  for (const auto& [x, y] : points) {
    if (x > 0.0 && y > 0.0) {
      logs.emplace_back(std::log(x), std::log(y));
    }
  }
  fit.num_points = static_cast<int>(logs.size());
  if (logs.size() < 2) {
    return fit;
  }
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  for (const auto& [lx, ly] : logs) {
    sx += lx;
    sy += ly;
    sxx += lx * lx;
    sxy += lx * ly;
  }
  double n = static_cast<double>(logs.size());
  double denom = n * sxx - sx * sx;
  if (std::abs(denom) < 1e-12) {
    return fit;  // all scales identical: no slope information
  }
  double slope = (n * sxy - sx * sy) / denom;
  double intercept = (sy - slope * sx) / n;
  fit.exponent = slope;
  fit.coefficient = std::exp(intercept);

  // R^2 in log space.
  double mean_y = sy / n;
  double ss_tot = 0, ss_res = 0;
  for (const auto& [lx, ly] : logs) {
    double pred = intercept + slope * lx;
    ss_res += (ly - pred) * (ly - pred);
    ss_tot += (ly - mean_y) * (ly - mean_y);
  }
  fit.r_squared = ss_tot < 1e-12 ? 1.0 : 1.0 - ss_res / ss_tot;
  return fit;
}

double PredictOps(const ComplexityFit& fit, double n) {
  return fit.coefficient * std::pow(n, fit.exponent);
}

std::string ComplexityFit::Describe() const {
  return StrFormat("ops ~ %.3g * n^%.2f (R^2=%.3f, %d scales)", coefficient, exponent,
                   r_squared, num_points);
}

}  // namespace scalecheck
