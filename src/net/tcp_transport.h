// Real-socket half of the real carrier: Transport over localhost TCP.
//
// Every registered node gets its own listening socket on 127.0.0.1 (ephemeral
// port) with an accept thread; each accepted connection gets a reader thread
// that reassembles length-prefixed frames and hands decoded Messages to the
// destination node's handler. Senders cache one outbound connection per
// (from, to) pair — a single TCP stream per direction, which is what gives
// the per-pair FIFO ordering the protocol (and the conformance suite)
// relies on, exactly as the simulator's monotone delivery clamp does.
//
// Frames on the wire are `u32 length | codec frame` where the codec frame is
// src/net/wire.h's EncodeMessage output — the same codec SimTransport can
// round-trip payloads through. Malformed frames kill the connection (a codec
// or framing bug must be loud, not dropped).
//
// Failure semantics mirror NetworkModel: sending to a node that is not
// registered (never was, or unregistered = crashed) counts a drop and
// returns id 0. A send that fails to connect does the same. Messages read
// for an unregistered destination are dropped at delivery.

#ifndef SCALECHECK_SRC_NET_TCP_TRANSPORT_H_
#define SCALECHECK_SRC_NET_TCP_TRANSPORT_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/common/rng.h"
#include "src/transport/link_filter.h"
#include "src/transport/substrate.h"

namespace scalecheck {

class TcpTransport final : public Transport, public LinkFilterHost {
 public:
  TcpTransport();
  ~TcpTransport() override;
  TcpTransport(const TcpTransport&) = delete;
  TcpTransport& operator=(const TcpTransport&) = delete;

  // Opens a listener for `node` and starts accepting. The handler is invoked
  // on a reader thread; handlers must do their own locking (RealNode locks
  // its node mutex).
  void RegisterNode(NodeId node, Handler handler) override;
  // Closes the node's listener and connections; in-flight frames for it are
  // dropped. Models a process crash.
  void UnregisterNode(NodeId node) override;
  uint64_t Send(NodeId from, NodeId to, int type,
                std::shared_ptr<const Payload> payload) override;

  // Closes every socket and joins every thread. Idempotent; the destructor
  // calls it.
  void Shutdown();

  // LinkFilterHost: the filter is consulted at the top of Send, from
  // whatever thread is sending. `blocked` refuses the frame before any
  // dial/write; `extra_loss` drops probabilistically (local rng — the real
  // carrier is wall-clock nondeterministic anyway); `extra_latency` is NOT
  // modelled on TCP (no delay thread; documented sim-only).
  void SetLinkFilter(LinkFilterFn filter) override;
  // Shuts down established connections touching `node` so a partition kills
  // in-flight streams instead of letting them buffer through the fault.
  void SeverConnsTo(NodeId node) override;

  uint64_t messages_sent() const { return sent_.load(); }
  uint64_t messages_delivered() const { return delivered_.load(); }
  uint64_t messages_dropped() const { return dropped_.load(); }
  // Subset of messages_dropped: deterministic link-filter refusals (hard
  // partitions), mirroring NetworkModel::messages_blocked.
  uint64_t messages_blocked() const { return blocked_.load(); }
  uint64_t bytes_sent() const { return bytes_.load(); }

 private:
  struct Listener {
    int fd = -1;
    uint16_t port = 0;
    Handler handler;
    std::thread accept_thread;
    // Reader threads for accepted connections, joined at teardown.
    std::vector<std::thread> readers;
    std::vector<int> reader_fds;
  };

  // Cached outbound connection; `mu` serializes writers so frames from one
  // sender never interleave mid-frame.
  struct Conn {
    std::mutex mu;
    int fd = -1;
    // Frame-encode scratch, reused across sends on this connection (guarded
    // by mu, like the fd it feeds).
    std::string encode_buf;
  };

  void AcceptLoop(Listener* listener);
  void ReadLoop(NodeId to, int fd);
  // Returns a connected conn for (from, to), dialing if needed; null if the
  // destination is unknown or connect fails.
  std::shared_ptr<Conn> GetConn(NodeId from, NodeId to);
  void DropConnsTo(NodeId to);

  mutable std::mutex mu_;  // guards listeners_, conns_, shutdown_
  std::unordered_map<NodeId, std::unique_ptr<Listener>> listeners_;
  std::unordered_map<uint64_t, std::shared_ptr<Conn>> conns_;  // (from<<32|to)
  bool shutdown_ = false;

  std::atomic<uint64_t> next_id_{1};
  std::atomic<uint64_t> sent_{0};
  std::atomic<uint64_t> delivered_{0};
  std::atomic<uint64_t> dropped_{0};
  std::atomic<uint64_t> blocked_{0};
  std::atomic<uint64_t> bytes_{0};

  // Link-filter state; filter_mu_ also serializes the loss rng (loss draws
  // are rare — only while a degrade fault is active).
  std::mutex filter_mu_;
  LinkFilterFn link_filter_;
  Rng loss_rng_{0x10557e57ULL};
  // Per (from<<32|to, type) sequence numbers, as NetworkModel keeps.
  std::mutex seq_mu_;
  std::unordered_map<uint64_t, std::unordered_map<int, uint64_t>> pair_seq_;
};

}  // namespace scalecheck

#endif  // SCALECHECK_SRC_NET_TCP_TRANSPORT_H_
