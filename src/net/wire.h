// The shared wire codec: one framing + serialization format for every
// message the protocol layer sends, used verbatim by both carriers.
//
//   - TcpTransport encodes each Message into a frame body (this file) and
//     prefixes it with a 4-byte length on the socket.
//   - SimTransport can round-trip every payload through the same codec
//     (encode -> decode -> deliver the copy) to prove, inside the
//     deterministic simulator, that the bytes real sockets would carry
//     reconstruct payloads the protocol cannot distinguish.
//
// Format (all integers little-endian, fixed width):
//
//   header : u8 magic 0x5C | u8 version 2 | i32 type | i32 from | i32 to
//          | u64 pair_seq | u64 id
//   body   : per Message::type, see wire.cc. Since v2, gossip digest
//            sections (SYN digests, ACK requests) are delta + varint
//            encoded (src/gossip/digest_codec.h): ~3-6 bytes per endpoint
//            instead of 20, which is what keeps N=2048 SYN frames small.
//
// Decoding is strict: every read is bounds-checked, unknown message types
// and status/app-state discriminators are rejected, and trailing bytes after
// a well-formed body are an error. A decoder that silently tolerated
// malformed frames would turn a codec bug into a protocol-level heisenbug,
// which is exactly the class of failure this repo exists to surface.

#ifndef SCALECHECK_SRC_NET_WIRE_H_
#define SCALECHECK_SRC_NET_WIRE_H_

#include <string>
#include <string_view>

#include "src/common/result.h"
#include "src/transport/message.h"

namespace scalecheck {
namespace wire {

inline constexpr uint8_t kMagic = 0x5C;
inline constexpr uint8_t kVersion = 2;
// header = magic + version + type + from + to + pair_seq + id.
inline constexpr size_t kHeaderSize = 1 + 1 + 4 + 4 + 4 + 8 + 8;

// Serializes the message (header + typed payload body) into a frame body.
// The 4-byte socket length prefix is TcpTransport's concern, not the codec's.
// Requires msg.type to be one of the known gossip/KV types with a matching
// payload object; unknown types CHECK-fail (a send-side programming error,
// not a network condition).
std::string EncodeMessage(const Message& msg);

// Same, appending into *out (cleared first) so a send loop can reuse one
// buffer's capacity instead of allocating a fresh string per frame.
void EncodeMessageTo(const Message& msg, std::string* out);

// Parses a frame body produced by EncodeMessage. Returns kTruncated when the
// input ends mid-field, kCorruptData for bad magic/version/discriminators or
// trailing bytes.
Result<Message> DecodeMessage(std::string_view data);

}  // namespace wire
}  // namespace scalecheck

#endif  // SCALECHECK_SRC_NET_WIRE_H_
