#include "src/net/real_node.h"

#include <limits>
#include <utility>

#include "src/common/check.h"
#include "src/common/hash.h"
#include "src/common/logging.h"
#include "src/kv/anti_entropy.h"

namespace scalecheck {

RealNode::RealNode(NodeId id, const Options& options, Transport* transport,
                   Clock* clock, FlapCounter* flaps, std::mutex* flaps_mu)
    : id_(id),
      options_(options),
      transport_(transport),
      flaps_(flaps),
      flaps_mu_(flaps_mu),
      clock_(clock, &mu_),
      rng_(HashCombine(options.seed, static_cast<uint64_t>(id))),
      gossiper_(id, /*generation=*/1,
                Gossiper::Callbacks{
                    [this](NodeId ep, StatusKind o, StatusKind n) {
                      OnStatusChange(ep, o, n);
                    },
                    [this](NodeId ep) { OnHeartbeat(ep); },
                    [this](NodeId ep) { OnRestart(ep); },
                }),
      fd_(options.fd),
      calculator_(MakeCalculator(CalcVersion::kV3C3881Fix)) {
  CHECK_NOTNULL(transport);
  CHECK_NOTNULL(clock);
  unmonitored_.insert(id_);
  for (NodeId peer : options_.seed_contacts) {
    if (peer != id_) {
      seed_contacts_.push_back(peer);
    }
  }
  if (options_.enable_kv) {
    KvService::Deps deps;
    deps.clock = &clock_;
    deps.transport = transport_;
    deps.stage = &stage_;
    deps.ring = &ring_;
    deps.gossiper = &gossiper_;
    deps.self = id_;
    deps.replication_factor = options_.replication_factor;
    deps.timeout = options_.kv_timeout;
    deps.consistency = options_.kv_consistency;
    deps.wal_enabled = options_.kv_wal;
    deps.wal_sync_interval = options_.kv_wal_sync_interval;
    deps.retry_seed = HashCombine(options_.seed, 0x4b565254ULL);
    deps.repair_seed = HashCombine(options_.seed, 0x4b565252ULL);
    deps.repair_enabled = options_.kv_repair;
    deps.repair_interval = options_.kv_repair_interval;
    deps.repair_rate_bytes = options_.kv_repair_rate_bytes;
    deps.repair_max_sessions = options_.kv_repair_max_sessions;
    deps.repair_session_timeout = options_.kv_repair_session_timeout;
    deps.repair_max_retries = options_.kv_repair_max_retries;
    deps.repair_pressure_max_inflight =
        options_.kv_repair_pressure_max_inflight;
    deps.plant_repair_storm = options_.plant_repair_storm;
    deps.anti_entropy_seed = HashCombine(options_.seed, 0x4b565245ULL);
    kv_ = std::make_unique<KvService>(deps);
  }
}

RealNode::~RealNode() { Stop(); }

void RealNode::PrimeSettled(const std::map<NodeId, std::vector<Token>>& members) {
  std::lock_guard<std::mutex> lock(mu_);
  CHECK(!started_);
  auto self_it = members.find(id_);
  CHECK(self_it != members.end());
  my_tokens_ = self_it->second;

  VersionedValue status;
  status.status = StatusKind::kNormal;
  status.tokens = my_tokens_;
  gossiper_.SetLocalState(ApplicationStateKey::kStatus, status);

  for (const auto& [peer, tokens] : members) {
    ring_.AddNode(peer, tokens);
    if (peer == id_) {
      continue;
    }
    EndpointState state(/*generation=*/1);
    VersionedValue peer_status;
    peer_status.version = 1;
    peer_status.status = StatusKind::kNormal;
    peer_status.tokens = tokens;
    state.Set(ApplicationStateKey::kStatus, peer_status);
    gossiper_.AddKnownEndpoint(peer, state);
    fd_.Report(peer, clock_.Now());
  }
}

void RealNode::PrimeSeeds(const std::map<NodeId, std::vector<Token>>& seed_members) {
  std::lock_guard<std::mutex> lock(mu_);
  CHECK(!started_);
  if (my_tokens_.empty()) {
    my_tokens_ = GenerateTokens(id_, options_.vnodes_per_node, options_.seed);
  }
  VersionedValue status;
  status.status = StatusKind::kNormal;
  status.tokens = my_tokens_;
  gossiper_.SetLocalState(ApplicationStateKey::kStatus, status);
  ring_.AddNode(id_, my_tokens_);
  for (const auto& [peer, tokens] : seed_members) {
    if (peer == id_) {
      continue;
    }
    EndpointState state(/*generation=*/1);
    VersionedValue peer_status;
    peer_status.version = 1;
    peer_status.status = StatusKind::kNormal;
    peer_status.tokens = tokens;
    state.Set(ApplicationStateKey::kStatus, peer_status);
    gossiper_.AddKnownEndpoint(peer, state);
    if (!ring_.HasNode(peer)) {
      ring_.AddNode(peer, tokens);
    }
  }
}

void RealNode::Start() {
  transport_->RegisterNode(id_, [this](const Message& msg) { OnMessage(msg); });
  std::lock_guard<std::mutex> lock(mu_);
  CHECK(!started_);
  started_ = true;
  // Desynchronized start phase, as in the sim Node.
  VirtualDuration phase = VirtualDuration::Nanos(static_cast<int64_t>(
      rng_.UniformDouble() *
      static_cast<double>(options_.gossip_interval.nanos())));
  // The timer goes through clock_ (the serialized view), so GossipRound fires
  // holding mu_ — the same monitor every socket delivery enters.
  gossip_timer_ = std::make_unique<PeriodicClockTimer>(
      &clock_, options_.gossip_interval, [this] { GossipRound(); });
  gossip_timer_->Start(phase);
  if (kv_ != nullptr) {
    kv_->Start();  // arms the anti-entropy scheduler when repair is on
  }
}

void RealNode::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopped_) {
      return;
    }
    stopped_ = true;
    if (gossip_timer_ != nullptr) {
      gossip_timer_->Stop();
    }
    if (kv_ != nullptr) {
      kv_->Shutdown();  // cancels repair timers before the clock goes away
    }
  }
  // Unregister outside mu_: reader threads may be blocked on mu_ delivering
  // to us, and UnregisterNode joins them.
  transport_->UnregisterNode(id_);
}

void RealNode::KvWrite(uint64_t key, std::string value, KvService::DoneFn done) {
  std::lock_guard<std::mutex> lock(mu_);
  if (kv_ == nullptr) {
    done(KvOutcome::kUnavailable, "");
    return;
  }
  kv_->Write(key, std::move(value), std::move(done));
}

void RealNode::KvRead(uint64_t key, KvService::DoneFn done) {
  std::lock_guard<std::mutex> lock(mu_);
  if (kv_ == nullptr) {
    done(KvOutcome::kUnavailable, "");
    return;
  }
  kv_->Read(key, std::move(done));
}

bool RealNode::SeesConvergedCluster(int n) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (gossiper_.endpoints().size() != static_cast<size_t>(n) ||
      ring_.num_nodes() != static_cast<size_t>(n)) {
    return false;
  }
  for (const auto& [ep, state] : gossiper_.endpoints()) {
    if (state.Status() != StatusKind::kNormal) {
      return false;
    }
    if (ep != id_ && !gossiper_.IsAlive(ep)) {
      return false;
    }
  }
  return true;
}

size_t RealNode::known_endpoints() const {
  std::lock_guard<std::mutex> lock(mu_);
  return gossiper_.endpoints().size();
}

size_t RealNode::live_endpoints() const {
  std::lock_guard<std::mutex> lock(mu_);
  return gossiper_.LiveEndpointsView().size();
}

size_t RealNode::unreachable_endpoints() const {
  std::lock_guard<std::mutex> lock(mu_);
  return gossiper_.UnreachableEndpointsView().size();
}

const KvStats RealNode::KvStatsSnapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return kv_ == nullptr ? KvStats{} : kv_->stats();
}

int64_t RealNode::KvTimestampOf(uint64_t key) const {
  std::lock_guard<std::mutex> lock(mu_);
  return kv_ == nullptr ? 0 : kv_->storage().TimestampOf(key);
}

std::vector<NodeId> RealNode::KvNaturalEndpoints(uint64_t key) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (ring_.num_entries() == 0) {
    return {};
  }
  return ring_.NaturalEndpointsForKey(KvTokenForKey(key),
                                      options_.replication_factor);
}

void RealNode::OnMessage(const Message& msg) {
  std::lock_guard<std::mutex> lock(mu_);
  if (stopped_) {
    return;
  }
  switch (msg.type) {
    case kGossipSyn:
      HandleSyn(msg);
      break;
    case kGossipAck:
      HandleAck(msg);
      break;
    case kGossipAck2:
      HandleAck2(msg);
      break;
    case kKvWriteReq:
    case kKvWriteResp:
    case kKvReadReq:
    case kKvReadResp:
    case kKvRepairHashReq:
    case kKvRepairHashResp:
    case kKvRepairStreamWrite:
      if (kv_ != nullptr) {
        kv_->HandleMessage(msg);
      }
      break;
    default:
      SC_LOG(Warning) << "real node " << id_ << ": unknown message type "
                      << msg.type;
  }
}

void RealNode::GossipRound() {
  // Already under mu_ (timer callbacks come through clock_).
  if (stopped_) {
    return;
  }
  gossiper_.IncrementHeartbeat();
  const std::vector<NodeId>& live = gossiper_.LiveEndpointsView();
  if (!live.empty()) {
    SendSynTo(live[rng_.PickIndex(live.size())]);
  }
  // Gossip-to-unreachable escape hatch, same shape as the sim Node: a healed
  // partition only re-converges if somebody SYNs across the conviction
  // boundary (probability |unreachable|/(|live|+1)), and a fully islanded
  // node (empty live view) falls back to a seed contact unconditionally.
  NodeId unreachable = gossiper_.PickUnreachableSynTarget(&rng_);
  if (unreachable != kInvalidNode) {
    SendSynTo(unreachable);
  }
  if (live.empty() && !seed_contacts_.empty()) {
    SendSynTo(seed_contacts_[rng_.PickIndex(seed_contacts_.size())]);
  }
  // Failure sweep, as the sim Node's gossip task does each round.
  VirtualTime now = clock_.Now();
  for (NodeId ep : gossiper_.LiveEndpointsView()) {
    if (unmonitored_.count(ep) > 0) {
      continue;
    }
    if (fd_.Phi(ep, now) > fd_.config().threshold) {
      gossiper_.MarkDead(ep);
      std::lock_guard<std::mutex> flock(*flaps_mu_);
      flaps_->RecordDown(id_, ep, now);
    }
  }
}

void RealNode::SendSynTo(NodeId peer) {
  auto syn = std::make_shared<SynPayload>();
  gossiper_.CopySynDigests(&syn->digests);
  transport_->Send(id_, peer, kGossipSyn, std::move(syn));
}

void RealNode::HandleSyn(const Message& msg) {
  auto syn = std::static_pointer_cast<const SynPayload>(msg.payload);
  auto ack = std::make_shared<AckPayload>();
  gossiper_.HandleSyn(syn->digests, &ack->requests, &ack->states);
  transport_->Send(id_, msg.from, kGossipAck, std::move(ack));
}

void RealNode::HandleAck(const Message& msg) {
  auto ack = std::static_pointer_cast<const AckPayload>(msg.payload);
  gossiper_.ApplyStates(ack->states);
  if (!ack->requests.empty()) {
    auto ack2 = std::make_shared<Ack2Payload>();
    gossiper_.StatesForRequests(ack->requests, &ack2->states);
    if (!ack2->states.empty()) {
      transport_->Send(id_, msg.from, kGossipAck2, std::move(ack2));
    }
  }
  MaybeRecalc();
}

void RealNode::HandleAck2(const Message& msg) {
  auto ack2 = std::static_pointer_cast<const Ack2Payload>(msg.payload);
  gossiper_.ApplyStates(ack2->states);
  MaybeRecalc();
}

void RealNode::OnStatusChange(NodeId ep, StatusKind old_status,
                              StatusKind new_status) {
  (void)old_status;
  switch (new_status) {
    case StatusKind::kBootstrapping: {
      const EndpointState* state = gossiper_.StateOf(ep);
      CHECK_NOTNULL(state);
      pending_changes_.push_back(
          PendingChange{ep, ChangeKind::kJoining, state->Tokens()});
      ring_dirty_ = true;
      break;
    }
    case StatusKind::kNormal: {
      const EndpointState* state = gossiper_.StateOf(ep);
      CHECK_NOTNULL(state);
      if (!ring_.HasNode(ep)) {
        ring_.AddNode(ep, state->Tokens());
      }
      std::erase_if(pending_changes_,
                    [ep](const PendingChange& c) { return c.node == ep; });
      ring_dirty_ = true;
      break;
    }
    case StatusKind::kLeaving:
      pending_changes_.push_back(PendingChange{ep, ChangeKind::kLeaving, {}});
      ring_dirty_ = true;
      break;
    case StatusKind::kLeft:
    case StatusKind::kRemoved:
      if (ring_.HasNode(ep)) {
        ring_.RemoveNode(ep);
      }
      std::erase_if(pending_changes_,
                    [ep](const PendingChange& c) { return c.node == ep; });
      unmonitored_.insert(ep);
      fd_.Forget(ep);
      gossiper_.MarkDead(ep);
      ring_dirty_ = true;
      break;
    case StatusKind::kUnknown:
      break;
  }
}

void RealNode::OnHeartbeat(NodeId ep) {
  if (unmonitored_.count(ep) > 0) {
    return;
  }
  fd_.Report(ep, clock_.Now());
  if (!gossiper_.IsAlive(ep)) {
    gossiper_.MarkAlive(ep);
    {
      std::lock_guard<std::mutex> flock(*flaps_mu_);
      flaps_->RecordUp(id_, ep, clock_.Now());
    }
    if (kv_ != nullptr) {
      kv_->OnReplicaAlive(ep);
    }
  }
}

void RealNode::OnRestart(NodeId ep) {
  if (!gossiper_.IsAlive(ep)) {
    gossiper_.MarkAlive(ep);
    {
      std::lock_guard<std::mutex> flock(*flaps_mu_);
      flaps_->RecordUp(id_, ep, clock_.Now());
    }
    if (kv_ != nullptr) {
      kv_->OnReplicaAlive(ep);
    }
  }
}

void RealNode::MaybeRecalc() {
  if (!ring_dirty_) {
    return;
  }
  ring_dirty_ = false;
  if (pending_changes_.empty()) {
    pending_ranges_ = PendingRanges();
    return;
  }
  // Real mode computes synchronously: the calculation is real CPU on this
  // thread, which is the point — no modelled cost, just cost.
  CalcInput input;
  input.ring = &ring_;
  input.changes = pending_changes_;
  input.rf = options_.replication_factor;
  PendingRangeCalculator::RunOutcome outcome = calculator_->Run(
      input,
      /*execute_threshold_ops=*/std::numeric_limits<int64_t>::max());
  pending_ranges_ = std::move(outcome.pending);
}

}  // namespace scalecheck
