#include "src/net/tcp_transport.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <string>

#include "src/common/logging.h"
#include "src/net/wire.h"

namespace scalecheck {
namespace {

// Larger than any gossip/KV frame this harness produces; a length beyond it
// means framing desync, and the connection dies rather than allocating it.
constexpr uint32_t kMaxFrameBytes = 64u << 20;

uint64_t PairKey(NodeId from, NodeId to) {
  return (static_cast<uint64_t>(static_cast<uint32_t>(from)) << 32) |
         static_cast<uint32_t>(to);
}

bool WriteAll(int fd, const char* data, size_t len) {
  while (len > 0) {
    ssize_t n = send(fd, data, len, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      return false;
    }
    data += n;
    len -= static_cast<size_t>(n);
  }
  return true;
}

bool ReadAll(int fd, char* data, size_t len) {
  while (len > 0) {
    ssize_t n = recv(fd, data, len, 0);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) {
        continue;
      }
      return false;  // EOF or error
    }
    data += n;
    len -= static_cast<size_t>(n);
  }
  return true;
}

// Wakes any thread blocked in accept/recv on fd. The fd itself is closed by
// its OWNING thread only (the reader closes its connection fd when its loop
// exits; listener fds are closed after the accept thread is joined) — closing
// an fd another thread is concurrently using is a genuine race: the kernel
// may reuse the number, silently redirecting the blocked syscall.
void WakeFd(int fd) {
  if (fd >= 0) {
    ::shutdown(fd, SHUT_RDWR);
  }
}

}  // namespace

TcpTransport::TcpTransport() = default;

TcpTransport::~TcpTransport() { Shutdown(); }

void TcpTransport::RegisterNode(NodeId node, Handler handler) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    SC_LOG(Error) << "tcp: socket() failed: " << std::strerror(errno);
    return;
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;  // ephemeral
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(fd, 128) != 0) {
    SC_LOG(Error) << "tcp: bind/listen failed: " << std::strerror(errno);
    ::close(fd);
    return;
  }
  socklen_t len = sizeof(addr);
  ::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len);

  auto listener = std::make_unique<Listener>();
  listener->fd = fd;
  listener->port = ntohs(addr.sin_port);
  listener->handler = std::move(handler);
  Listener* raw = listener.get();

  std::lock_guard<std::mutex> lock(mu_);
  if (shutdown_) {
    ::close(fd);
    return;
  }
  // Re-registration (restart) replaces the old listener; callers unregister
  // first, so this is just belt-and-braces.
  listeners_[node] = std::move(listener);
  raw->accept_thread = std::thread([this, raw] { AcceptLoop(raw); });
}

void TcpTransport::AcceptLoop(Listener* listener) {
  for (;;) {
    int conn_fd = ::accept(listener->fd, nullptr, nullptr);
    if (conn_fd < 0) {
      if (errno == EINTR) {
        continue;
      }
      return;  // listener closed
    }
    int one = 1;
    ::setsockopt(conn_fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    // Identify the destination by which listener accepted, not by peeking
    // at frames: every frame on this connection is for this node.
    NodeId to = kInvalidNode;
    {
      std::lock_guard<std::mutex> lock(mu_);
      for (const auto& [node, l] : listeners_) {
        if (l.get() == listener) {
          to = node;
          break;
        }
      }
      if (to == kInvalidNode || shutdown_) {
        ::close(conn_fd);
        continue;
      }
      listener->reader_fds.push_back(conn_fd);
      listener->readers.emplace_back(
          [this, to, conn_fd] { ReadLoop(to, conn_fd); });
    }
  }
}

void TcpTransport::ReadLoop(NodeId to, int fd) {
  // This thread owns fd: nobody else closes it (WakeFd only shuts it down to
  // break the recv below), and the loop closes it on every exit path.
  std::string body;
  for (;;) {
    uint32_t frame_len = 0;
    if (!ReadAll(fd, reinterpret_cast<char*>(&frame_len), 4)) {
      break;
    }
    if (frame_len == 0 || frame_len > kMaxFrameBytes) {
      SC_LOG(Error) << "tcp: bad frame length " << frame_len << " for node "
                    << to << "; closing connection";
      break;
    }
    body.resize(frame_len);
    if (!ReadAll(fd, body.data(), frame_len)) {
      break;
    }
    Result<Message> msg = wire::DecodeMessage(body);
    if (!msg.ok()) {
      SC_LOG(Error) << "tcp: undecodable frame for node " << to << ": "
                    << msg.status().ToString() << "; closing connection";
      break;
    }
    Handler handler;
    {
      std::lock_guard<std::mutex> lock(mu_);
      auto it = listeners_.find(to);
      if (it != listeners_.end()) {
        handler = it->second->handler;
      }
    }
    if (!handler) {
      dropped_.fetch_add(1);
      continue;  // destination unregistered while the frame was in flight
    }
    handler(msg.value());
    delivered_.fetch_add(1);
  }
  ::close(fd);
}

std::shared_ptr<TcpTransport::Conn> TcpTransport::GetConn(NodeId from, NodeId to) {
  uint64_t key = PairKey(from, to);
  uint16_t port = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutdown_) {
      return nullptr;
    }
    auto it = conns_.find(key);
    if (it != conns_.end()) {
      std::lock_guard<std::mutex> wlock(it->second->mu);
      if (it->second->fd >= 0) {
        return it->second;
      }
    }
    auto lit = listeners_.find(to);
    if (lit == listeners_.end()) {
      return nullptr;  // destination not listening (crashed / never started)
    }
    port = lit->second->port;
  }

  // Dial outside mu_ (connect can block); racing dialers for the same pair
  // are resolved below — first insert wins, the loser closes its socket.
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return nullptr;
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return nullptr;
  }
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

  auto conn = std::make_shared<Conn>();
  conn->fd = fd;
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = conns_.emplace(key, conn);
  if (!inserted) {
    {
      std::lock_guard<std::mutex> wlock(it->second->mu);
      if (it->second->fd >= 0) {
        ::close(fd);  // lost the race; use the established conn
        return it->second;
      }
    }
    it->second = conn;  // cached conn was dead; replace it
  }
  return conn;
}

void TcpTransport::SetLinkFilter(LinkFilterFn filter) {
  std::lock_guard<std::mutex> lock(filter_mu_);
  link_filter_ = std::move(filter);
}

void TcpTransport::SeverConnsTo(NodeId node) {
  std::lock_guard<std::mutex> lock(mu_);
  DropConnsTo(node);
}

uint64_t TcpTransport::Send(NodeId from, NodeId to, int type,
                            std::shared_ptr<const Payload> payload) {
  sent_.fetch_add(1);
  {
    std::lock_guard<std::mutex> lock(filter_mu_);
    if (link_filter_) {
      LinkFault fault = link_filter_(from, to);
      if (fault.blocked) {
        // Hard partition: refuse before dialing — a blocked pair must not
        // even establish a connection.
        dropped_.fetch_add(1);
        blocked_.fetch_add(1);
        return 0;
      }
      if (fault.extra_loss > 0.0 && loss_rng_.Bernoulli(fault.extra_loss)) {
        dropped_.fetch_add(1);
        return 0;
      }
      // extra_latency is sim-only; the TCP carrier delivers at wire speed.
    }
  }
  Message msg;
  msg.from = from;
  msg.to = to;
  msg.type = type;
  msg.payload = std::move(payload);
  msg.id = next_id_.fetch_add(1);
  {
    std::lock_guard<std::mutex> lock(seq_mu_);
    msg.pair_seq = ++pair_seq_[PairKey(from, to)][type];
  }

  std::shared_ptr<Conn> conn = GetConn(from, to);
  if (conn == nullptr) {
    dropped_.fetch_add(1);
    return 0;
  }
  std::lock_guard<std::mutex> wlock(conn->mu);
  wire::EncodeMessageTo(msg, &conn->encode_buf);
  const std::string& frame = conn->encode_buf;
  uint32_t frame_len = static_cast<uint32_t>(frame.size());
  if (conn->fd < 0 ||
      !WriteAll(conn->fd, reinterpret_cast<const char*>(&frame_len), 4) ||
      !WriteAll(conn->fd, frame.data(), frame.size())) {
    if (conn->fd >= 0) {
      ::close(conn->fd);
      conn->fd = -1;  // next Send to this pair redials
    }
    dropped_.fetch_add(1);
    return 0;
  }
  bytes_.fetch_add(4 + frame.size());
  return msg.id;
}

void TcpTransport::DropConnsTo(NodeId to) {
  // Caller holds mu_. Shut the sockets down so blocked writers/readers wake;
  // fds are closed by the owning side's cleanup (writer marks fd dead on the
  // next failed Send).
  for (auto& [key, conn] : conns_) {
    if (static_cast<NodeId>(key & 0xffffffff) == to ||
        static_cast<NodeId>(key >> 32) == to) {
      std::lock_guard<std::mutex> wlock(conn->mu);
      if (conn->fd >= 0) {
        ::shutdown(conn->fd, SHUT_RDWR);
      }
    }
  }
}

void TcpTransport::UnregisterNode(NodeId node) {
  std::unique_ptr<Listener> listener;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = listeners_.find(node);
    if (it == listeners_.end()) {
      return;
    }
    listener = std::move(it->second);
    listeners_.erase(it);
    DropConnsTo(node);
  }
  WakeFd(listener->fd);  // unblocks accept
  if (listener->accept_thread.joinable()) {
    listener->accept_thread.join();
  }
  ::close(listener->fd);
  std::vector<std::thread> readers;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (int fd : listener->reader_fds) {
      WakeFd(fd);  // readers close their own fds as their loops exit
    }
    readers = std::move(listener->readers);
  }
  for (std::thread& t : readers) {
    if (t.joinable()) {
      t.join();
    }
  }
}

void TcpTransport::Shutdown() {
  std::vector<std::unique_ptr<Listener>> listeners;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutdown_) {
      return;
    }
    shutdown_ = true;
    for (auto& [node, listener] : listeners_) {
      listeners.push_back(std::move(listener));
    }
    listeners_.clear();
    for (auto& [key, conn] : conns_) {
      std::lock_guard<std::mutex> wlock(conn->mu);
      if (conn->fd >= 0) {
        ::shutdown(conn->fd, SHUT_RDWR);
        ::close(conn->fd);
        conn->fd = -1;
      }
    }
    conns_.clear();
  }
  for (auto& listener : listeners) {
    WakeFd(listener->fd);
    if (listener->accept_thread.joinable()) {
      listener->accept_thread.join();
    }
    ::close(listener->fd);
  }
  // Accept threads are dead, so reader bookkeeping is stable without mu_.
  for (auto& listener : listeners) {
    for (int fd : listener->reader_fds) {
      WakeFd(fd);  // readers close their own fds as their loops exit
    }
    for (std::thread& t : listener->readers) {
      if (t.joinable()) {
        t.join();
      }
    }
  }
}

}  // namespace scalecheck
