#include "src/net/real_clock.h"

#include <vector>

namespace scalecheck {

RealClock::RealClock()
    : epoch_(std::chrono::steady_clock::now()),
      timer_thread_([this] { TimerLoop(); }) {}

RealClock::~RealClock() { Shutdown(); }

VirtualTime RealClock::Now() const {
  auto elapsed = std::chrono::steady_clock::now() - epoch_;
  return VirtualTime::FromNanos(
      std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed).count());
}

TimerId RealClock::ScheduleAfter(VirtualDuration delay, EventFn fn) {
  if (delay.IsNegative()) {
    delay = VirtualDuration::Zero();
  }
  std::lock_guard<std::mutex> lock(mu_);
  TimerId id = next_id_++;
  pending_[id] = Pending{std::chrono::steady_clock::now() +
                             std::chrono::nanoseconds(delay.nanos()),
                         std::move(fn)};
  cv_.notify_one();
  return id;
}

bool RealClock::CancelTimer(TimerId id) {
  std::lock_guard<std::mutex> lock(mu_);
  return pending_.erase(id) > 0;
}

void RealClock::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutdown_) {
      return;
    }
    shutdown_ = true;
    pending_.clear();
    cv_.notify_one();
  }
  if (timer_thread_.joinable()) {
    timer_thread_.join();
  }
}

void RealClock::TimerLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (!shutdown_) {
    if (pending_.empty()) {
      cv_.wait(lock);
      continue;
    }
    auto due = pending_.end();
    auto earliest = std::chrono::steady_clock::time_point::max();
    for (auto it = pending_.begin(); it != pending_.end(); ++it) {
      if (it->second.deadline < earliest) {
        earliest = it->second.deadline;
        due = it;
      }
    }
    if (std::chrono::steady_clock::now() < earliest) {
      cv_.wait_until(lock, earliest);
      continue;  // re-scan: new timers or cancellations may have raced in
    }
    EventFn fn = std::move(due->second.fn);
    pending_.erase(due);
    // Invoke with the clock unlocked: the callback takes the node mutex
    // (SerializedClock) and may schedule or cancel timers re-entrantly.
    lock.unlock();
    fn();
    lock.lock();
  }
}

}  // namespace scalecheck
