// Boots N RealNodes in one process on localhost TCP and runs them to gossip
// convergence — the real-mode counterpart of src/cluster/cluster.cc's
// simulated deployment, exporting the same RunResult so real and modelled
// runs land in the same tables.
//
// What "converged" means here: every node's view reports all N members
// NORMAL and alive with a fully populated ring (RealNode::
// SeesConvergedCluster). Nodes start knowing only the seed subset, so
// convergence genuinely exercises SYN/ACK/ACK2 dissemination over sockets.

#ifndef SCALECHECK_SRC_NET_REAL_CLUSTER_H_
#define SCALECHECK_SRC_NET_REAL_CLUSTER_H_

#include <memory>
#include <mutex>
#include <vector>

#include "src/cluster/run_result.h"
#include "src/gossip/flap_counter.h"
#include "src/net/real_clock.h"
#include "src/net/real_node.h"
#include "src/net/tcp_transport.h"

namespace scalecheck {

class RealCluster {
 public:
  struct Options {
    int num_nodes = 8;
    int seeds = 3;  // first `seeds` nodes are known to everyone at boot
    RealNode::Options node;
    // Give up if the cluster has not converged after this much wall clock.
    VirtualDuration convergence_timeout = VirtualDuration::Seconds(30);
    // When node.enable_kv: issue this many quorum writes+reads after
    // convergence, round-robin across coordinators.
    int kv_ops = 0;
  };

  explicit RealCluster(const Options& options);
  ~RealCluster();
  RealCluster(const RealCluster&) = delete;
  RealCluster& operator=(const RealCluster&) = delete;

  // Boots the nodes, waits for convergence (or timeout), runs the optional
  // KV smoke, stops everything, and returns the collected result.
  // result.settled reports whether convergence was reached; settle_time is
  // the wall-clock time it took (as virtual-from-epoch nanos).
  RunResult Run();

 private:
  bool AllConverged() const;

  Options options_;
  RealClock clock_;
  TcpTransport transport_;
  FlapCounter flaps_;
  std::mutex flaps_mu_;
  std::vector<std::unique_ptr<RealNode>> nodes_;
};

}  // namespace scalecheck

#endif  // SCALECHECK_SRC_NET_REAL_CLUSTER_H_
