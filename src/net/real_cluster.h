// Boots N RealNodes in one process on localhost TCP and runs them to gossip
// convergence — the real-mode counterpart of src/cluster/cluster.cc's
// simulated deployment, exporting the same RunResult so real and modelled
// runs land in the same tables.
//
// What "converged" means here: every node's view reports all N members
// NORMAL and alive with a fully populated ring (RealNode::
// SeesConvergedCluster). Nodes start knowing only the seed subset, so
// convergence genuinely exercises SYN/ACK/ACK2 dissemination over sockets.

#ifndef SCALECHECK_SRC_NET_REAL_CLUSTER_H_
#define SCALECHECK_SRC_NET_REAL_CLUSTER_H_

#include <memory>
#include <mutex>
#include <vector>

#include "src/cluster/run_result.h"
#include "src/common/interner.h"
#include "src/faults/fault_plan.h"
#include "src/gossip/flap_counter.h"
#include "src/net/real_clock.h"
#include "src/net/real_node.h"
#include "src/net/tcp_transport.h"

namespace scalecheck {

class RealCluster {
 public:
  struct Options {
    int num_nodes = 8;
    int seeds = 3;  // first `seeds` nodes are known to everyone at boot
    RealNode::Options node;
    // Give up if the cluster has not converged after this much wall clock.
    VirtualDuration convergence_timeout = VirtualDuration::Seconds(30);
    // When node.enable_kv: issue this many quorum writes+reads after
    // convergence, round-robin across coordinators.
    int kv_ops = 0;
    // Fault schedule replayed against the real sockets after initial
    // convergence. FaultPlan times are authored against the simulator's 1s
    // gossip round; this carrier rescales them by node.gossip_interval so a
    // "32 second partition" means the same ~32 protocol rounds on both
    // carriers. Only link-level kinds (partition, link-degrade) apply here —
    // others are skipped with a warning (no process/machine model).
    FaultPlan faults;
    // partition-heals bound: after the scaled plan's last heal, the cluster
    // must reconverge within this many gossip rounds or the run reports a
    // partition-heals invariant violation (exit code 4 via the CLI).
    int partition_heal_rounds = 35;
  };

  explicit RealCluster(const Options& options);
  ~RealCluster();
  RealCluster(const RealCluster&) = delete;
  RealCluster& operator=(const RealCluster&) = delete;

  // Boots the nodes, waits for convergence (or timeout), runs the optional
  // KV smoke, stops everything, and returns the collected result.
  // result.settled reports whether convergence was reached; settle_time is
  // the wall-clock time it took (as virtual-from-epoch nanos).
  RunResult Run();

 private:
  bool AllConverged() const;

  Options options_;
  EndpointInterner interner_;
  RealClock clock_;
  TcpTransport transport_;
  FlapCounter flaps_;
  std::mutex flaps_mu_;
  std::vector<std::unique_ptr<RealNode>> nodes_;
};

}  // namespace scalecheck

#endif  // SCALECHECK_SRC_NET_REAL_CLUSTER_H_
