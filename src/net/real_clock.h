// Wall-clock half of the real carrier: Clock implemented over
// std::chrono::steady_clock plus a dedicated timer thread.
//
// VirtualTime in real mode is "nanoseconds since this RealClock was
// constructed" — the protocol code only ever subtracts instants and adds
// durations, so rebasing to a per-run epoch keeps the int64 range and makes
// logs/JSON line up with the simulator's from-zero timelines.
//
// Timer callbacks run on the clock's single timer thread, in deadline order.
// Protocol state machines (Gossiper, TokenRing, KvService) are written
// single-threaded; RealNode gives each node one mutex and wraps its Clock in
// SerializedClock so every timer callback — like every socket delivery —
// enters the node's monitor first. That is the real-mode analogue of the
// simulator's one-event-at-a-time guarantee.

#ifndef SCALECHECK_SRC_NET_REAL_CLOCK_H_
#define SCALECHECK_SRC_NET_REAL_CLOCK_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <mutex>
#include <thread>
#include <utility>

#include "src/transport/substrate.h"

namespace scalecheck {

class RealClock final : public Clock {
 public:
  RealClock();
  ~RealClock() override;
  RealClock(const RealClock&) = delete;
  RealClock& operator=(const RealClock&) = delete;

  VirtualTime Now() const override;
  TimerId ScheduleAfter(VirtualDuration delay, EventFn fn) override;
  // Best-effort: returns false if the timer already fired or is firing.
  bool CancelTimer(TimerId id) override;

  // Stops the timer thread; pending timers never fire. Called by the
  // destructor; safe to call early (RealCluster stops clocks before tearing
  // down the nodes the callbacks point into).
  void Shutdown();

 private:
  struct Pending {
    std::chrono::steady_clock::time_point deadline;
    EventFn fn;
  };

  void TimerLoop();

  const std::chrono::steady_clock::time_point epoch_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  // Ordered by id; the loop scans for the earliest deadline. Timer counts
  // here are tiny (a handful per node), so a scan beats heap bookkeeping.
  std::map<TimerId, Pending> pending_;
  TimerId next_id_ = 1;
  bool shutdown_ = false;
  std::thread timer_thread_;
};

// Decorator that routes every timer callback through a node's mutex. Now()
// and cancellation pass through; ScheduleAfter wraps the callback so it
// locks `mu` before touching node state.
class SerializedClock final : public Clock {
 public:
  SerializedClock(Clock* base, std::mutex* mu) : base_(base), mu_(mu) {}

  VirtualTime Now() const override { return base_->Now(); }
  TimerId ScheduleAfter(VirtualDuration delay, EventFn fn) override {
    return base_->ScheduleAfter(
        delay, [mu = mu_, fn = std::move(fn)]() mutable {
          std::lock_guard<std::mutex> lock(*mu);
          fn();
        });
  }
  bool CancelTimer(TimerId id) override { return base_->CancelTimer(id); }

 private:
  Clock* base_;
  std::mutex* mu_;
};

// Real-mode Stage: storage work is real work — just do it, then deliver the
// completion. Caller already holds the node's mutex (Submit happens inside
// message handling), so op/done run under the same serialization as in the
// simulator, where stage jobs of one node never interleave.
class RealStage final : public Stage {
 public:
  void Submit(const char* label, std::function<WorkUnits()> op,
              std::function<void()> done) override {
    (void)label;
    op();
    done();
  }
};

}  // namespace scalecheck

#endif  // SCALECHECK_SRC_NET_REAL_CLOCK_H_
