#include "src/net/wire.h"

#include <cstring>
#include <memory>
#include <utility>

#include "src/common/check.h"
#include "src/gossip/digest_codec.h"
#include "src/gossip/messages.h"
#include "src/kv/anti_entropy.h"
#include "src/kv/kv_service.h"

namespace scalecheck {
namespace wire {
namespace {

// ---------------------------------------------------------------------------
// Primitive little-endian writer / bounds-checked reader.

// Writes into a caller-owned buffer so send loops can recycle capacity
// across frames instead of allocating per message.
class Writer {
 public:
  explicit Writer(std::string* out) : out_(out) {}

  void Reserve(size_t n) { out_->reserve(out_->size() + n); }
  void U8(uint8_t v) { out_->push_back(static_cast<char>(v)); }
  void U32(uint32_t v) { Raw(&v, 4); }
  void U64(uint64_t v) { Raw(&v, 8); }
  void I32(int32_t v) { Raw(&v, 4); }
  void I64(int64_t v) { Raw(&v, 8); }
  void F64(double v) {
    uint64_t bits;
    std::memcpy(&bits, &v, 8);
    U64(bits);
  }
  void Bytes(std::string_view v) {
    U32(static_cast<uint32_t>(v.size()));
    out_->append(v.data(), v.size());
  }

  // Raw buffer access for section codecs (delta-varint digests).
  std::string* buffer() { return out_; }

 private:
  void Raw(const void* p, size_t n) {
    // Little-endian layout is the wire format; every supported target is
    // little-endian, asserted once at decode via the magic byte position.
    out_->append(reinterpret_cast<const char*>(p), n);
  }

  std::string* out_;
};

class Reader {
 public:
  explicit Reader(std::string_view data) : data_(data) {}

  bool U8(uint8_t* v) { return Raw(v, 1); }
  bool U32(uint32_t* v) { return Raw(v, 4); }
  bool U64(uint64_t* v) { return Raw(v, 8); }
  bool I32(int32_t* v) { return Raw(v, 4); }
  bool I64(int64_t* v) { return Raw(v, 8); }
  bool F64(double* v) {
    uint64_t bits;
    if (!U64(&bits)) return false;
    std::memcpy(v, &bits, 8);
    return true;
  }
  bool Bytes(std::string* v) {
    uint32_t n;
    if (!U32(&n) || n > Remaining()) return false;
    v->assign(data_.data() + pos_, n);
    pos_ += n;
    return true;
  }
  // Rejects element counts that could not possibly fit in the remaining
  // bytes, so a corrupt count cannot drive a huge allocation or a long loop.
  bool Count(uint32_t* n, size_t min_element_size) {
    return U32(n) && static_cast<size_t>(*n) * min_element_size <= Remaining();
  }

  // Delta-varint digest section (its own internal count guard).
  bool Digests(std::vector<GossipDigest>* out) {
    return digest_codec::Decode(data_, &pos_, out);
  }

  size_t Remaining() const { return data_.size() - pos_; }

 private:
  bool Raw(void* p, size_t n) {
    if (Remaining() < n) return false;
    std::memcpy(p, data_.data() + pos_, n);
    pos_ += n;
    return true;
  }

  std::string_view data_;
  size_t pos_ = 0;
};

// ---------------------------------------------------------------------------
// Gossip state encoding.

void EncodeDigests(Writer* w, const std::vector<GossipDigest>& digests) {
  digest_codec::Encode(digests, w->buffer());
}

bool DecodeDigests(Reader* r, std::vector<GossipDigest>* digests) {
  return r->Digests(digests);
}

void EncodeEndpointState(Writer* w, const EndpointState& state) {
  w->I64(state.heartbeat().generation);
  w->I64(state.heartbeat().version);
  w->U32(static_cast<uint32_t>(state.app_states().size()));
  for (const auto& [key, value] : state.app_states()) {
    w->I32(static_cast<int32_t>(key));
    w->I64(value.version);
    w->I32(static_cast<int32_t>(value.status));
    w->F64(value.load);
    w->U32(static_cast<uint32_t>(value.tokens.size()));
    for (Token t : value.tokens) w->U64(t);
  }
}

bool DecodeEndpointState(Reader* r, EndpointState* state) {
  int64_t generation, hb_version;
  uint32_t n_app;
  if (!r->I64(&generation) || !r->I64(&hb_version) ||
      !r->Count(&n_app, /*min_element_size=*/24)) {
    return false;
  }
  *state = EndpointState(generation);
  state->mutable_heartbeat().version = hb_version;
  int32_t prev_key = -1;
  for (uint32_t i = 0; i < n_app; ++i) {
    int32_t key, status;
    VersionedValue value;
    uint32_t n_tokens;
    if (!r->I32(&key) || !r->I64(&value.version) || !r->I32(&status) ||
        !r->F64(&value.load) || !r->Count(&n_tokens, /*min_element_size=*/8)) {
      return false;
    }
    if (key < static_cast<int32_t>(ApplicationStateKey::kStatus) ||
        key > static_cast<int32_t>(ApplicationStateKey::kLoad) ||
        key <= prev_key ||  // must be strictly ascending (map order), no dups
        status < static_cast<int32_t>(StatusKind::kUnknown) ||
        status > static_cast<int32_t>(StatusKind::kRemoved)) {
      return false;
    }
    prev_key = key;
    value.status = static_cast<StatusKind>(status);
    value.tokens.resize(n_tokens);
    for (Token& t : value.tokens) {
      if (!r->U64(&t)) return false;
    }
    state->Set(static_cast<ApplicationStateKey>(key), std::move(value));
  }
  return true;
}

void EncodeStateMap(Writer* w, const EndpointStateMap& states) {
  w->U32(static_cast<uint32_t>(states.size()));
  for (const auto& [node, state] : states) {
    w->I32(node);
    EncodeEndpointState(w, state);
  }
}

bool DecodeStateMap(Reader* r, EndpointStateMap* states) {
  uint32_t n;
  if (!r->Count(&n, /*min_element_size=*/24)) return false;
  NodeId prev = kInvalidNode;
  for (uint32_t i = 0; i < n; ++i) {
    NodeId node;
    if (!r->I32(&node) || (i > 0 && node <= prev)) return false;
    prev = node;
    if (!DecodeEndpointState(r, &(*states)[node])) return false;
  }
  return true;
}

// ---------------------------------------------------------------------------
// KV payload encoding.

void EncodeKvRequest(Writer* w, const KvRequestPayload& req) {
  w->U64(req.op_id);
  w->U64(req.key);
  w->I64(req.timestamp);
  w->Bytes(req.value);
}

bool DecodeKvRequest(Reader* r, KvRequestPayload* req) {
  return r->U64(&req->op_id) && r->U64(&req->key) && r->I64(&req->timestamp) &&
         r->Bytes(&req->value);
}

void EncodeKvResponse(Writer* w, const KvResponsePayload& resp) {
  w->U64(resp.op_id);
  w->U8(static_cast<uint8_t>((resp.ack ? 1 : 0) | (resp.found ? 2 : 0)));
  w->I64(resp.timestamp);
  w->Bytes(resp.value);
}

bool DecodeKvResponse(Reader* r, KvResponsePayload* resp) {
  uint8_t flags;
  if (!r->U64(&resp->op_id) || !r->U8(&flags) || (flags & ~3u) != 0 ||
      !r->I64(&resp->timestamp) || !r->Bytes(&resp->value)) {
    return false;
  }
  resp->ack = (flags & 1) != 0;
  resp->found = (flags & 2) != 0;
  return true;
}

// ---------------------------------------------------------------------------
// Anti-entropy repair payload encoding.

// A tree level; MerkleTree depths are CHECKed into [1, 20], so any larger
// level on the wire is corruption, not a config we ever run.
constexpr uint32_t kMaxMerkleLevel = 20;

// A node index at `level` must fit the level's width; strictly ascending
// order is part of the format (it is how the sender builds batches), so a
// decoder seeing disorder is seeing corruption.
bool ValidLevelIndex(uint32_t level, uint64_t index, uint64_t prev,
                     bool first) {
  if (index >= (uint64_t{1} << level)) {
    return false;
  }
  return first || index > prev;
}

void EncodeKvRepairHash(Writer* w, const KvRepairHashPayload& req) {
  w->U64(req.session_id);
  w->U32(req.level);
  w->U32(static_cast<uint32_t>(req.hashes.size()));
  for (const auto& [index, hash] : req.hashes) {
    w->U64(index);
    w->U64(hash.lo);
    w->U64(hash.hi);
  }
}

bool DecodeKvRepairHash(Reader* r, KvRepairHashPayload* req) {
  uint32_t n;
  if (!r->U64(&req->session_id) || !r->U32(&req->level) ||
      req->level > kMaxMerkleLevel || !r->Count(&n, /*min_element_size=*/24)) {
    return false;
  }
  req->hashes.reserve(n);
  uint64_t prev = 0;
  for (uint32_t i = 0; i < n; ++i) {
    uint64_t index;
    DigestValue hash;
    if (!r->U64(&index) || !r->U64(&hash.lo) || !r->U64(&hash.hi) ||
        !ValidLevelIndex(req->level, index, prev, i == 0)) {
      return false;
    }
    prev = index;
    req->hashes.emplace_back(index, hash);
  }
  return true;
}

void EncodeKvRepairDiff(Writer* w, const KvRepairDiffPayload& resp) {
  w->U64(resp.session_id);
  w->U32(resp.level);
  w->U32(static_cast<uint32_t>(resp.differing.size()));
  for (uint64_t index : resp.differing) {
    w->U64(index);
  }
}

bool DecodeKvRepairDiff(Reader* r, KvRepairDiffPayload* resp) {
  uint32_t n;
  if (!r->U64(&resp->session_id) || !r->U32(&resp->level) ||
      resp->level > kMaxMerkleLevel || !r->Count(&n, /*min_element_size=*/8)) {
    return false;
  }
  resp->differing.reserve(n);
  uint64_t prev = 0;
  for (uint32_t i = 0; i < n; ++i) {
    uint64_t index;
    if (!r->U64(&index) ||
        !ValidLevelIndex(resp->level, index, prev, i == 0)) {
      return false;
    }
    prev = index;
    resp->differing.push_back(index);
  }
  return true;
}

}  // namespace

void EncodeMessageTo(const Message& msg, std::string* out) {
  out->clear();
  Writer w(out);
  CHECK_NOTNULL(msg.payload.get());
  // One up-front reservation: SizeBytes() is the payload's own accounting of
  // its encoded size, so the append loop below almost never reallocates.
  w.Reserve(kHeaderSize + msg.payload->SizeBytes() + 16);
  w.U8(kMagic);
  w.U8(kVersion);
  w.I32(msg.type);
  w.I32(msg.from);
  w.I32(msg.to);
  w.U64(msg.pair_seq);
  w.U64(msg.id);
  switch (msg.type) {
    case kGossipSyn:
      EncodeDigests(&w, static_cast<const SynPayload&>(*msg.payload).digests);
      break;
    case kGossipAck: {
      const auto& ack = static_cast<const AckPayload&>(*msg.payload);
      EncodeDigests(&w, ack.requests);
      EncodeStateMap(&w, ack.states);
      break;
    }
    case kGossipAck2:
      EncodeStateMap(&w,
                     static_cast<const Ack2Payload&>(*msg.payload).states);
      break;
    case kKvWriteReq:
    case kKvReadReq:
    case kKvRepairStreamWrite:
      EncodeKvRequest(&w,
                      static_cast<const KvRequestPayload&>(*msg.payload));
      break;
    case kKvWriteResp:
    case kKvReadResp:
      EncodeKvResponse(&w,
                       static_cast<const KvResponsePayload&>(*msg.payload));
      break;
    case kKvRepairHashReq:
      EncodeKvRepairHash(
          &w, static_cast<const KvRepairHashPayload&>(*msg.payload));
      break;
    case kKvRepairHashResp:
      EncodeKvRepairDiff(
          &w, static_cast<const KvRepairDiffPayload&>(*msg.payload));
      break;
    default:
      CHECK(false) << "EncodeMessage: unknown message type " << msg.type;
  }
}

std::string EncodeMessage(const Message& msg) {
  std::string out;
  EncodeMessageTo(msg, &out);
  return out;
}

Result<Message> DecodeMessage(std::string_view data) {
  Reader r(data);
  uint8_t magic, version;
  if (!r.U8(&magic) || !r.U8(&version)) {
    return Status::Truncated("frame shorter than codec header");
  }
  if (magic != kMagic) {
    return Status::CorruptData("bad frame magic");
  }
  if (version != kVersion) {
    return Status::VersionSkew("unsupported codec version");
  }
  Message msg;
  if (!r.I32(&msg.type) || !r.I32(&msg.from) || !r.I32(&msg.to) ||
      !r.U64(&msg.pair_seq) || !r.U64(&msg.id)) {
    return Status::Truncated("frame shorter than codec header");
  }
  bool ok = false;
  switch (msg.type) {
    case kGossipSyn: {
      auto syn = std::make_shared<SynPayload>();
      ok = DecodeDigests(&r, &syn->digests);
      msg.payload = std::move(syn);
      break;
    }
    case kGossipAck: {
      auto ack = std::make_shared<AckPayload>();
      ok = DecodeDigests(&r, &ack->requests) && DecodeStateMap(&r, &ack->states);
      msg.payload = std::move(ack);
      break;
    }
    case kGossipAck2: {
      auto ack2 = std::make_shared<Ack2Payload>();
      ok = DecodeStateMap(&r, &ack2->states);
      msg.payload = std::move(ack2);
      break;
    }
    case kKvWriteReq:
    case kKvReadReq:
    case kKvRepairStreamWrite: {
      auto req = std::make_shared<KvRequestPayload>();
      ok = DecodeKvRequest(&r, req.get());
      msg.payload = std::move(req);
      break;
    }
    case kKvWriteResp:
    case kKvReadResp: {
      auto resp = std::make_shared<KvResponsePayload>();
      ok = DecodeKvResponse(&r, resp.get());
      msg.payload = std::move(resp);
      break;
    }
    case kKvRepairHashReq: {
      auto req = std::make_shared<KvRepairHashPayload>();
      ok = DecodeKvRepairHash(&r, req.get());
      msg.payload = std::move(req);
      break;
    }
    case kKvRepairHashResp: {
      auto resp = std::make_shared<KvRepairDiffPayload>();
      ok = DecodeKvRepairDiff(&r, resp.get());
      msg.payload = std::move(resp);
      break;
    }
    default:
      return Status::CorruptData("unknown message type");
  }
  if (!ok) {
    // Reader failures inside a known body are truncation *or* corruption
    // (bad discriminator / over-long count); the distinction the caller
    // acts on is "incomplete frame" vs "never valid", so classify by
    // whether input ran dry.
    return r.Remaining() == 0
               ? Result<Message>(Status::Truncated("frame body truncated"))
               : Result<Message>(Status::CorruptData("malformed frame body"));
  }
  if (r.Remaining() != 0) {
    return Status::CorruptData("trailing bytes after frame body");
  }
  return msg;
}

}  // namespace wire
}  // namespace scalecheck
