// One in-process node of the real-socket deployment.
//
// This is the real-mode counterpart of src/cluster/node.cc: the same
// protocol objects (Gossiper, PhiAccrualFailureDetector, TokenRing,
// PendingRangeCalculator, KvService) driven over the substrate seam instead
// of the simulator. Where the sim Node spreads work across staged
// SimThreads to *model* contention, RealNode runs everything under one
// per-node mutex — real threads (socket readers, the timer thread, the
// driver) provide the concurrency, and the monitor provides the
// protocol-code guarantee both carriers share: one event at a time per node.
//
// Deliberately below-seam features of the sim Node have no counterpart
// here: PIL boundaries, payload pools, memory modelling, fault injection,
// order enforcement. See DESIGN.md's substrate-seam section.

#ifndef SCALECHECK_SRC_NET_REAL_NODE_H_
#define SCALECHECK_SRC_NET_REAL_NODE_H_

#include <map>
#include <memory>
#include <mutex>
#include <unordered_set>
#include <vector>

#include "src/common/rng.h"
#include "src/gossip/failure_detector.h"
#include "src/gossip/flap_counter.h"
#include "src/gossip/gossiper.h"
#include "src/gossip/messages.h"
#include "src/kv/kv_service.h"
#include "src/net/real_clock.h"
#include "src/ring/calculators.h"
#include "src/ring/pending_ranges.h"
#include "src/ring/token_ring.h"
#include "src/transport/substrate.h"

namespace scalecheck {

class RealNode {
 public:
  struct Options {
    VirtualDuration gossip_interval = VirtualDuration::Millis(100);
    PhiAccrualFailureDetector::Config fd;
    int replication_factor = 3;
    int vnodes_per_node = 8;
    uint64_t seed = 1;
    bool enable_kv = false;
    VirtualDuration kv_timeout = VirtualDuration::Seconds(2);
    // Ack threshold for KV reads and writes (ONE / QUORUM / ALL).
    KvConsistency kv_consistency = KvConsistency::kQuorum;
    // Durable replica path (WAL + group commit + hint replay). Real-mode
    // crashes are process exits, so the WAL mostly exercises the same code
    // path as the sim carrier: deferred group-commit acks and hint replay
    // on peer recovery.
    bool kv_wal = false;
    VirtualDuration kv_wal_sync_interval = VirtualDuration::Millis(250);
    // Anti-entropy repair (src/kv/anti_entropy.h) — same knobs as
    // ClusterConfig's kv_repair_* family, same defaults scaled to the
    // real-mode smoke's shorter horizon.
    bool kv_repair = false;
    VirtualDuration kv_repair_interval = VirtualDuration::Seconds(2);
    int64_t kv_repair_rate_bytes = 256 * 1024;
    int kv_repair_max_sessions = 1;
    VirtualDuration kv_repair_session_timeout = VirtualDuration::Seconds(5);
    int kv_repair_max_retries = 2;
    size_t kv_repair_pressure_max_inflight = 16;
    bool plant_repair_storm = false;
    // Seed addresses for the gossip-to-unreachable escape hatch (self is
    // filtered out). When the live view is empty, the round SYNs one of
    // these unconditionally so an islanded node rejoins after a partition.
    std::vector<NodeId> seed_contacts;
  };

  // `transport` and `clock` outlive the node; `flaps` is shared across nodes
  // and internally synchronized by `flaps_mu` (FlapCounter itself is not
  // thread-safe).
  RealNode(NodeId id, const Options& options, Transport* transport,
           Clock* clock, FlapCounter* flaps, std::mutex* flaps_mu);
  ~RealNode();
  RealNode(const RealNode&) = delete;
  RealNode& operator=(const RealNode&) = delete;

  NodeId id() const { return id_; }

  // Pre-start: install a settled member map (self included), as the sim
  // Node's PrimeSettled does, or just seed contacts.
  void PrimeSettled(const std::map<NodeId, std::vector<Token>>& members);
  void PrimeSeeds(const std::map<NodeId, std::vector<Token>>& seed_members);

  // Registers with the transport and starts the periodic gossip round.
  void Start();
  // Stops gossip and leaves the transport. Safe to call twice.
  void Stop();

  // KV client entry points (no-ops calling done(kUnavailable) without KV).
  void KvWrite(uint64_t key, std::string value, KvService::DoneFn done);
  void KvRead(uint64_t key, KvService::DoneFn done);

  // ---- Snapshots (taken under the node mutex) ----------------------------
  // True when this node sees `n` members: knows n endpoints, all alive,
  // every status NORMAL, and the ring holds n nodes.
  bool SeesConvergedCluster(int n) const;
  size_t known_endpoints() const;
  size_t live_endpoints() const;
  // Known-but-dead peers that have not departed (the healing target set).
  size_t unreachable_endpoints() const;
  std::vector<Token> my_tokens() const { return my_tokens_; }
  const KvStats KvStatsSnapshot() const;
  // Replica-convergence audit hooks (real-mode verdict synthesis): the local
  // storage version of `key` (0 = absent / KV off) and this node's view of
  // the key's natural replica set.
  int64_t KvTimestampOf(uint64_t key) const;
  std::vector<NodeId> KvNaturalEndpoints(uint64_t key) const;

 private:
  void OnMessage(const Message& msg);
  void GossipRound();
  void HandleSyn(const Message& msg);
  void HandleAck(const Message& msg);
  void HandleAck2(const Message& msg);

  void SendSynTo(NodeId peer);
  void OnStatusChange(NodeId ep, StatusKind old_status, StatusKind new_status);
  void OnHeartbeat(NodeId ep);
  void OnRestart(NodeId ep);
  void MaybeRecalc();

  const NodeId id_;
  const Options options_;
  Transport* transport_;
  FlapCounter* flaps_;
  std::mutex* flaps_mu_;

  mutable std::mutex mu_;
  SerializedClock clock_;  // wraps the shared RealClock with mu_
  RealStage stage_;
  Rng rng_;
  Gossiper gossiper_;
  PhiAccrualFailureDetector fd_;
  TokenRing ring_;
  std::unique_ptr<PendingRangeCalculator> calculator_;
  std::vector<PendingChange> pending_changes_;
  PendingRanges pending_ranges_;
  bool ring_dirty_ = false;
  std::unordered_set<NodeId> unmonitored_;
  std::vector<NodeId> seed_contacts_;  // Options::seed_contacts minus self
  std::vector<Token> my_tokens_;
  std::unique_ptr<KvService> kv_;
  std::unique_ptr<PeriodicClockTimer> gossip_timer_;
  bool started_ = false;
  bool stopped_ = false;
};

}  // namespace scalecheck

#endif  // SCALECHECK_SRC_NET_REAL_NODE_H_
