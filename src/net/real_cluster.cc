#include "src/net/real_cluster.h"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <map>
#include <string>
#include <thread>
#include <utility>

#include "src/common/logging.h"
#include "src/common/stats.h"
#include "src/common/strings.h"
#include "src/faults/fault_injector.h"
#include "src/ring/token_ring.h"

namespace scalecheck {

RealCluster::RealCluster(const Options& options) : options_(options) {
  std::map<NodeId, std::vector<Token>> seed_members;
  int seeds = std::min(options_.seeds, options_.num_nodes);
  for (NodeId id = 0; id < seeds; ++id) {
    seed_members[id] =
        GenerateTokens(id, options_.node.vnodes_per_node, options_.node.seed);
  }
  RealNode::Options node_options = options_.node;
  node_options.seed_contacts.clear();
  for (NodeId id = 0; id < seeds; ++id) {
    node_options.seed_contacts.push_back(id);
  }
  for (NodeId id = 0; id < options_.num_nodes; ++id) {
    // Same boot-order interning contract as the simulated Cluster: the
    // human-readable address exists only here and in logs; every layer below
    // (gossip, ring, transport) speaks dense EndpointIds == NodeIds.
    EndpointId interned = interner_.Intern("127.0.0.1#" + std::to_string(id));
    CHECK_EQ(interned, id);
    auto node = std::make_unique<RealNode>(id, node_options, &transport_,
                                           &clock_, &flaps_, &flaps_mu_);
    node->PrimeSeeds(seed_members);
    nodes_.push_back(std::move(node));
  }
}

RealCluster::~RealCluster() {
  for (auto& node : nodes_) {
    node->Stop();
  }
  clock_.Shutdown();
  transport_.Shutdown();
}

bool RealCluster::AllConverged() const {
  for (const auto& node : nodes_) {
    if (!node->SeesConvergedCluster(options_.num_nodes)) {
      return false;
    }
  }
  return true;
}

RunResult RealCluster::Run() {
  for (auto& node : nodes_) {
    node->Start();
  }

  // Poll for convergence. Polling (vs. condition-variable plumbing through
  // every node) keeps the measurement honest: nodes run undisturbed and the
  // observer samples, as an external prober would.
  bool settled = false;
  VirtualTime settle_time;
  while (clock_.Now().nanos() < options_.convergence_timeout.nanos()) {
    if (AllConverged()) {
      settled = true;
      settle_time = clock_.Now();
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  if (!settled) {
    SC_LOG(Warning) << "real cluster: " << options_.num_nodes
                    << " nodes did not converge within "
                    << options_.convergence_timeout.ToString();
  }

  // ---- Fault phase: replay the plan against the sockets, then demand the
  // cluster heal. Plan times are authored in simulator gossip rounds (1s
  // interval); rescale by this carrier's interval so the same FaultPlan
  // means the same protocol-time schedule on both carriers.
  std::unique_ptr<FaultInjector> injector;
  bool fault_phase_ran = false;
  bool healed = true;
  int64_t islanded = 0;
  if (settled && !options_.faults.empty()) {
    const double scale =
        static_cast<double>(options_.node.gossip_interval.nanos()) / 1e9;
    auto rescale = [scale](VirtualDuration d) {
      return VirtualDuration::Nanos(
          static_cast<int64_t>(static_cast<double>(d.nanos()) * scale));
    };
    FaultPlan plan;
    plan.name = options_.faults.name;
    for (const FaultEvent& ev : options_.faults.events) {
      if (ev.kind != FaultKind::kPartition &&
          ev.kind != FaultKind::kLinkDegrade) {
        SC_LOG(Warning) << "real cluster: skipping unsupported fault kind "
                        << FaultKindName(ev.kind)
                        << " (no process/machine model on this carrier)";
        continue;
      }
      FaultEvent scaled = ev;
      scaled.at = rescale(ev.at);
      scaled.duration = rescale(ev.duration);
      plan.events.push_back(scaled);
    }
    if (!plan.empty()) {
      fault_phase_ran = true;
      const VirtualTime armed_at = clock_.Now();
      const VirtualTime quiet_at = armed_at + plan.End();
      const VirtualTime deadline =
          quiet_at +
          options_.node.gossip_interval * options_.partition_heal_rounds;
      FaultInjector::Hooks hooks;
      hooks.clock = &clock_;
      hooks.links = &transport_;
      injector = std::make_unique<FaultInjector>(std::move(plan), hooks);
      injector->Arm();
      // Ride out the plan, then poll for reconvergence within the
      // rounds-denominated heal bound — the real-mode probe of the
      // partition-heals invariant.
      healed = false;
      while (clock_.Now() < deadline) {
        if (clock_.Now() >= quiet_at && AllConverged()) {
          healed = true;
          break;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
      }
      if (!healed) {
        healed = AllConverged();  // final check at the deadline itself
      }
      for (const auto& node : nodes_) {
        islanded += static_cast<int64_t>(node->unreachable_endpoints());
      }
      if (!healed) {
        SC_LOG(Warning) << "real cluster: partition did not heal within "
                        << options_.partition_heal_rounds
                        << " gossip rounds of fault quiescence (" << islanded
                        << " endpoints still unreachable)";
      }
    }
  }

  // Optional KV smoke: quorum writes then reads, round-robin coordinators.
  int64_t kv_issued = 0;
  LogHistogram kv_latency{/*base=*/1e5, /*growth=*/1.5, /*num_buckets=*/80};
  if (settled && healed && options_.node.enable_kv && options_.kv_ops > 0) {
    std::mutex done_mu;
    std::condition_variable done_cv;
    int outstanding = 0;
    auto issue = [&](bool is_write, int i) {
      RealNode* coordinator = nodes_[static_cast<size_t>(i) % nodes_.size()].get();
      uint64_t key = static_cast<uint64_t>(i) * 7919;
      VirtualTime started = clock_.Now();
      {
        std::lock_guard<std::mutex> lock(done_mu);
        ++outstanding;
      }
      ++kv_issued;
      auto done = [&, started](KvOutcome outcome, std::string value) {
        (void)outcome;
        (void)value;
        std::lock_guard<std::mutex> lock(done_mu);
        kv_latency.AddDuration(clock_.Now() - started);
        --outstanding;
        done_cv.notify_all();
      };
      if (is_write) {
        coordinator->KvWrite(key, StrFormat("v%d", i), std::move(done));
      } else {
        coordinator->KvRead(key, std::move(done));
      }
    };
    for (int i = 0; i < options_.kv_ops; ++i) {
      issue(/*is_write=*/true, i);
    }
    for (int i = 0; i < options_.kv_ops; ++i) {
      issue(/*is_write=*/false, i);
    }
    std::unique_lock<std::mutex> lock(done_mu);
    done_cv.wait_for(lock, std::chrono::seconds(30),
                     [&] { return outstanding == 0; });
  }

  // ---- Anti-entropy phase: with repair on, every natural replica of the
  // smoke keys must converge on the winning timestamp within a few repair
  // intervals — the real-mode probe of replica-convergence's data facet.
  bool repair_phase_ran = false;
  bool repair_converged = true;
  int64_t diverged_replicas = 0;
  if (settled && healed && options_.node.enable_kv && options_.node.kv_repair &&
      options_.kv_ops > 0) {
    repair_phase_ran = true;
    auto count_diverged = [&] {
      int64_t diverged = 0;
      for (int i = 0; i < options_.kv_ops; ++i) {
        uint64_t key = static_cast<uint64_t>(i) * 7919;
        std::vector<NodeId> replicas = nodes_[0]->KvNaturalEndpoints(key);
        int64_t winning = 0;
        for (NodeId r : replicas) {
          winning = std::max(
              winning, nodes_[static_cast<size_t>(r)]->KvTimestampOf(key));
        }
        if (winning == 0) continue;  // never acked anywhere: nothing to repair
        for (NodeId r : replicas) {
          if (nodes_[static_cast<size_t>(r)]->KvTimestampOf(key) < winning) {
            ++diverged;
          }
        }
      }
      return diverged;
    };
    const VirtualTime repair_deadline = clock_.Now() +
                                        options_.node.kv_repair_interval * 8 +
                                        VirtualDuration::Seconds(2);
    // Even when nothing diverged, dwell a few intervals: the scheduler must
    // be observed actually ticking, both so throttled repair demonstrates it
    // stays inside the session budget and so an unthrottled storm has time
    // to exceed it. Exiting at first agreement would end the run before the
    // first repair timer ever fired.
    const VirtualTime min_dwell = clock_.Now() +
                                  options_.node.kv_repair_interval * 4 +
                                  VirtualDuration::Seconds(1);
    repair_converged = false;
    while (clock_.Now() < repair_deadline) {
      diverged_replicas = count_diverged();
      if (diverged_replicas == 0 && clock_.Now() >= min_dwell) {
        repair_converged = true;
        break;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    if (!repair_converged) {
      diverged_replicas = count_diverged();
      repair_converged = diverged_replicas == 0;
    }
  }

  VirtualTime end = clock_.Now();
  int64_t live_sum = 0;
  int64_t unreachable_sum = 0;
  for (const auto& node : nodes_) {
    live_sum += static_cast<int64_t>(node->live_endpoints());
    unreachable_sum += static_cast<int64_t>(node->unreachable_endpoints());
  }
  for (auto& node : nodes_) {
    node->Stop();
  }
  // The injector's filter closure dies with this frame; nodes are stopped,
  // but clear it so the member transport never outlives what it points at.
  transport_.SetLinkFilter(nullptr);

  RunResult result;
  result.mode = RunMode::kRealSockets;
  result.num_nodes = options_.num_nodes;
  result.vnodes_per_node = options_.node.vnodes_per_node;
  result.settled = settled;
  result.settle_time = settled ? (settle_time - VirtualTime::Zero()) : VirtualDuration::Zero();
  result.test_duration = end - VirtualTime::Zero();
  {
    std::lock_guard<std::mutex> lock(flaps_mu_);
    result.flaps = flaps_.total_flaps();
    result.flapped_pairs = flaps_.flapped_pairs();
  }
  result.messages_sent = transport_.messages_sent();
  result.messages_delivered = transport_.messages_delivered();
  result.messages_blocked = transport_.messages_blocked();
  result.live_endpoints = live_sum;
  result.unreachable_endpoints = unreachable_sum;
  if (injector != nullptr) {
    FaultInjector::Stats stats = injector->stats();
    result.fault_events_applied = stats.events_applied;
    result.fault_events_healed = stats.events_healed;
  }
  if (fault_phase_ran || repair_phase_ran) {
    // Real-mode probe of the partition-heals invariant: one end-of-run
    // verdict in the same report shape the sim checker emits, so the CLI's
    // exit-code logic treats both carriers identically.
    result.invariants.checked = true;
    result.invariants.probes = 1;
    if (fault_phase_ran && !healed) {
      InvariantViolation violation;
      violation.invariant = "partition-heals";
      violation.first_at = end;
      violation.detail = StrFormat(
          "%lld endpoints still unreachable %d gossip rounds after fault "
          "quiescence on the real carrier",
          static_cast<long long>(islanded), options_.partition_heal_rounds);
      violation.count = islanded > 0 ? islanded : 1;
      result.invariants.violations.push_back(violation);
    }
    if (repair_phase_ran && !repair_converged) {
      // Data facet of replica-convergence on the real carrier: acknowledged
      // smoke writes never reached every natural replica despite repair
      // having had several intervals to run.
      InvariantViolation violation;
      violation.invariant = "replica-convergence";
      violation.first_at = end;
      violation.detail = StrFormat(
          "%lld replica copies of the smoke key set still diverged after 8 "
          "repair intervals on the real carrier",
          static_cast<long long>(diverged_replicas));
      violation.count = diverged_replicas > 0 ? diverged_replicas : 1;
      result.invariants.violations.push_back(violation);
    }
  }
  result.kv_issued = kv_issued;
  // Budget facet of replica-convergence on the real carrier. Byte volumes in
  // a smoke are tiny, so the storm signature here is session RATE: throttled
  // repair opens at most max_sessions per interval, while the planted storm
  // opens one pseudo-session per live co-replica per tick.
  const double elapsed_seconds = static_cast<double>(end.nanos()) / 1e9;
  const double interval_seconds = std::max(
      1e-3,
      static_cast<double>(options_.node.kv_repair_interval.nanos()) / 1e9);
  const double session_allowance =
      (elapsed_seconds / interval_seconds) * options_.node.kv_repair_max_sessions *
          2.0 +
      4.0;
  const double byte_allowance =
      static_cast<double>(options_.node.kv_repair_rate_bytes) *
          elapsed_seconds * 2.0 +
      4.0 * 1024.0 * 1024.0;
  for (const auto& node : nodes_) {
    if (!options_.node.kv_repair) break;
    bool already_flagged = false;
    for (const InvariantViolation& v : result.invariants.violations) {
      already_flagged = already_flagged || v.invariant == "replica-convergence";
    }
    if (already_flagged) break;
    KvStats stats = node->KvStatsSnapshot();
    if (static_cast<double>(stats.repair_sessions) > session_allowance ||
        static_cast<double>(stats.repair_bytes_streamed) > byte_allowance) {
      result.invariants.checked = true;
      if (result.invariants.probes == 0) result.invariants.probes = 1;
      result.invariants.violations.push_back(InvariantViolation{
          "replica-convergence", end,
          StrFormat("node %lld opened %lld repair sessions / streamed %lld "
                    "bytes in %.1fs, over 2x its configured budget — repair "
                    "storm",
                    static_cast<long long>(node->id()),
                    static_cast<long long>(stats.repair_sessions),
                    static_cast<long long>(stats.repair_bytes_streamed),
                    elapsed_seconds),
          1});
      break;  // one verdict is enough; keep the report small
    }
  }
  for (const auto& node : nodes_) {
    KvStats stats = node->KvStatsSnapshot();
    result.kv_ok += stats.ok;
    result.kv_unavailable += stats.unavailable;
    result.kv_timeout += stats.timeout;
    result.kv_retries += stats.retries;
    result.kv_gave_up += stats.gave_up;
    // Data-path accounting, same fields the sim carrier exports: with the
    // WAL on, every OK ack above rode a real-socket group commit, and these
    // counters are the evidence trail.
    result.kv_wal_bytes += stats.wal_bytes;
    result.kv_hints_queued += stats.hints_queued;
    result.kv_hints_replayed += stats.hints_replayed;
    result.kv_hints_expired += stats.hints_expired;
    result.kv_read_repairs += stats.read_repairs;
    result.kv_ops_one += stats.ops_one;
    result.kv_ops_quorum += stats.ops_quorum;
    result.kv_ops_all += stats.ops_all;
    result.kv_repair_sessions += stats.repair_sessions;
    result.kv_repair_bytes_streamed += stats.repair_bytes_streamed;
    result.kv_repair_keys_fixed += stats.repair_keys_fixed;
    result.kv_repair_aborted += stats.repair_aborted;
  }
  result.kv_inflight_at_stop =
      kv_issued - (result.kv_ok + result.kv_unavailable + result.kv_timeout);
  result.kv_latency_p50 = kv_latency.PercentileDuration(50);
  result.kv_latency_p99 = kv_latency.PercentileDuration(99);
  result.kv_latency_p999 = kv_latency.PercentileDuration(99.9);
  return result;
}

}  // namespace scalecheck
