#include "src/net/real_cluster.h"

#include <chrono>
#include <condition_variable>
#include <map>
#include <string>
#include <thread>
#include <utility>

#include "src/common/logging.h"
#include "src/common/stats.h"
#include "src/common/strings.h"
#include "src/ring/token_ring.h"

namespace scalecheck {

RealCluster::RealCluster(const Options& options) : options_(options) {
  std::map<NodeId, std::vector<Token>> seed_members;
  int seeds = std::min(options_.seeds, options_.num_nodes);
  for (NodeId id = 0; id < seeds; ++id) {
    seed_members[id] =
        GenerateTokens(id, options_.node.vnodes_per_node, options_.node.seed);
  }
  for (NodeId id = 0; id < options_.num_nodes; ++id) {
    auto node = std::make_unique<RealNode>(id, options_.node, &transport_,
                                           &clock_, &flaps_, &flaps_mu_);
    node->PrimeSeeds(seed_members);
    nodes_.push_back(std::move(node));
  }
}

RealCluster::~RealCluster() {
  for (auto& node : nodes_) {
    node->Stop();
  }
  clock_.Shutdown();
  transport_.Shutdown();
}

bool RealCluster::AllConverged() const {
  for (const auto& node : nodes_) {
    if (!node->SeesConvergedCluster(options_.num_nodes)) {
      return false;
    }
  }
  return true;
}

RunResult RealCluster::Run() {
  for (auto& node : nodes_) {
    node->Start();
  }

  // Poll for convergence. Polling (vs. condition-variable plumbing through
  // every node) keeps the measurement honest: nodes run undisturbed and the
  // observer samples, as an external prober would.
  bool settled = false;
  VirtualTime settle_time;
  while (clock_.Now().nanos() < options_.convergence_timeout.nanos()) {
    if (AllConverged()) {
      settled = true;
      settle_time = clock_.Now();
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  if (!settled) {
    SC_LOG(Warning) << "real cluster: " << options_.num_nodes
                    << " nodes did not converge within "
                    << options_.convergence_timeout.ToString();
  }

  // Optional KV smoke: quorum writes then reads, round-robin coordinators.
  int64_t kv_issued = 0;
  LogHistogram kv_latency{/*base=*/1e5, /*growth=*/1.5, /*num_buckets=*/80};
  if (settled && options_.node.enable_kv && options_.kv_ops > 0) {
    std::mutex done_mu;
    std::condition_variable done_cv;
    int outstanding = 0;
    auto issue = [&](bool is_write, int i) {
      RealNode* coordinator = nodes_[static_cast<size_t>(i) % nodes_.size()].get();
      uint64_t key = static_cast<uint64_t>(i) * 7919;
      VirtualTime started = clock_.Now();
      {
        std::lock_guard<std::mutex> lock(done_mu);
        ++outstanding;
      }
      ++kv_issued;
      auto done = [&, started](KvOutcome outcome, std::string value) {
        (void)outcome;
        (void)value;
        std::lock_guard<std::mutex> lock(done_mu);
        kv_latency.AddDuration(clock_.Now() - started);
        --outstanding;
        done_cv.notify_all();
      };
      if (is_write) {
        coordinator->KvWrite(key, StrFormat("v%d", i), std::move(done));
      } else {
        coordinator->KvRead(key, std::move(done));
      }
    };
    for (int i = 0; i < options_.kv_ops; ++i) {
      issue(/*is_write=*/true, i);
    }
    for (int i = 0; i < options_.kv_ops; ++i) {
      issue(/*is_write=*/false, i);
    }
    std::unique_lock<std::mutex> lock(done_mu);
    done_cv.wait_for(lock, std::chrono::seconds(30),
                     [&] { return outstanding == 0; });
  }

  VirtualTime end = clock_.Now();
  for (auto& node : nodes_) {
    node->Stop();
  }

  RunResult result;
  result.mode = RunMode::kRealSockets;
  result.num_nodes = options_.num_nodes;
  result.vnodes_per_node = options_.node.vnodes_per_node;
  result.settled = settled;
  result.settle_time = settled ? (settle_time - VirtualTime::Zero()) : VirtualDuration::Zero();
  result.test_duration = end - VirtualTime::Zero();
  {
    std::lock_guard<std::mutex> lock(flaps_mu_);
    result.flaps = flaps_.total_flaps();
    result.flapped_pairs = flaps_.flapped_pairs();
  }
  result.messages_sent = transport_.messages_sent();
  result.messages_delivered = transport_.messages_delivered();
  result.kv_issued = kv_issued;
  for (const auto& node : nodes_) {
    KvStats stats = node->KvStatsSnapshot();
    result.kv_ok += stats.ok;
    result.kv_unavailable += stats.unavailable;
    result.kv_timeout += stats.timeout;
    result.kv_retries += stats.retries;
    result.kv_gave_up += stats.gave_up;
  }
  result.kv_inflight_at_stop =
      kv_issued - (result.kv_ok + result.kv_unavailable + result.kv_timeout);
  result.kv_latency_p99 = kv_latency.PercentileDuration(99);
  return result;
}

}  // namespace scalecheck
