#include "src/scalecheck/cli_modes.h"

#include <algorithm>

namespace scalecheck {
namespace {

const std::vector<RunMode>& FullGrid() {
  static const std::vector<RunMode> kGrid = {
      RunMode::kRealScale, RunMode::kColocated, RunMode::kMemoize,
      RunMode::kPilReplay};
  return kGrid;
}

std::vector<std::string> SplitCsv(const std::string& csv) {
  std::vector<std::string> parts;
  size_t start = 0;
  while (start <= csv.size()) {
    size_t comma = csv.find(',', start);
    if (comma == std::string::npos) {
      parts.push_back(csv.substr(start));
      break;
    }
    parts.push_back(csv.substr(start, comma - start));
    start = comma + 1;
  }
  return parts;
}

}  // namespace

const char* CliModeKindName(CliModeKind kind) {
  switch (kind) {
    case CliModeKind::kSuite:
      return "suite";
    case CliModeKind::kSearch:
      return "search";
    case CliModeKind::kRepro:
      return "repro";
    case CliModeKind::kReal:
      return "real";
  }
  return "?";
}

bool ModeSelection::IsFullGrid() const {
  if (kind != CliModeKind::kSuite || sim_modes.size() != FullGrid().size()) {
    return false;
  }
  // Order-insensitive: the grid executor fixes its own order anyway.
  for (RunMode mode : FullGrid()) {
    if (std::count(sim_modes.begin(), sim_modes.end(), mode) != 1) {
      return false;
    }
  }
  return true;
}

Result<RunMode> SimModeFromFlag(const std::string& flag) {
  if (flag == "real" || flag == "real-scale") {
    return RunMode::kRealScale;
  }
  if (flag == "colo") {
    return RunMode::kColocated;
  }
  if (flag == "memoize") {
    return RunMode::kMemoize;
  }
  if (flag == "replay") {
    return RunMode::kPilReplay;
  }
  return Status::InvalidArgument("unknown sim mode '" + flag +
                                 "' (want real|colo|memoize|replay)");
}

Result<ModeSelection> ParseCliMode(const std::string& mode,
                                   const std::string& sim_modes_csv) {
  ModeSelection sel;

  // Canonical spellings first.
  if (mode == "suite") {
    sel.kind = CliModeKind::kSuite;
    if (sim_modes_csv.empty()) {
      sel.sim_modes = FullGrid();
    } else {
      for (const std::string& part : SplitCsv(sim_modes_csv)) {
        Result<RunMode> parsed = SimModeFromFlag(part);
        if (!parsed.ok()) {
          return parsed.status();
        }
        if (std::count(sel.sim_modes.begin(), sel.sim_modes.end(),
                       parsed.value()) > 0) {
          return Status::InvalidArgument("duplicate sim mode '" + part + "'");
        }
        sel.sim_modes.push_back(parsed.value());
      }
    }
    return sel;
  }
  if (mode == "search" || mode == "repro" || mode == "real") {
    if (!sim_modes_csv.empty()) {
      return Status::InvalidArgument("--sim-modes only applies to --mode=suite");
    }
    sel.kind = mode == "search" ? CliModeKind::kSearch
               : mode == "repro" ? CliModeKind::kRepro
                                 : CliModeKind::kReal;
    return sel;
  }

  // Deprecated aliases: their own selection wins; --sim-modes alongside an
  // alias is a contradiction, not a merge.
  if (!sim_modes_csv.empty()) {
    return Status::InvalidArgument("--sim-modes only applies to --mode=suite");
  }
  sel.kind = CliModeKind::kSuite;
  sel.deprecated_alias = true;
  if (mode == "full") {
    sel.sim_modes = FullGrid();
    sel.canonical = "--mode=suite";
  } else if (mode == "colo") {
    sel.sim_modes = {RunMode::kColocated};
    sel.canonical = "--mode=suite --sim-modes=colo";
  } else if (mode == "memoize") {
    sel.sim_modes = {RunMode::kMemoize};
    sel.canonical = "--mode=suite --sim-modes=memoize";
  } else if (mode == "replay") {
    sel.sim_modes = {RunMode::kPilReplay};
    sel.canonical = "--mode=suite --sim-modes=replay";
  } else if (mode == "real-scale" || mode == "sim-real") {
    sel.sim_modes = {RunMode::kRealScale};
    sel.canonical = "--mode=suite --sim-modes=real";
  } else {
    return Status::InvalidArgument(
        "unknown mode '" + mode + "' (want suite|search|repro|real)");
  }
  return sel;
}

}  // namespace scalecheck
