#include "src/scalecheck/bug_catalog.h"

#include "src/common/check.h"

namespace scalecheck {

namespace {

std::vector<BugSpec> BuildCatalog() {
  std::vector<BugSpec> catalog;

  {
    BugSpec spec;
    spec.id = "C3831";
    spec.description =
        "decommission triggers cubic pending-range recalculation on the gossip stage";
    spec.calc_version = CalcVersion::kV1PreC3831;
    spec.placement = CalcPlacement::kInlineGossipStage;
    spec.vnodes_per_node = 1;
    spec.workload = WorkloadKind::kDecommission;
    catalog.push_back(spec);

    spec.id = "C3831-fixed";
    spec.description = "the C3831 fix: sort-based endpoints, no vnodes";
    spec.calc_version = CalcVersion::kV2C3831Fix;
    catalog.push_back(spec);
  }

  {
    BugSpec spec;
    spec.id = "C3881";
    spec.description =
        "scale-out with vnodes: the C3831 fix explodes again as N becomes N*P";
    spec.calc_version = CalcVersion::kV2C3831Fix;
    spec.placement = CalcPlacement::kInlineGossipStage;
    spec.vnodes_per_node = 8;
    spec.workload = WorkloadKind::kScaleOut;
    catalog.push_back(spec);
  }

  {
    BugSpec spec;
    spec.id = "C5456";
    spec.description =
        "scale-out: fast vnode-aware calculator, but the coarse ring lock starves gossip";
    spec.calc_version = CalcVersion::kV3C3881Fix;
    spec.placement = CalcPlacement::kSeparateThreadCoarseLock;
    spec.vnodes_per_node = 16;
    spec.workload = WorkloadKind::kScaleOut;
    catalog.push_back(spec);

    spec.id = "C5456-fixed";
    spec.description = "the C5456 fix: clone the ring, release the lock early";
    spec.placement = CalcPlacement::kSeparateThreadClone;
    catalog.push_back(spec);
  }

  {
    BugSpec spec;
    spec.id = "C6127";
    spec.description =
        "fresh bootstrap exercises the O(M*N^2) ring-construction path (vnodes)";
    spec.calc_version = CalcVersion::kV3C3881Fix;
    spec.placement = CalcPlacement::kInlineGossipStage;
    spec.vnodes_per_node = 16;
    spec.workload = WorkloadKind::kBootstrapFresh;
    catalog.push_back(spec);
  }

  return catalog;
}

}  // namespace

const std::vector<BugSpec>& BugCatalog::All() {
  static const std::vector<BugSpec>* catalog = new std::vector<BugSpec>(BuildCatalog());
  return *catalog;
}

const BugSpec* BugCatalog::TryGet(const std::string& id) {
  for (const BugSpec& spec : All()) {
    if (spec.id == id) {
      return &spec;
    }
  }
  return nullptr;
}

const BugSpec& BugCatalog::Get(const std::string& id) {
  const BugSpec* spec = TryGet(id);
  CHECK(spec != nullptr) << "unknown bug id '" << id << "'";
  return *spec;
}

std::vector<std::string> BugCatalog::Ids() {
  std::vector<std::string> ids;
  for (const BugSpec& spec : All()) {
    ids.push_back(spec.id);
  }
  return ids;
}

}  // namespace scalecheck
