// ExperimentSuite: a declarative grid of scale-check experiments with a
// host-parallel, determinism-preserving executor.
//
// Every figure/table in DESIGN.md §4 is a grid of independent deterministic
// simulations — (bug x RunMode x scale x seed). An ExperimentSpec declares
// that grid once; the suite compiles it into a dependency-aware task DAG
// (each kPilReplay run depends on the memoization run that fills its
// MemoStore; everything else is independent) and executes it on a ThreadPool
// with `jobs` workers.
//
// Determinism is non-negotiable: each task owns its own single-threaded
// Simulator, the shared CalcOutputCache is internally synchronized and
// value-transparent, and results land in grid order (insertion-order
// independent), so SuiteReport::ToJson() with jobs=N is byte-identical to
// jobs=1. Host parallelism never touches virtual time — it only decides how
// many simulations advance their own clocks at once. Host wall-clock is
// reported per run for operators but deliberately excluded from the JSON.

#ifndef SCALECHECK_SRC_SCALECHECK_EXPERIMENT_SUITE_H_
#define SCALECHECK_SRC_SCALECHECK_EXPERIMENT_SUITE_H_

#include <string>
#include <vector>

#include "src/scalecheck/scale_check.h"

namespace scalecheck {

inline constexpr uint64_t kDefaultSuiteSeed = 0x5ca1ec4ecULL;

// The declarative grid: every (bug, mode, scale, seed) combination runs once.
struct ExperimentSpec {
  std::vector<BugSpec> bugs;
  std::vector<RunMode> modes;
  std::vector<int> scales;
  std::vector<uint64_t> seeds = {kDefaultSuiteSeed};

  // Host worker threads; <= 0 selects the hardware concurrency. This knob
  // changes wall-clock only, never results.
  int jobs = 1;

  // Share one synchronized CalcOutputCache across all runs (host wall-clock
  // optimization; see CalcOutputCache for why this preserves determinism).
  bool share_output_cache = true;

  // ---- Self-healing execution ----------------------------------------------
  // Host wall-clock budget per cell (0 disables the watchdog). A per-bug
  // BugSpec::wall_budget_seconds > 0 overrides this for that bug's cells. A
  // cell that exceeds its budget is abandoned and retried from scratch — the
  // retry reconstructs simulator, RNG streams and memo state purely from the
  // cell's seed, so a successful retry is byte-identical to a run that never
  // tripped. After max_cell_attempts the cell is quarantined: the sweep
  // completes, the record carries status "quarantined" + the reason, and no
  // partial (host-dependent) result is ever serialized.
  double cell_wall_budget_seconds = 0.0;
  int max_cell_attempts = 2;
};

// One executed grid cell.
struct RunRecord {
  std::string bug_id;
  RunMode mode = RunMode::kRealScale;
  int nodes = 0;
  uint64_t seed = 0;
  // True for memoization runs the suite inserted itself because the grid
  // asked for kPilReplay without kMemoize (the replay's DB dependency).
  bool implicit = false;
  RunResult result;
  // Host wall-clock of this run (reporting only; not serialized).
  double wall_seconds = 0.0;
  // ---- Self-healing status -------------------------------------------------
  // Attempts actually executed (0 for cells quarantined before running).
  // Serialized only for quarantined cells: a successful retry count is
  // host-dependent and must not perturb the byte-identity of good cells.
  int attempts = 0;
  bool quarantined = false;
  std::string quarantine_reason;  // "watchdog" or "dependency-quarantined"
};

class SuiteReport {
 public:
  // All records in canonical grid order (bug-major, then scale, seed, mode;
  // implicit dependency runs appended after the grid) — independent of the
  // order tasks happened to finish in.
  const std::vector<RunRecord>& runs() const { return runs_; }

  // Returns the record for one grid cell, or nullptr if it was not part of
  // the spec (implicit runs are found too).
  const RunRecord* Find(const std::string& bug_id, RunMode mode, int nodes,
                        uint64_t seed) const;
  // As Find, but CHECK-fails when missing.
  const RunResult& Get(const std::string& bug_id, RunMode mode, int nodes,
                       uint64_t seed) const;

  // Assembles the Figure-3 style four-mode comparison for one (bug, scale,
  // seed) cell. Requires all four modes in the grid (memoize may be
  // implicit).
  ScaleCheckResult Assemble(const std::string& bug_id, int nodes,
                            uint64_t seed) const;

  // Total host wall-clock spent inside runs (sum over tasks; with jobs > 1
  // this exceeds the suite's elapsed time — that gap is the speedup).
  double total_run_wall_seconds() const;

  // Stable machine-readable export: byte-identical for a fixed spec grid no
  // matter how many host threads executed it. Quarantined cells serialize
  // status + reason + attempts and omit the result object entirely, so the
  // surviving cells' bytes match a sweep that never contained the bad cell.
  std::string ToJson() const;

  // One record as a standalone JSON object — the exact bytes ToJson() emits
  // for it inside the runs array (tests compare surviving cells with this).
  static std::string RecordJson(const RunRecord& record);

  size_t quarantined_count() const;

 private:
  friend class ExperimentSuite;
  std::vector<RunRecord> runs_;
};

class ExperimentSuite {
 public:
  explicit ExperimentSuite(ExperimentSpec spec);
  ~ExperimentSuite();
  ExperimentSuite(const ExperimentSuite&) = delete;
  ExperimentSuite& operator=(const ExperimentSuite&) = delete;

  const ExperimentSpec& spec() const { return spec_; }

  // Executes the whole grid and returns the report. Call once.
  SuiteReport Run();

 private:
  struct Task;

  ExperimentSpec spec_;
  bool ran_ = false;
};

}  // namespace scalecheck

#endif  // SCALECHECK_SRC_SCALECHECK_EXPERIMENT_SUITE_H_
