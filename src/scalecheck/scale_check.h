// The top-level scale-check API (Figure 2's flow, minus the program-analysis
// steps which live in src/sfind/).
//
// A BugSpec is a reproducible scalability-bug scenario: which calculator
// generation, which threading/locking placement, how many vnodes, and which
// protocol workload triggers it. The runnable §2 catalog lives in
// src/scalecheck/bug_catalog.h (BugCatalog::Get / BugCatalog::All).
//
// RunSingle deploys a spec at one scale in one of the paper's modes;
// ScaleCheckRunner::RunFull runs the whole comparison (Real / Colo / Memoize /
// PIL replay) that Figure 3 plots. For grids of runs — every figure and table
// is one — use ExperimentSuite (experiment_suite.h), which fans the
// independent simulations out across host threads.

#ifndef SCALECHECK_SRC_SCALECHECK_SCALE_CHECK_H_
#define SCALECHECK_SRC_SCALECHECK_SCALE_CHECK_H_

#include <memory>
#include <string>

#include "src/cluster/cluster.h"

namespace scalecheck {

struct BugSpec {
  std::string id;           // e.g. "C3831"
  std::string description;  // one line for reports
  CalcVersion calc_version = CalcVersion::kV1PreC3831;
  CalcPlacement placement = CalcPlacement::kInlineGossipStage;
  int vnodes_per_node = 1;
  WorkloadKind workload = WorkloadKind::kDecommission;
  // Scale-out size as a fraction of N (the "+25%" rescale).
  double join_fraction = 0.25;
  VirtualDuration horizon = VirtualDuration::Seconds(420);
  // Overrides the workload's membership-transition window when non-zero
  // (LEAVING->LEFT / BOOT->NORMAL); zero keeps the per-workload default.
  VirtualDuration transition_override = VirtualDuration::Zero();
  // §6 deployment engineering (the colocation-limit experiments vary these).
  ExecModel exec_model = ExecModel::kProcessPerNode;
  bool space_oblivious_rebalance = false;
  // Named fault schedule (FaultPlan::ByName) injected during every run of
  // this spec; "" / "none" disables. Part of the spec so memoize and replay
  // apply identical schedules.
  std::string fault_plan;
  // Explicit fault schedule; when non-empty it takes precedence over
  // `fault_plan`. This is how ChaosSearch candidates and --repro artifacts
  // flow through ExperimentSuite as ordinary specs.
  FaultPlan custom_faults;
  // Invariant-checker options for every run of this spec (including the
  // planted-bug flag the ChaosSearch smoke exercises).
  CheckOptions check;
  // Client load on the quorum KV data path; > 0 enables the KV service (with
  // retries, see MakeConfig) and the load driver.
  double kv_ops_per_second = 0.0;
  // Ack threshold for KV reads and writes (ONE / QUORUM / ALL).
  KvConsistency kv_consistency = KvConsistency::kQuorum;
  // Durable replica path: per-node WAL with group commit, hint replay on
  // recovery, crash-lossy unsynced tail. Arms the kv-durability invariant.
  bool kv_wal = false;
  // Anti-entropy repair: periodic Merkle-tree exchange with co-replicas,
  // throttled by a byte-rate token bucket and a session cap. Arms the
  // replica-convergence invariant. The planted repair-storm bug rides in
  // check.plant_repair_storm (only meaningful with kv_repair on).
  bool kv_repair = false;
  VirtualDuration kv_repair_interval = VirtualDuration::Seconds(10);
  int64_t kv_repair_rate_bytes = 256 * 1024;
  int kv_repair_max_sessions = 1;
  // Key popularity for the KV load driver (uniform or Zipf skew).
  KvKeyDist kv_key_dist = KvKeyDist::kUniform;
  double kv_zipf_s = 1.0;
  // Fidelity-guard budgets applied to every run of this spec (deterministic;
  // part of the serialized verdict). Defaults encode §8's limits.
  FidelityBudgets guard;
  // What a replay divergence does to runs of this spec (kPilReplay only).
  ReplayPolicy replay_policy = ReplayPolicy::kFallbackToModelled;
  // Per-spec host wall-clock watchdog override for suite cells; 0 inherits
  // ExperimentSpec::cell_wall_budget_seconds.
  double wall_budget_seconds = 0.0;

  // Materializes configuration for a deployment of n initial nodes.
  ClusterConfig MakeConfig(int n, RunMode mode, uint64_t seed) const;
  WorkloadSpec MakeWorkload(int n) const;
  // The fault schedule for a deployment of n nodes (empty when no plan).
  FaultPlan MakeFaultPlan(int n, uint64_t seed) const;
};

struct ScaleCheckResult {
  RunResult real;
  RunResult colo;
  RunResult memoize;
  RunResult replay;
  MemoStore::Stats memo;
  // Relative flap-count error vs real-scale testing (the accuracy claim).
  double replay_flap_error = 0.0;
  double colo_flap_error = 0.0;

  // Stable machine-readable form (suite exports, tooling).
  std::string ToJson() const;
};

// Everything RunSingle needs beyond (spec, n, mode, seed). Replaces the old
// four-out-pointer tail with one named-options struct.
struct RunOptions {
  // kMemoize fills this store; kPilReplay reads it.
  MemoStore* memo_store = nullptr;
  // Memoization runs record message-processing order here (§5).
  OrderLog* record_order_log = nullptr;
  // Replay runs enforce this recorded order (off by default; see
  // ScaleCheckRunner::set_enforce_order).
  const OrderLog* replay_order_log = nullptr;
  // Optional cross-run calculator output cache (host wall-clock only; an
  // internally synchronized cache may be shared across concurrent runs).
  CalcOutputCache* output_cache = nullptr;
  // Record an execution trace (determinism digests, debugging dumps).
  bool enable_trace = false;
  // Optional profiler: deterministic op counters land in RunResult::profile,
  // host wall timers accumulate on the profiler itself.
  SimProfiler* profiler = nullptr;
  // Overrides the spec's own fault plan when non-null (tests injecting a
  // custom schedule); by default RunSingle materializes spec.fault_plan.
  const FaultPlan* faults = nullptr;
  // Host wall-clock watchdog for this run (0 disables); see
  // Cluster::Options::wall_budget_seconds.
  double wall_budget_seconds = 0.0;
};

// Runs one deployment.
RunResult RunSingle(const BugSpec& spec, int n, RunMode mode, uint64_t seed,
                    const RunOptions& options);
RunResult RunSingle(const BugSpec& spec, int n, RunMode mode, uint64_t seed);

class ScaleCheckRunner {
 public:
  explicit ScaleCheckRunner(BugSpec spec, uint64_t seed = 0x5ca1ec4ecULL);

  const BugSpec& spec() const { return spec_; }

  // Enables recording + enforcing message-processing order between the
  // memoization run and the replay (§5's "order determinism"). Off by
  // default: our memoization keys are content digests of the ring state, so
  // replays hit the memo DB without pinning arrival order, and enforcement
  // buffering distorts gossip timing. Enable to study the trade-off (the
  // accuracy tests cover both settings).
  void set_enforce_order(bool enforce) { enforce_order_ = enforce; }

  RunResult RunReal(int n);
  RunResult RunColo(int n);
  // Memoize once + replay once; returns everything (Figure 3's three lines
  // plus the memoization run itself, which §8 reports timing for).
  ScaleCheckResult RunFull(int n);

 private:
  BugSpec spec_;
  uint64_t seed_;
  bool enforce_order_ = false;
  // Calculator outputs recur across modes and scales; sharing the cache
  // keeps harness wall-clock down (see DESIGN.md §2).
  CalcOutputCache cache_;
};

double RelativeFlapError(int64_t observed, int64_t reference);

// The CLI exit-code contract for a finished run: 4 when an invariant was
// violated, 3 when the fidelity guard says the run is not trustworthy, 0
// otherwise. Invariant violations win — a broken cluster matters more than a
// distrusted measurement of it.
int RunExitCode(const RunResult& result);

}  // namespace scalecheck

#endif  // SCALECHECK_SRC_SCALECHECK_SCALE_CHECK_H_
