// The top-level scale-check API (Figure 2's flow, minus the program-analysis
// steps which live in src/sfind/).
//
// A BugSpec is a reproducible scalability-bug scenario: which calculator
// generation, which threading/locking placement, how many vnodes, and which
// protocol workload triggers it. RunSingle deploys it at a scale in one of
// the paper's modes; ScaleCheckRunner::RunFull runs the whole comparison
// (Real / Colo / Memoize / PIL replay) that Figure 3 plots.

#ifndef SCALECHECK_SRC_SCALECHECK_SCALE_CHECK_H_
#define SCALECHECK_SRC_SCALECHECK_SCALE_CHECK_H_

#include <memory>
#include <string>

#include "src/cluster/cluster.h"

namespace scalecheck {

struct BugSpec {
  std::string id;           // e.g. "C3831"
  std::string description;  // one line for reports
  CalcVersion calc_version = CalcVersion::kV1PreC3831;
  CalcPlacement placement = CalcPlacement::kInlineGossipStage;
  int vnodes_per_node = 1;
  WorkloadKind workload = WorkloadKind::kDecommission;
  // Scale-out size as a fraction of N (the "+25%" rescale).
  double join_fraction = 0.25;
  VirtualDuration horizon = VirtualDuration::Seconds(420);

  // Materializes configuration for a deployment of n initial nodes.
  ClusterConfig MakeConfig(int n, RunMode mode, uint64_t seed) const;
  WorkloadSpec MakeWorkload(int n) const;
};

// The §2 bug catalog as runnable scenarios.
BugSpec C3831Spec();  // decommission, O(N^3)-era calculator
BugSpec C3881Spec();  // scale-out with vnodes on the C3831 fix
BugSpec C5456Spec();  // scale-out, fast calculator but coarse ring lock
BugSpec C6127Spec();  // fresh bootstrap, the path-dependent O(M*N^2)
// Fixed counterparts (ablations: the patch makes the symptom vanish).
BugSpec C3831FixedSpec();
BugSpec C5456FixedSpec();

struct ScaleCheckResult {
  RunResult real;
  RunResult colo;
  RunResult memoize;
  RunResult replay;
  MemoStore::Stats memo;
  // Relative flap-count error vs real-scale testing (the accuracy claim).
  double replay_flap_error = 0.0;
  double colo_flap_error = 0.0;
};

// Runs one deployment. For kMemoize pass empty store+log to fill; for
// kPilReplay pass the filled ones.
RunResult RunSingle(const BugSpec& spec, int n, RunMode mode, uint64_t seed,
                    MemoStore* memo = nullptr, OrderLog* record_log = nullptr,
                    const OrderLog* replay_log = nullptr,
                    CalcOutputCache* cache = nullptr);

class ScaleCheckRunner {
 public:
  explicit ScaleCheckRunner(BugSpec spec, uint64_t seed = 0x5ca1ec4ecULL);

  const BugSpec& spec() const { return spec_; }

  // Enables recording + enforcing message-processing order between the
  // memoization run and the replay (§5's "order determinism"). Off by
  // default: our memoization keys are content digests of the ring state, so
  // replays hit the memo DB without pinning arrival order, and enforcement
  // buffering distorts gossip timing. Enable to study the trade-off (the
  // accuracy tests cover both settings).
  void set_enforce_order(bool enforce) { enforce_order_ = enforce; }

  RunResult RunReal(int n);
  RunResult RunColo(int n);
  // Memoize once + replay once; returns everything (Figure 3's three lines
  // plus the memoization run itself, which §8 reports timing for).
  ScaleCheckResult RunFull(int n);

 private:
  BugSpec spec_;
  uint64_t seed_;
  bool enforce_order_ = false;
  // Calculator outputs recur across modes and scales; sharing the cache
  // keeps harness wall-clock down (see DESIGN.md §2).
  CalcOutputCache cache_;
};

double RelativeFlapError(int64_t observed, int64_t reference);

}  // namespace scalecheck

#endif  // SCALECHECK_SRC_SCALECHECK_SCALE_CHECK_H_
