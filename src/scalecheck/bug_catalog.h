// The §2 bug catalog as a registry of runnable scenarios.
//
// Replaces the old free-function catalog (C3831Spec() & friends) and the
// name->spec switch statements that every CLI/bench target used to duplicate:
//
//   const BugSpec& bug = BugCatalog::Get("C3831");
//   for (const BugSpec& spec : BugCatalog::All()) { ... }
//
// The catalog is immutable and built once at first use; entries are returned
// by reference and remain valid for the process lifetime.

#ifndef SCALECHECK_SRC_SCALECHECK_BUG_CATALOG_H_
#define SCALECHECK_SRC_SCALECHECK_BUG_CATALOG_H_

#include <string>
#include <vector>

#include "src/scalecheck/scale_check.h"

namespace scalecheck {

class BugCatalog {
 public:
  // Returns the spec for `id` (e.g. "C3831", "C5456-fixed"); CHECK-fails on
  // unknown ids — use TryGet when the id comes from user input.
  static const BugSpec& Get(const std::string& id);

  // Returns nullptr for unknown ids.
  static const BugSpec* TryGet(const std::string& id);

  // Every catalogued scenario, in a stable order (buggy generations first,
  // then their fixes, mirroring the §2 bug->fix->bug narrative).
  static const std::vector<BugSpec>& All();

  // Catalog ids in All() order (usage strings, reports).
  static std::vector<std::string> Ids();
};

}  // namespace scalecheck

#endif  // SCALECHECK_SRC_SCALECHECK_BUG_CATALOG_H_
