#include "src/scalecheck/experiment_suite.h"

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <utility>

#include "src/common/check.h"
#include "src/common/thread_pool.h"

namespace scalecheck {

namespace {

double WallSecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
      .count();
}

}  // namespace

// One node of the task DAG: a single (bug, mode, scale, seed) simulation.
struct ExperimentSuite::Task {
  size_t record_index = 0;       // slot in SuiteReport::runs_
  const BugSpec* bug = nullptr;
  RunMode mode = RunMode::kRealScale;
  int nodes = 0;
  uint64_t seed = 0;
  // kMemoize fills, kPilReplay reads; owned by the executor, shared by the
  // memoize task and its dependent replay. The DAG edge (below) makes the
  // accesses strictly sequential, so the store needs no locking.
  MemoStore* store = nullptr;
  std::vector<size_t> dependents;  // task indices unblocked by completion
  int unmet_dependencies = 0;
  // Set (under the executor mutex) when a dependency was quarantined: this
  // task must not run — its input store was never filled — and cascades the
  // quarantine to its own dependents.
  bool dep_quarantined = false;
};

ExperimentSuite::ExperimentSuite(ExperimentSpec spec) : spec_(std::move(spec)) {}

ExperimentSuite::~ExperimentSuite() = default;

SuiteReport ExperimentSuite::Run() {
  CHECK(!ran_) << "ExperimentSuite::Run is one-shot; build a new suite";
  ran_ = true;
  CHECK(!spec_.bugs.empty()) << "ExperimentSpec needs at least one bug";
  CHECK(!spec_.modes.empty()) << "ExperimentSpec needs at least one mode";
  CHECK(!spec_.scales.empty()) << "ExperimentSpec needs at least one scale";
  CHECK(!spec_.seeds.empty()) << "ExperimentSpec needs at least one seed";

  bool wants_memoize = false;
  bool wants_replay = false;
  for (RunMode mode : spec_.modes) {
    wants_memoize = wants_memoize || mode == RunMode::kMemoize;
    wants_replay = wants_replay || mode == RunMode::kPilReplay;
  }

  // ---- Compile the grid into tasks + records (canonical order) --------------
  SuiteReport report;
  std::vector<Task> tasks;
  std::vector<std::unique_ptr<MemoStore>> stores;

  // Grid cells first, in spec order: bug-major, then scale, seed, mode.
  struct CellKey {
    size_t memoize_task = SIZE_MAX;
    size_t replay_task = SIZE_MAX;
    MemoStore* store = nullptr;
  };
  for (const BugSpec& bug : spec_.bugs) {
    for (int n : spec_.scales) {
      for (uint64_t seed : spec_.seeds) {
        CellKey cell;
        if (wants_memoize || wants_replay) {
          stores.push_back(std::make_unique<MemoStore>());
          cell.store = stores.back().get();
        }
        for (RunMode mode : spec_.modes) {
          Task task;
          task.record_index = report.runs_.size();
          task.bug = &bug;
          task.mode = mode;
          task.nodes = n;
          task.seed = seed;
          if (mode == RunMode::kMemoize || mode == RunMode::kPilReplay) {
            task.store = cell.store;
          }
          if (mode == RunMode::kMemoize) {
            cell.memoize_task = tasks.size();
          } else if (mode == RunMode::kPilReplay) {
            cell.replay_task = tasks.size();
          }
          tasks.push_back(std::move(task));

          RunRecord record;
          record.bug_id = bug.id;
          record.mode = mode;
          record.nodes = n;
          record.seed = seed;
          report.runs_.push_back(std::move(record));
        }
        // The DAG edge: replay waits for the memoize run that fills its DB.
        if (cell.replay_task != SIZE_MAX) {
          if (cell.memoize_task == SIZE_MAX) {
            // The grid asked for replay without memoize: insert the implicit
            // dependency run (appended after the grid, still deterministic).
            Task memoize;
            memoize.record_index = report.runs_.size();
            memoize.bug = &bug;
            memoize.mode = RunMode::kMemoize;
            memoize.nodes = n;
            memoize.seed = seed;
            memoize.store = cell.store;
            cell.memoize_task = tasks.size();
            tasks.push_back(std::move(memoize));

            RunRecord record;
            record.bug_id = bug.id;
            record.mode = RunMode::kMemoize;
            record.nodes = n;
            record.seed = seed;
            record.implicit = true;
            report.runs_.push_back(std::move(record));
          }
          tasks[cell.memoize_task].dependents.push_back(cell.replay_task);
          tasks[cell.replay_task].unmet_dependencies += 1;
        }
      }
    }
  }

  // Implicit runs were appended out of canonical position; re-sort records
  // afterwards? Not needed: their position is a deterministic function of the
  // spec alone, so parallel and serial executions agree byte-for-byte.

  // ---- Execute the DAG on the pool ------------------------------------------
  CalcOutputCache shared_cache;
  CalcOutputCache* cache = spec_.share_output_cache ? &shared_cache : nullptr;

  ThreadPool pool(spec_.jobs);
  std::mutex mu;
  std::condition_variable done_cv;
  size_t remaining = tasks.size();

  // Scheduling closure: runs one task (with watchdog / bounded retry /
  // quarantine), then unblocks its dependents. Tasks write only their own
  // preallocated record slot, so no result-side locking is needed.
  std::function<void(size_t)> submit = [&](size_t index) {
    pool.Submit([&, index] {
      Task& task = tasks[index];
      RunRecord& record = report.runs_[task.record_index];
      auto start = std::chrono::steady_clock::now();

      if (task.dep_quarantined) {
        // The store this task depends on was never (fully) filled; running
        // would produce a host-dependent half-result. Quarantine instead.
        record.quarantined = true;
        record.quarantine_reason = "dependency-quarantined";
      } else {
        const double budget = task.bug->wall_budget_seconds > 0.0
                                  ? task.bug->wall_budget_seconds
                                  : spec_.cell_wall_budget_seconds;
        const int max_attempts =
            budget > 0.0 ? std::max(1, spec_.max_cell_attempts) : 1;
        // Snapshot the cell's memo store before the first watched attempt: a
        // retry must replay against pristine input state (a partially filled
        // memoize store, or a replay store extended by divergence fallbacks,
        // would otherwise leak across attempts and break byte-identity).
        std::unique_ptr<MemoStore> pristine;
        if (budget > 0.0 && task.store != nullptr) {
          pristine = std::make_unique<MemoStore>(*task.store);
        }
        for (int attempt = 1; attempt <= max_attempts; ++attempt) {
          if (attempt > 1 && pristine != nullptr) {
            *task.store = *pristine;
          }
          RunOptions options;
          options.memo_store = task.store;
          options.output_cache = cache;
          options.wall_budget_seconds = budget;
          record.result =
              RunSingle(*task.bug, task.nodes, task.mode, task.seed, options);
          record.attempts = attempt;
          if (!record.result.watchdog_fired) {
            break;
          }
        }
        if (record.result.watchdog_fired) {
          record.quarantined = true;
          record.quarantine_reason = "watchdog";
          // A watchdog-truncated run's numbers describe a host-dependent
          // prefix; drop them so they can never be mistaken for results.
          record.result = RunResult();
        }
      }
      record.wall_seconds = WallSecondsSince(start);

      std::vector<size_t> ready;
      {
        std::lock_guard<std::mutex> lock(mu);
        for (size_t dependent : task.dependents) {
          if (record.quarantined) {
            tasks[dependent].dep_quarantined = true;
          }
          if (--tasks[dependent].unmet_dependencies == 0) {
            ready.push_back(dependent);
          }
        }
        if (--remaining == 0) {
          done_cv.notify_all();
        }
      }
      for (size_t r : ready) {
        submit(r);
      }
    });
  };

  {
    // Seed the pool with every dependency-free task, in canonical order.
    for (size_t i = 0; i < tasks.size(); ++i) {
      if (tasks[i].unmet_dependencies == 0) {
        submit(i);
      }
    }
    std::unique_lock<std::mutex> lock(mu);
    done_cv.wait(lock, [&] { return remaining == 0; });
  }
  pool.WaitIdle();

  return report;
}

// ---- SuiteReport ------------------------------------------------------------

const RunRecord* SuiteReport::Find(const std::string& bug_id, RunMode mode,
                                   int nodes, uint64_t seed) const {
  for (const RunRecord& record : runs_) {
    if (record.bug_id == bug_id && record.mode == mode && record.nodes == nodes &&
        record.seed == seed) {
      return &record;
    }
  }
  return nullptr;
}

const RunResult& SuiteReport::Get(const std::string& bug_id, RunMode mode,
                                  int nodes, uint64_t seed) const {
  const RunRecord* record = Find(bug_id, mode, nodes, seed);
  CHECK(record != nullptr) << "suite has no run for " << bug_id << "/"
                           << RunModeName(mode) << "/n=" << nodes;
  return record->result;
}

ScaleCheckResult SuiteReport::Assemble(const std::string& bug_id, int nodes,
                                       uint64_t seed) const {
  ScaleCheckResult result;
  result.real = Get(bug_id, RunMode::kRealScale, nodes, seed);
  result.colo = Get(bug_id, RunMode::kColocated, nodes, seed);
  result.memoize = Get(bug_id, RunMode::kMemoize, nodes, seed);
  result.replay = Get(bug_id, RunMode::kPilReplay, nodes, seed);
  // The replay run observed the store after memoize + its own lookups — the
  // same view ScaleCheckRunner::RunFull reports.
  result.memo = result.replay.memo;
  result.replay_flap_error = RelativeFlapError(result.replay.flaps, result.real.flaps);
  result.colo_flap_error = RelativeFlapError(result.colo.flaps, result.real.flaps);
  return result;
}

double SuiteReport::total_run_wall_seconds() const {
  double total = 0.0;
  for (const RunRecord& record : runs_) {
    total += record.wall_seconds;
  }
  return total;
}

namespace {

// Shared by ToJson (inside the runs array) and RecordJson (standalone): a
// JSON object's bytes do not depend on nesting, so the two agree.
void WriteRecordJson(JsonWriter* w, const RunRecord& record) {
  w->BeginObject();
  w->Field("bug", record.bug_id);
  w->Field("mode", RunModeName(record.mode));
  w->Field("nodes", record.nodes);
  w->Field("seed", record.seed);
  w->Field("implicit", record.implicit);
  w->Field("status", record.quarantined ? "quarantined" : "ok");
  if (record.quarantined) {
    // No result object: a quarantined cell has only host-dependent partial
    // state. attempts is deterministic for deterministic-poison cells (it is
    // always max_cell_attempts) and meaningful diagnostics otherwise.
    w->Field("quarantine_reason", record.quarantine_reason);
    w->Field("attempts", record.attempts);
  } else {
    w->Key("result");
    record.result.WriteJson(w);
  }
  w->EndObject();
}

}  // namespace

std::string SuiteReport::RecordJson(const RunRecord& record) {
  JsonWriter w;
  WriteRecordJson(&w, record);
  return w.str();
}

size_t SuiteReport::quarantined_count() const {
  size_t count = 0;
  for (const RunRecord& record : runs_) {
    count += record.quarantined ? 1 : 0;
  }
  return count;
}

std::string SuiteReport::ToJson() const {
  JsonWriter w;
  w.BeginObject();
  w.Key("runs").BeginArray();
  for (const RunRecord& record : runs_) {
    WriteRecordJson(&w, record);
  }
  w.EndArray();
  w.EndObject();
  return w.str();
}

}  // namespace scalecheck
