#include "src/scalecheck/scale_check.h"

#include <algorithm>
#include <cmath>

#include "src/common/check.h"

namespace scalecheck {

ClusterConfig BugSpec::MakeConfig(int n, RunMode mode, uint64_t seed) const {
  ClusterConfig cfg;
  cfg.initial_nodes = n;
  cfg.vnodes_per_node = vnodes_per_node;
  cfg.calc_version = calc_version;
  cfg.calc_placement = placement;
  cfg.run_mode = mode;
  cfg.exec_model = exec_model;
  cfg.space_oblivious_rebalance = space_oblivious_rebalance;
  cfg.guard = guard;
  cfg.replay_policy = replay_policy;
  cfg.check = check;
  cfg.seed = seed;
  if (kv_ops_per_second > 0.0) {
    cfg.enable_kv = true;
    // Under fault injection a single attempt is the wrong client model:
    // real drivers retry. Bounded retries + deadline keep the accounting
    // conservative (every request ends OK or gave-up).
    cfg.kv_max_attempts = 4;
  }
  cfg.kv_consistency = kv_consistency;
  cfg.kv_wal = kv_wal;
  cfg.kv_repair = kv_repair;
  cfg.kv_repair_interval = kv_repair_interval;
  cfg.kv_repair_rate_bytes = kv_repair_rate_bytes;
  cfg.kv_repair_max_sessions = kv_repair_max_sessions;
  return cfg;
}

FaultPlan BugSpec::MakeFaultPlan(int n, uint64_t seed) const {
  if (!custom_faults.events.empty()) {
    return custom_faults;
  }
  return FaultPlan::ByName(fault_plan, n, seed);
}

WorkloadSpec BugSpec::MakeWorkload(int n) const {
  WorkloadSpec wl;
  wl.kind = workload;
  wl.horizon = horizon;
  switch (workload) {
    case WorkloadKind::kDecommission:
      wl.target = n / 2;
      // Decommission streams the leaver's data before it announces LEFT; at
      // hundreds of nodes that takes minutes, so the LEAVING window (during
      // which every state apply re-triggers the pending-range calculation)
      // is long.
      wl.transition = VirtualDuration::Seconds(90);
      break;
    case WorkloadKind::kScaleOut:
      wl.joining_nodes = std::max(1, static_cast<int>(n * join_fraction));
      break;
    case WorkloadKind::kRebalance:
      wl.target = n / 2;
      wl.joining_nodes = 1;
      break;
    case WorkloadKind::kFailover:
      wl.target = n / 2;
      break;
    case WorkloadKind::kBootstrapFresh:
    case WorkloadKind::kSteadyState:
      break;
  }
  if (!transition_override.IsZero()) {
    wl.transition = transition_override;
  }
  return wl;
}

int RunExitCode(const RunResult& result) {
  if (result.invariants.checked && !result.invariants.ok()) {
    return 4;
  }
  if (result.fidelity.verdict == FidelityVerdict::kInvalid) {
    return 3;
  }
  return 0;
}

double RelativeFlapError(int64_t observed, int64_t reference) {
  double ref = static_cast<double>(std::max<int64_t>(reference, 1));
  return std::abs(static_cast<double>(observed) - static_cast<double>(reference)) / ref;
}

RunResult RunSingle(const BugSpec& spec, int n, RunMode mode, uint64_t seed,
                    const RunOptions& run_options) {
  Cluster::Options options;
  options.config = spec.MakeConfig(n, mode, seed);
  options.workload = spec.MakeWorkload(n);
  options.memo_store = run_options.memo_store;
  options.record_order_log = run_options.record_order_log;
  options.replay_order_log = run_options.replay_order_log;
  options.shared_output_cache = run_options.output_cache;
  options.enable_trace = run_options.enable_trace;
  options.profiler = run_options.profiler;
  options.faults = run_options.faults != nullptr ? *run_options.faults
                                                 : spec.MakeFaultPlan(n, seed);
  options.kv_ops_per_second = spec.kv_ops_per_second;
  options.kv_key_dist = spec.kv_key_dist;
  options.kv_zipf_s = spec.kv_zipf_s;
  options.wall_budget_seconds = run_options.wall_budget_seconds;
  Cluster cluster(std::move(options));
  return cluster.Run();
}

RunResult RunSingle(const BugSpec& spec, int n, RunMode mode, uint64_t seed) {
  return RunSingle(spec, n, mode, seed, RunOptions{});
}

ScaleCheckRunner::ScaleCheckRunner(BugSpec spec, uint64_t seed)
    : spec_(std::move(spec)), seed_(seed) {}

RunResult ScaleCheckRunner::RunReal(int n) {
  RunOptions options;
  options.output_cache = &cache_;
  return RunSingle(spec_, n, RunMode::kRealScale, seed_, options);
}

RunResult ScaleCheckRunner::RunColo(int n) {
  RunOptions options;
  options.output_cache = &cache_;
  return RunSingle(spec_, n, RunMode::kColocated, seed_, options);
}

ScaleCheckResult ScaleCheckRunner::RunFull(int n) {
  ScaleCheckResult result;
  result.real = RunReal(n);
  result.colo = RunColo(n);

  MemoStore store;
  OrderLog order_log;
  RunOptions memoize_options;
  memoize_options.memo_store = &store;
  memoize_options.record_order_log = enforce_order_ ? &order_log : nullptr;
  memoize_options.output_cache = &cache_;
  result.memoize = RunSingle(spec_, n, RunMode::kMemoize, seed_, memoize_options);

  RunOptions replay_options;
  replay_options.memo_store = &store;
  replay_options.replay_order_log = enforce_order_ ? &order_log : nullptr;
  replay_options.output_cache = &cache_;
  result.replay = RunSingle(spec_, n, RunMode::kPilReplay, seed_, replay_options);

  result.memo = store.stats();
  result.replay_flap_error = RelativeFlapError(result.replay.flaps, result.real.flaps);
  result.colo_flap_error = RelativeFlapError(result.colo.flaps, result.real.flaps);
  return result;
}

std::string ScaleCheckResult::ToJson() const {
  JsonWriter w;
  w.BeginObject();
  w.Key("real");
  real.WriteJson(&w);
  w.Key("colo");
  colo.WriteJson(&w);
  w.Key("memoize");
  memoize.WriteJson(&w);
  w.Key("replay");
  replay.WriteJson(&w);
  w.Key("memo").BeginObject();
  w.Field("records", memo.records);
  w.Field("duplicate_puts", memo.duplicate_puts);
  w.Field("determinism_violations", memo.determinism_violations);
  w.Field("lookups", memo.lookups);
  w.Field("hits", memo.hits);
  w.Field("misses", memo.misses);
  w.EndObject();
  w.Field("replay_flap_error", replay_flap_error);
  w.Field("colo_flap_error", colo_flap_error);
  w.EndObject();
  return w.str();
}

}  // namespace scalecheck
