#include "src/scalecheck/scale_check.h"

#include <algorithm>
#include <cmath>

#include "src/common/check.h"

namespace scalecheck {

ClusterConfig BugSpec::MakeConfig(int n, RunMode mode, uint64_t seed) const {
  ClusterConfig cfg;
  cfg.initial_nodes = n;
  cfg.vnodes_per_node = vnodes_per_node;
  cfg.calc_version = calc_version;
  cfg.calc_placement = placement;
  cfg.run_mode = mode;
  cfg.seed = seed;
  return cfg;
}

WorkloadSpec BugSpec::MakeWorkload(int n) const {
  WorkloadSpec wl;
  wl.kind = workload;
  wl.horizon = horizon;
  switch (workload) {
    case WorkloadKind::kDecommission:
      wl.target = n / 2;
      // Decommission streams the leaver's data before it announces LEFT; at
      // hundreds of nodes that takes minutes, so the LEAVING window (during
      // which every state apply re-triggers the pending-range calculation)
      // is long.
      wl.transition = VirtualDuration::Seconds(90);
      break;
    case WorkloadKind::kScaleOut:
      wl.joining_nodes = std::max(1, static_cast<int>(n * join_fraction));
      break;
    case WorkloadKind::kRebalance:
      wl.target = n / 2;
      wl.joining_nodes = 1;
      break;
    case WorkloadKind::kFailover:
      wl.target = n / 2;
      break;
    case WorkloadKind::kBootstrapFresh:
    case WorkloadKind::kSteadyState:
      break;
  }
  return wl;
}

BugSpec C3831Spec() {
  BugSpec spec;
  spec.id = "C3831";
  spec.description =
      "decommission triggers cubic pending-range recalculation on the gossip stage";
  spec.calc_version = CalcVersion::kV1PreC3831;
  spec.placement = CalcPlacement::kInlineGossipStage;
  spec.vnodes_per_node = 1;
  spec.workload = WorkloadKind::kDecommission;
  return spec;
}

BugSpec C3831FixedSpec() {
  BugSpec spec = C3831Spec();
  spec.id = "C3831-fixed";
  spec.description = "the C3831 fix: sort-based endpoints, no vnodes";
  spec.calc_version = CalcVersion::kV2C3831Fix;
  return spec;
}

BugSpec C3881Spec() {
  BugSpec spec;
  spec.id = "C3881";
  spec.description =
      "scale-out with vnodes: the C3831 fix explodes again as N becomes N*P";
  spec.calc_version = CalcVersion::kV2C3831Fix;
  spec.placement = CalcPlacement::kInlineGossipStage;
  spec.vnodes_per_node = 8;
  spec.workload = WorkloadKind::kScaleOut;
  return spec;
}

BugSpec C5456Spec() {
  BugSpec spec;
  spec.id = "C5456";
  spec.description =
      "scale-out: fast vnode-aware calculator, but the coarse ring lock starves gossip";
  spec.calc_version = CalcVersion::kV3C3881Fix;
  spec.placement = CalcPlacement::kSeparateThreadCoarseLock;
  spec.vnodes_per_node = 16;
  spec.workload = WorkloadKind::kScaleOut;
  return spec;
}

BugSpec C5456FixedSpec() {
  BugSpec spec = C5456Spec();
  spec.id = "C5456-fixed";
  spec.description = "the C5456 fix: clone the ring, release the lock early";
  spec.placement = CalcPlacement::kSeparateThreadClone;
  return spec;
}

BugSpec C6127Spec() {
  BugSpec spec;
  spec.id = "C6127";
  spec.description =
      "fresh bootstrap exercises the O(M*N^2) ring-construction path (vnodes)";
  spec.calc_version = CalcVersion::kV3C3881Fix;
  spec.placement = CalcPlacement::kInlineGossipStage;
  spec.vnodes_per_node = 16;
  spec.workload = WorkloadKind::kBootstrapFresh;
  return spec;
}

double RelativeFlapError(int64_t observed, int64_t reference) {
  double ref = static_cast<double>(std::max<int64_t>(reference, 1));
  return std::abs(static_cast<double>(observed) - static_cast<double>(reference)) / ref;
}

RunResult RunSingle(const BugSpec& spec, int n, RunMode mode, uint64_t seed,
                    MemoStore* memo, OrderLog* record_log, const OrderLog* replay_log,
                    CalcOutputCache* cache) {
  Cluster::Options options;
  options.config = spec.MakeConfig(n, mode, seed);
  options.workload = spec.MakeWorkload(n);
  options.memo_store = memo;
  options.record_order_log = record_log;
  options.replay_order_log = replay_log;
  options.shared_output_cache = cache;
  Cluster cluster(std::move(options));
  return cluster.Run();
}

ScaleCheckRunner::ScaleCheckRunner(BugSpec spec, uint64_t seed)
    : spec_(std::move(spec)), seed_(seed) {}

RunResult ScaleCheckRunner::RunReal(int n) {
  return RunSingle(spec_, n, RunMode::kRealScale, seed_, nullptr, nullptr, nullptr,
                   &cache_);
}

RunResult ScaleCheckRunner::RunColo(int n) {
  return RunSingle(spec_, n, RunMode::kColocated, seed_, nullptr, nullptr, nullptr,
                   &cache_);
}

ScaleCheckResult ScaleCheckRunner::RunFull(int n) {
  ScaleCheckResult result;
  result.real = RunReal(n);
  result.colo = RunColo(n);

  MemoStore store;
  OrderLog order_log;
  result.memoize = RunSingle(spec_, n, RunMode::kMemoize, seed_, &store,
                             enforce_order_ ? &order_log : nullptr, nullptr, &cache_);
  result.replay = RunSingle(spec_, n, RunMode::kPilReplay, seed_, &store, nullptr,
                            enforce_order_ ? &order_log : nullptr, &cache_);
  result.memo = store.stats();
  result.replay_flap_error = RelativeFlapError(result.replay.flaps, result.real.flaps);
  result.colo_flap_error = RelativeFlapError(result.colo.flaps, result.real.flaps);
  return result;
}

}  // namespace scalecheck
