// Canonical CLI mode handling for scalecheck_cli.
//
// The CLI grew one mode spelling per feature (real/colo/memoize/replay/full/
// search, plus --repro as an implicit mode). This normalizes them to one
// enum with four values:
//
//   --mode=suite   simulation run(s); which deployments via --sim-modes=
//                  (default: all four, the Figure-3 comparison grid)
//   --mode=search  ChaosSearch over fault plans
//   --mode=repro   replay a search artifact (--repro=FILE)
//   --mode=real    REAL deployment: N in-process nodes on localhost TCP
//                  sockets and wall-clock timers (src/net/)
//
// Old spellings parse as deprecated aliases for one release (a stderr
// warning names the canonical form):  full -> suite;  colo / memoize /
// replay -> suite with a single --sim-modes entry;  real-scale / sim-real ->
// suite with the simulated real-scale deployment. NOTE: bare --mode=real
// changed meaning — it used to be the *simulated* real-scale deployment and
// now boots real sockets; the simulated one is --sim-modes=real.
//
// Kept in a library (not the CLI .cpp) so the mapping is unit-testable.

#ifndef SCALECHECK_SRC_SCALECHECK_CLI_MODES_H_
#define SCALECHECK_SRC_SCALECHECK_CLI_MODES_H_

#include <string>
#include <vector>

#include "src/cluster/config.h"
#include "src/common/result.h"

namespace scalecheck {

enum class CliModeKind : int {
  kSuite = 0,
  kSearch = 1,
  kRepro = 2,
  kReal = 3,
};

const char* CliModeKindName(CliModeKind kind);

struct ModeSelection {
  CliModeKind kind = CliModeKind::kSuite;
  // kSuite only: the simulated deployments to run, in request order.
  std::vector<RunMode> sim_modes;
  // The spelling was a deprecated alias; `canonical` holds the replacement
  // to suggest (e.g. "--mode=suite --sim-modes=colo").
  bool deprecated_alias = false;
  std::string canonical;

  // True when sim_modes is exactly the four-way comparison grid.
  bool IsFullGrid() const;
};

// One --sim-modes entry: real | real-scale | colo | memoize | replay.
Result<RunMode> SimModeFromFlag(const std::string& flag);

// Parses --mode (canonical or deprecated) plus the --sim-modes CSV.
// `sim_modes_csv` empty means the default grid; non-empty is only legal with
// --mode=suite (or an alias that maps to it, whose own selection wins).
Result<ModeSelection> ParseCliMode(const std::string& mode,
                                   const std::string& sim_modes_csv);

}  // namespace scalecheck

#endif  // SCALECHECK_SRC_SCALECHECK_CLI_MODES_H_
