#include "src/transport/substrate.h"

#include "src/common/check.h"

namespace scalecheck {

PeriodicClockTimer::PeriodicClockTimer(Clock* clock, VirtualDuration period,
                                       std::function<void()> fn)
    : clock_(clock), period_(period), fn_(std::move(fn)) {
  CHECK_NOTNULL(clock_);
  CHECK_GT(period.nanos(), 0);
}

PeriodicClockTimer::~PeriodicClockTimer() { Stop(); }

void PeriodicClockTimer::Start(VirtualDuration initial_delay) {
  Stop();
  armed_ = true;
  pending_ = clock_->ScheduleAfter(initial_delay, [this] { Fire(); });
}

void PeriodicClockTimer::Stop() {
  if (pending_ != kInvalidTimer) {
    clock_->CancelTimer(pending_);
    pending_ = kInvalidTimer;
  }
  armed_ = false;
}

void PeriodicClockTimer::Fire() {
  pending_ = kInvalidTimer;
  if (!armed_) {
    return;
  }
  // Re-arm before invoking so fn may Stop() the timer.
  pending_ = clock_->ScheduleAfter(period_, [this] { Fire(); });
  fn_();
}

}  // namespace scalecheck
