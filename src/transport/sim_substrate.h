// Simulated carrier: the substrate seam implemented over the deterministic
// Simulator + NetworkModel + SimThread.
//
// These adapters are deliberately trivial — every call forwards 1:1 to the
// object the protocol code used to call directly, so the event stream, RNG
// draws, message ids and per-pair sequence numbers are bit-identical to the
// pre-seam code. That is the determinism contract the sim golden test
// (tests/sim_golden_test.cc) pins: refactoring the protocol onto the seam
// must not change a single byte of a pinned (spec, seed) RunResult JSON.
//
// SimTransport can optionally round-trip every payload through the shared
// wire codec (encode → decode → deliver the decoded copy). The conformance
// suite uses this to prove that the bytes TcpTransport would put on a socket
// reconstruct payloads the protocol cannot distinguish from the originals.
// It is off by default: the zero-copy pointer hand-off is part of the
// simulator's measured-cost model (serialization cost is charged explicitly
// by the Gossiper work estimates, not burned for real).

#ifndef SCALECHECK_SRC_TRANSPORT_SIM_SUBSTRATE_H_
#define SCALECHECK_SRC_TRANSPORT_SIM_SUBSTRATE_H_

#include <memory>
#include <utility>

#include "src/sim/network.h"
#include "src/sim/simulator.h"
#include "src/sim/thread.h"
#include "src/transport/substrate.h"

namespace scalecheck {

class SimClock final : public Clock {
 public:
  explicit SimClock(Simulator* sim);

  VirtualTime Now() const override { return sim_->Now(); }
  TimerId ScheduleAfter(VirtualDuration d, EventFn fn) override {
    return sim_->ScheduleAfter(d, std::move(fn));
  }
  bool CancelTimer(TimerId id) override { return sim_->Cancel(id); }

 private:
  Simulator* sim_;
};

class SimTransport final : public Transport {
 public:
  struct Options {
    // Encode + decode every payload through src/net/wire.h and deliver the
    // reconstructed copy. Conformance-test only (see file comment).
    bool roundtrip_codec = false;
  };

  explicit SimTransport(NetworkModel* network);
  SimTransport(NetworkModel* network, Options options);

  void RegisterNode(NodeId node, Handler handler) override {
    network_->RegisterNode(node, std::move(handler));
  }
  void UnregisterNode(NodeId node) override { network_->UnregisterNode(node); }
  uint64_t Send(NodeId from, NodeId to, int type,
                std::shared_ptr<const Payload> payload) override;

  uint64_t codec_roundtrips() const { return codec_roundtrips_; }

 private:
  NetworkModel* network_;
  Options options_;
  uint64_t codec_roundtrips_ = 0;
};

// Maps Stage::Submit onto the node's SimThread as the canonical three-step
// replica job: Run(op → work), Compute(work), Run(done) — exactly the job
// shape the pre-seam KvService built by hand, so virtual-time charging is
// unchanged.
class SimStage final : public Stage {
 public:
  explicit SimStage(SimThread* thread);

  void Submit(const char* label, std::function<WorkUnits()> op,
              std::function<void()> done) override;

 private:
  SimThread* thread_;
};

}  // namespace scalecheck

#endif  // SCALECHECK_SRC_TRANSPORT_SIM_SUBSTRATE_H_
