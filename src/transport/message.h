// Framed messages exchanged between nodes — the data half of the substrate
// seam (src/transport/substrate.h).
//
// Message/Payload used to live in src/sim/network.h; they moved below the
// simulator so the identical protocol code (Gossiper, ring maintenance,
// KvService) can run over either carrier: the deterministic NetworkModel or
// the real localhost TCP transport in src/net/. A Payload is an in-memory
// representation; the single wire codec (src/net/wire.h) defines how each
// payload type serializes when a carrier actually needs bytes.

#ifndef SCALECHECK_SRC_TRANSPORT_MESSAGE_H_
#define SCALECHECK_SRC_TRANSPORT_MESSAGE_H_

#include <cstddef>
#include <cstdint>
#include <memory>

#include "src/common/types.h"

namespace scalecheck {

// Base class for message payloads; modules derive their own payload types.
struct Payload {
  virtual ~Payload() = default;
  // Approximate wire size, for traffic statistics.
  virtual size_t SizeBytes() const { return 64; }
};

struct Message {
  uint64_t id = 0;  // globally unique, deterministic (assigned at send)
  NodeId from = kInvalidNode;
  NodeId to = kInvalidNode;
  int type = 0;  // application-defined discriminator
  // Per-(from, to, type) send counter. Stable across runs that send the same
  // logical message stream — the key the PIL order log records and enforces.
  uint64_t pair_seq = 0;
  std::shared_ptr<const Payload> payload;
  VirtualTime sent_at;
};

}  // namespace scalecheck

#endif  // SCALECHECK_SRC_TRANSPORT_MESSAGE_H_
