#include "src/transport/sim_substrate.h"

#include "src/common/check.h"
#include "src/common/logging.h"
#include "src/net/wire.h"

namespace scalecheck {

SimClock::SimClock(Simulator* sim) : sim_(sim) { CHECK_NOTNULL(sim); }

SimTransport::SimTransport(NetworkModel* network)
    : SimTransport(network, Options{}) {}

SimTransport::SimTransport(NetworkModel* network, Options options)
    : network_(network), options_(options) {
  CHECK_NOTNULL(network);
}

uint64_t SimTransport::Send(NodeId from, NodeId to, int type,
                            std::shared_ptr<const Payload> payload) {
  if (options_.roundtrip_codec) {
    // Prove the shared codec reconstructs this payload: what TcpTransport
    // would frame onto the socket, delivered instead of the original.
    Message msg;
    msg.from = from;
    msg.to = to;
    msg.type = type;
    msg.payload = std::move(payload);
    Result<Message> decoded = wire::DecodeMessage(wire::EncodeMessage(msg));
    if (!decoded.ok()) {
      SC_LOG(Error) << "sim codec roundtrip failed for type " << type << ": "
                    << decoded.status().ToString();
      return 0;
    }
    ++codec_roundtrips_;
    payload = decoded.value().payload;
  }
  return network_->Send(from, to, type, std::move(payload));
}

SimStage::SimStage(SimThread* thread) : thread_(thread) { CHECK_NOTNULL(thread); }

void SimStage::Submit(const char* label, std::function<WorkUnits()> op,
                      std::function<void()> done) {
  Job job(label);
  auto work = std::make_shared<WorkUnits>(0);
  job.Run([op = std::move(op), work] { *work = op(); })
      .Compute([work] { return *work; })
      .Run(std::move(done));
  thread_->Enqueue(std::move(job));
}

}  // namespace scalecheck
