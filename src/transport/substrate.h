// The substrate seam: the narrow API protocol code is allowed to touch.
//
// Everything above this seam — Gossiper, FailureDetector, ring maintenance,
// KvService, and the node wiring that drives them — speaks only to these
// three interfaces:
//
//   Transport  send/receive of framed messages between endpoints
//   Clock      now / schedule / cancel (and the periodic timer built on it)
//   Stage      a single-threaded executor that charges replica CPU work
//
// Everything below the seam is a carrier. Two exist:
//
//   SimTransport/SimClock/SimStage (src/transport/sim_substrate.h): thin
//     adapters over the deterministic Simulator + NetworkModel + SimThread.
//     Byte-identical to the pre-seam direct calls — every Schedule/Send
//     forwards 1:1, so event ids, RNG streams, memoize/replay and ChaosSearch
//     behavior are unchanged (tests/sim_golden_test.cc pins this).
//
//   TcpTransport/RealClock/RealStage (src/net/): a threaded localhost TCP
//     carrier with real sockets and real wall-clock timers. The same protocol
//     translation units link against it unmodified — that is the whole point.
//
// Times above the seam are VirtualTime in both modes: the simulator's virtual
// clock, or the real steady clock re-based to the run's start. Protocol code
// cannot tell the difference, which is exactly the property that makes the
// phi failure detector, retry deadlines, and hybrid KV timestamps carry over.

#ifndef SCALECHECK_SRC_TRANSPORT_SUBSTRATE_H_
#define SCALECHECK_SRC_TRANSPORT_SUBSTRATE_H_

#include <cstdint>
#include <functional>
#include <memory>

#include "src/common/event_fn.h"
#include "src/common/types.h"
#include "src/transport/message.h"

namespace scalecheck {

// Identifies a pending timer. In sim mode this is the simulator's EventId
// (both are dense uint64 handles with 0 invalid), so SimClock forwards
// without translation.
using TimerId = uint64_t;
inline constexpr TimerId kInvalidTimer = 0;

// Scheduling and time. Implementations fire callbacks one at a time from the
// carrier's execution context (the simulator event loop, or the real timer
// thread); callers needing mutual exclusion with message handlers wrap the
// clock (see SerializedClock in src/net/real_clock.h).
class Clock {
 public:
  virtual ~Clock() = default;

  virtual VirtualTime Now() const = 0;

  // Schedules fn after a non-negative delay; returns an id for CancelTimer.
  virtual TimerId ScheduleAfter(VirtualDuration d, EventFn fn) = 0;

  // Cancels a pending timer; returns false if it already fired (or never
  // existed). After a true return the callback will not run.
  virtual bool CancelTimer(TimerId id) = 0;
};

// Message transport between endpoints. Delivery is FIFO per (sender,
// receiver) pair — TCP connection semantics, which the simulated carrier
// models with a monotone per-pair delivery clamp and the real carrier gets
// from an actual per-pair TCP connection. Messages to an unregistered
// endpoint are dropped (crashed process / connection refused).
class Transport {
 public:
  using Handler = std::function<void(const Message&)>;

  virtual ~Transport() = default;

  virtual void RegisterNode(NodeId node, Handler handler) = 0;
  virtual void UnregisterNode(NodeId node) = 0;

  // Sends a framed message; returns its id (0 if dropped at send time).
  virtual uint64_t Send(NodeId from, NodeId to, int type,
                        std::shared_ptr<const Payload> payload) = 0;
};

// A single-threaded replica-work executor: runs `op` (which returns the CPU
// work it performed), charges that work to the carrier's notion of CPU, then
// runs `done`. Sim mode maps this onto a SimThread Job (Run/Compute/Run —
// the virtual CPU model stretches the burst under colocation contention);
// real mode executes inline, where the work is charged by physics.
class Stage {
 public:
  virtual ~Stage() = default;

  virtual void Submit(const char* label, std::function<WorkUnits()> op,
                      std::function<void()> done) = 0;
};

// A repeating timer over the Clock seam: fires fn every `period` starting
// after `initial_delay`. Semantically identical to the simulator's
// PeriodicTimer (re-arms before invoking, so fn may Stop() it); over SimClock
// it schedules the exact same event stream.
class PeriodicClockTimer {
 public:
  PeriodicClockTimer(Clock* clock, VirtualDuration period, std::function<void()> fn);
  ~PeriodicClockTimer();
  PeriodicClockTimer(const PeriodicClockTimer&) = delete;
  PeriodicClockTimer& operator=(const PeriodicClockTimer&) = delete;

  // Starts (or restarts) the timer; first firing after `initial_delay`.
  void Start(VirtualDuration initial_delay);
  void Stop();
  bool armed() const { return armed_; }

 private:
  void Fire();

  Clock* clock_;
  VirtualDuration period_;
  std::function<void()> fn_;
  TimerId pending_ = kInvalidTimer;
  bool armed_ = false;
};

}  // namespace scalecheck

#endif  // SCALECHECK_SRC_TRANSPORT_SUBSTRATE_H_
