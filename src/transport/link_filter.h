// Carrier-neutral per-link fault seam.
//
// FaultInjector drives partitions and link degradation through this
// interface so one FaultPlan means the same thing on both carriers: the
// simulated NetworkModel consults the filter at send time and models
// loss/latency in virtual time; the real-socket TcpTransport consults it at
// send time and additionally severs established connections when a
// partition lands (a blocked frame on a live TCP stream would otherwise
// just buffer). Latency injection is a sim-only capability — the TCP
// carrier documents and ignores `extra_latency`.

#ifndef SCALECHECK_SRC_TRANSPORT_LINK_FILTER_H_
#define SCALECHECK_SRC_TRANSPORT_LINK_FILTER_H_

#include <functional>

#include "src/common/types.h"

namespace scalecheck {

// Per-link fault state consulted on every Send. `blocked` drops
// deterministically (a hard partition); `extra_loss` adds to the carrier's
// loss probability; `extra_latency` delays delivery where the carrier can
// model it.
struct LinkFault {
  bool blocked = false;
  double extra_loss = 0.0;
  VirtualDuration extra_latency;
};

using LinkFilterFn = std::function<LinkFault(NodeId from, NodeId to)>;

// Implemented by each carrier (NetworkModel, TcpTransport).
class LinkFilterHost {
 public:
  virtual ~LinkFilterHost() = default;

  // Installs (or clears, with nullptr) the filter consulted at send time.
  // Real carriers may call the filter from many sender threads concurrently;
  // the installed function must be safe to invoke that way.
  virtual void SetLinkFilter(LinkFilterFn filter) = 0;

  // A partition covering `node` was just applied: tear down any established
  // transport state touching it so in-flight connections fail fast instead
  // of riding out the fault. No-op for carriers without connection state.
  virtual void SeverConnsTo(NodeId node) {}
};

}  // namespace scalecheck

#endif  // SCALECHECK_SRC_TRANSPORT_LINK_FILTER_H_
