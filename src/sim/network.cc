#include "src/sim/network.h"

#include <algorithm>
#include <utility>

#include "src/common/check.h"

namespace scalecheck {

NetworkModel::NetworkModel(Simulator* sim, const Config& config, uint64_t seed)
    : sim_(sim), config_(config), rng_(seed) {
  CHECK_NOTNULL(sim);
  CHECK_GE(config.loss_probability, 0.0);
  CHECK_LE(config.loss_probability, 1.0);
}

void NetworkModel::RegisterNode(NodeId node, Handler handler) {
  CHECK(handler != nullptr);
  handlers_[node] = std::move(handler);
}

void NetworkModel::UnregisterNode(NodeId node) { handlers_.erase(node); }

VirtualDuration NetworkModel::SampleLatency(NodeId from, NodeId to) {
  bool local = same_machine_ && same_machine_(from, to);
  if (local) {
    return config_.loopback_latency;
  }
  double jitter_s = rng_.Exponential(config_.jitter_mean.seconds());
  return config_.base_latency + VirtualDuration::FromSecondsF(jitter_s);
}

uint64_t NetworkModel::Send(NodeId from, NodeId to, int type,
                            std::shared_ptr<const Payload> payload) {
  CHECK(payload != nullptr);
  ++sent_;
  bytes_ += payload->SizeBytes();
  LinkFault fault;
  if (link_filter_) {
    fault = link_filter_(from, to);
  }
  if (fault.blocked) {
    // Hard partition: deterministic drop, no RNG consumed (so fault-free
    // links see an identical random stream whether or not a partition is
    // active elsewhere).
    ++dropped_;
    ++blocked_;
    return 0;
  }
  double loss = std::min(1.0, config_.loss_probability + fault.extra_loss);
  if (loss > 0.0 && rng_.Bernoulli(loss)) {
    ++dropped_;
    return 0;
  }
  uint64_t pair_key = (static_cast<uint64_t>(static_cast<uint32_t>(from)) << 32) |
                      static_cast<uint32_t>(to);
  Message msg;
  msg.id = next_id_++;
  msg.from = from;
  msg.to = to;
  msg.type = type;
  msg.pair_seq = ++pair_seq_[pair_key][type];
  msg.payload = std::move(payload);
  msg.sent_at = sim_->Now();

  VirtualTime deliver_at = sim_->Now() + SampleLatency(from, to) + fault.extra_latency;
  // FIFO per sender->receiver pair: never deliver before an earlier message
  // on the same pair.
  auto it = last_delivery_.find(pair_key);
  if (it != last_delivery_.end() && deliver_at <= it->second) {
    deliver_at = it->second + VirtualDuration::Nanos(1);
  }
  last_delivery_[pair_key] = deliver_at;

  sim_->ScheduleAt(deliver_at, [this, msg = std::move(msg)] {
    auto handler_it = handlers_.find(msg.to);
    if (handler_it == handlers_.end()) {
      ++dropped_;  // receiver crashed or decommissioned
      return;
    }
    ++delivered_;
    handler_it->second(msg);
  });
  return msg.id;
}

}  // namespace scalecheck
