// Machine memory accounting.
//
// §6 of the paper observes that colocation hits memory exhaustion before CPU
// saturation when per-process runtime overhead (~70 MB for a JVM) and
// space-oblivious allocations (the rebalance protocol's (N-1)*P*1.3MB
// over-allocation) are multiplied by the colocation factor. This model tracks
// tagged allocations per node against a machine capacity and reports OOM
// through a callback so the cluster can crash the offending node — exactly the
// "nodes receive out-of-memory exceptions and crash" symptom from §8.

#ifndef SCALECHECK_SRC_SIM_MEMORY_MODEL_H_
#define SCALECHECK_SRC_SIM_MEMORY_MODEL_H_

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>

#include "src/common/types.h"

namespace scalecheck {

class MemoryModel {
 public:
  struct Config {
    int64_t capacity_bytes = 32LL * 1024 * 1024 * 1024;  // 32 GB, the Nome machine
  };

  // Called with the node whose allocation crossed the capacity line.
  using OomHandler = std::function<void(NodeId, int64_t attempted_bytes)>;

  explicit MemoryModel(const Config& config) : config_(config) {}

  void set_oom_handler(OomHandler handler) { oom_handler_ = std::move(handler); }

  // Charges `bytes` to (node, tag). If the machine total would exceed
  // capacity, the allocation is still recorded (the process dies with the
  // memory committed), the OOM handler fires, and false is returned.
  bool Allocate(NodeId node, const std::string& tag, int64_t bytes);

  // Releases a previous allocation; releasing more than allocated is a bug.
  void Release(NodeId node, const std::string& tag, int64_t bytes);

  // Releases whatever is currently charged to (node, tag) and returns the
  // bytes freed (0 if nothing is charged). Idempotent — used by the fault
  // injector to heal memory-pressure ballast that may already have vanished
  // through a crash's ReleaseAll.
  int64_t ReleaseTag(NodeId node, const std::string& tag);

  // Releases everything owned by a node (process exit).
  void ReleaseAll(NodeId node);

  int64_t used_bytes() const { return used_; }
  int64_t peak_bytes() const { return peak_; }
  int64_t capacity_bytes() const { return config_.capacity_bytes; }
  int64_t NodeUsage(NodeId node) const;
  bool oom_observed() const { return oom_observed_; }

  // Fraction of capacity still free, in [0, 1]. 0 when at/over capacity —
  // the fidelity guard budgets on this headroom rather than raw bytes so the
  // same budget works across machine specs.
  double HeadroomFraction() const {
    if (config_.capacity_bytes <= 0 || used_ >= config_.capacity_bytes) {
      return 0.0;
    }
    return 1.0 - static_cast<double>(used_) /
                     static_cast<double>(config_.capacity_bytes);
  }

 private:
  Config config_;
  OomHandler oom_handler_;
  int64_t used_ = 0;
  int64_t peak_ = 0;
  bool oom_observed_ = false;
  // node -> tag -> bytes
  std::unordered_map<NodeId, std::unordered_map<std::string, int64_t>> by_node_;
};

}  // namespace scalecheck

#endif  // SCALECHECK_SRC_SIM_MEMORY_MODEL_H_
