#include "src/sim/trace.h"

#include "src/common/strings.h"

namespace scalecheck {

const char* TraceKindName(TraceKind kind) {
  switch (kind) {
    case TraceKind::kMessageSent:
      return "send";
    case TraceKind::kMessageDelivered:
      return "recv";
    case TraceKind::kStatusChange:
      return "status";
    case TraceKind::kConviction:
      return "convict";
    case TraceKind::kRescue:
      return "rescue";
    case TraceKind::kCalcStart:
      return "calc-start";
    case TraceKind::kCalcDone:
      return "calc-done";
    case TraceKind::kNodeCrash:
      return "crash";
    case TraceKind::kCustom:
      return "custom";
    case TraceKind::kNodeRestart:
      return "restart";
    case TraceKind::kFaultInjected:
      return "fault";
    case TraceKind::kFaultHealed:
      return "heal";
  }
  return "?";
}

std::string TraceEntry::ToString() const {
  std::string out = StrFormat("%-12s %-10s n%d", time.ToString().c_str(),
                              TraceKindName(kind), node);
  if (peer != kInvalidNode) {
    out += StrFormat(" -> n%d", peer);
  }
  if (detail != 0) {
    out += StrFormat(" [%lld]", static_cast<long long>(detail));
  }
  if (!note.empty()) {
    out += " " + note;
  }
  return out;
}

void TraceRecorder::Record(VirtualTime time, TraceKind kind, NodeId node, NodeId peer,
                           int64_t detail, std::string note) {
  digest_.Add(time.nanos());
  digest_.Add(static_cast<int64_t>(kind));
  digest_.Add(static_cast<int64_t>(node));
  digest_.Add(static_cast<int64_t>(peer));
  digest_.Add(detail);
  ++total_;
  tail_.push_back(TraceEntry{time, kind, node, peer, detail, std::move(note)});
  if (tail_.size() > tail_capacity_) {
    tail_.pop_front();
  }
}

std::vector<TraceEntry> TraceRecorder::Tail() const {
  return std::vector<TraceEntry>(tail_.begin(), tail_.end());
}

std::string TraceRecorder::DumpTail(size_t n) const {
  std::string out;
  size_t start = tail_.size() > n ? tail_.size() - n : 0;
  for (size_t i = start; i < tail_.size(); ++i) {
    out += tail_[i].ToString() + "\n";
  }
  return out;
}

void TraceRecorder::Clear() {
  tail_.clear();
  digest_ = Digest();
  total_ = 0;
}

}  // namespace scalecheck
