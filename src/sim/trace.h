// Execution tracing.
//
// Two purposes, both from Figure 2's workflow:
//  - determinism checking: a run's trace digest is a content hash over every
//    recorded event; two runs with equal configuration must produce equal
//    digests (the property the whole memoize/replay scheme leans on);
//  - debugging: step f© — "the developers can add more logs to debug the
//    code ... and replay again". The recorder keeps a bounded tail of
//    human-readable entries that examples/tests can dump.

#ifndef SCALECHECK_SRC_SIM_TRACE_H_
#define SCALECHECK_SRC_SIM_TRACE_H_

#include <deque>
#include <string>
#include <vector>

#include "src/common/hash.h"
#include "src/common/types.h"

namespace scalecheck {

enum class TraceKind : int {
  kMessageSent = 0,
  kMessageDelivered = 1,
  kStatusChange = 2,
  kConviction = 3,
  kRescue = 4,
  kCalcStart = 5,
  kCalcDone = 6,
  kNodeCrash = 7,
  kCustom = 8,
  kNodeRestart = 9,
  kFaultInjected = 10,
  kFaultHealed = 11,
};

const char* TraceKindName(TraceKind kind);

struct TraceEntry {
  VirtualTime time;
  TraceKind kind = TraceKind::kCustom;
  NodeId node = kInvalidNode;
  NodeId peer = kInvalidNode;
  int64_t detail = 0;
  std::string note;  // only kept for the bounded tail

  std::string ToString() const;
};

class TraceRecorder {
 public:
  // `tail_capacity`: how many full entries to keep for dumping; the digest
  // always covers every recorded event regardless.
  explicit TraceRecorder(size_t tail_capacity = 4096)
      : tail_capacity_(tail_capacity) {}

  void Record(VirtualTime time, TraceKind kind, NodeId node, NodeId peer = kInvalidNode,
              int64_t detail = 0, std::string note = "");

  // Content hash of the full event stream so far.
  DigestValue ComputeDigest() const { return digest_.Finish(); }
  uint64_t total_events() const { return total_; }

  // The retained tail, oldest first.
  std::vector<TraceEntry> Tail() const;
  // Renders the last `n` entries.
  std::string DumpTail(size_t n = 50) const;

  void Clear();

 private:
  size_t tail_capacity_;
  std::deque<TraceEntry> tail_;
  Digest digest_;
  uint64_t total_ = 0;
};

}  // namespace scalecheck

#endif  // SCALECHECK_SRC_SIM_TRACE_H_
