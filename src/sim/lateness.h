// Event-lateness tracking.
//
// §8 lists "high event lateness (queuing delays from thread context
// switching)" as one of the three colocation limits. A periodic activity (a
// gossip round, a failure-detector sweep) is *late* when it actually starts
// executing after its intended instant. We record the distribution of
// (actual_start - intended) across all tracked activities on a machine.

#ifndef SCALECHECK_SRC_SIM_LATENESS_H_
#define SCALECHECK_SRC_SIM_LATENESS_H_

#include "src/common/stats.h"
#include "src/common/types.h"

namespace scalecheck {

class LatenessTracker {
 public:
  LatenessTracker() : histogram_(/*base=*/1e5, /*growth=*/1.6, /*num_buckets=*/72) {}

  void Record(VirtualTime intended, VirtualTime actual) {
    VirtualDuration late = actual - intended;
    if (late.IsNegative()) {
      late = VirtualDuration::Zero();
    }
    histogram_.AddDuration(late);
  }

  VirtualDuration p50() const { return histogram_.PercentileDuration(50); }
  VirtualDuration p99() const { return histogram_.PercentileDuration(99); }
  VirtualDuration max() const {
    return VirtualDuration::Nanos(static_cast<int64_t>(histogram_.max_value()));
  }
  VirtualDuration mean() const {
    return VirtualDuration::Nanos(static_cast<int64_t>(histogram_.mean()));
  }
  int64_t count() const { return histogram_.count(); }

 private:
  LogHistogram histogram_;
};

}  // namespace scalecheck

#endif  // SCALECHECK_SRC_SIM_LATENESS_H_
