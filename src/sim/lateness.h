// Event-lateness tracking.
//
// §8 lists "high event lateness (queuing delays from thread context
// switching)" as one of the three colocation limits. A periodic activity (a
// gossip round, a failure-detector sweep) is *late* when it actually starts
// executing after its intended instant. We record the distribution of
// (actual_start - intended) across all tracked activities on a machine.

#ifndef SCALECHECK_SRC_SIM_LATENESS_H_
#define SCALECHECK_SRC_SIM_LATENESS_H_

#include "src/common/stats.h"
#include "src/common/types.h"

namespace scalecheck {

class LatenessTracker {
 public:
  LatenessTracker() : histogram_(/*base=*/1e5, /*growth=*/1.6, /*num_buckets=*/72) {}

  void Record(VirtualTime intended, VirtualTime actual) {
    VirtualDuration late = actual - intended;
    if (late.IsNegative()) {
      // An early start is not lateness, but folding it silently into the
      // zero bucket hides scheduling anomalies from the fidelity guard.
      // Count it separately and record the sample as on-time.
      ++early_count_;
      if (-late > max_early_) {
        max_early_ = -late;
      }
      late = VirtualDuration::Zero();
    }
    histogram_.AddDuration(late);
  }

  VirtualDuration p50() const { return histogram_.PercentileDuration(50); }
  VirtualDuration p99() const { return histogram_.PercentileDuration(99); }
  VirtualDuration max() const {
    return VirtualDuration::Nanos(static_cast<int64_t>(histogram_.max_value()));
  }
  VirtualDuration mean() const {
    return VirtualDuration::Nanos(static_cast<int64_t>(histogram_.mean()));
  }
  int64_t count() const { return histogram_.count(); }

  // Number of samples that started *before* their intended instant (clamped
  // to zero in the histogram), and the largest such negative delta.
  int64_t early_count() const { return early_count_; }
  VirtualDuration max_early() const { return max_early_; }

 private:
  LogHistogram histogram_;
  int64_t early_count_ = 0;
  VirtualDuration max_early_ = VirtualDuration::Zero();
};

}  // namespace scalecheck

#endif  // SCALECHECK_SRC_SIM_LATENESS_H_
