// Forwarding shim: EventFn moved to src/common/event_fn.h so the transport
// seam (src/transport/substrate.h) can use it without depending on src/sim.
// Kept so existing includes — and the mental model that the simulator's event
// callbacks are EventFns — stay valid.

#ifndef SCALECHECK_SRC_SIM_EVENT_FN_H_
#define SCALECHECK_SRC_SIM_EVENT_FN_H_

#include "src/common/event_fn.h"  // IWYU pragma: export

#endif  // SCALECHECK_SRC_SIM_EVENT_FN_H_
