// Recycling pool for network payload objects.
//
// Gossip sends three payloads per exchange, and the SYN digest vector alone
// is O(N); allocating fresh vectors every round dominates the allocator at
// large N. PayloadPool hands out shared_ptr<T> whose deleter Clear()s the
// object and parks it on a free list instead of destroying it, so the
// payload's internal buffers (vector capacity in particular) are reused by
// the next send. The pool state is itself shared-ptr-owned, so payloads in
// flight may safely outlive the pool (and its node — e.g. across a crash).
//
// Single-threaded by design: each pool belongs to one simulated node inside
// one simulator, and simulator runs never share payloads across host threads.

#ifndef SCALECHECK_SRC_SIM_PAYLOAD_POOL_H_
#define SCALECHECK_SRC_SIM_PAYLOAD_POOL_H_

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

namespace scalecheck {

template <typename T>
class PayloadPool {
 public:
  // Bounds the parked-object list; beyond this, returned payloads are simply
  // destroyed. A node has at most a handful of exchanges in flight.
  static constexpr size_t kMaxParked = 16;

  PayloadPool() : state_(std::make_shared<State>()) {}

  // Returns a cleared T. The pointer behaves like any shared_ptr<T>; when
  // the last reference drops, the object is recycled into this pool.
  std::shared_ptr<T> Acquire() {
    std::unique_ptr<T> obj;
    if (!state_->parked.empty()) {
      obj = std::move(state_->parked.back());
      state_->parked.pop_back();
      ++state_->reuses;
    } else {
      obj = std::make_unique<T>();
      ++state_->allocs;
    }
    T* raw = obj.release();
    return std::shared_ptr<T>(raw, Recycler{state_});
  }

  uint64_t reuses() const { return state_->reuses; }
  uint64_t allocs() const { return state_->allocs; }

 private:
  struct State {
    std::vector<std::unique_ptr<T>> parked;
    uint64_t reuses = 0;
    uint64_t allocs = 0;
  };

  struct Recycler {
    std::shared_ptr<State> state;
    void operator()(T* obj) const {
      if (state->parked.size() < kMaxParked) {
        obj->Clear();
        state->parked.emplace_back(obj);
      } else {
        delete obj;
      }
    }
  };

  std::shared_ptr<State> state_;
};

}  // namespace scalecheck

#endif  // SCALECHECK_SRC_SIM_PAYLOAD_POOL_H_
