#include "src/sim/profiler.h"

namespace scalecheck {

void SimProfiler::Counters::WriteJson(JsonWriter* w) const {
  w->BeginObject();
  w->Field("events_executed", events_executed);
  w->Field("events_cancelled", events_cancelled);
  w->Field("event_slot_high_water", event_slot_high_water);
  w->Field("messages_sent", messages_sent);
  w->Field("gossip_syn_handled", gossip_syn_handled);
  w->Field("gossip_states_applied", gossip_states_applied);
  w->Field("gossip_updates_applied", gossip_updates_applied);
  w->Field("digest_builds", digest_builds);
  w->Field("digest_entries_refreshed", digest_entries_refreshed);
  w->Field("digest_full_rebuilds", digest_full_rebuilds);
  w->Field("payload_reuses", payload_reuses);
  w->Field("payload_allocs", payload_allocs);
  w->Field("gossip_digest_bytes_sent", gossip_digest_bytes_sent);
  w->Field("gossip_arena_bytes", gossip_arena_bytes);
  w->Field("endpoint_store_bytes", endpoint_store_bytes);
  w->Field("intern_table_size", intern_table_size);
  w->Field("intern_table_bytes", intern_table_bytes);
  w->EndObject();
}

std::string SimProfiler::ToJson() const {
  JsonWriter w;
  w.BeginObject();
  w.Key("counters");
  counters_.WriteJson(&w);
  w.Key("wall_ns").BeginObject();
  w.Field("build", wall_ns_[kPhaseBuild]);
  w.Field("run", wall_ns_[kPhaseRun]);
  w.Field("collect", wall_ns_[kPhaseCollect]);
  w.EndObject();
  w.EndObject();
  return w.str();
}

}  // namespace scalecheck
