#include "src/sim/sync.h"

#include <utility>

#include "src/common/check.h"

namespace scalecheck {

void SimMutex::Acquire(std::function<void()> granted) {
  if (!locked_) {
    Grant(std::move(granted), sim_->Now());
    return;
  }
  waiters_.push_back(Waiter{std::move(granted), sim_->Now()});
}

void SimMutex::Grant(std::function<void()> granted, VirtualTime enqueued) {
  CHECK(!locked_);
  locked_ = true;
  acquired_at_ = sim_->Now();
  wait_seconds_.Add((sim_->Now() - enqueued).seconds());
  granted();
}

void SimMutex::Release() {
  CHECK(locked_) << "release of unheld mutex" << name_;
  hold_seconds_.Add((sim_->Now() - acquired_at_).seconds());
  locked_ = false;
  ScheduleGrant();
}

void SimMutex::ScheduleGrant() {
  if (waiters_.empty()) {
    return;
  }
  Waiter next = std::move(waiters_.front());
  waiters_.pop_front();
  // Grant through the event queue so deep lock-convoy chains do not recurse.
  // The captured epoch invalidates the grant if the mutex is crash-reset
  // between scheduling and firing.
  uint64_t epoch = epoch_;
  sim_->ScheduleAfter(VirtualDuration::Zero(),
                      [this, epoch, next = std::move(next)]() mutable {
                        if (epoch != epoch_) {
                          return;  // mutex was reset by a crash in between
                        }
                        if (locked_) {
                          // Someone acquired in between (barged); requeue at
                          // the front to preserve FIFO fairness.
                          waiters_.push_front(std::move(next));
                          return;
                        }
                        Grant(std::move(next.granted), next.enqueued);
                      });
}

void SimMutex::ResetForCrash() {
  ++epoch_;
  if (locked_) {
    ++crash_releases_;
    hold_seconds_.Add((sim_->Now() - acquired_at_).seconds());
    locked_ = false;
  }
  // Waiters belong to the dead node's threads; their grant closures would be
  // stale no-ops anyway, so drop them rather than granting into the void.
  waiters_.clear();
}

}  // namespace scalecheck
