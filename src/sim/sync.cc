#include "src/sim/sync.h"

#include <utility>

#include "src/common/check.h"

namespace scalecheck {

void SimMutex::Acquire(std::function<void()> granted) {
  if (!locked_) {
    Grant(std::move(granted), sim_->Now());
    return;
  }
  waiters_.push_back(Waiter{std::move(granted), sim_->Now()});
}

void SimMutex::Grant(std::function<void()> granted, VirtualTime enqueued) {
  CHECK(!locked_);
  locked_ = true;
  acquired_at_ = sim_->Now();
  wait_seconds_.Add((sim_->Now() - enqueued).seconds());
  granted();
}

void SimMutex::Release() {
  CHECK(locked_) << "release of unheld mutex" << name_;
  hold_seconds_.Add((sim_->Now() - acquired_at_).seconds());
  locked_ = false;
  if (waiters_.empty()) {
    return;
  }
  Waiter next = std::move(waiters_.front());
  waiters_.pop_front();
  // Grant through the event queue so deep lock-convoy chains do not recurse.
  sim_->ScheduleAfter(VirtualDuration::Zero(),
                      [this, next = std::move(next)]() mutable {
                        if (locked_) {
                          // Someone acquired in between (barged); requeue at
                          // the front to preserve FIFO fairness.
                          waiters_.push_front(std::move(next));
                          return;
                        }
                        Grant(std::move(next.granted), next.enqueued);
                      });
}

}  // namespace scalecheck
