#include "src/sim/thread.h"

#include <utility>

#include "src/common/check.h"

namespace scalecheck {

Job& Job::Run(std::function<void()> fn) {
  Step s;
  s.kind = StepKind::kRun;
  s.run = std::move(fn);
  steps_.push_back(std::move(s));
  return *this;
}

Job& Job::Compute(WorkUnits work) {
  return Compute([work] { return work; });
}

Job& Job::Compute(std::function<WorkUnits()> work_fn) {
  Step s;
  s.kind = StepKind::kCompute;
  s.work = std::move(work_fn);
  steps_.push_back(std::move(s));
  return *this;
}

Job& Job::Sleep(VirtualDuration d) {
  return Sleep([d] { return d; });
}

Job& Job::Sleep(std::function<VirtualDuration()> d_fn) {
  Step s;
  s.kind = StepKind::kSleep;
  s.duration = std::move(d_fn);
  steps_.push_back(std::move(s));
  return *this;
}

Job& Job::Lock(SimMutex* mutex) {
  CHECK_NOTNULL(mutex);
  Step s;
  s.kind = StepKind::kLock;
  s.mutex = mutex;
  steps_.push_back(std::move(s));
  return *this;
}

Job& Job::Unlock(SimMutex* mutex) {
  CHECK_NOTNULL(mutex);
  Step s;
  s.kind = StepKind::kUnlock;
  s.mutex = mutex;
  steps_.push_back(std::move(s));
  return *this;
}

Job& Job::Async(std::function<void(std::function<void()>)> fn) {
  Step s;
  s.kind = StepKind::kAsync;
  s.async = std::move(fn);
  steps_.push_back(std::move(s));
  return *this;
}

SimThread::SimThread(Simulator* sim, Machine* machine, std::string name)
    : sim_(sim), machine_(machine), name_(std::move(name)) {
  CHECK_NOTNULL(sim);
  CHECK_NOTNULL(machine);
}

SimThread::~SimThread() { Kill(); }

void SimThread::Enqueue(Job job) {
  if (dead_) {
    return;
  }
  if (!job.has_intended_) {
    job.intended_ = sim_->Now();
    job.has_intended_ = true;
  }
  queue_.push_back(std::move(job));
  if (!busy_) {
    StartNextJob();
  }
}

void SimThread::Kill() {
  dead_ = true;
  queue_.clear();
  ++step_gen_;  // invalidate stale async completions
  if (active_cpu_task_ != 0) {
    machine_->cpu().CancelTask(active_cpu_task_);
    active_cpu_task_ = 0;
  }
  if (active_timer_ != kInvalidEvent) {
    sim_->Cancel(active_timer_);
    active_timer_ = kInvalidEvent;
  }
  busy_ = false;
}

void SimThread::Revive() {
  CHECK(dead_) << "Revive on a live thread " << name_;
  CHECK(!busy_);
  dead_ = false;
}

void SimThread::StartNextJob() {
  CHECK(!busy_);
  while (!queue_.empty()) {
    current_ = std::move(queue_.front());
    queue_.pop_front();
    if (current_.has_expiry_ &&
        sim_->Now() > current_.intended_ + current_.expiry_) {
      // Shed the task, Cassandra-stage style: it is too stale to be useful.
      ++jobs_dropped_;
      continue;
    }
    step_index_ = 0;
    busy_ = true;
    machine_->lateness().Record(current_.intended_, sim_->Now());
    RunSteps();
    if (busy_) {
      // Parked on an async step; resume via OnStepComplete.
      return;
    }
  }
}

void SimThread::RunSteps() {
  while (true) {
    if (dead_) {
      busy_ = false;
      return;
    }
    if (step_index_ >= current_.steps_.size()) {
      ++jobs_completed_;
      busy_ = false;
      // Let the caller (StartNextJob loop or OnStepComplete) pick the next
      // job; avoid recursing here.
      return;
    }
    Job::Step& step = current_.steps_[step_index_];
    switch (step.kind) {
      case Job::StepKind::kRun:
        step.run();
        ++step_index_;
        break;
      case Job::StepKind::kUnlock:
        step.mutex->Release();
        ++step_index_;
        break;
      case Job::StepKind::kCompute: {
        WorkUnits work = step.work();
        CHECK_GE(work, 0);
        total_work_ += work;
        step_started_ = sim_->Now();
        uint64_t gen = ++step_gen_;
        in_step_start_ = true;
        step_completed_sync_ = false;
        active_cpu_task_ = machine_->cpu().StartTask(
            work, [this, gen] { OnStepComplete(gen); });
        in_step_start_ = false;
        if (!step_completed_sync_) {
          return;  // parked until the CPU model completes the burst
        }
        compute_time_ += sim_->Now() - step_started_;
        active_cpu_task_ = 0;
        ++step_index_;
        break;
      }
      case Job::StepKind::kSleep: {
        VirtualDuration d = step.duration();
        CHECK(!d.IsNegative());
        step_started_ = sim_->Now();
        uint64_t gen = ++step_gen_;
        active_timer_ = sim_->ScheduleAfter(d, [this, gen] { OnStepComplete(gen); });
        return;  // parked until the timer fires
      }
      case Job::StepKind::kLock: {
        step_started_ = sim_->Now();
        uint64_t gen = ++step_gen_;
        in_step_start_ = true;
        step_completed_sync_ = false;
        step.mutex->Acquire([this, gen] { OnStepComplete(gen); });
        in_step_start_ = false;
        if (!step_completed_sync_) {
          return;  // parked until the lock is granted
        }
        ++step_index_;
        break;
      }
      case Job::StepKind::kAsync: {
        step_started_ = sim_->Now();
        uint64_t gen = ++step_gen_;
        in_step_start_ = true;
        step_completed_sync_ = false;
        step.async([this, gen] { OnStepComplete(gen); });
        in_step_start_ = false;
        if (!step_completed_sync_) {
          return;  // parked until `done` is invoked
        }
        ++step_index_;
        break;
      }
    }
  }
}

void SimThread::OnStepComplete(uint64_t gen) {
  if (dead_ || gen != step_gen_) {
    return;  // stale wakeup (thread killed or step superseded)
  }
  if (in_step_start_) {
    // The async operation completed synchronously inside RunSteps; signal the
    // loop to continue instead of re-entering it.
    step_completed_sync_ = true;
    return;
  }
  CHECK(busy_);
  Job::Step& step = current_.steps_[step_index_];
  switch (step.kind) {
    case Job::StepKind::kCompute:
      compute_time_ += sim_->Now() - step_started_;
      active_cpu_task_ = 0;
      break;
    case Job::StepKind::kSleep:
      sleep_time_ += sim_->Now() - step_started_;
      active_timer_ = kInvalidEvent;
      break;
    default:
      break;
  }
  ++step_index_;
  RunSteps();
  if (!busy_) {
    StartNextJob();
  }
}

}  // namespace scalecheck
