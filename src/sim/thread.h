// Simulated threads and jobs.
//
// Node logic is expressed as Jobs: short sequences of steps executed in order
// on a SimThread. A SimThread runs one job at a time from a FIFO queue —
// exactly like a single-threaded stage in a SEDA-style server. Step kinds:
//
//   Run(fn)        synchronous action, zero virtual time (state mutation,
//                  message sends)
//   Compute(w)     a CPU burst of w work units charged to the thread's
//                  machine; the thread is busy until the CPU model completes
//                  the burst (this is where colocation contention bites)
//   Sleep(d)       timer wait; zero CPU (this is what PIL substitutes for
//                  Compute)
//   Lock/Unlock    virtual mutex operations (C5456's coarse ring lock)
//   Async(fn)      escape hatch: fn receives a completion callback; used by
//                  the PIL executor to decide compute-vs-sleep at run time
//
// Compute work and sleep durations are evaluated lazily at step start, since
// they usually depend on state mutated by earlier jobs.

#ifndef SCALECHECK_SRC_SIM_THREAD_H_
#define SCALECHECK_SRC_SIM_THREAD_H_

#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/common/types.h"
#include "src/sim/cpu_model.h"
#include "src/sim/machine.h"
#include "src/sim/simulator.h"
#include "src/sim/sync.h"

namespace scalecheck {

class SimThread;

class Job {
 public:
  // Labels are static string literals: storing the pointer keeps job
  // construction allocation-free ("gossip.handle-syn" exceeds libstdc++'s
  // 15-char SSO, which cost one heap allocation per job — millions per run).
  explicit Job(const char* label) : label_(label) {}

  Job& Run(std::function<void()> fn);
  Job& Compute(WorkUnits work);
  Job& Compute(std::function<WorkUnits()> work_fn);
  Job& Sleep(VirtualDuration d);
  Job& Sleep(std::function<VirtualDuration()> d_fn);
  Job& Lock(SimMutex* mutex);
  Job& Unlock(SimMutex* mutex);
  // fn must invoke `done` exactly once (possibly synchronously).
  Job& Async(std::function<void(std::function<void()> done)> fn);

  // Intended start instant, for lateness accounting. Defaults to the enqueue
  // time.
  Job& IntendedAt(VirtualTime t) {
    intended_ = t;
    has_intended_ = true;
    return *this;
  }

  // Drops the job unstarted if it has waited in the queue longer than `d`
  // past its intended time — Cassandra's stage behaviour of shedding gossip
  // tasks older than the RPC timeout, which is what turns a saturated stage
  // into total heartbeat silence during a flap storm.
  Job& ExpiresAfter(VirtualDuration d) {
    expiry_ = d;
    has_expiry_ = true;
    return *this;
  }

  const char* label() const { return label_; }

 private:
  friend class SimThread;

  enum class StepKind { kRun, kCompute, kSleep, kLock, kUnlock, kAsync };

  struct Step {
    StepKind kind;
    std::function<void()> run;
    std::function<WorkUnits()> work;
    std::function<VirtualDuration()> duration;
    SimMutex* mutex = nullptr;
    std::function<void(std::function<void()>)> async;
  };

  const char* label_;
  std::vector<Step> steps_;
  VirtualTime intended_;
  bool has_intended_ = false;
  VirtualDuration expiry_;
  bool has_expiry_ = false;
};

class SimThread {
 public:
  SimThread(Simulator* sim, Machine* machine, std::string name);
  ~SimThread();
  SimThread(const SimThread&) = delete;
  SimThread& operator=(const SimThread&) = delete;

  // Appends a job; starts it immediately (same event) if the thread is idle.
  void Enqueue(Job job);

  // Aborts the current job and drops the queue; the thread stops accepting
  // work. In-flight CPU bursts and timers are cancelled. Held locks are NOT
  // released — a killed node takes its locks to the grave, as a crashed
  // process would (its mutexes are node-local and die with it; the owner
  // must SimMutex::ResetForCrash() them before the lock is reusable).
  void Kill();

  // Restart support: a killed thread comes back empty and idle. Only valid
  // after Kill() (the queue is already drained and the step generation was
  // bumped, so no pre-crash wakeup can reach the revived thread).
  void Revive();

  bool idle() const { return !busy_; }
  bool dead() const { return dead_; }
  size_t queue_depth() const { return queue_.size(); }
  const std::string& name() const { return name_; }
  Machine* machine() const { return machine_; }
  Simulator* sim() const { return sim_; }

  uint64_t jobs_completed() const { return jobs_completed_; }
  // Jobs shed unstarted because they outlived their expiry in the queue.
  uint64_t jobs_dropped() const { return jobs_dropped_; }
  WorkUnits total_work() const { return total_work_; }
  // Virtual time spent inside Compute steps (includes contention stretch).
  VirtualDuration compute_time() const { return compute_time_; }
  // Virtual time spent inside Sleep steps (PIL sleeps land here).
  VirtualDuration sleep_time() const { return sleep_time_; }

 private:
  void StartNextJob();
  // Executes steps of the current job until an async boundary or completion.
  void RunSteps();
  // Completion callback for async steps; `gen` guards against stale wakeups.
  void OnStepComplete(uint64_t gen);

  Simulator* sim_;
  Machine* machine_;
  std::string name_;

  std::deque<Job> queue_;
  Job current_{""};
  size_t step_index_ = 0;
  bool busy_ = false;
  bool dead_ = false;

  // Async-step bookkeeping.
  uint64_t step_gen_ = 0;
  bool in_step_start_ = false;
  bool step_completed_sync_ = false;
  CpuModel::TaskId active_cpu_task_ = 0;
  EventId active_timer_ = kInvalidEvent;
  VirtualTime step_started_;

  uint64_t jobs_completed_ = 0;
  uint64_t jobs_dropped_ = 0;
  WorkUnits total_work_ = 0;
  VirtualDuration compute_time_;
  VirtualDuration sleep_time_;
};

}  // namespace scalecheck

#endif  // SCALECHECK_SRC_SIM_THREAD_H_
