// Lightweight per-run profiler for the simulation core.
//
// Two strictly separated halves:
//
//  * Counters — deterministic per-subsystem operation counts (events
//    executed/cancelled, gossip digest-cache maintenance, payload-pool
//    recycling). They are pure functions of (spec, scale, mode, seed), so
//    they MAY be serialized into RunResult JSON without breaking the
//    byte-identical determinism contract. They are how tests assert
//    algorithmic complexity ("a steady-state gossip round refreshes O(changes)
//    digest entries") without flaky wall-clock thresholds — the approach
//    ScalAna takes for scaling-loss attribution.
//
//  * Wall timers — real host nanoseconds per phase. Useful for bench output
//    and ad-hoc diagnosis, NEVER serialized into RunResult (the determinism
//    contract forbids host wall-clock there).
//
// Profiling is opt-in (Cluster::Options::profiler). A null profiler costs
// nothing on the hot path: components keep their own plain counters and the
// Cluster aggregates them once at result-collection time.

#ifndef SCALECHECK_SRC_SIM_PROFILER_H_
#define SCALECHECK_SRC_SIM_PROFILER_H_

#include <chrono>
#include <cstdint>
#include <string>

#include "src/common/strings.h"

namespace scalecheck {

class SimProfiler {
 public:
  // Deterministic operation counts, aggregated cluster-wide.
  struct Counters {
    // Event engine.
    uint64_t events_executed = 0;
    uint64_t events_cancelled = 0;
    uint64_t event_slot_high_water = 0;  // distinct pooled slots ever allocated

    // Network.
    uint64_t messages_sent = 0;

    // Gossip: protocol volume and digest-cache maintenance. A naive
    // implementation refreshes (endpoints × builds) digest entries; the
    // incremental one refreshes O(updates_applied + full rebuild entries).
    uint64_t gossip_syn_handled = 0;
    uint64_t gossip_states_applied = 0;
    uint64_t gossip_updates_applied = 0;
    uint64_t digest_builds = 0;
    uint64_t digest_entries_refreshed = 0;
    uint64_t digest_full_rebuilds = 0;

    // Payload pooling.
    uint64_t payload_reuses = 0;
    uint64_t payload_allocs = 0;

    // Memory-layout accounting (the N=2048 overhaul): bytes of delta-encoded
    // digest sections sent (SYN payloads, wire-v2 varint accounting), the
    // per-node gossip arena footprint and endpoint-table footprint summed
    // across the cluster, and the endpoint intern table.
    uint64_t gossip_digest_bytes_sent = 0;
    uint64_t gossip_arena_bytes = 0;
    uint64_t endpoint_store_bytes = 0;
    uint64_t intern_table_size = 0;
    uint64_t intern_table_bytes = 0;

    void WriteJson(JsonWriter* w) const;
  };

  enum Phase : int {
    kPhaseBuild = 0,    // deployment construction
    kPhaseRun = 1,      // the simulator event loop
    kPhaseCollect = 2,  // result collection
    kNumPhases = 3,
  };

  // RAII host-nanosecond scope. A null profiler is a no-op (no clock reads).
  class Timed {
   public:
    Timed(SimProfiler* profiler, Phase phase) : profiler_(profiler), phase_(phase) {
      if (profiler_ != nullptr) {
        start_ = std::chrono::steady_clock::now();
      }
    }
    ~Timed() {
      if (profiler_ != nullptr) {
        profiler_->AddWallNanos(
            phase_, std::chrono::duration_cast<std::chrono::nanoseconds>(
                        std::chrono::steady_clock::now() - start_)
                        .count());
      }
    }
    Timed(const Timed&) = delete;
    Timed& operator=(const Timed&) = delete;

   private:
    SimProfiler* profiler_;
    Phase phase_;
    std::chrono::steady_clock::time_point start_;
  };

  Counters& counters() { return counters_; }
  const Counters& counters() const { return counters_; }

  void AddWallNanos(Phase phase, int64_t nanos) { wall_ns_[phase] += nanos; }
  int64_t wall_nanos(Phase phase) const { return wall_ns_[phase]; }

  // Counters + wall timings, for bench/diagnostic output only (contains host
  // wall-clock; must not be folded into deterministic artifacts).
  std::string ToJson() const;

 private:
  Counters counters_;
  int64_t wall_ns_[kNumPhases] = {};
};

}  // namespace scalecheck

#endif  // SCALECHECK_SRC_SIM_PROFILER_H_
