// Fidelity guardrails for colocated scale-check runs.
//
// §8 of the paper reports that single-machine colocation silently stops being
// faithful past a limit: "CPU utilization, memory exhaustion, or event
// lateness" destroy the timing fidelity of the run while the harness keeps
// producing numbers that *look* valid. The FidelityGuard turns that silent
// cliff into an explicit, budgeted verdict: it periodically probes the
// machine models during a run and classifies the run as
//
//   ok        — every budget respected; results trustworthy,
//   degraded  — a soft budget crossed; results directionally useful but the
//               measured latencies/timings carry colocation skew,
//   invalid   — a hard budget crossed (or OOM, replay divergence under the
//               strict policy, or the host watchdog fired); results must not
//               be used as evidence.
//
// The verdict is monotonic (ok -> degraded -> invalid, never back) and the
// report records, per budget, the *first* virtual timestamp at which each
// severity was crossed — so a sweep over N can show exactly where fidelity
// breaks. All probing happens in virtual time on deterministic model state;
// given the same (config, seed) the report serializes to identical bytes.
// The only exception is the host wall-inflation budget, which reads the host
// clock and is therefore disabled by default.

#ifndef SCALECHECK_SRC_SIM_FIDELITY_GUARD_H_
#define SCALECHECK_SRC_SIM_FIDELITY_GUARD_H_

#include <chrono>
#include <memory>
#include <string>
#include <vector>

#include "src/common/types.h"

namespace scalecheck {

class JsonWriter;
class MachineSet;
class PeriodicTimer;
class Simulator;

enum class FidelityVerdict : int {
  kOk = 0,
  kDegraded = 1,
  kInvalid = 2,
};

const char* FidelityVerdictName(FidelityVerdict v);

// Per-run budgets. Each metric has a degraded and an invalid threshold; for
// "upper" budgets (lateness, CPU, wall inflation) a sample above the limit
// violates it, for memory headroom a sample below. Defaults encode the
// paper's §8 limits: lateness p99 past ~2s or an OOM is exactly where the
// Nome testbed's colocation results stopped matching real-scale runs.
struct FidelityBudgets {
  bool enabled = true;

  // How often the guard samples the machine models (virtual time).
  VirtualDuration probe_period = VirtualDuration::Seconds(5);

  // Event lateness across machines (LatenessTracker p99 / max).
  VirtualDuration lateness_p99_degraded = VirtualDuration::Millis(500);
  VirtualDuration lateness_p99_invalid = VirtualDuration::Seconds(2);
  VirtualDuration lateness_max_degraded = VirtualDuration::Seconds(5);
  VirtualDuration lateness_max_invalid = VirtualDuration::Seconds(20);

  // Busiest-machine CPU utilization over [0, now].
  double cpu_util_degraded = 0.90;
  double cpu_util_invalid = 0.98;

  // Tightest-machine memory headroom (fraction of capacity free). An
  // observed OOM is always invalid, independent of these thresholds.
  double memory_headroom_degraded = 0.20;
  double memory_headroom_invalid = 0.05;

  // Host seconds spent per virtual second simulated. 0 disables (default):
  // host wall time is nondeterministic, so enabling this makes verdicts
  // host-dependent and breaks byte-identical JSON across machines.
  double wall_inflation_degraded = 0.0;
  double wall_inflation_invalid = 0.0;
};

// First crossing of one (budget, severity) pair.
struct FidelityViolation {
  std::string budget;
  FidelityVerdict severity = FidelityVerdict::kDegraded;
  VirtualTime first_at;  // virtual time of the first crossing
  double observed = 0.0;  // sampled value at that crossing
  double limit = 0.0;     // the budget it crossed
};

struct FidelityReport {
  FidelityVerdict verdict = FidelityVerdict::kOk;
  // The budget whose violation raised the verdict to its final value, and
  // the virtual time at which that happened. Empty / zero while verdict==ok.
  std::string violated_budget;
  VirtualTime first_violation_at;
  // First crossing of every (budget, severity) pair, in detection order.
  std::vector<FidelityViolation> violations;

  void WriteJson(JsonWriter* w) const;
  std::string ToJson() const;
};

class FidelityGuard {
 public:
  // `machines` must outlive the guard. The guard schedules its probes on
  // `sim` once Arm() is called.
  FidelityGuard(Simulator* sim, MachineSet* machines, const FidelityBudgets& budgets);
  ~FidelityGuard();
  FidelityGuard(const FidelityGuard&) = delete;
  FidelityGuard& operator=(const FidelityGuard&) = delete;

  // Starts periodic probing and takes the host wall / virtual time baseline
  // for the wall-inflation budget.
  void Arm();
  void Disarm();

  // Samples the machine models immediately. Called by the periodic timer and
  // once more at collection time so violations that only materialize at the
  // very end of the horizon are still caught.
  void Probe();

  // Records an externally detected violation (replay divergence, watchdog
  // expiry, OOM at its exact instant). Idempotent per (budget, severity):
  // only the first report of a pair is kept.
  void ReportViolation(const std::string& budget, FidelityVerdict severity,
                       double observed, double limit, VirtualTime at);

  const FidelityReport& report() const { return report_; }
  const FidelityBudgets& budgets() const { return budgets_; }

 private:
  // `lower_is_bad` flips the comparison for headroom-style budgets. A limit
  // of 0 disables that threshold for upper budgets.
  void CheckUpper(const char* budget, double observed, double degraded_limit,
                  double invalid_limit, VirtualTime at);
  void CheckLower(const char* budget, double observed, double degraded_limit,
                  double invalid_limit, VirtualTime at);

  Simulator* sim_;
  MachineSet* machines_;
  FidelityBudgets budgets_;
  FidelityReport report_;
  std::unique_ptr<PeriodicTimer> timer_;
  std::chrono::steady_clock::time_point armed_wall_{};
  VirtualTime armed_virtual_;
  bool armed_ = false;
};

}  // namespace scalecheck

#endif  // SCALECHECK_SRC_SIM_FIDELITY_GUARD_H_
