#include "src/sim/fidelity_guard.h"

#include <algorithm>

#include "src/common/check.h"
#include "src/common/strings.h"
#include "src/sim/machine.h"
#include "src/sim/simulator.h"

namespace scalecheck {

const char* FidelityVerdictName(FidelityVerdict v) {
  switch (v) {
    case FidelityVerdict::kOk:
      return "ok";
    case FidelityVerdict::kDegraded:
      return "degraded";
    case FidelityVerdict::kInvalid:
      return "invalid";
  }
  return "?";
}

void FidelityReport::WriteJson(JsonWriter* w) const {
  w->BeginObject();
  w->Field("verdict", FidelityVerdictName(verdict));
  w->Field("violated_budget", violated_budget);
  w->Field("first_violation_at_ns", first_violation_at.nanos());
  w->Key("violations").BeginArray();
  for (const FidelityViolation& v : violations) {
    w->BeginObject();
    w->Field("budget", v.budget);
    w->Field("severity", FidelityVerdictName(v.severity));
    w->Field("first_at_ns", v.first_at.nanos());
    w->Field("observed", v.observed);
    w->Field("limit", v.limit);
    w->EndObject();
  }
  w->EndArray();
  w->EndObject();
}

std::string FidelityReport::ToJson() const {
  JsonWriter w;
  WriteJson(&w);
  return w.str();
}

FidelityGuard::FidelityGuard(Simulator* sim, MachineSet* machines,
                             const FidelityBudgets& budgets)
    : sim_(sim), machines_(machines), budgets_(budgets) {
  CHECK_NOTNULL(sim_);
  CHECK_NOTNULL(machines_);
}

FidelityGuard::~FidelityGuard() = default;

void FidelityGuard::Arm() {
  armed_ = true;
  armed_wall_ = std::chrono::steady_clock::now();
  armed_virtual_ = sim_->Now();
  if (!timer_) {
    timer_ = std::make_unique<PeriodicTimer>(sim_, budgets_.probe_period,
                                             [this] { Probe(); });
  }
  timer_->Start(budgets_.probe_period);
}

void FidelityGuard::Disarm() {
  if (timer_) {
    timer_->Stop();
  }
}

void FidelityGuard::ReportViolation(const std::string& budget,
                                    FidelityVerdict severity, double observed,
                                    double limit, VirtualTime at) {
  for (const FidelityViolation& v : report_.violations) {
    if (v.budget == budget && v.severity == severity) {
      return;  // only the first crossing of a (budget, severity) pair counts
    }
  }
  report_.violations.push_back({budget, severity, at, observed, limit});
  if (severity > report_.verdict) {
    report_.verdict = severity;
    report_.violated_budget = budget;
    report_.first_violation_at = at;
  }
}

void FidelityGuard::CheckUpper(const char* budget, double observed,
                               double degraded_limit, double invalid_limit,
                               VirtualTime at) {
  if (invalid_limit > 0.0 && observed > invalid_limit) {
    ReportViolation(budget, FidelityVerdict::kInvalid, observed, invalid_limit, at);
  }
  if (degraded_limit > 0.0 && observed > degraded_limit) {
    ReportViolation(budget, FidelityVerdict::kDegraded, observed, degraded_limit, at);
  }
}

void FidelityGuard::CheckLower(const char* budget, double observed,
                               double degraded_limit, double invalid_limit,
                               VirtualTime at) {
  if (observed < invalid_limit) {
    ReportViolation(budget, FidelityVerdict::kInvalid, observed, invalid_limit, at);
  }
  if (observed < degraded_limit) {
    ReportViolation(budget, FidelityVerdict::kDegraded, observed, degraded_limit, at);
  }
}

void FidelityGuard::Probe() {
  const VirtualTime now = sim_->Now();
  double p99 = 0.0;
  double lateness_max = 0.0;
  double cpu = 0.0;
  double headroom = 1.0;
  bool oom = false;
  for (size_t i = 0; i < machines_->size(); ++i) {
    Machine& m = machines_->at(i);
    p99 = std::max(p99, m.lateness().p99().seconds());
    lateness_max = std::max(lateness_max, m.lateness().max().seconds());
    cpu = std::max(cpu, m.cpu().Utilization());
    headroom = std::min(headroom, m.memory().HeadroomFraction());
    oom = oom || m.memory().oom_observed();
  }
  CheckUpper("lateness_p99", p99, budgets_.lateness_p99_degraded.seconds(),
             budgets_.lateness_p99_invalid.seconds(), now);
  CheckUpper("lateness_max", lateness_max,
             budgets_.lateness_max_degraded.seconds(),
             budgets_.lateness_max_invalid.seconds(), now);
  CheckUpper("cpu_utilization", cpu, budgets_.cpu_util_degraded,
             budgets_.cpu_util_invalid, now);
  CheckLower("memory_headroom", headroom, budgets_.memory_headroom_degraded,
             budgets_.memory_headroom_invalid, now);
  if (oom) {
    ReportViolation("oom", FidelityVerdict::kInvalid, 0.0, 0.0, now);
  }
  if (armed_ && (budgets_.wall_inflation_degraded > 0.0 ||
                 budgets_.wall_inflation_invalid > 0.0)) {
    const double virt = (now - armed_virtual_).seconds();
    if (virt > 0.1) {  // too little virtual progress gives a noisy ratio
      const double host =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        armed_wall_)
              .count();
      CheckUpper("wall_inflation", host / virt,
                 budgets_.wall_inflation_degraded,
                 budgets_.wall_inflation_invalid, now);
    }
  }
}

}  // namespace scalecheck
