// Simulated machines and machine sets.
//
// A Machine bundles the CPU, memory, and lateness models for one physical
// host. A MachineSet maps nodes onto machines and is how the run modes differ:
//   - real-scale testing: many machines, a few nodes each (the paper packed 8
//     nodes per 16-core Nome machine, each node using <= 2 busy cores);
//   - colocation / memoization / PIL replay: a single machine hosting all N.

#ifndef SCALECHECK_SRC_SIM_MACHINE_H_
#define SCALECHECK_SRC_SIM_MACHINE_H_

#include <memory>
#include <string>
#include <vector>

#include "src/common/check.h"
#include "src/common/types.h"
#include "src/sim/cpu_model.h"
#include "src/sim/lateness.h"
#include "src/sim/memory_model.h"
#include "src/sim/simulator.h"

namespace scalecheck {

struct MachineSpec {
  double cores = 16.0;
  double core_speed = 1e9;  // work units / second / core
  double ctx_switch_penalty = 0.03;
  int64_t memory_bytes = 32LL * 1024 * 1024 * 1024;

  // The paper's Nome testbed machine: 16-core Opteron, 32 GB DRAM.
  static MachineSpec Nome() { return MachineSpec{}; }
};

class Machine {
 public:
  Machine(Simulator* sim, MachineId id, const MachineSpec& spec)
      : id_(id),
        spec_(spec),
        cpu_(sim, CpuModel::Config{spec.cores, spec.core_speed, spec.ctx_switch_penalty}),
        memory_(MemoryModel::Config{spec.memory_bytes}) {}

  MachineId id() const { return id_; }
  const MachineSpec& spec() const { return spec_; }
  CpuModel& cpu() { return cpu_; }
  MemoryModel& memory() { return memory_; }
  LatenessTracker& lateness() { return lateness_; }
  const LatenessTracker& lateness() const { return lateness_; }

 private:
  MachineId id_;
  MachineSpec spec_;
  CpuModel cpu_;
  MemoryModel memory_;
  LatenessTracker lateness_;
};

// Owns the machines of a deployment and the node -> machine placement.
class MachineSet {
 public:
  MachineSet(Simulator* sim, const MachineSpec& spec, int num_machines)
      : spec_(spec) {
    CHECK_GT(num_machines, 0);
    machines_.reserve(static_cast<size_t>(num_machines));
    for (int i = 0; i < num_machines; ++i) {
      machines_.push_back(std::make_unique<Machine>(sim, i, spec));
    }
  }

  // Places a node on a machine round-robin with `nodes_per_machine` slots.
  // Returns the machine hosting it.
  Machine* Place(NodeId node, int nodes_per_machine) {
    CHECK_GT(nodes_per_machine, 0);
    size_t idx = static_cast<size_t>(node / nodes_per_machine) % machines_.size();
    placement_[node] = machines_[idx].get();
    return machines_[idx].get();
  }

  Machine* MachineOf(NodeId node) const {
    auto it = placement_.find(node);
    CHECK(it != placement_.end()) << "unplaced node" << node;
    return it->second;
  }

  bool SameMachine(NodeId a, NodeId b) const {
    return MachineOf(a)->id() == MachineOf(b)->id();
  }

  size_t size() const { return machines_.size(); }
  Machine& at(size_t i) { return *machines_.at(i); }
  const MachineSpec& spec() const { return spec_; }

  // Aggregates across machines (useful when every node is on machine 0).
  double MaxUtilization() const;
  int64_t TotalPeakMemory() const;

 private:
  MachineSpec spec_;
  std::vector<std::unique_ptr<Machine>> machines_;
  std::unordered_map<NodeId, Machine*> placement_;
};

}  // namespace scalecheck

#endif  // SCALECHECK_SRC_SIM_MACHINE_H_
