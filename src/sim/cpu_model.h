// Fluid processor-sharing CPU model.
//
// Each simulated machine has C cores running at `speed` work-units/second.
// Compute bursts (one per busy thread) are serviced processor-sharing style:
// with A active bursts, each receives
//
//     rate(A) = speed * min(1, C/A) / (1 + p * max(0, (A - C) / C))
//
// where p is the context-switch penalty. When A <= C every burst owns a core
// (this is the "real-scale" regime: nodes on dedicated machines never
// contend). When A > C, bursts share cores *and* pay a context-switching
// degradation that grows with over-subscription — this is what makes basic
// colocation both slow and increasingly inefficient (§6 of the paper), and
// what PIL avoids by replacing computation with zero-CPU sleeps.
//
// Implementation: because all bursts share one rate, we track a global
// "service clock" S with dS/dt = rate(A). A burst that starts when the clock
// is S0 with w work units completes when S reaches S0 + w. Completions are a
// sorted set of target service values, so every state change is O(log A).

#ifndef SCALECHECK_SRC_SIM_CPU_MODEL_H_
#define SCALECHECK_SRC_SIM_CPU_MODEL_H_

#include <cstdint>
#include <functional>
#include <map>
#include <set>
#include <unordered_map>

#include "src/common/types.h"
#include "src/sim/simulator.h"

namespace scalecheck {

class CpuModel {
 public:
  struct Config {
    double cores = 16.0;
    // Work units per second per core. 1e9 means one unit ~ 1 ns of compute.
    double speed = 1e9;
    // Context-switch penalty once over-subscribed; 0 disables.
    double ctx_switch_penalty = 0.03;
  };

  using TaskId = uint64_t;

  CpuModel(Simulator* sim, const Config& config);
  ~CpuModel();
  CpuModel(const CpuModel&) = delete;
  CpuModel& operator=(const CpuModel&) = delete;

  // Starts a compute burst of `work` units; `on_complete` fires when the
  // burst finishes. Zero-work bursts complete on the next event dispatch.
  TaskId StartTask(WorkUnits work, std::function<void()> on_complete);

  // Cancels an in-flight burst (node crash injection). Returns false if the
  // burst already completed.
  bool CancelTask(TaskId id);

  // Slow-node fault injection: scales the effective core speed by `factor`
  // (1.0 = nominal, 0.5 = half speed). Takes effect immediately for every
  // in-flight burst — the service clock is settled at the old rate first, so
  // work already delivered is not re-priced.
  void SetSpeedFactor(double factor);
  double speed_factor() const { return speed_factor_; }

  int active_count() const { return static_cast<int>(tasks_.size()); }
  int peak_active() const { return peak_active_; }

  // Total core-seconds of *occupancy* so far: min(active, cores) integrated
  // over time. Equals the useful work delivered when the context-switch
  // penalty is zero; exceeds it when oversubscribed (cores burn occupancy
  // switching).
  double busy_core_seconds() const;

  // Utilization over [0, now]: busy core-time / (cores * elapsed).
  double Utilization() const;

  // Instantaneous stretch factor: how much longer a burst takes now compared
  // to a dedicated core (1.0 when uncontended).
  double CurrentStretch() const;

  const Config& config() const { return config_; }
  uint64_t tasks_started() const { return next_id_ - 1; }

 private:
  struct Task {
    double target_service = 0.0;  // service clock value at completion
    std::function<void()> on_complete;
  };

  // Advances the service clock to Now().
  void Settle();
  // Per-task service rate given the current active count.
  double RatePerTask(int active) const;
  // Re-arms the completion event for the earliest target.
  void Reschedule();
  // Fires due completions.
  void OnCompletionEvent();

  Simulator* sim_;
  Config config_;
  double speed_factor_ = 1.0;  // slow-node degradation multiplier

  double service_ = 0.0;           // work units delivered per task so far
  VirtualTime last_settle_;        // last time service_ was updated
  double busy_core_work_ = 0.0;    // integral of min(A, C) * speed over time

  std::unordered_map<TaskId, Task> tasks_;
  // target service -> task id (multimap: equal targets allowed, ordered by
  // insertion through id for determinism).
  std::multimap<double, TaskId> by_target_;

  EventId pending_event_ = kInvalidEvent;
  TaskId next_id_ = 1;
  int peak_active_ = 0;
  bool in_completion_ = false;
};

}  // namespace scalecheck

#endif  // SCALECHECK_SRC_SIM_CPU_MODEL_H_
