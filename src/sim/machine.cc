#include "src/sim/machine.h"

#include <algorithm>

namespace scalecheck {

double MachineSet::MaxUtilization() const {
  double max_util = 0.0;
  for (const auto& m : machines_) {
    max_util = std::max(max_util, m->cpu().Utilization());
  }
  return max_util;
}

int64_t MachineSet::TotalPeakMemory() const {
  int64_t total = 0;
  for (const auto& m : machines_) {
    total += m->memory().peak_bytes();
  }
  return total;
}

}  // namespace scalecheck
