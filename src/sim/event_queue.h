// The simulator's pending-event set.
//
// Events are ordered by (time, sequence). The sequence number is a global
// monotonically increasing counter assigned at scheduling time, which makes
// event ordering — and therefore the whole simulation — fully deterministic
// even when many events share a timestamp.

#ifndef SCALECHECK_SRC_SIM_EVENT_QUEUE_H_
#define SCALECHECK_SRC_SIM_EVENT_QUEUE_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "src/common/types.h"

namespace scalecheck {

using EventId = uint64_t;
inline constexpr EventId kInvalidEvent = 0;

class EventQueue {
 public:
  EventQueue() = default;
  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;

  // Schedules fn at time t. Returns an id usable with Cancel().
  EventId Schedule(VirtualTime t, std::function<void()> fn);

  // Cancels a pending event. Returns false if the event already fired or was
  // already cancelled. Cancellation is O(1); cancelled entries are dropped
  // lazily when popped.
  bool Cancel(EventId id);

  bool empty() const { return live_count_ == 0; }
  size_t size() const { return live_count_; }

  // Time of the earliest live event. Requires !empty().
  VirtualTime NextTime();

  // Pops and returns the earliest live event's callback. Requires !empty().
  // Sets *t to the event's timestamp.
  std::function<void()> Pop(VirtualTime* t);

  uint64_t total_scheduled() const { return next_id_ - 1; }

 private:
  struct Entry {
    VirtualTime time;
    EventId id = kInvalidEvent;
    std::function<void()> fn;

    // Min-heap: later times (or equal time with larger id) sort lower.
    bool operator<(const Entry& o) const {
      if (time != o.time) {
        return time > o.time;
      }
      return id > o.id;
    }
  };

  void DropCancelledTop();

  std::priority_queue<Entry> heap_;
  std::unordered_set<EventId> pending_;
  std::unordered_set<EventId> cancelled_;
  size_t live_count_ = 0;
  EventId next_id_ = 1;
};

}  // namespace scalecheck

#endif  // SCALECHECK_SRC_SIM_EVENT_QUEUE_H_
