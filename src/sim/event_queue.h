// The simulator's pending-event set.
//
// Events are ordered by (time, sequence). The sequence number is a global
// monotonically increasing counter assigned at scheduling time, which makes
// event ordering — and therefore the whole simulation — fully deterministic
// even when many events share a timestamp.
//
// Implementation: an index-addressable 4-ary min-heap of small POD entries
// {time, id, slot} laid over a slab of pooled event slots. Callbacks live in
// the slots and never move during heap sifts (the heap shuffles 24-byte PODs,
// not closures); freed slots are recycled through a free list so steady-state
// scheduling allocates nothing. Each slot records its heap position and a
// flat open-addressing id→slot table gives O(1) id lookup, so Cancel is a
// true O(log n) heap removal that destroys the callback — and everything it
// captures — immediately, with no tombstones retained in the heap.

#ifndef SCALECHECK_SRC_SIM_EVENT_QUEUE_H_
#define SCALECHECK_SRC_SIM_EVENT_QUEUE_H_

#include <cstdint>
#include <vector>

#include "src/common/types.h"
#include "src/sim/event_fn.h"

namespace scalecheck {

using EventId = uint64_t;
inline constexpr EventId kInvalidEvent = 0;

class EventQueue {
 public:
  EventQueue() = default;
  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;

  // Schedules fn at time t. Returns an id usable with Cancel().
  EventId Schedule(VirtualTime t, EventFn fn);

  // Cancels a pending event. Returns false if the event already fired or was
  // already cancelled. The callback (and its captures) is released before
  // this returns.
  bool Cancel(EventId id);

  bool empty() const { return heap_.empty(); }
  size_t size() const { return heap_.size(); }

  // Time of the earliest live event. Requires !empty().
  VirtualTime NextTime() const;

  // Pops and returns the earliest live event's callback. Requires !empty().
  // Sets *t to the event's timestamp. The callback is moved out, never
  // copied (EventFn is move-only).
  EventFn Pop(VirtualTime* t);

  uint64_t total_scheduled() const { return next_id_ - 1; }
  uint64_t total_cancelled() const { return cancelled_; }

  // High-water mark of the pooled slot slab — how many distinct callback
  // slots were ever allocated (everything beyond this is reuse).
  size_t slot_high_water() const { return slots_.size(); }

 private:
  static constexpr uint32_t kNoSlot = 0xffffffffu;

  struct HeapEntry {
    int64_t time_ns;
    EventId id;
    uint32_t slot;
  };

  struct Slot {
    EventFn fn;
    uint32_t heap_pos = 0;
    uint32_t next_free = kNoSlot;
  };

  // Flat open-addressing EventId→slot map: linear probing, power-of-two
  // capacity, backward-shift deletion. Ids are never 0, so 0 marks an empty
  // cell.
  class IdSlotMap {
   public:
    void Insert(EventId id, uint32_t slot);
    // Removes id and returns its slot, or kNoSlot if absent.
    uint32_t FindAndErase(EventId id);

   private:
    struct Cell {
      EventId id = 0;
      uint32_t slot = 0;
    };

    size_t Mask() const { return cells_.size() - 1; }
    static size_t HashId(EventId id) {
      return static_cast<size_t>(id * 0x9e3779b97f4a7c15ull);
    }
    void Grow();

    std::vector<Cell> cells_;
    size_t size_ = 0;
  };

  static bool EntryLess(const HeapEntry& a, const HeapEntry& b) {
    if (a.time_ns != b.time_ns) {
      return a.time_ns < b.time_ns;
    }
    return a.id < b.id;
  }

  void Place(size_t pos, const HeapEntry& e);
  void SiftUp(size_t pos);
  void SiftDown(size_t pos);
  // Removes the entry at heap position pos, restoring the heap invariant.
  void RemoveHeapAt(size_t pos);
  uint32_t AcquireSlot();
  void ReleaseSlot(uint32_t slot);

  std::vector<HeapEntry> heap_;
  std::vector<Slot> slots_;
  uint32_t free_head_ = kNoSlot;
  IdSlotMap ids_;
  EventId next_id_ = 1;
  uint64_t cancelled_ = 0;
};

}  // namespace scalecheck

#endif  // SCALECHECK_SRC_SIM_EVENT_QUEUE_H_
