#include "src/sim/simulator.h"

#include <chrono>
#include <utility>

#include "src/common/check.h"

namespace scalecheck {

Simulator::Simulator(uint64_t seed) : now_(VirtualTime::Zero()), rng_(seed) {}

EventId Simulator::ScheduleAt(VirtualTime t, EventFn fn) {
  CHECK_GE(t, now_) << "scheduling into the past";
  return queue_.Schedule(t, std::move(fn));
}

EventId Simulator::ScheduleAfter(VirtualDuration d, EventFn fn) {
  CHECK(!d.IsNegative()) << "negative delay" << d.ToString();
  return queue_.Schedule(now_ + d, std::move(fn));
}

uint64_t Simulator::Run(VirtualTime until) {
  CHECK(!running_) << "reentrant Run()";
  running_ = true;
  wall_budget_exceeded_ = false;
  const bool watched = wall_budget_seconds_ > 0.0;
  const auto wall_start = watched ? std::chrono::steady_clock::now()
                                  : std::chrono::steady_clock::time_point{};
  uint64_t executed = 0;
  while (!queue_.empty() && !stop_requested_) {
    if (watched && (executed & 511u) == 511u) {
      const double elapsed =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        wall_start)
              .count();
      if (elapsed > wall_budget_seconds_) {
        wall_budget_exceeded_ = true;
        break;
      }
    }
    VirtualTime next = queue_.NextTime();
    if (next > until) {
      break;
    }
    VirtualTime t;
    EventFn fn = queue_.Pop(&t);
    CHECK_GE(t, now_) << "time went backwards";
    now_ = t;
    fn();
    ++executed;
    ++events_executed_;
  }
  // If we stopped because the horizon was reached, advance the clock to the
  // horizon so callers observe a full window.
  if ((queue_.empty() || queue_.NextTime() > until) && until != VirtualTime::Max() &&
      now_ < until) {
    now_ = until;
  }
  // A stop request cancels exactly one Run. Clearing it on exit (not entry)
  // makes a stop raised OUTSIDE Run — e.g. a strict replay divergence hit in
  // a job that a SimThread started synchronously from Enqueue before the main
  // loop began — cancel the next Run instead of being silently dropped.
  stop_requested_ = false;
  running_ = false;
  return executed;
}

PeriodicTimer::PeriodicTimer(Simulator* sim, VirtualDuration period,
                             std::function<void()> fn)
    : sim_(sim), period_(period), fn_(std::move(fn)) {
  CHECK_NOTNULL(sim_);
  CHECK_GT(period.nanos(), 0);
}

PeriodicTimer::~PeriodicTimer() { Stop(); }

void PeriodicTimer::Start(VirtualDuration initial_delay) {
  Stop();
  armed_ = true;
  pending_ = sim_->ScheduleAfter(initial_delay, [this] { Fire(); });
}

void PeriodicTimer::Stop() {
  if (pending_ != kInvalidEvent) {
    sim_->Cancel(pending_);
    pending_ = kInvalidEvent;
  }
  armed_ = false;
}

void PeriodicTimer::Fire() {
  pending_ = kInvalidEvent;
  if (!armed_) {
    return;
  }
  // Re-arm before invoking so fn may Stop() the timer.
  pending_ = sim_->ScheduleAfter(period_, [this] { Fire(); });
  fn_();
}

}  // namespace scalecheck
