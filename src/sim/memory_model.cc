#include "src/sim/memory_model.h"

#include <algorithm>

#include "src/common/check.h"

namespace scalecheck {

bool MemoryModel::Allocate(NodeId node, const std::string& tag, int64_t bytes) {
  CHECK_GE(bytes, 0);
  used_ += bytes;
  by_node_[node][tag] += bytes;
  peak_ = std::max(peak_, used_);
  if (used_ > config_.capacity_bytes) {
    oom_observed_ = true;
    if (oom_handler_) {
      oom_handler_(node, bytes);
    }
    return false;
  }
  return true;
}

void MemoryModel::Release(NodeId node, const std::string& tag, int64_t bytes) {
  CHECK_GE(bytes, 0);
  auto node_it = by_node_.find(node);
  CHECK(node_it != by_node_.end()) << "release for unknown node" << node;
  auto tag_it = node_it->second.find(tag);
  CHECK(tag_it != node_it->second.end()) << "release for unknown tag" << tag;
  CHECK_GE(tag_it->second, bytes) << "over-release on tag" << tag;
  tag_it->second -= bytes;
  used_ -= bytes;
  if (tag_it->second == 0) {
    node_it->second.erase(tag_it);
  }
}

int64_t MemoryModel::ReleaseTag(NodeId node, const std::string& tag) {
  auto node_it = by_node_.find(node);
  if (node_it == by_node_.end()) {
    return 0;
  }
  auto tag_it = node_it->second.find(tag);
  if (tag_it == node_it->second.end()) {
    return 0;
  }
  int64_t bytes = tag_it->second;
  used_ -= bytes;
  node_it->second.erase(tag_it);
  return bytes;
}

void MemoryModel::ReleaseAll(NodeId node) {
  auto it = by_node_.find(node);
  if (it == by_node_.end()) {
    return;
  }
  for (const auto& [tag, bytes] : it->second) {
    used_ -= bytes;
  }
  by_node_.erase(it);
}

int64_t MemoryModel::NodeUsage(NodeId node) const {
  auto it = by_node_.find(node);
  if (it == by_node_.end()) {
    return 0;
  }
  int64_t total = 0;
  for (const auto& [tag, bytes] : it->second) {
    total += bytes;
  }
  return total;
}

}  // namespace scalecheck
