// The discrete-event simulator driving all ScaleCheck runs.
//
// The simulator owns the virtual clock, the pending-event set and the root
// deterministic RNG. Everything that happens in a run — gossip rounds, message
// deliveries, compute-burst completions, lock grants — is an event. Time never
// moves backwards, and two runs with the same configuration and seed produce
// byte-identical traces.

#ifndef SCALECHECK_SRC_SIM_SIMULATOR_H_
#define SCALECHECK_SRC_SIM_SIMULATOR_H_

#include <cstdint>
#include <functional>
#include <string>

#include "src/common/rng.h"
#include "src/common/types.h"
#include "src/sim/event_queue.h"

namespace scalecheck {

class Simulator {
 public:
  explicit Simulator(uint64_t seed);
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  VirtualTime Now() const { return now_; }

  // Schedules fn at absolute virtual time t (>= Now()). Accepts any callable
  // (EventFn is move-only and small-buffer-optimized, so hot-path lambdas are
  // stored without a heap allocation).
  EventId ScheduleAt(VirtualTime t, EventFn fn);

  // Schedules fn after a non-negative delay.
  EventId ScheduleAfter(VirtualDuration d, EventFn fn);

  // Cancels a pending event; returns false if it already fired.
  bool Cancel(EventId id) { return queue_.Cancel(id); }

  // Runs until the queue drains or the clock passes `until`, whichever comes
  // first. Events scheduled exactly at `until` still run. Returns the number
  // of events executed.
  uint64_t Run(VirtualTime until = VirtualTime::Max());

  // Runs until the queue is empty.
  uint64_t RunUntilIdle() { return Run(VirtualTime::Max()); }

  // Requests that Run() return after the current event completes. Sticky
  // until a Run consumes it: raised outside Run (jobs execute synchronously
  // from SimThread::Enqueue on an idle thread), it cancels the next Run
  // instead of being dropped.
  void RequestStop() { stop_requested_ = true; }

  // Host wall-clock watchdog: when set (> 0), Run() periodically checks the
  // host clock and bails out once the budget is exhausted, setting
  // wall_budget_exceeded(). The self-healing suite executor uses this to
  // bound runaway cells. 0 disables. The check is amortized (every 512
  // events) so the hot loop stays clock-free when no budget is set.
  void SetWallBudget(double seconds) { wall_budget_seconds_ = seconds; }
  bool wall_budget_exceeded() const { return wall_budget_exceeded_; }

  // Root RNG; components should Fork() child generators at setup time so that
  // their streams are independent of event interleaving.
  Rng& rng() { return rng_; }

  uint64_t events_executed() const { return events_executed_; }
  size_t pending_events() const { return queue_.size(); }
  uint64_t events_cancelled() const { return queue_.total_cancelled(); }
  // Pooled event-slot slab high-water mark (see EventQueue::slot_high_water).
  size_t event_slot_high_water() const { return queue_.slot_high_water(); }

 private:
  VirtualTime now_;
  EventQueue queue_;
  Rng rng_;
  bool stop_requested_ = false;
  bool running_ = false;
  uint64_t events_executed_ = 0;
  double wall_budget_seconds_ = 0.0;
  bool wall_budget_exceeded_ = false;
};

// A repeating timer built on the simulator: fires fn every `period` starting
// at `first`. Cancelable; safe to destroy while armed.
class PeriodicTimer {
 public:
  PeriodicTimer(Simulator* sim, VirtualDuration period, std::function<void()> fn);
  ~PeriodicTimer();
  PeriodicTimer(const PeriodicTimer&) = delete;
  PeriodicTimer& operator=(const PeriodicTimer&) = delete;

  // Starts (or restarts) the timer; first firing after `initial_delay`.
  void Start(VirtualDuration initial_delay);
  void Stop();
  bool armed() const { return armed_; }

 private:
  void Fire();

  Simulator* sim_;
  VirtualDuration period_;
  std::function<void()> fn_;
  EventId pending_ = kInvalidEvent;
  bool armed_ = false;
};

}  // namespace scalecheck

#endif  // SCALECHECK_SRC_SIM_SIMULATOR_H_
