// The discrete-event simulator driving all ScaleCheck runs.
//
// The simulator owns the virtual clock, the pending-event set and the root
// deterministic RNG. Everything that happens in a run — gossip rounds, message
// deliveries, compute-burst completions, lock grants — is an event. Time never
// moves backwards, and two runs with the same configuration and seed produce
// byte-identical traces.

#ifndef SCALECHECK_SRC_SIM_SIMULATOR_H_
#define SCALECHECK_SRC_SIM_SIMULATOR_H_

#include <cstdint>
#include <functional>
#include <string>

#include "src/common/rng.h"
#include "src/common/types.h"
#include "src/sim/event_queue.h"

namespace scalecheck {

class Simulator {
 public:
  explicit Simulator(uint64_t seed);
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  VirtualTime Now() const { return now_; }

  // Schedules fn at absolute virtual time t (>= Now()). Accepts any callable
  // (EventFn is move-only and small-buffer-optimized, so hot-path lambdas are
  // stored without a heap allocation).
  EventId ScheduleAt(VirtualTime t, EventFn fn);

  // Schedules fn after a non-negative delay.
  EventId ScheduleAfter(VirtualDuration d, EventFn fn);

  // Cancels a pending event; returns false if it already fired.
  bool Cancel(EventId id) { return queue_.Cancel(id); }

  // Runs until the queue drains or the clock passes `until`, whichever comes
  // first. Events scheduled exactly at `until` still run. Returns the number
  // of events executed.
  uint64_t Run(VirtualTime until = VirtualTime::Max());

  // Runs until the queue is empty.
  uint64_t RunUntilIdle() { return Run(VirtualTime::Max()); }

  // Requests that Run() return after the current event completes.
  void RequestStop() { stop_requested_ = true; }

  // Root RNG; components should Fork() child generators at setup time so that
  // their streams are independent of event interleaving.
  Rng& rng() { return rng_; }

  uint64_t events_executed() const { return events_executed_; }
  size_t pending_events() const { return queue_.size(); }
  uint64_t events_cancelled() const { return queue_.total_cancelled(); }
  // Pooled event-slot slab high-water mark (see EventQueue::slot_high_water).
  size_t event_slot_high_water() const { return queue_.slot_high_water(); }

 private:
  VirtualTime now_;
  EventQueue queue_;
  Rng rng_;
  bool stop_requested_ = false;
  bool running_ = false;
  uint64_t events_executed_ = 0;
};

// A repeating timer built on the simulator: fires fn every `period` starting
// at `first`. Cancelable; safe to destroy while armed.
class PeriodicTimer {
 public:
  PeriodicTimer(Simulator* sim, VirtualDuration period, std::function<void()> fn);
  ~PeriodicTimer();
  PeriodicTimer(const PeriodicTimer&) = delete;
  PeriodicTimer& operator=(const PeriodicTimer&) = delete;

  // Starts (or restarts) the timer; first firing after `initial_delay`.
  void Start(VirtualDuration initial_delay);
  void Stop();
  bool armed() const { return armed_; }

 private:
  void Fire();

  Simulator* sim_;
  VirtualDuration period_;
  std::function<void()> fn_;
  EventId pending_ = kInvalidEvent;
  bool armed_ = false;
};

}  // namespace scalecheck

#endif  // SCALECHECK_SRC_SIM_SIMULATOR_H_
