#include "src/sim/event_queue.h"

#include <algorithm>
#include <utility>

#include "src/common/check.h"

namespace scalecheck {

void EventQueue::IdSlotMap::Insert(EventId id, uint32_t slot) {
  if (cells_.empty() || (size_ + 1) * 2 > cells_.size()) {
    Grow();
  }
  size_t i = HashId(id) & Mask();
  while (cells_[i].id != 0) {
    i = (i + 1) & Mask();
  }
  cells_[i] = Cell{id, slot};
  ++size_;
}

uint32_t EventQueue::IdSlotMap::FindAndErase(EventId id) {
  if (cells_.empty() || id == 0) {
    return kNoSlot;
  }
  size_t i = HashId(id) & Mask();
  while (cells_[i].id != id) {
    if (cells_[i].id == 0) {
      return kNoSlot;
    }
    i = (i + 1) & Mask();
  }
  uint32_t slot = cells_[i].slot;
  // Backward-shift deletion: pull displaced entries into the hole so probe
  // chains stay contiguous without tombstones.
  size_t hole = i;
  size_t j = i;
  for (;;) {
    j = (j + 1) & Mask();
    if (cells_[j].id == 0) {
      break;
    }
    size_t home = HashId(cells_[j].id) & Mask();
    // cells_[j] may move into the hole iff the hole lies on its probe path.
    if (((j - home) & Mask()) >= ((j - hole) & Mask())) {
      cells_[hole] = cells_[j];
      hole = j;
    }
  }
  cells_[hole] = Cell{};
  --size_;
  return slot;
}

void EventQueue::IdSlotMap::Grow() {
  std::vector<Cell> old = std::move(cells_);
  cells_.assign(std::max<size_t>(64, old.size() * 2), Cell{});
  for (const Cell& c : old) {
    if (c.id == 0) {
      continue;
    }
    size_t i = HashId(c.id) & Mask();
    while (cells_[i].id != 0) {
      i = (i + 1) & Mask();
    }
    cells_[i] = c;
  }
}

void EventQueue::Place(size_t pos, const HeapEntry& e) {
  heap_[pos] = e;
  slots_[e.slot].heap_pos = static_cast<uint32_t>(pos);
}

void EventQueue::SiftUp(size_t pos) {
  HeapEntry e = heap_[pos];
  while (pos > 0) {
    size_t parent = (pos - 1) / 4;
    if (!EntryLess(e, heap_[parent])) {
      break;
    }
    Place(pos, heap_[parent]);
    pos = parent;
  }
  Place(pos, e);
}

void EventQueue::SiftDown(size_t pos) {
  HeapEntry e = heap_[pos];
  size_t n = heap_.size();
  for (;;) {
    size_t first = pos * 4 + 1;
    if (first >= n) {
      break;
    }
    size_t best = first;
    size_t last = std::min(first + 4, n);
    for (size_t c = first + 1; c < last; ++c) {
      if (EntryLess(heap_[c], heap_[best])) {
        best = c;
      }
    }
    if (!EntryLess(heap_[best], e)) {
      break;
    }
    Place(pos, heap_[best]);
    pos = best;
  }
  Place(pos, e);
}

void EventQueue::RemoveHeapAt(size_t pos) {
  size_t last = heap_.size() - 1;
  if (pos == last) {
    heap_.pop_back();
    return;
  }
  HeapEntry moved = heap_[last];
  heap_.pop_back();
  Place(pos, moved);
  if (pos > 0 && EntryLess(heap_[pos], heap_[(pos - 1) / 4])) {
    SiftUp(pos);
  } else {
    SiftDown(pos);
  }
}

uint32_t EventQueue::AcquireSlot() {
  if (free_head_ != kNoSlot) {
    uint32_t s = free_head_;
    free_head_ = slots_[s].next_free;
    slots_[s].next_free = kNoSlot;
    return s;
  }
  slots_.emplace_back();
  return static_cast<uint32_t>(slots_.size() - 1);
}

void EventQueue::ReleaseSlot(uint32_t slot) {
  slots_[slot].next_free = free_head_;
  free_head_ = slot;
}

EventId EventQueue::Schedule(VirtualTime t, EventFn fn) {
  EventId id = next_id_++;
  uint32_t slot = AcquireSlot();
  slots_[slot].fn = std::move(fn);
  heap_.push_back(HeapEntry{t.nanos(), id, slot});
  slots_[slot].heap_pos = static_cast<uint32_t>(heap_.size() - 1);
  SiftUp(heap_.size() - 1);
  ids_.Insert(id, slot);
  return id;
}

bool EventQueue::Cancel(EventId id) {
  uint32_t slot = ids_.FindAndErase(id);
  if (slot == kNoSlot) {
    return false;
  }
  Slot& s = slots_[slot];
  uint32_t pos = s.heap_pos;
  // Destroy the closure (and everything it captures) right now — cancelled
  // work must not pin payloads until the heap drains past it.
  s.fn.Reset();
  ReleaseSlot(slot);
  RemoveHeapAt(pos);
  ++cancelled_;
  return true;
}

VirtualTime EventQueue::NextTime() const {
  CHECK(!heap_.empty()) << "NextTime on empty queue";
  return VirtualTime::FromNanos(heap_[0].time_ns);
}

EventFn EventQueue::Pop(VirtualTime* t) {
  CHECK(!heap_.empty()) << "Pop on empty queue";
  HeapEntry top = heap_[0];
  *t = VirtualTime::FromNanos(top.time_ns);
  EventFn fn = std::move(slots_[top.slot].fn);
  ids_.FindAndErase(top.id);
  ReleaseSlot(top.slot);
  RemoveHeapAt(0);
  return fn;
}

}  // namespace scalecheck
