#include "src/sim/event_queue.h"

#include <utility>

#include "src/common/check.h"

namespace scalecheck {

EventId EventQueue::Schedule(VirtualTime t, std::function<void()> fn) {
  EventId id = next_id_++;
  heap_.push(Entry{t, id, std::move(fn)});
  pending_.insert(id);
  ++live_count_;
  return id;
}

bool EventQueue::Cancel(EventId id) {
  // Only events still pending can be cancelled; ids that already fired (or
  // were already cancelled) are no longer in pending_.
  if (pending_.erase(id) == 0) {
    return false;
  }
  cancelled_.insert(id);
  CHECK_GT(live_count_, 0u);
  --live_count_;
  return true;
}

void EventQueue::DropCancelledTop() {
  while (!heap_.empty()) {
    auto found = cancelled_.find(heap_.top().id);
    if (found == cancelled_.end()) {
      return;
    }
    cancelled_.erase(found);
    heap_.pop();
  }
}

VirtualTime EventQueue::NextTime() {
  DropCancelledTop();
  CHECK(!heap_.empty()) << "NextTime on empty queue";
  return heap_.top().time;
}

std::function<void()> EventQueue::Pop(VirtualTime* t) {
  DropCancelledTop();
  CHECK(!heap_.empty()) << "Pop on empty queue";
  // priority_queue::top() is const; move out via const_cast, which is safe
  // because we pop immediately and never compare on fn.
  auto& entry = const_cast<Entry&>(heap_.top());
  *t = entry.time;
  std::function<void()> fn = std::move(entry.fn);
  pending_.erase(entry.id);
  heap_.pop();
  CHECK_GT(live_count_, 0u);
  --live_count_;
  return fn;
}

}  // namespace scalecheck
