#include "src/sim/cpu_model.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "src/common/check.h"

namespace scalecheck {

CpuModel::CpuModel(Simulator* sim, const Config& config)
    : sim_(sim), config_(config), last_settle_(sim->Now()) {
  CHECK_NOTNULL(sim);
  CHECK_GT(config.cores, 0.0);
  CHECK_GT(config.speed, 0.0);
  CHECK_GE(config.ctx_switch_penalty, 0.0);
}

CpuModel::~CpuModel() {
  if (pending_event_ != kInvalidEvent) {
    sim_->Cancel(pending_event_);
  }
}

double CpuModel::RatePerTask(int active) const {
  if (active <= 0) {
    return 0.0;
  }
  double a = static_cast<double>(active);
  double share = std::min(1.0, config_.cores / a);
  double oversub = std::max(0.0, (a - config_.cores) / config_.cores);
  return config_.speed * speed_factor_ * share /
         (1.0 + config_.ctx_switch_penalty * oversub);
}

void CpuModel::SetSpeedFactor(double factor) {
  CHECK_GT(factor, 0.0);
  if (factor == speed_factor_) {
    return;
  }
  Settle();  // deliver work at the old rate up to now
  speed_factor_ = factor;
  Reschedule();
}

void CpuModel::Settle() {
  VirtualTime now = sim_->Now();
  CHECK_GE(now, last_settle_);
  double dt = (now - last_settle_).seconds();
  if (dt > 0.0 && !tasks_.empty()) {
    int active = active_count();
    service_ += dt * RatePerTask(active);
    busy_core_work_ +=
        dt * std::min(static_cast<double>(active), config_.cores) * config_.speed;
  }
  last_settle_ = now;
}

double CpuModel::busy_core_seconds() const { return busy_core_work_ / config_.speed; }

double CpuModel::Utilization() const {
  double elapsed = sim_->Now().seconds();
  if (elapsed <= 0.0) {
    return 0.0;
  }
  // Note: busy_core_work_ only counts time already settled; an in-progress
  // quiet period contributes zero anyway, and in-progress busy periods are
  // settled on every state change, so the error is bounded by the current
  // inter-event gap.
  return busy_core_work_ / (config_.speed * config_.cores * elapsed);
}

double CpuModel::CurrentStretch() const {
  int active = active_count();
  if (active == 0) {
    return 1.0;
  }
  return config_.speed / RatePerTask(active);
}

CpuModel::TaskId CpuModel::StartTask(WorkUnits work, std::function<void()> on_complete) {
  CHECK_GE(work, 0);
  Settle();
  TaskId id = next_id_++;
  double target = service_ + static_cast<double>(work);
  tasks_.emplace(id, Task{target, std::move(on_complete)});
  by_target_.emplace(target, id);
  peak_active_ = std::max(peak_active_, active_count());
  Reschedule();
  return id;
}

bool CpuModel::CancelTask(TaskId id) {
  auto it = tasks_.find(id);
  if (it == tasks_.end()) {
    return false;
  }
  Settle();
  auto range = by_target_.equal_range(it->second.target_service);
  for (auto t = range.first; t != range.second; ++t) {
    if (t->second == id) {
      by_target_.erase(t);
      break;
    }
  }
  tasks_.erase(it);
  Reschedule();
  return true;
}

void CpuModel::Reschedule() {
  if (pending_event_ != kInvalidEvent) {
    sim_->Cancel(pending_event_);
    pending_event_ = kInvalidEvent;
  }
  if (tasks_.empty()) {
    return;
  }
  double min_target = by_target_.begin()->first;
  double rate = RatePerTask(active_count());
  CHECK_GT(rate, 0.0);
  double remaining = std::max(0.0, min_target - service_);
  double dt_seconds = remaining / rate;
  VirtualDuration dt = VirtualDuration::FromSecondsF(dt_seconds);
  // Floating-point drift can leave `remaining` just above the completion
  // epsilon while dt rounds down to zero nanoseconds — which would spin the
  // event loop forever at the same instant. One nanosecond of service always
  // makes progress.
  if (dt.nanos() < 1) {
    dt = VirtualDuration::Nanos(1);
  }
  pending_event_ = sim_->ScheduleAfter(dt, [this] { OnCompletionEvent(); });
}

void CpuModel::OnCompletionEvent() {
  pending_event_ = kInvalidEvent;
  Settle();
  // Absolute + relative tolerance for floating-point drift between the
  // scheduled completion instant and the settled service clock.
  double eps = 1e-6 + 1e-9 * service_;
  std::vector<std::function<void()>> done;
  while (!by_target_.empty() && by_target_.begin()->first <= service_ + eps) {
    TaskId id = by_target_.begin()->second;
    by_target_.erase(by_target_.begin());
    auto it = tasks_.find(id);
    CHECK(it != tasks_.end());
    done.push_back(std::move(it->second.on_complete));
    tasks_.erase(it);
  }
  if (done.empty()) {
    // Fired fractionally early due to rounding; re-arm.
    Reschedule();
    return;
  }
  Reschedule();
  for (auto& fn : done) {
    if (fn) {
      fn();
    }
  }
}

}  // namespace scalecheck
