// Virtual-time synchronization primitives.
//
// SimMutex models an in-process lock between a node's simulated threads. It
// exists because bug C5456 is *about* a lock: the pending-range calculation
// held a coarse-grained ring-table lock long enough to stall gossip
// processing, re-creating flapping even after the computation itself was
// optimized. Hold-time and wait-time statistics feed the experiment reports.

#ifndef SCALECHECK_SRC_SIM_SYNC_H_
#define SCALECHECK_SRC_SIM_SYNC_H_

#include <deque>
#include <functional>
#include <string>

#include "src/common/stats.h"
#include "src/common/types.h"
#include "src/sim/simulator.h"

namespace scalecheck {

class SimMutex {
 public:
  SimMutex(Simulator* sim, std::string name)
      : sim_(sim), name_(std::move(name)) {}
  SimMutex(const SimMutex&) = delete;
  SimMutex& operator=(const SimMutex&) = delete;

  // Requests the lock; `granted` runs (synchronously if the lock is free,
  // otherwise later in FIFO order) once the caller holds it.
  void Acquire(std::function<void()> granted);

  // Releases the lock; the next waiter (if any) is granted via a zero-delay
  // event so grant chains cannot grow the native stack.
  void Release();

  // Crash recovery: force-releases the lock regardless of holder and drops
  // every queued waiter. A node that dies mid-calculation takes its threads
  // to the grave but must not take the mutex state with them — otherwise a
  // restarted node (or any survivor sharing the lock) deadlocks on a holder
  // that no longer exists. Bumps an internal epoch so an already-scheduled
  // deferred grant from a pre-crash Release becomes a no-op instead of
  // re-locking the mutex for a dead thread.
  void ResetForCrash();

  // Times the lock was force-released while held at ResetForCrash.
  uint64_t crash_releases() const { return crash_releases_; }

  bool locked() const { return locked_; }
  size_t waiters() const { return waiters_.size(); }
  const std::string& name() const { return name_; }

  const RunningStat& hold_seconds() const { return hold_seconds_; }
  const RunningStat& wait_seconds() const { return wait_seconds_; }

 private:
  struct Waiter {
    std::function<void()> granted;
    VirtualTime enqueued;
  };

  void Grant(std::function<void()> granted, VirtualTime enqueued);
  void ScheduleGrant();

  Simulator* sim_;
  std::string name_;
  bool locked_ = false;
  VirtualTime acquired_at_;
  std::deque<Waiter> waiters_;
  // Incremented by ResetForCrash; deferred grants scheduled under an older
  // epoch abort instead of granting.
  uint64_t epoch_ = 0;
  uint64_t crash_releases_ = 0;
  RunningStat hold_seconds_;
  RunningStat wait_seconds_;
};

}  // namespace scalecheck

#endif  // SCALECHECK_SRC_SIM_SYNC_H_
