// Message transport between simulated nodes.
//
// Latency: messages between nodes on the same machine take the loopback
// latency; cross-machine messages take base + exponential jitter. Delivery is
// FIFO per (sender, receiver) pair, matching TCP connection semantics.
// Bandwidth is deliberately not modelled: the paper's bottlenecks are CPU,
// memory, and context switching, and gossip messages are small.
//
// Message *processing* cost is charged by the receiving node's stage thread,
// not here; the network only delays and (optionally) drops.

#ifndef SCALECHECK_SRC_SIM_NETWORK_H_
#define SCALECHECK_SRC_SIM_NETWORK_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>

#include "src/common/rng.h"
#include "src/common/types.h"
#include "src/sim/simulator.h"
// Message/Payload moved below the simulator (substrate seam); re-exported
// here so the many sim-side includers keep compiling unchanged.
#include "src/transport/link_filter.h"
#include "src/transport/message.h"  // IWYU pragma: export

namespace scalecheck {

class NetworkModel : public LinkFilterHost {
 public:
  struct Config {
    VirtualDuration loopback_latency = VirtualDuration::Micros(50);
    VirtualDuration base_latency = VirtualDuration::Micros(500);
    // Mean of the exponential jitter added to cross-machine messages.
    VirtualDuration jitter_mean = VirtualDuration::Micros(200);
    double loss_probability = 0.0;
  };

  using Handler = std::function<void(const Message&)>;
  // Returns true when the two nodes share a physical machine.
  using SameMachineFn = std::function<bool(NodeId, NodeId)>;

  // Per-link fault state consulted at send time (the FaultInjector hook),
  // now the carrier-neutral type from src/transport/link_filter.h. Per-pair
  // FIFO is preserved across fault transitions by the monotone delivery
  // clamp in Send.
  using LinkFault = ::scalecheck::LinkFault;
  using LinkFilter = LinkFilterFn;

  NetworkModel(Simulator* sim, const Config& config, uint64_t seed);

  void set_same_machine_fn(SameMachineFn fn) { same_machine_ = std::move(fn); }
  void set_link_filter(LinkFilter filter) { link_filter_ = std::move(filter); }

  // LinkFilterHost: the sim carrier is single-threaded and connection-free,
  // so installing the filter is all there is to do.
  void SetLinkFilter(LinkFilterFn filter) override {
    set_link_filter(std::move(filter));
  }

  void RegisterNode(NodeId node, Handler handler);
  // Messages to an unregistered node are dropped (crashed process).
  void UnregisterNode(NodeId node);

  // Sends a message; returns its id (0 if dropped at send time).
  uint64_t Send(NodeId from, NodeId to, int type, std::shared_ptr<const Payload> payload);

  uint64_t messages_sent() const { return sent_; }
  uint64_t messages_delivered() const { return delivered_; }
  uint64_t messages_dropped() const { return dropped_; }
  // Subset of messages_dropped: deterministic partition drops from the link
  // filter (vs probabilistic loss / dead receivers).
  uint64_t messages_blocked() const { return blocked_; }
  uint64_t bytes_sent() const { return bytes_; }

 private:
  VirtualDuration SampleLatency(NodeId from, NodeId to);

  Simulator* sim_;
  Config config_;
  Rng rng_;
  SameMachineFn same_machine_;
  LinkFilter link_filter_;
  std::unordered_map<NodeId, Handler> handlers_;
  // (from << 32 | to) -> last delivery time, for per-pair FIFO.
  std::unordered_map<uint64_t, VirtualTime> last_delivery_;
  // (from << 32 | to) -> per-type send counters.
  std::unordered_map<uint64_t, std::unordered_map<int, uint64_t>> pair_seq_;
  uint64_t next_id_ = 1;
  uint64_t sent_ = 0;
  uint64_t delivered_ = 0;
  uint64_t dropped_ = 0;
  uint64_t blocked_ = 0;
  uint64_t bytes_ = 0;
};

}  // namespace scalecheck

#endif  // SCALECHECK_SRC_SIM_NETWORK_H_
