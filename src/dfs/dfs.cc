#include "src/dfs/dfs.h"

#include <cstring>
#include <utility>

#include "src/common/check.h"
#include "src/common/strings.h"
#include "src/pil/function_registry.h"
#include "src/sim/simulator.h"

namespace scalecheck {

namespace {

constexpr NodeId kNameNode = 0;

struct DfsPayload : public Payload {
  int64_t blocks = 0;
  bool reregister_cmd = false;
  size_t SizeBytes() const override { return 64; }
};

struct DnState {
  bool registered = false;
  bool alive = false;
  bool ever_dead = false;
  int64_t blocks = 0;
  VirtualTime last_heartbeat;
};

class NameNode {
 public:
  NameNode(Simulator* sim, NetworkModel* net, Machine* machine,
           const DfsConfig& config, PilBoundary* pil, PilFunctionId scan_fn,
           DfsResult* result)
      : sim_(sim),
        net_(net),
        config_(config),
        pil_(pil),
        scan_fn_(scan_fn),
        result_(result),
        handler_(sim, machine, "nn/handler"),
        monitor_(sim, machine, "nn/monitor"),
        expiry_timer_(sim, VirtualDuration::Seconds(1), [this] { ExpirySweep(); }) {
    net_->RegisterNode(kNameNode, [this](const Message& msg) { OnMessage(msg); });
    expiry_timer_.Start(VirtualDuration::Seconds(1));
  }

  bool Stable() const {
    for (const auto& [dn, state] : datanodes_) {
      if (!state.registered || !state.alive) {
        return false;
      }
    }
    return !datanodes_.empty() && handler_.idle() && handler_.queue_depth() == 0 &&
           !scan_inflight_;
  }

  uint64_t reports_shed() const { return handler_.jobs_dropped(); }

 private:
  void OnMessage(const Message& msg) {
    auto payload = std::static_pointer_cast<const DfsPayload>(msg.payload);
    NodeId dn = msg.from;
    switch (msg.type) {
      case kDfsRegister: {
        Job job("nn.register");
        job.Compute(config_.heartbeat_cost).Run([this, dn, payload] {
          DnState& state = datanodes_[dn];
          if (state.registered && state.ever_dead) {
            ++result_->re_registrations;
          }
          state.registered = true;
          if (!state.alive) {
            state.alive = true;
          }
          state.blocks = payload->blocks;
          state.last_heartbeat = sim_->Now();
        });
        handler_.Enqueue(std::move(job));
        break;
      }
      case kDfsHeartbeat: {
        Job job("nn.heartbeat");
        job.ExpiresAfter(config_.handler_timeout);
        job.Compute(config_.heartbeat_cost).Run([this, dn] {
          auto it = datanodes_.find(dn);
          if (it == datanodes_.end() || !it->second.registered) {
            return;
          }
          it->second.last_heartbeat = sim_->Now();
          if (!it->second.alive) {
            // An expired DataNode must re-register with a full block report
            // — the feedback that turns congestion into a storm.
            it->second.alive = true;
            auto cmd = std::make_shared<DfsPayload>();
            cmd->reregister_cmd = true;
            net_->Send(kNameNode, dn, kDfsRegisterAck, std::move(cmd));
          }
        });
        handler_.Enqueue(std::move(job));
        break;
      }
      case kDfsBlockReport: {
        // Unlike heartbeats, block reports are never shed: HDFS must process
        // them (DataNodes re-send until acknowledged), which is exactly why
        // a report backlog starves the cheap heartbeats behind it.
        Job job("nn.block-report");
        int64_t blocks = payload->blocks;
        job.Compute(static_cast<WorkUnits>(blocks) * config_.per_block_report_cost)
            .Run([this, dn, blocks] {
              auto it = datanodes_.find(dn);
              if (it != datanodes_.end() && it->second.registered) {
                it->second.blocks = blocks;
                it->second.last_heartbeat = sim_->Now();
                ++result_->reports_processed;
              }
            });
        handler_.Enqueue(std::move(job));
        break;
      }
      default:
        break;
    }
  }

  void ExpirySweep() {
    // HDFS's heartbeat monitor: a separate thread that briefly takes the
    // namespace lock to expire stale DataNodes. The cheap sweep runs here;
    // each expiry queues lock-held work on the handler.
    Job sweep("nn.expiry-sweep");
    sweep.Compute(static_cast<WorkUnits>(datanodes_.size() + 1) * 200).Run([this] {
      VirtualTime now = sim_->Now();
      for (auto& [dn, state] : datanodes_) {
        if (!state.registered || !state.alive) {
          continue;
        }
        if (now - state.last_heartbeat > config_.expiry_interval) {
          state.alive = false;
          state.ever_dead = true;
          ++result_->dead_marks;
          ScheduleScan();
        }
      }
    });
    monitor_.Enqueue(std::move(sweep));
  }

  void ScheduleScan() {
    if (scan_inflight_) {
      scan_dirty_ = true;
      return;
    }
    scan_inflight_ = true;
    BuildScanJob();
  }

  // The re-replication planning scan: a pure function of the block map and
  // liveness (PIL-safe) — it takes the PIL in replay mode. Runs on the
  // handler thread: in HDFS the scan chunks hold the namespace lock.
  void BuildScanJob() {
    struct ScanState {
      DigestValue digest;
      int64_t dead_blocks = 0;
      int64_t alive_count = 0;
    };
    auto state = std::make_shared<ScanState>();

    Job job("nn.re-replication-scan");
    job.Run([this, state] {
      ++result_->scans_run;
      scan_dirty_ = false;
      Digest d;
      for (const auto& [dn, dn_state] : datanodes_) {
        d.Add(static_cast<int64_t>(dn));
        d.Add(dn_state.blocks);
        d.Add(dn_state.alive);
        if (!dn_state.alive) {
          state->dead_blocks += dn_state.blocks;
        } else {
          ++state->alive_count;
        }
      }
      state->digest = d.Finish();
    });
    pil_->Apply(
        &job, scan_fn_, [state] { return state->digest; },
        [this, state] {
          // Plan every under-replicated block against every live target.
          PilBoundary::ComputeOutput out;
          int64_t moves = state->dead_blocks;
          out.work = state->dead_blocks * std::max<int64_t>(1, state->alive_count) *
                     config_.per_block_per_node_scan_cost;
          out.output.resize(sizeof(moves));
          std::memcpy(out.output.data(), &moves, sizeof(moves));
          return out;
        },
        [this, state](const std::vector<uint8_t>& output, bool) {
          result_->scan_seconds.Add(
              pil_->WorkToDuration(state->dead_blocks *
                                   std::max<int64_t>(1, state->alive_count) *
                                   config_.per_block_per_node_scan_cost)
                  .seconds());
        });
    job.Run([this] {
      scan_inflight_ = false;
      if (scan_dirty_) {
        ScheduleScan();
      }
    });
    handler_.Enqueue(std::move(job));
  }

  Simulator* sim_;
  NetworkModel* net_;
  DfsConfig config_;
  PilBoundary* pil_;
  PilFunctionId scan_fn_;
  DfsResult* result_;
  SimThread handler_;  // the FSNamesystem lock: one serialized handler
  SimThread monitor_;
  PeriodicTimer expiry_timer_;
  std::map<NodeId, DnState> datanodes_;
  bool scan_inflight_ = false;
  bool scan_dirty_ = false;
};

class DataNode {
 public:
  DataNode(Simulator* sim, NetworkModel* net, Machine* machine, NodeId id,
           const DfsConfig& config)
      : sim_(sim),
        net_(net),
        config_(config),
        id_(id),
        thread_(sim, machine, StrFormat("dn%d", id)),
        heartbeat_timer_(sim, config.heartbeat_interval, [this] { SendHeartbeat(); }),
        report_timer_(sim, config.report_interval, [this] { SendReport(); }) {}

  void Start() {
    net_->RegisterNode(id_, [this](const Message& msg) { OnMessage(msg); });
    RegisterAndReport();
    heartbeat_timer_.Start(config_.heartbeat_interval);
    report_timer_.Start(config_.report_interval);
  }

 private:
  void RegisterAndReport() {
    Job job("dn.register");
    job.Compute(2000).Run([this] {
      auto reg = std::make_shared<DfsPayload>();
      reg->blocks = config_.blocks_per_node;
      net_->Send(id_, kNameNode, kDfsRegister, std::move(reg));
      auto report = std::make_shared<DfsPayload>();
      report->blocks = config_.blocks_per_node;
      net_->Send(id_, kNameNode, kDfsBlockReport, std::move(report));
    });
    thread_.Enqueue(std::move(job));
  }

  void SendHeartbeat() {
    Job job("dn.heartbeat");
    job.Compute(800).Run([this] {
      auto hb = std::make_shared<DfsPayload>();
      hb->blocks = config_.blocks_per_node;
      net_->Send(id_, kNameNode, kDfsHeartbeat, std::move(hb));
    });
    thread_.Enqueue(std::move(job));
  }

  void SendReport() {
    Job job("dn.report");
    job.Compute(static_cast<WorkUnits>(config_.blocks_per_node) / 10).Run([this] {
      auto report = std::make_shared<DfsPayload>();
      report->blocks = config_.blocks_per_node;
      net_->Send(id_, kNameNode, kDfsBlockReport, std::move(report));
    });
    thread_.Enqueue(std::move(job));
  }

  void OnMessage(const Message& msg) {
    auto payload = std::static_pointer_cast<const DfsPayload>(msg.payload);
    if (msg.type == kDfsRegisterAck && payload->reregister_cmd) {
      RegisterAndReport();  // full report again — the storm feedback
    }
  }

  Simulator* sim_;
  NetworkModel* net_;
  DfsConfig config_;
  NodeId id_;
  SimThread thread_;
  PeriodicTimer heartbeat_timer_;
  PeriodicTimer report_timer_;
};

}  // namespace

const char* DfsModeName(DfsMode mode) {
  switch (mode) {
    case DfsMode::kRealScale:
      return "Real";
    case DfsMode::kColocated:
      return "Colo";
    case DfsMode::kMemoize:
      return "Memoize";
    case DfsMode::kPilReplay:
      return "SC+PIL";
  }
  return "?";
}

std::string DfsResult::Summary() const {
  return StrFormat(
      "dfs N=%d: dead_marks=%lld rereg=%lld reports=%lld shed=%lld scans=%lld "
      "(avg %.3fs) dur=%s stable=%s%s nn_util=%.1f%%",
      datanodes, static_cast<long long>(dead_marks),
      static_cast<long long>(re_registrations),
      static_cast<long long>(reports_processed), static_cast<long long>(reports_shed),
      static_cast<long long>(scans_run), scan_seconds.mean(),
      test_duration.ToString().c_str(), stabilize_time.ToString().c_str(),
      stabilized ? "" : "(!)", namenode_utilization * 100.0);
}

DfsResult RunDfsStartup(const DfsConfig& config, DfsMode mode, MemoStore* memo) {
  DfsResult result;
  result.datanodes = config.datanodes;

  Simulator sim(config.seed);
  int total_nodes = config.datanodes + 1;
  MachineSpec spec = MachineSpec::Nome();
  int machines_count = mode == DfsMode::kRealScale ? total_nodes : 1;
  MachineSet machines(&sim, spec, machines_count);
  Machine* nn_machine = machines.Place(kNameNode, mode == DfsMode::kRealScale
                                                      ? 1
                                                      : total_nodes);

  NetworkModel::Config net_config;
  NetworkModel net(&sim, net_config, Mix64(config.seed ^ 0xdf5));
  net.set_same_machine_fn(
      [&machines](NodeId a, NodeId b) { return machines.SameMachine(a, b); });

  PilMode pil_mode = PilMode::kDirect;
  if (mode == DfsMode::kMemoize) {
    pil_mode = PilMode::kMemoize;
    CHECK_NOTNULL(memo);
  } else if (mode == DfsMode::kPilReplay) {
    pil_mode = PilMode::kReplay;
    CHECK_NOTNULL(memo);
  }
  PilBoundary pil(&sim, pil_mode, memo, spec.core_speed);

  FunctionRegistry registry;
  PilFunctionId scan_fn = registry.Register(
      "nameNode.reReplicationScan", "O(blocks * N)", SideEffects{}, true);

  NameNode namenode(&sim, &net, nn_machine, config, &pil, scan_fn, &result);
  std::vector<std::unique_ptr<DataNode>> datanodes;
  for (NodeId id = 1; id <= config.datanodes; ++id) {
    Machine* machine = machines.Place(id, mode == DfsMode::kRealScale ? 1 : total_nodes);
    datanodes.push_back(std::make_unique<DataNode>(&sim, &net, machine, id, config));
    VirtualDuration at = config.start_stagger * static_cast<int64_t>(id);
    DataNode* dn = datanodes.back().get();
    sim.ScheduleAfter(at, [dn] { dn->Start(); });
  }

  // Stability polling, Cassandra-harness style.
  bool stable = false;
  VirtualTime stable_since;
  VirtualTime stop_at = VirtualTime::Max();
  VirtualTime horizon = VirtualTime::Zero() + config.horizon;
  PeriodicTimer checker(&sim, VirtualDuration::Seconds(5), [&] {
    if (!stable && namenode.Stable()) {
      stable = true;
      stable_since = sim.Now();
      stop_at = std::min(horizon, sim.Now() + VirtualDuration::Seconds(20));
    } else if (stable && !namenode.Stable()) {
      stable = false;  // relapsed (storm feedback)
      stop_at = VirtualTime::Max();
    }
    if (stable && sim.Now() >= stop_at) {
      sim.RequestStop();
    }
  });
  checker.Start(VirtualDuration::Seconds(5));

  sim.Run(horizon);
  checker.Stop();

  result.stabilized = stable;
  result.stabilize_time =
      stable ? stable_since - VirtualTime::Zero() : sim.Now() - VirtualTime::Zero();
  result.test_duration = sim.Now() - VirtualTime::Zero();
  result.reports_shed = static_cast<int64_t>(namenode.reports_shed());
  result.namenode_utilization = nn_machine->cpu().Utilization();
  result.pil = pil.stats();
  return result;
}

}  // namespace scalecheck
