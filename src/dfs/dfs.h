// A second scale-check target (§7 future work: "integrate the process to
// other distributed systems beyond Cassandra"): an HDFS-like master/worker
// filesystem.
//
// The system: one NameNode serializes all metadata work on its namespace
// lock (modelled faithfully as a single handler thread — HDFS's global
// FSNamesystem lock); N DataNodes send heartbeats every few seconds and full
// block reports periodically and at registration.
//
// The scalability bug (the HDFS-BR/REGISTER class from the §2 study — the
// *serialization* family that is 53% of the paper's bugs): at cluster
// startup every DataNode registers and ships a full block report. Report
// processing is O(blocks) under the lock; heartbeats queue behind reports;
// when a DataNode goes unheard past the expiry interval the NameNode marks
// it dead — which queues an O(blocks·N) re-replication scan (more lock time)
// and the "dead" DataNode eventually re-registers with ANOTHER full report.
// Past a scale threshold the feedback loop keeps the NameNode saturated for
// the whole run; below it, startup is uneventful — a textbook scalability
// bug invisible in small-cluster testing.
//
// Scale-check applies exactly as for Cassandra: the re-replication scan is
// PIL-safe (a pure function of the block map) and takes the PIL in replays;
// report processing holds the lock and sheds when stale, so the PIL sleep
// reproduces the serialization behaviour without the colocation CPU skew.

#ifndef SCALECHECK_SRC_DFS_DFS_H_
#define SCALECHECK_SRC_DFS_DFS_H_

#include <map>
#include <memory>
#include <vector>

#include "src/common/rng.h"
#include "src/common/stats.h"
#include "src/pil/boundary.h"
#include "src/sim/machine.h"
#include "src/sim/network.h"
#include "src/sim/thread.h"

namespace scalecheck {

enum DfsMessageType : int {
  kDfsRegister = 30,
  kDfsHeartbeat = 31,
  kDfsBlockReport = 32,
  kDfsRegisterAck = 33,
};

struct DfsConfig {
  int datanodes = 64;
  int64_t blocks_per_node = 200000;
  VirtualDuration heartbeat_interval = VirtualDuration::Seconds(3);
  // NameNode marks a DataNode dead after this much heartbeat silence.
  VirtualDuration expiry_interval = VirtualDuration::Seconds(30);
  VirtualDuration report_interval = VirtualDuration::Seconds(120);
  // Startup jitter across DataNodes.
  VirtualDuration start_stagger = VirtualDuration::Millis(150);
  // NameNode handler shedding: queued work older than this is dropped
  // (HDFS's RPC queue timeouts).
  VirtualDuration handler_timeout = VirtualDuration::Seconds(8);

  // Work-unit costs (calibrated like the Cassandra substrate's op costs).
  WorkUnits heartbeat_cost = 4000;
  WorkUnits per_block_report_cost = 1500;    // O(blocks) under the lock
  // Re-replication scan: per (block, candidate target) — O(blocks * N).
  WorkUnits per_block_per_node_scan_cost = 4;

  VirtualDuration horizon = VirtualDuration::Seconds(300);
  uint64_t seed = 0xdf5;
};

struct DfsResult {
  int datanodes = 0;
  int64_t dead_marks = 0;        // the "flap" analogue: live DNs marked dead
  int64_t re_registrations = 0;  // storm feedback signal
  int64_t reports_processed = 0;
  int64_t reports_shed = 0;
  int64_t scans_run = 0;
  RunningStat scan_seconds;
  bool stabilized = false;            // all DNs alive & quiet at the end
  VirtualDuration stabilize_time;     // when the cluster last became stable
  VirtualDuration test_duration;
  double namenode_utilization = 0.0;
  PilBoundary::Stats pil;

  std::string Summary() const;
};

// Deployment modes mirror the Cassandra harness.
enum class DfsMode : int {
  kRealScale = 0,  // NameNode and each DataNode on dedicated machines
  kColocated = 1,  // everything on one 16-core machine
  kMemoize = 2,
  kPilReplay = 3,
};

const char* DfsModeName(DfsMode mode);

// Runs the startup-storm workload and reports. For kMemoize/kPilReplay pass
// the store to fill/read.
DfsResult RunDfsStartup(const DfsConfig& config, DfsMode mode,
                        MemoStore* memo = nullptr);

}  // namespace scalecheck

#endif  // SCALECHECK_SRC_DFS_DFS_H_
