// The pending-range calculator generations.
//
// Four historical implementations of the same pure function (see
// pending_ranges.h for the semantics), reproducing the cost evolution that §2
// of the paper narrates:
//
//   kV1PreC3831     the original: for every future range, natural endpoints
//                   are recomputed with a full per-node ring scan —
//                   O(M * E^2 * n) where E = ring entries (N*P) and n =
//                   nodes; with P=1 this is the paper's cubic blowup
//                   (decommission flapping at 200+ nodes).
//   kV2C3831Fix     the C3831 fix: sort-based natural endpoints,
//                   O(M * E^2 * log E). Fine with P=1; with vnodes E = N*P
//                   and the quadratic term explodes again — bug C3881.
//   kV3C3881Fix     the C3881 redesign: only ranges adjacent to changed
//                   tokens are recomputed, but each invocation still clones
//                   and scans the ring under the ring lock —
//                   O(E log E + M * P * rf * log E). Cheap per call, yet bug
//                   C5456 shows the *lock hold* under frequent invocation
//                   still stalls gossip.
//   kBootstrapC6127 the fresh-bootstrap path (only exercised when a cluster
//                   starts from scratch): ring construction with linear
//                   scans, O(M * E^2) — bug C6127.
//
// Every implementation must produce output identical to kReference; the bugs
// are about time, never about wrong results. Execute() runs the real loop
// nest and counts abstract ops; ModelOps() predicts that count in closed form
// (unit tests pin them together). Run() executes for real below a size
// threshold and otherwise uses the reference output with modelled cost — the
// paper's own PIL insight applied to our harness (DESIGN.md §2).

#ifndef SCALECHECK_SRC_RING_CALCULATORS_H_
#define SCALECHECK_SRC_RING_CALCULATORS_H_

#include <memory>
#include <string>

#include "src/common/types.h"
#include "src/ring/pending_ranges.h"

namespace scalecheck {

enum class CalcVersion : int {
  kReference = 0,
  kV1PreC3831 = 1,
  kV2C3831Fix = 2,
  kV3C3881Fix = 3,
  kBootstrapC6127 = 4,
};

const char* CalcVersionName(CalcVersion version);

class PendingRangeCalculator {
 public:
  virtual ~PendingRangeCalculator() = default;

  virtual CalcVersion version() const = 0;
  virtual const char* name() const = 0;
  // Human-readable complexity, for reports (E = N*P ring entries).
  virtual const char* complexity() const = 0;

  // Runs the real loop nest: real data structures, real (redundant) scans,
  // counted ops, correct output.
  virtual CalcResult Execute(const CalcInput& input) const = 0;

  // Closed-form prediction of Execute()'s op count.
  virtual int64_t ModelOps(const CalcInput& input) const = 0;

  // Work units charged per abstract op. Calibrated so that offending-function
  // durations at the paper's scales span its observed 0.001–4s range (§3);
  // one op stands for a handful of JVM-era collection operations.
  virtual WorkUnits op_cost() const = 0;

  WorkUnits ModelWork(const CalcInput& input) const {
    return ModelOps(input) * op_cost();
  }

  struct RunOutcome {
    PendingRanges pending;
    WorkUnits work = 0;  // to charge to the CPU model
    int64_t ops = 0;
    bool executed = false;  // true: real loop nest ran; false: modelled
  };

  // Executes for real when the predicted op count is at most
  // `execute_threshold_ops`; otherwise computes the (identical) output via
  // the reference algorithm and charges ModelWork(). The default threshold
  // keeps harness wall-clock sane at 256-node scales.
  RunOutcome Run(const CalcInput& input,
                 int64_t execute_threshold_ops = 2'000'000) const;
};

// Factory for all generations (including kReference).
std::unique_ptr<PendingRangeCalculator> MakeCalculator(CalcVersion version);

// The reference algorithm, exposed for direct use (output oracle).
CalcResult ComputeReferencePendingRanges(const CalcInput& input);

}  // namespace scalecheck

#endif  // SCALECHECK_SRC_RING_CALCULATORS_H_
