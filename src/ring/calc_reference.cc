// Reference pending-range calculator: the efficient oracle every buggy
// generation must agree with.

#include <cmath>

#include "src/common/check.h"
#include "src/ring/calc_internal.h"
#include "src/ring/calculators.h"

namespace scalecheck {

using calc_internal::Log2Ceil;

CalcResult ComputeReferencePendingRanges(const CalcInput& input) {
  CHECK_NOTNULL(input.ring);
  CalcResult result;
  TokenRing future = input.BuildFutureRing();
  result.ops += static_cast<int64_t>(future.num_entries());  // construction

  const TokenRing& current = *input.ring;
  int64_t per_lookup =
      Log2Ceil(std::max<size_t>(2, future.num_entries())) + input.rf;
  for (size_t i = 0; i < future.num_entries(); ++i) {
    Token key = future.entries()[i].token;
    std::vector<NodeId> fr = future.NaturalEndpointsForKey(key, input.rf);
    std::vector<NodeId> cr = current.NaturalEndpointsForKey(key, input.rf);
    result.ops += 2 * per_lookup + static_cast<int64_t>(fr.size() * cr.size());
    for (NodeId target : fr) {
      bool already = false;
      for (NodeId existing : cr) {
        if (existing == target) {
          already = true;
          break;
        }
      }
      if (!already) {
        result.pending.Add(future.RangeOfEntry(i), target);
      }
    }
  }
  result.pending.Normalize();
  return result;
}

namespace {

class ReferenceCalculator : public PendingRangeCalculator {
 public:
  CalcVersion version() const override { return CalcVersion::kReference; }
  const char* name() const override { return "reference"; }
  const char* complexity() const override { return "O(M + E*(log E + rf))"; }

  CalcResult Execute(const CalcInput& input) const override {
    return ComputeReferencePendingRanges(input);
  }

  int64_t ModelOps(const CalcInput& input) const override {
    TokenRing future = input.BuildFutureRing();
    size_t entries = future.num_entries();
    int64_t per_lookup = Log2Ceil(std::max<size_t>(2, entries)) + input.rf;
    return static_cast<int64_t>(entries) * (2 * per_lookup + input.rf * input.rf) +
           static_cast<int64_t>(entries);
  }

  WorkUnits op_cost() const override { return 40; }
};

}  // namespace

PendingRangeCalculator::RunOutcome PendingRangeCalculator::Run(
    const CalcInput& input, int64_t execute_threshold_ops) const {
  RunOutcome outcome;
  int64_t predicted = ModelOps(input);
  if (predicted <= execute_threshold_ops) {
    CalcResult r = Execute(input);
    outcome.pending = std::move(r.pending);
    outcome.ops = r.ops;
    outcome.work = r.ops * op_cost();
    outcome.executed = true;
  } else {
    CalcResult r = ComputeReferencePendingRanges(input);
    outcome.pending = std::move(r.pending);
    outcome.ops = predicted;
    outcome.work = predicted * op_cost();
    outcome.executed = false;
  }
  return outcome;
}

const char* CalcVersionName(CalcVersion version) {
  switch (version) {
    case CalcVersion::kReference:
      return "reference";
    case CalcVersion::kV1PreC3831:
      return "v1-pre-C3831";
    case CalcVersion::kV2C3831Fix:
      return "v2-C3831-fix";
    case CalcVersion::kV3C3881Fix:
      return "v3-C3881-fix";
    case CalcVersion::kBootstrapC6127:
      return "bootstrap-C6127";
  }
  return "?";
}

std::unique_ptr<PendingRangeCalculator> MakeReferenceCalculator() {
  return std::make_unique<ReferenceCalculator>();
}

}  // namespace scalecheck
