// Internal helpers shared by the calculator implementations. Not part of the
// public API.

#ifndef SCALECHECK_SRC_RING_CALC_INTERNAL_H_
#define SCALECHECK_SRC_RING_CALC_INTERNAL_H_

#include <memory>

#include "src/ring/calculators.h"

namespace scalecheck {

std::unique_ptr<PendingRangeCalculator> MakeReferenceCalculator();
std::unique_ptr<PendingRangeCalculator> MakeV1Calculator();
std::unique_ptr<PendingRangeCalculator> MakeV2Calculator();
std::unique_ptr<PendingRangeCalculator> MakeV3Calculator();
std::unique_ptr<PendingRangeCalculator> MakeBootstrapCalculator();

namespace calc_internal {

inline int64_t Log2Ceil(size_t n) {
  int64_t bits = 1;
  while ((size_t{1} << bits) < n) {
    ++bits;
  }
  return bits;
}

// Clockwise distance from `key` to `token` on the wrapping ring. The owner
// of a key is the token at minimal clockwise distance (ties impossible:
// tokens are distinct).
inline uint64_t ClockwiseDistance(Token key, Token token) { return token - key; }

}  // namespace calc_internal
}  // namespace scalecheck

#endif  // SCALECHECK_SRC_RING_CALC_INTERNAL_H_
