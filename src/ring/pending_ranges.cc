#include "src/ring/pending_ranges.h"

#include <algorithm>
#include <cstring>

#include "src/common/check.h"

namespace scalecheck {

void PendingRanges::Add(KeyRange range, NodeId target) {
  items_.push_back(PendingRange{range, target});
}

void PendingRanges::Normalize() {
  std::sort(items_.begin(), items_.end());
  items_.erase(std::unique(items_.begin(), items_.end()), items_.end());
}

DigestValue PendingRanges::ComputeDigest() const {
  Digest d;
  d.Add(static_cast<uint64_t>(items_.size()));
  for (const PendingRange& p : items_) {
    d.Add(static_cast<uint64_t>(p.range.start));
    d.Add(static_cast<uint64_t>(p.range.end));
    d.Add(static_cast<int64_t>(p.target));
  }
  return d.Finish();
}

namespace {
template <typename T>
void PutRaw(std::vector<uint8_t>* out, T v) {
  const auto* p = reinterpret_cast<const uint8_t*>(&v);
  out->insert(out->end(), p, p + sizeof(T));
}

template <typename T>
bool GetRaw(const std::vector<uint8_t>& in, size_t* pos, T* v) {
  if (*pos + sizeof(T) > in.size()) {
    return false;
  }
  std::memcpy(v, in.data() + *pos, sizeof(T));
  *pos += sizeof(T);
  return true;
}
}  // namespace

std::vector<uint8_t> PendingRanges::Encode() const {
  std::vector<uint8_t> out;
  out.reserve(8 + items_.size() * 20);
  PutRaw<uint64_t>(&out, items_.size());
  for (const PendingRange& p : items_) {
    PutRaw<uint64_t>(&out, p.range.start);
    PutRaw<uint64_t>(&out, p.range.end);
    PutRaw<int32_t>(&out, p.target);
  }
  return out;
}

bool PendingRanges::Decode(const std::vector<uint8_t>& bytes, PendingRanges* out) {
  CHECK_NOTNULL(out);
  out->items_.clear();
  size_t pos = 0;
  uint64_t count = 0;
  if (!GetRaw(bytes, &pos, &count)) {
    return false;
  }
  out->items_.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    PendingRange p;
    if (!GetRaw(bytes, &pos, &p.range.start) || !GetRaw(bytes, &pos, &p.range.end) ||
        !GetRaw(bytes, &pos, &p.target)) {
      return false;
    }
    out->items_.push_back(p);
  }
  return pos == bytes.size();
}

DigestValue CalcInput::ComputeDigest() const {
  CHECK_NOTNULL(ring);
  Digest d;
  DigestValue ring_digest = ring->ComputeDigest();
  d.Add(ring_digest.lo);
  d.Add(ring_digest.hi);
  d.Add(static_cast<int64_t>(rf));
  d.Add(static_cast<uint64_t>(changes.size()));
  for (const PendingChange& c : changes) {
    d.Add(static_cast<int64_t>(c.node));
    d.Add(static_cast<int64_t>(c.kind));
    d.AddRange(c.tokens);
  }
  return d.Finish();
}

TokenRing CalcInput::BuildFutureRing() const {
  CHECK_NOTNULL(ring);
  TokenRing future = ring->Clone();
  for (const PendingChange& c : changes) {
    switch (c.kind) {
      case ChangeKind::kLeaving:
        if (future.HasNode(c.node)) {
          future.RemoveNode(c.node);
        }
        break;
      case ChangeKind::kJoining:
        CHECK(!c.tokens.empty()) << "joining node" << c.node << "without tokens";
        if (!future.HasNode(c.node)) {
          future.AddNode(c.node, c.tokens);
        }
        break;
    }
  }
  return future;
}

}  // namespace scalecheck
