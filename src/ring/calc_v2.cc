// Generation 2: the C3831 fix.
//
// Natural endpoints are now found by materializing (distance, owner) for all
// ring entries and sorting once — O(E log E) per key instead of O(n*E). Still
// recomputed for every future range and for every in-flight change:
// O(M * E^2 * log E). With one token per node this shipped fine; the moment
// virtual nodes multiplied E by P=256 (CASSANDRA-3881), the quadratic term
// exploded again — "the fix above did not scale as N becomes N*P" (§2,
// Figure 3b).

#include <algorithm>

#include "src/common/check.h"
#include "src/ring/calc_internal.h"

namespace scalecheck {
namespace {

using calc_internal::ClockwiseDistance;
using calc_internal::Log2Ceil;

std::vector<NodeId> NaturalEndpointsBySorting(const TokenRing& ring, Token key, int rf,
                                              int64_t* ops) {
  std::vector<std::pair<uint64_t, NodeId>> by_distance;
  by_distance.reserve(ring.num_entries());
  for (const RingEntry& entry : ring.entries()) {
    ++*ops;
    by_distance.emplace_back(ClockwiseDistance(key, entry.token), entry.owner);
  }
  std::sort(by_distance.begin(), by_distance.end());
  *ops += static_cast<int64_t>(by_distance.size()) *
          Log2Ceil(std::max<size_t>(2, by_distance.size()));
  std::vector<NodeId> replicas;
  for (const auto& [distance, owner] : by_distance) {
    if (std::find(replicas.begin(), replicas.end(), owner) == replicas.end()) {
      replicas.push_back(owner);
      if (replicas.size() == static_cast<size_t>(rf)) {
        break;
      }
    }
  }
  return replicas;
}

class V2Calculator : public PendingRangeCalculator {
 public:
  CalcVersion version() const override { return CalcVersion::kV2C3831Fix; }
  const char* name() const override { return "calculatePendingRanges/v2"; }
  const char* complexity() const override { return "O(M * E^2 * log E)"; }

  CalcResult Execute(const CalcInput& input) const override {
    CHECK_NOTNULL(input.ring);
    CalcResult result;
    const TokenRing& current = *input.ring;
    for (size_t m = 0; m < input.changes.size(); ++m) {
      TokenRing future = input.BuildFutureRing();
      result.ops += static_cast<int64_t>(future.num_entries());
      result.pending = PendingRanges();
      for (size_t i = 0; i < future.num_entries(); ++i) {
        Token key = future.entries()[i].token;
        std::vector<NodeId> fr =
            NaturalEndpointsBySorting(future, key, input.rf, &result.ops);
        std::vector<NodeId> cr =
            NaturalEndpointsBySorting(current, key, input.rf, &result.ops);
        for (NodeId target : fr) {
          if (std::find(cr.begin(), cr.end(), target) == cr.end()) {
            result.pending.Add(future.RangeOfEntry(i), target);
          }
        }
      }
    }
    result.pending.Normalize();
    return result;
  }

  int64_t ModelOps(const CalcInput& input) const override {
    const TokenRing& current = *input.ring;
    TokenRing future = input.BuildFutureRing();
    int64_t ef = static_cast<int64_t>(future.num_entries());
    int64_t ec = static_cast<int64_t>(current.num_entries());
    int64_t m = static_cast<int64_t>(input.changes.size());
    int64_t per_key = ef + ef * Log2Ceil(std::max<size_t>(2, future.num_entries())) +
                      ec + ec * Log2Ceil(std::max<size_t>(2, current.num_entries()));
    return m * (ef + ef * per_key);
  }

  // Calibrated (DESIGN.md §8): with P=8 vnodes the offending duration is
  // ~0.2s at N=64, ~3s at N=128 and ~25s at N=256 per in-flight change set —
  // the C3881 symptom onset moves down to ~128 nodes, exactly Figure 3(b)'s
  // story.
  WorkUnits op_cost() const override { return 40; }
};

}  // namespace

std::unique_ptr<PendingRangeCalculator> MakeV2Calculator() {
  return std::make_unique<V2Calculator>();
}

}  // namespace scalecheck
