// The consistent-hashing token ring (Cassandra's TokenMetadata).
//
// Each node owns P tokens (P=1 without virtual nodes, P=256 in vnode-era
// Cassandra). The ring is the scale-dependent data structure of this paper:
// every one of the studied pending-range bugs is a loop nest over it. Keys in
// (predecessor_token, token] belong to the owner of `token`; the replica set
// of a key is the first RF distinct owners met walking clockwise.

#ifndef SCALECHECK_SRC_RING_TOKEN_RING_H_
#define SCALECHECK_SRC_RING_TOKEN_RING_H_

#include <cstdint>
#include <vector>

#include "src/common/flat_map.h"
#include "src/common/hash.h"
#include "src/common/types.h"
#include "src/gossip/endpoint_state.h"  // Token

namespace scalecheck {

struct RingEntry {
  Token token = 0;
  NodeId owner = kInvalidNode;

  bool operator==(const RingEntry&) const = default;
};

// A key range (start, end], wrapping at 2^64.
struct KeyRange {
  Token start = 0;
  Token end = 0;

  bool Contains(Token key) const;
  bool operator==(const KeyRange&) const = default;
  auto operator<=>(const KeyRange&) const = default;
};

// Non-owning view of one node's sorted tokens inside the ring's pooled
// storage. Valid until the next AddNode/RemoveNode on that ring.
struct TokenSpan {
  const Token* ptr = nullptr;
  size_t len = 0;

  const Token* begin() const { return ptr; }
  const Token* end() const { return ptr + len; }
  size_t size() const { return len; }
  bool empty() const { return len == 0; }
  Token operator[](size_t i) const { return ptr[i]; }
};

class TokenRing {
 public:
  TokenRing() = default;

  // Adds a node with its tokens. Tokens must be distinct ring-wide.
  void AddNode(NodeId node, const std::vector<Token>& tokens);
  void RemoveNode(NodeId node);
  bool HasNode(NodeId node) const { return tokens_by_node_.count(node) > 0; }

  size_t num_entries() const { return entries_.size(); }
  size_t num_nodes() const { return tokens_by_node_.size(); }
  const std::vector<RingEntry>& entries() const { return entries_; }
  TokenSpan TokensOf(NodeId node) const;
  std::vector<NodeId> Nodes() const;

  // Index of the entry owning `key` (first token >= key, wrapping).
  // Requires a non-empty ring.
  size_t OwnerIndex(Token key) const;
  NodeId OwnerOf(Token key) const { return entries_[OwnerIndex(key)].owner; }

  // First `rf` distinct owners walking clockwise from the owner of `key`.
  // Returns fewer if the ring has fewer distinct nodes.
  std::vector<NodeId> NaturalEndpointsForKey(Token key, int rf) const;

  // The key range ending at entries()[i].token.
  KeyRange RangeOfEntry(size_t i) const;

  // Content digest (order-independent across insertion histories: entries
  // are kept sorted).
  DigestValue ComputeDigest() const;

  // Three flat vector copies, regardless of node count. The old layout
  // (std::map<NodeId, std::vector<Token>>) cost 2N allocations per clone,
  // and the pending-range calculators clone the ring on every invocation —
  // that one site was 70% of ALL allocations in an N=384 run.
  TokenRing Clone() const { return *this; }

  // Approximate heap footprint, for the memory model. Deliberately kept at
  // the pre-flattening formula: the memory model charges these bytes, and
  // the modelled footprint (what C3831 is about) must not silently shrink
  // because the harness got leaner.
  int64_t ApproxBytes() const {
    return static_cast<int64_t>(entries_.size()) * 48 +
           static_cast<int64_t>(tokens_by_node_.size()) * 64;
  }

 private:
  // Slice of token_storage_: each node's sorted tokens live contiguously.
  struct TokenSlice {
    uint32_t offset = 0;
    uint32_t len = 0;
  };

  std::vector<RingEntry> entries_;  // sorted by token
  FlatMap<NodeId, TokenSlice> tokens_by_node_;
  // Pooled token storage; RemoveNode leaves holes (bounded by membership
  // churn on this instance — clones copy them, which is still far cheaper
  // than per-node vectors).
  std::vector<Token> token_storage_;
};

// Deterministically generates `count` pseudo-random distinct tokens for a
// node; the same (node, count, seed) always yields the same tokens.
std::vector<Token> GenerateTokens(NodeId node, int count, uint64_t seed);

}  // namespace scalecheck

#endif  // SCALECHECK_SRC_RING_TOKEN_RING_H_
