// Pending-range calculation: types shared by all calculator generations.
//
// When nodes join (BOOT) or leave (LEAVING) the ring, every member must work
// out which key ranges will gain new replicas — the "pending ranges" that
// writes must additionally be sent to during the transition. The semantics
// used by every calculator in this library (so that all generations produce
// identical output and differ only in cost):
//
//   future ring  = current ring - leaving nodes' tokens + joining nodes'
//                  tokens
//   for each entry e of the future ring, with key range R(e):
//     pending(R(e)) = FutureReplicas(e.token) \ CurrentReplicas(e.token)
//
// This is a simplification of Cassandra's calculatePendingRanges (which also
// tracks per-range leaving sources), but it preserves exactly what matters
// for the paper: the output is a deterministic pure function of (ring,
// changes, rf) — i.e. PIL-safe — and the historical implementations realize
// it with wildly different scale-dependent cost.

#ifndef SCALECHECK_SRC_RING_PENDING_RANGES_H_
#define SCALECHECK_SRC_RING_PENDING_RANGES_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/hash.h"
#include "src/common/types.h"
#include "src/ring/token_ring.h"

namespace scalecheck {

enum class ChangeKind : int {
  kJoining = 0,  // BOOT: node claims `tokens`
  kLeaving = 1,  // LEAVING: node will give up its current tokens
};

struct PendingChange {
  NodeId node = kInvalidNode;
  ChangeKind kind = ChangeKind::kJoining;
  // Tokens being claimed (kJoining). Empty for kLeaving — the node's current
  // tokens are read from the ring.
  std::vector<Token> tokens;

  bool operator==(const PendingChange&) const = default;
};

struct PendingRange {
  KeyRange range;
  NodeId target = kInvalidNode;  // node gaining replica responsibility

  bool operator==(const PendingRange&) const = default;
  auto operator<=>(const PendingRange&) const = default;
};

// The calculator output: sorted, deduplicated, digestible, serializable.
class PendingRanges {
 public:
  void Add(KeyRange range, NodeId target);
  // Sorts + dedupes; must be called before comparing/serializing.
  void Normalize();

  const std::vector<PendingRange>& items() const { return items_; }
  size_t size() const { return items_.size(); }
  bool empty() const { return items_.empty(); }

  DigestValue ComputeDigest() const;

  // Binary codec (used by the PIL memoization store).
  std::vector<uint8_t> Encode() const;
  static bool Decode(const std::vector<uint8_t>& bytes, PendingRanges* out);

  bool operator==(const PendingRanges&) const = default;

 private:
  std::vector<PendingRange> items_;
};

// Calculator input. `ring` is the current ring; `changes` the in-flight
// membership changes; `rf` the replication factor.
struct CalcInput {
  const TokenRing* ring = nullptr;
  std::vector<PendingChange> changes;
  int rf = 3;

  // Content digest of the input — the PIL memoization key.
  DigestValue ComputeDigest() const;
  // Builds the future ring (shared by all calculator generations).
  TokenRing BuildFutureRing() const;
};

struct CalcResult {
  PendingRanges pending;
  // Abstract operation count of the *executed* loop nest (before the
  // per-generation op-cost multiplier turns it into WorkUnits).
  int64_t ops = 0;
};

}  // namespace scalecheck

#endif  // SCALECHECK_SRC_RING_PENDING_RANGES_H_
