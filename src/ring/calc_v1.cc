// Generation 1: the pre-C3831 pending-range calculation.
//
// Faithful to the bug's structure: the whole pending-range map is recomputed
// from scratch *for every in-flight change*, and natural endpoints are found
// by, for each candidate node, scanning every ring entry to find that node's
// closest clockwise token, then ordering nodes by distance. With E ring
// entries and n nodes that is O(M * E * (n*E + n log n)) — the cubic
// scale-dependence (P=1 ⇒ E=n=N ⇒ O(M*N^3)) whose symptoms only surface past
// ~200 nodes (Figure 3a).

#include <algorithm>

#include "src/common/check.h"
#include "src/ring/calc_internal.h"

namespace scalecheck {
namespace {

using calc_internal::ClockwiseDistance;
using calc_internal::Log2Ceil;

// Natural endpoints via the quadratic per-node scan. Counts ops into *ops.
std::vector<NodeId> NaturalEndpointsQuadratic(const TokenRing& ring, Token key, int rf,
                                              int64_t* ops) {
  std::vector<std::pair<uint64_t, NodeId>> distances;
  std::vector<NodeId> nodes = ring.Nodes();
  distances.reserve(nodes.size());
  for (NodeId node : nodes) {
    uint64_t best = UINT64_MAX;
    // The faithful inefficiency: scan EVERY entry instead of this node's own
    // token list.
    for (const RingEntry& entry : ring.entries()) {
      ++*ops;
      if (entry.owner != node) {
        continue;
      }
      best = std::min(best, ClockwiseDistance(key, entry.token));
    }
    if (best != UINT64_MAX) {
      distances.emplace_back(best, node);
    }
  }
  std::sort(distances.begin(), distances.end());
  *ops += static_cast<int64_t>(distances.size()) *
          Log2Ceil(std::max<size_t>(2, distances.size()));
  std::vector<NodeId> replicas;
  for (size_t i = 0; i < distances.size() && i < static_cast<size_t>(rf); ++i) {
    replicas.push_back(distances[i].second);
  }
  return replicas;
}

class V1Calculator : public PendingRangeCalculator {
 public:
  CalcVersion version() const override { return CalcVersion::kV1PreC3831; }
  const char* name() const override { return "calculatePendingRanges/v1"; }
  const char* complexity() const override { return "O(M * E * (n*E + n log n))"; }

  CalcResult Execute(const CalcInput& input) const override {
    CHECK_NOTNULL(input.ring);
    CalcResult result;
    const TokenRing& current = *input.ring;
    // For every change, throw away previous work and recompute everything —
    // only the final iteration's result survives. (All iterations compute
    // the same thing: the future ring already includes all changes.)
    for (size_t m = 0; m < input.changes.size(); ++m) {
      TokenRing future = input.BuildFutureRing();
      result.ops += static_cast<int64_t>(future.num_entries());
      result.pending = PendingRanges();
      for (size_t i = 0; i < future.num_entries(); ++i) {
        Token key = future.entries()[i].token;
        std::vector<NodeId> fr =
            NaturalEndpointsQuadratic(future, key, input.rf, &result.ops);
        std::vector<NodeId> cr =
            NaturalEndpointsQuadratic(current, key, input.rf, &result.ops);
        for (NodeId target : fr) {
          if (std::find(cr.begin(), cr.end(), target) == cr.end()) {
            result.pending.Add(future.RangeOfEntry(i), target);
          }
        }
      }
    }
    result.pending.Normalize();
    return result;
  }

  int64_t ModelOps(const CalcInput& input) const override {
    // Mirror Execute()'s counting exactly.
    const TokenRing& current = *input.ring;
    TokenRing future = input.BuildFutureRing();
    int64_t ef = static_cast<int64_t>(future.num_entries());
    int64_t ec = static_cast<int64_t>(current.num_entries());
    int64_t nf = static_cast<int64_t>(future.num_nodes());
    int64_t nc = static_cast<int64_t>(current.num_nodes());
    int64_t m = static_cast<int64_t>(input.changes.size());
    int64_t per_key = nf * ef + nf * Log2Ceil(std::max<size_t>(2, future.num_nodes())) +
                      nc * ec + nc * Log2Ceil(std::max<size_t>(2, current.num_nodes()));
    return m * (ef + ef * per_key);
  }

  // Calibrated (see DESIGN.md §8): one abstract op stands for a handful of
  // JVM-era TreeMultimap operations. At this cost the offending function
  // takes ~25ms at N=32, ~1.3s at N=128 and ~11s at N=256 — past the phi=8
  // conviction horizon only at the largest scale, which is what makes the
  // C3831 symptom invisible in sub-200-node testing.
  WorkUnits op_cost() const override { return 360; }
};

}  // namespace

std::unique_ptr<PendingRangeCalculator> MakeV1Calculator() {
  return std::make_unique<V1Calculator>();
}

}  // namespace scalecheck
