// The C6127 fresh-bootstrap path.
//
// When a large cluster bootstraps from scratch — no established ring, every
// node simultaneously BOOT — execution takes a different code path that
// constructs the ring table from nothing, with linear scans instead of the
// indexed lookups the incremental path enjoys: inserts scan the growing
// table, and every replica lookup scans for the successor. O(E^2) per
// invocation with E = M*P entries. §2: "if customers bootstrap a large
// cluster (e.g. 500+ nodes) from scratch ... the execution traverses a
// different code path" — the poster child for path-dependent scalability
// bugs that sfind must report reachability conditions for.

#include <algorithm>

#include "src/common/check.h"
#include "src/ring/calc_internal.h"

namespace scalecheck {
namespace {

using calc_internal::ClockwiseDistance;

// Successor lookup by linear scan (no binary search on the fresh table).
std::vector<NodeId> NaturalEndpointsLinear(const std::vector<RingEntry>& entries,
                                           Token key, int rf, int64_t* ops) {
  // Find the owner index by scanning every entry for the minimal clockwise
  // distance.
  std::vector<NodeId> replicas;
  if (entries.empty()) {
    return replicas;
  }
  size_t best_idx = 0;
  uint64_t best = UINT64_MAX;
  for (size_t i = 0; i < entries.size(); ++i) {
    ++*ops;
    uint64_t d = ClockwiseDistance(key, entries[i].token);
    if (d < best) {
      best = d;
      best_idx = i;
    }
  }
  for (size_t walked = 0; walked < entries.size(); ++walked) {
    NodeId owner = entries[(best_idx + walked) % entries.size()].owner;
    ++*ops;
    if (std::find(replicas.begin(), replicas.end(), owner) == replicas.end()) {
      replicas.push_back(owner);
      if (replicas.size() == static_cast<size_t>(rf)) {
        break;
      }
    }
  }
  return replicas;
}

class BootstrapCalculator : public PendingRangeCalculator {
 public:
  CalcVersion version() const override { return CalcVersion::kBootstrapC6127; }
  const char* name() const override { return "freshRingConstruction/C6127"; }
  const char* complexity() const override { return "O(E^2), E = M*P fresh entries"; }

  CalcResult Execute(const CalcInput& input) const override {
    CHECK_NOTNULL(input.ring);
    CalcResult result;
    const TokenRing& current = *input.ring;

    // Fresh table construction: sorted-insert each token with a linear scan
    // of the growing table.
    std::vector<RingEntry> fresh;
    for (const RingEntry& e : current.entries()) {
      result.ops += static_cast<int64_t>(fresh.size()) / 2 + 1;
      fresh.push_back(e);
    }
    std::sort(fresh.begin(), fresh.end(),
              [](const RingEntry& a, const RingEntry& b) { return a.token < b.token; });
    for (const PendingChange& change : input.changes) {
      if (change.kind == ChangeKind::kLeaving) {
        // Leaving during fresh bootstrap: drop its entries with a full scan.
        result.ops += static_cast<int64_t>(fresh.size());
        fresh.erase(std::remove_if(fresh.begin(), fresh.end(),
                                   [&](const RingEntry& e) {
                                     return e.owner == change.node;
                                   }),
                    fresh.end());
        continue;
      }
      for (Token t : change.tokens) {
        auto it = fresh.begin();
        while (it != fresh.end() && it->token < t) {
          ++it;
          ++result.ops;  // the linear insert scan
        }
        fresh.insert(it, RingEntry{t, change.node});
      }
    }

    // One endpoints pass over the fresh table, linear successor lookups.
    for (size_t i = 0; i < fresh.size(); ++i) {
      Token key = fresh[i].token;
      std::vector<NodeId> fr = NaturalEndpointsLinear(fresh, key, input.rf, &result.ops);
      std::vector<NodeId> cr = current.NaturalEndpointsForKey(key, input.rf);
      result.ops += 8;
      for (NodeId target : fr) {
        if (std::find(cr.begin(), cr.end(), target) == cr.end()) {
          size_t prev = (i + fresh.size() - 1) % fresh.size();
          result.pending.Add(KeyRange{fresh[prev].token, fresh[i].token}, target);
        }
      }
    }
    result.pending.Normalize();
    return result;
  }

  int64_t ModelOps(const CalcInput& input) const override {
    int64_t ec = static_cast<int64_t>(input.ring->num_entries());
    int64_t added = 0;
    for (const PendingChange& change : input.changes) {
      if (change.kind == ChangeKind::kJoining) {
        added += static_cast<int64_t>(change.tokens.size());
      }
    }
    int64_t ef = ec + added;
    // Construction (~E^2/4 average insert scans on the added part) + the
    // E^2-ish endpoints pass.
    return ec / 2 + ec + added * (ec + added / 2) / 2 + ef * (ef + input.rf + 8);
  }

  WorkUnits op_cost() const override { return 90; }
};

}  // namespace

std::unique_ptr<PendingRangeCalculator> MakeBootstrapCalculator() {
  return std::make_unique<BootstrapCalculator>();
}

}  // namespace scalecheck
