// Generation 3: the C3881 redesign (vnode-aware).
//
// Only ranges whose replica walk can possibly cross a changed token are
// re-evaluated: for every changed token we walk *backward* in both rings
// until rf+1 distinct owners have been seen and mark the passed entries as
// candidates; each candidate is then checked exactly like the reference. Per
// invocation the dominant cost is no longer the per-range recomputation but
// the ring clone/rebuild performed under the ring-table lock — O(E log E) —
// which is precisely what bug C5456 is about: cheap math, long lock hold,
// frequent invocation, starved gossip stage (Figure 3c).

#include <algorithm>
#include <set>

#include "src/common/check.h"
#include "src/ring/calc_internal.h"

namespace scalecheck {
namespace {

using calc_internal::Log2Ceil;

// Walks backward from `start_index` collecting entry tokens until
// `distinct_owners` distinct owners have been seen (or the ring is
// exhausted). Counts each step as one op.
void CollectBackwardCandidates(const TokenRing& ring, size_t start_index,
                               int distinct_owners, std::set<Token>* candidates,
                               int64_t* ops) {
  if (ring.num_entries() == 0) {
    return;
  }
  std::vector<NodeId> owners_seen;
  size_t n = ring.num_entries();
  for (size_t walked = 0; walked < n; ++walked) {
    size_t idx = (start_index + n - (walked % n)) % n;
    const RingEntry& entry = ring.entries()[idx];
    ++*ops;
    candidates->insert(entry.token);
    if (std::find(owners_seen.begin(), owners_seen.end(), entry.owner) ==
        owners_seen.end()) {
      owners_seen.push_back(entry.owner);
      if (owners_seen.size() >= static_cast<size_t>(distinct_owners)) {
        return;
      }
    }
  }
}

class V3Calculator : public PendingRangeCalculator {
 public:
  CalcVersion version() const override { return CalcVersion::kV3C3881Fix; }
  const char* name() const override { return "calculatePendingRanges/v3"; }
  const char* complexity() const override {
    return "O(E log E + M * P * rf * (log E + rf))";
  }

  CalcResult Execute(const CalcInput& input) const override {
    CHECK_NOTNULL(input.ring);
    CalcResult result;
    const TokenRing& current = *input.ring;

    // C5456-era faithfulness: the token metadata is cloned and rebuilt once
    // PER IN-FLIGHT CHANGE, all of it under the ring lock. With hundreds of
    // simultaneously bootstrapping nodes this M * E log E term is what keeps
    // the lock hot even though the per-range math is cheap.
    TokenRing future;
    for (size_t m = 0; m < std::max<size_t>(1, input.changes.size()); ++m) {
      future = input.BuildFutureRing();
      result.ops += static_cast<int64_t>(future.num_entries()) *
                    Log2Ceil(std::max<size_t>(2, future.num_entries()));
    }

    std::set<Token> candidates;
    for (const PendingChange& change : input.changes) {
      std::vector<Token> changed_tokens;
      if (change.kind == ChangeKind::kJoining) {
        changed_tokens = change.tokens;
      } else if (current.HasNode(change.node)) {
        TokenSpan span = current.TokensOf(change.node);
        changed_tokens.assign(span.begin(), span.end());
      }
      for (Token t : changed_tokens) {
        if (future.num_entries() > 0) {
          CollectBackwardCandidates(future, future.OwnerIndex(t), input.rf + 1,
                                    &candidates, &result.ops);
        }
        if (current.num_entries() > 0) {
          CollectBackwardCandidates(current, current.OwnerIndex(t), input.rf + 1,
                                    &candidates, &result.ops);
        }
      }
    }

    int64_t per_lookup =
        Log2Ceil(std::max<size_t>(2, future.num_entries())) + input.rf;
    std::set<size_t> evaluated;
    for (Token key : candidates) {
      if (future.num_entries() == 0) {
        break;
      }
      size_t i = future.OwnerIndex(key);
      if (!evaluated.insert(i).second) {
        continue;
      }
      Token entry_token = future.entries()[i].token;
      std::vector<NodeId> fr = future.NaturalEndpointsForKey(entry_token, input.rf);
      std::vector<NodeId> cr = current.NaturalEndpointsForKey(entry_token, input.rf);
      result.ops += 2 * per_lookup;
      for (NodeId target : fr) {
        if (std::find(cr.begin(), cr.end(), target) == cr.end()) {
          result.pending.Add(future.RangeOfEntry(i), target);
        }
      }
    }
    result.pending.Normalize();
    return result;
  }

  int64_t ModelOps(const CalcInput& input) const override {
    const TokenRing& current = *input.ring;
    int64_t ec = static_cast<int64_t>(current.num_entries());
    int64_t changed_tokens = 0;
    int64_t leaving_tokens = 0;
    int64_t joining_tokens = 0;
    for (const PendingChange& change : input.changes) {
      if (change.kind == ChangeKind::kJoining) {
        joining_tokens += static_cast<int64_t>(change.tokens.size());
      } else if (current.HasNode(change.node)) {
        leaving_tokens += static_cast<int64_t>(current.TokensOf(change.node).size());
      }
    }
    changed_tokens = joining_tokens + leaving_tokens;
    int64_t ef = std::max<int64_t>(1, ec - leaving_tokens + joining_tokens);
    int64_t log_e = Log2Ceil(std::max<size_t>(2, static_cast<size_t>(ef)));
    int64_t num_changes =
        std::max<int64_t>(1, static_cast<int64_t>(input.changes.size()));
    // Per-change clone (the dominant E log E term), backward walks (~rf+1
    // distinct-owner steps, both rings, capped by ring size), and candidate
    // evaluations (deduplicated: at most ef future entries).
    int64_t walk_len = std::min<int64_t>(2 * (input.rf + 1), ef);
    int64_t walks = changed_tokens * 2 * walk_len;
    int64_t evals = std::min<int64_t>(changed_tokens * (input.rf + 2), ef);
    return num_changes * ef * log_e + walks + evals * 2 * (log_e + input.rf);
  }

  // Calibrated (DESIGN.md §8): ~0.4s per invocation at N=128 (P=16, 32
  // joiners) and ~1.8s at N=256 — cheap math, but invoked about once per
  // second per node with the ring lock held throughout.
  WorkUnits op_cost() const override { return 400; }
};

}  // namespace

std::unique_ptr<PendingRangeCalculator> MakeV3Calculator() {
  return std::make_unique<V3Calculator>();
}

}  // namespace scalecheck
