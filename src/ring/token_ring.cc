#include "src/ring/token_ring.h"

#include <algorithm>

#include "src/common/check.h"
#include "src/common/rng.h"

namespace scalecheck {

bool KeyRange::Contains(Token key) const {
  if (start == end) {
    return true;  // full ring (single-entry ring)
  }
  if (start < end) {
    return key > start && key <= end;
  }
  // Wrapping range.
  return key > start || key <= end;
}

void TokenRing::AddNode(NodeId node, const std::vector<Token>& tokens) {
  CHECK(!tokens.empty()) << "node" << node << "needs at least one token";
  CHECK_EQ(tokens_by_node_.count(node), 0u) << "node" << node << "already in ring";
  for (Token t : tokens) {
    auto it = std::lower_bound(
        entries_.begin(), entries_.end(), t,
        [](const RingEntry& e, Token token) { return e.token < token; });
    CHECK(it == entries_.end() || it->token != t)
        << "token collision at" << static_cast<long long>(t);
    entries_.insert(it, RingEntry{t, node});
  }
  TokenSlice slice{static_cast<uint32_t>(token_storage_.size()),
                   static_cast<uint32_t>(tokens.size())};
  token_storage_.insert(token_storage_.end(), tokens.begin(), tokens.end());
  std::sort(token_storage_.begin() + slice.offset, token_storage_.end());
  tokens_by_node_[node] = slice;
}

void TokenRing::RemoveNode(NodeId node) {
  auto it = tokens_by_node_.find(node);
  CHECK(it != tokens_by_node_.end()) << "node" << node << "not in ring";
  entries_.erase(std::remove_if(entries_.begin(), entries_.end(),
                                [node](const RingEntry& e) { return e.owner == node; }),
                 entries_.end());
  // The storage slice becomes a hole; slices are never reused, so no other
  // node's view is disturbed.
  tokens_by_node_.erase(node);
}

TokenSpan TokenRing::TokensOf(NodeId node) const {
  auto it = tokens_by_node_.find(node);
  CHECK(it != tokens_by_node_.end()) << "node" << node << "not in ring";
  return TokenSpan{token_storage_.data() + it->second.offset, it->second.len};
}

std::vector<NodeId> TokenRing::Nodes() const {
  std::vector<NodeId> nodes;
  nodes.reserve(tokens_by_node_.size());
  for (const auto& [node, tokens] : tokens_by_node_) {
    nodes.push_back(node);
  }
  return nodes;
}

size_t TokenRing::OwnerIndex(Token key) const {
  CHECK(!entries_.empty()) << "empty ring";
  auto it = std::lower_bound(
      entries_.begin(), entries_.end(), key,
      [](const RingEntry& e, Token token) { return e.token < token; });
  if (it == entries_.end()) {
    return 0;  // wrap: keys beyond the last token belong to the first
  }
  return static_cast<size_t>(it - entries_.begin());
}

std::vector<NodeId> TokenRing::NaturalEndpointsForKey(Token key, int rf) const {
  CHECK_GT(rf, 0);
  std::vector<NodeId> replicas;
  if (entries_.empty()) {
    return replicas;
  }
  size_t start = OwnerIndex(key);
  for (size_t walked = 0; walked < entries_.size(); ++walked) {
    NodeId owner = entries_[(start + walked) % entries_.size()].owner;
    if (std::find(replicas.begin(), replicas.end(), owner) == replicas.end()) {
      replicas.push_back(owner);
      if (replicas.size() == static_cast<size_t>(rf)) {
        break;
      }
    }
  }
  return replicas;
}

KeyRange TokenRing::RangeOfEntry(size_t i) const {
  CHECK_LT(i, entries_.size());
  size_t prev = (i + entries_.size() - 1) % entries_.size();
  return KeyRange{entries_[prev].token, entries_[i].token};
}

DigestValue TokenRing::ComputeDigest() const {
  Digest d;
  d.Add(static_cast<uint64_t>(entries_.size()));
  for (const RingEntry& e : entries_) {
    d.Add(static_cast<uint64_t>(e.token));
    d.Add(static_cast<int64_t>(e.owner));
  }
  return d.Finish();
}

std::vector<Token> GenerateTokens(NodeId node, int count, uint64_t seed) {
  CHECK_GT(count, 0);
  Rng rng(HashCombine(seed, Mix64(static_cast<uint64_t>(node) + 0x1234)));
  std::vector<Token> tokens;
  tokens.reserve(static_cast<size_t>(count));
  for (int i = 0; i < count; ++i) {
    tokens.push_back(rng.Next());
  }
  std::sort(tokens.begin(), tokens.end());
  tokens.erase(std::unique(tokens.begin(), tokens.end()), tokens.end());
  // Collisions in a 64-bit space are absurdly unlikely; regenerate any lost.
  while (tokens.size() < static_cast<size_t>(count)) {
    tokens.push_back(rng.Next());
    std::sort(tokens.begin(), tokens.end());
    tokens.erase(std::unique(tokens.begin(), tokens.end()), tokens.end());
  }
  return tokens;
}

}  // namespace scalecheck
