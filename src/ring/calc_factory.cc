#include "src/common/check.h"
#include "src/ring/calc_internal.h"

namespace scalecheck {

std::unique_ptr<PendingRangeCalculator> MakeCalculator(CalcVersion version) {
  switch (version) {
    case CalcVersion::kReference:
      return MakeReferenceCalculator();
    case CalcVersion::kV1PreC3831:
      return MakeV1Calculator();
    case CalcVersion::kV2C3831Fix:
      return MakeV2Calculator();
    case CalcVersion::kV3C3881Fix:
      return MakeV3Calculator();
    case CalcVersion::kBootstrapC6127:
      return MakeBootstrapCalculator();
  }
  CHECK(false) << "unknown calculator version";
  return nullptr;
}

}  // namespace scalecheck
