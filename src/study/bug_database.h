// The paper's bug-study database (§2-§4).
//
// The authors manually mined 38 scalability bugs: 9 Cassandra, 5 Couchbase,
// 2 Hadoop, 9 HBase, 11 HDFS, 1 Riak, 1 Voldemort. The paper names the
// Cassandra lineage explicitly (C3831, C3881, C5456, C6127, C6345, C6409,
// plus the Gossip 2.0 umbrella); the other systems' entries are curated here
// from the paper's aggregate statements: every bug caused user-visible
// impact, the set splits 47% scale-dependent CPU computation vs 53%
// unexpected serialization of O(N) operations (§4 footnote), bugs lingered
// across bootstrap/scale-out/decommission/rebalance/failover protocols (§3),
// fixes took one month on average with a maximum of five (§3). Entries not
// individually named in the paper are marked `curated = true`.

#ifndef SCALECHECK_SRC_STUDY_BUG_DATABASE_H_
#define SCALECHECK_SRC_STUDY_BUG_DATABASE_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace scalecheck {

enum class StudySystem : int {
  kCassandra = 0,
  kCouchbase = 1,
  kHadoop = 2,
  kHBase = 3,
  kHdfs = 4,
  kRiak = 5,
  kVoldemort = 6,
};

const char* StudySystemName(StudySystem system);

enum class RootCauseClass : int {
  // Scale-dependent CPU-intensive computation in data/control paths (47%).
  kScaleDependentComputation = 0,
  // Unexpected serialization of O(N) operations (53%).
  kSerializedOnOperations = 1,
};

const char* RootCauseClassName(RootCauseClass c);

enum class ProtocolPath : int {
  kBootstrap = 0,
  kScaleOut = 1,
  kDecommission = 2,
  kRebalance = 3,
  kFailover = 4,
  kDataPath = 5,
};

const char* ProtocolPathName(ProtocolPath p);

struct StudyBug {
  std::string id;  // tracker id, e.g. "CASSANDRA-3831"
  StudySystem system = StudySystem::kCassandra;
  ProtocolPath protocol = ProtocolPath::kScaleOut;
  RootCauseClass root_cause = RootCauseClass::kScaleDependentComputation;
  // Smallest deployment scale (nodes) where the symptom surfaced.
  int symptom_scale = 100;
  std::string symptom;     // user-visible impact
  std::string complexity;  // scale dependence, where known
  int fix_months = 1;      // time to fix
  bool curated = false;    // not individually named in the paper
};

class BugDatabase {
 public:
  // The 38-bug study set.
  static const std::vector<StudyBug>& All();

  static std::vector<StudyBug> BySystem(StudySystem system);
  static std::vector<StudyBug> ByRootCause(RootCauseClass c);
  static std::vector<StudyBug> ByProtocol(ProtocolPath p);
  static std::map<StudySystem, int> CountBySystem();

  // §3: average/max time-to-fix in months.
  static double AverageFixMonths();
  static int MaxFixMonths();
  // §4 footnote: fraction with scale-dependent CPU root cause.
  static double CpuComputationFraction();
  // Fraction whose symptom needed > `nodes` to surface.
  static double FractionRequiringScale(int nodes);
};

}  // namespace scalecheck

#endif  // SCALECHECK_SRC_STUDY_BUG_DATABASE_H_
