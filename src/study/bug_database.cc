#include "src/study/bug_database.h"

#include <algorithm>

namespace scalecheck {

const char* StudySystemName(StudySystem system) {
  switch (system) {
    case StudySystem::kCassandra:
      return "Cassandra";
    case StudySystem::kCouchbase:
      return "Couchbase";
    case StudySystem::kHadoop:
      return "Hadoop";
    case StudySystem::kHBase:
      return "HBase";
    case StudySystem::kHdfs:
      return "HDFS";
    case StudySystem::kRiak:
      return "Riak";
    case StudySystem::kVoldemort:
      return "Voldemort";
  }
  return "?";
}

const char* RootCauseClassName(RootCauseClass c) {
  switch (c) {
    case RootCauseClass::kScaleDependentComputation:
      return "scale-dependent CPU computation";
    case RootCauseClass::kSerializedOnOperations:
      return "unexpected serialization of O(N) operations";
  }
  return "?";
}

const char* ProtocolPathName(ProtocolPath p) {
  switch (p) {
    case ProtocolPath::kBootstrap:
      return "bootstrap";
    case ProtocolPath::kScaleOut:
      return "scale-out";
    case ProtocolPath::kDecommission:
      return "decommission";
    case ProtocolPath::kRebalance:
      return "rebalance";
    case ProtocolPath::kFailover:
      return "failover";
    case ProtocolPath::kDataPath:
      return "data path";
  }
  return "?";
}

namespace {

using S = StudySystem;
using R = RootCauseClass;
using P = ProtocolPath;
constexpr R kCpu = R::kScaleDependentComputation;
constexpr R kSer = R::kSerializedOnOperations;

std::vector<StudyBug> BuildAll() {
  std::vector<StudyBug> bugs = {
      // ---- Cassandra (9) — the §2 lineage, six named by the paper ----------
      {"CASSANDRA-3831", S::kCassandra, P::kDecommission, kCpu, 200,
       "flapping: live nodes declared dead, data unreachable",
       "O(M*N^3*log^3 N) pending-range calculation", 1, false},
      {"CASSANDRA-3881", S::kCassandra, P::kScaleOut, kCpu, 128,
       "flapping returns with vnodes: N becomes N*P",
       "O(M*N^2*log^2 N) with N*P entries", 1, false},
      {"CASSANDRA-5456", S::kCassandra, P::kScaleOut, kSer, 200,
       "gossip stops: ring lock held across the calculation",
       "coarse-grained lock serializes gossip behind O(E log E) clones", 2, false},
      {"CASSANDRA-6127", S::kCassandra, P::kBootstrap, kCpu, 500,
       "fresh 500+-node bootstrap: vnodes don't scale",
       "O(M*N^2) fresh ring construction, path-dependent", 5, false},
      {"CASSANDRA-6345", S::kCassandra, P::kRebalance, kSer, 256,
       "ring-table churn floods gossip during topology changes",
       "O(N) ring snapshots per gossip round", 1, false},
      {"CASSANDRA-6409", S::kCassandra, P::kFailover, kCpu, 300,
       "failure detector starved by topology recalculation",
       "repeated O(N^2) recomputation on conviction", 1, false},
      {"CASSANDRA-GOSSIP-A", S::kCassandra, P::kScaleOut, kSer, 500,
       "gossip backlog at 500+ nodes (Gossip 2.0 motivation)",
       "per-round O(N) digests serialized on one stage", 1, true},
      {"CASSANDRA-GOSSIP-B", S::kCassandra, P::kBootstrap, kCpu, 700,
       "minutes-long pauses while many nodes join",
       "O(N*P log NP) per join event, invoked per gossip apply", 2, true},
      {"CASSANDRA-GOSSIP-C", S::kCassandra, P::kDataPath, kSer, 400,
       "request latency spikes during rescale",
       "pending-range lookups serialized behind ring mutations", 1, true},

      // ---- Couchbase (5) ----------------------------------------------------
      {"COUCHBASE-REBAL-1", S::kCouchbase, P::kRebalance, kCpu, 100,
       "rebalance plan computation freezes the orchestrator",
       "O(N^2 * vbuckets) move planning", 1, true},
      {"COUCHBASE-REBAL-2", S::kCouchbase, P::kRebalance, kSer, 120,
       "rebalance stalls: vbucket moves serialized on one supervisor",
       "O(N) supervised moves, one at a time", 1, true},
      {"COUCHBASE-VIEW-1", S::kCouchbase, P::kDataPath, kCpu, 80,
       "view index rebuild time grows superlinearly with cluster size",
       "O(N^2) partition map recomputation", 1, true},
      {"COUCHBASE-FO-1", S::kCouchbase, P::kFailover, kSer, 150,
       "auto-failover delayed minutes on large clusters",
       "O(N) health checks on a single timer thread", 0, true},
      {"COUCHBASE-BOOT-1", S::kCouchbase, P::kBootstrap, kSer, 100,
       "cluster warmup serializes per-node handshakes",
       "O(N) joins through one coordinator", 1, true},

      // ---- Hadoop (2) --------------------------------------------------------
      {"HADOOP-RM-1", S::kHadoop, P::kScaleOut, kCpu, 2000,
       "ResourceManager scheduling pause at thousands of NodeManagers",
       "O(N^2) node-heartbeat matching in the scheduler loop", 1, true},
      {"HADOOP-RM-2", S::kHadoop, P::kFailover, kSer, 1500,
       "RM failover replays node registrations serially",
       "O(N) re-registrations through one dispatcher", 1, true},

      // ---- HBase (9) ----------------------------------------------------------
      {"HBASE-ASSIGN-1", S::kHBase, P::kFailover, kCpu, 200,
       "master region reassignment storm after regionserver death",
       "O(regions * N) assignment plan recomputation", 1, true},
      {"HBASE-ASSIGN-2", S::kHBase, P::kScaleOut, kSer, 300,
       "bulk assignment serialized through one ZK queue",
       "O(regions) ZooKeeper round-trips", 1, true},
      {"HBASE-META-1", S::kHBase, P::kDataPath, kSer, 250,
       "META region hotspot as cluster grows",
       "O(N) clients serialize on one META server", 2, true},
      {"HBASE-BALANCER-1", S::kHBase, P::kRebalance, kCpu, 400,
       "balancer run time explodes with cluster size",
       "O(N^2 * regions) cost evaluation per balancing round", 1, true},
      {"HBASE-LOG-1", S::kHBase, P::kFailover, kSer, 100,
       "log splitting after failure serialized on few workers",
       "O(logs) split tasks, coordinator-bound", 1, true},
      {"HBASE-BOOT-1", S::kHBase, P::kBootstrap, kCpu, 500,
       "cluster startup scans all region states quadratically",
       "O(regions * N) startup reconciliation", 1, true},
      {"HBASE-ZK-1", S::kHBase, P::kScaleOut, kSer, 700,
       "ZooKeeper watch storms as regionservers multiply",
       "O(N) watch re-registrations per event", 0, true},
      {"HBASE-HEARTBEAT-1", S::kHBase, P::kDataPath, kSer, 600,
       "master heartbeat processing saturates a core",
       "O(N * regions-per-beat) bookkeeping", 1, true},
      {"HBASE-REPL-1", S::kHBase, P::kDataPath, kSer, 300,
       "replication queue transfer after failure is serial",
       "O(queues) single-threaded recovery", 1, true},

      // ---- HDFS (11) -------------------------------------------------------------
      {"HDFS-BR-1", S::kHdfs, P::kBootstrap, kCpu, 1000,
       "namenode startup block-report storm",
       "O(blocks * N) initial block map construction", 2, true},
      {"HDFS-BR-2", S::kHdfs, P::kScaleOut, kSer, 800,
       "full block reports serialized under the namespace lock",
       "O(blocks) processing, one report at a time", 1, true},
      {"HDFS-DECOM-1", S::kHdfs, P::kDecommission, kCpu, 500,
       "decommission scan iterates every block of every node",
       "O(blocks * N) replication checks per scan", 1, true},
      {"HDFS-HEARTBEAT-1", S::kHdfs, P::kDataPath, kSer, 2000,
       "heartbeat processing under the global FSNamesystem lock",
       "O(N) heartbeats serialized per interval", 1, true},
      {"HDFS-REPL-1", S::kHdfs, P::kFailover, kCpu, 700,
       "re-replication planning after rack failure is quadratic",
       "O(under-replicated * N) target selection", 1, true},
      {"HDFS-INVALIDATE-1", S::kHdfs, P::kDecommission, kSer, 400,
       "block invalidation queues drain serially",
       "O(blocks) invalidations through one monitor thread", 0, true},
      {"HDFS-LEASE-1", S::kHdfs, P::kFailover, kSer, 900,
       "lease recovery storm after client-heavy failover",
       "O(leases) recovered under one lock", 1, true},
      {"HDFS-SNAPSHOT-1", S::kHdfs, P::kDataPath, kCpu, 300,
       "snapshot diff computation grows with namespace and cluster",
       "O(inodes * snapshots) diff walks", 1, true},
      {"HDFS-BALANCER-1", S::kHdfs, P::kRebalance, kCpu, 600,
       "balancer iteration time superlinear in datanode count",
       "O(N^2) source/target pairing", 1, true},
      {"HDFS-REGISTER-1", S::kHdfs, P::kBootstrap, kSer, 1500,
       "datanode re-registration stampede serialized",
       "O(N) registrations through one RPC handler pool", 1, true},
      {"HDFS-EDITLOG-1", S::kHdfs, P::kDataPath, kSer, 1000,
       "edit-log sync becomes the cluster-wide serialization point",
       "O(ops) fsync-bound journal", 1, true},

      // ---- Riak (1) -----------------------------------------------------------------
      {"RIAK-RING-1", S::kRiak, P::kScaleOut, kCpu, 200,
       "ring gossip convergence stalls on large rings",
       "O(ring-size^2) ring reconciliation", 1, true},

      // ---- Voldemort (1) ---------------------------------------------------------------
      {"VOLDEMORT-REBAL-1", S::kVoldemort, P::kRebalance, kCpu, 150,
       "rebalance plan generation takes hours",
       "O(N^2 * partitions) move computation", 2, true},
  };
  return bugs;
}

}  // namespace

const std::vector<StudyBug>& BugDatabase::All() {
  static const std::vector<StudyBug>* bugs = new std::vector<StudyBug>(BuildAll());
  return *bugs;
}

std::vector<StudyBug> BugDatabase::BySystem(StudySystem system) {
  std::vector<StudyBug> out;
  for (const StudyBug& bug : All()) {
    if (bug.system == system) {
      out.push_back(bug);
    }
  }
  return out;
}

std::vector<StudyBug> BugDatabase::ByRootCause(RootCauseClass c) {
  std::vector<StudyBug> out;
  for (const StudyBug& bug : All()) {
    if (bug.root_cause == c) {
      out.push_back(bug);
    }
  }
  return out;
}

std::vector<StudyBug> BugDatabase::ByProtocol(ProtocolPath p) {
  std::vector<StudyBug> out;
  for (const StudyBug& bug : All()) {
    if (bug.protocol == p) {
      out.push_back(bug);
    }
  }
  return out;
}

std::map<StudySystem, int> BugDatabase::CountBySystem() {
  std::map<StudySystem, int> counts;
  for (const StudyBug& bug : All()) {
    ++counts[bug.system];
  }
  return counts;
}

double BugDatabase::AverageFixMonths() {
  double total = 0;
  for (const StudyBug& bug : All()) {
    total += bug.fix_months;
  }
  return total / static_cast<double>(All().size());
}

int BugDatabase::MaxFixMonths() {
  int max_months = 0;
  for (const StudyBug& bug : All()) {
    max_months = std::max(max_months, bug.fix_months);
  }
  return max_months;
}

double BugDatabase::CpuComputationFraction() {
  int cpu = 0;
  for (const StudyBug& bug : All()) {
    if (bug.root_cause == RootCauseClass::kScaleDependentComputation) {
      ++cpu;
    }
  }
  return static_cast<double>(cpu) / static_cast<double>(All().size());
}

double BugDatabase::FractionRequiringScale(int nodes) {
  int above = 0;
  for (const StudyBug& bug : All()) {
    if (bug.symptom_scale > nodes) {
      ++above;
    }
  }
  return static_cast<double>(above) / static_cast<double>(All().size());
}

}  // namespace scalecheck
