// Gossip wire messages: the Cassandra-style three-way anti-entropy exchange.
//
//   X -> Y  SYN : digests of everything X knows (endpoint, generation,
//                 max version)
//   Y -> X  ACK : states Y has that X is missing, plus digests of what Y
//                 wants from X
//   X -> Y  ACK2: the states Y requested
//
// Payload objects are immutable after send (shared_ptr<const>), so a payload
// can be delivered to a node that processes it much later without copying.

#ifndef SCALECHECK_SRC_GOSSIP_MESSAGES_H_
#define SCALECHECK_SRC_GOSSIP_MESSAGES_H_

#include <vector>

#include "src/gossip/endpoint_state.h"
#include "src/transport/message.h"

namespace scalecheck {

// Message::type discriminators for gossip traffic.
enum GossipMessageType : int {
  kGossipSyn = 1,
  kGossipAck = 2,
  kGossipAck2 = 3,
};

struct GossipDigest {
  NodeId endpoint = kInvalidNode;
  int64_t generation = 0;
  int64_t max_version = 0;
};

// SizeBytes accounts digest sections at their delta-varint encoded size
// (src/gossip/digest_codec.h) so the simulated NetworkModel charges the same
// bytes the v2 wire format ships; implementations live in messages.cc.

struct SynPayload : public Payload {
  std::vector<GossipDigest> digests;

  size_t SizeBytes() const override;
  // PayloadPool recycling hook: empty the content, keep the capacity.
  void Clear() { digests.clear(); }
};

struct AckPayload : public Payload {
  // States the receiver is missing (sender is ahead).
  EndpointStateMap states;
  // Digests the sender wants full states for (receiver is ahead).
  std::vector<GossipDigest> requests;

  size_t SizeBytes() const override;
  void Clear() {
    states.clear();
    requests.clear();
  }
};

struct Ack2Payload : public Payload {
  EndpointStateMap states;

  size_t SizeBytes() const override;
  void Clear() { states.clear(); }
};

}  // namespace scalecheck

#endif  // SCALECHECK_SRC_GOSSIP_MESSAGES_H_
