#include "src/gossip/endpoint_state.h"

#include <algorithm>

namespace scalecheck {

const char* StatusKindName(StatusKind kind) {
  switch (kind) {
    case StatusKind::kUnknown:
      return "UNKNOWN";
    case StatusKind::kBootstrapping:
      return "BOOT";
    case StatusKind::kNormal:
      return "NORMAL";
    case StatusKind::kLeaving:
      return "LEAVING";
    case StatusKind::kLeft:
      return "LEFT";
    case StatusKind::kRemoved:
      return "REMOVED";
  }
  return "?";
}

void VersionedValue::AddToDigest(Digest* d) const {
  d->Add(version);
  d->Add(static_cast<int64_t>(status));
  d->Add(load);
  d->AddRange(tokens);
}

void HeartbeatState::AddToDigest(Digest* d) const {
  d->Add(generation);
  d->Add(version);
}

const VersionedValue* EndpointState::Get(ApplicationStateKey key) const {
  int index = static_cast<int>(key);
  if ((present_mask_ & (1u << index)) == 0) {
    return nullptr;
  }
  return &app_states_[index];
}

void EndpointState::Set(ApplicationStateKey key, VersionedValue value) {
  int64_t version = value.version;
  int index = static_cast<int>(key);
  app_states_[index] = std::move(value);
  present_mask_ |= (1u << index);
  if (version >= app_version_ceiling_) {
    app_version_ceiling_ = version;
  } else {
    // An overwrite may have lowered the key that held the ceiling; recompute
    // exactly (at most three app states exist).
    app_version_ceiling_ = 0;
    for (const auto& [k, v] : app_states()) {
      app_version_ceiling_ = std::max(app_version_ceiling_, v.version);
    }
  }
}

StatusKind EndpointState::Status() const {
  const VersionedValue* v = Get(ApplicationStateKey::kStatus);
  return v == nullptr ? StatusKind::kUnknown : v->status;
}

std::vector<Token> EndpointState::Tokens() const {
  const VersionedValue* v = Get(ApplicationStateKey::kStatus);
  if (v != nullptr && !v->tokens.empty()) {
    return v->tokens;
  }
  v = Get(ApplicationStateKey::kTokens);
  return v == nullptr ? std::vector<Token>{} : v->tokens;
}

size_t EndpointState::WireSize() const {
  size_t size = 16;  // heartbeat
  for (const auto& [key, value] : app_states()) {
    size += 24 + value.tokens.size() * 8;
  }
  return size;
}

void EndpointState::AddToDigest(Digest* d) const {
  heartbeat_.AddToDigest(d);
  d->Add(static_cast<uint64_t>(app_states().size()));
  for (const auto& [key, value] : app_states()) {
    d->Add(static_cast<int64_t>(key));
    value.AddToDigest(d);
  }
}

}  // namespace scalecheck
