// Cluster-wide flap accounting — the paper's headline metric.
//
// §2: "A 'flap' is when a node X marks a peer node Y as down (and soon marks
// Y as alive again)." Figure 3 plots the total number of alive-to-dead
// transitions observed across the whole cluster during a protocol test. We
// count every alive->dead transition at conviction time; recoveries are
// tracked separately so reports can show flap durations.

#ifndef SCALECHECK_SRC_GOSSIP_FLAP_COUNTER_H_
#define SCALECHECK_SRC_GOSSIP_FLAP_COUNTER_H_

#include <cstdint>
#include <map>
#include <vector>

#include "src/common/stats.h"
#include "src/common/types.h"

namespace scalecheck {

class FlapCounter {
 public:
  // Observer X convicted subject Y (alive -> dead).
  void RecordDown(NodeId observer, NodeId subject, VirtualTime when);

  // Observer X saw subject Y come back (dead -> alive).
  void RecordUp(NodeId observer, NodeId subject, VirtualTime when);

  // Total alive->dead transitions cluster-wide (the Figure 3 y-axis).
  int64_t total_flaps() const { return total_flaps_; }

  int64_t FlapsByObserver(NodeId observer) const;
  // Distinct (observer, subject) pairs that flapped at least once.
  int64_t flapped_pairs() const { return static_cast<int64_t>(per_pair_.size()); }
  // Down-time distribution (seconds) over completed flaps.
  const RunningStat& downtime_seconds() const { return downtime_seconds_; }
  // Per-10-second-bucket flap counts, for time-series reports.
  const std::map<int64_t, int64_t>& timeline() const { return timeline_; }

  void Reset();

 private:
  struct PairKey {
    NodeId observer;
    NodeId subject;
    auto operator<=>(const PairKey&) const = default;
  };

  int64_t total_flaps_ = 0;
  std::map<PairKey, int64_t> per_pair_;
  std::map<PairKey, VirtualTime> down_since_;
  std::map<NodeId, int64_t> by_observer_;
  std::map<int64_t, int64_t> timeline_;  // 10 s bucket index -> flaps
  RunningStat downtime_seconds_;
};

}  // namespace scalecheck

#endif  // SCALECHECK_SRC_GOSSIP_FLAP_COUNTER_H_
