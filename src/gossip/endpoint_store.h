// EndpointStateStore: the struct-of-arrays endpoint table behind Gossiper.
//
// The per-node endpoint map used to be std::map<NodeId, EndpointState> — at
// N=2048 that is two thousand red-black-tree nodes pointer-chased on every
// merge-walk, digest refresh, and liveness sweep. The store keeps two
// parallel sorted vectors instead: ids_[i] is the endpoint id and states_[i]
// its state, so the merge-walk is a linear scan over contiguous memory and
// index i is a stable handle between structural mutations (Gossiper's digest
// cache and alive bitmap are index-aligned with this table).
//
// Iteration yields pair<NodeId, const EndpointState&> in ascending id order —
// exactly the old map order — so gossip merge-walks, invariant checks, and
// JSON export stay byte-identical.

#ifndef SCALECHECK_SRC_GOSSIP_ENDPOINT_STORE_H_
#define SCALECHECK_SRC_GOSSIP_ENDPOINT_STORE_H_

#include <cstddef>
#include <utility>
#include <vector>

#include "src/common/check.h"
#include "src/common/types.h"
#include "src/gossip/endpoint_state.h"

namespace scalecheck {

class EndpointStateStore {
 public:
  static constexpr size_t kNotFound = static_cast<size_t>(-1);

  size_t size() const { return ids_.size(); }
  bool empty() const { return ids_.empty(); }

  // Index of `ep`, or kNotFound. Cluster node ids are dense 0..N-1, so once
  // a node knows the whole cluster the table index equals the id; probe that
  // before falling back to binary search.
  size_t IndexOf(NodeId ep) const {
    size_t guess = static_cast<size_t>(ep);
    if (guess < ids_.size() && ids_[guess] == ep) {
      return guess;
    }
    size_t lo = 0, hi = ids_.size();
    while (lo < hi) {
      size_t mid = (lo + hi) / 2;
      if (ids_[mid] < ep) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    return (lo < ids_.size() && ids_[lo] == ep) ? lo : kNotFound;
  }

  bool Contains(NodeId ep) const { return IndexOf(ep) != kNotFound; }

  NodeId IdAt(size_t index) const { return ids_[index]; }
  EndpointState& StateAt(size_t index) { return states_[index]; }
  const EndpointState& StateAt(size_t index) const { return states_[index]; }

  const EndpointState* Find(NodeId ep) const {
    size_t index = IndexOf(ep);
    return index == kNotFound ? nullptr : &states_[index];
  }

  // std::map-compatible read accessors (tests and invariant probes).
  size_t count(NodeId ep) const { return Contains(ep) ? 1 : 0; }
  const EndpointState& at(NodeId ep) const {
    size_t index = IndexOf(ep);
    CHECK(index != kNotFound);
    return states_[index];
  }

  // Inserts a new endpoint (must be absent); returns its index. Indices of
  // endpoints at or after the insertion point shift up by one.
  size_t Insert(NodeId ep, EndpointState state) {
    size_t index = LowerBound(ep);
    CHECK(index == ids_.size() || ids_[index] != ep);
    ids_.insert(ids_.begin() + index, ep);
    states_.insert(states_.begin() + index, std::move(state));
    return index;
  }

  // Insert-or-overwrite; returns {index, inserted}.
  std::pair<size_t, bool> Assign(NodeId ep, EndpointState state) {
    size_t index = LowerBound(ep);
    if (index < ids_.size() && ids_[index] == ep) {
      states_[index] = std::move(state);
      return {index, false};
    }
    ids_.insert(ids_.begin() + index, ep);
    states_.insert(states_.begin() + index, std::move(state));
    return {index, true};
  }

  bool Erase(NodeId ep) {
    size_t index = IndexOf(ep);
    if (index == kNotFound) {
      return false;
    }
    ids_.erase(ids_.begin() + index);
    states_.erase(states_.begin() + index);
    return true;
  }

  void Clear() {
    ids_.clear();
    states_.clear();
  }

  const std::vector<NodeId>& ids() const { return ids_; }

  // Heap footprint of the parallel arrays (profiler accounting).
  size_t ApproxBytes() const {
    return ids_.capacity() * sizeof(NodeId) +
           states_.capacity() * sizeof(EndpointState);
  }

  // ---- std::map-shaped iteration (ascending endpoint id) ------------------

  class ConstIterator {
   public:
    ConstIterator(const EndpointStateStore* store, size_t index)
        : store_(store), index_(index) {}

    std::pair<NodeId, const EndpointState&> operator*() const {
      return {store_->ids_[index_], store_->states_[index_]};
    }
    ConstIterator& operator++() {
      ++index_;
      return *this;
    }
    bool operator==(const ConstIterator& other) const {
      return index_ == other.index_;
    }
    bool operator!=(const ConstIterator& other) const {
      return index_ != other.index_;
    }

   private:
    const EndpointStateStore* store_;
    size_t index_;
  };

  ConstIterator begin() const { return ConstIterator(this, 0); }
  ConstIterator end() const { return ConstIterator(this, ids_.size()); }

 private:
  size_t LowerBound(NodeId ep) const {
    size_t lo = 0, hi = ids_.size();
    while (lo < hi) {
      size_t mid = (lo + hi) / 2;
      if (ids_[mid] < ep) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    return lo;
  }

  std::vector<NodeId> ids_;            // sorted ascending
  std::vector<EndpointState> states_;  // parallel to ids_
};

}  // namespace scalecheck

#endif  // SCALECHECK_SRC_GOSSIP_ENDPOINT_STORE_H_
