#include "src/gossip/messages.h"

#include "src/gossip/digest_codec.h"

namespace scalecheck {

size_t SynPayload::SizeBytes() const {
  return 16 + digest_codec::MeasureBytes(digests);
}

size_t AckPayload::SizeBytes() const {
  size_t size = 16 + digest_codec::MeasureBytes(requests);
  for (const auto& [node, state] : states) {
    size += 8 + state.WireSize();
  }
  return size;
}

size_t Ack2Payload::SizeBytes() const {
  size_t size = 16;
  for (const auto& [node, state] : states) {
    size += 8 + state.WireSize();
  }
  return size;
}

}  // namespace scalecheck
