// Gossip endpoint state, Cassandra-style.
//
// Every node maintains a map from peer endpoint to EndpointState. An
// EndpointState is a heartbeat (generation = boot epoch, version = counter
// incremented every gossip round) plus a set of versioned application states
// (STATUS, TOKENS, LOAD). Anti-entropy exchanges ship the states whose
// versions the peer has not seen. Ring-membership changes (BOOT / LEAVING /
// LEFT) ride on the STATUS application state — which is why the
// pending-range calculation is triggered from the gossip stage, and why an
// expensive calculation starves gossip processing (bugs C3831..C6127).

#ifndef SCALECHECK_SRC_GOSSIP_ENDPOINT_STATE_H_
#define SCALECHECK_SRC_GOSSIP_ENDPOINT_STATE_H_

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "src/common/hash.h"
#include "src/common/types.h"

namespace scalecheck {

// Ring position token (consistent-hashing position on [0, 2^64)).
using Token = uint64_t;

enum class ApplicationStateKey : int {
  kStatus = 0,
  kTokens = 1,
  kLoad = 2,
};

enum class StatusKind : int {
  kUnknown = 0,
  kBootstrapping = 1,  // joining: pending token claims
  kNormal = 2,         // settled member
  kLeaving = 3,        // decommission announced
  kLeft = 4,           // decommission complete
  kRemoved = 5,        // forcibly removed
};

const char* StatusKindName(StatusKind kind);

// One versioned application state value. Tokens ride along for STATUS and
// TOKENS states (Cassandra packs them into the value string; we keep them
// typed).
struct VersionedValue {
  int64_t version = 0;
  StatusKind status = StatusKind::kUnknown;  // meaningful for kStatus
  double load = 0.0;                         // meaningful for kLoad
  std::vector<Token> tokens;                 // meaningful for kStatus/kTokens

  void AddToDigest(Digest* d) const;
};

struct HeartbeatState {
  int64_t generation = 0;  // node boot epoch; higher = restarted instance
  int64_t version = 0;     // incremented every gossip round

  void AddToDigest(Digest* d) const;
};

class EndpointState {
 public:
  EndpointState() = default;
  explicit EndpointState(int64_t generation) { heartbeat_.generation = generation; }

  const HeartbeatState& heartbeat() const { return heartbeat_; }
  HeartbeatState& mutable_heartbeat() { return heartbeat_; }

  // Highest version carried by this state (heartbeat or any app state); this
  // is what gossip digests advertise.
  int64_t MaxVersion() const;

  const VersionedValue* Get(ApplicationStateKey key) const;
  void Set(ApplicationStateKey key, VersionedValue value);
  const std::map<ApplicationStateKey, VersionedValue>& app_states() const {
    return app_states_;
  }

  // Convenience: current STATUS kind (kUnknown if absent).
  StatusKind Status() const;
  // Tokens from the STATUS (falling back to TOKENS) state.
  std::vector<Token> Tokens() const;

  // Approximate serialized size for network accounting.
  size_t WireSize() const;

  void AddToDigest(Digest* d) const;

 private:
  HeartbeatState heartbeat_;
  std::map<ApplicationStateKey, VersionedValue> app_states_;
  // Max version across app_states_, maintained by Set so the digest-building
  // hot path reads MaxVersion in O(1) instead of walking the map.
  int64_t app_version_ceiling_ = 0;
};

// Ordered map: deterministic iteration is load-bearing for reproducibility.
using EndpointStateMap = std::map<NodeId, EndpointState>;

}  // namespace scalecheck

#endif  // SCALECHECK_SRC_GOSSIP_ENDPOINT_STATE_H_
