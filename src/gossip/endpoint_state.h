// Gossip endpoint state, Cassandra-style.
//
// Every node maintains a store from peer endpoint to EndpointState. An
// EndpointState is a heartbeat (generation = boot epoch, version = counter
// incremented every gossip round) plus a set of versioned application states
// (STATUS, TOKENS, LOAD). Anti-entropy exchanges ship the states whose
// versions the peer has not seen. Ring-membership changes (BOOT / LEAVING /
// LEFT) ride on the STATUS application state — which is why the
// pending-range calculation is triggered from the gossip stage, and why an
// expensive calculation starves gossip processing (bugs C3831..C6127).
//
// Layout: the app-state set used to be a std::map<key, value>; with only
// three possible keys that meant a red-black tree of one-to-three nodes per
// endpoint, allocated and pointer-chased on every gossip merge. It is now a
// fixed std::array<VersionedValue, 3> plus a presence bitmask. app_states()
// returns a lightweight view that iterates present entries in ascending key
// order, so digest/wire/merge loops see exactly the old map order.

#ifndef SCALECHECK_SRC_GOSSIP_ENDPOINT_STATE_H_
#define SCALECHECK_SRC_GOSSIP_ENDPOINT_STATE_H_

#include <array>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "src/common/flat_map.h"
#include "src/common/hash.h"
#include "src/common/types.h"

namespace scalecheck {

// Ring position token (consistent-hashing position on [0, 2^64)).
using Token = uint64_t;

enum class ApplicationStateKey : int {
  kStatus = 0,
  kTokens = 1,
  kLoad = 2,
};

inline constexpr int kNumApplicationStateKeys = 3;

enum class StatusKind : int {
  kUnknown = 0,
  kBootstrapping = 1,  // joining: pending token claims
  kNormal = 2,         // settled member
  kLeaving = 3,        // decommission announced
  kLeft = 4,           // decommission complete
  kRemoved = 5,        // forcibly removed
};

const char* StatusKindName(StatusKind kind);

// One versioned application state value. Tokens ride along for STATUS and
// TOKENS states (Cassandra packs them into the value string; we keep them
// typed).
struct VersionedValue {
  int64_t version = 0;
  StatusKind status = StatusKind::kUnknown;  // meaningful for kStatus
  double load = 0.0;                         // meaningful for kLoad
  std::vector<Token> tokens;                 // meaningful for kStatus/kTokens

  void AddToDigest(Digest* d) const;
};

struct HeartbeatState {
  int64_t generation = 0;  // node boot epoch; higher = restarted instance
  int64_t version = 0;     // incremented every gossip round

  void AddToDigest(Digest* d) const;
};

// Iterable view over the present app states of an EndpointState, in
// ascending key order. Dereferences to pair<key, const VersionedValue&> so
// the structured-binding loops written against the old std::map still work.
class AppStateView {
 public:
  class Iterator {
   public:
    Iterator(const std::array<VersionedValue, kNumApplicationStateKeys>* values,
             uint8_t mask, int index)
        : values_(values), mask_(mask), index_(index) {
      SkipAbsent();
    }

    std::pair<ApplicationStateKey, const VersionedValue&> operator*() const {
      return {static_cast<ApplicationStateKey>(index_), (*values_)[index_]};
    }
    Iterator& operator++() {
      ++index_;
      SkipAbsent();
      return *this;
    }
    bool operator==(const Iterator& other) const { return index_ == other.index_; }
    bool operator!=(const Iterator& other) const { return index_ != other.index_; }

   private:
    void SkipAbsent() {
      while (index_ < kNumApplicationStateKeys &&
             (mask_ & (1u << index_)) == 0) {
        ++index_;
      }
    }

    const std::array<VersionedValue, kNumApplicationStateKeys>* values_;
    uint8_t mask_;
    int index_;
  };

  AppStateView(const std::array<VersionedValue, kNumApplicationStateKeys>* values,
               uint8_t mask)
      : values_(values), mask_(mask) {}

  Iterator begin() const { return Iterator(values_, mask_, 0); }
  Iterator end() const { return Iterator(values_, mask_, kNumApplicationStateKeys); }
  size_t size() const {
    return static_cast<size_t>(__builtin_popcount(mask_));
  }
  bool empty() const { return mask_ == 0; }

 private:
  const std::array<VersionedValue, kNumApplicationStateKeys>* values_;
  uint8_t mask_;
};

class EndpointState {
 public:
  EndpointState() = default;
  explicit EndpointState(int64_t generation) { heartbeat_.generation = generation; }

  const HeartbeatState& heartbeat() const { return heartbeat_; }
  HeartbeatState& mutable_heartbeat() { return heartbeat_; }

  // Highest version carried by this state (heartbeat or any app state); this
  // is what gossip digests advertise. Inline: the SYN merge-walk reads it for
  // every (local endpoint × digest) pair.
  int64_t MaxVersion() const {
    return heartbeat_.version > app_version_ceiling_ ? heartbeat_.version
                                                     : app_version_ceiling_;
  }

  const VersionedValue* Get(ApplicationStateKey key) const;
  void Set(ApplicationStateKey key, VersionedValue value);
  AppStateView app_states() const { return AppStateView(&app_states_, present_mask_); }

  // Convenience: current STATUS kind (kUnknown if absent).
  StatusKind Status() const;
  // Tokens from the STATUS (falling back to TOKENS) state.
  std::vector<Token> Tokens() const;

  // Approximate serialized size for network accounting.
  size_t WireSize() const;

  void AddToDigest(Digest* d) const;

 private:
  HeartbeatState heartbeat_;
  std::array<VersionedValue, kNumApplicationStateKeys> app_states_;
  uint8_t present_mask_ = 0;
  // Max version across present app states, maintained by Set so the
  // digest-building hot path reads MaxVersion in O(1).
  int64_t app_version_ceiling_ = 0;
};

// Sorted-by-endpoint payload container: deterministic iteration is
// load-bearing for reproducibility, and the protocol emits keys in
// ascending order, so inserts are O(1) appends (see src/common/flat_map.h).
using EndpointStateMap = FlatMap<NodeId, EndpointState>;

}  // namespace scalecheck

#endif  // SCALECHECK_SRC_GOSSIP_ENDPOINT_STATE_H_
