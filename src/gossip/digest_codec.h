// Delta + varint encoding for gossip digest sections (SYN digests, ACK
// requests).
//
// A digest list is (endpoint, generation, max_version) triples sorted by
// endpoint, where consecutive entries are near each other in every field:
// endpoint ids are dense, generations are almost always equal, and
// max_versions cluster around the current round count. Encoding each field
// as a zigzag varint of its delta against the previous entry brings the
// steady-state cost to ~3-6 bytes per endpoint, versus 20 fixed — the
// difference between O(N·20B) and O(N·~5B) SYN payloads at N=2048. Unsorted
// lists still round-trip (deltas just go negative, which zigzag keeps
// short-ish); sortedness is a compression assumption, not a correctness
// requirement.
//
// This is both the v2 wire-format section codec (src/net/wire.cc) and the
// size model behind SynPayload/AckPayload::SizeBytes, so the simulated
// NetworkModel and the real TCP carrier account the same bytes.

#ifndef SCALECHECK_SRC_GOSSIP_DIGEST_CODEC_H_
#define SCALECHECK_SRC_GOSSIP_DIGEST_CODEC_H_

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "src/gossip/messages.h"

namespace scalecheck {
namespace digest_codec {

// Appends the encoded section to *out.
void Encode(const std::vector<GossipDigest>& digests, std::string* out);

// Decodes a section at data[*pos], advancing *pos past it. Returns false on
// truncation or a corrupt count. *out is overwritten.
bool Decode(std::string_view data, size_t* pos, std::vector<GossipDigest>* out);

// Exact encoded size in bytes, without materializing the encoding (payload
// SizeBytes accounting on the hot path).
size_t MeasureBytes(const std::vector<GossipDigest>& digests);

}  // namespace digest_codec
}  // namespace scalecheck

#endif  // SCALECHECK_SRC_GOSSIP_DIGEST_CODEC_H_
