#include "src/gossip/failure_detector.h"

#include <cmath>

#include "src/common/check.h"

namespace scalecheck {

namespace {
// log10(e): converts the exponential-CDF surprise to the phi scale.
constexpr double kPhiFactor = 0.4342944819032518;
}  // namespace

ArrivalWindow::ArrivalWindow(size_t max_samples, VirtualDuration initial_interval)
    : max_samples_(max_samples) {
  CHECK_GT(max_samples, 0u);
  // Prime with two synthetic samples so the first real interval does not
  // dominate the mean.
  intervals_.push_back(initial_interval.seconds());
  intervals_.push_back(initial_interval.seconds());
  sum_ = 2.0 * initial_interval.seconds();
}

void ArrivalWindow::Add(VirtualTime now) {
  if (has_arrival_) {
    double interval = (now - last_).seconds();
    intervals_.push_back(interval);
    sum_ += interval;
    if (intervals_.size() > max_samples_) {
      sum_ -= intervals_.front();
      intervals_.pop_front();
    }
  }
  last_ = now;
  has_arrival_ = true;
}

double ArrivalWindow::MeanIntervalSeconds() const {
  CHECK(!intervals_.empty());
  return sum_ / static_cast<double>(intervals_.size());
}

double ArrivalWindow::Phi(VirtualTime now) const {
  if (!has_arrival_) {
    return 0.0;
  }
  double elapsed = (now - last_).seconds();
  if (elapsed <= 0.0) {
    return 0.0;
  }
  double mean = MeanIntervalSeconds();
  if (mean <= 0.0) {
    return 0.0;
  }
  return kPhiFactor * elapsed / mean;
}

void PhiAccrualFailureDetector::Report(NodeId endpoint, VirtualTime now) {
  auto it = windows_.find(endpoint);
  if (it == windows_.end()) {
    auto [inserted, ok] =
        windows_.emplace(endpoint, ArrivalWindow(config_.window_size, config_.initial_interval));
    inserted->second.Add(now);
    return;
  }
  // Suppress duplicate reports within the same instant/round.
  if (it->second.has_arrivals() &&
      now - it->second.last_arrival() < config_.min_interval) {
    return;
  }
  it->second.Add(now);
}

double PhiAccrualFailureDetector::Phi(NodeId endpoint, VirtualTime now) const {
  auto it = windows_.find(endpoint);
  if (it == windows_.end()) {
    return 0.0;
  }
  return it->second.Phi(now);
}

bool PhiAccrualFailureDetector::IsConvicted(NodeId endpoint, VirtualTime now) const {
  return Phi(endpoint, now) > config_.threshold;
}

void PhiAccrualFailureDetector::Forget(NodeId endpoint) { windows_.erase(endpoint); }

}  // namespace scalecheck
