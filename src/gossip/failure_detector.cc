#include "src/gossip/failure_detector.h"

#include <cmath>

#include "src/common/check.h"

namespace scalecheck {

ArrivalWindow::ArrivalWindow(size_t max_samples, VirtualDuration initial_interval)
    : max_samples_(max_samples < 2 ? 2 : max_samples) {
  CHECK_GT(max_samples, 0u);
  // Prime with two synthetic samples so the first real interval does not
  // dominate the mean. A capacity below the priming pair would let count_
  // exceed the ring; the deque implementation effectively kept the two most
  // recent samples in that case, which max_samples_ >= 2 reproduces.
  samples_.push_back(initial_interval.seconds());
  samples_.push_back(initial_interval.seconds());
  count_ = 2;
  sum_ = 2.0 * initial_interval.seconds();
}

double ArrivalWindow::MeanIntervalSeconds() const {
  CHECK_GT(count_, 0u);
  return sum_ / static_cast<double>(count_);
}

void PhiAccrualFailureDetector::ReportSlow(NodeId endpoint, VirtualTime now) {
  CHECK_GE(endpoint, 0);
  size_t index = static_cast<size_t>(endpoint);
  if (index >= windows_.size()) {
    windows_.resize(index + 1);
  }
  std::optional<ArrivalWindow>& slot = windows_[index];
  CHECK(!slot);  // the inline fast path handles engaged slots
  slot.emplace(config_.window_size, config_.initial_interval);
  slot->Add(now);
}

void PhiAccrualFailureDetector::Forget(NodeId endpoint) {
  size_t index = static_cast<size_t>(endpoint);
  if (endpoint >= 0 && index < windows_.size()) {
    windows_[index].reset();
  }
}

}  // namespace scalecheck
