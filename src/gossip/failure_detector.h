// The phi accrual failure detector (Hayashibara et al., SRDS'04), as adopted
// by Cassandra for its scalability properties [29 in the paper].
//
// For each monitored endpoint we keep a sliding window of heartbeat
// inter-arrival intervals. Under the exponential-arrival simplification that
// Cassandra uses, the suspicion level is
//
//     phi(t_now) = (t_now - t_last) / mean_interval * log10(e)
//
// and an endpoint is convicted when phi exceeds a threshold (Cassandra
// default: 8). The paper's §3 observation is crucial here: the *detector* is
// provably scalable, but its input — heartbeat dissemination — degrades when
// gossip stages are starved by scale-dependent computation. The detector then
// faithfully reports flaps. The bug is global, not in this class.
//
// Layout: the profile at N=384 put ~34% of a run inside Report/Phi — almost
// all of it std::map node walks and std::deque chunk chasing, not arithmetic.
// The window is now a ring buffer over a flat vector and the per-endpoint
// table is a dense vector indexed by NodeId (ids are dense by construction;
// see src/common/interner.h). The running-sum arithmetic is unchanged
// operation-for-operation, so phi values and conviction times stay
// bit-identical.

#ifndef SCALECHECK_SRC_GOSSIP_FAILURE_DETECTOR_H_
#define SCALECHECK_SRC_GOSSIP_FAILURE_DETECTOR_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "src/common/types.h"

namespace scalecheck {

// log10(e): converts the exponential-CDF surprise to the phi scale.
inline constexpr double kPhiFactor = 0.4342944819032518;

class ArrivalWindow {
 public:
  ArrivalWindow(size_t max_samples, VirtualDuration initial_interval);

  // Records a heartbeat arrival. Inline: called once per heartbeat applied,
  // ~10M times in a two-minute N=384 run; the out-of-line call was the
  // single largest line in the flat profile after the layout overhaul.
  void Add(VirtualTime now) {
    if (has_arrival_) {
      double interval = (now - last_).seconds();
      sum_ += interval;
      if (count_ < max_samples_) {
        // Still filling: head_ stays at 0, so append order is FIFO order.
        samples_.push_back(interval);
        ++count_;
      } else {
        // Full: evict the oldest, in the same add-then-subtract order the
        // deque implementation used (sum_ arithmetic must stay bit-identical).
        sum_ -= samples_[head_];
        samples_[head_] = interval;
        head_ = (head_ + 1) % max_samples_;
      }
    }
    last_ = now;
    has_arrival_ = true;
  }

  // Suspicion level at `now`; 0.0 before any arrival. Inline: the FD sweep
  // evaluates it for every (node, peer) pair every round — O(N^2) calls.
  double Phi(VirtualTime now) const {
    if (!has_arrival_) {
      return 0.0;
    }
    double elapsed = (now - last_).seconds();
    if (elapsed <= 0.0) {
      return 0.0;
    }
    double mean = sum_ / static_cast<double>(count_);
    if (mean <= 0.0) {
      return 0.0;
    }
    return kPhiFactor * elapsed / mean;
  }

  double MeanIntervalSeconds() const;
  VirtualTime last_arrival() const { return last_; }
  bool has_arrivals() const { return has_arrival_; }
  size_t sample_count() const { return count_; }

 private:
  size_t max_samples_;
  std::vector<double> samples_;  // ring buffer of intervals, seconds
  size_t head_ = 0;              // index of the oldest sample once full
  size_t count_ = 0;
  double sum_ = 0.0;
  VirtualTime last_;
  bool has_arrival_ = false;
};

class PhiAccrualFailureDetector {
 public:
  struct Config {
    double threshold = 8.0;
    size_t window_size = 1000;
    // Priming interval for a fresh window (Cassandra primes with a bootstrap
    // interval so brand-new peers are not instantly convicted).
    VirtualDuration initial_interval = VirtualDuration::Seconds(1);
    // Arrivals closer than this are ignored (version churn within one round).
    VirtualDuration min_interval = VirtualDuration::Millis(10);
  };

  explicit PhiAccrualFailureDetector(const Config& config) : config_(config) {}

  // Heartbeat progress observed for `endpoint`. Inline for the common case
  // (known endpoint, non-duplicate); the cold resize/emplace path stays in
  // the .cc.
  void Report(NodeId endpoint, VirtualTime now) {
    size_t index = static_cast<size_t>(endpoint);
    if (endpoint < 0 || index >= windows_.size() || !windows_[index]) {
      ReportSlow(endpoint, now);
      return;
    }
    ArrivalWindow& window = *windows_[index];
    // Suppress duplicate reports within the same instant/round.
    if (window.has_arrivals() &&
        now - window.last_arrival() < config_.min_interval) {
      return;
    }
    window.Add(now);
  }

  // Current suspicion level (0.0 for unknown endpoints).
  double Phi(NodeId endpoint, VirtualTime now) const {
    const ArrivalWindow* window = WindowOf(endpoint);
    return window == nullptr ? 0.0 : window->Phi(now);
  }

  // phi(now) > threshold?
  bool IsConvicted(NodeId endpoint, VirtualTime now) const {
    return Phi(endpoint, now) > config_.threshold;
  }

  // Forgets an endpoint (decommissioned / removed).
  void Forget(NodeId endpoint);

  bool IsMonitoring(NodeId endpoint) const {
    return WindowOf(endpoint) != nullptr;
  }
  const Config& config() const { return config_; }

 private:
  // Unknown-endpoint path of Report: grows the table and primes a window.
  void ReportSlow(NodeId endpoint, VirtualTime now);

  const ArrivalWindow* WindowOf(NodeId endpoint) const {
    size_t index = static_cast<size_t>(endpoint);
    if (endpoint < 0 || index >= windows_.size() || !windows_[index]) {
      return nullptr;
    }
    return &*windows_[index];
  }

  Config config_;
  // Dense NodeId-indexed table; disengaged slots are unmonitored endpoints.
  std::vector<std::optional<ArrivalWindow>> windows_;
};

}  // namespace scalecheck

#endif  // SCALECHECK_SRC_GOSSIP_FAILURE_DETECTOR_H_
