// The phi accrual failure detector (Hayashibara et al., SRDS'04), as adopted
// by Cassandra for its scalability properties [29 in the paper].
//
// For each monitored endpoint we keep a sliding window of heartbeat
// inter-arrival intervals. Under the exponential-arrival simplification that
// Cassandra uses, the suspicion level is
//
//     phi(t_now) = (t_now - t_last) / mean_interval * log10(e)
//
// and an endpoint is convicted when phi exceeds a threshold (Cassandra
// default: 8). The paper's §3 observation is crucial here: the *detector* is
// provably scalable, but its input — heartbeat dissemination — degrades when
// gossip stages are starved by scale-dependent computation. The detector then
// faithfully reports flaps. The bug is global, not in this class.

#ifndef SCALECHECK_SRC_GOSSIP_FAILURE_DETECTOR_H_
#define SCALECHECK_SRC_GOSSIP_FAILURE_DETECTOR_H_

#include <cstdint>
#include <deque>
#include <map>

#include "src/common/types.h"

namespace scalecheck {

class ArrivalWindow {
 public:
  ArrivalWindow(size_t max_samples, VirtualDuration initial_interval);

  // Records a heartbeat arrival.
  void Add(VirtualTime now);

  // Suspicion level at `now`; 0.0 before any arrival.
  double Phi(VirtualTime now) const;

  double MeanIntervalSeconds() const;
  VirtualTime last_arrival() const { return last_; }
  bool has_arrivals() const { return has_arrival_; }
  size_t sample_count() const { return intervals_.size(); }

 private:
  size_t max_samples_;
  std::deque<double> intervals_;  // seconds
  double sum_ = 0.0;
  VirtualTime last_;
  bool has_arrival_ = false;
};

class PhiAccrualFailureDetector {
 public:
  struct Config {
    double threshold = 8.0;
    size_t window_size = 1000;
    // Priming interval for a fresh window (Cassandra primes with a bootstrap
    // interval so brand-new peers are not instantly convicted).
    VirtualDuration initial_interval = VirtualDuration::Seconds(1);
    // Arrivals closer than this are ignored (version churn within one round).
    VirtualDuration min_interval = VirtualDuration::Millis(10);
  };

  explicit PhiAccrualFailureDetector(const Config& config) : config_(config) {}

  // Heartbeat progress observed for `endpoint`.
  void Report(NodeId endpoint, VirtualTime now);

  // Current suspicion level (0.0 for unknown endpoints).
  double Phi(NodeId endpoint, VirtualTime now) const;

  // phi(now) > threshold?
  bool IsConvicted(NodeId endpoint, VirtualTime now) const;

  // Forgets an endpoint (decommissioned / removed).
  void Forget(NodeId endpoint);

  bool IsMonitoring(NodeId endpoint) const {
    return windows_.find(endpoint) != windows_.end();
  }
  const Config& config() const { return config_; }

 private:
  Config config_;
  std::map<NodeId, ArrivalWindow> windows_;
};

}  // namespace scalecheck

#endif  // SCALECHECK_SRC_GOSSIP_FAILURE_DETECTOR_H_
