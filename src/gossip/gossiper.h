// The gossip protocol state machine (Cassandra-style anti-entropy).
//
// Gossiper is deliberately transport- and thread-free: it consumes digests
// and states and produces digests and states, so it can be unit-tested
// exhaustively. The cluster::Node wires it to SimThreads and the
// NetworkModel, and charges the CPU work this class *estimates* (instrumented
// per-item costs) to the receiving stage thread.

#ifndef SCALECHECK_SRC_GOSSIP_GOSSIPER_H_
#define SCALECHECK_SRC_GOSSIP_GOSSIPER_H_

#include <functional>
#include <vector>

#include "src/common/types.h"
#include "src/gossip/endpoint_state.h"
#include "src/gossip/messages.h"

namespace scalecheck {

class Gossiper {
 public:
  struct Callbacks {
    // STATUS application state changed for an endpoint (BOOT/LEAVING/LEFT...).
    std::function<void(NodeId ep, StatusKind old_status, StatusKind new_status)>
        on_status_change = nullptr;
    // Heartbeat progressed for a live-monitored endpoint (drives the FD).
    std::function<void(NodeId ep)> on_heartbeat = nullptr;
    // Endpoint rebooted (generation bump).
    std::function<void(NodeId ep)> on_restart = nullptr;
  };

  // Per-item CPU costs (work units) used by the Estimate* functions. These
  // are the O(N) per-round serialization costs that §4's footnote attributes
  // 53% of scalability bugs to; they are charged for real.
  struct WorkCosts {
    WorkUnits per_digest = 60;
    WorkUnits per_state = 400;
    WorkUnits per_token = 4;
    WorkUnits base = 500;
  };

  Gossiper(NodeId self, int64_t generation, Callbacks callbacks);

  NodeId self() const { return self_; }

  // ---- Local state management -------------------------------------------

  // Bumps the local heartbeat version (start of every gossip round).
  void IncrementHeartbeat();

  // Sets a local application state at the next version.
  void SetLocalState(ApplicationStateKey key, VersionedValue value);

  const EndpointState& LocalState() const;

  // Seeds knowledge of a peer (cluster bootstrap or handshake).
  void AddKnownEndpoint(NodeId ep, const EndpointState& state);
  void RemoveEndpoint(NodeId ep);

  // Crash-restart lifecycle: forgets every peer and re-initializes the local
  // endpoint state under a bumped `generation`. Peers that see the higher
  // generation replace our old state wholesale (their on_restart fires); we
  // re-learn the cluster from whatever contacts are seeded afterwards.
  void ResetForRestart(int64_t generation);

  const EndpointStateMap& endpoints() const { return endpoints_; }
  const EndpointState* StateOf(NodeId ep) const;

  // ---- Liveness view ------------------------------------------------------

  void MarkAlive(NodeId ep);
  void MarkDead(NodeId ep);
  bool IsAlive(NodeId ep) const;
  std::vector<NodeId> LiveEndpoints() const;  // excludes self
  std::vector<NodeId> AllEndpoints() const;   // excludes self

  // ---- Protocol steps -----------------------------------------------------

  // Builds the SYN digest list (shuffled order does not matter; we keep
  // deterministic map order).
  std::vector<GossipDigest> MakeSynDigests() const;

  // Receiver side of SYN: splits into (digests we want, states they want).
  void HandleSyn(const std::vector<GossipDigest>& digests,
                 std::vector<GossipDigest>* out_requests,
                 EndpointStateMap* out_send);

  // Builds the states requested by a digest list (ACK/ACK2 construction).
  EndpointStateMap StatesForRequests(const std::vector<GossipDigest>& requests) const;

  // Applies remote states (ACK/ACK2 receipt), firing callbacks.
  void ApplyStates(const EndpointStateMap& states);

  // ---- Work estimation ----------------------------------------------------

  static WorkUnits EstimateSynWork(const SynPayload& syn, const WorkCosts& costs);
  static WorkUnits EstimateAckWork(const AckPayload& ack, const WorkCosts& costs);
  static WorkUnits EstimateAck2Work(const Ack2Payload& ack2, const WorkCosts& costs);
  WorkUnits EstimateRoundWork(const WorkCosts& costs) const;

  // ---- Introspection ------------------------------------------------------

  uint64_t states_applied() const { return states_applied_; }
  uint64_t syn_handled() const { return syn_handled_; }

 private:
  void ApplyOne(NodeId ep, const EndpointState& remote);
  // Copies `state` keeping only content newer than `after_version`.
  static EndpointState DeltaAfter(const EndpointState& state, int64_t after_version);

  int64_t NextVersion() { return ++version_counter_; }

  NodeId self_;
  Callbacks callbacks_;
  int64_t version_counter_ = 0;
  EndpointStateMap endpoints_;  // includes self_
  std::map<NodeId, bool> alive_;
  uint64_t states_applied_ = 0;
  uint64_t syn_handled_ = 0;
};

}  // namespace scalecheck

#endif  // SCALECHECK_SRC_GOSSIP_GOSSIPER_H_
