// The gossip protocol state machine (Cassandra-style anti-entropy).
//
// Gossiper is deliberately transport- and thread-free: it consumes digests
// and states and produces digests and states, so it can be unit-tested
// exhaustively. The node wiring (cluster::Node over the simulated carrier,
// net::RealNode over localhost TCP) connects it to the Transport seam and
// charges the CPU work this class *estimates* (instrumented per-item costs)
// to the receiving stage thread.
//
// The protocol outputs are incremental: the SYN digest list is a cached
// vector whose entries are refreshed only for endpoints whose state actually
// changed since the last build (a version bump dirties exactly one entry;
// membership changes trigger a full rebuild), and the live-endpoint view is
// a cached sorted vector invalidated by liveness flips. A steady-state round
// therefore costs O(changed endpoint states), not O(N); the digest_* counters
// below expose that invariant to tests and to SimProfiler.
//
// Memory layout (the N=2048 overhaul): endpoint states live in an
// EndpointStateStore — two parallel sorted vectors (ids, states) instead of
// a std::map — and the digest cache, dirty list, and liveness bitmap are
// index-aligned with that table, so the SYN merge-walk and the digest
// refresh are linear scans with no per-endpoint tree walks. The digest
// scratch is arena-backed (src/common/arena.h); cluster::Node charges the
// arena's growth to MemoryModel so FidelityGuard sees the real footprint.

#ifndef SCALECHECK_SRC_GOSSIP_GOSSIPER_H_
#define SCALECHECK_SRC_GOSSIP_GOSSIPER_H_

#include <functional>
#include <vector>

#include "src/common/arena.h"
#include "src/common/types.h"
#include "src/gossip/endpoint_state.h"
#include "src/gossip/endpoint_store.h"
#include "src/gossip/messages.h"

namespace scalecheck {

class Rng;

class Gossiper {
 public:
  struct Callbacks {
    // STATUS application state changed for an endpoint (BOOT/LEAVING/LEFT...).
    std::function<void(NodeId ep, StatusKind old_status, StatusKind new_status)>
        on_status_change = nullptr;
    // Heartbeat progressed for a live-monitored endpoint (drives the FD).
    std::function<void(NodeId ep)> on_heartbeat = nullptr;
    // Endpoint rebooted (generation bump).
    std::function<void(NodeId ep)> on_restart = nullptr;
  };

  // Per-item CPU costs (work units) used by the Estimate* functions. These
  // are the O(N) per-round serialization costs that §4's footnote attributes
  // 53% of scalability bugs to; they are charged for real.
  struct WorkCosts {
    WorkUnits per_digest = 60;
    WorkUnits per_state = 400;
    WorkUnits per_token = 4;
    WorkUnits base = 500;
  };

  Gossiper(NodeId self, int64_t generation, Callbacks callbacks);

  NodeId self() const { return self_; }

  // ---- Local state management -------------------------------------------

  // Bumps the local heartbeat version (start of every gossip round).
  void IncrementHeartbeat();

  // Sets a local application state at the next version.
  void SetLocalState(ApplicationStateKey key, VersionedValue value);

  const EndpointState& LocalState() const;

  // Seeds knowledge of a peer (cluster bootstrap or handshake).
  void AddKnownEndpoint(NodeId ep, const EndpointState& state);
  void RemoveEndpoint(NodeId ep);

  // Crash-restart lifecycle: forgets every peer and re-initializes the local
  // endpoint state under a bumped `generation`. Peers that see the higher
  // generation replace our old state wholesale (their on_restart fires); we
  // re-learn the cluster from whatever contacts are seeded afterwards.
  void ResetForRestart(int64_t generation);

  const EndpointStateStore& endpoints() const { return endpoints_; }
  const EndpointState* StateOf(NodeId ep) const;

  // ---- Liveness view ------------------------------------------------------

  void MarkAlive(NodeId ep);
  void MarkDead(NodeId ep);
  // Inline: liveness is consulted per (node, peer) pair per round.
  bool IsAlive(NodeId ep) const {
    size_t index = endpoints_.IndexOf(ep);
    return index != EndpointStateStore::kNotFound && alive_[index] != 0;
  }
  std::vector<NodeId> LiveEndpoints() const;  // excludes self
  std::vector<NodeId> AllEndpoints() const;   // excludes self

  // Cached sorted live-endpoint list (excludes self). The reference stays
  // valid while iterating even if the caller flips liveness (rebuilds are
  // deferred to the next call), but not across other Gossiper mutations.
  const std::vector<NodeId>& LiveEndpointsView() const;

  // Cached sorted unreachable-endpoint list: endpoints we know but currently
  // consider dead, excluding self and endpoints whose STATUS says they
  // departed on purpose (LEFT/REMOVED). This is the gossip-to-unreachable
  // target set; same reference-validity contract as LiveEndpointsView.
  const std::vector<NodeId>& UnreachableEndpointsView() const;
  std::vector<NodeId> UnreachableEndpoints() const;

  // Cassandra-style gossip-to-unreachable draw (maybeGossipToUnreachable):
  // with probability |unreachable| / (|live| + 1), returns a uniformly random
  // unreachable endpoint to SYN this round; kInvalidNode otherwise. Consumes
  // rng draws ONLY when the unreachable set is non-empty, so runs that never
  // convict anyone keep their RNG streams byte-identical.
  NodeId PickUnreachableSynTarget(Rng* rng) const;

  // ---- Protocol steps -----------------------------------------------------

  // Builds the SYN digest list (shuffled order does not matter; we keep
  // deterministic order — sorted by endpoint id).
  std::vector<GossipDigest> MakeSynDigests() const;

  // Same digest list copied into *out, reusing its capacity (for pooled
  // payload buffers).
  void CopySynDigests(std::vector<GossipDigest>* out) const;

  // Receiver side of SYN: splits into (digests we want, states they want).
  void HandleSyn(const std::vector<GossipDigest>& digests,
                 std::vector<GossipDigest>* out_requests,
                 EndpointStateMap* out_send);

  // Builds the states requested by a digest list (ACK/ACK2 construction).
  // The out-param form reuses the pooled payload map's capacity.
  void StatesForRequests(const std::vector<GossipDigest>& requests,
                         EndpointStateMap* out) const;
  EndpointStateMap StatesForRequests(const std::vector<GossipDigest>& requests) const;

  // Applies remote states (ACK/ACK2 receipt), firing callbacks.
  void ApplyStates(const EndpointStateMap& states);

  // ---- Work estimation ----------------------------------------------------

  static WorkUnits EstimateSynWork(const SynPayload& syn, const WorkCosts& costs);
  static WorkUnits EstimateAckWork(const AckPayload& ack, const WorkCosts& costs);
  static WorkUnits EstimateAck2Work(const Ack2Payload& ack2, const WorkCosts& costs);
  WorkUnits EstimateRoundWork(const WorkCosts& costs) const;

  // ---- Introspection ------------------------------------------------------

  uint64_t states_applied() const { return states_applied_; }
  uint64_t syn_handled() const { return syn_handled_; }
  // Endpoint-state mutations accepted from remotes (new endpoints, wholesale
  // generation replacements, heartbeat advances, app-state sets). This is the
  // "changes" in the O(changes) digest-maintenance bound.
  uint64_t updates_applied() const { return updates_applied_; }
  // Digest-cache maintenance counters: builds served, individual entries
  // recomputed, and full O(N) rebuilds (membership changes only).
  uint64_t digest_builds() const { return digest_builds_; }
  uint64_t digest_entries_refreshed() const { return digest_entries_refreshed_; }
  uint64_t digest_full_rebuilds() const { return digest_full_rebuilds_; }

  // Arena backing the digest scratch: the owner (Node) hooks growth into
  // MemoryModel and reads the reserved footprint for the profiler.
  Arena& scratch_arena() { return arena_; }
  const Arena& scratch_arena() const { return arena_; }
  // Heap footprint of the endpoint table itself (profiler accounting).
  size_t endpoint_store_bytes() const { return endpoints_.ApproxBytes(); }

 private:
  void ApplyOne(NodeId ep, const EndpointState& remote);
  // Copies into *delta only the content of `state` newer than `after_version`
  // (the heartbeat always rides along).
  static void BuildDeltaInto(const EndpointState& state, int64_t after_version,
                             EndpointState* delta);

  int64_t NextVersion() { return ++version_counter_; }

  // Inserts a brand-new endpoint at its sorted position, keeping alive_ and
  // self_index_ aligned. Returns the insertion index.
  size_t InsertEndpoint(NodeId ep, const EndpointState& state, bool alive);

  // Marks one endpoint's cached digest entry stale (version bump). Indices
  // are stable between structural mutations, and every structural mutation
  // clears the dirty list, so a queued index cannot go stale.
  void MarkDigestDirty(size_t index);
  // Membership changed: the whole cache must be rebuilt.
  void MarkDigestStructureDirty();
  // Brings digest_cache_ up to date (refreshes only dirty entries).
  void RefreshDigestCache() const;
  // Fallback for digest lists that are not strictly sorted by endpoint.
  void HandleSynGeneric(const std::vector<GossipDigest>& digests,
                        std::vector<GossipDigest>* out_requests,
                        EndpointStateMap* out_send);

  NodeId self_;
  Callbacks callbacks_;
  int64_t version_counter_ = 0;

  // Declared before the arena-backed caches below (construction order).
  Arena arena_;

  EndpointStateStore endpoints_;  // includes self_
  size_t self_index_ = 0;         // index of self_ in endpoints_
  // Liveness bitmap, index-aligned with endpoints_ (self slot unused).
  std::vector<uint8_t> alive_;

  uint64_t states_applied_ = 0;
  uint64_t syn_handled_ = 0;
  uint64_t updates_applied_ = 0;

  // SYN digest cache, index-aligned with endpoints_; arena-backed scratch.
  mutable ArenaVector<GossipDigest> digest_cache_;
  mutable ArenaVector<uint32_t> digest_dirty_;  // indices into endpoints_
  mutable bool digest_structure_dirty_ = true;
  mutable uint64_t digest_builds_ = 0;
  mutable uint64_t digest_entries_refreshed_ = 0;
  mutable uint64_t digest_full_rebuilds_ = 0;

  // Sorted live-endpoint cache (excludes self).
  mutable std::vector<NodeId> live_cache_;
  mutable bool live_dirty_ = true;

  // Sorted unreachable-endpoint cache (known, dead, not departed). Dirtied by
  // liveness flips, membership changes, and accepted STATUS transitions (a
  // dead endpoint that goes LEFT must drop out of the unreachable set).
  mutable std::vector<NodeId> unreachable_cache_;
  mutable bool unreachable_dirty_ = true;
};

}  // namespace scalecheck

#endif  // SCALECHECK_SRC_GOSSIP_GOSSIPER_H_
