#include "src/gossip/digest_codec.h"

#include "src/common/varint.h"

namespace scalecheck {
namespace digest_codec {

namespace {
// Each entry is at least three one-byte varints; the count guard uses this
// so a corrupt count cannot drive a huge allocation.
constexpr size_t kMinEntryBytes = 3;
}  // namespace

void Encode(const std::vector<GossipDigest>& digests, std::string* out) {
  varint::PutU64(out, digests.size());
  int64_t prev_endpoint = 0;
  int64_t prev_generation = 0;
  int64_t prev_version = 0;
  for (const GossipDigest& d : digests) {
    varint::PutI64(out, static_cast<int64_t>(d.endpoint) - prev_endpoint);
    varint::PutI64(out, d.generation - prev_generation);
    varint::PutI64(out, d.max_version - prev_version);
    prev_endpoint = d.endpoint;
    prev_generation = d.generation;
    prev_version = d.max_version;
  }
}

bool Decode(std::string_view data, size_t* pos, std::vector<GossipDigest>* out) {
  uint64_t n;
  if (!varint::GetU64(data, pos, &n) ||
      n * kMinEntryBytes > data.size() - *pos) {
    return false;
  }
  out->clear();
  out->resize(static_cast<size_t>(n));
  int64_t prev_endpoint = 0;
  int64_t prev_generation = 0;
  int64_t prev_version = 0;
  for (GossipDigest& d : *out) {
    int64_t d_endpoint, d_generation, d_version;
    if (!varint::GetI64(data, pos, &d_endpoint) ||
        !varint::GetI64(data, pos, &d_generation) ||
        !varint::GetI64(data, pos, &d_version)) {
      return false;
    }
    prev_endpoint += d_endpoint;
    prev_generation += d_generation;
    prev_version += d_version;
    // Endpoint ids are int32 on the wire; reject deltas that walked outside.
    if (prev_endpoint < INT32_MIN || prev_endpoint > INT32_MAX) {
      return false;
    }
    d.endpoint = static_cast<NodeId>(prev_endpoint);
    d.generation = prev_generation;
    d.max_version = prev_version;
  }
  return true;
}

size_t MeasureBytes(const std::vector<GossipDigest>& digests) {
  size_t bytes = varint::SizeU64(digests.size());
  int64_t prev_endpoint = 0;
  int64_t prev_generation = 0;
  int64_t prev_version = 0;
  for (const GossipDigest& d : digests) {
    bytes += varint::SizeI64(static_cast<int64_t>(d.endpoint) - prev_endpoint);
    bytes += varint::SizeI64(d.generation - prev_generation);
    bytes += varint::SizeI64(d.max_version - prev_version);
    prev_endpoint = d.endpoint;
    prev_generation = d.generation;
    prev_version = d.max_version;
  }
  return bytes;
}

}  // namespace digest_codec
}  // namespace scalecheck
