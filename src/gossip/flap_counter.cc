#include "src/gossip/flap_counter.h"

namespace scalecheck {

void FlapCounter::RecordDown(NodeId observer, NodeId subject, VirtualTime when) {
  PairKey key{observer, subject};
  ++total_flaps_;
  ++per_pair_[key];
  ++by_observer_[observer];
  ++timeline_[when.nanos() / VirtualDuration::Seconds(10).nanos()];
  down_since_[key] = when;
}

void FlapCounter::RecordUp(NodeId observer, NodeId subject, VirtualTime when) {
  PairKey key{observer, subject};
  auto it = down_since_.find(key);
  if (it == down_since_.end()) {
    return;  // initial state was already up, or Reset() intervened
  }
  downtime_seconds_.Add((when - it->second).seconds());
  down_since_.erase(it);
}

int64_t FlapCounter::FlapsByObserver(NodeId observer) const {
  auto it = by_observer_.find(observer);
  return it == by_observer_.end() ? 0 : it->second;
}

void FlapCounter::Reset() {
  total_flaps_ = 0;
  per_pair_.clear();
  down_since_.clear();
  by_observer_.clear();
  timeline_.clear();
  downtime_seconds_ = RunningStat();
}

}  // namespace scalecheck
