#include "src/gossip/gossiper.h"

#include <algorithm>
#include <utility>

#include "src/common/check.h"
#include "src/common/rng.h"

namespace scalecheck {

Gossiper::Gossiper(NodeId self, int64_t generation, Callbacks callbacks)
    : self_(self), callbacks_(std::move(callbacks)) {
  endpoints_.emplace(self_, EndpointState(generation));
}

void Gossiper::IncrementHeartbeat() {
  EndpointState& local = endpoints_.at(self_);
  local.mutable_heartbeat().version = NextVersion();
  MarkDigestDirty(self_, &local);
}

void Gossiper::SetLocalState(ApplicationStateKey key, VersionedValue value) {
  value.version = NextVersion();
  EndpointState& local = endpoints_.at(self_);
  local.Set(key, std::move(value));
  MarkDigestDirty(self_, &local);
}

const EndpointState& Gossiper::LocalState() const { return endpoints_.at(self_); }

void Gossiper::AddKnownEndpoint(NodeId ep, const EndpointState& state) {
  if (ep == self_) {
    return;
  }
  endpoints_[ep] = state;
  alive_[ep] = true;
  MarkDigestStructureDirty();
  live_dirty_ = true;
  unreachable_dirty_ = true;
}

void Gossiper::RemoveEndpoint(NodeId ep) {
  endpoints_.erase(ep);
  alive_.erase(ep);
  MarkDigestStructureDirty();
  live_dirty_ = true;
  unreachable_dirty_ = true;
}

void Gossiper::ResetForRestart(int64_t generation) {
  endpoints_.clear();
  alive_.clear();
  version_counter_ = 0;
  endpoints_.emplace(self_, EndpointState(generation));
  MarkDigestStructureDirty();
  live_dirty_ = true;
  unreachable_dirty_ = true;
}

const EndpointState* Gossiper::StateOf(NodeId ep) const {
  auto it = endpoints_.find(ep);
  return it == endpoints_.end() ? nullptr : &it->second;
}

void Gossiper::MarkAlive(NodeId ep) {
  bool& flag = alive_[ep];
  if (!flag) {
    flag = true;
    live_dirty_ = true;
    unreachable_dirty_ = true;
  }
}

void Gossiper::MarkDead(NodeId ep) {
  // Track liveness only for endpoints we actually know. This used to insert
  // alive_[ep]=false for unknown endpoints, leaking a tombstone forever (and
  // under the unreachable view it would resurrect forgotten endpoints as
  // gossip-to-unreachable targets).
  if (endpoints_.find(ep) == endpoints_.end()) {
    if (alive_.erase(ep) > 0) {
      live_dirty_ = true;
      unreachable_dirty_ = true;
    }
    return;
  }
  bool& flag = alive_[ep];
  if (flag) {
    flag = false;
    live_dirty_ = true;
  }
  // Callers often MarkDead in reaction to a STATUS change (LEFT/REMOVED),
  // which moves the endpoint out of the unreachable set even when the flag
  // was already false — rebuild unconditionally.
  unreachable_dirty_ = true;
}

bool Gossiper::IsAlive(NodeId ep) const {
  auto it = alive_.find(ep);
  return it != alive_.end() && it->second;
}

const std::vector<NodeId>& Gossiper::LiveEndpointsView() const {
  if (live_dirty_) {
    live_cache_.clear();
    for (const auto& [ep, alive] : alive_) {
      if (alive && ep != self_) {
        live_cache_.push_back(ep);
      }
    }
    std::sort(live_cache_.begin(), live_cache_.end());
    live_dirty_ = false;
  }
  return live_cache_;
}

std::vector<NodeId> Gossiper::LiveEndpoints() const { return LiveEndpointsView(); }

const std::vector<NodeId>& Gossiper::UnreachableEndpointsView() const {
  if (unreachable_dirty_) {
    unreachable_cache_.clear();
    for (const auto& [ep, state] : endpoints_) {
      if (ep == self_ || IsAlive(ep)) {
        continue;
      }
      StatusKind status = state.Status();
      if (status == StatusKind::kLeft || status == StatusKind::kRemoved) {
        continue;  // departed on purpose, not a healing target
      }
      unreachable_cache_.push_back(ep);
    }
    unreachable_dirty_ = false;
  }
  return unreachable_cache_;  // endpoints_ is sorted, so the cache is too
}

std::vector<NodeId> Gossiper::UnreachableEndpoints() const {
  return UnreachableEndpointsView();
}

NodeId Gossiper::PickUnreachableSynTarget(Rng* rng) const {
  const std::vector<NodeId>& unreachable = UnreachableEndpointsView();
  if (unreachable.empty()) {
    return kInvalidNode;  // no draw: fault-free RNG streams stay untouched
  }
  const std::vector<NodeId>& live = LiveEndpointsView();
  double prob = static_cast<double>(unreachable.size()) /
                (static_cast<double>(live.size()) + 1.0);
  if (!rng->Bernoulli(prob < 1.0 ? prob : 1.0)) {
    return kInvalidNode;
  }
  return unreachable[rng->PickIndex(unreachable.size())];
}

std::vector<NodeId> Gossiper::AllEndpoints() const {
  std::vector<NodeId> out;
  for (const auto& [ep, state] : endpoints_) {
    if (ep != self_) {
      out.push_back(ep);
    }
  }
  return out;
}

void Gossiper::MarkDigestDirty(NodeId ep, const EndpointState* state) {
  if (!digest_structure_dirty_) {
    digest_dirty_.emplace_back(ep, state);
  }
}

void Gossiper::MarkDigestStructureDirty() {
  digest_structure_dirty_ = true;
  digest_dirty_.clear();
}

void Gossiper::RefreshDigestCache() const {
  if (digest_structure_dirty_) {
    digest_cache_.clear();
    digest_cache_.reserve(endpoints_.size());
    for (const auto& [ep, state] : endpoints_) {
      digest_cache_.push_back(
          GossipDigest{ep, state.heartbeat().generation, state.MaxVersion()});
    }
    digest_entries_refreshed_ += endpoints_.size();
    ++digest_full_rebuilds_;
    digest_structure_dirty_ = false;
    return;
  }
  if (digest_dirty_.empty()) {
    return;
  }
  std::sort(digest_dirty_.begin(), digest_dirty_.end());
  digest_dirty_.erase(std::unique(digest_dirty_.begin(), digest_dirty_.end()),
                      digest_dirty_.end());
  for (const auto& [ep, state] : digest_dirty_) {
    // The queued state pointer is live by the MarkDigestDirty invariant, so
    // no endpoint-map lookup is needed here — just find the cache row.
    auto pos = std::lower_bound(
        digest_cache_.begin(), digest_cache_.end(), ep,
        [](const GossipDigest& d, NodeId e) { return d.endpoint < e; });
    CHECK(pos != digest_cache_.end() && pos->endpoint == ep);
    pos->generation = state->heartbeat().generation;
    pos->max_version = state->MaxVersion();
    ++digest_entries_refreshed_;
  }
  digest_dirty_.clear();
}

std::vector<GossipDigest> Gossiper::MakeSynDigests() const {
  RefreshDigestCache();
  ++digest_builds_;
  return digest_cache_;
}

void Gossiper::CopySynDigests(std::vector<GossipDigest>* out) const {
  RefreshDigestCache();
  ++digest_builds_;
  out->assign(digest_cache_.begin(), digest_cache_.end());
}

void Gossiper::HandleSyn(const std::vector<GossipDigest>& digests,
                         std::vector<GossipDigest>* out_requests,
                         EndpointStateMap* out_send) {
  ++syn_handled_;
  CHECK_NOTNULL(out_requests);
  CHECK_NOTNULL(out_send);
  bool strictly_sorted =
      std::adjacent_find(digests.begin(), digests.end(),
                         [](const GossipDigest& a, const GossipDigest& b) {
                           return a.endpoint >= b.endpoint;
                         }) == digests.end();
  if (!strictly_sorted) {
    HandleSynGeneric(digests, out_requests, out_send);
    return;
  }
  // Merge-walk the sorted incoming digests against our (sorted) endpoint map
  // and cached digest entries — one pass, no per-digest map lookups and no
  // MaxVersion() recomputation.
  RefreshDigestCache();
  auto mi = endpoints_.begin();
  size_t ci = 0;
  for (const GossipDigest& digest : digests) {
    while (mi != endpoints_.end() && mi->first < digest.endpoint) {
      // Endpoint the sender did not mention at all.
      out_send->emplace(mi->first, mi->second);
      ++mi;
      ++ci;
    }
    if (mi == endpoints_.end() || mi->first > digest.endpoint) {
      // Unknown to us: request everything.
      out_requests->push_back(GossipDigest{digest.endpoint, 0, 0});
      continue;
    }
    const EndpointState& local = mi->second;
    const GossipDigest& mine = digest_cache_[ci];
    if (digest.generation > mine.generation) {
      out_requests->push_back(GossipDigest{digest.endpoint, 0, 0});
    } else if (digest.generation < mine.generation) {
      out_send->emplace(digest.endpoint, local);
    } else if (digest.max_version > mine.max_version) {
      out_requests->push_back(
          GossipDigest{digest.endpoint, mine.generation, mine.max_version});
    } else if (digest.max_version < mine.max_version) {
      out_send->emplace(digest.endpoint, DeltaAfter(local, digest.max_version));
    }
    // Equal generation and version: nothing to exchange.
    ++mi;
    ++ci;
  }
  for (; mi != endpoints_.end(); ++mi) {
    out_send->emplace(mi->first, mi->second);
  }
}

void Gossiper::HandleSynGeneric(const std::vector<GossipDigest>& digests,
                                std::vector<GossipDigest>* out_requests,
                                EndpointStateMap* out_send) {
  std::map<NodeId, bool> seen;
  for (const GossipDigest& digest : digests) {
    seen[digest.endpoint] = true;
    auto it = endpoints_.find(digest.endpoint);
    if (it == endpoints_.end()) {
      // Unknown to us: request everything.
      out_requests->push_back(GossipDigest{digest.endpoint, 0, 0});
      continue;
    }
    const EndpointState& local = it->second;
    if (digest.generation > local.heartbeat().generation) {
      out_requests->push_back(GossipDigest{digest.endpoint, 0, 0});
    } else if (digest.generation < local.heartbeat().generation) {
      out_send->emplace(digest.endpoint, local);
    } else if (digest.max_version > local.MaxVersion()) {
      out_requests->push_back(
          GossipDigest{digest.endpoint, local.heartbeat().generation, local.MaxVersion()});
    } else if (digest.max_version < local.MaxVersion()) {
      out_send->emplace(digest.endpoint, DeltaAfter(local, digest.max_version));
    }
    // Equal generation and version: nothing to exchange.
  }
  // Endpoints we know that the sender did not mention at all.
  for (const auto& [ep, state] : endpoints_) {
    if (!seen.count(ep)) {
      out_send->emplace(ep, state);
    }
  }
}

EndpointStateMap Gossiper::StatesForRequests(
    const std::vector<GossipDigest>& requests) const {
  EndpointStateMap out;
  for (const GossipDigest& req : requests) {
    auto it = endpoints_.find(req.endpoint);
    if (it == endpoints_.end()) {
      continue;
    }
    if (req.generation == it->second.heartbeat().generation && req.max_version > 0) {
      out.emplace(req.endpoint, DeltaAfter(it->second, req.max_version));
    } else {
      out.emplace(req.endpoint, it->second);
    }
  }
  return out;
}

EndpointState Gossiper::DeltaAfter(const EndpointState& state, int64_t after_version) {
  EndpointState delta(state.heartbeat().generation);
  delta.mutable_heartbeat() = state.heartbeat();
  for (const auto& [key, value] : state.app_states()) {
    if (value.version > after_version) {
      delta.Set(key, value);
    }
  }
  return delta;
}

void Gossiper::ApplyStates(const EndpointStateMap& states) {
  for (const auto& [ep, remote] : states) {
    ApplyOne(ep, remote);
  }
}

void Gossiper::ApplyOne(NodeId ep, const EndpointState& remote) {
  if (ep == self_) {
    return;  // we are the authority on our own state
  }
  auto it = endpoints_.find(ep);
  if (it == endpoints_.end()) {
    // Newly discovered endpoint.
    endpoints_[ep] = remote;
    alive_[ep] = true;
    live_dirty_ = true;
    unreachable_dirty_ = true;
    MarkDigestStructureDirty();
    ++states_applied_;
    ++updates_applied_;
    if (callbacks_.on_heartbeat) {
      callbacks_.on_heartbeat(ep);
    }
    if (remote.Status() != StatusKind::kUnknown && callbacks_.on_status_change) {
      callbacks_.on_status_change(ep, StatusKind::kUnknown, remote.Status());
    }
    return;
  }

  EndpointState& local = it->second;
  if (remote.heartbeat().generation < local.heartbeat().generation) {
    return;  // stale information
  }
  if (remote.heartbeat().generation > local.heartbeat().generation) {
    // Peer restarted: replace wholesale.
    StatusKind old_status = local.Status();
    local = remote;
    MarkDigestDirty(ep, &local);
    unreachable_dirty_ = true;  // wholesale replace can change STATUS
    ++states_applied_;
    ++updates_applied_;
    if (callbacks_.on_restart) {
      callbacks_.on_restart(ep);
    }
    if (callbacks_.on_heartbeat) {
      callbacks_.on_heartbeat(ep);
    }
    if (local.Status() != old_status && callbacks_.on_status_change) {
      callbacks_.on_status_change(ep, old_status, local.Status());
    }
    return;
  }

  // Same generation: merge by version.
  bool heartbeat_advanced = false;
  bool content_changed = false;
  if (remote.heartbeat().version > local.heartbeat().version) {
    local.mutable_heartbeat().version = remote.heartbeat().version;
    heartbeat_advanced = true;
    content_changed = true;
    ++updates_applied_;
  }
  for (const auto& [key, value] : remote.app_states()) {
    const VersionedValue* existing = local.Get(key);
    if (existing != nullptr && existing->version >= value.version) {
      continue;
    }
    StatusKind old_status = local.Status();
    local.Set(key, value);
    content_changed = true;
    ++states_applied_;
    ++updates_applied_;
    if (key == ApplicationStateKey::kStatus) {
      unreachable_dirty_ = true;  // LEFT/REMOVED exits the unreachable set
      if (callbacks_.on_status_change && value.status != old_status) {
        callbacks_.on_status_change(ep, old_status, value.status);
      }
    }
  }
  if (content_changed) {
    // Accepted content moved this endpoint's max version.
    MarkDigestDirty(ep, &local);
  }
  if (heartbeat_advanced && callbacks_.on_heartbeat) {
    callbacks_.on_heartbeat(ep);
  }
}

WorkUnits Gossiper::EstimateSynWork(const SynPayload& syn, const WorkCosts& costs) {
  return costs.base + costs.per_digest * static_cast<WorkUnits>(syn.digests.size());
}

namespace {
WorkUnits StatesWork(const EndpointStateMap& states, const Gossiper::WorkCosts& costs) {
  WorkUnits work = 0;
  for (const auto& [ep, state] : states) {
    work += costs.per_state;
    for (const auto& [key, value] : state.app_states()) {
      work += costs.per_token * static_cast<WorkUnits>(value.tokens.size());
    }
  }
  return work;
}
}  // namespace

WorkUnits Gossiper::EstimateAckWork(const AckPayload& ack, const WorkCosts& costs) {
  return costs.base + costs.per_digest * static_cast<WorkUnits>(ack.requests.size()) +
         StatesWork(ack.states, costs);
}

WorkUnits Gossiper::EstimateAck2Work(const Ack2Payload& ack2, const WorkCosts& costs) {
  return costs.base + StatesWork(ack2.states, costs);
}

WorkUnits Gossiper::EstimateRoundWork(const WorkCosts& costs) const {
  return costs.base + costs.per_digest * static_cast<WorkUnits>(endpoints_.size());
}

}  // namespace scalecheck
