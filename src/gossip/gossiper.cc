#include "src/gossip/gossiper.h"

#include <algorithm>
#include <map>
#include <utility>

#include "src/common/check.h"
#include "src/common/rng.h"

namespace scalecheck {

Gossiper::Gossiper(NodeId self, int64_t generation, Callbacks callbacks)
    : self_(self),
      callbacks_(std::move(callbacks)),
      digest_cache_(ArenaAllocator<GossipDigest>(&arena_)),
      digest_dirty_(ArenaAllocator<uint32_t>(&arena_)) {
  self_index_ = endpoints_.Insert(self_, EndpointState(generation));
  alive_.push_back(0);  // self's liveness slot is unused
}

size_t Gossiper::InsertEndpoint(NodeId ep, const EndpointState& state, bool alive) {
  size_t index = endpoints_.Insert(ep, state);
  alive_.insert(alive_.begin() + index, alive ? 1 : 0);
  if (index <= self_index_) {
    ++self_index_;
  }
  return index;
}

void Gossiper::IncrementHeartbeat() {
  EndpointState& local = endpoints_.StateAt(self_index_);
  local.mutable_heartbeat().version = NextVersion();
  MarkDigestDirty(self_index_);
}

void Gossiper::SetLocalState(ApplicationStateKey key, VersionedValue value) {
  value.version = NextVersion();
  EndpointState& local = endpoints_.StateAt(self_index_);
  local.Set(key, std::move(value));
  MarkDigestDirty(self_index_);
}

const EndpointState& Gossiper::LocalState() const {
  return endpoints_.StateAt(self_index_);
}

void Gossiper::AddKnownEndpoint(NodeId ep, const EndpointState& state) {
  if (ep == self_) {
    return;
  }
  size_t index = endpoints_.IndexOf(ep);
  if (index == EndpointStateStore::kNotFound) {
    InsertEndpoint(ep, state, /*alive=*/true);
  } else {
    endpoints_.StateAt(index) = state;
    alive_[index] = 1;
  }
  MarkDigestStructureDirty();
  live_dirty_ = true;
  unreachable_dirty_ = true;
}

void Gossiper::RemoveEndpoint(NodeId ep) {
  size_t index = endpoints_.IndexOf(ep);
  if (index == EndpointStateStore::kNotFound) {
    return;
  }
  endpoints_.Erase(ep);
  alive_.erase(alive_.begin() + index);
  if (index < self_index_) {
    --self_index_;
  }
  MarkDigestStructureDirty();
  live_dirty_ = true;
  unreachable_dirty_ = true;
}

void Gossiper::ResetForRestart(int64_t generation) {
  endpoints_.Clear();
  alive_.clear();
  version_counter_ = 0;
  self_index_ = endpoints_.Insert(self_, EndpointState(generation));
  alive_.push_back(0);
  MarkDigestStructureDirty();
  live_dirty_ = true;
  unreachable_dirty_ = true;
}

const EndpointState* Gossiper::StateOf(NodeId ep) const {
  return endpoints_.Find(ep);
}

void Gossiper::MarkAlive(NodeId ep) {
  size_t index = endpoints_.IndexOf(ep);
  if (index == EndpointStateStore::kNotFound) {
    return;  // liveness is tracked only for known endpoints
  }
  if (!alive_[index]) {
    alive_[index] = 1;
    live_dirty_ = true;
    unreachable_dirty_ = true;
  }
}

void Gossiper::MarkDead(NodeId ep) {
  // Liveness is tracked only for endpoints we actually know; marking an
  // unknown endpoint dead leaves no trace (no tombstone can resurrect it as
  // a gossip-to-unreachable target).
  size_t index = endpoints_.IndexOf(ep);
  if (index == EndpointStateStore::kNotFound) {
    return;
  }
  if (alive_[index]) {
    alive_[index] = 0;
    live_dirty_ = true;
  }
  // Callers often MarkDead in reaction to a STATUS change (LEFT/REMOVED),
  // which moves the endpoint out of the unreachable set even when the flag
  // was already false — rebuild unconditionally.
  unreachable_dirty_ = true;
}

const std::vector<NodeId>& Gossiper::LiveEndpointsView() const {
  if (live_dirty_) {
    live_cache_.clear();
    for (size_t i = 0; i < endpoints_.size(); ++i) {
      if (alive_[i] && endpoints_.IdAt(i) != self_) {
        live_cache_.push_back(endpoints_.IdAt(i));
      }
    }
    live_dirty_ = false;  // ids_ is sorted, so the cache is too
  }
  return live_cache_;
}

std::vector<NodeId> Gossiper::LiveEndpoints() const { return LiveEndpointsView(); }

const std::vector<NodeId>& Gossiper::UnreachableEndpointsView() const {
  if (unreachable_dirty_) {
    unreachable_cache_.clear();
    for (size_t i = 0; i < endpoints_.size(); ++i) {
      NodeId ep = endpoints_.IdAt(i);
      if (ep == self_ || alive_[i]) {
        continue;
      }
      StatusKind status = endpoints_.StateAt(i).Status();
      if (status == StatusKind::kLeft || status == StatusKind::kRemoved) {
        continue;  // departed on purpose, not a healing target
      }
      unreachable_cache_.push_back(ep);
    }
    unreachable_dirty_ = false;
  }
  return unreachable_cache_;
}

std::vector<NodeId> Gossiper::UnreachableEndpoints() const {
  return UnreachableEndpointsView();
}

NodeId Gossiper::PickUnreachableSynTarget(Rng* rng) const {
  const std::vector<NodeId>& unreachable = UnreachableEndpointsView();
  if (unreachable.empty()) {
    return kInvalidNode;  // no draw: fault-free RNG streams stay untouched
  }
  const std::vector<NodeId>& live = LiveEndpointsView();
  double prob = static_cast<double>(unreachable.size()) /
                (static_cast<double>(live.size()) + 1.0);
  if (!rng->Bernoulli(prob < 1.0 ? prob : 1.0)) {
    return kInvalidNode;
  }
  return unreachable[rng->PickIndex(unreachable.size())];
}

std::vector<NodeId> Gossiper::AllEndpoints() const {
  std::vector<NodeId> out;
  out.reserve(endpoints_.size());
  for (NodeId ep : endpoints_.ids()) {
    if (ep != self_) {
      out.push_back(ep);
    }
  }
  return out;
}

void Gossiper::MarkDigestDirty(size_t index) {
  if (!digest_structure_dirty_) {
    digest_dirty_.push_back(static_cast<uint32_t>(index));
  }
}

void Gossiper::MarkDigestStructureDirty() {
  digest_structure_dirty_ = true;
  digest_dirty_.clear();
}

void Gossiper::RefreshDigestCache() const {
  if (digest_structure_dirty_) {
    digest_cache_.clear();
    digest_cache_.reserve(endpoints_.size());
    for (size_t i = 0; i < endpoints_.size(); ++i) {
      const EndpointState& state = endpoints_.StateAt(i);
      digest_cache_.push_back(GossipDigest{endpoints_.IdAt(i),
                                           state.heartbeat().generation,
                                           state.MaxVersion()});
    }
    digest_entries_refreshed_ += endpoints_.size();
    ++digest_full_rebuilds_;
    digest_structure_dirty_ = false;
    return;
  }
  if (digest_dirty_.empty()) {
    return;
  }
  std::sort(digest_dirty_.begin(), digest_dirty_.end());
  digest_dirty_.erase(std::unique(digest_dirty_.begin(), digest_dirty_.end()),
                      digest_dirty_.end());
  for (uint32_t index : digest_dirty_) {
    // Indices queued by MarkDigestDirty are valid by the structural-mutation
    // invariant, and the cache is index-aligned — no search needed.
    const EndpointState& state = endpoints_.StateAt(index);
    GossipDigest& entry = digest_cache_[index];
    entry.generation = state.heartbeat().generation;
    entry.max_version = state.MaxVersion();
    ++digest_entries_refreshed_;
  }
  digest_dirty_.clear();
}

std::vector<GossipDigest> Gossiper::MakeSynDigests() const {
  RefreshDigestCache();
  ++digest_builds_;
  return std::vector<GossipDigest>(digest_cache_.begin(), digest_cache_.end());
}

void Gossiper::CopySynDigests(std::vector<GossipDigest>* out) const {
  RefreshDigestCache();
  ++digest_builds_;
  out->assign(digest_cache_.begin(), digest_cache_.end());
}

void Gossiper::HandleSyn(const std::vector<GossipDigest>& digests,
                         std::vector<GossipDigest>* out_requests,
                         EndpointStateMap* out_send) {
  ++syn_handled_;
  CHECK_NOTNULL(out_requests);
  CHECK_NOTNULL(out_send);
  bool strictly_sorted =
      std::adjacent_find(digests.begin(), digests.end(),
                         [](const GossipDigest& a, const GossipDigest& b) {
                           return a.endpoint >= b.endpoint;
                         }) == digests.end();
  if (!strictly_sorted) {
    HandleSynGeneric(digests, out_requests, out_send);
    return;
  }
  // Merge-walk the sorted incoming digests against our sorted endpoint table
  // and its index-aligned digest cache — one linear pass over contiguous
  // arrays, no per-digest lookups and no MaxVersion() recomputation. Emitted
  // endpoints ascend, so out_send inserts are O(1) appends.
  RefreshDigestCache();
  size_t i = 0;
  const size_t n = endpoints_.size();
  for (const GossipDigest& digest : digests) {
    while (i < n && endpoints_.IdAt(i) < digest.endpoint) {
      // Endpoint the sender did not mention at all.
      out_send->emplace(endpoints_.IdAt(i), endpoints_.StateAt(i));
      ++i;
    }
    if (i == n || endpoints_.IdAt(i) > digest.endpoint) {
      // Unknown to us: request everything.
      out_requests->push_back(GossipDigest{digest.endpoint, 0, 0});
      continue;
    }
    const EndpointState& local = endpoints_.StateAt(i);
    const GossipDigest& mine = digest_cache_[i];
    if (digest.generation > mine.generation) {
      out_requests->push_back(GossipDigest{digest.endpoint, 0, 0});
    } else if (digest.generation < mine.generation) {
      out_send->emplace(digest.endpoint, local);
    } else if (digest.max_version > mine.max_version) {
      out_requests->push_back(
          GossipDigest{digest.endpoint, mine.generation, mine.max_version});
    } else if (digest.max_version < mine.max_version) {
      BuildDeltaInto(local, digest.max_version, &(*out_send)[digest.endpoint]);
    }
    // Equal generation and version: nothing to exchange.
    ++i;
  }
  for (; i < n; ++i) {
    out_send->emplace(endpoints_.IdAt(i), endpoints_.StateAt(i));
  }
}

void Gossiper::HandleSynGeneric(const std::vector<GossipDigest>& digests,
                                std::vector<GossipDigest>* out_requests,
                                EndpointStateMap* out_send) {
  std::map<NodeId, bool> seen;
  for (const GossipDigest& digest : digests) {
    seen[digest.endpoint] = true;
    const EndpointState* local = endpoints_.Find(digest.endpoint);
    if (local == nullptr) {
      // Unknown to us: request everything.
      out_requests->push_back(GossipDigest{digest.endpoint, 0, 0});
      continue;
    }
    if (digest.generation > local->heartbeat().generation) {
      out_requests->push_back(GossipDigest{digest.endpoint, 0, 0});
    } else if (digest.generation < local->heartbeat().generation) {
      out_send->emplace(digest.endpoint, *local);
    } else if (digest.max_version > local->MaxVersion()) {
      out_requests->push_back(GossipDigest{
          digest.endpoint, local->heartbeat().generation, local->MaxVersion()});
    } else if (digest.max_version < local->MaxVersion()) {
      auto [it, inserted] = out_send->emplace(digest.endpoint);
      if (inserted) {
        BuildDeltaInto(*local, digest.max_version, &it->second);
      }
    }
    // Equal generation and version: nothing to exchange.
  }
  // Endpoints we know that the sender did not mention at all.
  for (const auto& [ep, state] : endpoints_) {
    if (!seen.count(ep)) {
      out_send->emplace(ep, state);
    }
  }
}

void Gossiper::StatesForRequests(const std::vector<GossipDigest>& requests,
                                 EndpointStateMap* out) const {
  for (const GossipDigest& req : requests) {
    const EndpointState* local = endpoints_.Find(req.endpoint);
    if (local == nullptr) {
      continue;
    }
    if (req.generation == local->heartbeat().generation && req.max_version > 0) {
      auto [it, inserted] = out->emplace(req.endpoint);
      if (inserted) {
        BuildDeltaInto(*local, req.max_version, &it->second);
      }
    } else {
      out->emplace(req.endpoint, *local);
    }
  }
}

EndpointStateMap Gossiper::StatesForRequests(
    const std::vector<GossipDigest>& requests) const {
  EndpointStateMap out;
  StatesForRequests(requests, &out);
  return out;
}

void Gossiper::BuildDeltaInto(const EndpointState& state, int64_t after_version,
                              EndpointState* delta) {
  delta->mutable_heartbeat() = state.heartbeat();
  for (const auto& [key, value] : state.app_states()) {
    if (value.version > after_version) {
      delta->Set(key, value);
    }
  }
}

void Gossiper::ApplyStates(const EndpointStateMap& states) {
  for (const auto& [ep, remote] : states) {
    ApplyOne(ep, remote);
  }
}

void Gossiper::ApplyOne(NodeId ep, const EndpointState& remote) {
  if (ep == self_) {
    return;  // we are the authority on our own state
  }
  size_t index = endpoints_.IndexOf(ep);
  if (index == EndpointStateStore::kNotFound) {
    // Newly discovered endpoint.
    InsertEndpoint(ep, remote, /*alive=*/true);
    live_dirty_ = true;
    unreachable_dirty_ = true;
    MarkDigestStructureDirty();
    ++states_applied_;
    ++updates_applied_;
    if (callbacks_.on_heartbeat) {
      callbacks_.on_heartbeat(ep);
    }
    if (remote.Status() != StatusKind::kUnknown && callbacks_.on_status_change) {
      callbacks_.on_status_change(ep, StatusKind::kUnknown, remote.Status());
    }
    return;
  }

  EndpointState& local = endpoints_.StateAt(index);
  if (remote.heartbeat().generation < local.heartbeat().generation) {
    return;  // stale information
  }
  if (remote.heartbeat().generation > local.heartbeat().generation) {
    // Peer restarted: replace wholesale.
    StatusKind old_status = local.Status();
    local = remote;
    MarkDigestDirty(index);
    unreachable_dirty_ = true;  // wholesale replace can change STATUS
    ++states_applied_;
    ++updates_applied_;
    if (callbacks_.on_restart) {
      callbacks_.on_restart(ep);
    }
    if (callbacks_.on_heartbeat) {
      callbacks_.on_heartbeat(ep);
    }
    if (local.Status() != old_status && callbacks_.on_status_change) {
      callbacks_.on_status_change(ep, old_status, local.Status());
    }
    return;
  }

  // Same generation: merge by version.
  bool heartbeat_advanced = false;
  bool content_changed = false;
  if (remote.heartbeat().version > local.heartbeat().version) {
    local.mutable_heartbeat().version = remote.heartbeat().version;
    heartbeat_advanced = true;
    content_changed = true;
    ++updates_applied_;
  }
  for (const auto& [key, value] : remote.app_states()) {
    const VersionedValue* existing = local.Get(key);
    if (existing != nullptr && existing->version >= value.version) {
      continue;
    }
    StatusKind old_status = local.Status();
    local.Set(key, value);
    content_changed = true;
    ++states_applied_;
    ++updates_applied_;
    if (key == ApplicationStateKey::kStatus) {
      unreachable_dirty_ = true;  // LEFT/REMOVED exits the unreachable set
      if (callbacks_.on_status_change && value.status != old_status) {
        callbacks_.on_status_change(ep, old_status, value.status);
      }
    }
  }
  if (content_changed) {
    // Accepted content moved this endpoint's max version.
    MarkDigestDirty(index);
  }
  if (heartbeat_advanced && callbacks_.on_heartbeat) {
    callbacks_.on_heartbeat(ep);
  }
}

WorkUnits Gossiper::EstimateSynWork(const SynPayload& syn, const WorkCosts& costs) {
  return costs.base + costs.per_digest * static_cast<WorkUnits>(syn.digests.size());
}

namespace {
WorkUnits StatesWork(const EndpointStateMap& states, const Gossiper::WorkCosts& costs) {
  WorkUnits work = 0;
  for (const auto& [ep, state] : states) {
    work += costs.per_state;
    for (const auto& [key, value] : state.app_states()) {
      work += costs.per_token * static_cast<WorkUnits>(value.tokens.size());
    }
  }
  return work;
}
}  // namespace

WorkUnits Gossiper::EstimateAckWork(const AckPayload& ack, const WorkCosts& costs) {
  return costs.base + costs.per_digest * static_cast<WorkUnits>(ack.requests.size()) +
         StatesWork(ack.states, costs);
}

WorkUnits Gossiper::EstimateAck2Work(const Ack2Payload& ack2, const WorkCosts& costs) {
  return costs.base + StatesWork(ack2.states, costs);
}

WorkUnits Gossiper::EstimateRoundWork(const WorkCosts& costs) const {
  return costs.base + costs.per_digest * static_cast<WorkUnits>(endpoints_.size());
}

}  // namespace scalecheck
