#include "src/pil/function_registry.h"

#include "src/common/check.h"

namespace scalecheck {

PilFunctionId FunctionRegistry::Register(const std::string& name,
                                         const std::string& complexity,
                                         SideEffects effects, bool scale_dependent) {
  CHECK(FindByName(name) == nullptr) << "duplicate PIL function" << name;
  PilFunctionInfo info;
  info.id = static_cast<PilFunctionId>(functions_.size() + 1);
  info.name = name;
  info.complexity = complexity;
  info.effects = effects;
  info.scale_dependent = scale_dependent;
  functions_.push_back(std::move(info));
  return functions_.back().id;
}

const PilFunctionInfo* FunctionRegistry::Find(PilFunctionId id) const {
  if (id == kInvalidPilFunction || id > functions_.size()) {
    return nullptr;
  }
  return &functions_[id - 1];
}

const PilFunctionInfo* FunctionRegistry::FindByName(const std::string& name) const {
  for (const PilFunctionInfo& info : functions_) {
    if (info.name == name) {
      return &info;
    }
  }
  return nullptr;
}

}  // namespace scalecheck
