// The PIL boundary: where a function either runs for real or "takes the PIL".
//
// PilBoundary::Apply appends steps to a Job that realize one of three modes
// for an offending-function invocation (Figure 2):
//
//   kDirect   run the real computation, charge its work to the CPU model.
//             Used by real-scale and basic-colocation runs.
//   kMemoize  like kDirect, but record (input digest -> output, uncontended
//             CPU duration) into the MemoStore — Figure 2-d, the one-time
//             contended run.
//   kReplay   look the input digest up in the MemoStore; on a hit, sleep()
//             for the recorded duration (zero CPU — other nodes do not feel
//             this function at all) and apply the recorded output —
//             Figure 2-e/f. On a miss (replay divergence), fall back to
//             computing the output directly but still *sleep* for the
//             modelled duration rather than charging CPU, and count the miss.
//
// Crucially the boundary preserves the *local* blocking structure: the job's
// surrounding Lock/Unlock steps still happen, so a C5456-style coarse lock is
// held across the sleep exactly as it was held across the computation. PIL
// removes cross-node CPU contention, not local semantics.

#ifndef SCALECHECK_SRC_PIL_BOUNDARY_H_
#define SCALECHECK_SRC_PIL_BOUNDARY_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/common/hash.h"
#include "src/common/types.h"
#include "src/pil/function_registry.h"
#include "src/pil/memo_store.h"
#include "src/sim/thread.h"

namespace scalecheck {

enum class PilMode : int {
  kDirect = 0,
  kMemoize = 1,
  kReplay = 2,
};

const char* PilModeName(PilMode mode);

// What to do when a replay lookup misses (the run has diverged from the
// memoized run and the Processing Illusion is no longer exact):
//   kFallbackToModelled  compute the output, sleep the modelled duration,
//                        extend the memo DB — the historical behavior; the
//                        divergence is still counted in the drift report.
//   kWarn                same as fallback, but the run's fidelity verdict is
//                        downgraded to `degraded` so the drift is visible in
//                        every report built on top.
//   kStrict              record the drift and stop the simulation: a
//                        diverged replay must never masquerade as a faithful
//                        one. The run's verdict becomes `invalid`.
enum class ReplayPolicy : int {
  kFallbackToModelled = 0,
  kWarn = 1,
  kStrict = 2,
};

const char* ReplayPolicyName(ReplayPolicy policy);

// Everything known about the first replay divergence of a run, for debugging
// which call went off-script and in what ordering context.
struct DriftReport {
  uint64_t misses = 0;
  bool diverged = false;
  bool aborted = false;  // the strict policy stopped the run
  PilFunctionId first_function = kInvalidPilFunction;
  DigestValue first_digest;
  VirtualTime first_at;
  // Replay calls (hits + misses) issued before the first diverging one.
  uint64_t first_call_index = 0;
  // Order-log state captured at the moment of first divergence (see
  // set_order_context_fn).
  std::string order_context;
};

class PilBoundary {
 public:
  struct ComputeOutput {
    std::vector<uint8_t> output;
    WorkUnits work = 0;
  };

  struct Stats {
    uint64_t direct_runs = 0;
    uint64_t memoized_runs = 0;
    uint64_t replay_hits = 0;
    uint64_t replay_misses = 0;
  };

  // `core_speed` converts work units to uncontended CPU duration (it must be
  // the core speed of the machines the durations will be replayed against).
  PilBoundary(Simulator* sim, PilMode mode, MemoStore* store, double core_speed);

  PilMode mode() const { return mode_; }
  MemoStore* store() const { return store_; }
  const Stats& stats() const { return stats_; }

  // Replay-divergence handling. Only consulted in kReplay mode.
  void set_replay_policy(ReplayPolicy policy) { replay_policy_ = policy; }
  ReplayPolicy replay_policy() const { return replay_policy_; }
  // Called once, at the first divergence, to snapshot order-log context for
  // the drift report (e.g. enforced/diverged message counts per node).
  void set_order_context_fn(std::function<std::string()> fn) {
    order_context_fn_ = std::move(fn);
  }
  const DriftReport& drift() const { return drift_; }

  // Appends boundary steps to `job`:
  //   digest_fn   evaluated at step start; hashes the function input
  //   compute_fn  the real computation (output bytes + counted work)
  //   apply_fn    consumes the output (from computation or memo)
  void Apply(Job* job, PilFunctionId function,
             std::function<DigestValue()> digest_fn,
             std::function<ComputeOutput()> compute_fn,
             std::function<void(const std::vector<uint8_t>& output, bool from_memo)>
                 apply_fn);

  VirtualDuration WorkToDuration(WorkUnits work) const {
    return VirtualDuration::FromSecondsF(static_cast<double>(work) / core_speed_);
  }

 private:
  void RecordDivergence(PilFunctionId function, const DigestValue& digest);

  Simulator* sim_;
  PilMode mode_;
  MemoStore* store_;
  double core_speed_;
  Stats stats_;
  ReplayPolicy replay_policy_ = ReplayPolicy::kFallbackToModelled;
  std::function<std::string()> order_context_fn_;
  DriftReport drift_;
};

}  // namespace scalecheck

#endif  // SCALECHECK_SRC_PIL_BOUNDARY_H_
