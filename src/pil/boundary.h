// The PIL boundary: where a function either runs for real or "takes the PIL".
//
// PilBoundary::Apply appends steps to a Job that realize one of three modes
// for an offending-function invocation (Figure 2):
//
//   kDirect   run the real computation, charge its work to the CPU model.
//             Used by real-scale and basic-colocation runs.
//   kMemoize  like kDirect, but record (input digest -> output, uncontended
//             CPU duration) into the MemoStore — Figure 2-d, the one-time
//             contended run.
//   kReplay   look the input digest up in the MemoStore; on a hit, sleep()
//             for the recorded duration (zero CPU — other nodes do not feel
//             this function at all) and apply the recorded output —
//             Figure 2-e/f. On a miss (replay divergence), fall back to
//             computing the output directly but still *sleep* for the
//             modelled duration rather than charging CPU, and count the miss.
//
// Crucially the boundary preserves the *local* blocking structure: the job's
// surrounding Lock/Unlock steps still happen, so a C5456-style coarse lock is
// held across the sleep exactly as it was held across the computation. PIL
// removes cross-node CPU contention, not local semantics.

#ifndef SCALECHECK_SRC_PIL_BOUNDARY_H_
#define SCALECHECK_SRC_PIL_BOUNDARY_H_

#include <functional>
#include <memory>
#include <vector>

#include "src/common/hash.h"
#include "src/common/types.h"
#include "src/pil/function_registry.h"
#include "src/pil/memo_store.h"
#include "src/sim/thread.h"

namespace scalecheck {

enum class PilMode : int {
  kDirect = 0,
  kMemoize = 1,
  kReplay = 2,
};

const char* PilModeName(PilMode mode);

class PilBoundary {
 public:
  struct ComputeOutput {
    std::vector<uint8_t> output;
    WorkUnits work = 0;
  };

  struct Stats {
    uint64_t direct_runs = 0;
    uint64_t memoized_runs = 0;
    uint64_t replay_hits = 0;
    uint64_t replay_misses = 0;
  };

  // `core_speed` converts work units to uncontended CPU duration (it must be
  // the core speed of the machines the durations will be replayed against).
  PilBoundary(Simulator* sim, PilMode mode, MemoStore* store, double core_speed);

  PilMode mode() const { return mode_; }
  MemoStore* store() const { return store_; }
  const Stats& stats() const { return stats_; }

  // Appends boundary steps to `job`:
  //   digest_fn   evaluated at step start; hashes the function input
  //   compute_fn  the real computation (output bytes + counted work)
  //   apply_fn    consumes the output (from computation or memo)
  void Apply(Job* job, PilFunctionId function,
             std::function<DigestValue()> digest_fn,
             std::function<ComputeOutput()> compute_fn,
             std::function<void(const std::vector<uint8_t>& output, bool from_memo)>
                 apply_fn);

  VirtualDuration WorkToDuration(WorkUnits work) const {
    return VirtualDuration::FromSecondsF(static_cast<double>(work) / core_speed_);
  }

 private:
  Simulator* sim_;
  PilMode mode_;
  MemoStore* store_;
  double core_speed_;
  Stats stats_;
};

}  // namespace scalecheck

#endif  // SCALECHECK_SRC_PIL_BOUNDARY_H_
