// Order determinism (§5, "Memoizing PIL-replaced functions").
//
// The input/output pairs in the memoization DB depend on the precise order of
// message arrivals; covering all orderings would need "(N^NP)^2" pairs. The
// paper instead records the message-processing order of the memoization run
// and enforces it during replay, so only the observed pairs are needed.
//
// OrderLog records, per node, the sequence of processed message keys (from,
// type, per-pair send sequence). OrderEnforcer buffers out-of-order arrivals
// during replay and releases them in recorded order. Replays are not
// guaranteed to regenerate the identical message stream (timing differs once
// sleeps replace computation), so the enforcer degrades gracefully: messages
// never mentioned in the log pass straight through, and a bounded buffer
// forces progress while counting divergences as an accuracy metric.

#ifndef SCALECHECK_SRC_PIL_ORDER_LOG_H_
#define SCALECHECK_SRC_PIL_ORDER_LOG_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <unordered_map>
#include <vector>

#include "src/common/types.h"
#include "src/sim/network.h"

namespace scalecheck {

struct MessageKey {
  NodeId from = kInvalidNode;
  int type = 0;
  uint64_t pair_seq = 0;

  static MessageKey Of(const Message& msg) {
    return MessageKey{msg.from, msg.type, msg.pair_seq};
  }
  bool operator==(const MessageKey&) const = default;
  auto operator<=>(const MessageKey&) const = default;
};

class OrderLog {
 public:
  // Memoization run: appends the key of a message as it is *processed*.
  void Append(NodeId node, const MessageKey& key);

  const std::vector<MessageKey>& SequenceOf(NodeId node) const;
  size_t TotalEntries() const;
  bool empty() const { return by_node_.empty(); }

 private:
  std::map<NodeId, std::vector<MessageKey>> by_node_;
};

// Per-node replay-side enforcement. Wraps the node's message-processing
// entry point: Submit() either releases messages (in recorded order when
// possible) via the release callback, or buffers them.
class OrderEnforcer {
 public:
  using ReleaseFn = std::function<void(const Message&)>;

  // `log_sequence` may be empty (no enforcement: pass-through).
  OrderEnforcer(std::vector<MessageKey> log_sequence, size_t max_buffer,
                ReleaseFn release);

  // Offers an arriving message. Releases zero or more messages synchronously.
  void Submit(const Message& msg);

  // Flushes everything buffered (end of run / enforcement abandoned).
  void Flush();

  uint64_t divergences() const { return divergences_; }
  uint64_t enforced_in_order() const { return enforced_; }
  size_t buffered() const { return buffer_.size(); }

 private:
  // Releases buffered messages matching the expected cursor; advances past
  // log entries that will never arrive (not buffered, not expected).
  void Drain();
  bool InLog(const MessageKey& key) const;

  std::vector<MessageKey> sequence_;
  std::unordered_map<uint64_t, size_t> key_index_;  // hashed key -> seq pos
  size_t cursor_ = 0;
  size_t max_buffer_;
  ReleaseFn release_;
  std::deque<Message> buffer_;
  uint64_t divergences_ = 0;
  uint64_t enforced_ = 0;
};

}  // namespace scalecheck

#endif  // SCALECHECK_SRC_PIL_ORDER_LOG_H_
