#include "src/pil/memo_store.h"

#include <cstdio>
#include <cstring>

#include "src/common/check.h"

namespace scalecheck {

void MemoStore::Put(PilFunctionId function, const DigestValue& input,
                    MemoRecord record) {
  Key key{function, input};
  auto it = map_.find(key);
  if (it != map_.end()) {
    if (it->second.output == record.output) {
      ++stats_.duplicate_puts;
    } else {
      ++stats_.determinism_violations;
    }
    return;
  }
  record.sequence = next_sequence_++;
  output_bytes_ += static_cast<int64_t>(record.output.size());
  map_.emplace(key, std::move(record));
  ++stats_.records;
}

const MemoRecord* MemoStore::Lookup(PilFunctionId function, const DigestValue& input) {
  ++stats_.lookups;
  auto it = map_.find(Key{function, input});
  if (it == map_.end()) {
    ++stats_.misses;
    return nullptr;
  }
  ++stats_.hits;
  return &it->second;
}

const MemoRecord* MemoStore::Peek(PilFunctionId function,
                                  const DigestValue& input) const {
  auto it = map_.find(Key{function, input});
  return it == map_.end() ? nullptr : &it->second;
}

namespace {
constexpr uint64_t kMagic = 0x5343504d454d4f31ULL;  // "SCPMEMO1"

template <typename T>
void PutRaw(std::vector<uint8_t>* out, T v) {
  const auto* p = reinterpret_cast<const uint8_t*>(&v);
  out->insert(out->end(), p, p + sizeof(T));
}

template <typename T>
bool GetRaw(const std::vector<uint8_t>& in, size_t* pos, T* v) {
  if (*pos + sizeof(T) > in.size()) {
    return false;
  }
  std::memcpy(v, in.data() + *pos, sizeof(T));
  *pos += sizeof(T);
  return true;
}
}  // namespace

std::vector<uint8_t> MemoStore::Serialize() const {
  std::vector<uint8_t> out;
  // Exact size is knowable up front: header + fixed-width fields per record
  // plus the tracked total of output payload bytes. One reservation avoids
  // the repeated doubling copies a multi-MB store would otherwise pay.
  constexpr size_t kPerRecordFixed = sizeof(uint32_t) + 2 * sizeof(uint64_t) +
                                     2 * sizeof(int64_t) + 2 * sizeof(uint64_t);
  out.reserve(2 * sizeof(uint64_t) + map_.size() * kPerRecordFixed +
              static_cast<size_t>(output_bytes_));
  PutRaw(&out, kMagic);
  PutRaw<uint64_t>(&out, map_.size());
  for (const auto& [key, record] : map_) {
    PutRaw<uint32_t>(&out, key.function);
    PutRaw<uint64_t>(&out, key.input.lo);
    PutRaw<uint64_t>(&out, key.input.hi);
    PutRaw<int64_t>(&out, record.cpu_duration.nanos());
    PutRaw<int64_t>(&out, record.work);
    PutRaw<uint64_t>(&out, record.sequence);
    PutRaw<uint64_t>(&out, record.output.size());
    out.insert(out.end(), record.output.begin(), record.output.end());
  }
  return out;
}

bool MemoStore::Deserialize(const std::vector<uint8_t>& bytes, MemoStore* out) {
  CHECK_NOTNULL(out);
  *out = MemoStore();
  size_t pos = 0;
  uint64_t magic = 0;
  uint64_t count = 0;
  if (!GetRaw(bytes, &pos, &magic) || magic != kMagic || !GetRaw(bytes, &pos, &count)) {
    return false;
  }
  uint64_t max_sequence = 0;
  for (uint64_t i = 0; i < count; ++i) {
    Key key{0, {}};
    MemoRecord record;
    int64_t duration_ns = 0;
    uint64_t output_size = 0;
    if (!GetRaw(bytes, &pos, &key.function) || !GetRaw(bytes, &pos, &key.input.lo) ||
        !GetRaw(bytes, &pos, &key.input.hi) || !GetRaw(bytes, &pos, &duration_ns) ||
        !GetRaw(bytes, &pos, &record.work) || !GetRaw(bytes, &pos, &record.sequence) ||
        !GetRaw(bytes, &pos, &output_size)) {
      return false;
    }
    if (pos + output_size > bytes.size()) {
      return false;
    }
    record.cpu_duration = VirtualDuration::Nanos(duration_ns);
    record.output.assign(bytes.begin() + static_cast<ptrdiff_t>(pos),
                         bytes.begin() + static_cast<ptrdiff_t>(pos + output_size));
    pos += output_size;
    max_sequence = std::max(max_sequence, record.sequence);
    out->output_bytes_ += static_cast<int64_t>(record.output.size());
    out->map_.emplace(key, std::move(record));
  }
  out->stats_.records = out->map_.size();
  out->next_sequence_ = max_sequence + 1;
  return pos == bytes.size();
}

bool MemoStore::SaveToFile(const std::string& path) const {
  std::vector<uint8_t> bytes = Serialize();
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return false;
  }
  size_t written = std::fwrite(bytes.data(), 1, bytes.size(), f);
  std::fclose(f);
  return written == bytes.size();
}

bool MemoStore::LoadFromFile(const std::string& path, MemoStore* out) {
  Result<MemoStore> loaded = Load(path);
  if (!loaded.ok()) {
    return false;
  }
  *out = std::move(loaded).value();
  return true;
}

Status MemoStore::Save(const std::string& path) const {
  std::vector<uint8_t> bytes = Serialize();
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return Status::IoError("cannot open for writing: " + path);
  }
  size_t written = std::fwrite(bytes.data(), 1, bytes.size(), f);
  std::fclose(f);
  if (written != bytes.size()) {
    return Status::IoError("short write to " + path);
  }
  return Status::Ok();
}

Result<MemoStore> MemoStore::Load(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::NotFound("no memo DB at " + path);
  }
  std::fseek(f, 0, SEEK_END);
  long size = std::ftell(f);
  std::fseek(f, 0, SEEK_SET);
  if (size < 0) {
    std::fclose(f);
    return Status::IoError("cannot stat " + path);
  }
  std::vector<uint8_t> bytes(static_cast<size_t>(size));
  size_t read = std::fread(bytes.data(), 1, bytes.size(), f);
  std::fclose(f);
  if (read != bytes.size()) {
    return Status::IoError("short read from " + path);
  }
  MemoStore store;
  if (!Deserialize(bytes, &store)) {
    return Status::CorruptData("unparseable memo DB: " + path);
  }
  return store;
}

}  // namespace scalecheck
