#include "src/pil/memo_store.h"

#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstring>

#include "src/common/check.h"
#include "src/common/strings.h"

namespace scalecheck {

void MemoStore::Put(PilFunctionId function, const DigestValue& input,
                    MemoRecord record) {
  Key key{function, input};
  auto it = map_.find(key);
  if (it != map_.end()) {
    if (it->second.output == record.output) {
      ++stats_.duplicate_puts;
    } else {
      ++stats_.determinism_violations;
    }
    return;
  }
  record.sequence = next_sequence_++;
  output_bytes_ += static_cast<int64_t>(record.output.size());
  map_.emplace(key, std::move(record));
  ++stats_.records;
}

const MemoRecord* MemoStore::Lookup(PilFunctionId function, const DigestValue& input) {
  ++stats_.lookups;
  auto it = map_.find(Key{function, input});
  if (it == map_.end()) {
    ++stats_.misses;
    return nullptr;
  }
  ++stats_.hits;
  return &it->second;
}

const MemoRecord* MemoStore::Peek(PilFunctionId function,
                                  const DigestValue& input) const {
  auto it = map_.find(Key{function, input});
  return it == map_.end() ? nullptr : &it->second;
}

namespace {
constexpr uint64_t kMagicV1 = 0x5343504d454d4f31ULL;  // "SCPMEMO1"
constexpr uint64_t kMagicV2 = 0x5343504d454d4f32ULL;  // "SCPMEMO2"
constexpr uint32_t kVersion = 2;
// magic + version + count + header crc.
constexpr size_t kHeaderSize =
    sizeof(uint64_t) + sizeof(uint32_t) + sizeof(uint64_t) + sizeof(uint32_t);
// Fixed-width prefix of a record payload (everything but the output bytes).
constexpr size_t kPayloadFixed = sizeof(uint32_t) + 2 * sizeof(uint64_t) +
                                 2 * sizeof(int64_t) + 2 * sizeof(uint64_t);

template <typename T>
void PutRaw(std::vector<uint8_t>* out, T v) {
  const auto* p = reinterpret_cast<const uint8_t*>(&v);
  out->insert(out->end(), p, p + sizeof(T));
}

template <typename T>
bool GetRaw(const std::vector<uint8_t>& in, size_t* pos, T* v) {
  if (*pos + sizeof(T) > in.size()) {
    return false;
  }
  std::memcpy(v, in.data() + *pos, sizeof(T));
  *pos += sizeof(T);
  return true;
}
}  // namespace

std::vector<uint8_t> MemoStore::Serialize() const {
  std::vector<uint8_t> out;
  // Exact size is knowable up front: header + fixed-width fields per record
  // (including the length prefix and trailing CRC) plus the tracked total of
  // output payload bytes. One reservation avoids the repeated doubling
  // copies a multi-MB store would otherwise pay.
  out.reserve(kHeaderSize +
              map_.size() * (kPayloadFixed + 2 * sizeof(uint32_t)) +
              static_cast<size_t>(output_bytes_));
  PutRaw(&out, kMagicV2);
  PutRaw<uint32_t>(&out, kVersion);
  PutRaw<uint64_t>(&out, map_.size());
  PutRaw<uint32_t>(&out, Crc32(out.data(), out.size()));
  for (const auto& [key, record] : map_) {
    const size_t payload_len = kPayloadFixed + record.output.size();
    PutRaw<uint32_t>(&out, static_cast<uint32_t>(payload_len));
    const size_t payload_start = out.size();
    PutRaw<uint32_t>(&out, key.function);
    PutRaw<uint64_t>(&out, key.input.lo);
    PutRaw<uint64_t>(&out, key.input.hi);
    PutRaw<int64_t>(&out, record.cpu_duration.nanos());
    PutRaw<int64_t>(&out, record.work);
    PutRaw<uint64_t>(&out, record.sequence);
    PutRaw<uint64_t>(&out, record.output.size());
    out.insert(out.end(), record.output.begin(), record.output.end());
    PutRaw<uint32_t>(&out, Crc32(out.data() + payload_start, payload_len));
  }
  return out;
}

Status MemoStore::Parse(const std::vector<uint8_t>& bytes, MemoStore* out) {
  CHECK_NOTNULL(out);
  *out = MemoStore();
  size_t pos = 0;
  uint64_t magic = 0;
  if (!GetRaw(bytes, &pos, &magic)) {
    return Status::Truncated("memo DB shorter than its magic number");
  }
  if (magic == kMagicV1) {
    return Status::VersionSkew("memo DB is format v1; re-run memoization");
  }
  if (magic != kMagicV2) {
    return Status::CorruptData("memo DB magic number mismatch");
  }
  uint32_t version = 0;
  uint64_t count = 0;
  uint32_t header_crc = 0;
  if (!GetRaw(bytes, &pos, &version)) {
    return Status::Truncated("memo DB header cut short at version");
  }
  if (version != kVersion) {
    return Status::VersionSkew(
        StrFormat("memo DB format v%u, this build reads v%u", version, kVersion));
  }
  if (!GetRaw(bytes, &pos, &count) || !GetRaw(bytes, &pos, &header_crc)) {
    return Status::Truncated("memo DB header cut short");
  }
  if (Crc32(bytes.data(), kHeaderSize - sizeof(uint32_t)) != header_crc) {
    return Status::CorruptData("memo DB header checksum mismatch");
  }
  MemoStore parsed;
  uint64_t max_sequence = 0;
  for (uint64_t i = 0; i < count; ++i) {
    uint32_t payload_len = 0;
    if (!GetRaw(bytes, &pos, &payload_len)) {
      return Status::Truncated(
          StrFormat("memo DB ends before record %llu of %llu",
                    static_cast<unsigned long long>(i),
                    static_cast<unsigned long long>(count)));
    }
    if (payload_len < kPayloadFixed) {
      return Status::CorruptData(
          StrFormat("memo record %llu declares an impossible length %u",
                    static_cast<unsigned long long>(i), payload_len));
    }
    if (pos + payload_len + sizeof(uint32_t) > bytes.size()) {
      return Status::Truncated(
          StrFormat("memo record %llu cut short (needs %u bytes)",
                    static_cast<unsigned long long>(i), payload_len));
    }
    const size_t payload_start = pos;
    Key key{0, {}};
    MemoRecord record;
    int64_t duration_ns = 0;
    uint64_t output_size = 0;
    GetRaw(bytes, &pos, &key.function);
    GetRaw(bytes, &pos, &key.input.lo);
    GetRaw(bytes, &pos, &key.input.hi);
    GetRaw(bytes, &pos, &duration_ns);
    GetRaw(bytes, &pos, &record.work);
    GetRaw(bytes, &pos, &record.sequence);
    GetRaw(bytes, &pos, &output_size);
    if (output_size != payload_len - kPayloadFixed) {
      return Status::CorruptData(
          StrFormat("memo record %llu output size disagrees with its length",
                    static_cast<unsigned long long>(i)));
    }
    uint32_t record_crc = 0;
    std::memcpy(&record_crc, bytes.data() + payload_start + payload_len,
                sizeof(record_crc));
    if (Crc32(bytes.data() + payload_start, payload_len) != record_crc) {
      return Status::CorruptData(
          StrFormat("memo record %llu checksum mismatch",
                    static_cast<unsigned long long>(i)));
    }
    record.cpu_duration = VirtualDuration::Nanos(duration_ns);
    record.output.assign(bytes.begin() + static_cast<ptrdiff_t>(pos),
                         bytes.begin() + static_cast<ptrdiff_t>(pos + output_size));
    pos += output_size + sizeof(uint32_t);
    max_sequence = std::max(max_sequence, record.sequence);
    parsed.output_bytes_ += static_cast<int64_t>(record.output.size());
    parsed.map_.emplace(key, std::move(record));
  }
  if (pos != bytes.size()) {
    return Status::CorruptData("memo DB has trailing bytes past the last record");
  }
  parsed.stats_.records = parsed.map_.size();
  parsed.next_sequence_ = max_sequence + 1;
  *out = std::move(parsed);
  return Status::Ok();
}

bool MemoStore::Deserialize(const std::vector<uint8_t>& bytes, MemoStore* out) {
  return Parse(bytes, out).ok();
}

bool MemoStore::SaveToFile(const std::string& path) const {
  return Save(path).ok();
}

bool MemoStore::LoadFromFile(const std::string& path, MemoStore* out) {
  Result<MemoStore> loaded = Load(path);
  if (!loaded.ok()) {
    return false;
  }
  *out = std::move(loaded).value();
  return true;
}

Status MemoStore::Save(const std::string& path) const {
  // Crash-safe write: serialize to a sibling temp file, flush it all the way
  // to the device, then atomically rename over the destination. A crash at
  // any point leaves either the old DB or the new DB at `path`, never a
  // torn mixture — the property the save-crash test asserts.
  const std::vector<uint8_t> bytes = Serialize();
  const std::string tmp = TempPathFor(path);
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) {
    return Status::IoError("cannot open for writing: " + tmp);
  }
  const size_t written = std::fwrite(bytes.data(), 1, bytes.size(), f);
  bool flushed = std::fflush(f) == 0;
  flushed = flushed && ::fsync(::fileno(f)) == 0;
  const bool closed = std::fclose(f) == 0;
  if (written != bytes.size() || !flushed || !closed) {
    std::remove(tmp.c_str());
    return Status::IoError("short or failed write to " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::IoError("cannot rename " + tmp + " over " + path);
  }
  return Status::Ok();
}

Result<MemoStore> MemoStore::Load(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::NotFound("no memo DB at " + path);
  }
  std::fseek(f, 0, SEEK_END);
  long size = std::ftell(f);
  std::fseek(f, 0, SEEK_SET);
  if (size < 0) {
    std::fclose(f);
    return Status::IoError("cannot stat " + path);
  }
  std::vector<uint8_t> bytes(static_cast<size_t>(size));
  size_t read = std::fread(bytes.data(), 1, bytes.size(), f);
  std::fclose(f);
  if (read != bytes.size()) {
    return Status::IoError("short read from " + path);
  }
  MemoStore store;
  Status parsed = Parse(bytes, &store);
  if (!parsed.ok()) {
    return Status(parsed.code(), path + ": " + parsed.message());
  }
  return store;
}

}  // namespace scalecheck
