#include "src/pil/boundary.h"

#include <utility>

#include "src/common/check.h"

namespace scalecheck {

const char* ReplayPolicyName(ReplayPolicy policy) {
  switch (policy) {
    case ReplayPolicy::kFallbackToModelled:
      return "fallback";
    case ReplayPolicy::kWarn:
      return "warn";
    case ReplayPolicy::kStrict:
      return "strict";
  }
  return "?";
}

const char* PilModeName(PilMode mode) {
  switch (mode) {
    case PilMode::kDirect:
      return "direct";
    case PilMode::kMemoize:
      return "memoize";
    case PilMode::kReplay:
      return "replay";
  }
  return "?";
}

PilBoundary::PilBoundary(Simulator* sim, PilMode mode, MemoStore* store,
                         double core_speed)
    : sim_(sim), mode_(mode), store_(store), core_speed_(core_speed) {
  CHECK_NOTNULL(sim);
  CHECK_GT(core_speed, 0.0);
  if (mode != PilMode::kDirect) {
    CHECK_NOTNULL(store) << "memoize/replay modes need a MemoStore";
  }
}

void PilBoundary::Apply(
    Job* job, PilFunctionId function, std::function<DigestValue()> digest_fn,
    std::function<ComputeOutput()> compute_fn,
    std::function<void(const std::vector<uint8_t>&, bool)> apply_fn) {
  CHECK_NOTNULL(job);

  // Mutable state threaded through the steps of one invocation.
  struct Capture {
    DigestValue digest;
    ComputeOutput computed;
    const MemoRecord* record = nullptr;
  };
  auto cap = std::make_shared<Capture>();

  switch (mode_) {
    case PilMode::kDirect:
      job->Run([this, cap, compute_fn = std::move(compute_fn)] {
            cap->computed = compute_fn();
            ++stats_.direct_runs;
          })
          .Compute([cap] { return cap->computed.work; })
          .Run([cap, apply_fn = std::move(apply_fn)] {
            apply_fn(cap->computed.output, /*from_memo=*/false);
          });
      break;

    case PilMode::kMemoize:
      job->Run([this, cap, digest_fn = std::move(digest_fn),
                compute_fn = std::move(compute_fn)] {
            cap->digest = digest_fn();
            cap->computed = compute_fn();
            ++stats_.memoized_runs;
          })
          .Compute([cap] { return cap->computed.work; })
          .Run([this, cap, function, apply_fn = std::move(apply_fn)] {
            MemoRecord record;
            record.output = cap->computed.output;
            record.work = cap->computed.work;
            // In-situ time recording: the function's own CPU time, not the
            // contended wall time of the memoization run.
            record.cpu_duration = WorkToDuration(cap->computed.work);
            store_->Put(function, cap->digest, std::move(record));
            apply_fn(cap->computed.output, /*from_memo=*/false);
          });
      break;

    case PilMode::kReplay:
      job->Async([this, cap, function, digest_fn = std::move(digest_fn),
                  compute_fn = std::move(compute_fn)](std::function<void()> done) {
            cap->digest = digest_fn();
            cap->record = store_->Lookup(function, cap->digest);
            VirtualDuration sleep_for;
            if (cap->record != nullptr) {
              ++stats_.replay_hits;
              sleep_for = cap->record->cpu_duration;
            } else {
              // Divergence fallback: compute the output now (so the replay
              // can proceed correctly) but sleep for the modelled duration
              // instead of charging CPU — the illusion survives a miss. The
              // computed record extends the memo DB, so iterative replays
              // (the paper's debug-replay-debug loop) converge to full hits.
              // Under the strict policy the drift recorder also stops the
              // simulation; the current event still completes normally.
              ++stats_.replay_misses;
              RecordDivergence(function, cap->digest);
              cap->computed = compute_fn();
              sleep_for = WorkToDuration(cap->computed.work);
              MemoRecord record;
              record.output = cap->computed.output;
              record.work = cap->computed.work;
              record.cpu_duration = sleep_for;
              store_->Put(function, cap->digest, std::move(record));
            }
            sim_->ScheduleAfter(sleep_for, std::move(done));
          })
          .Run([cap, apply_fn = std::move(apply_fn)] {
            if (cap->record != nullptr) {
              apply_fn(cap->record->output, /*from_memo=*/true);
            } else {
              apply_fn(cap->computed.output, /*from_memo=*/false);
            }
          });
      break;
  }
}

void PilBoundary::RecordDivergence(PilFunctionId function,
                                   const DigestValue& digest) {
  ++drift_.misses;
  if (drift_.diverged) {
    return;
  }
  drift_.diverged = true;
  drift_.first_function = function;
  drift_.first_digest = digest;
  drift_.first_at = sim_->Now();
  // The diverging call itself has already been counted as a miss.
  drift_.first_call_index = stats_.replay_hits + stats_.replay_misses - 1;
  if (order_context_fn_) {
    drift_.order_context = order_context_fn_();
  }
  if (replay_policy_ == ReplayPolicy::kStrict) {
    drift_.aborted = true;
    sim_->RequestStop();
  }
}

}  // namespace scalecheck
