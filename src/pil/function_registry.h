// Registry of functions that can cross the PIL boundary, with their
// PIL-safety metadata.
//
// §5: "a PIL-safe function must have a memoizable output (a deterministic
// output on a given input) and not have any side effects such as disk I/Os,
// network messages, and blocking mechanisms such as locks." Each registered
// function declares its observed effects; IsPilSafe() applies the paper's
// rule. The sfind module combines this with its complexity fits to decide
// which functions are both *safe* and *offending* — only those take the PIL.

#ifndef SCALECHECK_SRC_PIL_FUNCTION_REGISTRY_H_
#define SCALECHECK_SRC_PIL_FUNCTION_REGISTRY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/types.h"

namespace scalecheck {

using PilFunctionId = uint32_t;
inline constexpr PilFunctionId kInvalidPilFunction = 0;

// Side effects a function may perform; any of these breaks PIL safety
// (acquiring a lock *around* the call is fine — the boundary preserves it —
// but taking locks, doing I/O or messaging *inside* the replaced region is
// not, since a sleep would not reproduce them).
struct SideEffects {
  bool disk_io = false;
  bool network_messages = false;
  bool acquires_locks = false;
  bool nondeterministic = false;  // reads clocks/RNG -> output not memoizable

  bool Any() const {
    return disk_io || network_messages || acquires_locks || nondeterministic;
  }
};

struct PilFunctionInfo {
  PilFunctionId id = kInvalidPilFunction;
  std::string name;
  std::string complexity;  // human-readable, for reports
  SideEffects effects;
  // Set by the @scaledep annotation flow (Figure 2-a): the function iterates
  // scale-dependent data structures.
  bool scale_dependent = false;

  // The paper's PIL-safety rule.
  bool IsPilSafe() const { return !effects.Any(); }
};

class FunctionRegistry {
 public:
  // Registers a function; names must be unique. Returns its id.
  PilFunctionId Register(const std::string& name, const std::string& complexity,
                         SideEffects effects, bool scale_dependent);

  const PilFunctionInfo* Find(PilFunctionId id) const;
  const PilFunctionInfo* FindByName(const std::string& name) const;
  const std::vector<PilFunctionInfo>& functions() const { return functions_; }

 private:
  std::vector<PilFunctionInfo> functions_;  // index = id - 1
};

}  // namespace scalecheck

#endif  // SCALECHECK_SRC_PIL_FUNCTION_REGISTRY_H_
