#include "src/pil/order_log.h"

#include <utility>

#include "src/common/check.h"
#include "src/common/hash.h"

namespace scalecheck {

namespace {
uint64_t HashKey(const MessageKey& key) {
  uint64_t h = HashCombine(static_cast<uint64_t>(static_cast<uint32_t>(key.from)),
                           static_cast<uint64_t>(key.type));
  return HashCombine(h, key.pair_seq);
}
}  // namespace

void OrderLog::Append(NodeId node, const MessageKey& key) {
  by_node_[node].push_back(key);
}

const std::vector<MessageKey>& OrderLog::SequenceOf(NodeId node) const {
  static const std::vector<MessageKey> kEmpty;
  auto it = by_node_.find(node);
  return it == by_node_.end() ? kEmpty : it->second;
}

size_t OrderLog::TotalEntries() const {
  size_t total = 0;
  for (const auto& [node, seq] : by_node_) {
    total += seq.size();
  }
  return total;
}

OrderEnforcer::OrderEnforcer(std::vector<MessageKey> log_sequence, size_t max_buffer,
                             ReleaseFn release)
    : sequence_(std::move(log_sequence)),
      max_buffer_(max_buffer),
      release_(std::move(release)) {
  CHECK(release_ != nullptr);
  CHECK_GT(max_buffer_, 0u);
  for (size_t i = 0; i < sequence_.size(); ++i) {
    // Keys are unique per node: (from, type, pair_seq) never repeats. Keep
    // the first position if a duplicate somehow appears.
    key_index_.emplace(HashKey(sequence_[i]), i);
  }
}

bool OrderEnforcer::InLog(const MessageKey& key) const {
  return key_index_.find(HashKey(key)) != key_index_.end();
}

void OrderEnforcer::Submit(const Message& msg) {
  MessageKey key = MessageKey::Of(msg);
  auto it = key_index_.find(HashKey(key));
  if (it == key_index_.end()) {
    // Never seen in the memoization run: no ordering constraint.
    release_(msg);
    return;
  }
  size_t pos = it->second;
  if (pos < cursor_) {
    // The log already moved past this message (it was force-skipped).
    ++divergences_;
    release_(msg);
    return;
  }
  if (pos == cursor_) {
    ++enforced_;
    ++cursor_;
    release_(msg);
    Drain();
    return;
  }
  // Arrived early: hold it back, like the paper's deterministic replayer.
  buffer_.push_back(msg);
  if (buffer_.size() > max_buffer_) {
    // The expected message is not coming (replay divergence); force the
    // oldest buffered message through and move the cursor past it.
    Message oldest = std::move(buffer_.front());
    buffer_.pop_front();
    ++divergences_;
    auto oldest_it = key_index_.find(HashKey(MessageKey::Of(oldest)));
    if (oldest_it != key_index_.end() && oldest_it->second >= cursor_) {
      cursor_ = oldest_it->second + 1;
    }
    release_(oldest);
    Drain();
  }
}

void OrderEnforcer::Drain() {
  bool progressed = true;
  while (progressed) {
    progressed = false;
    for (auto it = buffer_.begin(); it != buffer_.end(); ++it) {
      auto idx = key_index_.find(HashKey(MessageKey::Of(*it)));
      CHECK(idx != key_index_.end());
      if (idx->second == cursor_) {
        Message msg = std::move(*it);
        buffer_.erase(it);
        ++enforced_;
        ++cursor_;
        release_(msg);
        progressed = true;
        break;  // iterators invalidated; rescan
      }
      if (idx->second < cursor_) {
        // The cursor was forced past this message (overflow skip); it can
        // never match again — release it out of order rather than leak it.
        Message msg = std::move(*it);
        buffer_.erase(it);
        ++divergences_;
        release_(msg);
        progressed = true;
        break;
      }
    }
  }
}

void OrderEnforcer::Flush() {
  while (!buffer_.empty()) {
    Message msg = std::move(buffer_.front());
    buffer_.pop_front();
    ++divergences_;
    release_(msg);
  }
}

}  // namespace scalecheck
