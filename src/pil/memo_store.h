// The PIL memoization database (Figure 2-c/d).
//
// During the one-time memoization run, every PIL-replaced invocation records
// (function, input digest) -> (output bytes, uncontended CPU duration,
// recording sequence). The duration stored is the *dedicated-core* time (work
// / core speed), i.e. the function's own CPU time — contention delays from
// the colocated memoization run must not leak into replays, which is exactly
// why the paper records in-situ per-function time rather than wall time.
//
// The store is content-addressed: replay looks up by input digest. The paper
// caps the state space by recording only the pairs observed in one run under
// order determinism; Lookup misses are possible if a replay diverges, and are
// surfaced as an accuracy metric rather than hidden.

#ifndef SCALECHECK_SRC_PIL_MEMO_STORE_H_
#define SCALECHECK_SRC_PIL_MEMO_STORE_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/common/hash.h"
#include "src/common/result.h"
#include "src/common/types.h"
#include "src/pil/function_registry.h"

namespace scalecheck {

struct MemoRecord {
  std::vector<uint8_t> output;
  VirtualDuration cpu_duration;  // dedicated-core execution time
  WorkUnits work = 0;
  uint64_t sequence = 0;  // global recording order
};

class MemoStore {
 public:
  struct Stats {
    uint64_t records = 0;
    uint64_t duplicate_puts = 0;       // same key re-recorded (same output)
    uint64_t determinism_violations = 0;  // same key, DIFFERENT output
    uint64_t lookups = 0;
    uint64_t hits = 0;
    uint64_t misses = 0;
  };

  // Records an invocation. Keeps the first record for a key; duplicate puts
  // with identical output are counted, differing output flags a determinism
  // violation (the function was not PIL-safe after all).
  void Put(PilFunctionId function, const DigestValue& input, MemoRecord record);

  // Returns nullptr on miss. Updates lookup statistics.
  const MemoRecord* Lookup(PilFunctionId function, const DigestValue& input);

  // Read-only probe (no stats update).
  const MemoRecord* Peek(PilFunctionId function, const DigestValue& input) const;

  size_t size() const { return map_.size(); }
  const Stats& stats() const { return stats_; }
  double HitRate() const {
    return stats_.lookups == 0
               ? 0.0
               : static_cast<double>(stats_.hits) / static_cast<double>(stats_.lookups);
  }

  // Binary serialization (format v2), so a memoization run can be persisted
  // and replayed many times (the paper's "replay numerous times" workflow).
  //
  // v2 layout — every field integrity-checked so a damaged DB can never load
  // as a silently-wrong store:
  //   u64 magic "SCPMEMO2" | u32 version=2 | u64 count | u32 crc32(header)
  //   per record: u32 payload_len | payload | u32 crc32(payload)
  //   payload: u32 function | u64 digest.lo | u64 digest.hi |
  //            i64 duration_ns | i64 work | u64 sequence |
  //            u64 output_size | output bytes
  std::vector<uint8_t> Serialize() const;

  // Structured parse. Distinguishes the three damage classes:
  //   kTruncated   — bytes are a proper prefix of a valid stream (the
  //                  signature of a crash mid-write or a torn copy),
  //   kCorruptData — checksum/structure mismatch (bit rot, bad magic),
  //   kVersionSkew — well-formed header from another format version (v1
  //                  stores must be re-memoized, not guessed at).
  // On error `out` is left empty, never partially filled.
  static Status Parse(const std::vector<uint8_t>& bytes, MemoStore* out);
  static bool Deserialize(const std::vector<uint8_t>& bytes, MemoStore* out);
  bool SaveToFile(const std::string& path) const;
  static bool LoadFromFile(const std::string& path, MemoStore* out);

  // Total bytes of memoized outputs (memoization-DB footprint reporting).
  int64_t output_bytes() const { return output_bytes_; }

  // Status-reporting persistence (the bool APIs above remain for callers that
  // only branch). Save is crash-safe: bytes are written to TempPathFor(path)
  // and atomically renamed over the destination, so an interrupted Save
  // leaves the previous DB intact.
  Status Save(const std::string& path) const;
  static Result<MemoStore> Load(const std::string& path);
  static std::string TempPathFor(const std::string& path) { return path + ".tmp"; }

 private:
  struct Key {
    PilFunctionId function;
    DigestValue input;
    bool operator==(const Key&) const = default;
  };
  struct KeyHash {
    size_t operator()(const Key& k) const {
      return DigestValueHash()(k.input) ^ (static_cast<size_t>(k.function) * 0x9e3779b9);
    }
  };

  std::unordered_map<Key, MemoRecord, KeyHash> map_;
  Stats stats_;
  uint64_t next_sequence_ = 1;
  int64_t output_bytes_ = 0;
};

}  // namespace scalecheck

#endif  // SCALECHECK_SRC_PIL_MEMO_STORE_H_
