#include "src/faults/fault_injector.h"

#include <utility>

#include "src/common/check.h"

namespace scalecheck {

FaultInjector::FaultInjector(FaultPlan plan, Hooks hooks)
    : plan_(std::move(plan)), hooks_(std::move(hooks)) {
  CHECK_NOTNULL(hooks_.clock);
  bool links = false, crashes = false, machines = false;
  for (const FaultEvent& event : plan_.events) {
    switch (event.kind) {
      case FaultKind::kPartition:
      case FaultKind::kLinkDegrade:
        links = true;
        break;
      case FaultKind::kCrash:
        crashes = true;
        break;
      case FaultKind::kSlowNode:
      case FaultKind::kMemoryPressure:
        machines = true;
        break;
    }
  }
  if (links) {
    CHECK_NOTNULL(hooks_.links);
  }
  if (crashes) {
    CHECK(hooks_.crash_node);
    CHECK(hooks_.restart_node);
    CHECK(hooks_.node_crashed);
  }
  if (machines) {
    CHECK(hooks_.machine_of);
  }
}

void FaultInjector::Arm() {
  bool has_link_faults = false;
  for (size_t i = 0; i < plan_.events.size(); ++i) {
    const FaultEvent& event = plan_.events[i];
    if (event.kind == FaultKind::kPartition ||
        event.kind == FaultKind::kLinkDegrade) {
      has_link_faults = true;
    }
    hooks_.clock->ScheduleAfter(event.at, [this, i] { Apply(i); });
    if (!event.duration.IsZero()) {
      hooks_.clock->ScheduleAfter(event.at + event.duration,
                                  [this, i] { Heal(i); });
    }
  }
  if (has_link_faults) {
    hooks_.links->SetLinkFilter(
        [this](NodeId from, NodeId to) { return Filter(from, to); });
  }
}

void FaultInjector::Apply(size_t index) {
  const FaultEvent& event = plan_.events[index];
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.events_applied;
  }
  Trace(TraceKind::kFaultInjected, event);
  switch (event.kind) {
    case FaultKind::kPartition:
    case FaultKind::kLinkDegrade: {
      LinkRule rule;
      rule.blocked = event.kind == FaultKind::kPartition;
      rule.extra_loss = event.extra_loss;
      rule.extra_latency = event.extra_latency;
      rule.a.insert(event.nodes_a.begin(), event.nodes_a.end());
      rule.b.insert(event.nodes_b.begin(), event.nodes_b.end());
      {
        std::lock_guard<std::mutex> lock(mu_);
        active_links_[index] = std::move(rule);
      }
      if (event.kind == FaultKind::kPartition) {
        // Established connections must die with the partition — a live TCP
        // stream would otherwise buffer frames straight through it. Severing
        // everything touching the partitioned side is coarser than the rule
        // (allowed pairs redial on their next send) but always safe; a no-op
        // on the connection-free sim carrier.
        for (NodeId victim : event.nodes_a) {
          hooks_.links->SeverConnsTo(victim);
        }
      }
      break;
    }
    case FaultKind::kCrash:
      for (NodeId victim : event.nodes_a) {
        if (!hooks_.node_crashed(victim)) {
          hooks_.crash_node(victim);
        }
      }
      break;
    case FaultKind::kSlowNode:
      for (NodeId victim : event.nodes_a) {
        hooks_.machine_of(victim)->cpu().SetSpeedFactor(event.cpu_factor);
      }
      break;
    case FaultKind::kMemoryPressure:
      for (NodeId victim : event.nodes_a) {
        // May cross the capacity line and fire the OOM -> crash path.
        hooks_.machine_of(victim)->memory().Allocate(victim, "fault.ballast",
                                                     event.ballast_bytes);
      }
      break;
  }
}

void FaultInjector::Heal(size_t index) {
  const FaultEvent& event = plan_.events[index];
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.events_healed;
  }
  Trace(TraceKind::kFaultHealed, event);
  switch (event.kind) {
    case FaultKind::kPartition:
    case FaultKind::kLinkDegrade: {
      std::lock_guard<std::mutex> lock(mu_);
      active_links_.erase(index);
      break;
    }
    case FaultKind::kCrash:
      // Heal of a crash = restart (only nodes still dead; an OOM may have
      // raced and the node could be gone for a different reason — restart
      // regardless, a dead node is a dead node).
      for (NodeId victim : event.nodes_a) {
        if (hooks_.node_crashed(victim)) {
          hooks_.restart_node(victim);
        }
      }
      break;
    case FaultKind::kSlowNode:
      for (NodeId victim : event.nodes_a) {
        hooks_.machine_of(victim)->cpu().SetSpeedFactor(1.0);
      }
      break;
    case FaultKind::kMemoryPressure:
      for (NodeId victim : event.nodes_a) {
        // Idempotent: the ballast may already be gone via a crash's
        // ReleaseAll.
        hooks_.machine_of(victim)->memory().ReleaseTag(victim, "fault.ballast");
      }
      break;
  }
}

LinkFault FaultInjector::Filter(NodeId from, NodeId to) const {
  LinkFault fault;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [index, rule] : active_links_) {
    auto in_a = [&rule](NodeId v) { return rule.a.count(v) > 0; };
    auto in_b = [&rule](NodeId v) {
      return rule.b.empty() ? rule.a.count(v) == 0 : rule.b.count(v) > 0;
    };
    bool matches = (in_a(from) && in_b(to)) || (in_a(to) && in_b(from));
    if (!matches) {
      continue;
    }
    fault.blocked = fault.blocked || rule.blocked;
    fault.extra_loss += rule.extra_loss;
    fault.extra_latency = fault.extra_latency + rule.extra_latency;
  }
  return fault;
}

void FaultInjector::Trace(TraceKind kind, const FaultEvent& event) {
  if (hooks_.trace == nullptr) {
    return;
  }
  NodeId first = event.nodes_a.empty() ? kInvalidNode : event.nodes_a.front();
  hooks_.trace->Record(hooks_.clock->Now(), kind, first, kInvalidNode,
                       static_cast<int64_t>(event.kind),
                       FaultKindName(event.kind));
}

}  // namespace scalecheck
