#include "src/faults/fault_plan.h"

#include <algorithm>

#include "src/common/check.h"
#include "src/common/hash.h"
#include "src/common/rng.h"
#include "src/common/strings.h"

namespace scalecheck {

const char* FaultKindName(FaultKind kind) {
  switch (kind) {
    case FaultKind::kPartition:
      return "partition";
    case FaultKind::kLinkDegrade:
      return "link-degrade";
    case FaultKind::kCrash:
      return "crash";
    case FaultKind::kSlowNode:
      return "slow-node";
    case FaultKind::kMemoryPressure:
      return "memory-pressure";
  }
  return "?";
}

std::string FaultEvent::Describe() const {
  return StrFormat("%s at=%s dur=%s |a|=%zu |b|=%zu", FaultKindName(kind),
                   at.ToString().c_str(), duration.ToString().c_str(),
                   nodes_a.size(), nodes_b.size());
}

VirtualDuration FaultPlan::End() const {
  VirtualDuration end;
  for (const FaultEvent& event : events) {
    end = std::max(end, event.at + event.duration);
  }
  return end;
}

std::string FaultPlan::Describe() const {
  std::string out = StrFormat("%s (%zu events, end=%s)", name.c_str(),
                              events.size(), End().ToString().c_str());
  for (const FaultEvent& event : events) {
    out += "\n  " + event.Describe();
  }
  return out;
}

namespace {

std::vector<NodeId> Range(NodeId lo, NodeId hi) {
  std::vector<NodeId> out;
  for (NodeId id = lo; id < hi; ++id) {
    out.push_back(id);
  }
  return out;
}

// Victims must not be contact points (0..2) or the workload's membership
// target (n/2 by BugCatalog convention) — faults against those would change
// the workload itself, not just stress it.
NodeId PickVictim(NodeId preferred, int n) {
  CHECK_GE(n, 5) << "fault plans need at least 5 nodes";
  NodeId v = preferred % n;
  while (v < 3 || v == n / 2) {
    v = (v + 1) % n;
  }
  return v;
}

// Sub-second deterministic jitter so event times do not align with the
// 1-second gossip cadence.
VirtualDuration Jittered(int64_t seconds, Rng* rng) {
  return VirtualDuration::Seconds(seconds) +
         VirtualDuration::Nanos(static_cast<int64_t>(rng->UniformDouble() * 1e9));
}

FaultEvent PartitionEvent(int n, Rng* rng) {
  FaultEvent ev;
  ev.kind = FaultKind::kPartition;
  ev.at = Jittered(60, rng);
  ev.duration = VirtualDuration::Seconds(20);
  // Island: the top n/8 of the id space (empty nodes_b = everyone else).
  ev.nodes_a = Range(n - std::max(1, n / 8), n);
  return ev;
}

FaultEvent DegradeEvent(int n, Rng* rng) {
  FaultEvent ev;
  ev.kind = FaultKind::kLinkDegrade;
  ev.at = Jittered(110, rng);
  ev.duration = VirtualDuration::Seconds(20);
  ev.nodes_a = Range(0, n / 2);
  ev.extra_loss = 0.05;
  ev.extra_latency = VirtualDuration::Millis(30);
  return ev;
}

FaultEvent CrashEvent(int n, Rng* rng) {
  FaultEvent ev;
  ev.kind = FaultKind::kCrash;
  ev.at = Jittered(140, rng);
  ev.duration = VirtualDuration::Seconds(25);  // restart after 25s
  ev.nodes_a = {PickVictim(n / 3, n)};
  return ev;
}

FaultEvent SlowEvent(int n, Rng* rng) {
  FaultEvent ev;
  ev.kind = FaultKind::kSlowNode;
  ev.at = Jittered(150, rng);
  ev.duration = VirtualDuration::Seconds(30);
  ev.nodes_a = {PickVictim(2 * n / 3, n)};
  ev.cpu_factor = 0.35;
  return ev;
}

FaultEvent BallastEvent(int n, Rng* rng) {
  FaultEvent ev;
  ev.kind = FaultKind::kMemoryPressure;
  ev.at = Jittered(170, rng);
  ev.duration = VirtualDuration::Seconds(20);
  ev.nodes_a = {PickVictim(n / 4, n)};
  ev.ballast_bytes = 6LL * 1024 * 1024 * 1024;
  return ev;
}

Rng PlanRng(uint64_t seed) { return Rng(HashCombine(seed, 0xfa177eedULL)); }

}  // namespace

FaultPlan FaultPlan::StandardChaos(int n, uint64_t seed) {
  Rng rng = PlanRng(seed);
  FaultPlan plan;
  plan.name = "standard-chaos";
  plan.events.push_back(PartitionEvent(n, &rng));
  plan.events.push_back(DegradeEvent(n, &rng));
  plan.events.push_back(CrashEvent(n, &rng));
  plan.events.push_back(SlowEvent(n, &rng));
  plan.events.push_back(BallastEvent(n, &rng));
  return plan;
}

FaultPlan FaultPlan::PartitionOnly(int n, uint64_t seed) {
  Rng rng = PlanRng(seed);
  FaultPlan plan;
  plan.name = "partition";
  plan.events.push_back(PartitionEvent(n, &rng));
  return plan;
}

FaultPlan FaultPlan::CrashRestartOnly(int n, uint64_t seed) {
  Rng rng = PlanRng(seed);
  FaultPlan plan;
  plan.name = "crash-restart";
  FaultEvent ev = CrashEvent(n, &rng);
  ev.at = Jittered(60, &rng);
  plan.events.push_back(ev);
  return plan;
}

FaultPlan FaultPlan::SlowNodeOnly(int n, uint64_t seed) {
  Rng rng = PlanRng(seed);
  FaultPlan plan;
  plan.name = "slow-node";
  FaultEvent ev = SlowEvent(n, &rng);
  ev.at = Jittered(60, &rng);
  plan.events.push_back(ev);
  return plan;
}

FaultPlan FaultPlan::MemoryPressureOnly(int n, uint64_t seed) {
  Rng rng = PlanRng(seed);
  FaultPlan plan;
  plan.name = "memory-pressure";
  FaultEvent ev = BallastEvent(n, &rng);
  ev.at = Jittered(60, &rng);
  plan.events.push_back(ev);
  return plan;
}

FaultPlan FaultPlan::ByName(const std::string& name, int n, uint64_t seed) {
  if (name.empty() || name == "none") {
    return FaultPlan{};
  }
  if (name == "standard-chaos") {
    return StandardChaos(n, seed);
  }
  if (name == "partition") {
    return PartitionOnly(n, seed);
  }
  if (name == "crash-restart") {
    return CrashRestartOnly(n, seed);
  }
  if (name == "slow-node") {
    return SlowNodeOnly(n, seed);
  }
  if (name == "memory-pressure") {
    return MemoryPressureOnly(n, seed);
  }
  CHECK(false) << "unknown fault plan " << name;
  return FaultPlan{};
}

bool FaultPlan::IsKnown(const std::string& name) {
  return name.empty() || name == "none" || name == "standard-chaos" ||
         name == "partition" || name == "crash-restart" || name == "slow-node" ||
         name == "memory-pressure";
}

}  // namespace scalecheck
