#include "src/faults/fault_plan.h"

#include <algorithm>

#include "src/common/check.h"
#include "src/common/hash.h"
#include "src/common/json.h"
#include "src/common/rng.h"
#include "src/common/strings.h"

namespace scalecheck {

const char* FaultKindName(FaultKind kind) {
  switch (kind) {
    case FaultKind::kPartition:
      return "partition";
    case FaultKind::kLinkDegrade:
      return "link-degrade";
    case FaultKind::kCrash:
      return "crash";
    case FaultKind::kSlowNode:
      return "slow-node";
    case FaultKind::kMemoryPressure:
      return "memory-pressure";
  }
  return "?";
}

Result<FaultKind> FaultKindFromName(const std::string& name) {
  for (FaultKind kind :
       {FaultKind::kPartition, FaultKind::kLinkDegrade, FaultKind::kCrash,
        FaultKind::kSlowNode, FaultKind::kMemoryPressure}) {
    if (name == FaultKindName(kind)) return kind;
  }
  return Status::InvalidArgument("unknown FaultKind \"" + name + "\"");
}

std::string FaultEvent::Describe() const {
  return StrFormat("%s at=%s dur=%s |a|=%zu |b|=%zu", FaultKindName(kind),
                   at.ToString().c_str(), duration.ToString().c_str(),
                   nodes_a.size(), nodes_b.size());
}

VirtualDuration FaultPlan::End() const {
  VirtualDuration end;
  for (const FaultEvent& event : events) {
    end = std::max(end, event.at + event.duration);
  }
  return end;
}

std::string FaultPlan::Describe() const {
  std::string out = StrFormat("%s (%zu events, end=%s)", name.c_str(),
                              events.size(), End().ToString().c_str());
  for (const FaultEvent& event : events) {
    out += "\n  " + event.Describe();
  }
  return out;
}

namespace {

std::vector<NodeId> Range(NodeId lo, NodeId hi) {
  std::vector<NodeId> out;
  for (NodeId id = lo; id < hi; ++id) {
    out.push_back(id);
  }
  return out;
}

// Victims must not be contact points (0..2) or the workload's membership
// target (n/2 by BugCatalog convention) — faults against those would change
// the workload itself, not just stress it.
NodeId PickVictim(NodeId preferred, int n) {
  CHECK_GE(n, 5) << "fault plans need at least 5 nodes";
  NodeId v = preferred % n;
  while (v < 3 || v == n / 2) {
    v = (v + 1) % n;
  }
  return v;
}

// Sub-second deterministic jitter so event times do not align with the
// 1-second gossip cadence.
VirtualDuration Jittered(int64_t seconds, Rng* rng) {
  return VirtualDuration::Seconds(seconds) +
         VirtualDuration::Nanos(static_cast<int64_t>(rng->UniformDouble() * 1e9));
}

FaultEvent PartitionEvent(int n, Rng* rng) {
  FaultEvent ev;
  ev.kind = FaultKind::kPartition;
  ev.at = Jittered(60, rng);
  ev.duration = VirtualDuration::Seconds(20);
  // Island: the top n/8 of the id space (empty nodes_b = everyone else).
  ev.nodes_a = Range(n - std::max(1, n / 8), n);
  return ev;
}

FaultEvent DegradeEvent(int n, Rng* rng) {
  FaultEvent ev;
  ev.kind = FaultKind::kLinkDegrade;
  ev.at = Jittered(110, rng);
  ev.duration = VirtualDuration::Seconds(20);
  ev.nodes_a = Range(0, n / 2);
  ev.extra_loss = 0.05;
  ev.extra_latency = VirtualDuration::Millis(30);
  return ev;
}

FaultEvent CrashEvent(int n, Rng* rng) {
  FaultEvent ev;
  ev.kind = FaultKind::kCrash;
  ev.at = Jittered(140, rng);
  ev.duration = VirtualDuration::Seconds(25);  // restart after 25s
  ev.nodes_a = {PickVictim(n / 3, n)};
  return ev;
}

FaultEvent SlowEvent(int n, Rng* rng) {
  FaultEvent ev;
  ev.kind = FaultKind::kSlowNode;
  ev.at = Jittered(150, rng);
  ev.duration = VirtualDuration::Seconds(30);
  ev.nodes_a = {PickVictim(2 * n / 3, n)};
  ev.cpu_factor = 0.35;
  return ev;
}

FaultEvent BallastEvent(int n, Rng* rng) {
  FaultEvent ev;
  ev.kind = FaultKind::kMemoryPressure;
  ev.at = Jittered(170, rng);
  ev.duration = VirtualDuration::Seconds(20);
  ev.nodes_a = {PickVictim(n / 4, n)};
  ev.ballast_bytes = 6LL * 1024 * 1024 * 1024;
  return ev;
}

Rng PlanRng(uint64_t seed) { return Rng(HashCombine(seed, 0xfa177eedULL)); }

}  // namespace

FaultPlan FaultPlan::StandardChaos(int n, uint64_t seed) {
  Rng rng = PlanRng(seed);
  FaultPlan plan;
  plan.name = "standard-chaos";
  plan.events.push_back(PartitionEvent(n, &rng));
  plan.events.push_back(DegradeEvent(n, &rng));
  plan.events.push_back(CrashEvent(n, &rng));
  plan.events.push_back(SlowEvent(n, &rng));
  plan.events.push_back(BallastEvent(n, &rng));
  return plan;
}

FaultPlan FaultPlan::PartitionOnly(int n, uint64_t seed) {
  Rng rng = PlanRng(seed);
  FaultPlan plan;
  plan.name = "partition";
  plan.events.push_back(PartitionEvent(n, &rng));
  return plan;
}

FaultPlan FaultPlan::CrashRestartOnly(int n, uint64_t seed) {
  Rng rng = PlanRng(seed);
  FaultPlan plan;
  plan.name = "crash-restart";
  FaultEvent ev = CrashEvent(n, &rng);
  ev.at = Jittered(60, &rng);
  plan.events.push_back(ev);
  return plan;
}

FaultPlan FaultPlan::SlowNodeOnly(int n, uint64_t seed) {
  Rng rng = PlanRng(seed);
  FaultPlan plan;
  plan.name = "slow-node";
  FaultEvent ev = SlowEvent(n, &rng);
  ev.at = Jittered(60, &rng);
  plan.events.push_back(ev);
  return plan;
}

FaultPlan FaultPlan::MemoryPressureOnly(int n, uint64_t seed) {
  Rng rng = PlanRng(seed);
  FaultPlan plan;
  plan.name = "memory-pressure";
  FaultEvent ev = BallastEvent(n, &rng);
  ev.at = Jittered(60, &rng);
  plan.events.push_back(ev);
  return plan;
}

FaultPlan FaultPlan::IslandPartition(int n, uint64_t seed) {
  CHECK_GE(n, 2) << "island plan needs at least 2 nodes";
  Rng rng = PlanRng(seed);
  FaultPlan plan;
  plan.name = "island";
  FaultEvent ev;
  ev.kind = FaultKind::kPartition;
  // Early injection (the cluster is primed settled) and a 32-round window:
  // the shape ChaosSearch minimized to — long enough that both sides fully
  // convict each other before the heal.
  ev.at = Jittered(8, &rng);
  ev.duration = VirtualDuration::Seconds(32);
  ev.nodes_a = {n - 1};  // empty nodes_b = everyone else
  plan.events.push_back(ev);
  return plan;
}

FaultPlan FaultPlan::ByName(const std::string& name, int n, uint64_t seed) {
  if (name.empty() || name == "none") {
    return FaultPlan{};
  }
  if (name == "standard-chaos") {
    return StandardChaos(n, seed);
  }
  if (name == "partition") {
    return PartitionOnly(n, seed);
  }
  if (name == "crash-restart") {
    return CrashRestartOnly(n, seed);
  }
  if (name == "slow-node") {
    return SlowNodeOnly(n, seed);
  }
  if (name == "memory-pressure") {
    return MemoryPressureOnly(n, seed);
  }
  if (name == "island") {
    return IslandPartition(n, seed);
  }
  CHECK(false) << "unknown fault plan " << name;
  return FaultPlan{};
}

bool FaultPlan::IsKnown(const std::string& name) {
  return name.empty() || name == "none" || name == "standard-chaos" ||
         name == "partition" || name == "crash-restart" || name == "slow-node" ||
         name == "memory-pressure" || name == "island";
}

void FaultEvent::WriteJson(JsonWriter* w) const {
  w->BeginObject();
  w->Field("kind", FaultKindName(kind));
  w->Field("at_ns", at.nanos());
  w->Field("duration_ns", duration.nanos());
  w->Key("nodes_a").BeginArray();
  for (NodeId id : nodes_a) w->Int(id);
  w->EndArray();
  w->Key("nodes_b").BeginArray();
  for (NodeId id : nodes_b) w->Int(id);
  w->EndArray();
  w->Field("extra_loss", extra_loss);
  w->Field("extra_latency_ns", extra_latency.nanos());
  w->Field("cpu_factor", cpu_factor);
  w->Field("ballast_bytes", ballast_bytes);
  w->EndObject();
}

namespace {

Result<std::vector<NodeId>> ParseNodeList(const JsonValue& obj,
                                          const std::string& key) {
  const JsonValue* v = obj.Find(key);
  if (v == nullptr) {
    return Status::InvalidArgument("FaultEvent: missing key \"" + key + "\"");
  }
  if (!v->is_array()) {
    return Status::InvalidArgument("FaultEvent: \"" + key + "\" is not an array");
  }
  std::vector<NodeId> out;
  for (const JsonValue& item : v->AsArray()) {
    if (!item.is_int() || item.AsInt() < 0) {
      return Status::InvalidArgument("FaultEvent: \"" + key +
                                     "\" contains a non-node-id");
    }
    out.push_back(static_cast<NodeId>(item.AsInt()));
  }
  return out;
}

}  // namespace

Result<FaultEvent> FaultEvent::FromJson(const JsonValue& v) {
  if (!v.is_object()) {
    return Status::InvalidArgument("FaultEvent: not a JSON object");
  }
  static const char* const kKeys[] = {
      "kind",       "at_ns",            "duration_ns", "nodes_a",
      "nodes_b",    "extra_loss",       "extra_latency_ns",
      "cpu_factor", "ballast_bytes"};
  for (const auto& [key, unused] : v.AsObject()) {
    bool known = false;
    for (const char* k : kKeys) known = known || key == k;
    if (!known) {
      return Status::InvalidArgument("FaultEvent: unknown key \"" + key + "\"");
    }
  }

  FaultEvent ev;
  auto kind_name = v.GetString("kind", "FaultEvent");
  if (!kind_name.ok()) return kind_name.status();
  auto kind = FaultKindFromName(kind_name.value());
  if (!kind.ok()) return kind.status();
  ev.kind = kind.value();

  auto at_ns = v.GetInt("at_ns", "FaultEvent");
  if (!at_ns.ok()) return at_ns.status();
  auto duration_ns = v.GetInt("duration_ns", "FaultEvent");
  if (!duration_ns.ok()) return duration_ns.status();
  if (at_ns.value() < 0 || at_ns.value() > kMaxEventTimeNanos) {
    return Status::InvalidArgument(
        StrFormat("FaultEvent: at_ns %lld out of range",
                  static_cast<long long>(at_ns.value())));
  }
  if (duration_ns.value() < 0 ||
      at_ns.value() + duration_ns.value() > kMaxEventTimeNanos) {
    return Status::InvalidArgument(
        StrFormat("FaultEvent: duration_ns %lld out of range",
                  static_cast<long long>(duration_ns.value())));
  }
  ev.at = VirtualDuration::Nanos(at_ns.value());
  ev.duration = VirtualDuration::Nanos(duration_ns.value());

  auto nodes_a = ParseNodeList(v, "nodes_a");
  if (!nodes_a.ok()) return nodes_a.status();
  ev.nodes_a = std::move(nodes_a).value();
  if (ev.nodes_a.empty()) {
    return Status::InvalidArgument("FaultEvent: nodes_a must be non-empty");
  }
  auto nodes_b = ParseNodeList(v, "nodes_b");
  if (!nodes_b.ok()) return nodes_b.status();
  ev.nodes_b = std::move(nodes_b).value();

  auto extra_loss = v.GetDouble("extra_loss", "FaultEvent");
  if (!extra_loss.ok()) return extra_loss.status();
  if (extra_loss.value() < 0.0 || extra_loss.value() > 1.0) {
    return Status::InvalidArgument("FaultEvent: extra_loss outside [0, 1]");
  }
  ev.extra_loss = extra_loss.value();

  auto extra_latency_ns = v.GetInt("extra_latency_ns", "FaultEvent");
  if (!extra_latency_ns.ok()) return extra_latency_ns.status();
  if (extra_latency_ns.value() < 0 ||
      extra_latency_ns.value() > kMaxEventTimeNanos) {
    return Status::InvalidArgument("FaultEvent: extra_latency_ns out of range");
  }
  ev.extra_latency = VirtualDuration::Nanos(extra_latency_ns.value());

  auto cpu_factor = v.GetDouble("cpu_factor", "FaultEvent");
  if (!cpu_factor.ok()) return cpu_factor.status();
  if (!(cpu_factor.value() > 0.0) || cpu_factor.value() > 1000.0) {
    return Status::InvalidArgument("FaultEvent: cpu_factor must be in (0, 1000]");
  }
  ev.cpu_factor = cpu_factor.value();

  auto ballast = v.GetInt("ballast_bytes", "FaultEvent");
  if (!ballast.ok()) return ballast.status();
  if (ballast.value() < 0) {
    return Status::InvalidArgument("FaultEvent: ballast_bytes must be >= 0");
  }
  ev.ballast_bytes = ballast.value();
  return ev;
}

void FaultPlan::WriteJson(JsonWriter* w) const {
  w->BeginObject();
  w->Field("name", name);
  w->Key("events").BeginArray();
  for (const FaultEvent& event : events) {
    event.WriteJson(w);
  }
  w->EndArray();
  w->EndObject();
}

std::string FaultPlan::ToJson() const {
  JsonWriter w;
  WriteJson(&w);
  return w.str();
}

Result<FaultPlan> FaultPlan::FromJson(const JsonValue& v) {
  if (!v.is_object()) {
    return Status::InvalidArgument("FaultPlan: not a JSON object");
  }
  for (const auto& [key, unused] : v.AsObject()) {
    if (key != "name" && key != "events") {
      return Status::InvalidArgument("FaultPlan: unknown key \"" + key + "\"");
    }
  }
  FaultPlan plan;
  auto name = v.GetString("name", "FaultPlan");
  if (!name.ok()) return name.status();
  plan.name = std::move(name).value();
  const JsonValue* events = v.Find("events");
  if (events == nullptr || !events->is_array()) {
    return Status::InvalidArgument("FaultPlan: missing \"events\" array");
  }
  for (const JsonValue& item : events->AsArray()) {
    auto ev = FaultEvent::FromJson(item);
    if (!ev.ok()) return ev.status();
    plan.events.push_back(std::move(ev).value());
  }
  return plan;
}

Result<FaultPlan> FaultPlan::FromJsonText(const std::string& text) {
  auto parsed = ParseJson(text);
  if (!parsed.ok()) return parsed.status();
  return FromJson(parsed.value());
}

bool operator==(const FaultEvent& a, const FaultEvent& b) {
  return a.kind == b.kind && a.at == b.at && a.duration == b.duration &&
         a.nodes_a == b.nodes_a && a.nodes_b == b.nodes_b &&
         a.extra_loss == b.extra_loss && a.extra_latency == b.extra_latency &&
         a.cpu_factor == b.cpu_factor && a.ballast_bytes == b.ballast_bytes;
}

bool operator==(const FaultPlan& a, const FaultPlan& b) {
  return a.name == b.name && a.events == b.events;
}

}  // namespace scalecheck
