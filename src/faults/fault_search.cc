#include "src/faults/fault_search.h"

#include <algorithm>
#include <map>
#include <numeric>
#include <utility>

#include "src/cluster/workload.h"
#include "src/common/check.h"
#include "src/common/hash.h"
#include "src/common/json.h"
#include "src/common/rng.h"
#include "src/common/strings.h"
#include "src/scalecheck/bug_catalog.h"
#include "src/scalecheck/experiment_suite.h"

namespace scalecheck {

Result<RunMode> RunModeFromName(const std::string& name) {
  static constexpr RunMode kModes[] = {RunMode::kRealScale, RunMode::kColocated,
                                       RunMode::kMemoize, RunMode::kPilReplay,
                                       RunMode::kRealSockets};
  for (RunMode mode : kModes) {
    if (name == RunModeName(mode)) {
      return mode;
    }
  }
  return Status(StatusCode::kInvalidArgument, "unknown run mode '" + name + "'");
}

namespace {

// Mirrors fault_plan.cc's PickVictim: never the seed/contact nodes (0..2) and
// never the workload's membership target (n/2).
NodeId SearchVictim(Rng* rng, int n) {
  CHECK_GE(n, 5) << "fault search needs at least 5 nodes";
  NodeId v = static_cast<NodeId>(rng->UniformInt(0, n - 1));
  while (v < 3 || v == n / 2) {
    v = (v + 1) % n;
  }
  return v;
}

VirtualDuration RandomAt(Rng* rng) {
  // Inside the default workload window (start 20 s, transitions within the
  // first few minutes), with sub-second jitter off the gossip cadence.
  return VirtualDuration::Seconds(rng->UniformInt(20, 220)) +
         VirtualDuration::Nanos(static_cast<int64_t>(rng->UniformDouble() * 1e9));
}

FaultEvent RandomEvent(Rng* rng, int n) {
  FaultEvent ev;
  ev.kind = static_cast<FaultKind>(rng->UniformInt(0, 4));
  ev.at = RandomAt(rng);
  ev.duration = VirtualDuration::Seconds(rng->UniformInt(10, 45));
  switch (ev.kind) {
    case FaultKind::kPartition: {
      // A small island (complement side implicit via empty nodes_b).
      int island = 1 + static_cast<int>(rng->UniformInt(0, std::max(0, n / 8)));
      std::vector<NodeId> nodes;
      for (int i = 0; i < island; ++i) {
        NodeId v = SearchVictim(rng, n);
        if (std::find(nodes.begin(), nodes.end(), v) == nodes.end()) {
          nodes.push_back(v);
        }
      }
      std::sort(nodes.begin(), nodes.end());
      ev.nodes_a = std::move(nodes);
      break;
    }
    case FaultKind::kLinkDegrade:
      ev.nodes_a = {SearchVictim(rng, n)};
      ev.extra_loss = 0.2 + 0.6 * rng->UniformDouble();
      ev.extra_latency = VirtualDuration::Millis(rng->UniformInt(50, 400));
      break;
    case FaultKind::kCrash:
      ev.nodes_a = {SearchVictim(rng, n)};
      // duration = restart delay; occasionally never restart.
      if (rng->UniformInt(0, 3) == 0) {
        ev.duration = VirtualDuration::Zero();
      }
      break;
    case FaultKind::kSlowNode:
      ev.nodes_a = {SearchVictim(rng, n)};
      ev.cpu_factor = 0.2 + 0.5 * rng->UniformDouble();
      break;
    case FaultKind::kMemoryPressure:
      ev.nodes_a = {SearchVictim(rng, n)};
      ev.ballast_bytes =
          (1 + static_cast<int64_t>(rng->UniformInt(0, 5))) * 1024 * 1024 * 1024;
      break;
  }
  return ev;
}

FaultPlan RandomPlan(Rng* rng, int n, int max_events) {
  FaultPlan plan;
  int count = 1 + static_cast<int>(rng->UniformInt(0, std::max(0, max_events - 1)));
  for (int i = 0; i < count; ++i) {
    plan.events.push_back(RandomEvent(rng, n));
  }
  return plan;
}

FaultPlan MutatePlan(Rng* rng, const FaultPlan& base, int n, int max_events) {
  FaultPlan plan = base;
  int op = plan.events.empty() ? 4 : static_cast<int>(rng->UniformInt(0, 4));
  size_t pick = plan.events.empty()
                    ? 0
                    : rng->PickIndex(plan.events.size());
  switch (op) {
    case 0: {  // shift injection time
      int64_t delta_s = rng->UniformInt(-20, 20);
      VirtualDuration at =
          plan.events[pick].at + VirtualDuration::Seconds(delta_s);
      if (at.nanos() < VirtualDuration::Seconds(1).nanos()) {
        at = VirtualDuration::Seconds(1);
      }
      plan.events[pick].at = at;
      break;
    }
    case 1: {  // rescale duration
      plan.events[pick].duration =
          VirtualDuration::Seconds(rng->UniformInt(5, 60));
      break;
    }
    case 2:  // retarget the victim
      plan.events[pick].nodes_a = {SearchVictim(rng, n)};
      break;
    case 3:  // drop an event (or add, when only one is left)
      if (plan.events.size() > 1) {
        plan.events.erase(plan.events.begin() + static_cast<int64_t>(pick));
        break;
      }
      [[fallthrough]];
    case 4:  // add a fresh event (replace one at the cap)
    default:
      if (static_cast<int>(plan.events.size()) < max_events) {
        plan.events.push_back(RandomEvent(rng, n));
      } else {
        plan.events[pick] = RandomEvent(rng, n);
      }
      break;
  }
  return plan;
}

double ScoreCandidate(const std::vector<std::string>& violated, int64_t flaps,
                      int64_t baseline_flaps) {
  // Violations dominate; flap divergence from the no-fault baseline breaks
  // ties toward schedules that disturb the cluster the most.
  return 100.0 * static_cast<double>(violated.size()) +
         RelativeFlapError(flaps, baseline_flaps);
}

void WritePlanSummary(JsonWriter* w, const FaultCandidate& cand) {
  w->BeginObject();
  w->Field("index", cand.index);
  w->Field("events", static_cast<int64_t>(cand.plan.events.size()));
  w->Field("score", cand.score);
  w->Field("flaps", cand.flaps);
  w->Key("violated").BeginArray();
  for (const std::string& name : cand.violated) {
    w->String(name);
  }
  w->EndArray();
  w->Key("plan");
  cand.plan.WriteJson(w);
  w->EndObject();
}

}  // namespace

FaultSearch::FaultSearch(FaultSearchConfig config) : config_(std::move(config)) {
  // Candidates carry the whole schedule explicitly; a named plan on the base
  // spec would silently merge into every empty-plan run.
  config_.spec.fault_plan = "none";
  config_.spec.custom_faults = FaultPlan{};
  config_.spec.check.enabled = true;
  CHECK_GE(config_.nodes, 5);
  CHECK_GE(config_.budget, 1);
  CHECK_GE(config_.generation_size, 1);
  CHECK_GE(config_.max_events, 1);
}

FaultSearchReport FaultSearch::Run() {
  const FaultSearchConfig& cfg = config_;
  FaultSearchReport report;

  // No-fault baseline: the flap-divergence reference.
  RunResult baseline = RunSingle(cfg.spec, cfg.nodes, cfg.mode, cfg.seed);
  report.baseline_flaps = baseline.flaps;

  Rng rng(HashCombine(cfg.search_seed, 0x5ea6c4d0ULL));
  int emitted = 0;
  while (emitted < cfg.budget &&
         !(report.found_violation && cfg.stop_on_first_violation)) {
    int gen = std::min(cfg.generation_size, cfg.budget - emitted);

    // Compose the whole generation before evaluating any of it: candidate
    // plans depend only on the search Rng and on *previous* generations'
    // (deterministic) suite results, never on host scheduling.
    const FaultPlan* best_plan =
        report.best_index >= 0 &&
                !report.candidates[static_cast<size_t>(report.best_index)]
                     .plan.events.empty()
            ? &report.candidates[static_cast<size_t>(report.best_index)].plan
            : nullptr;
    std::vector<FaultPlan> plans;
    plans.reserve(static_cast<size_t>(gen));
    for (int i = 0; i < gen; ++i) {
      FaultPlan plan = (best_plan != nullptr && i % 2 == 1)
                           ? MutatePlan(&rng, *best_plan, cfg.nodes, cfg.max_events)
                           : RandomPlan(&rng, cfg.nodes, cfg.max_events);
      plan.name = StrFormat("cand-%03d", emitted + i);
      plans.push_back(std::move(plan));
    }

    // One host-parallel suite per generation; each candidate is an ordinary
    // BugSpec, so the executor's determinism contract carries over.
    ExperimentSpec grid;
    grid.bugs.reserve(static_cast<size_t>(gen));
    for (int i = 0; i < gen; ++i) {
      BugSpec cand = cfg.spec;
      cand.id = plans[static_cast<size_t>(i)].name;
      cand.custom_faults = plans[static_cast<size_t>(i)];
      grid.bugs.push_back(std::move(cand));
    }
    grid.modes = {cfg.mode};
    grid.scales = {cfg.nodes};
    grid.seeds = {cfg.seed};
    grid.jobs = cfg.jobs;
    SuiteReport suite = ExperimentSuite(std::move(grid)).Run();

    for (int i = 0; i < gen; ++i) {
      const FaultPlan& plan = plans[static_cast<size_t>(i)];
      const RunResult& run = suite.Get(plan.name, cfg.mode, cfg.nodes, cfg.seed);
      FaultCandidate cand;
      cand.index = emitted + i;
      cand.plan = plan;
      cand.flaps = run.flaps;
      cand.violated = run.invariants.ViolatedNames();
      std::sort(cand.violated.begin(), cand.violated.end());
      cand.score = ScoreCandidate(cand.violated, cand.flaps, report.baseline_flaps);
      if (cand.violating() && !report.found_violation) {
        report.found_violation = true;
        report.violating_index = cand.index;
        report.violating_plan = cand.plan;
        report.violated = cand.violated;
      }
      if (report.best_index < 0 ||
          cand.score >
              report.candidates[static_cast<size_t>(report.best_index)].score) {
        report.best_index = cand.index;
      }
      report.candidates.push_back(std::move(cand));
    }
    emitted += gen;
  }

  if (report.found_violation) {
    report.minimized_plan = report.violating_plan;
    if (cfg.minimize) {
      MinimizeResult min = MinimizeFaultPlan(cfg.spec, cfg.nodes, cfg.mode,
                                             cfg.seed, report.violating_plan,
                                             report.violated);
      report.minimized_plan = std::move(min.plan);
      report.minimize_runs = min.runs;
    }
    report.minimized_plan.name = "minimized";
    // Final run of the minimized plan: its InvariantReport is what --repro
    // must reproduce byte-identically.
    BugSpec repro_spec = cfg.spec;
    repro_spec.custom_faults = report.minimized_plan;
    RunResult final_run = RunSingle(repro_spec, cfg.nodes, cfg.mode, cfg.seed);
    report.repro_json = MakeReproArtifact(cfg.spec, cfg.nodes, cfg.mode,
                                          cfg.seed, report.minimized_plan,
                                          final_run);
  }
  return report;
}

MinimizeResult MinimizeFaultPlan(const BugSpec& base_spec, int nodes,
                                 RunMode mode, uint64_t seed,
                                 const FaultPlan& plan,
                                 const std::vector<std::string>& expected) {
  CHECK(!expected.empty()) << "nothing to minimize against";
  MinimizeResult out;
  BugSpec spec = base_spec;
  spec.fault_plan = "none";

  // Memoized predicate: does this event subset still reproduce every
  // expected invariant violation? Subsets recur across ddmin rounds.
  std::map<std::vector<size_t>, bool> memo;
  auto violates = [&](const std::vector<size_t>& keep) {
    auto it = memo.find(keep);
    if (it != memo.end()) {
      return it->second;
    }
    FaultPlan sub;
    sub.name = "minimize";
    for (size_t idx : keep) {
      sub.events.push_back(plan.events[idx]);
    }
    BugSpec cand = spec;
    cand.custom_faults = std::move(sub);
    RunResult run = RunSingle(cand, nodes, mode, seed);
    ++out.runs;
    std::vector<std::string> got = run.invariants.ViolatedNames();
    bool all = true;
    for (const std::string& name : expected) {
      if (std::find(got.begin(), got.end(), name) == got.end()) {
        all = false;
        break;
      }
    }
    memo[keep] = all;
    return all;
  };

  std::vector<size_t> keep(plan.events.size());
  std::iota(keep.begin(), keep.end(), size_t{0});
  CHECK(violates(keep)) << "minimizer input does not violate";

  // If the violation does not need faults at all, the minimal plan is empty.
  if (violates({})) {
    out.plan.name = "minimized";
    return out;
  }

  // ddmin proper: try chunks, then chunk complements, then refine.
  size_t granularity = 2;
  while (keep.size() >= 2) {
    size_t g = std::min(granularity, keep.size());
    size_t chunk = (keep.size() + g - 1) / g;
    std::vector<std::vector<size_t>> chunks;
    for (size_t start = 0; start < keep.size(); start += chunk) {
      chunks.emplace_back(keep.begin() + static_cast<int64_t>(start),
                          keep.begin() + static_cast<int64_t>(
                                             std::min(start + chunk, keep.size())));
    }
    bool reduced = false;
    for (const std::vector<size_t>& subset : chunks) {
      if (subset.size() < keep.size() && violates(subset)) {
        keep = subset;
        granularity = 2;
        reduced = true;
        break;
      }
    }
    if (!reduced) {
      for (size_t i = 0; i < chunks.size(); ++i) {
        std::vector<size_t> complement;
        for (size_t j = 0; j < chunks.size(); ++j) {
          if (j != i) {
            complement.insert(complement.end(), chunks[j].begin(), chunks[j].end());
          }
        }
        if (!complement.empty() && complement.size() < keep.size() &&
            violates(complement)) {
          keep = complement;
          granularity = std::max<size_t>(g - 1, 2);
          reduced = true;
          break;
        }
      }
    }
    if (!reduced) {
      if (g >= keep.size()) {
        break;
      }
      granularity = std::min(keep.size(), g * 2);
    }
  }

  // Explicit 1-minimality pass: ddmin guarantees it at final granularity, but
  // the acceptance criterion is "removing any single event loses the
  // violation", so verify exactly that (memoized subsets make repeats free).
  bool changed = true;
  while (changed && keep.size() > 1) {
    changed = false;
    for (size_t i = 0; i < keep.size(); ++i) {
      std::vector<size_t> without = keep;
      without.erase(without.begin() + static_cast<int64_t>(i));
      if (violates(without)) {
        keep = std::move(without);
        changed = true;
        break;
      }
    }
  }

  out.plan.name = "minimized";
  for (size_t idx : keep) {
    out.plan.events.push_back(plan.events[idx]);
  }
  return out;
}

std::string MakeReproArtifact(const BugSpec& spec, int nodes, RunMode mode,
                              uint64_t seed, const FaultPlan& plan,
                              const RunResult& result) {
  JsonWriter w;
  w.BeginObject();
  w.Field("format", "scalecheck-repro-v1");
  w.Field("bug", spec.id);
  w.Field("nodes", nodes);
  w.Field("mode", RunModeName(mode));
  w.Field("seed", seed);
  w.Field("plant_left_join_bug", spec.check.plant_left_join_bug);
  w.Field("plant_kv_ack_before_sync", spec.check.plant_kv_ack_before_sync);
  // KV invariant checkability depends on the workload, so a CLI --workload=
  // override must be pinned or the replay could probe a different set.
  w.Field("workload", WorkloadKindName(spec.workload));
  w.Field("kv_ops_per_second", spec.kv_ops_per_second);
  w.Field("kv_consistency", KvConsistencyName(spec.kv_consistency));
  w.Field("kv_wal", spec.kv_wal);
  // Anti-entropy knobs: the replica-convergence invariant only arms when
  // kv_repair is on, and its budget facet scores against the configured
  // rate, so a replay with different repair settings would probe (and
  // pass or fail) a different check than the one the search scored.
  w.Field("kv_repair", spec.kv_repair);
  w.Field("kv_repair_interval_ns", spec.kv_repair_interval.nanos());
  w.Field("kv_repair_rate_bytes", spec.kv_repair_rate_bytes);
  w.Field("kv_repair_max_sessions", spec.kv_repair_max_sessions);
  w.Field("plant_repair_storm", spec.check.plant_repair_storm);
  w.Field("kv_key_dist", spec.kv_key_dist == KvKeyDist::kZipf ? "zipf" : "uniform");
  w.Field("kv_zipf_s", spec.kv_zipf_s);
  w.Key("plan");
  plan.WriteJson(&w);
  w.Key("expected_violated").BeginArray();
  for (const InvariantViolation& v : result.invariants.violations) {
    w.String(v.invariant);
  }
  w.EndArray();
  // The full report the replay must reproduce byte-for-byte.
  w.Field("expected_invariants", result.invariants.ToJson());
  w.EndObject();
  return w.str();
}

Result<ReproReplay> ReplayRepro(const std::string& artifact_json) {
  Result<JsonValue> parsed = ParseJson(artifact_json);
  if (!parsed.ok()) {
    return parsed.status();
  }
  const JsonValue& v = parsed.value();
  if (!v.is_object()) {
    return Status(StatusCode::kInvalidArgument, "repro artifact: not an object");
  }
  static const char* const kKeys[] = {
      "format", "bug",  "nodes",             "mode",
      "seed",   "plant_left_join_bug",       "plant_kv_ack_before_sync",
      "plan",   "expected_violated",         "expected_invariants",
      "kv_ops_per_second", "kv_consistency", "kv_wal", "workload",
      "kv_repair",         "kv_repair_interval_ns", "kv_repair_rate_bytes",
      "kv_repair_max_sessions", "plant_repair_storm", "kv_key_dist",
      "kv_zipf_s"};
  for (const auto& [key, value] : v.AsObject()) {
    (void)value;
    bool known = false;
    for (const char* k : kKeys) {
      if (key == k) {
        known = true;
        break;
      }
    }
    if (!known) {
      return Status(StatusCode::kInvalidArgument,
                    "repro artifact: unknown key '" + key + "'");
    }
  }

  Result<std::string> format = v.GetString("format", "repro artifact");
  if (!format.ok()) {
    return format.status();
  }
  if (format.value() != "scalecheck-repro-v1") {
    return Status(StatusCode::kVersionSkew,
                  "unsupported repro format '" + format.value() + "'");
  }
  Result<std::string> bug = v.GetString("bug", "repro artifact");
  if (!bug.ok()) {
    return bug.status();
  }
  const BugSpec* catalog = BugCatalog::TryGet(bug.value());
  if (catalog == nullptr) {
    return Status(StatusCode::kNotFound,
                  "repro artifact: unknown bug id '" + bug.value() + "'");
  }
  Result<int64_t> nodes = v.GetInt("nodes", "repro artifact");
  if (!nodes.ok()) {
    return nodes.status();
  }
  if (nodes.value() < 5 || nodes.value() > 100000) {
    return Status(StatusCode::kInvalidArgument,
                  "repro artifact: nodes out of range");
  }
  Result<std::string> mode_name = v.GetString("mode", "repro artifact");
  if (!mode_name.ok()) {
    return mode_name.status();
  }
  Result<RunMode> mode = RunModeFromName(mode_name.value());
  if (!mode.ok()) {
    return mode.status();
  }
  Result<int64_t> seed = v.GetInt("seed", "repro artifact");
  if (!seed.ok()) {
    return seed.status();
  }
  if (seed.value() < 0) {
    return Status(StatusCode::kInvalidArgument, "repro artifact: negative seed");
  }
  Result<bool> plant = v.GetBool("plant_left_join_bug", "repro artifact");
  if (!plant.ok()) {
    return plant.status();
  }
  Result<bool> plant_kv =
      v.GetBool("plant_kv_ack_before_sync", "repro artifact");
  if (!plant_kv.ok()) {
    return plant_kv.status();
  }
  Result<double> kv_ops = v.GetDouble("kv_ops_per_second", "repro artifact");
  if (!kv_ops.ok()) {
    return kv_ops.status();
  }
  Result<std::string> kv_level_name =
      v.GetString("kv_consistency", "repro artifact");
  if (!kv_level_name.ok()) {
    return kv_level_name.status();
  }
  Result<KvConsistency> kv_level = KvConsistencyFromName(kv_level_name.value());
  if (!kv_level.ok()) {
    return kv_level.status();
  }
  Result<bool> kv_wal = v.GetBool("kv_wal", "repro artifact");
  if (!kv_wal.ok()) {
    return kv_wal.status();
  }
  Result<bool> kv_repair = v.GetBool("kv_repair", "repro artifact");
  if (!kv_repair.ok()) {
    return kv_repair.status();
  }
  Result<int64_t> repair_interval =
      v.GetInt("kv_repair_interval_ns", "repro artifact");
  if (!repair_interval.ok()) {
    return repair_interval.status();
  }
  if (repair_interval.value() <= 0) {
    return Status(StatusCode::kInvalidArgument,
                  "repro artifact: kv_repair_interval_ns must be positive");
  }
  Result<int64_t> repair_rate =
      v.GetInt("kv_repair_rate_bytes", "repro artifact");
  if (!repair_rate.ok()) {
    return repair_rate.status();
  }
  if (repair_rate.value() <= 0) {
    return Status(StatusCode::kInvalidArgument,
                  "repro artifact: kv_repair_rate_bytes must be positive");
  }
  Result<int64_t> repair_sessions =
      v.GetInt("kv_repair_max_sessions", "repro artifact");
  if (!repair_sessions.ok()) {
    return repair_sessions.status();
  }
  if (repair_sessions.value() <= 0) {
    return Status(StatusCode::kInvalidArgument,
                  "repro artifact: kv_repair_max_sessions must be positive");
  }
  Result<bool> plant_storm = v.GetBool("plant_repair_storm", "repro artifact");
  if (!plant_storm.ok()) {
    return plant_storm.status();
  }
  Result<std::string> key_dist_name =
      v.GetString("kv_key_dist", "repro artifact");
  if (!key_dist_name.ok()) {
    return key_dist_name.status();
  }
  if (key_dist_name.value() != "uniform" && key_dist_name.value() != "zipf") {
    return Status(StatusCode::kInvalidArgument,
                  "repro artifact: kv_key_dist must be uniform or zipf");
  }
  Result<double> zipf_s = v.GetDouble("kv_zipf_s", "repro artifact");
  if (!zipf_s.ok()) {
    return zipf_s.status();
  }
  if (!(zipf_s.value() > 0)) {
    return Status(StatusCode::kInvalidArgument,
                  "repro artifact: kv_zipf_s must be positive");
  }
  Result<std::string> workload_name = v.GetString("workload", "repro artifact");
  if (!workload_name.ok()) {
    return workload_name.status();
  }
  Result<WorkloadKind> workload = WorkloadKindFromName(workload_name.value());
  if (!workload.ok()) {
    return workload.status();
  }
  const JsonValue* plan_value = v.Find("plan");
  if (plan_value == nullptr) {
    return Status(StatusCode::kInvalidArgument, "repro artifact: missing plan");
  }
  Result<FaultPlan> plan = FaultPlan::FromJson(*plan_value);
  if (!plan.ok()) {
    return plan.status();
  }
  const JsonValue* expected = v.Find("expected_violated");
  if (expected == nullptr || !expected->is_array()) {
    return Status(StatusCode::kInvalidArgument,
                  "repro artifact: expected_violated must be an array");
  }
  std::vector<std::string> expected_violated;
  for (const JsonValue& item : expected->AsArray()) {
    if (!item.is_string()) {
      return Status(StatusCode::kInvalidArgument,
                    "repro artifact: expected_violated entries must be strings");
    }
    expected_violated.push_back(item.AsString());
  }
  Result<std::string> expected_invariants =
      v.GetString("expected_invariants", "repro artifact");
  if (!expected_invariants.ok()) {
    return expected_invariants.status();
  }

  BugSpec spec = *catalog;
  spec.fault_plan = "none";
  spec.custom_faults = plan.value();
  spec.check.enabled = true;
  spec.check.plant_left_join_bug = plant.value();
  spec.check.plant_kv_ack_before_sync = plant_kv.value();
  spec.kv_ops_per_second = kv_ops.value();
  spec.kv_consistency = kv_level.value();
  spec.kv_wal = kv_wal.value();
  spec.kv_repair = kv_repair.value();
  spec.kv_repair_interval = VirtualDuration::Nanos(repair_interval.value());
  spec.kv_repair_rate_bytes = repair_rate.value();
  spec.kv_repair_max_sessions = static_cast<int>(repair_sessions.value());
  spec.check.plant_repair_storm = plant_storm.value();
  spec.kv_key_dist = key_dist_name.value() == "zipf" ? KvKeyDist::kZipf
                                                     : KvKeyDist::kUniform;
  spec.kv_zipf_s = zipf_s.value();
  spec.workload = workload.value();

  ReproReplay replay;
  replay.bug_id = bug.value();
  replay.expected_violated = std::move(expected_violated);
  replay.result = RunSingle(spec, static_cast<int>(nodes.value()), mode.value(),
                            static_cast<uint64_t>(seed.value()));
  replay.invariants_match =
      replay.result.invariants.ToJson() == expected_invariants.value();
  return replay;
}

std::string FaultSearchReport::ToJson() const {
  JsonWriter w;
  w.BeginObject();
  w.Field("baseline_flaps", baseline_flaps);
  w.Field("candidates_run", static_cast<int64_t>(candidates.size()));
  w.Field("best_index", best_index);
  w.Field("found_violation", found_violation);
  w.Field("violating_index", violating_index);
  w.Key("violated").BeginArray();
  for (const std::string& name : violated) {
    w.String(name);
  }
  w.EndArray();
  w.Key("candidates").BeginArray();
  for (const FaultCandidate& cand : candidates) {
    WritePlanSummary(&w, cand);
  }
  w.EndArray();
  w.Field("minimized_events", static_cast<int64_t>(minimized_plan.events.size()));
  w.Field("minimize_runs", minimize_runs);
  w.Key("minimized_plan");
  minimized_plan.WriteJson(&w);
  w.Field("repro", repro_json);
  w.EndObject();
  return w.str();
}

}  // namespace scalecheck
