// Executes a FaultPlan against a live deployment.
//
// The injector owns no models: it is wired with hooks into the deployment's
// clock, link-filter host, machines, and node lifecycle, and turns each
// FaultEvent into scheduled injections/heals. Link-level faults (partitions,
// degraded links) are applied through the carrier-neutral LinkFilterHost
// seam (src/transport/link_filter.h), so the same plan partitions the
// simulated NetworkModel and the real-socket TcpTransport alike. On a real
// carrier the timer thread applies/heals while sender threads consult the
// filter concurrently; the injector's internal mutex makes that safe.
//
// Hooks are validated against the plan's content: only the hooks the plan's
// event kinds actually need must be present (a link-only plan can run on a
// carrier with no crash/machine machinery — the real carrier's case).

#ifndef SCALECHECK_SRC_FAULTS_FAULT_INJECTOR_H_
#define SCALECHECK_SRC_FAULTS_FAULT_INJECTOR_H_

#include <functional>
#include <map>
#include <mutex>
#include <unordered_set>
#include <vector>

#include "src/common/types.h"
#include "src/faults/fault_plan.h"
#include "src/sim/machine.h"
#include "src/sim/trace.h"
#include "src/transport/link_filter.h"
#include "src/transport/substrate.h"

namespace scalecheck {

class FaultInjector {
 public:
  struct Hooks {
    // Event scheduling and trace timestamps. Always required.
    Clock* clock = nullptr;
    // Link-fault carrier. Required iff the plan has partition/degrade events.
    LinkFilterHost* links = nullptr;
    TraceRecorder* trace = nullptr;  // optional
    // Node lifecycle (Cluster-owned so crash accounting stays in one place).
    // Required iff the plan has crash events.
    std::function<void(NodeId)> crash_node;
    std::function<void(NodeId)> restart_node;
    std::function<bool(NodeId)> node_crashed;
    // Required iff the plan has slow-node/memory-pressure events.
    std::function<Machine*(NodeId)> machine_of;
  };

  struct Stats {
    int64_t events_applied = 0;
    int64_t events_healed = 0;
  };

  FaultInjector(FaultPlan plan, Hooks hooks);

  // Schedules every event (and its heal) on the clock — at `event.at` after
  // the Arm call — and installs the link filter if the plan contains
  // link-level faults. Call once; on the sim carrier, before Simulator::Run.
  void Arm();

  Stats stats() const {
    std::lock_guard<std::mutex> lock(mu_);
    return stats_;
  }
  const FaultPlan& plan() const { return plan_; }

 private:
  // An active link-level fault (partition or degrade) keyed by event index.
  struct LinkRule {
    bool blocked = false;
    double extra_loss = 0.0;
    VirtualDuration extra_latency;
    std::unordered_set<NodeId> a;
    std::unordered_set<NodeId> b;  // empty = complement of a
  };

  void Apply(size_t index);
  void Heal(size_t index);
  LinkFault Filter(NodeId from, NodeId to) const;
  void Trace(TraceKind kind, const FaultEvent& event);

  FaultPlan plan_;
  Hooks hooks_;
  // Guards stats_ and active_links_: on a real carrier, Filter runs on
  // sender threads while Apply/Heal run on the clock's timer thread.
  mutable std::mutex mu_;
  Stats stats_;
  std::map<size_t, LinkRule> active_links_;
};

}  // namespace scalecheck

#endif  // SCALECHECK_SRC_FAULTS_FAULT_INJECTOR_H_
