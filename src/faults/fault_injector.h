// Executes a FaultPlan against a live deployment.
//
// The injector owns no models: it is wired with hooks into the Cluster's
// simulator, network, machines, and node lifecycle, and turns each FaultEvent
// into scheduled injections/heals. Link-level faults (partitions, degraded
// links) are applied through the NetworkModel's link filter, which is
// consulted on every Send while at least one link fault is in the plan.

#ifndef SCALECHECK_SRC_FAULTS_FAULT_INJECTOR_H_
#define SCALECHECK_SRC_FAULTS_FAULT_INJECTOR_H_

#include <functional>
#include <map>
#include <unordered_set>
#include <vector>

#include "src/common/types.h"
#include "src/faults/fault_plan.h"
#include "src/sim/machine.h"
#include "src/sim/network.h"
#include "src/sim/simulator.h"
#include "src/sim/trace.h"

namespace scalecheck {

class FaultInjector {
 public:
  struct Hooks {
    Simulator* sim = nullptr;
    NetworkModel* network = nullptr;
    TraceRecorder* trace = nullptr;  // optional
    // Node lifecycle (Cluster-owned so crash accounting stays in one place).
    std::function<void(NodeId)> crash_node;
    std::function<void(NodeId)> restart_node;
    std::function<bool(NodeId)> node_crashed;
    std::function<Machine*(NodeId)> machine_of;
  };

  struct Stats {
    int64_t events_applied = 0;
    int64_t events_healed = 0;
  };

  FaultInjector(FaultPlan plan, Hooks hooks);

  // Schedules every event (and its heal) on the simulator and installs the
  // network link filter if the plan contains link-level faults. Call once,
  // before Simulator::Run.
  void Arm();

  const Stats& stats() const { return stats_; }
  const FaultPlan& plan() const { return plan_; }

 private:
  // An active link-level fault (partition or degrade) keyed by event index.
  struct LinkRule {
    bool blocked = false;
    double extra_loss = 0.0;
    VirtualDuration extra_latency;
    std::unordered_set<NodeId> a;
    std::unordered_set<NodeId> b;  // empty = complement of a
  };

  void Apply(size_t index);
  void Heal(size_t index);
  NetworkModel::LinkFault Filter(NodeId from, NodeId to) const;
  void Trace(TraceKind kind, const FaultEvent& event);

  FaultPlan plan_;
  Hooks hooks_;
  Stats stats_;
  std::map<size_t, LinkRule> active_links_;
};

}  // namespace scalecheck

#endif  // SCALECHECK_SRC_FAULTS_FAULT_INJECTOR_H_
