// ChaosSearch: invariant-driven exploration of the fault-plan space.
//
// The studied scalability bugs hide behind *specific* adverse schedules: a
// crash inside a decommission window, a partition that heals mid-recalc. A
// hand-written StandardChaos plan exercises one such schedule; ChaosSearch
// explores many. The searcher generates seed-deterministic candidate
// FaultPlans (random schedules, then mutations of the best scorer), runs each
// candidate through the ExperimentSuite executor (host-parallel, yet
// byte-deterministic — candidate generation depends only on the search Rng
// and on suite results, never on host completion order), and scores each run
// by the invariants it violated plus how far its flap count diverged from a
// no-fault baseline.
//
// A violating candidate is then shrunk by a ddmin-style minimizer to a
// locally minimal reproducer — removing any single remaining event no longer
// reproduces the violation — and packaged as a self-contained repro artifact:
// one JSON document holding the scenario, scale, mode, seed and FaultPlan.
// `scalecheck_cli --repro=FILE` re-executes the artifact and must reach the
// byte-identical InvariantReport (strict round-trip per fault_plan.h).

#ifndef SCALECHECK_SRC_FAULTS_FAULT_SEARCH_H_
#define SCALECHECK_SRC_FAULTS_FAULT_SEARCH_H_

#include <string>
#include <vector>

#include "src/faults/fault_plan.h"
#include "src/scalecheck/scale_check.h"

namespace scalecheck {

// Strict inverse of RunModeName ("Real" / "Colo" / "Memoize" / "SC+PIL");
// unknown names are kInvalidArgument (repro artifacts must not guess).
Result<RunMode> RunModeFromName(const std::string& name);

struct FaultSearchConfig {
  // Base scenario; candidates clone it with spec.custom_faults replaced.
  // The searcher clears spec.fault_plan so only the candidate plan runs.
  BugSpec spec;
  int nodes = 16;
  RunMode mode = RunMode::kColocated;
  // Simulation seed — identical for every candidate, so score differences
  // come from the fault schedule alone.
  uint64_t seed = 0x5ca1ec4ecULL;
  // Drives candidate generation and mutation only.
  uint64_t search_seed = 0xc4a05ULL;
  // Total candidate plans to evaluate.
  int budget = 32;
  // Candidates evaluated per suite batch (one host-parallel generation).
  int generation_size = 8;
  // Max events per generated plan (mutation may not grow beyond this).
  int max_events = 5;
  // Host workers for each generation's ExperimentSuite (wall-clock only).
  int jobs = 1;
  // Stop exploring at the end of the first generation with a violation.
  bool stop_on_first_violation = true;
  // Shrink the first violating plan to a minimal reproducer.
  bool minimize = true;
};

struct FaultCandidate {
  int index = 0;  // generation order, the candidate's identity
  FaultPlan plan;
  double score = 0.0;
  int64_t flaps = 0;
  std::vector<std::string> violated;  // invariant names, sorted

  bool violating() const { return !violated.empty(); }
};

struct FaultSearchReport {
  int64_t baseline_flaps = 0;  // no-fault run of the same (spec, n, mode, seed)
  std::vector<FaultCandidate> candidates;  // in generation order
  int best_index = -1;  // highest score (ties: lowest index)
  bool found_violation = false;
  // First violating candidate (lowest index) and its violations.
  int violating_index = -1;
  FaultPlan violating_plan;
  std::vector<std::string> violated;
  // Minimizer output (== violating_plan when minimize is off).
  FaultPlan minimized_plan;
  int minimize_runs = 0;
  // Self-contained repro artifact for the minimized plan ("" if no
  // violation was found).
  std::string repro_json;

  std::string ToJson() const;
};

class FaultSearch {
 public:
  explicit FaultSearch(FaultSearchConfig config);

  // Runs the whole search (plus minimization). Deterministic in
  // (config minus jobs): any --jobs produces byte-identical ToJson output.
  FaultSearchReport Run();

 private:
  FaultSearchConfig config_;
};

// ddmin-style shrinker: returns a subset of plan.events that still violates
// every invariant in `expected` (names as reported in InvariantReport) and is
// locally minimal — removing any single remaining event loses the violation.
// `runs` counts the simulations spent shrinking.
struct MinimizeResult {
  FaultPlan plan;
  int runs = 0;
};
MinimizeResult MinimizeFaultPlan(const BugSpec& spec, int nodes, RunMode mode,
                                 uint64_t seed, const FaultPlan& plan,
                                 const std::vector<std::string>& expected);

// The self-contained repro artifact (see file comment). `spec` must carry the
// catalog id the replaying binary will resolve; overrides that matter for the
// replay (planted bug, kv load) are embedded explicitly.
std::string MakeReproArtifact(const BugSpec& spec, int nodes, RunMode mode,
                              uint64_t seed, const FaultPlan& plan,
                              const RunResult& result);

struct ReproReplay {
  std::string bug_id;
  RunResult result;
  std::vector<std::string> expected_violated;
  // The replayed InvariantReport serialized byte-identically to the
  // artifact's recorded report.
  bool invariants_match = false;
};

// Parses and re-executes an artifact produced by MakeReproArtifact. Strict:
// unknown format/bug/mode or a malformed plan is an error, not a guess.
Result<ReproReplay> ReplayRepro(const std::string& artifact_json);

}  // namespace scalecheck

#endif  // SCALECHECK_SRC_FAULTS_FAULT_SEARCH_H_
