// Declarative fault schedules.
//
// A FaultPlan is a pure value: a seed-deterministic list of fault events in
// virtual time. It is part of a run's configuration (BugSpec / Cluster
// options), so memoize and replay runs apply byte-identical fault schedules —
// the same property the paper needs for "the debugging runs see the same
// storm the testing run saw". The FaultInjector turns a plan into scheduled
// simulator events against the live models.
//
// §2 motivates this subsystem: the studied scalability bugs surface as flap
// storms under *adverse conditions at scale* — partitions, slow or dying
// nodes, memory exhaustion. A standard chaos plan lets the accuracy tables
// compare how faithfully each run mode (Real / Colo / SC+PIL) reproduces the
// cluster's reaction to the same adversity.

#ifndef SCALECHECK_SRC_FAULTS_FAULT_PLAN_H_
#define SCALECHECK_SRC_FAULTS_FAULT_PLAN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/result.h"
#include "src/common/types.h"

namespace scalecheck {

class JsonValue;
class JsonWriter;

enum class FaultKind : int {
  // Bidirectional message blackhole between nodes_a and nodes_b (empty
  // nodes_b means "everyone else") for `duration`.
  kPartition = 0,
  // Extra loss probability and latency on links between nodes_a and nodes_b
  // for `duration`.
  kLinkDegrade = 1,
  // Hard crash of nodes_a at `at`; restarted at `at + duration` when
  // duration > 0 (a zero duration means the nodes stay dead).
  kCrash = 2,
  // CPU degradation: the machines hosting nodes_a run at `cpu_factor` speed
  // for `duration`.
  kSlowNode = 3,
  // Memory-pressure ballast charged to nodes_a for `duration`; may push the
  // machine over capacity and trigger the existing OOM -> crash path.
  kMemoryPressure = 4,
};

const char* FaultKindName(FaultKind kind);

// Inverse of FaultKindName; unknown names are kInvalidArgument (the strict
// parse must reject a kind the binary does not implement rather than guess).
Result<FaultKind> FaultKindFromName(const std::string& name);

struct FaultEvent {
  FaultKind kind = FaultKind::kPartition;
  VirtualDuration at;        // injection time (from t=0)
  VirtualDuration duration;  // heal at `at + duration`; zero = never heals
  std::vector<NodeId> nodes_a;
  std::vector<NodeId> nodes_b;  // kPartition/kLinkDegrade; empty = complement
  double extra_loss = 0.0;                  // kLinkDegrade
  VirtualDuration extra_latency;            // kLinkDegrade
  double cpu_factor = 1.0;                  // kSlowNode
  int64_t ballast_bytes = 0;                // kMemoryPressure

  std::string Describe() const;

  // Serialization. Every field is always emitted (deterministic layout); the
  // parse is strict: all keys required, no unknown keys, kind by name,
  // non-negative times bounded by kMaxEventTime, extra_loss in [0,1],
  // cpu_factor > 0, ballast_bytes >= 0, node ids >= 0, nodes_a non-empty.
  void WriteJson(JsonWriter* w) const;
  static Result<FaultEvent> FromJson(const JsonValue& v);

  // Upper bound on at / at+duration accepted by FromJson. Generously above
  // any real horizon (the longest experiments run minutes of virtual time);
  // an artifact claiming a week-long fault is corrupt, not ambitious.
  static constexpr int64_t kMaxEventTimeNanos =
      7LL * 24 * 3600 * 1000 * 1000 * 1000;
};

struct FaultPlan {
  std::string name;
  std::vector<FaultEvent> events;

  bool empty() const { return events.empty(); }
  // Latest heal (or injection, for non-healing events) in the plan.
  VirtualDuration End() const;
  std::string Describe() const;

  // The standard chaos schedule used by the accuracy tables: one partition,
  // one link-degrade window, one crash+restart, one slow node, one
  // memory-pressure window. A pure function of (n, seed): the only
  // randomness is sub-second jitter on the event times.
  static FaultPlan StandardChaos(int n, uint64_t seed);

  // Single-fault plans for focused experiments.
  static FaultPlan PartitionOnly(int n, uint64_t seed);
  static FaultPlan CrashRestartOnly(int n, uint64_t seed);
  static FaultPlan SlowNodeOnly(int n, uint64_t seed);
  static FaultPlan MemoryPressureOnly(int n, uint64_t seed);
  // The ChaosSearch-discovered islanding reproducer, promoted to a named
  // plan: one full partition of the last node (n-1), long enough for mutual
  // conviction, then healed. Before gossip-to-unreachable this islanded the
  // node forever; it now exercises the partition-heals invariant on both
  // carriers (the real carrier rescales the times to its gossip interval).
  static FaultPlan IslandPartition(int n, uint64_t seed);

  // Looks a plan up by name ("", "none", "standard-chaos", "partition",
  // "crash-restart", "slow-node", "memory-pressure", "island"). Unknown
  // names CHECK.
  static FaultPlan ByName(const std::string& name, int n, uint64_t seed);
  static bool IsKnown(const std::string& name);

  // JSON round-trip: ToJson output parsed back by FromJsonText compares equal
  // field-for-field and re-serializes byte-identically (repro artifacts embed
  // plans this way).
  void WriteJson(JsonWriter* w) const;
  std::string ToJson() const;
  static Result<FaultPlan> FromJson(const JsonValue& v);
  static Result<FaultPlan> FromJsonText(const std::string& text);
};

bool operator==(const FaultEvent& a, const FaultEvent& b);
bool operator==(const FaultPlan& a, const FaultPlan& b);

}  // namespace scalecheck

#endif  // SCALECHECK_SRC_FAULTS_FAULT_PLAN_H_
