// Deterministic pseudo-random number generation.
//
// Every source of randomness in the simulator flows through Rng instances that
// are seeded from the experiment seed, so a run is exactly reproducible from
// (code, config, seed). The engine is xoshiro256** seeded via SplitMix64;
// std::mt19937 is avoided because its stream is not guaranteed identical
// across library versions for all distributions.

#ifndef SCALECHECK_SRC_COMMON_RNG_H_
#define SCALECHECK_SRC_COMMON_RNG_H_

#include <cstdint>
#include <vector>

#include "src/common/check.h"

namespace scalecheck {

// Stateless seed mixer; also used to derive independent child seeds.
uint64_t SplitMix64(uint64_t* state);

class Rng {
 public:
  explicit Rng(uint64_t seed);

  // Next raw 64 random bits.
  uint64_t Next();

  // Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  // Uniform double in [0, 1).
  double UniformDouble();

  // Uniform double in [lo, hi).
  double UniformDouble(double lo, double hi);

  // Exponential with the given mean (> 0).
  double Exponential(double mean);

  // Normal via Box-Muller.
  double Normal(double mean, double stddev);

  // True with probability p in [0, 1].
  bool Bernoulli(double p);

  // Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    for (size_t i = v->size(); i > 1; --i) {
      size_t j = static_cast<size_t>(UniformInt(0, static_cast<int64_t>(i) - 1));
      std::swap((*v)[i - 1], (*v)[j]);
    }
  }

  // Picks a uniformly random element index; requires non-empty size.
  size_t PickIndex(size_t size) {
    CHECK_GT(size, 0u);
    return static_cast<size_t>(UniformInt(0, static_cast<int64_t>(size) - 1));
  }

  // Derives an independent child generator (e.g. one per node).
  Rng Fork();

 private:
  uint64_t s_[4];
  bool has_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace scalecheck

#endif  // SCALECHECK_SRC_COMMON_RNG_H_
