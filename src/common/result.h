// Lightweight Status / Result<T> error handling.
//
// The simulator core uses CHECKs for programming errors (invariants that
// cannot fail in a correct build); Status/Result is for *expected* failures —
// I/O, parsing, lookups against user-supplied inputs — where the caller must
// handle the error. No exceptions cross API boundaries in this codebase.

#ifndef SCALECHECK_SRC_COMMON_RESULT_H_
#define SCALECHECK_SRC_COMMON_RESULT_H_

#include <optional>
#include <string>
#include <utility>

#include "src/common/check.h"

namespace scalecheck {

enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kIoError = 3,
  kCorruptData = 4,
  kFailedPrecondition = 5,
  // Input ended before the declared structure was complete (a prefix of a
  // valid byte stream). Distinct from kCorruptData: truncation is the
  // expected signature of a crash mid-write, corruption of bit rot.
  kTruncated = 6,
  // The input is well-formed but written by an incompatible format version.
  kVersionSkew = 7,
};

const char* StatusCodeName(StatusCode code);

class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status CorruptData(std::string msg) {
    return Status(StatusCode::kCorruptData, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Truncated(std::string msg) {
    return Status(StatusCode::kTruncated, std::move(msg));
  }
  static Status VersionSkew(std::string msg) {
    return Status(StatusCode::kVersionSkew, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }
  std::string ToString() const;

  bool operator==(const Status& o) const {
    return code_ == o.code_ && message_ == o.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

// A value or a non-OK status. Accessing value() on an error aborts (it is a
// programming error to skip the check).
template <typename T>
class Result {
 public:
  Result(T value) : value_(std::move(value)) {}          // NOLINT: implicit by design
  Result(Status status) : status_(std::move(status)) {phantom_check();}  // NOLINT

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    CHECK(ok()) << "value() on error result:" << status_.ToString();
    return *value_;
  }
  T& value() & {
    CHECK(ok()) << "value() on error result:" << status_.ToString();
    return *value_;
  }
  T&& value() && {
    CHECK(ok()) << "value() on error result:" << status_.ToString();
    return std::move(*value_);
  }

  // Returns the value or `fallback` on error.
  T value_or(T fallback) const& { return ok() ? *value_ : std::move(fallback); }

 private:
  void phantom_check() {
    CHECK(!status_.ok()) << "Result constructed from OK status without a value";
  }

  std::optional<T> value_;
  Status status_;
};

}  // namespace scalecheck

#endif  // SCALECHECK_SRC_COMMON_RESULT_H_
