// Deterministic endpoint-name interning.
//
// Everything inside the checker — gossip state, digests, ring ownership, KV
// replica sets, the transport seam — keys endpoints by EndpointId, a dense
// index handed out in interning order. Human-readable names ("node-17",
// "127.0.0.1:9042") exist only at the boundaries: the wire codec and JSON
// export call NameOf() when they need the string back. Because ids are
// assigned strictly by first-intern order (never by hash-table iteration),
// the name<->id mapping is identical across runs and at any --jobs, which
// keeps the byte-identical determinism contract intact.

#ifndef SCALECHECK_SRC_COMMON_INTERNER_H_
#define SCALECHECK_SRC_COMMON_INTERNER_H_

#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "src/common/types.h"

namespace scalecheck {

// The dense id. NodeId doubles as the interned endpoint id throughout the
// sim: the cluster builders intern names in node-id order, so the table
// index and the NodeId coincide by construction (CHECKed at build time).
using EndpointId = NodeId;

class EndpointInterner {
 public:
  // Returns the existing id, or assigns the next dense id (insertion order).
  EndpointId Intern(std::string_view name);

  // Returns true and sets *id if `name` was interned before.
  bool Lookup(std::string_view name, EndpointId* id) const;

  // Boundary-only reverse mapping (JSON export, wire debugging, logs).
  const std::string& NameOf(EndpointId id) const;

  size_t size() const { return names_.size(); }

  // Approximate heap footprint, for the profiler's intern_table_bytes.
  size_t ApproxBytes() const;

 private:
  std::vector<std::string> names_;                    // id -> name
  std::unordered_map<std::string, EndpointId> ids_;   // name -> id
};

}  // namespace scalecheck

#endif  // SCALECHECK_SRC_COMMON_INTERNER_H_
