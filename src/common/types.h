// Strong types shared across the ScaleCheck codebase.
//
// All simulated time is *virtual* time: a signed 64-bit count of nanoseconds
// since the start of a simulation run. Wrapping time and durations in distinct
// types prevents the classic simulator bug of mixing instants with intervals.

#ifndef SCALECHECK_SRC_COMMON_TYPES_H_
#define SCALECHECK_SRC_COMMON_TYPES_H_

#include <cstdint>
#include <iosfwd>
#include <limits>
#include <string>
#include <type_traits>

namespace scalecheck {

// A span of virtual time. Negative durations are representable (useful for
// lateness deltas) but most APIs require non-negative values.
class VirtualDuration {
 public:
  constexpr VirtualDuration() : ns_(0) {}

  static constexpr VirtualDuration Nanos(int64_t n) { return VirtualDuration(n); }
  static constexpr VirtualDuration Micros(int64_t n) { return VirtualDuration(n * 1000); }
  static constexpr VirtualDuration Millis(int64_t n) { return VirtualDuration(n * 1000000); }
  static constexpr VirtualDuration Seconds(int64_t n) { return VirtualDuration(n * 1000000000); }
  static constexpr VirtualDuration Minutes(int64_t n) { return Seconds(n * 60); }
  static VirtualDuration FromSecondsF(double s) {
    return VirtualDuration(static_cast<int64_t>(s * 1e9));
  }
  static constexpr VirtualDuration Max() {
    return VirtualDuration(std::numeric_limits<int64_t>::max());
  }
  static constexpr VirtualDuration Zero() { return VirtualDuration(0); }

  constexpr int64_t nanos() const { return ns_; }
  constexpr int64_t micros() const { return ns_ / 1000; }
  constexpr int64_t millis() const { return ns_ / 1000000; }
  constexpr double seconds() const { return static_cast<double>(ns_) / 1e9; }
  constexpr double minutes() const { return seconds() / 60.0; }

  constexpr bool IsZero() const { return ns_ == 0; }
  constexpr bool IsNegative() const { return ns_ < 0; }

  constexpr VirtualDuration operator+(VirtualDuration o) const {
    return VirtualDuration(ns_ + o.ns_);
  }
  constexpr VirtualDuration operator-(VirtualDuration o) const {
    return VirtualDuration(ns_ - o.ns_);
  }
  // Integral scaling stays exact; floating-point scaling rounds toward zero.
  // The template keeps `duration * 4` unambiguous against the double
  // overload.
  template <typename T, typename = std::enable_if_t<std::is_integral_v<T>>>
  constexpr VirtualDuration operator*(T k) const {
    return VirtualDuration(ns_ * static_cast<int64_t>(k));
  }
  VirtualDuration operator*(double k) const {
    return VirtualDuration(static_cast<int64_t>(static_cast<double>(ns_) * k));
  }
  constexpr VirtualDuration operator/(int64_t k) const { return VirtualDuration(ns_ / k); }
  constexpr double operator/(VirtualDuration o) const {
    return static_cast<double>(ns_) / static_cast<double>(o.ns_);
  }
  constexpr VirtualDuration operator-() const { return VirtualDuration(-ns_); }
  VirtualDuration& operator+=(VirtualDuration o) {
    ns_ += o.ns_;
    return *this;
  }
  VirtualDuration& operator-=(VirtualDuration o) {
    ns_ -= o.ns_;
    return *this;
  }

  constexpr auto operator<=>(const VirtualDuration&) const = default;

  // Renders as a human-friendly string, e.g. "1.500s", "250ms", "3.2us".
  std::string ToString() const;

 private:
  constexpr explicit VirtualDuration(int64_t ns) : ns_(ns) {}
  int64_t ns_;
};

// An instant in virtual time.
class VirtualTime {
 public:
  constexpr VirtualTime() : ns_(0) {}

  static constexpr VirtualTime FromNanos(int64_t n) { return VirtualTime(n); }
  static constexpr VirtualTime Zero() { return VirtualTime(0); }
  static constexpr VirtualTime Max() {
    return VirtualTime(std::numeric_limits<int64_t>::max());
  }

  constexpr int64_t nanos() const { return ns_; }
  constexpr double seconds() const { return static_cast<double>(ns_) / 1e9; }

  constexpr VirtualTime operator+(VirtualDuration d) const {
    return VirtualTime(ns_ + d.nanos());
  }
  constexpr VirtualTime operator-(VirtualDuration d) const {
    return VirtualTime(ns_ - d.nanos());
  }
  constexpr VirtualDuration operator-(VirtualTime o) const {
    return VirtualDuration::Nanos(ns_ - o.ns_);
  }
  VirtualTime& operator+=(VirtualDuration d) {
    ns_ += d.nanos();
    return *this;
  }

  constexpr auto operator<=>(const VirtualTime&) const = default;

  std::string ToString() const;

 private:
  constexpr explicit VirtualTime(int64_t ns) : ns_(ns) {}
  int64_t ns_;
};

std::ostream& operator<<(std::ostream& os, VirtualDuration d);
std::ostream& operator<<(std::ostream& os, VirtualTime t);

// Identifies a node (logical process) in the cluster under test.
using NodeId = int32_t;
inline constexpr NodeId kInvalidNode = -1;

// Identifies a simulated machine that hosts one or more nodes.
using MachineId = int32_t;

// Abstract CPU work, in units of "one cheap inner-loop operation". The CPU
// model converts work to virtual time via a core speed in units/second.
using WorkUnits = int64_t;

}  // namespace scalecheck

#endif  // SCALECHECK_SRC_COMMON_TYPES_H_
