// Small string utilities: printf-style formatting into std::string, joining,
// and table rendering used by bench/report binaries.

#ifndef SCALECHECK_SRC_COMMON_STRINGS_H_
#define SCALECHECK_SRC_COMMON_STRINGS_H_

#include <cstdarg>
#include <string>
#include <vector>

namespace scalecheck {

// snprintf into a std::string. GCC 12 lacks <format>, so this is the
// formatting workhorse for reports and logs.
[[gnu::format(printf, 1, 2)]] std::string StrFormat(const char* fmt, ...);
std::string StrFormatV(const char* fmt, va_list args);

std::string Join(const std::vector<std::string>& parts, const std::string& sep);

// Renders rows as a fixed-width ASCII table with a header row; every row must
// have the same number of columns as the header.
std::string RenderTable(const std::vector<std::string>& header,
                        const std::vector<std::vector<std::string>>& rows);

// Human-readable quantities used in reports.
std::string HumanCount(double value);  // e.g. 12.3k, 4.5M
std::string HumanBytes(int64_t bytes);

}  // namespace scalecheck

#endif  // SCALECHECK_SRC_COMMON_STRINGS_H_
