// Small string utilities: printf-style formatting into std::string, joining,
// and table rendering used by bench/report binaries.

#ifndef SCALECHECK_SRC_COMMON_STRINGS_H_
#define SCALECHECK_SRC_COMMON_STRINGS_H_

#include <cstdarg>
#include <cstdint>
#include <string>
#include <vector>

namespace scalecheck {

// snprintf into a std::string. GCC 12 lacks <format>, so this is the
// formatting workhorse for reports and logs.
[[gnu::format(printf, 1, 2)]] std::string StrFormat(const char* fmt, ...);
std::string StrFormatV(const char* fmt, va_list args);

std::string Join(const std::vector<std::string>& parts, const std::string& sep);

// Renders rows as a fixed-width ASCII table with a header row; every row must
// have the same number of columns as the header.
std::string RenderTable(const std::vector<std::string>& header,
                        const std::vector<std::vector<std::string>>& rows);

// Human-readable quantities used in reports.
std::string HumanCount(double value);  // e.g. 12.3k, 4.5M
std::string HumanBytes(int64_t bytes);

// JSON string escaping (quotes, backslashes, control characters).
std::string JsonEscape(const std::string& s);

// A minimal streaming JSON writer for machine-readable reports. Output is
// deterministic: keys are emitted in call order and doubles use a fixed
// round-trippable format ("%.17g"), so identical values serialize to
// identical bytes (the ExperimentSuite determinism contract leans on this).
class JsonWriter {
 public:
  JsonWriter& BeginObject();
  JsonWriter& EndObject();
  JsonWriter& BeginArray();
  JsonWriter& EndArray();
  JsonWriter& Key(const std::string& key);

  JsonWriter& String(const std::string& value);
  JsonWriter& Int(int64_t value);
  JsonWriter& UInt(uint64_t value);
  JsonWriter& Double(double value);
  JsonWriter& Bool(bool value);

  // Shorthand for Key(key).<value>(...).
  JsonWriter& Field(const std::string& key, const std::string& value);
  JsonWriter& Field(const std::string& key, const char* value);
  JsonWriter& Field(const std::string& key, int64_t value);
  JsonWriter& Field(const std::string& key, uint64_t value);
  JsonWriter& Field(const std::string& key, int value);
  JsonWriter& Field(const std::string& key, double value);
  JsonWriter& Field(const std::string& key, bool value);

  const std::string& str() const { return out_; }

 private:
  void BeforeValue();

  std::string out_;
  // One entry per open container: true until the first element is written.
  std::vector<bool> first_in_scope_;
  bool pending_key_ = false;
};

}  // namespace scalecheck

#endif  // SCALECHECK_SRC_COMMON_STRINGS_H_
