#include "src/common/result.h"

#include "src/common/strings.h"

namespace scalecheck {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case StatusCode::kNotFound:
      return "NOT_FOUND";
    case StatusCode::kIoError:
      return "IO_ERROR";
    case StatusCode::kCorruptData:
      return "CORRUPT_DATA";
    case StatusCode::kFailedPrecondition:
      return "FAILED_PRECONDITION";
    case StatusCode::kTruncated:
      return "TRUNCATED";
    case StatusCode::kVersionSkew:
      return "VERSION_SKEW";
  }
  return "?";
}

std::string Status::ToString() const {
  if (ok()) {
    return "OK";
  }
  return StrFormat("%s: %s", StatusCodeName(code_), message_.c_str());
}

}  // namespace scalecheck
