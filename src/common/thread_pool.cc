#include "src/common/thread_pool.h"

#include <utility>

#include "src/common/check.h"

namespace scalecheck {

int ThreadPool::DefaultJobs() {
  unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

ThreadPool::ThreadPool(int num_threads) {
  if (num_threads <= 0) {
    num_threads = DefaultJobs();
  }
  workers_.reserve(static_cast<size_t>(num_threads));
  for (int i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  WaitIdle();
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& worker : workers_) {
    worker.join();
  }
}

void ThreadPool::Submit(std::function<void()> task) {
  CHECK(task != nullptr) << "ThreadPool::Submit requires a callable task";
  {
    std::lock_guard<std::mutex> lock(mu_);
    CHECK(!shutdown_) << "Submit after ThreadPool shutdown";
    queue_.push_back(std::move(task));
  }
  work_cv_.notify_one();
}

void ThreadPool::WaitIdle() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) {
        return;  // shutdown with a drained queue
      }
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mu_);
      --active_;
      if (queue_.empty() && active_ == 0) {
        idle_cv_.notify_all();
      }
    }
  }
}

}  // namespace scalecheck
