// Small-buffer-optimized move-only callable for simulator events and
// substrate timers (src/transport/substrate.h). Lives in common/ so the
// transport seam can use it without depending on the simulator.
//
// Every scheduled event used to carry a std::function<void()>, which
// heap-allocates for any capture beyond ~16 bytes and requires the callable
// to be copyable. EventFn stores up to kInlineBytes of capture state inline
// (enough for every hot callback in the tree, including the network-delivery
// closure that carries a whole Message), falls back to the heap only for
// oversized or throwing-move callables, and is move-only — so event callbacks
// may own move-only resources, and by construction are never copied between
// scheduling and execution.

#ifndef SCALECHECK_SRC_COMMON_EVENT_FN_H_
#define SCALECHECK_SRC_COMMON_EVENT_FN_H_

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace scalecheck {

class EventFn {
 public:
  // Sized to hold the network-delivery closure (a Message plus the model
  // pointer) without touching the heap. Callables larger than this — or with
  // throwing moves — are boxed.
  static constexpr size_t kInlineBytes = 64;

  EventFn() noexcept = default;

  template <typename F, typename D = std::decay_t<F>,
            typename = std::enable_if_t<!std::is_same_v<D, EventFn> &&
                                        std::is_invocable_r_v<void, D&>>>
  EventFn(F&& fn) {  // NOLINT(google-explicit-constructor)
    if constexpr (sizeof(D) <= kInlineBytes &&
                  alignof(D) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<D>) {
      ::new (static_cast<void*>(storage_)) D(std::forward<F>(fn));
      ops_ = InlineOps<D>();
    } else {
      *reinterpret_cast<D**>(static_cast<void*>(storage_)) =
          new D(std::forward<F>(fn));
      ops_ = HeapOps<D>();
    }
  }

  EventFn(EventFn&& other) noexcept { MoveFrom(&other); }
  EventFn& operator=(EventFn&& other) noexcept {
    if (this != &other) {
      Reset();
      MoveFrom(&other);
    }
    return *this;
  }
  EventFn(const EventFn&) = delete;
  EventFn& operator=(const EventFn&) = delete;
  ~EventFn() { Reset(); }

  void operator()() { ops_->invoke(storage_); }

  explicit operator bool() const noexcept { return ops_ != nullptr; }

  // Destroys the held callable — and everything it captures — immediately.
  void Reset() noexcept {
    if (ops_ != nullptr) {
      ops_->destroy(storage_);
      ops_ = nullptr;
    }
  }

  // True when the callable lives in the inline buffer (or the fn is empty);
  // exposed so tests can pin down which captures stay allocation-free.
  bool is_inline() const noexcept {
    return ops_ == nullptr || ops_->inline_stored;
  }

 private:
  struct Ops {
    void (*invoke)(void* storage);
    // Move-constructs into `to` from `from` and destroys the source.
    void (*relocate)(void* from, void* to) noexcept;
    void (*destroy)(void* storage) noexcept;
    bool inline_stored;
  };

  template <typename D>
  static const Ops* InlineOps() {
    static constexpr Ops ops = {
        [](void* s) { (*static_cast<D*>(s))(); },
        [](void* from, void* to) noexcept {
          D* src = static_cast<D*>(from);
          ::new (to) D(std::move(*src));
          src->~D();
        },
        [](void* s) noexcept { static_cast<D*>(s)->~D(); },
        true,
    };
    return &ops;
  }

  template <typename D>
  static const Ops* HeapOps() {
    static constexpr Ops ops = {
        [](void* s) { (**static_cast<D**>(s))(); },
        [](void* from, void* to) noexcept {
          *static_cast<D**>(to) = *static_cast<D**>(from);
        },
        [](void* s) noexcept { delete *static_cast<D**>(s); },
        false,
    };
    return &ops;
  }

  void MoveFrom(EventFn* other) noexcept {
    ops_ = other->ops_;
    if (ops_ != nullptr) {
      ops_->relocate(other->storage_, storage_);
      other->ops_ = nullptr;
    }
  }

  alignas(std::max_align_t) unsigned char storage_[kInlineBytes];
  const Ops* ops_ = nullptr;
};

}  // namespace scalecheck

#endif  // SCALECHECK_SRC_COMMON_EVENT_FN_H_
