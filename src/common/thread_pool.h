// A reusable fixed-size worker pool for host-parallel harness work.
//
// This pool parallelizes the HARNESS (independent simulation runs, cache
// warming, suite grids), never the simulation itself: each Simulator stays
// single-threaded and deterministic, and virtual time is unaffected by how
// many host threads execute runs (DESIGN.md §3).
//
// Semantics:
//   - Submit() enqueues a task; workers execute tasks in FIFO submission
//     order (with one worker this degenerates to strict serial execution).
//   - Tasks may Submit() further tasks (the ExperimentSuite DAG executor
//     schedules dependents from inside completing tasks).
//   - WaitIdle() blocks until the queue is empty AND no task is running.
//   - The destructor waits for already-submitted tasks to finish, then joins.

#ifndef SCALECHECK_SRC_COMMON_THREAD_POOL_H_
#define SCALECHECK_SRC_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace scalecheck {

class ThreadPool {
 public:
  // num_threads <= 0 selects DefaultJobs().
  explicit ThreadPool(int num_threads);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  void Submit(std::function<void()> task);
  void WaitIdle();

  int num_threads() const { return static_cast<int>(workers_.size()); }

  // Host hardware concurrency, clamped to at least 1.
  static int DefaultJobs();

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable work_cv_;   // workers wait for tasks / shutdown
  std::condition_variable idle_cv_;   // WaitIdle / destructor wait for drain
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  int active_ = 0;
  bool shutdown_ = false;
};

}  // namespace scalecheck

#endif  // SCALECHECK_SRC_COMMON_THREAD_POOL_H_
