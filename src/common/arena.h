// Bump-pointer arena for per-node gossip/ring scratch.
//
// The point is accounting as much as speed: every block the arena grabs is
// reported through a grow hook, so cluster::Node can charge the bytes to
// MemoryModel under a "gossip-arena" tag and FidelityGuard's memory verdict
// at N=2048 reflects what the scratch structures actually hold, instead of
// an estimate that drifts as caches grow. Allocation order is deterministic
// (it follows the deterministic event order), so the charges are too.
//
// The arena never frees individual allocations; containers that grow through
// ArenaAllocator abandon their old buffer inside the arena. That waste is
// bounded (geometric growth => at most ~2x the peak live size) and honest:
// it is exactly the high-water footprint a real Cassandra-style daemon pays
// for its gossip caches.

#ifndef SCALECHECK_SRC_COMMON_ARENA_H_
#define SCALECHECK_SRC_COMMON_ARENA_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

namespace scalecheck {

class Arena {
 public:
  using GrowHook = std::function<void(size_t block_bytes)>;

  explicit Arena(size_t initial_block_bytes = 4096)
      : next_block_bytes_(initial_block_bytes) {}

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  void* Allocate(size_t bytes, size_t align) {
    if (bytes == 0) {
      bytes = 1;
    }
    if (!blocks_.empty()) {
      Block& b = blocks_.back();
      size_t aligned = (b.used + align - 1) & ~(align - 1);
      if (aligned + bytes <= b.size) {
        b.used = aligned + bytes;
        bytes_used_ += bytes;
        return b.data.get() + aligned;
      }
    }
    size_t block_bytes = next_block_bytes_;
    while (block_bytes < bytes + align) {
      block_bytes *= 2;
    }
    next_block_bytes_ = block_bytes * 2;
    blocks_.push_back(Block{std::unique_ptr<char[]>(new char[block_bytes]),
                            block_bytes, 0});
    bytes_reserved_ += block_bytes;
    if (grow_hook_) {
      grow_hook_(block_bytes);
    }
    Block& b = blocks_.back();
    size_t aligned = (b.used + align - 1) & ~(align - 1);
    b.used = aligned + bytes;
    bytes_used_ += bytes;
    return b.data.get() + aligned;
  }

  // Total bytes grabbed from the host (what MemoryModel should charge).
  size_t bytes_reserved() const { return bytes_reserved_; }
  // Bytes handed out to callers (live + abandoned), for introspection.
  size_t bytes_used() const { return bytes_used_; }

  // Called with the size of each newly grabbed block, at the moment of
  // growth. Replaces any previous hook.
  void SetGrowHook(GrowHook hook) { grow_hook_ = std::move(hook); }

 private:
  struct Block {
    std::unique_ptr<char[]> data;
    size_t size;
    size_t used;
  };

  std::vector<Block> blocks_;
  size_t next_block_bytes_;
  size_t bytes_reserved_ = 0;
  size_t bytes_used_ = 0;
  GrowHook grow_hook_;
};

// Minimal STL allocator over an Arena. Deallocate is a no-op; equality is
// per-arena so containers sharing an arena can swap storage.
template <typename T>
class ArenaAllocator {
 public:
  using value_type = T;

  explicit ArenaAllocator(Arena* arena) : arena_(arena) {}
  template <typename U>
  ArenaAllocator(const ArenaAllocator<U>& other) : arena_(other.arena()) {}

  T* allocate(size_t n) {
    return static_cast<T*>(arena_->Allocate(n * sizeof(T), alignof(T)));
  }
  void deallocate(T*, size_t) {}

  Arena* arena() const { return arena_; }

  bool operator==(const ArenaAllocator& other) const {
    return arena_ == other.arena_;
  }
  bool operator!=(const ArenaAllocator& other) const {
    return arena_ != other.arena_;
  }

 private:
  Arena* arena_;
};

template <typename T>
using ArenaVector = std::vector<T, ArenaAllocator<T>>;

}  // namespace scalecheck

#endif  // SCALECHECK_SRC_COMMON_ARENA_H_
