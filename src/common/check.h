// Fatal-assertion macros in the style of Google's CHECK family.
//
// CHECK* macros are always on; DCHECK* compile away in NDEBUG builds. A failed
// check prints the condition, file:line, and an optional streamed message, then
// aborts. Simulator invariants (time monotonicity, conservation of work) are
// enforced with these rather than exceptions.

#ifndef SCALECHECK_SRC_COMMON_CHECK_H_
#define SCALECHECK_SRC_COMMON_CHECK_H_

#include <cstdlib>
#include <iostream>
#include <sstream>

namespace scalecheck {
namespace internal {

// Accumulates a failure message and aborts on destruction.
class CheckFailure {
 public:
  CheckFailure(const char* file, int line, const char* condition) {
    stream_ << "CHECK failed at " << file << ":" << line << ": " << condition;
  }

  [[noreturn]] ~CheckFailure() {
    std::cerr << stream_.str() << std::endl;
    std::abort();
  }

  template <typename T>
  CheckFailure& operator<<(const T& v) {
    stream_ << " " << v;
    return *this;
  }

 private:
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace scalecheck

#define SCALECHECK_PREDICT_TRUE(x) (__builtin_expect(!!(x), 1))

#define CHECK(cond)                 \
  if (SCALECHECK_PREDICT_TRUE(cond)) { \
  } else /* NOLINT */               \
    ::scalecheck::internal::CheckFailure(__FILE__, __LINE__, #cond)

#define CHECK_EQ(a, b) CHECK((a) == (b)) << "(" << (a) << " vs " << (b) << ")"
#define CHECK_NE(a, b) CHECK((a) != (b)) << "(" << (a) << " vs " << (b) << ")"
#define CHECK_LT(a, b) CHECK((a) < (b)) << "(" << (a) << " vs " << (b) << ")"
#define CHECK_LE(a, b) CHECK((a) <= (b)) << "(" << (a) << " vs " << (b) << ")"
#define CHECK_GT(a, b) CHECK((a) > (b)) << "(" << (a) << " vs " << (b) << ")"
#define CHECK_GE(a, b) CHECK((a) >= (b)) << "(" << (a) << " vs " << (b) << ")"
#define CHECK_NOTNULL(p) CHECK((p) != nullptr)

#ifdef NDEBUG
#define DCHECK(cond) CHECK(true || (cond))
#define DCHECK_EQ(a, b) DCHECK((a) == (b))
#define DCHECK_NE(a, b) DCHECK((a) != (b))
#define DCHECK_LT(a, b) DCHECK((a) < (b))
#define DCHECK_LE(a, b) DCHECK((a) <= (b))
#define DCHECK_GT(a, b) DCHECK((a) > (b))
#define DCHECK_GE(a, b) DCHECK((a) >= (b))
#else
#define DCHECK(cond) CHECK(cond)
#define DCHECK_EQ(a, b) CHECK_EQ(a, b)
#define DCHECK_NE(a, b) CHECK_NE(a, b)
#define DCHECK_LT(a, b) CHECK_LT(a, b)
#define DCHECK_LE(a, b) CHECK_LE(a, b)
#define DCHECK_GT(a, b) CHECK_GT(a, b)
#define DCHECK_GE(a, b) CHECK_GE(a, b)
#endif

#endif  // SCALECHECK_SRC_COMMON_CHECK_H_
