#include "src/common/interner.h"

#include "src/common/check.h"

namespace scalecheck {

EndpointId EndpointInterner::Intern(std::string_view name) {
  auto it = ids_.find(std::string(name));
  if (it != ids_.end()) {
    return it->second;
  }
  EndpointId id = static_cast<EndpointId>(names_.size());
  names_.emplace_back(name);
  ids_.emplace(names_.back(), id);
  return id;
}

bool EndpointInterner::Lookup(std::string_view name, EndpointId* id) const {
  auto it = ids_.find(std::string(name));
  if (it == ids_.end()) {
    return false;
  }
  *id = it->second;
  return true;
}

const std::string& EndpointInterner::NameOf(EndpointId id) const {
  CHECK_GE(id, 0);
  CHECK_LT(static_cast<size_t>(id), names_.size());
  return names_[static_cast<size_t>(id)];
}

size_t EndpointInterner::ApproxBytes() const {
  size_t bytes = names_.capacity() * sizeof(std::string) +
                 ids_.size() * (sizeof(std::string) + sizeof(EndpointId) + 16);
  for (const std::string& name : names_) {
    bytes += name.capacity();
  }
  return bytes;
}

}  // namespace scalecheck
