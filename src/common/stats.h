// Streaming statistics and a log-bucketed histogram for latency/lateness
// distributions. Percentiles are approximate (bucket upper bound), which is
// adequate for the colocation-limit lateness metric.

#ifndef SCALECHECK_SRC_COMMON_STATS_H_
#define SCALECHECK_SRC_COMMON_STATS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/types.h"

namespace scalecheck {

// Welford-style running mean/variance with min/max.
class RunningStat {
 public:
  void Add(double x);
  void Merge(const RunningStat& other);

  int64_t count() const { return count_; }
  double mean() const { return count_ > 0 ? mean_ : 0.0; }
  double variance() const;
  double stddev() const;
  double min() const { return count_ > 0 ? min_ : 0.0; }
  double max() const { return count_ > 0 ? max_ : 0.0; }
  double sum() const { return sum_; }

 private:
  int64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

// Histogram over non-negative values with geometrically growing buckets.
// Bucket i covers [base * growth^(i-1), base * growth^i); bucket 0 covers
// [0, base).
class LogHistogram {
 public:
  // base: upper bound of the first bucket; growth: bucket width ratio (> 1).
  explicit LogHistogram(double base = 1e3, double growth = 1.5, int num_buckets = 96);

  void Add(double value);
  void AddDuration(VirtualDuration d) { Add(static_cast<double>(d.nanos())); }

  int64_t count() const { return count_; }
  // Approximate percentile (p in [0, 100]); returns a bucket upper bound.
  double Percentile(double p) const;
  VirtualDuration PercentileDuration(double p) const {
    return VirtualDuration::Nanos(static_cast<int64_t>(Percentile(p)));
  }
  double mean() const { return count_ > 0 ? sum_ / static_cast<double>(count_) : 0.0; }
  double max_value() const { return max_; }

  std::string Summary() const;

 private:
  double BucketUpperBound(size_t i) const;

  double base_;
  double growth_;
  std::vector<int64_t> buckets_;
  int64_t count_ = 0;
  double sum_ = 0.0;
  double max_ = 0.0;
};

}  // namespace scalecheck

#endif  // SCALECHECK_SRC_COMMON_STATS_H_
