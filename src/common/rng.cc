#include "src/common/rng.h"

#include <cmath>

namespace scalecheck {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

namespace {
inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) {
    s = SplitMix64(&sm);
  }
  // xoshiro's all-zero state is degenerate; SplitMix64 cannot produce four
  // zeros from any seed, but guard anyway.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) {
    s_[0] = 1;
  }
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  CHECK_LE(lo, hi);
  uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  if (span == 0) {
    // Full 64-bit range.
    return static_cast<int64_t>(Next());
  }
  // Rejection sampling to avoid modulo bias.
  uint64_t limit = UINT64_MAX - UINT64_MAX % span;
  uint64_t r = Next();
  while (r >= limit) {
    r = Next();
  }
  return lo + static_cast<int64_t>(r % span);
}

double Rng::UniformDouble() {
  // 53 random bits into [0, 1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Rng::UniformDouble(double lo, double hi) {
  return lo + (hi - lo) * UniformDouble();
}

double Rng::Exponential(double mean) {
  CHECK_GT(mean, 0.0);
  double u = UniformDouble();
  // Guard log(0).
  if (u <= 0.0) {
    u = 0x1.0p-53;
  }
  return -mean * std::log(1.0 - u);
}

double Rng::Normal(double mean, double stddev) {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return mean + stddev * cached_normal_;
  }
  double u1 = UniformDouble();
  double u2 = UniformDouble();
  if (u1 <= 0.0) {
    u1 = 0x1.0p-53;
  }
  double r = std::sqrt(-2.0 * std::log(u1));
  double theta = 2.0 * M_PI * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return mean + stddev * r * std::cos(theta);
}

bool Rng::Bernoulli(double p) { return UniformDouble() < p; }

Rng Rng::Fork() { return Rng(Next() ^ 0xa5a5a5a55a5a5a5aULL); }

}  // namespace scalecheck
