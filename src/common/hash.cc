#include "src/common/hash.h"

#include <cstring>

#include "src/common/strings.h"

namespace scalecheck {

namespace {
constexpr uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
constexpr uint64_t kFnvPrime = 0x100000001b3ULL;
// A second, independent offset basis for the hi stream (digits of pi).
constexpr uint64_t kFnvOffset2 = 0x243f6a8885a308d3ULL;

inline uint64_t FnvStep(uint64_t h, uint8_t byte) {
  return (h ^ byte) * kFnvPrime;
}
}  // namespace

uint64_t Fnv1a64(const void* data, size_t len) {
  const auto* p = static_cast<const uint8_t*>(data);
  uint64_t h = kFnvOffset;
  for (size_t i = 0; i < len; ++i) {
    h = FnvStep(h, p[i]);
  }
  return h;
}

uint64_t Fnv1a64(std::string_view s) { return Fnv1a64(s.data(), s.size()); }

namespace {
// Table-driven CRC-32 (reflected 0xEDB88320). The table is built once at
// first use; entry i is the CRC of the single byte i.
const uint32_t* Crc32Table() {
  static const uint32_t* table = [] {
    static uint32_t t[256];
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
      }
      t[i] = c;
    }
    return t;
  }();
  return table;
}
}  // namespace

uint32_t Crc32(const void* data, size_t len, uint32_t seed) {
  const uint32_t* table = Crc32Table();
  const auto* p = static_cast<const uint8_t*>(data);
  uint32_t c = seed ^ 0xFFFFFFFFu;
  for (size_t i = 0; i < len; ++i) {
    c = table[(c ^ p[i]) & 0xFF] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

uint64_t Mix64(uint64_t x) {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ULL;
  x ^= x >> 33;
  return x;
}

uint64_t HashCombine(uint64_t a, uint64_t b) {
  return Mix64(a ^ (b + 0x9e3779b97f4a7c15ULL + (a << 6) + (a >> 2)));
}

std::string DigestValue::ToHex() const {
  return StrFormat("%016llx%016llx", static_cast<unsigned long long>(hi),
                   static_cast<unsigned long long>(lo));
}

Digest::Digest() : lo_(kFnvOffset), hi_(kFnvOffset2) {}

void Digest::Absorb(uint8_t tag, const void* data, size_t len) {
  lo_ = FnvStep(lo_, tag);
  hi_ = FnvStep(hi_, static_cast<uint8_t>(tag ^ 0xff));
  const auto* p = static_cast<const uint8_t*>(data);
  for (size_t i = 0; i < len; ++i) {
    lo_ = FnvStep(lo_, p[i]);
    hi_ = FnvStep(hi_, static_cast<uint8_t>(p[i] ^ 0x5a));
  }
}

Digest& Digest::AddBytes(const void* data, size_t len) {
  uint64_t n = len;
  Absorb(1, &n, sizeof(n));
  Absorb(2, data, len);
  return *this;
}

Digest& Digest::Add(int64_t v) {
  Absorb(3, &v, sizeof(v));
  return *this;
}

Digest& Digest::Add(uint64_t v) {
  Absorb(4, &v, sizeof(v));
  return *this;
}

Digest& Digest::Add(double v) {
  // Normalize -0.0 to 0.0 so semantically equal inputs hash equal.
  if (v == 0.0) {
    v = 0.0;
  }
  Absorb(5, &v, sizeof(v));
  return *this;
}

Digest& Digest::Add(bool v) {
  uint8_t b = v ? 1 : 0;
  Absorb(6, &b, sizeof(b));
  return *this;
}

Digest& Digest::Add(std::string_view s) {
  uint64_t n = s.size();
  Absorb(7, &n, sizeof(n));
  Absorb(8, s.data(), s.size());
  return *this;
}

DigestValue Digest::Finish() const {
  DigestValue v;
  v.lo = Mix64(lo_);
  v.hi = Mix64(hi_ ^ lo_);
  return v;
}

}  // namespace scalecheck
