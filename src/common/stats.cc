#include "src/common/stats.h"

#include <algorithm>
#include <cmath>

#include "src/common/check.h"
#include "src/common/strings.h"

namespace scalecheck {

void RunningStat::Add(double x) {
  if (count_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  sum_ += x;
  double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

void RunningStat::Merge(const RunningStat& other) {
  if (other.count_ == 0) {
    return;
  }
  if (count_ == 0) {
    *this = other;
    return;
  }
  double delta = other.mean_ - mean_;
  int64_t n = count_ + other.count_;
  double na = static_cast<double>(count_);
  double nb = static_cast<double>(other.count_);
  mean_ += delta * nb / static_cast<double>(n);
  m2_ += other.m2_ + delta * delta * na * nb / static_cast<double>(n);
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  sum_ += other.sum_;
  count_ = n;
}

double RunningStat::variance() const {
  return count_ > 1 ? m2_ / static_cast<double>(count_ - 1) : 0.0;
}

double RunningStat::stddev() const { return std::sqrt(variance()); }

LogHistogram::LogHistogram(double base, double growth, int num_buckets)
    : base_(base), growth_(growth), buckets_(static_cast<size_t>(num_buckets), 0) {
  CHECK_GT(base, 0.0);
  CHECK_GT(growth, 1.0);
  CHECK_GT(num_buckets, 1);
}

void LogHistogram::Add(double value) {
  CHECK_GE(value, 0.0);
  size_t idx = 0;
  if (value >= base_) {
    idx = 1 + static_cast<size_t>(std::log(value / base_) / std::log(growth_));
    idx = std::min(idx, buckets_.size() - 1);
  }
  ++buckets_[idx];
  ++count_;
  sum_ += value;
  max_ = std::max(max_, value);
}

double LogHistogram::BucketUpperBound(size_t i) const {
  if (i == 0) {
    return base_;
  }
  return base_ * std::pow(growth_, static_cast<double>(i));
}

double LogHistogram::Percentile(double p) const {
  CHECK_GE(p, 0.0);
  CHECK_LE(p, 100.0);
  if (count_ == 0) {
    return 0.0;
  }
  int64_t target = static_cast<int64_t>(std::ceil(p / 100.0 * static_cast<double>(count_)));
  target = std::max<int64_t>(target, 1);
  int64_t seen = 0;
  for (size_t i = 0; i < buckets_.size(); ++i) {
    seen += buckets_[i];
    if (seen >= target) {
      return std::min(BucketUpperBound(i), max_);
    }
  }
  return max_;
}

std::string LogHistogram::Summary() const {
  return StrFormat("n=%lld mean=%.3g p50=%.3g p99=%.3g max=%.3g",
                   static_cast<long long>(count_), mean(), Percentile(50),
                   Percentile(99), max_);
}

}  // namespace scalecheck
