// Minimal leveled logger. Logging is off by default (benchmarks and tests stay
// quiet); examples enable kInfo. The logger is process-global and thread-safe:
// each simulator stays single-threaded, but the ExperimentSuite runs many
// simulations on host threads concurrently, so the level is atomic and
// messages are emitted whole (no interleaving mid-line).

#ifndef SCALECHECK_SRC_COMMON_LOGGING_H_
#define SCALECHECK_SRC_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace scalecheck {

enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarning = 2,
  kError = 3,
  kOff = 4,
};

// Returns/sets the minimum level that is emitted to stderr.
LogLevel GetLogLevel();
void SetLogLevel(LogLevel level);

namespace internal {

class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  template <typename T>
  LogMessage& operator<<(const T& v) {
    if (enabled_) {
      stream_ << v;
    }
    return *this;
  }

 private:
  bool enabled_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace scalecheck

#define SC_LOG(level)                                                        \
  ::scalecheck::internal::LogMessage(::scalecheck::LogLevel::k##level, __FILE__, \
                                     __LINE__)

#endif  // SCALECHECK_SRC_COMMON_LOGGING_H_
