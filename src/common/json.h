// A minimal strict JSON parser: the read-side counterpart of JsonWriter.
//
// Repro artifacts and serialized FaultPlans must round-trip exactly, so the
// parser is strict where it matters for determinism: no trailing garbage, no
// duplicate object keys, integers that fit int64 are preserved exactly (a
// nanosecond timestamp must not pass through a double), and malformed input
// yields Status errors rather than best-effort values. It is not a general
// JSON library — no comments, no NaN/Infinity, UTF-8 passes through opaquely
// (escapes \uXXXX are decoded for the BMP only, surrogate pairs included).

#ifndef SCALECHECK_SRC_COMMON_JSON_H_
#define SCALECHECK_SRC_COMMON_JSON_H_

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/common/result.h"

namespace scalecheck {

class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  JsonValue() : kind_(Kind::kNull) {}

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  // True for numbers written without '.', 'e' that fit in int64.
  bool is_int() const { return kind_ == Kind::kNumber && int_exact_; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_object() const { return kind_ == Kind::kObject; }

  // Accessors CHECK on kind mismatch: callers validate kind first (or use
  // the Get*() helpers below, which return Status instead).
  bool AsBool() const;
  int64_t AsInt() const;      // requires is_int()
  double AsDouble() const;    // any number
  const std::string& AsString() const;
  const std::vector<JsonValue>& AsArray() const;
  // Objects preserve insertion order (JsonWriter emits in call order, and
  // byte-exact round-trips need the original order back).
  const std::vector<std::pair<std::string, JsonValue>>& AsObject() const;

  // Object member lookup; nullptr when absent (or not an object).
  const JsonValue* Find(const std::string& key) const;

  // Typed member access with Status errors, for strict parsers: missing key,
  // wrong kind, and (for ints) non-exact numbers are all kInvalidArgument.
  // `where` names the enclosing structure for error messages.
  Result<bool> GetBool(const std::string& key, const std::string& where) const;
  Result<int64_t> GetInt(const std::string& key, const std::string& where) const;
  Result<double> GetDouble(const std::string& key, const std::string& where) const;
  Result<std::string> GetString(const std::string& key,
                                const std::string& where) const;

  static JsonValue MakeNull() { return JsonValue(); }
  static JsonValue MakeBool(bool b);
  static JsonValue MakeInt(int64_t v);
  static JsonValue MakeDouble(double v);
  static JsonValue MakeString(std::string s);
  static JsonValue MakeArray(std::vector<JsonValue> items);
  static JsonValue MakeObject(std::vector<std::pair<std::string, JsonValue>> m);

 private:
  Kind kind_;
  bool bool_ = false;
  bool int_exact_ = false;
  int64_t int_ = 0;
  double double_ = 0.0;
  std::string string_;
  std::vector<JsonValue> array_;
  std::vector<std::pair<std::string, JsonValue>> object_;
};

// Parses one JSON document. Errors: kTruncated when the input is a proper
// prefix of a valid document (ran out of bytes mid-structure), otherwise
// kInvalidArgument with a byte offset in the message. Trailing non-whitespace
// after the document is rejected. Duplicate keys within one object are
// rejected (a round-tripped artifact can never legitimately contain them).
Result<JsonValue> ParseJson(const std::string& text);

}  // namespace scalecheck

#endif  // SCALECHECK_SRC_COMMON_JSON_H_
