#include "src/common/logging.h"

#include <atomic>
#include <iostream>
#include <mutex>

namespace scalecheck {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarning};

// Serializes emission so host-parallel harness threads cannot interleave
// characters of two messages.
std::mutex& EmitMutex() {
  static std::mutex mu;
  return mu;
}

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarning:
      return "W";
    case LogLevel::kError:
      return "E";
    case LogLevel::kOff:
      return "?";
  }
  return "?";
}
}  // namespace

LogLevel GetLogLevel() { return g_level.load(std::memory_order_relaxed); }
void SetLogLevel(LogLevel level) { g_level.store(level, std::memory_order_relaxed); }

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : enabled_(static_cast<int>(level) >= static_cast<int>(GetLogLevel())) {
  if (enabled_) {
    const char* base = file;
    for (const char* p = file; *p != '\0'; ++p) {
      if (*p == '/') {
        base = p + 1;
      }
    }
    stream_ << "[" << LevelName(level) << " " << base << ":" << line << "] ";
  }
}

LogMessage::~LogMessage() {
  if (enabled_) {
    std::lock_guard<std::mutex> lock(EmitMutex());
    std::cerr << stream_.str() << "\n";
  }
}

}  // namespace internal
}  // namespace scalecheck
