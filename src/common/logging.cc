#include "src/common/logging.h"

#include <iostream>

namespace scalecheck {

namespace {
LogLevel g_level = LogLevel::kWarning;

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarning:
      return "W";
    case LogLevel::kError:
      return "E";
    case LogLevel::kOff:
      return "?";
  }
  return "?";
}
}  // namespace

LogLevel GetLogLevel() { return g_level; }
void SetLogLevel(LogLevel level) { g_level = level; }

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : enabled_(static_cast<int>(level) >= static_cast<int>(g_level)) {
  if (enabled_) {
    const char* base = file;
    for (const char* p = file; *p != '\0'; ++p) {
      if (*p == '/') {
        base = p + 1;
      }
    }
    stream_ << "[" << LevelName(level) << " " << base << ":" << line << "] ";
  }
}

LogMessage::~LogMessage() {
  if (enabled_) {
    std::cerr << stream_.str() << "\n";
  }
}

}  // namespace internal
}  // namespace scalecheck
