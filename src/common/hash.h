// Hashing utilities.
//
// Digest is the content-addressing primitive of the PIL memoization store: a
// 128-bit incremental hash over typed fields. It must be (a) deterministic
// across runs, (b) cheap, and (c) collision-resistant enough that distinct
// calculator inputs virtually never collide in a memoization database of a few
// million entries. Two independent FNV-1a streams with different offsets give
// an effective 128-bit state.

#ifndef SCALECHECK_SRC_COMMON_HASH_H_
#define SCALECHECK_SRC_COMMON_HASH_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace scalecheck {

// One-shot FNV-1a over bytes.
uint64_t Fnv1a64(const void* data, size_t len);
uint64_t Fnv1a64(std::string_view s);

// CRC-32 (IEEE 802.3 polynomial, reflected). Used as the integrity check on
// the on-disk MemoStore format: unlike the content digests above it detects
// *every* single-bit flip and all burst errors up to 32 bits, which is the
// property the corruption-fuzz tests rely on. `seed` allows chaining.
uint32_t Crc32(const void* data, size_t len, uint32_t seed = 0);

// 64-bit avalanche mixer (MurmurHash3 finalizer).
uint64_t Mix64(uint64_t x);

// Order-dependent combination of two hash values.
uint64_t HashCombine(uint64_t a, uint64_t b);

// The 128-bit value produced by Digest.
struct DigestValue {
  uint64_t lo = 0;
  uint64_t hi = 0;

  bool operator==(const DigestValue&) const = default;
  auto operator<=>(const DigestValue&) const = default;
  std::string ToHex() const;
};

struct DigestValueHash {
  size_t operator()(const DigestValue& d) const {
    return static_cast<size_t>(Mix64(d.lo ^ Mix64(d.hi)));
  }
};

// Incremental, typed hasher. Appending the same sequence of typed values
// always yields the same DigestValue. Types are tagged so that e.g.
// Add(int64 1) and Add(uint64 1) differ.
class Digest {
 public:
  Digest();

  Digest& AddBytes(const void* data, size_t len);
  Digest& Add(int64_t v);
  Digest& Add(uint64_t v);
  Digest& Add(int32_t v) { return Add(static_cast<int64_t>(v)); }
  Digest& Add(uint32_t v) { return Add(static_cast<uint64_t>(v)); }
  Digest& Add(double v);
  Digest& Add(bool v);
  Digest& Add(std::string_view s);

  template <typename T>
  Digest& AddRange(const std::vector<T>& v) {
    Add(static_cast<uint64_t>(v.size()));
    for (const T& x : v) {
      Add(x);
    }
    return *this;
  }

  DigestValue Finish() const;

 private:
  void Absorb(uint8_t tag, const void* data, size_t len);

  uint64_t lo_;
  uint64_t hi_;
};

}  // namespace scalecheck

#endif  // SCALECHECK_SRC_COMMON_HASH_H_
