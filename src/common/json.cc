#include "src/common/json.h"

#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <cstring>

#include "src/common/check.h"
#include "src/common/strings.h"

namespace scalecheck {

bool JsonValue::AsBool() const {
  CHECK(is_bool()) << "JsonValue::AsBool on non-bool";
  return bool_;
}

int64_t JsonValue::AsInt() const {
  CHECK(is_int()) << "JsonValue::AsInt on non-exact-int";
  return int_;
}

double JsonValue::AsDouble() const {
  CHECK(is_number()) << "JsonValue::AsDouble on non-number";
  return double_;
}

const std::string& JsonValue::AsString() const {
  CHECK(is_string()) << "JsonValue::AsString on non-string";
  return string_;
}

const std::vector<JsonValue>& JsonValue::AsArray() const {
  CHECK(is_array()) << "JsonValue::AsArray on non-array";
  return array_;
}

const std::vector<std::pair<std::string, JsonValue>>& JsonValue::AsObject()
    const {
  CHECK(is_object()) << "JsonValue::AsObject on non-object";
  return object_;
}

const JsonValue* JsonValue::Find(const std::string& key) const {
  if (!is_object()) return nullptr;
  for (const auto& [k, v] : object_) {
    if (k == key) return &v;
  }
  return nullptr;
}

Result<bool> JsonValue::GetBool(const std::string& key,
                                const std::string& where) const {
  const JsonValue* v = Find(key);
  if (v == nullptr) {
    return Status::InvalidArgument(where + ": missing key \"" + key + "\"");
  }
  if (!v->is_bool()) {
    return Status::InvalidArgument(where + ": \"" + key + "\" is not a bool");
  }
  return v->AsBool();
}

Result<int64_t> JsonValue::GetInt(const std::string& key,
                                  const std::string& where) const {
  const JsonValue* v = Find(key);
  if (v == nullptr) {
    return Status::InvalidArgument(where + ": missing key \"" + key + "\"");
  }
  if (!v->is_int()) {
    return Status::InvalidArgument(where + ": \"" + key +
                                   "\" is not an exact integer");
  }
  return v->AsInt();
}

Result<double> JsonValue::GetDouble(const std::string& key,
                                    const std::string& where) const {
  const JsonValue* v = Find(key);
  if (v == nullptr) {
    return Status::InvalidArgument(where + ": missing key \"" + key + "\"");
  }
  if (!v->is_number()) {
    return Status::InvalidArgument(where + ": \"" + key + "\" is not a number");
  }
  return v->AsDouble();
}

Result<std::string> JsonValue::GetString(const std::string& key,
                                         const std::string& where) const {
  const JsonValue* v = Find(key);
  if (v == nullptr) {
    return Status::InvalidArgument(where + ": missing key \"" + key + "\"");
  }
  if (!v->is_string()) {
    return Status::InvalidArgument(where + ": \"" + key + "\" is not a string");
  }
  return v->AsString();
}

JsonValue JsonValue::MakeBool(bool b) {
  JsonValue v;
  v.kind_ = Kind::kBool;
  v.bool_ = b;
  return v;
}

JsonValue JsonValue::MakeInt(int64_t i) {
  JsonValue v;
  v.kind_ = Kind::kNumber;
  v.int_exact_ = true;
  v.int_ = i;
  v.double_ = static_cast<double>(i);
  return v;
}

JsonValue JsonValue::MakeDouble(double d) {
  JsonValue v;
  v.kind_ = Kind::kNumber;
  v.double_ = d;
  return v;
}

JsonValue JsonValue::MakeString(std::string s) {
  JsonValue v;
  v.kind_ = Kind::kString;
  v.string_ = std::move(s);
  return v;
}

JsonValue JsonValue::MakeArray(std::vector<JsonValue> items) {
  JsonValue v;
  v.kind_ = Kind::kArray;
  v.array_ = std::move(items);
  return v;
}

JsonValue JsonValue::MakeObject(
    std::vector<std::pair<std::string, JsonValue>> m) {
  JsonValue v;
  v.kind_ = Kind::kObject;
  v.object_ = std::move(m);
  return v;
}

namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Result<JsonValue> Parse() {
    SkipWhitespace();
    JsonValue root;
    Status s = ParseValue(&root, /*depth=*/0);
    if (!s.ok()) return s;
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Error("trailing bytes after JSON document");
    }
    return root;
  }

 private:
  static constexpr int kMaxDepth = 64;

  bool AtEnd() const { return pos_ >= text_.size(); }
  char Peek() const { return text_[pos_]; }

  void SkipWhitespace() {
    while (!AtEnd()) {
      char c = Peek();
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  Status Error(const std::string& what) const {
    return Status::InvalidArgument(
        StrFormat("json: %s at byte %zu", what.c_str(), pos_));
  }

  Status Truncated(const std::string& what) const {
    return Status::Truncated("json: " + what);
  }

  Status Expect(char c) {
    if (AtEnd()) return Truncated(StrFormat("expected '%c', got end of input", c));
    if (Peek() != c) return Error(StrFormat("expected '%c'", c));
    ++pos_;
    return Status::Ok();
  }

  Status ParseValue(JsonValue* out, int depth) {
    if (depth > kMaxDepth) return Error("nesting too deep");
    SkipWhitespace();
    if (AtEnd()) return Truncated("expected value, got end of input");
    char c = Peek();
    switch (c) {
      case '{':
        return ParseObject(out, depth);
      case '[':
        return ParseArray(out, depth);
      case '"': {
        std::string s;
        Status st = ParseString(&s);
        if (!st.ok()) return st;
        *out = JsonValue::MakeString(std::move(s));
        return Status::Ok();
      }
      case 't':
        if (Status st = Literal("true"); !st.ok()) return st;
        *out = JsonValue::MakeBool(true);
        return Status::Ok();
      case 'f':
        if (Status st = Literal("false"); !st.ok()) return st;
        *out = JsonValue::MakeBool(false);
        return Status::Ok();
      case 'n':
        if (Status st = Literal("null"); !st.ok()) return st;
        *out = JsonValue::MakeNull();
        return Status::Ok();
      default:
        if (c == '-' || (c >= '0' && c <= '9')) return ParseNumber(out);
        return Error("unexpected character");
    }
  }

  Status Literal(const char* lit) {
    size_t len = std::strlen(lit);
    if (text_.size() - pos_ < len) {
      if (text_.compare(pos_, text_.size() - pos_, lit, text_.size() - pos_) == 0) {
        return Truncated(StrFormat("'%s' cut short by end of input", lit));
      }
      return Error(StrFormat("expected '%s'", lit));
    }
    if (text_.compare(pos_, len, lit) != 0) {
      return Error(StrFormat("expected '%s'", lit));
    }
    pos_ += len;
    return Status::Ok();
  }

  Status ParseObject(JsonValue* out, int depth) {
    if (Status st = Expect('{'); !st.ok()) return st;
    std::vector<std::pair<std::string, JsonValue>> members;
    SkipWhitespace();
    if (!AtEnd() && Peek() == '}') {
      ++pos_;
      *out = JsonValue::MakeObject(std::move(members));
      return Status::Ok();
    }
    while (true) {
      SkipWhitespace();
      std::string key;
      if (Status st = ParseString(&key); !st.ok()) return st;
      for (const auto& [k, v] : members) {
        if (k == key) return Error("duplicate object key \"" + key + "\"");
      }
      SkipWhitespace();
      if (Status st = Expect(':'); !st.ok()) return st;
      JsonValue value;
      if (Status st = ParseValue(&value, depth + 1); !st.ok()) return st;
      members.emplace_back(std::move(key), std::move(value));
      SkipWhitespace();
      if (AtEnd()) return Truncated("unterminated object");
      char c = Peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == '}') {
        ++pos_;
        *out = JsonValue::MakeObject(std::move(members));
        return Status::Ok();
      }
      return Error("expected ',' or '}' in object");
    }
  }

  Status ParseArray(JsonValue* out, int depth) {
    if (Status st = Expect('['); !st.ok()) return st;
    std::vector<JsonValue> items;
    SkipWhitespace();
    if (!AtEnd() && Peek() == ']') {
      ++pos_;
      *out = JsonValue::MakeArray(std::move(items));
      return Status::Ok();
    }
    while (true) {
      JsonValue value;
      if (Status st = ParseValue(&value, depth + 1); !st.ok()) return st;
      items.push_back(std::move(value));
      SkipWhitespace();
      if (AtEnd()) return Truncated("unterminated array");
      char c = Peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == ']') {
        ++pos_;
        *out = JsonValue::MakeArray(std::move(items));
        return Status::Ok();
      }
      return Error("expected ',' or ']' in array");
    }
  }

  Status ParseString(std::string* out) {
    if (AtEnd()) return Truncated("expected string, got end of input");
    if (Peek() != '"') return Error("expected '\"'");
    ++pos_;
    out->clear();
    while (true) {
      if (AtEnd()) return Truncated("unterminated string");
      unsigned char c = static_cast<unsigned char>(text_[pos_]);
      if (c == '"') {
        ++pos_;
        return Status::Ok();
      }
      if (c == '\\') {
        ++pos_;
        if (AtEnd()) return Truncated("unterminated escape");
        char e = text_[pos_++];
        switch (e) {
          case '"': out->push_back('"'); break;
          case '\\': out->push_back('\\'); break;
          case '/': out->push_back('/'); break;
          case 'b': out->push_back('\b'); break;
          case 'f': out->push_back('\f'); break;
          case 'n': out->push_back('\n'); break;
          case 'r': out->push_back('\r'); break;
          case 't': out->push_back('\t'); break;
          case 'u': {
            uint32_t cp = 0;
            if (Status st = ParseHex4(&cp); !st.ok()) return st;
            if (cp >= 0xD800 && cp <= 0xDBFF) {
              // High surrogate: require the low half immediately after.
              if (text_.size() - pos_ < 2 || text_[pos_] != '\\' ||
                  text_[pos_ + 1] != 'u') {
                return Error("high surrogate not followed by \\u escape");
              }
              pos_ += 2;
              uint32_t lo = 0;
              if (Status st = ParseHex4(&lo); !st.ok()) return st;
              if (lo < 0xDC00 || lo > 0xDFFF) {
                return Error("invalid low surrogate");
              }
              cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
            } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
              return Error("unpaired low surrogate");
            }
            AppendUtf8(cp, out);
            break;
          }
          default:
            --pos_;
            return Error("invalid escape character");
        }
        continue;
      }
      if (c < 0x20) return Error("unescaped control character in string");
      out->push_back(static_cast<char>(c));
      ++pos_;
    }
  }

  Status ParseHex4(uint32_t* out) {
    if (text_.size() - pos_ < 4) return Truncated("\\u escape cut short");
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      char c = text_[pos_ + static_cast<size_t>(i)];
      v <<= 4;
      if (c >= '0' && c <= '9') {
        v |= static_cast<uint32_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        v |= static_cast<uint32_t>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        v |= static_cast<uint32_t>(c - 'A' + 10);
      } else {
        return Error("invalid hex digit in \\u escape");
      }
    }
    pos_ += 4;
    *out = v;
    return Status::Ok();
  }

  static void AppendUtf8(uint32_t cp, std::string* out) {
    if (cp < 0x80) {
      out->push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      out->push_back(static_cast<char>(0xC0 | (cp >> 6)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else if (cp < 0x10000) {
      out->push_back(static_cast<char>(0xE0 | (cp >> 12)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else {
      out->push_back(static_cast<char>(0xF0 | (cp >> 18)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    }
  }

  Status ParseNumber(JsonValue* out) {
    size_t start = pos_;
    bool is_integral = true;
    if (!AtEnd() && Peek() == '-') ++pos_;
    if (AtEnd()) return Truncated("number cut short");
    if (Peek() == '0') {
      ++pos_;
    } else if (Peek() >= '1' && Peek() <= '9') {
      while (!AtEnd() && Peek() >= '0' && Peek() <= '9') ++pos_;
    } else {
      return Error("invalid number");
    }
    if (!AtEnd() && Peek() == '.') {
      is_integral = false;
      ++pos_;
      if (AtEnd() || Peek() < '0' || Peek() > '9') {
        if (AtEnd()) return Truncated("number cut short after '.'");
        return Error("expected digit after '.'");
      }
      while (!AtEnd() && Peek() >= '0' && Peek() <= '9') ++pos_;
    }
    if (!AtEnd() && (Peek() == 'e' || Peek() == 'E')) {
      is_integral = false;
      ++pos_;
      if (!AtEnd() && (Peek() == '+' || Peek() == '-')) ++pos_;
      if (AtEnd() || Peek() < '0' || Peek() > '9') {
        if (AtEnd()) return Truncated("number cut short in exponent");
        return Error("expected digit in exponent");
      }
      while (!AtEnd() && Peek() >= '0' && Peek() <= '9') ++pos_;
    }
    std::string token = text_.substr(start, pos_ - start);
    if (is_integral) {
      errno = 0;
      char* end = nullptr;
      long long v = std::strtoll(token.c_str(), &end, 10);
      if (errno == 0 && end != nullptr && *end == '\0') {
        *out = JsonValue::MakeInt(static_cast<int64_t>(v));
        return Status::Ok();
      }
      // Falls through: magnitude beyond int64 degrades to double.
    }
    errno = 0;
    char* end = nullptr;
    double d = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0' || std::isnan(d)) {
      return Error("unparseable number");
    }
    if (std::isinf(d)) return Error("number out of double range");
    *out = JsonValue::MakeDouble(d);
    return Status::Ok();
  }

  const std::string& text_;
  size_t pos_ = 0;
};

}  // namespace

Result<JsonValue> ParseJson(const std::string& text) {
  Parser p(text);
  return p.Parse();
}

}  // namespace scalecheck
