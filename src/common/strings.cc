#include "src/common/strings.h"

#include <cstdio>

#include "src/common/check.h"
#include "src/common/types.h"

namespace scalecheck {

std::string StrFormatV(const char* fmt, va_list args) {
  va_list copy;
  va_copy(copy, args);
  int needed = std::vsnprintf(nullptr, 0, fmt, copy);
  va_end(copy);
  CHECK_GE(needed, 0) << "bad format string";
  std::string out(static_cast<size_t>(needed), '\0');
  std::vsnprintf(out.data(), out.size() + 1, fmt, args);
  return out;
}

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  std::string out = StrFormatV(fmt, args);
  va_end(args);
  return out;
}

std::string Join(const std::vector<std::string>& parts, const std::string& sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) {
      out += sep;
    }
    out += parts[i];
  }
  return out;
}

std::string RenderTable(const std::vector<std::string>& header,
                        const std::vector<std::vector<std::string>>& rows) {
  std::vector<size_t> widths(header.size());
  for (size_t c = 0; c < header.size(); ++c) {
    widths[c] = header[c].size();
  }
  for (const auto& row : rows) {
    CHECK_EQ(row.size(), header.size());
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto render_row = [&](const std::vector<std::string>& row) {
    std::string line = "|";
    for (size_t c = 0; c < row.size(); ++c) {
      line += " " + row[c] + std::string(widths[c] - row[c].size(), ' ') + " |";
    }
    return line + "\n";
  };
  std::string sep = "+";
  for (size_t c = 0; c < header.size(); ++c) {
    sep += std::string(widths[c] + 2, '-') + "+";
  }
  sep += "\n";
  std::string out = sep + render_row(header) + sep;
  for (const auto& row : rows) {
    out += render_row(row);
  }
  out += sep;
  return out;
}

std::string HumanCount(double value) {
  const char* suffix = "";
  double v = value;
  if (v >= 1e9) {
    v /= 1e9;
    suffix = "G";
  } else if (v >= 1e6) {
    v /= 1e6;
    suffix = "M";
  } else if (v >= 1e3) {
    v /= 1e3;
    suffix = "k";
  }
  return StrFormat("%.3g%s", v, suffix);
}

std::string HumanBytes(int64_t bytes) {
  double v = static_cast<double>(bytes);
  const char* suffix = "B";
  if (v >= 1024.0 * 1024 * 1024) {
    v /= 1024.0 * 1024 * 1024;
    suffix = "GiB";
  } else if (v >= 1024.0 * 1024) {
    v /= 1024.0 * 1024;
    suffix = "MiB";
  } else if (v >= 1024.0) {
    v /= 1024.0;
    suffix = "KiB";
  }
  return StrFormat("%.2f%s", v, suffix);
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += StrFormat("\\u%04x", c);
        } else {
          out += c;
        }
    }
  }
  return out;
}

void JsonWriter::BeforeValue() {
  if (pending_key_) {
    pending_key_ = false;
    return;
  }
  if (!first_in_scope_.empty()) {
    if (!first_in_scope_.back()) {
      out_ += ',';
    }
    first_in_scope_.back() = false;
  }
}

JsonWriter& JsonWriter::BeginObject() {
  BeforeValue();
  out_ += '{';
  first_in_scope_.push_back(true);
  return *this;
}

JsonWriter& JsonWriter::EndObject() {
  CHECK(!first_in_scope_.empty());
  first_in_scope_.pop_back();
  out_ += '}';
  return *this;
}

JsonWriter& JsonWriter::BeginArray() {
  BeforeValue();
  out_ += '[';
  first_in_scope_.push_back(true);
  return *this;
}

JsonWriter& JsonWriter::EndArray() {
  CHECK(!first_in_scope_.empty());
  first_in_scope_.pop_back();
  out_ += ']';
  return *this;
}

JsonWriter& JsonWriter::Key(const std::string& key) {
  CHECK(!pending_key_) << "two keys in a row: " << key;
  if (!first_in_scope_.empty() && !first_in_scope_.back()) {
    out_ += ',';
  }
  if (!first_in_scope_.empty()) {
    first_in_scope_.back() = false;
  }
  out_ += '"';
  out_ += JsonEscape(key);
  out_ += "\":";
  pending_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::String(const std::string& value) {
  BeforeValue();
  out_ += '"';
  out_ += JsonEscape(value);
  out_ += '"';
  return *this;
}

JsonWriter& JsonWriter::Int(int64_t value) {
  BeforeValue();
  out_ += StrFormat("%lld", static_cast<long long>(value));
  return *this;
}

JsonWriter& JsonWriter::UInt(uint64_t value) {
  BeforeValue();
  out_ += StrFormat("%llu", static_cast<unsigned long long>(value));
  return *this;
}

JsonWriter& JsonWriter::Double(double value) {
  BeforeValue();
  out_ += StrFormat("%.17g", value);
  return *this;
}

JsonWriter& JsonWriter::Bool(bool value) {
  BeforeValue();
  out_ += value ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::Field(const std::string& key, const std::string& value) {
  return Key(key).String(value);
}
JsonWriter& JsonWriter::Field(const std::string& key, const char* value) {
  return Key(key).String(value);
}
JsonWriter& JsonWriter::Field(const std::string& key, int64_t value) {
  return Key(key).Int(value);
}
JsonWriter& JsonWriter::Field(const std::string& key, uint64_t value) {
  return Key(key).UInt(value);
}
JsonWriter& JsonWriter::Field(const std::string& key, int value) {
  return Key(key).Int(value);
}
JsonWriter& JsonWriter::Field(const std::string& key, double value) {
  return Key(key).Double(value);
}
JsonWriter& JsonWriter::Field(const std::string& key, bool value) {
  return Key(key).Bool(value);
}

std::string VirtualDuration::ToString() const {
  int64_t abs_ns = ns_ < 0 ? -ns_ : ns_;
  const char* sign = ns_ < 0 ? "-" : "";
  if (abs_ns >= 60LL * 1000000000) {
    return StrFormat("%s%.2fmin", sign, static_cast<double>(abs_ns) / 60e9);
  }
  if (abs_ns >= 1000000000) {
    return StrFormat("%s%.3fs", sign, static_cast<double>(abs_ns) / 1e9);
  }
  if (abs_ns >= 1000000) {
    return StrFormat("%s%.3fms", sign, static_cast<double>(abs_ns) / 1e6);
  }
  if (abs_ns >= 1000) {
    return StrFormat("%s%.3fus", sign, static_cast<double>(abs_ns) / 1e3);
  }
  return StrFormat("%s%ldns", sign, static_cast<long>(abs_ns));
}

std::string VirtualTime::ToString() const {
  return StrFormat("t=%.6fs", seconds());
}

std::ostream& operator<<(std::ostream& os, VirtualDuration d) {
  return os << d.ToString();
}

std::ostream& operator<<(std::ostream& os, VirtualTime t) {
  return os << t.ToString();
}

}  // namespace scalecheck
