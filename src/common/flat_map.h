// FlatMap: a sorted-vector map with the std::map API subset the gossip
// payload containers actually use.
//
// Gossip payload maps (EndpointStateMap in SYN/ACK/ACK2) are built in
// strictly ascending key order — the merge-walk in Gossiper::HandleSyn and
// the wire decoder both emit sorted keys — so the common insertion is an
// O(1) append instead of a red-black-tree node allocation. Iteration is a
// contiguous scan (pair<Key, V> elements), which is where the SoA overhaul
// gets its cache behavior back on the 20%-of-profile state-copy path.
//
// Semantics match std::map where it matters: sorted deterministic
// iteration, emplace() does not overwrite an existing key, operator[]
// default-constructs, at() demands presence. Out-of-order inserts are
// supported (O(n) shift) so the generic/unsorted digest path still works.

#ifndef SCALECHECK_SRC_COMMON_FLAT_MAP_H_
#define SCALECHECK_SRC_COMMON_FLAT_MAP_H_

#include <algorithm>
#include <cstddef>
#include <utility>
#include <vector>

#include <tuple>

#include "src/common/check.h"

namespace scalecheck {

template <typename Key, typename V>
class FlatMap {
 public:
  using value_type = std::pair<Key, V>;
  using iterator = typename std::vector<value_type>::iterator;
  using const_iterator = typename std::vector<value_type>::const_iterator;

  iterator begin() { return entries_.begin(); }
  iterator end() { return entries_.end(); }
  const_iterator begin() const { return entries_.begin(); }
  const_iterator end() const { return entries_.end(); }

  size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }
  void clear() { entries_.clear(); }
  void reserve(size_t n) { entries_.reserve(n); }

  const_iterator find(Key key) const {
    const_iterator it = LowerBound(key);
    return (it != entries_.end() && it->first == key) ? it : entries_.end();
  }
  iterator find(Key key) {
    iterator it = LowerBound(key);
    return (it != entries_.end() && it->first == key) ? it : entries_.end();
  }
  size_t count(Key key) const { return find(key) == entries_.end() ? 0 : 1; }

  V& at(Key key) {
    iterator it = find(key);
    CHECK(it != entries_.end());
    return it->second;
  }
  const V& at(Key key) const {
    const_iterator it = find(key);
    CHECK(it != entries_.end());
    return it->second;
  }

  // Inserts default-constructed V if absent; ascending appends are O(1).
  V& operator[](Key key) {
    if (entries_.empty() || entries_.back().first < key) {
      entries_.emplace_back(key, V());
      return entries_.back().second;
    }
    iterator it = LowerBound(key);
    if (it != entries_.end() && it->first == key) {
      return it->second;
    }
    return entries_.emplace(it, key, V())->second;
  }

  // std::map semantics: no overwrite when the key already exists.
  template <typename... Args>
  std::pair<iterator, bool> emplace(Key key, Args&&... args) {
    if (entries_.empty() || entries_.back().first < key) {
      entries_.emplace_back(std::piecewise_construct, std::forward_as_tuple(key),
                            std::forward_as_tuple(std::forward<Args>(args)...));
      return {entries_.end() - 1, true};
    }
    iterator it = LowerBound(key);
    if (it != entries_.end() && it->first == key) {
      return {it, false};
    }
    it = entries_.emplace(it, std::piecewise_construct, std::forward_as_tuple(key),
                          std::forward_as_tuple(std::forward<Args>(args)...));
    return {it, true};
  }

  size_t erase(Key key) {
    iterator it = find(key);
    if (it == entries_.end()) {
      return 0;
    }
    entries_.erase(it);
    return 1;
  }

 private:
  iterator LowerBound(Key key) {
    return std::lower_bound(
        entries_.begin(), entries_.end(), key,
        [](const value_type& e, Key k) { return e.first < k; });
  }
  const_iterator LowerBound(Key key) const {
    return std::lower_bound(
        entries_.begin(), entries_.end(), key,
        [](const value_type& e, Key k) { return e.first < k; });
  }

  std::vector<value_type> entries_;  // sorted by first
};

}  // namespace scalecheck

#endif  // SCALECHECK_SRC_COMMON_FLAT_MAP_H_
