// LEB128 variable-length integers + zigzag signed mapping.
//
// These are the primitives behind the delta-encoded gossip digest sections
// (src/gossip/digest_codec.*) and the v2 wire format: a steady-state digest
// entry costs ~3-5 bytes instead of the fixed 20, which is what makes
// N=2048 SYN payloads affordable. Encoding is canonical (minimal length),
// and the reader is bounds-checked so truncated or corrupt frames fail
// cleanly instead of over-reading.

#ifndef SCALECHECK_SRC_COMMON_VARINT_H_
#define SCALECHECK_SRC_COMMON_VARINT_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace scalecheck {
namespace varint {

// Longest LEB128 encoding of a uint64: 10 bytes of 7 payload bits each.
inline constexpr size_t kMaxBytes = 10;

inline size_t SizeU64(uint64_t v) {
  size_t n = 1;
  while (v >= 0x80) {
    v >>= 7;
    ++n;
  }
  return n;
}

inline void PutU64(std::string* out, uint64_t v) {
  while (v >= 0x80) {
    out->push_back(static_cast<char>((v & 0x7F) | 0x80));
    v >>= 7;
  }
  out->push_back(static_cast<char>(v));
}

// Reads a varint at data[*pos], advancing *pos. Returns false on truncation
// or a non-canonical over-long encoding (more than 10 bytes).
inline bool GetU64(std::string_view data, size_t* pos, uint64_t* v) {
  uint64_t result = 0;
  int shift = 0;
  size_t p = *pos;
  while (true) {
    if (p >= data.size() || shift >= 64) {
      return false;
    }
    uint8_t byte = static_cast<uint8_t>(data[p++]);
    result |= static_cast<uint64_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) {
      break;
    }
    shift += 7;
  }
  *pos = p;
  *v = result;
  return true;
}

// Zigzag maps signed to unsigned so small-magnitude deltas (positive or
// negative) stay short: 0,-1,1,-2,2 -> 0,1,2,3,4.
inline uint64_t ZigZag(int64_t v) {
  return (static_cast<uint64_t>(v) << 1) ^ static_cast<uint64_t>(v >> 63);
}

inline int64_t UnZigZag(uint64_t v) {
  return static_cast<int64_t>(v >> 1) ^ -static_cast<int64_t>(v & 1);
}

inline size_t SizeI64(int64_t v) { return SizeU64(ZigZag(v)); }
inline void PutI64(std::string* out, int64_t v) { PutU64(out, ZigZag(v)); }
inline bool GetI64(std::string_view data, size_t* pos, int64_t* v) {
  uint64_t u;
  if (!GetU64(data, pos, &u)) {
    return false;
  }
  *v = UnZigZag(u);
  return true;
}

}  // namespace varint
}  // namespace scalecheck

#endif  // SCALECHECK_SRC_COMMON_VARINT_H_
