// Write-ahead log for the KV replica data path.
//
// Every replica Put is framed and appended to an in-memory byte log that
// stands in for the node's commit log file; a group-commit Sync() marks the
// accumulated tail durable (the fsync boundary). A crash throws away the
// unsynced tail — exactly what a real kernel page cache loses — and restart
// recovery replays the durable prefix into a fresh StorageEngine.
//
// The byte format follows the MemoStore v2 discipline (src/pil/memo_store.h):
// a magic+version header with its own CRC, then length-prefixed records each
// trailed by a CRC over the payload:
//
//   u64 magic "SCKVWAL1" | u32 version=1 | u32 crc32(header)
//   per record: u32 payload_len | payload | u32 crc32(payload)
//   payload: u64 key | i64 timestamp | u64 value_size | value bytes
//
// Recovery differs from MemoStore::Parse by design: a commit log is
// append-only and torn at the crash point, so Recover REPLAYS the longest
// valid prefix and reports how the tail was damaged (kTruncated for a clean
// tear, kCorruptData for bit rot, kVersionSkew for a foreign format) instead
// of rejecting the whole stream. Acked writes live in the valid prefix — the
// kv-durability invariant holds precisely because Sync() happens before the
// replica acks.

#ifndef SCALECHECK_SRC_KV_WAL_H_
#define SCALECHECK_SRC_KV_WAL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/result.h"

namespace scalecheck {

class KvWal {
 public:
  struct Record {
    uint64_t key = 0;
    int64_t timestamp = 0;
    std::string value;
  };

  struct RecoverResult {
    // The longest valid prefix, in append order. Replaying these through
    // StorageEngine::Put reconstructs the pre-crash durable state (Puts are
    // idempotent under last-write-wins, so replay order only has to respect
    // append order, which it does).
    std::vector<Record> records;
    // Ok when the stream ended cleanly on a record boundary; kTruncated /
    // kCorruptData / kVersionSkew describe how the tail (or header) was
    // damaged. Damage never discards the valid prefix above.
    Status damage = Status::Ok();
    int64_t bytes_replayed = 0;  // header + valid records
    int64_t bytes_dropped = 0;   // damaged tail discarded
  };

  KvWal();

  // Frames and appends one record to the unsynced tail. Returns the bytes
  // appended (frame overhead included) so callers can charge storage work.
  int64_t Append(uint64_t key, int64_t timestamp, const std::string& value);

  // Group commit: everything appended so far becomes durable. Returns the
  // bytes newly made durable (0 when the tail was already clean).
  int64_t Sync();

  // Crash semantics: the unsynced tail never reached disk. Returns the
  // records thrown away (the window an ack-before-sync bug loses).
  int64_t DropUnsynced();

  int64_t durable_bytes() const { return static_cast<int64_t>(synced_len_); }
  int64_t unsynced_bytes() const {
    return static_cast<int64_t>(log_.size() - synced_len_);
  }
  int64_t total_bytes() const { return static_cast<int64_t>(log_.size()); }
  int64_t records_appended() const { return records_appended_; }
  int64_t records_synced() const { return records_synced_; }

  // The byte image a crash leaves behind (durable prefix only).
  std::vector<uint8_t> DurableImage() const {
    return std::vector<uint8_t>(log_.begin(),
                                log_.begin() + static_cast<int64_t>(synced_len_));
  }
  // Full buffer including the unsynced tail — corruption-fuzz test access.
  const std::vector<uint8_t>& bytes() const { return log_; }

  // Structured prefix recovery (see the header comment for semantics).
  static RecoverResult Recover(const std::vector<uint8_t>& bytes);

 private:
  std::vector<uint8_t> log_;  // header + records, append-only
  size_t synced_len_ = 0;     // durable prefix length
  int64_t records_appended_ = 0;
  int64_t records_synced_ = 0;
};

}  // namespace scalecheck

#endif  // SCALECHECK_SRC_KV_WAL_H_
