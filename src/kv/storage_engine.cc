#include "src/kv/storage_engine.h"

#include <algorithm>

#include "src/common/check.h"

namespace scalecheck {

WorkUnits StorageEngine::Put(uint64_t key, std::string value, int64_t timestamp) {
  // Costs depend on the SIZE of the data, not its content — which is exactly
  // why data-space emulation preserves behaviour (§4).
  WorkUnits work = 1500 + static_cast<WorkUnits>(value.size());
  size_t value_size = value.size();
  if (config_.emulate_data_space) {
    value.clear();  // "compressed to zero byte on disk (but the size is recorded)"
  }
  auto it = memtable_.find(key);
  if (it == memtable_.end()) {
    bytes_ += static_cast<int64_t>(value.size()) + 48;
    ++total_entries_;
    memtable_.emplace(key, Entry{std::move(value), value_size, timestamp});
  } else if (timestamp >= it->second.timestamp) {
    bytes_ += static_cast<int64_t>(value.size()) -
              static_cast<int64_t>(it->second.value.size());
    it->second = Entry{std::move(value), value_size, timestamp};
  }
  if (memtable_.size() >= config_.memtable_limit) {
    Flush();
    work += static_cast<WorkUnits>(config_.memtable_limit) * 40;
  }
  return work;
}

std::optional<std::string> StorageEngine::Get(uint64_t key, WorkUnits* work) const {
  CHECK_NOTNULL(work);
  *work = 2000;
  const Entry* found_entry = nullptr;
  auto it = memtable_.find(key);
  if (it != memtable_.end()) {
    found_entry = &it->second;
  } else {
    // Newest run first.
    for (auto run = runs_.rbegin(); run != runs_.rend() && found_entry == nullptr;
         ++run) {
      *work += 200;  // bloom/index probe stand-in
      auto found = std::lower_bound(
          run->begin(), run->end(), key,
          [](const std::pair<uint64_t, Entry>& e, uint64_t k) { return e.first < k; });
      if (found != run->end() && found->first == key) {
        found_entry = &found->second;
      }
    }
  }
  if (found_entry == nullptr) {
    return std::nullopt;
  }
  *work += static_cast<WorkUnits>(found_entry->value_size) / 4;
  if (config_.emulate_data_space) {
    // Synthesize content of the recorded size.
    return std::string(found_entry->value_size, 'x');
  }
  return found_entry->value;
}

int64_t StorageEngine::TimestampOf(uint64_t key) const {
  auto it = memtable_.find(key);
  if (it != memtable_.end()) {
    return it->second.timestamp;
  }
  for (auto run = runs_.rbegin(); run != runs_.rend(); ++run) {
    auto found = std::lower_bound(
        run->begin(), run->end(), key,
        [](const std::pair<uint64_t, Entry>& e, uint64_t k) { return e.first < k; });
    if (found != run->end() && found->first == key) {
      return found->second.timestamp;
    }
  }
  return 0;
}

void StorageEngine::Flush() {
  Run run;
  run.reserve(memtable_.size());
  for (auto& [key, entry] : memtable_) {
    run.emplace_back(key, std::move(entry));
  }
  memtable_.clear();
  runs_.push_back(std::move(run));
  ++flushes_;
  MaybeCompact();
}

void StorageEngine::MaybeCompact() {
  if (runs_.size() < config_.compaction_fanin) {
    return;
  }
  // Merge all runs, newest value per key wins.
  std::map<uint64_t, Entry> merged;
  for (Run& run : runs_) {
    for (auto& [key, entry] : run) {
      auto it = merged.find(key);
      if (it == merged.end() || entry.timestamp >= it->second.timestamp) {
        merged[key] = std::move(entry);
      }
    }
  }
  Run combined;
  combined.reserve(merged.size());
  int64_t entries = 0;
  for (auto& [key, entry] : merged) {
    combined.emplace_back(key, std::move(entry));
    ++entries;
  }
  runs_.clear();
  runs_.push_back(std::move(combined));
  total_entries_ = entries + static_cast<int64_t>(memtable_.size());
  ++compactions_;
}

int64_t StorageEngine::ApproxBytes() const {
  return bytes_ + static_cast<int64_t>(runs_.size()) * 1024;
}

}  // namespace scalecheck
