#include "src/kv/wal.h"

#include <cstring>

#include "src/common/hash.h"

namespace scalecheck {

namespace {

constexpr uint64_t kMagic = 0x53434b5657414c31ULL;  // "SCKVWAL1"
constexpr uint32_t kVersion = 1;
// magic + version + header crc.
constexpr size_t kHeaderSize =
    sizeof(uint64_t) + sizeof(uint32_t) + sizeof(uint32_t);
// key + timestamp + value_size (everything in a payload but the value bytes).
constexpr size_t kPayloadFixed =
    sizeof(uint64_t) + sizeof(int64_t) + sizeof(uint64_t);

template <typename T>
void PutRaw(std::vector<uint8_t>* out, T v) {
  const auto* p = reinterpret_cast<const uint8_t*>(&v);
  out->insert(out->end(), p, p + sizeof(T));
}

template <typename T>
bool GetRaw(const std::vector<uint8_t>& in, size_t* pos, T* v) {
  if (*pos + sizeof(T) > in.size()) {
    return false;
  }
  std::memcpy(v, in.data() + *pos, sizeof(T));
  *pos += sizeof(T);
  return true;
}

}  // namespace

KvWal::KvWal() {
  // The header is written (and implicitly synced) at creation — opening a
  // commit log file is itself a durable operation.
  PutRaw(&log_, kMagic);
  PutRaw<uint32_t>(&log_, kVersion);
  PutRaw<uint32_t>(&log_, Crc32(log_.data(), log_.size()));
  synced_len_ = log_.size();
}

int64_t KvWal::Append(uint64_t key, int64_t timestamp, const std::string& value) {
  const size_t before = log_.size();
  const size_t payload_len = kPayloadFixed + value.size();
  PutRaw<uint32_t>(&log_, static_cast<uint32_t>(payload_len));
  const size_t payload_start = log_.size();
  PutRaw<uint64_t>(&log_, key);
  PutRaw<int64_t>(&log_, timestamp);
  PutRaw<uint64_t>(&log_, value.size());
  log_.insert(log_.end(), value.begin(), value.end());
  PutRaw<uint32_t>(&log_, Crc32(log_.data() + payload_start, payload_len));
  ++records_appended_;
  return static_cast<int64_t>(log_.size() - before);
}

int64_t KvWal::Sync() {
  const int64_t newly = static_cast<int64_t>(log_.size() - synced_len_);
  synced_len_ = log_.size();
  records_synced_ = records_appended_;
  return newly;
}

int64_t KvWal::DropUnsynced() {
  const int64_t lost = records_appended_ - records_synced_;
  log_.resize(synced_len_);
  records_appended_ = records_synced_;
  return lost;
}

KvWal::RecoverResult KvWal::Recover(const std::vector<uint8_t>& bytes) {
  RecoverResult out;
  size_t pos = 0;
  uint64_t magic = 0;
  uint32_t version = 0;
  uint32_t header_crc = 0;
  if (!GetRaw(bytes, &pos, &magic) || !GetRaw(bytes, &pos, &version) ||
      !GetRaw(bytes, &pos, &header_crc)) {
    out.damage = Status::Truncated("WAL shorter than its header");
    out.bytes_dropped = static_cast<int64_t>(bytes.size());
    return out;
  }
  if (Crc32(bytes.data(), kHeaderSize - sizeof(uint32_t)) != header_crc) {
    out.damage = Status::CorruptData("WAL header checksum mismatch");
    out.bytes_dropped = static_cast<int64_t>(bytes.size());
    return out;
  }
  if (magic != kMagic) {
    out.damage = Status::CorruptData("WAL magic number mismatch");
    out.bytes_dropped = static_cast<int64_t>(bytes.size());
    return out;
  }
  if (version != kVersion) {
    out.damage = Status::VersionSkew("WAL written by an unsupported version");
    out.bytes_dropped = static_cast<int64_t>(bytes.size());
    return out;
  }

  while (pos < bytes.size()) {
    const size_t record_start = pos;
    uint32_t payload_len = 0;
    if (!GetRaw(bytes, &pos, &payload_len)) {
      out.damage = Status::Truncated("WAL torn inside a record length prefix");
      pos = record_start;
      break;
    }
    if (payload_len < kPayloadFixed) {
      out.damage =
          Status::CorruptData("WAL record shorter than its fixed fields");
      pos = record_start;
      break;
    }
    if (pos + payload_len + sizeof(uint32_t) > bytes.size()) {
      out.damage = Status::Truncated("WAL torn inside a record payload");
      pos = record_start;
      break;
    }
    const size_t payload_start = pos;
    Record rec;
    uint64_t value_size = 0;
    GetRaw(bytes, &pos, &rec.key);
    GetRaw(bytes, &pos, &rec.timestamp);
    GetRaw(bytes, &pos, &value_size);
    if (value_size != payload_len - kPayloadFixed) {
      out.damage = Status::CorruptData("WAL record value size mismatch");
      pos = record_start;
      break;
    }
    rec.value.assign(reinterpret_cast<const char*>(bytes.data() + pos),
                     value_size);
    pos += value_size;
    uint32_t stored_crc = 0;
    GetRaw(bytes, &pos, &stored_crc);
    if (Crc32(bytes.data() + payload_start, payload_len) != stored_crc) {
      out.damage = Status::CorruptData("WAL record checksum mismatch");
      pos = record_start;
      break;
    }
    out.records.push_back(std::move(rec));
  }

  out.bytes_replayed = static_cast<int64_t>(pos);
  out.bytes_dropped = static_cast<int64_t>(bytes.size() - pos);
  return out;
}

}  // namespace scalecheck
