// Merkle trees over the token space, for anti-entropy repair.
//
// Each replica maintains one tree summarizing every (key, timestamp) pair it
// stores: the token space [0, 2^64) is split into 2^depth equal leaf spans,
// and a leaf's hash commits to the set of key/timestamp pairs whose tokens
// fall in its span. Repair sessions (src/kv/anti_entropy.h) exchange
// root-to-subtree hashes and stream only the leaf ranges that differ.
//
// Two properties the tests pin:
//  - Determinism: the hash of any subtree depends only on the (key,
//    timestamp) SET it covers, never on insertion order. Leaf accumulators
//    are XOR-folded per-key digests, so Apply order cannot matter.
//  - Incremental maintenance: Apply() is called from the replica write path
//    (replica Put, WAL replay, hint/repair application) and is LWW-guarded —
//    applying an older timestamp for a known key is a no-op, mirroring the
//    storage engine's last-write-wins rule. An incrementally maintained tree
//    is always identical to one rebuilt from the final key set.
//
// Hashes can be evaluated restricted to a token-range mask (the ranges two
// replicas share), so co-replicas compare only the data both are supposed to
// hold. Leaves fully covered by a mask range use the O(1) accumulator; only
// leaves straddling a range boundary re-scan their keys.

#ifndef SCALECHECK_SRC_KV_MERKLE_H_
#define SCALECHECK_SRC_KV_MERKLE_H_

#include <cstdint>
#include <map>
#include <utility>
#include <vector>

#include "src/common/hash.h"
#include "src/ring/token_ring.h"

namespace scalecheck {

class MerkleTree {
 public:
  static constexpr int kDefaultDepth = 10;  // 1024 leaves

  explicit MerkleTree(int depth = kDefaultDepth);

  // Records that `key` is now visible at `timestamp`. LWW-idempotent: a
  // timestamp not newer than the recorded one leaves the tree unchanged.
  void Apply(uint64_t key, int64_t timestamp);
  void Clear();

  int depth() const { return depth_; }
  uint64_t num_leaves() const { return uint64_t{1} << depth_; }
  size_t num_keys() const { return keys_.size(); }
  int64_t ApproxBytes() const;

  uint64_t LeafOfToken(Token t) const { return t >> (64 - depth_); }

  // Hash of tree node (level, index) — level 0 is the root, level depth()
  // the leaves — restricted to tokens inside `mask`. An empty mask means the
  // whole token space. A node covering no masked keys hashes to {0, 0}.
  DigestValue HashOfNode(int level, uint64_t index,
                         const std::vector<KeyRange>& mask) const;
  DigestValue Root() const { return HashOfNode(0, 0, {}); }

  // The (key, timestamp) pairs in `leaf` ∩ mask, in token order.
  std::vector<std::pair<uint64_t, int64_t>> KeysInLeaf(
      uint64_t leaf, const std::vector<KeyRange>& mask) const;

 private:
  // XOR-folded per-key digests: removal is re-XOR, so updates are O(log n)
  // map work plus O(1) hash work, and the fold is order-independent.
  struct LeafAcc {
    uint64_t lo = 0;
    uint64_t hi = 0;
    uint32_t count = 0;
  };

  DigestValue LeafHash(uint64_t leaf, const std::vector<KeyRange>& mask) const;

  int depth_;
  std::vector<LeafAcc> acc_;                           // one per leaf
  std::map<Token, std::pair<uint64_t, int64_t>> keys_;  // token -> (key, ts)
};

}  // namespace scalecheck

#endif  // SCALECHECK_SRC_KV_MERKLE_H_
