// Anti-entropy repair: the third repair mechanism of the data path, after
// hinted handoff and read repair (kv_service.h).
//
// Each node periodically picks a live co-replica peer and runs a repair
// session against it: the two compare Merkle subtree hashes (merkle.h) over
// the token ranges BOTH are replicas for, descending root -> subtrees ->
// leaves, and stream only the leaf spans that differ. Streamed keys carry
// their ORIGINAL write timestamps and are applied last-write-wins, the same
// idempotence rule hint replay relies on — repairing twice, or racing a
// newer foreground write, is harmless.
//
// Anti-entropy is the repair mechanism that can become the outage ("Cheap
// Recovery": repair must be cheap, bounded, and safe to run continuously),
// so the scheduler is overload-safe by construction:
//  - a per-node token bucket caps repair bytes/sec (hash exchange is
//    pre-charged, streams are post-charged and may overdraw one round —
//    the next round waits for the refill);
//  - at most `max_sessions` concurrent sessions per initiator;
//  - sessions yield when in-flight foreground client ops exceed a threshold
//    (graceful degradation: repair slows, client traffic doesn't);
//  - per-session timeouts with bounded retries; a peer that crashes
//    mid-session is abandoned and counted (kv_repair_aborted), never
//    retried forever.
//
// The planted repair-storm bug (CheckOptions::plant_repair_storm) disables
// every one of those guards: each tick streams the FULL shared range to
// every co-replica peer, unthrottled — the ChaosSearch target the
// replica-convergence invariant's repair-throughput facet catches.

#ifndef SCALECHECK_SRC_KV_ANTI_ENTROPY_H_
#define SCALECHECK_SRC_KV_ANTI_ENTROPY_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <utility>
#include <vector>

#include "src/common/rng.h"
#include "src/gossip/gossiper.h"
#include "src/kv/kv_service.h"
#include "src/kv/merkle.h"
#include "src/ring/token_ring.h"
#include "src/transport/substrate.h"

namespace scalecheck {

enum KvRepairMessageType : int {
  // Initiator -> peer: subtree hashes at one tree level. The peer compares
  // against its own tree (masked to the ranges it shares with the sender).
  kKvRepairHashReq = 14,
  // Peer -> initiator: which of those subtrees differ.
  kKvRepairHashResp = 15,
  // Fire-and-forget replica write from a repair stream. Applied like a
  // replica write (WAL included) but never acked; the receiver counts it as
  // "fixed" only when it actually advanced the local version.
  kKvRepairStreamWrite = 16,
};

struct KvRepairHashPayload : public Payload {
  uint64_t session_id = 0;
  uint32_t level = 0;  // 0 = root, MerkleTree::depth() = leaves
  // (node index at `level`, masked subtree hash), strictly ascending index.
  std::vector<std::pair<uint64_t, DigestValue>> hashes;

  size_t SizeBytes() const override { return 24 + hashes.size() * 24; }
};

struct KvRepairDiffPayload : public Payload {
  uint64_t session_id = 0;
  uint32_t level = 0;
  std::vector<uint64_t> differing;  // strictly ascending node indices

  size_t SizeBytes() const override { return 24 + differing.size() * 8; }
};

// One per node, owned by its KvService. Speaks only to the substrate seam,
// so the same scheduler runs on the simulator and the real-socket carrier.
class AntiEntropy {
 public:
  struct Config {
    VirtualDuration interval = VirtualDuration::Seconds(10);
    int64_t rate_bytes_per_sec = 256 * 1024;
    int max_sessions = 1;
    VirtualDuration session_timeout = VirtualDuration::Seconds(10);
    int max_retries = 2;
    // Yield (re-check a quarter interval later) when the node's in-flight
    // foreground client ops exceed this.
    size_t pressure_max_inflight = 16;
    bool plant_storm = false;
    uint64_t seed = 0;
  };

  using StreamDoneFn = std::function<void(int64_t bytes, int64_t keys)>;

  struct Hooks {
    Clock* clock = nullptr;
    Transport* transport = nullptr;
    const TokenRing* ring = nullptr;
    const Gossiper* gossiper = nullptr;
    NodeId self = kInvalidNode;
    int replication_factor = 3;
    // Streams (key, timestamp) pairs to `target` as kKvRepairStreamWrite
    // messages, reading current values through the storage stage; `done`
    // fires once with the bytes/keys actually sent. Owned by KvService.
    std::function<void(NodeId target,
                       std::vector<std::pair<uint64_t, int64_t>> keys,
                       StreamDoneFn done)>
        stream_keys;
    // Current in-flight foreground client ops (the pressure signal).
    std::function<size_t()> pressure;
    KvStats* stats = nullptr;
  };

  AntiEntropy(Config config, Hooks hooks);
  ~AntiEntropy();
  AntiEntropy(const AntiEntropy&) = delete;
  AntiEntropy& operator=(const AntiEntropy&) = delete;

  // Arms the periodic scheduler (desynchronized initial phase).
  void Start();
  // Crash path: aborts every active session (counted in kv_repair_aborted)
  // and stops the scheduler. Start() re-arms after restart.
  void Stop();
  // Teardown path (real carrier shutdown): cancels timers, no accounting.
  void Shutdown();

  void HandleMessage(const Message& msg);

  // Replica write path hook: `key` is now visible at `timestamp`.
  void OnWriteApplied(uint64_t key, int64_t timestamp) {
    tree_.Apply(key, timestamp);
  }
  void ClearTree() { tree_.Clear(); }

  const MerkleTree& tree() const { return tree_; }
  size_t active_sessions() const { return sessions_.size(); }
  int64_t ApproxBytes() const;

  // Ranges of `ring` for which both `self` and the mapped peer are natural
  // replicas, in one O(entries * rf) pass. The mask both ends of a session
  // compute independently from their own ring views.
  static std::map<NodeId, std::vector<KeyRange>> CoReplicaRanges(
      const TokenRing& ring, int rf, NodeId self);

 private:
  struct Session {
    NodeId peer = kInvalidNode;
    std::vector<KeyRange> mask;
    // Nodes still to compare, as (level, index); batches are single-level.
    std::deque<std::pair<int, uint64_t>> frontier;
    int awaiting_level = -1;  // batch in flight, -1 = none
    std::vector<uint64_t> awaiting_nodes;
    int retries = 0;
    int outstanding_streams = 0;
    TimerId timeout_timer = kInvalidTimer;
    TimerId resume_timer = kInvalidTimer;
  };

  void Tick();
  void StormTick();
  void StartSession(NodeId peer, std::vector<KeyRange> mask);
  void SendNextBatch(uint64_t id);
  void HandleHashReq(const Message& msg);
  void HandleHashResp(const Message& msg);
  void OnTimeout(uint64_t id);
  void AbortSession(uint64_t id);
  void FinishIfIdle(uint64_t id);
  void StreamLeaves(uint64_t session_id, NodeId target,
                    const std::vector<uint64_t>& leaves,
                    const std::vector<KeyRange>& mask);
  void CancelSessionTimers(Session* s);

  // Token bucket over all repair traffic this node originates.
  void RefillBucket();
  bool SpendBytes(int64_t bytes);      // pre-charge; false = wait for refill
  void ChargeBytes(int64_t bytes);     // post-charge; may overdraw
  VirtualDuration DelayForBytes(int64_t bytes);

  Config config_;
  Hooks hooks_;
  MerkleTree tree_;
  Rng rng_;
  bool running_ = false;
  std::unique_ptr<PeriodicClockTimer> timer_;
  std::map<uint64_t, Session> sessions_;
  uint64_t next_session_ = 1;
  double bucket_bytes_ = 0;
  VirtualTime bucket_refilled_;
};

}  // namespace scalecheck

#endif  // SCALECHECK_SRC_KV_ANTI_ENTROPY_H_
