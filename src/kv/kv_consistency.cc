#include "src/kv/kv_consistency.h"

#include <algorithm>

namespace scalecheck {

const char* KvConsistencyName(KvConsistency level) {
  switch (level) {
    case KvConsistency::kOne:
      return "one";
    case KvConsistency::kQuorum:
      return "quorum";
    case KvConsistency::kAll:
      return "all";
  }
  return "unknown";
}

Result<KvConsistency> KvConsistencyFromName(const std::string& name) {
  static constexpr KvConsistency kLevels[] = {
      KvConsistency::kOne, KvConsistency::kQuorum, KvConsistency::kAll};
  for (KvConsistency level : kLevels) {
    if (name == KvConsistencyName(level)) {
      return level;
    }
  }
  return Status::InvalidArgument("unknown consistency level '" + name + "'");
}

int KvRequiredAcks(KvConsistency level, int replication_factor) {
  switch (level) {
    case KvConsistency::kOne:
      return 1;
    case KvConsistency::kQuorum:
      return replication_factor / 2 + 1;
    case KvConsistency::kAll:
      return std::max(1, replication_factor);
  }
  return replication_factor / 2 + 1;
}

}  // namespace scalecheck
