// A linear history of client KV operations, recorded at the coordinator.
//
// The invariant checker's KV history checker (src/check/invariants.cc) replays
// this history against a read-your-writes / no-lost-acknowledged-writes model.
// Recording happens inside KvService::Submit / Conclude, so the history is
// complete by construction: every client request appears exactly once at
// issue and at most once at conclusion (requests still in flight when the run
// stops stay unconcluded — the same population RunResult reports as
// kv_inflight_at_stop). The simulator is single-threaded within a run, so no
// synchronization is needed; ops are ordered by issue time, and
// conclusion_order() gives the (deterministic) conclusion sequence.

#ifndef SCALECHECK_SRC_KV_KV_HISTORY_H_
#define SCALECHECK_SRC_KV_KV_HISTORY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/types.h"
#include "src/kv/kv_service.h"

namespace scalecheck {

struct KvOpRecord {
  uint64_t id = 0;  // index into ops()
  NodeId coordinator = kInvalidNode;
  bool is_write = false;
  uint64_t key = 0;
  std::string value;  // write payload ("" for reads)
  VirtualTime issued_at;

  bool concluded = false;
  KvOutcome outcome = KvOutcome::kUnavailable;
  std::string result_value;  // read result ("" for writes / not found)
  VirtualTime concluded_at;

  // OK writes only: the hybrid timestamp the successful attempt stamped on
  // the replicas, and the replicas whose acks the client's OK rests on. The
  // kv-durability invariant audits exactly these nodes — after any crash
  // recovery, each acker still running must hold a version >= this
  // timestamp, or an acknowledged write was lost.
  int64_t write_timestamp = 0;
  std::vector<NodeId> ackers;
};

class KvHistory {
 public:
  // Returns the record id the coordinator stores on the client op.
  uint64_t RecordIssued(NodeId coordinator, bool is_write, uint64_t key,
                        const std::string& value, VirtualTime now);
  // Called just before RecordConcluded for writes that concluded OK.
  void RecordWriteAcked(uint64_t id, int64_t write_timestamp,
                        const std::vector<NodeId>& ackers);
  void RecordConcluded(uint64_t id, KvOutcome outcome,
                       const std::string& result_value, VirtualTime now);

  const std::vector<KvOpRecord>& ops() const { return ops_; }
  // Record ids in the order they concluded.
  const std::vector<uint64_t>& conclusion_order() const {
    return conclusion_order_;
  }
  size_t size() const { return ops_.size(); }
  int64_t concluded_count() const {
    return static_cast<int64_t>(conclusion_order_.size());
  }

 private:
  std::vector<KvOpRecord> ops_;
  std::vector<uint64_t> conclusion_order_;
};

}  // namespace scalecheck

#endif  // SCALECHECK_SRC_KV_KV_HISTORY_H_
