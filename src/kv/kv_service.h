// The quorum data path riding on the ring.
//
// Each node can act as a coordinator: replicas of a key are the ring's
// natural endpoints; the coordinator sends the operation to the replicas it
// believes ALIVE and waits for a quorum of acks. This is where scalability
// bugs become user-visible (§2: "many live nodes are declared as dead,
// making some data not reachable by the users"): during a flap storm the
// coordinator's liveness view collapses and operations fail UNAVAILABLE even
// though every replica is actually up.

#ifndef SCALECHECK_SRC_KV_KV_SERVICE_H_
#define SCALECHECK_SRC_KV_KV_SERVICE_H_

#include <functional>
#include <memory>
#include <string>
#include <unordered_map>

#include "src/common/rng.h"
#include "src/common/stats.h"
#include "src/common/types.h"
#include "src/gossip/gossiper.h"
#include "src/kv/storage_engine.h"
#include "src/ring/token_ring.h"
#include "src/transport/substrate.h"

namespace scalecheck {

class KvHistory;

enum KvMessageType : int {
  kKvWriteReq = 10,
  kKvWriteResp = 11,
  kKvReadReq = 12,
  kKvReadResp = 13,
};

struct KvRequestPayload : public Payload {
  uint64_t op_id = 0;
  uint64_t key = 0;
  std::string value;  // writes only
  int64_t timestamp = 0;

  size_t SizeBytes() const override { return 48 + value.size(); }
};

struct KvResponsePayload : public Payload {
  uint64_t op_id = 0;
  // The replica processed the request (counts toward quorum). A read of an
  // absent key still acks — quorum agreement on "not found" is a successful
  // read.
  bool ack = false;
  bool found = false;     // reads: replica had a value
  int64_t timestamp = 0;  // reads: version of the returned value
  std::string value;      // reads only

  size_t SizeBytes() const override { return 24 + value.size(); }
};

enum class KvOutcome : int {
  kOk = 0,
  kUnavailable = 1,  // fewer live replicas than quorum at submission
  kTimeout = 2,      // quorum not reached in time
};

struct KvStats {
  // Final client outcomes (after any retries).
  int64_t ok = 0;
  int64_t unavailable = 0;
  int64_t timeout = 0;
  // Retry accounting: `retries` counts re-submitted attempts; `gave_up`
  // counts client requests that ended without an OK (so every client request
  // ends as exactly ok or gave_up — the conservation identity the fault
  // benches assert).
  int64_t retries = 0;
  int64_t gave_up = 0;
  LogHistogram latency{/*base=*/1e5, /*growth=*/1.5, /*num_buckets=*/80};

  int64_t total() const { return ok + unavailable + timeout; }
  double UnavailableFraction() const {
    return total() == 0 ? 0.0
                        : static_cast<double>(unavailable + timeout) /
                              static_cast<double>(total());
  }
};

// One per node. The owning Node routes kKv* messages here and exposes the
// coordinator API. All callbacks run on the node's kv stage thread.
class KvService {
 public:
  // KvService speaks only to the substrate seam: a Clock for timeouts and
  // backoff, a Transport for replica traffic, a Stage for charging replica
  // storage work. The same translation unit links into the simulator (via
  // SimClock/SimTransport/SimStage) and the real-socket runner (via
  // RealClock/TcpTransport/RealStage) — no forked copies, no mode #ifdefs.
  struct Deps {
    Clock* clock = nullptr;
    Transport* transport = nullptr;
    Stage* stage = nullptr;             // the node's kv stage
    const TokenRing* ring = nullptr;    // the node's ring view
    const Gossiper* gossiper = nullptr; // liveness view
    NodeId self = kInvalidNode;
    int replication_factor = 3;
    // Per-attempt quorum timeout.
    VirtualDuration timeout = VirtualDuration::Seconds(2);
    // Client-request retry policy. A request is attempted up to
    // `max_attempts` times within `request_deadline`; failed attempts back
    // off exponentially from `retry_base_backoff` with deterministic jitter
    // drawn from an Rng seeded with `retry_seed`.
    int max_attempts = 1;
    VirtualDuration retry_base_backoff = VirtualDuration::Millis(50);
    VirtualDuration request_deadline = VirtualDuration::Seconds(8);
    uint64_t retry_seed = 0;
    // Client-op history sink for the invariant checker (null = off). Shared
    // by every coordinator in the run; single-threaded within a simulation.
    KvHistory* history = nullptr;
  };

  explicit KvService(Deps deps);

  using DoneFn = std::function<void(KvOutcome, std::string value)>;

  // Coordinator API (client entry points).
  void Write(uint64_t key, std::string value, DoneFn done);
  void Read(uint64_t key, DoneFn done);

  // Replica + response plumbing, called by the Node's message handler.
  void HandleMessage(const Message& msg);

  // Crash-restart lifecycle: while down, new attempts conclude UNAVAILABLE
  // immediately (the process is gone; its clients see connection refusal).
  void SetDown(bool down) { down_ = down; }

  StorageEngine& storage() { return *storage_; }
  const KvStats& stats() const { return stats_; }

  // Swaps in a (typically subclassed, deliberately broken) storage engine.
  // Test-only: the replica path loses whatever the old engine held.
  void ReplaceStorageForTest(std::unique_ptr<StorageEngine> storage) {
    storage_ = std::move(storage);
  }

 private:
  struct InFlight {
    bool is_write = false;
    int acks = 0;
    int needed = 0;
    int outstanding = 0;
    std::string read_value;
    int64_t read_timestamp = -1;  // newest replica version seen so far
    VirtualTime started;
    DoneFn done;
    TimerId timeout_timer = kInvalidTimer;
  };

  // One client request, carried across attempts.
  struct ClientOp {
    bool is_write = false;
    uint64_t key = 0;
    std::string value;
    DoneFn done;
    int attempt = 0;
    VirtualTime started;
    VirtualTime deadline_at;
    uint64_t history_id = 0;  // KvHistory record, when recording is on
  };

  void Submit(bool is_write, uint64_t key, std::string value, DoneFn done);
  void Attempt(std::shared_ptr<ClientOp> op);
  void OnAttemptDone(const std::shared_ptr<ClientOp>& op, KvOutcome outcome,
                     std::string value);
  void Conclude(const std::shared_ptr<ClientOp>& op, KvOutcome outcome,
                std::string value);

  // One quorum attempt; `attempt_done` fires exactly once with the outcome.
  void StartOp(bool is_write, uint64_t key, std::string value, DoneFn done,
               VirtualDuration timeout);
  void Finish(uint64_t op_id, KvOutcome outcome, std::string value);
  int Quorum() const { return deps_.replication_factor / 2 + 1; }

  Deps deps_;
  std::unique_ptr<StorageEngine> storage_;
  KvStats stats_;
  Rng retry_rng_;
  bool down_ = false;
  std::unordered_map<uint64_t, InFlight> inflight_;
  uint64_t next_op_ = 1;
  // Last issued write timestamp. Derived from virtual time (with the node id
  // in the low bits) so timestamps are comparable ACROSS coordinators; a
  // purely local counter would let last-write-wins resolve quorum reads
  // against the wrong coordinator's write.
  int64_t clock_counter_ = 0;
};

}  // namespace scalecheck

#endif  // SCALECHECK_SRC_KV_KV_SERVICE_H_
