// The replicated data path riding on the ring.
//
// Each node can act as a coordinator: replicas of a key are the ring's
// natural endpoints; the coordinator sends the operation to the replicas it
// believes ALIVE and waits for the consistency level's ack count. This is
// where scalability bugs become user-visible (§2: "many live nodes are
// declared as dead, making some data not reachable by the users"): during a
// flap storm the coordinator's liveness view collapses and operations fail
// UNAVAILABLE even though every replica is actually up.
//
// The durable data path (this file + wal.h):
//  - every replica write is appended to a per-node write-ahead log and acked
//    only after the group-commit sync makes it durable, so acked writes
//    survive the crash/restart lifecycle (OnCrash/OnRestart);
//  - a coordinator that skips a dead replica stores a bounded, TTL'd hint and
//    replays it when the failure detector marks the target alive again;
//  - quorum reads detect stale replicas by hybrid timestamp and write the
//    winning version back (blocking on observed mismatch, probabilistic
//    background repair toward silent replicas otherwise);
//  - the ack threshold is tunable ONE/QUORUM/ALL (kv_consistency.h).

#ifndef SCALECHECK_SRC_KV_KV_SERVICE_H_
#define SCALECHECK_SRC_KV_KV_SERVICE_H_

#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/common/rng.h"
#include "src/common/stats.h"
#include "src/common/types.h"
#include "src/gossip/gossiper.h"
#include "src/kv/kv_consistency.h"
#include "src/kv/storage_engine.h"
#include "src/kv/wal.h"
#include "src/ring/token_ring.h"
#include "src/transport/substrate.h"

namespace scalecheck {

class AntiEntropy;
class KvHistory;

// The partitioner: client keys are small dense integers, ring tokens are
// uniform 64-bit values, so placement must hash the key onto the token space
// (Cassandra's Murmur3Partitioner plays this role). Using the raw key as a
// token would wrap every small key onto the single ring entry with the
// lowest token — the whole keyspace would land on one replica set. Anything
// that predicts a key's replicas (tests, experiment drivers) must go through
// this same mapping.
Token KvTokenForKey(uint64_t key);

enum KvMessageType : int {
  kKvWriteReq = 10,
  kKvWriteResp = 11,
  kKvReadReq = 12,
  kKvReadResp = 13,
};

struct KvRequestPayload : public Payload {
  uint64_t op_id = 0;
  uint64_t key = 0;
  std::string value;  // writes only
  int64_t timestamp = 0;

  size_t SizeBytes() const override { return 48 + value.size(); }
};

struct KvResponsePayload : public Payload {
  uint64_t op_id = 0;
  // The replica processed the request (counts toward quorum). A read of an
  // absent key still acks — quorum agreement on "not found" is a successful
  // read.
  bool ack = false;
  bool found = false;     // reads: replica had a value
  int64_t timestamp = 0;  // reads: version of the returned value
  std::string value;      // reads only

  size_t SizeBytes() const override { return 24 + value.size(); }
};

enum class KvOutcome : int {
  kOk = 0,
  kUnavailable = 1,  // fewer live replicas than the ack threshold at submission
  kTimeout = 2,      // ack threshold not reached in time
};

struct KvStats {
  // Final client outcomes (after any retries).
  int64_t ok = 0;
  int64_t unavailable = 0;
  int64_t timeout = 0;
  // Retry accounting: `retries` counts re-submitted attempts; `gave_up`
  // counts client requests that ended without an OK (so every client request
  // ends as exactly ok or gave_up — the conservation identity the fault
  // benches assert).
  int64_t retries = 0;
  int64_t gave_up = 0;
  // Client requests by the consistency level they ran under.
  int64_t ops_one = 0;
  int64_t ops_quorum = 0;
  int64_t ops_all = 0;
  // Data-path counters (see the header comment). `wal_bytes` is bytes made
  // durable by group commits; `wal_lost_records` counts appended-but-unsynced
  // records a crash threw away (nonzero is normal — they were never acked,
  // unless the planted ack-before-sync bug is armed).
  int64_t wal_appends = 0;
  int64_t wal_syncs = 0;
  int64_t wal_bytes = 0;
  int64_t wal_recovered_records = 0;
  int64_t wal_lost_records = 0;
  int64_t hints_queued = 0;
  int64_t hints_replayed = 0;
  int64_t hints_expired = 0;
  int64_t hints_dropped = 0;  // queue at capacity
  int64_t read_repairs = 0;   // repair writes sent (both repair flavours)
  // Anti-entropy (anti_entropy.h). `repair_sessions` counts sessions this
  // node initiated; `repair_bytes_streamed` counts repair-stream payload
  // bytes this node sent; `repair_keys_fixed` counts received stream writes
  // that actually advanced the local version; `repair_aborted` counts
  // sessions abandoned (peer died mid-session, or retries exhausted).
  int64_t repair_sessions = 0;
  int64_t repair_bytes_streamed = 0;
  int64_t repair_keys_fixed = 0;
  int64_t repair_aborted = 0;
  int64_t repair_retries = 0;   // hash batches re-sent after a timeout
  int64_t repair_backoffs = 0;  // scheduler yields to foreground pressure
  LogHistogram latency{/*base=*/1e5, /*growth=*/1.5, /*num_buckets=*/80};

  int64_t total() const { return ok + unavailable + timeout; }
  double UnavailableFraction() const {
    return total() == 0 ? 0.0
                        : static_cast<double>(unavailable + timeout) /
                              static_cast<double>(total());
  }
};

// One per node. The owning Node routes kKv* messages here and exposes the
// coordinator API. All callbacks run on the node's kv stage thread.
class KvService {
 public:
  // KvService speaks only to the substrate seam: a Clock for timeouts and
  // backoff, a Transport for replica traffic, a Stage for charging replica
  // storage work. The same translation unit links into the simulator (via
  // SimClock/SimTransport/SimStage) and the real-socket runner (via
  // RealClock/TcpTransport/RealStage) — no forked copies, no mode #ifdefs.
  struct Deps {
    Clock* clock = nullptr;
    Transport* transport = nullptr;
    Stage* stage = nullptr;             // the node's kv stage
    const TokenRing* ring = nullptr;    // the node's ring view
    const Gossiper* gossiper = nullptr; // liveness view
    NodeId self = kInvalidNode;
    int replication_factor = 3;
    // Ack threshold for both reads and writes.
    KvConsistency consistency = KvConsistency::kQuorum;
    // Per-attempt quorum timeout.
    VirtualDuration timeout = VirtualDuration::Seconds(2);
    // Client-request retry policy. A request is attempted up to
    // `max_attempts` times within `request_deadline`; failed attempts back
    // off exponentially from `retry_base_backoff` with deterministic jitter
    // drawn from an Rng seeded with `retry_seed`.
    int max_attempts = 1;
    VirtualDuration retry_base_backoff = VirtualDuration::Millis(50);
    VirtualDuration request_deadline = VirtualDuration::Seconds(8);
    uint64_t retry_seed = 0;
    // Durability: when on, replica writes append to the WAL and the ack is
    // deferred to the next group-commit sync; OnCrash drops the unsynced
    // tail AND the volatile storage engine, OnRestart replays the durable
    // prefix. When off (the default), storage unrealistically survives
    // crashes — the pre-durability behaviour the control-plane experiments
    // were calibrated against.
    bool wal_enabled = false;
    VirtualDuration wal_sync_interval = VirtualDuration::Millis(50);
    // Planted bug (the crash-durability ChaosSearch target): the replica
    // acks at append time, before the group commit — a crash inside the
    // sync window loses acked writes. See CheckOptions::plant_kv_ack_before_sync.
    bool plant_ack_before_sync = false;
    // Hinted handoff: bounded total queue, per-hint TTL. Zero limit disables.
    size_t hint_limit = 1024;
    VirtualDuration hint_ttl = VirtualDuration::Seconds(120);
    // Background read repair probability on mismatch-free quorum reads
    // (observed mismatches always repair). Drawn from `repair_seed`.
    double read_repair_chance = 0.1;
    uint64_t repair_seed = 0;
    // Anti-entropy repair (anti_entropy.h). Off by default: when off, no
    // AntiEntropy instance, no Merkle tree, no extra RNG draws — the
    // pre-anti-entropy behaviour (and goldens) are untouched.
    bool repair_enabled = false;
    VirtualDuration repair_interval = VirtualDuration::Seconds(10);
    int64_t repair_rate_bytes = 256 * 1024;  // bytes/sec token bucket
    int repair_max_sessions = 1;
    VirtualDuration repair_session_timeout = VirtualDuration::Seconds(10);
    int repair_max_retries = 2;
    size_t repair_pressure_max_inflight = 16;
    // Planted bug (the repair-storm ChaosSearch target): every throttle —
    // rate limit, session cap, pressure yield — is ignored and full shared
    // ranges are streamed each tick. See CheckOptions::plant_repair_storm.
    bool plant_repair_storm = false;
    uint64_t anti_entropy_seed = 0;
    // Memory charging: called with a byte delta whenever the data path's
    // footprint (WAL + memtable/runs + hint queue) changes; the Node wires
    // this to MachineMemoryModel under tag "kv-storage". Null = off.
    std::function<void(int64_t delta)> charge;
    // Client-op history sink for the invariant checker (null = off). Shared
    // by every coordinator in the run; single-threaded within a simulation.
    KvHistory* history = nullptr;
  };

  explicit KvService(Deps deps);
  ~KvService();

  // Arms periodic background machinery (today: the anti-entropy scheduler).
  // Called once the node is registered with its transport; a no-op when
  // repair is disabled.
  void Start();
  // Cancels background timers without accounting (real-carrier teardown).
  void Shutdown();

  using DoneFn = std::function<void(KvOutcome, std::string value)>;

  // Coordinator API (client entry points).
  void Write(uint64_t key, std::string value, DoneFn done);
  void Read(uint64_t key, DoneFn done);

  // Replica + response plumbing, called by the Node's message handler.
  void HandleMessage(const Message& msg);

  // Crash-restart lifecycle. While down, new attempts conclude UNAVAILABLE
  // immediately (the process is gone; its clients see connection refusal).
  // OnCrash additionally models process death: pending (unsent) write acks
  // and the volatile hint queue vanish, the unsynced WAL tail is lost, and —
  // with the WAL enabled — so is the in-memory storage engine. OnRestart
  // rebuilds storage by replaying the WAL's durable prefix.
  void SetDown(bool down) { down_ = down; }
  void OnCrash();
  void OnRestart();

  // Failure-detector hook: `target` was just marked alive again. Replays (or
  // expires) any hints queued for it.
  void OnReplicaAlive(NodeId target);

  StorageEngine& storage() { return *storage_; }
  const StorageEngine& storage() const { return *storage_; }
  const KvWal& wal() const { return wal_; }
  const KvStats& stats() const { return stats_; }
  int64_t hint_queue_depth() const { return total_hints_; }
  // Null when repair is disabled.
  const AntiEntropy* repair() const { return repair_.get(); }

  // Swaps in a (typically subclassed, deliberately broken) storage engine.
  // Test-only: the replica path loses whatever the old engine held.
  void ReplaceStorageForTest(std::unique_ptr<StorageEngine> storage) {
    storage_ = std::move(storage);
  }

 private:
  // One client request, carried across attempts.
  struct ClientOp {
    bool is_write = false;
    uint64_t key = 0;
    std::string value;
    DoneFn done;
    int attempt = 0;
    VirtualTime started;
    VirtualTime deadline_at;
    uint64_t history_id = 0;  // KvHistory record, when recording is on
    // Filled by the successful attempt: the write's hybrid timestamp and the
    // replicas that acked it — what the kv-durability invariant audits.
    int64_t write_timestamp = 0;
    std::vector<NodeId> ackers;
  };

  struct InFlight {
    std::shared_ptr<ClientOp> client;
    bool is_write = false;
    uint64_t key = 0;
    int acks = 0;
    int needed = 0;
    int outstanding = 0;
    std::vector<NodeId> targets;   // replicas the request was sent to
    std::vector<NodeId> ack_from;  // replicas that acked, in arrival order
    // Reads: per-replica reported versions (0 = replica had no value), for
    // read repair; plus the running last-write-wins winner.
    std::vector<std::pair<NodeId, int64_t>> read_versions;
    std::string read_value;
    int64_t read_timestamp = -1;  // newest replica version seen so far
    VirtualTime started;
    DoneFn done;
    TimerId timeout_timer = kInvalidTimer;
  };

  struct Hint {
    uint64_t key = 0;
    std::string value;
    int64_t timestamp = 0;  // the ORIGINAL write timestamp (replay-idempotent)
    VirtualTime expires_at;
  };

  struct PendingAck {
    NodeId coordinator = kInvalidNode;
    uint64_t op_id = 0;
  };

  void Submit(bool is_write, uint64_t key, std::string value, DoneFn done);
  void Attempt(std::shared_ptr<ClientOp> op);
  void OnAttemptDone(const std::shared_ptr<ClientOp>& op, KvOutcome outcome,
                     std::string value);
  void Conclude(const std::shared_ptr<ClientOp>& op, KvOutcome outcome,
                std::string value);

  // One replication attempt; `attempt_done` fires exactly once with the outcome.
  void StartOp(const std::shared_ptr<ClientOp>& op, DoneFn attempt_done,
               VirtualDuration timeout);
  void Finish(uint64_t op_id, KvOutcome outcome, std::string value);
  int RequiredAcks() const {
    return KvRequiredAcks(deps_.consistency, deps_.replication_factor);
  }

  // Replica-side ack transmission (deferred to group commit unless the WAL is
  // off or the planted bug acks early).
  void SendWriteAck(NodeId coordinator, uint64_t op_id);
  void ScheduleWalSync();
  void SyncWal();

  // Fire-and-forget replica write (op_id 0): hint replay and read repair.
  // Responses to op_id 0 find no in-flight op and are dropped.
  void SendReplicaWrite(NodeId target, uint64_t key, const std::string& value,
                        int64_t timestamp);
  void QueueHint(NodeId target, uint64_t key, const std::string& value,
                 int64_t timestamp);
  void MaybeReadRepair(const InFlight& op);

  // Anti-entropy plumbing: reads the current value of each (key, timestamp)
  // through the storage stage and sends kKvRepairStreamWrite messages to
  // `target`; `done` fires once with (bytes, keys) actually sent. Keys whose
  // local version moved on since the tree was hashed are sent at their
  // CURRENT timestamp (LWW makes the newer version the correct repair).
  void StreamRepairKeys(NodeId target,
                        std::vector<std::pair<uint64_t, int64_t>> keys,
                        std::function<void(int64_t, int64_t)> done);

  // Delta-charges the data path's current footprint to deps_.charge.
  void MaybeRecharge();

  Deps deps_;
  std::unique_ptr<StorageEngine> storage_;
  std::unique_ptr<AntiEntropy> repair_;  // null unless deps_.repair_enabled
  KvWal wal_;
  KvStats stats_;
  Rng retry_rng_;
  Rng repair_rng_;
  bool down_ = false;
  std::unordered_map<uint64_t, InFlight> inflight_;
  uint64_t next_op_ = 1;
  // Write acks withheld until the next group-commit sync.
  std::vector<PendingAck> pending_acks_;
  TimerId wal_sync_timer_ = kInvalidTimer;
  // Hinted-handoff queue, per dead target. std::map for deterministic
  // iteration; bounded by deps_.hint_limit across all targets.
  std::map<NodeId, std::deque<Hint>> hints_;
  int64_t total_hints_ = 0;
  int64_t hint_bytes_ = 0;
  int64_t charged_bytes_ = 0;  // last footprint reported to deps_.charge
  // Last issued write timestamp. Derived from virtual time (with the node id
  // in the low bits) so timestamps are comparable ACROSS coordinators; a
  // purely local counter would let last-write-wins resolve quorum reads
  // against the wrong coordinator's write.
  int64_t clock_counter_ = 0;
};

}  // namespace scalecheck

#endif  // SCALECHECK_SRC_KV_KV_SERVICE_H_
