// Tunable consistency levels for the KV data path.
//
// Lives in its own header so ClusterConfig and the CLI can name a level
// without pulling the whole KvService (ring, gossip, storage) include graph
// into every config consumer — the same reason CheckOptions is split out.

#ifndef SCALECHECK_SRC_KV_KV_CONSISTENCY_H_
#define SCALECHECK_SRC_KV_KV_CONSISTENCY_H_

#include <string>

#include "src/common/result.h"

namespace scalecheck {

// How many replica acks a coordinator waits for before acknowledging the
// client. The replica SET is always the full natural-endpoint list; the level
// only tunes the ack threshold, so ONE still fans the write out to every live
// replica (Cassandra semantics — weaker levels trade durability confirmation,
// not replication).
enum class KvConsistency : int {
  kOne = 0,     // first ack wins
  kQuorum = 1,  // floor(RF/2)+1 acks
  kAll = 2,     // every replica must ack
};

const char* KvConsistencyName(KvConsistency level);
Result<KvConsistency> KvConsistencyFromName(const std::string& name);

// The ack threshold the level demands at the given replication factor.
int KvRequiredAcks(KvConsistency level, int replication_factor);

}  // namespace scalecheck

#endif  // SCALECHECK_SRC_KV_KV_CONSISTENCY_H_
