#include "src/kv/merkle.h"

#include "src/common/check.h"

namespace scalecheck {
namespace {

// Independent salts for the two XOR streams; a single 64-bit fold would let
// two colliding keys cancel silently.
constexpr uint64_t kLoSalt = 0x9e3779b97f4a7c15ull;
constexpr uint64_t kHiSalt = 0xc2b2ae3d27d4eb4full;

uint64_t PairLo(uint64_t key, int64_t timestamp) {
  return Mix64(HashCombine(key, static_cast<uint64_t>(timestamp)) ^ kLoSalt);
}

uint64_t PairHi(uint64_t key, int64_t timestamp) {
  return Mix64(HashCombine(key, static_cast<uint64_t>(timestamp)) ^ kHiSalt);
}

bool InMask(const std::vector<KeyRange>& mask, Token t) {
  if (mask.empty()) {
    return true;
  }
  for (const KeyRange& r : mask) {
    if (r.Contains(t)) {
      return true;
    }
  }
  return false;
}

// True when range `r` covers ALL of the contiguous token span [lo, hi].
// Conservative: a false negative only costs a key re-scan, a false positive
// would corrupt hashes, so the boundary cases resolve toward false.
bool CoversSpan(const KeyRange& r, Token lo, Token hi) {
  if (r.start == r.end) {
    return true;  // full ring
  }
  if (!r.Contains(lo) || !r.Contains(hi)) {
    return false;
  }
  // Both span endpoints are inside (start, end]. The only way part of
  // [lo, hi] still escapes is if the complement arc (end, start] lies
  // strictly inside the span.
  const bool start_in_span = r.start >= lo && r.start <= hi;
  const bool end_in_span = r.end >= lo && r.end <= hi;
  return !(start_in_span && end_in_span);
}

}  // namespace

MerkleTree::MerkleTree(int depth) : depth_(depth) {
  CHECK(depth >= 1 && depth <= 20) << "merkle depth out of range:" << depth;
  acc_.resize(size_t{1} << depth_);
}

void MerkleTree::Apply(uint64_t key, int64_t timestamp) {
  const Token token = Mix64(key);
  const uint64_t leaf = LeafOfToken(token);
  LeafAcc& acc = acc_[leaf];
  auto it = keys_.find(token);
  if (it == keys_.end()) {
    keys_.emplace(token, std::make_pair(key, timestamp));
    acc.lo ^= PairLo(key, timestamp);
    acc.hi ^= PairHi(key, timestamp);
    ++acc.count;
    return;
  }
  if (it->second.second >= timestamp) {
    return;  // LWW: not newer than what the tree already commits to
  }
  // XOR out the old pair, XOR in the new one; count is unchanged.
  acc.lo ^= PairLo(key, it->second.second) ^ PairLo(key, timestamp);
  acc.hi ^= PairHi(key, it->second.second) ^ PairHi(key, timestamp);
  it->second.second = timestamp;
}

void MerkleTree::Clear() {
  keys_.clear();
  acc_.assign(acc_.size(), LeafAcc{});
}

int64_t MerkleTree::ApproxBytes() const {
  // map node overhead per key + the accumulator array.
  return static_cast<int64_t>(keys_.size()) * 72 +
         static_cast<int64_t>(acc_.size()) * 16 + 64;
}

DigestValue MerkleTree::LeafHash(uint64_t leaf,
                                 const std::vector<KeyRange>& mask) const {
  const int shift = 64 - depth_;
  const Token lo = static_cast<Token>(leaf) << shift;
  const Token hi = lo + ((Token{1} << shift) - 1);

  uint64_t acc_lo = 0;
  uint64_t acc_hi = 0;
  uint32_t count = 0;

  bool fast = mask.empty();
  if (!fast) {
    for (const KeyRange& r : mask) {
      if (CoversSpan(r, lo, hi)) {
        fast = true;
        break;
      }
    }
  }
  if (fast) {
    const LeafAcc& acc = acc_[leaf];
    acc_lo = acc.lo;
    acc_hi = acc.hi;
    count = acc.count;
  } else {
    // The leaf straddles a mask boundary: fold only the masked keys.
    for (auto it = keys_.lower_bound(lo); it != keys_.end() && it->first <= hi;
         ++it) {
      if (!InMask(mask, it->first)) {
        continue;
      }
      acc_lo ^= PairLo(it->second.first, it->second.second);
      acc_hi ^= PairHi(it->second.first, it->second.second);
      ++count;
    }
  }
  if (count == 0) {
    return DigestValue{};
  }
  Digest d;
  d.Add(static_cast<uint64_t>(count));
  d.Add(acc_lo);
  d.Add(acc_hi);
  return d.Finish();
}

DigestValue MerkleTree::HashOfNode(int level, uint64_t index,
                                   const std::vector<KeyRange>& mask) const {
  CHECK(level >= 0 && level <= depth_) << "merkle level out of range:" << level;
  CHECK_LT(index, uint64_t{1} << level);
  if (level == depth_) {
    return LeafHash(index, mask);
  }
  const int span_bits = depth_ - level;
  const uint64_t first = index << span_bits;
  const uint64_t last = first + (uint64_t{1} << span_bits);
  Digest d;
  d.Add(static_cast<uint64_t>(level));
  d.Add(index);
  bool any = false;
  for (uint64_t leaf = first; leaf < last; ++leaf) {
    DigestValue h = LeafHash(leaf, mask);
    any = any || h != DigestValue{};
    d.Add(h.lo);
    d.Add(h.hi);
  }
  if (!any) {
    return DigestValue{};  // empty subtrees compare equal without hashing
  }
  return d.Finish();
}

std::vector<std::pair<uint64_t, int64_t>> MerkleTree::KeysInLeaf(
    uint64_t leaf, const std::vector<KeyRange>& mask) const {
  CHECK_LT(leaf, num_leaves());
  const int shift = 64 - depth_;
  const Token lo = static_cast<Token>(leaf) << shift;
  const Token hi = lo + ((Token{1} << shift) - 1);
  std::vector<std::pair<uint64_t, int64_t>> out;
  for (auto it = keys_.lower_bound(lo); it != keys_.end() && it->first <= hi;
       ++it) {
    if (InMask(mask, it->first)) {
      out.push_back(it->second);
    }
  }
  return out;
}

}  // namespace scalecheck
