#include "src/kv/kv_history.h"

#include "src/common/check.h"

namespace scalecheck {

uint64_t KvHistory::RecordIssued(NodeId coordinator, bool is_write,
                                 uint64_t key, const std::string& value,
                                 VirtualTime now) {
  KvOpRecord rec;
  rec.id = static_cast<uint64_t>(ops_.size());
  rec.coordinator = coordinator;
  rec.is_write = is_write;
  rec.key = key;
  rec.value = value;
  rec.issued_at = now;
  ops_.push_back(std::move(rec));
  return ops_.back().id;
}

void KvHistory::RecordWriteAcked(uint64_t id, int64_t write_timestamp,
                                 const std::vector<NodeId>& ackers) {
  CHECK_LT(id, ops_.size());
  KvOpRecord& rec = ops_[id];
  CHECK(rec.is_write) << "write ack recorded for a read";
  rec.write_timestamp = write_timestamp;
  rec.ackers = ackers;
}

void KvHistory::RecordConcluded(uint64_t id, KvOutcome outcome,
                                const std::string& result_value,
                                VirtualTime now) {
  CHECK_LT(id, ops_.size());
  KvOpRecord& rec = ops_[id];
  CHECK(!rec.concluded) << "KV op concluded twice";
  rec.concluded = true;
  rec.outcome = outcome;
  rec.result_value = result_value;
  rec.concluded_at = now;
  conclusion_order_.push_back(id);
}

}  // namespace scalecheck
