// A small LSM-flavoured storage engine: an in-memory memtable that flushes
// into immutable sorted runs. Deliberately simple — the scalability bugs
// under study live in the control plane — but real enough that the data path
// examples exercise actual storage state, and that per-node memory
// accounting has something to charge.
//
// Data-space emulation (§4's Exalt [34], whose insight PIL generalizes):
// with `emulate_data_space` set, user data is "compressed to zero bytes"
// — only sizes and timestamps are retained, and reads synthesize content of
// the recorded size. "How data is processed is not affected by the content
// of the data being written, but only by its size": CPU costs and all
// control-flow stay identical while the colocation memory footprint of the
// data path collapses.

#ifndef SCALECHECK_SRC_KV_STORAGE_ENGINE_H_
#define SCALECHECK_SRC_KV_STORAGE_ENGINE_H_

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "src/common/types.h"

namespace scalecheck {

class StorageEngine {
 public:
  struct Config {
    // Memtable flush threshold (entries).
    size_t memtable_limit = 4096;
    // Background compaction triggers at this many runs.
    size_t compaction_fanin = 4;
    // Exalt-style zero-byte data emulation (sizes recorded, content dropped).
    bool emulate_data_space = false;
  };

  StorageEngine() : StorageEngine(Config{}) {}
  explicit StorageEngine(Config config) : config_(config) {}
  virtual ~StorageEngine() = default;

  // The data-path operations are virtual so tests can substitute a
  // deliberately broken engine (KvService::ReplaceStorageForTest) and prove
  // the KV history checker catches real storage bugs.
  //
  // Returns the CPU work units the operation cost (charged by the caller).
  virtual WorkUnits Put(uint64_t key, std::string value, int64_t timestamp);
  // Latest value by timestamp, searching memtable then runs newest-first.
  virtual std::optional<std::string> Get(uint64_t key, WorkUnits* work) const;
  // Timestamp of the stored version (0 if absent). Used by quorum reads to
  // resolve the newest replica value.
  virtual int64_t TimestampOf(uint64_t key) const;

  size_t memtable_entries() const { return memtable_.size(); }
  size_t num_runs() const { return runs_.size(); }
  int64_t total_entries() const { return total_entries_; }
  uint64_t flushes() const { return flushes_; }
  uint64_t compactions() const { return compactions_; }

  // Approximate heap bytes, for the machine memory model.
  int64_t ApproxBytes() const;

 private:
  struct Entry {
    std::string value;      // empty when emulating data space
    size_t value_size = 0;  // always the true size
    int64_t timestamp = 0;
  };
  using Run = std::vector<std::pair<uint64_t, Entry>>;  // sorted by key

  void Flush();
  void MaybeCompact();

  Config config_;
  std::map<uint64_t, Entry> memtable_;
  std::vector<Run> runs_;  // newest last
  int64_t total_entries_ = 0;
  int64_t bytes_ = 0;
  uint64_t flushes_ = 0;
  uint64_t compactions_ = 0;
};

}  // namespace scalecheck

#endif  // SCALECHECK_SRC_KV_STORAGE_ENGINE_H_
