#include "src/kv/anti_entropy.h"

#include <algorithm>

#include "src/common/check.h"

namespace scalecheck {
namespace {

// Subtree indices per hash message; bounds both message size and the burst a
// single response can trigger.
constexpr size_t kMaxBatchNodes = 32;

}  // namespace

AntiEntropy::AntiEntropy(Config config, Hooks hooks)
    : config_(std::move(config)),
      hooks_(std::move(hooks)),
      rng_(config_.seed) {
  CHECK(hooks_.clock != nullptr);
  CHECK(hooks_.transport != nullptr);
  CHECK(hooks_.ring != nullptr);
  CHECK(hooks_.gossiper != nullptr);
  CHECK(hooks_.stats != nullptr);
  bucket_bytes_ = static_cast<double>(config_.rate_bytes_per_sec);
  bucket_refilled_ = hooks_.clock->Now();
}

AntiEntropy::~AntiEntropy() { Shutdown(); }

void AntiEntropy::Start() {
  if (running_) {
    return;
  }
  running_ = true;
  bucket_bytes_ = static_cast<double>(config_.rate_bytes_per_sec);
  bucket_refilled_ = hooks_.clock->Now();
  timer_ = std::make_unique<PeriodicClockTimer>(hooks_.clock, config_.interval,
                                               [this] { Tick(); });
  // Desynchronized phase, same idea as the gossip timer: every node ticking
  // in lockstep is itself a storm.
  timer_->Start(config_.interval * rng_.UniformDouble());
}

void AntiEntropy::Stop() {
  running_ = false;
  timer_.reset();
  while (!sessions_.empty()) {
    AbortSession(sessions_.begin()->first);
  }
}

void AntiEntropy::Shutdown() {
  running_ = false;
  timer_.reset();
  for (auto& [id, s] : sessions_) {
    CancelSessionTimers(&s);
  }
  sessions_.clear();
}

int64_t AntiEntropy::ApproxBytes() const {
  int64_t bytes = tree_.ApproxBytes();
  for (const auto& [id, s] : sessions_) {
    bytes += 256 + static_cast<int64_t>(s.frontier.size()) * 16 +
             static_cast<int64_t>(s.awaiting_nodes.size()) * 8;
  }
  return bytes;
}

std::map<NodeId, std::vector<KeyRange>> AntiEntropy::CoReplicaRanges(
    const TokenRing& ring, int rf, NodeId self) {
  std::map<NodeId, std::vector<KeyRange>> out;
  const auto& entries = ring.entries();
  for (size_t i = 0; i < entries.size(); ++i) {
    std::vector<NodeId> replicas =
        ring.NaturalEndpointsForKey(entries[i].token, rf);
    bool mine = false;
    for (NodeId r : replicas) {
      if (r == self) {
        mine = true;
        break;
      }
    }
    if (!mine) {
      continue;
    }
    for (NodeId r : replicas) {
      if (r != self) {
        out[r].push_back(ring.RangeOfEntry(i));
      }
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// Token bucket

void AntiEntropy::RefillBucket() {
  const VirtualTime now = hooks_.clock->Now();
  const VirtualDuration dt = now - bucket_refilled_;
  bucket_refilled_ = now;
  if (dt.IsNegative()) {
    return;
  }
  const double burst = static_cast<double>(config_.rate_bytes_per_sec);
  bucket_bytes_ = std::min(
      burst, bucket_bytes_ + static_cast<double>(config_.rate_bytes_per_sec) *
                                 dt.seconds());
}

bool AntiEntropy::SpendBytes(int64_t bytes) {
  if (config_.plant_storm) {
    return true;  // PLANTED BUG: the rate limiter is ignored outright
  }
  RefillBucket();
  if (bucket_bytes_ < static_cast<double>(bytes)) {
    return false;
  }
  bucket_bytes_ -= static_cast<double>(bytes);
  return true;
}

void AntiEntropy::ChargeBytes(int64_t bytes) {
  if (config_.plant_storm) {
    return;
  }
  RefillBucket();
  // Streams are charged after the fact, so the balance may overdraw by one
  // round; the next send waits until the refill brings it positive again.
  bucket_bytes_ -= static_cast<double>(bytes);
}

VirtualDuration AntiEntropy::DelayForBytes(int64_t bytes) {
  RefillBucket();
  const double deficit = static_cast<double>(bytes) - bucket_bytes_;
  if (deficit <= 0) {
    return VirtualDuration::Millis(1);
  }
  const double secs =
      deficit / static_cast<double>(std::max<int64_t>(1, config_.rate_bytes_per_sec));
  return std::max(VirtualDuration::Millis(1),
                  VirtualDuration::FromSecondsF(secs)) +
         VirtualDuration::Millis(1);
}

// ---------------------------------------------------------------------------
// Scheduler

void AntiEntropy::Tick() {
  if (!running_) {
    return;
  }
  // A peer that died mid-session is abandoned immediately — waiting out the
  // timeout/retry ladder against a convicted node is wasted work (and the
  // original form of the crash-mid-repair bug).
  std::vector<uint64_t> dead;
  for (const auto& [id, s] : sessions_) {
    if (!hooks_.gossiper->IsAlive(s.peer)) {
      dead.push_back(id);
    }
  }
  for (uint64_t id : dead) {
    AbortSession(id);
  }

  if (config_.plant_storm) {
    StormTick();
    return;
  }
  if (sessions_.size() >= static_cast<size_t>(config_.max_sessions)) {
    return;
  }
  if (hooks_.pressure && hooks_.pressure() > config_.pressure_max_inflight) {
    ++hooks_.stats->repair_backoffs;
    return;  // foreground traffic wins; try again next interval
  }

  auto shared = CoReplicaRanges(*hooks_.ring, hooks_.replication_factor,
                                hooks_.self);
  std::vector<NodeId> candidates;
  for (const auto& [peer, ranges] : shared) {
    if (!hooks_.gossiper->IsAlive(peer)) {
      continue;
    }
    bool busy = false;
    for (const auto& [id, s] : sessions_) {
      if (s.peer == peer) {
        busy = true;
        break;
      }
    }
    if (!busy) {
      candidates.push_back(peer);
    }
  }
  if (candidates.empty()) {
    return;
  }
  const NodeId peer = candidates[rng_.PickIndex(candidates.size())];
  StartSession(peer, std::move(shared[peer]));
}

void AntiEntropy::StormTick() {
  // PLANTED BUG (repair-storm): no rate limit, no session cap, no pressure
  // yield — every tick streams the FULL shared range to every live
  // co-replica, simultaneously.
  auto shared = CoReplicaRanges(*hooks_.ring, hooks_.replication_factor,
                                hooks_.self);
  for (auto& [peer, mask] : shared) {
    if (!hooks_.gossiper->IsAlive(peer)) {
      continue;
    }
    std::vector<std::pair<uint64_t, int64_t>> keys;
    for (uint64_t leaf = 0; leaf < tree_.num_leaves(); ++leaf) {
      auto in_leaf = tree_.KeysInLeaf(leaf, mask);
      keys.insert(keys.end(), in_leaf.begin(), in_leaf.end());
    }
    if (keys.empty()) {
      continue;
    }
    ++hooks_.stats->repair_sessions;
    hooks_.stream_keys(peer, std::move(keys), [this](int64_t bytes, int64_t) {
      hooks_.stats->repair_bytes_streamed += bytes;
    });
  }
}

void AntiEntropy::StartSession(NodeId peer, std::vector<KeyRange> mask) {
  const uint64_t id = next_session_++;
  Session s;
  s.peer = peer;
  s.mask = std::move(mask);
  s.frontier.push_back({0, 0});
  sessions_.emplace(id, std::move(s));
  ++hooks_.stats->repair_sessions;
  SendNextBatch(id);
}

void AntiEntropy::SendNextBatch(uint64_t id) {
  auto it = sessions_.find(id);
  if (it == sessions_.end()) {
    return;
  }
  Session& s = it->second;
  if (s.frontier.empty()) {
    FinishIfIdle(id);
    return;
  }
  if (!hooks_.gossiper->IsAlive(s.peer)) {
    AbortSession(id);
    return;
  }
  // Yield to foreground pressure: re-check shortly instead of pushing more
  // repair traffic into an already-loaded node.
  if (hooks_.pressure && hooks_.pressure() > config_.pressure_max_inflight) {
    ++hooks_.stats->repair_backoffs;
    if (s.resume_timer == kInvalidTimer) {
      s.resume_timer = hooks_.clock->ScheduleAfter(
          config_.interval / 4, [this, id] {
            auto jt = sessions_.find(id);
            if (jt == sessions_.end()) {
              return;
            }
            jt->second.resume_timer = kInvalidTimer;
            SendNextBatch(id);
          });
    }
    return;
  }

  const int level = s.frontier.front().first;
  std::vector<uint64_t> nodes;
  while (!s.frontier.empty() && s.frontier.front().first == level &&
         nodes.size() < kMaxBatchNodes) {
    nodes.push_back(s.frontier.front().second);
    s.frontier.pop_front();
  }

  auto payload = std::make_shared<KvRepairHashPayload>();
  payload->session_id = id;
  payload->level = static_cast<uint32_t>(level);
  payload->hashes.reserve(nodes.size());
  for (uint64_t n : nodes) {
    payload->hashes.emplace_back(n, tree_.HashOfNode(level, n, s.mask));
  }

  const int64_t bytes = static_cast<int64_t>(payload->SizeBytes());
  if (!SpendBytes(bytes)) {
    // Put the batch back and wait for the bucket to refill.
    for (auto rit = nodes.rbegin(); rit != nodes.rend(); ++rit) {
      s.frontier.push_front({level, *rit});
    }
    if (s.resume_timer == kInvalidTimer) {
      s.resume_timer =
          hooks_.clock->ScheduleAfter(DelayForBytes(bytes), [this, id] {
            auto jt = sessions_.find(id);
            if (jt == sessions_.end()) {
              return;
            }
            jt->second.resume_timer = kInvalidTimer;
            SendNextBatch(id);
          });
    }
    return;
  }

  s.awaiting_level = level;
  s.awaiting_nodes = std::move(nodes);
  hooks_.transport->Send(hooks_.self, s.peer, kKvRepairHashReq,
                         std::move(payload));
  CancelSessionTimers(&s);
  s.timeout_timer = hooks_.clock->ScheduleAfter(
      config_.session_timeout, [this, id] { OnTimeout(id); });
}

void AntiEntropy::HandleMessage(const Message& msg) {
  switch (msg.type) {
    case kKvRepairHashReq:
      HandleHashReq(msg);
      return;
    case kKvRepairHashResp:
      HandleHashResp(msg);
      return;
    default:
      return;
  }
}

void AntiEntropy::HandleHashReq(const Message& msg) {
  auto req = std::static_pointer_cast<const KvRepairHashPayload>(msg.payload);
  if (static_cast<int>(req->level) > tree_.depth()) {
    return;  // depth mismatch; nothing sensible to compare
  }
  // The responder masks to ITS view of the ranges shared with the initiator;
  // each side computes the mask from its own ring. If the views disagree
  // transiently, differing hashes only cause over-streaming, which LWW
  // application makes harmless.
  auto shared = CoReplicaRanges(*hooks_.ring, hooks_.replication_factor,
                                hooks_.self);
  auto mit = shared.find(msg.from);
  auto resp = std::make_shared<KvRepairDiffPayload>();
  resp->session_id = req->session_id;
  resp->level = req->level;
  if (mit != shared.end()) {
    const std::vector<KeyRange>& mask = mit->second;
    const int level = static_cast<int>(req->level);
    for (const auto& [index, hash] : req->hashes) {
      if (index >= (uint64_t{1} << level)) {
        continue;
      }
      if (tree_.HashOfNode(level, index, mask) == hash) {
        continue;
      }
      resp->differing.push_back(index);
      // At leaf level the responder also pushes its own copy of the
      // differing span — divergence repairs in both directions in one
      // session.
      if (level == tree_.depth()) {
        auto keys = tree_.KeysInLeaf(index, mask);
        if (!keys.empty()) {
          hooks_.stream_keys(msg.from, std::move(keys),
                             [this](int64_t bytes, int64_t) {
                               hooks_.stats->repair_bytes_streamed += bytes;
                               ChargeBytes(bytes);
                             });
        }
      }
    }
  }
  ChargeBytes(static_cast<int64_t>(resp->SizeBytes()));
  hooks_.transport->Send(hooks_.self, msg.from, kKvRepairHashResp,
                         std::move(resp));
}

void AntiEntropy::HandleHashResp(const Message& msg) {
  auto resp = std::static_pointer_cast<const KvRepairDiffPayload>(msg.payload);
  auto it = sessions_.find(resp->session_id);
  if (it == sessions_.end()) {
    return;  // aborted or finished; a late answer is not an error
  }
  Session& s = it->second;
  if (msg.from != s.peer ||
      static_cast<int>(resp->level) != s.awaiting_level) {
    return;  // stale (e.g. the answer to a batch we already retried)
  }
  CancelSessionTimers(&s);
  const int level = s.awaiting_level;
  s.awaiting_level = -1;
  s.awaiting_nodes.clear();
  s.retries = 0;

  if (level == tree_.depth()) {
    std::vector<uint64_t> leaves;
    for (uint64_t leaf : resp->differing) {
      if (leaf < tree_.num_leaves()) {
        leaves.push_back(leaf);
      }
    }
    StreamLeaves(resp->session_id, s.peer, leaves, s.mask);
  } else {
    for (uint64_t index : resp->differing) {
      if (index >= (uint64_t{1} << level)) {
        continue;
      }
      s.frontier.push_back({level + 1, index * 2});
      s.frontier.push_back({level + 1, index * 2 + 1});
    }
  }
  SendNextBatch(resp->session_id);
}

void AntiEntropy::StreamLeaves(uint64_t session_id, NodeId target,
                               const std::vector<uint64_t>& leaves,
                               const std::vector<KeyRange>& mask) {
  std::vector<std::pair<uint64_t, int64_t>> keys;
  for (uint64_t leaf : leaves) {
    auto in_leaf = tree_.KeysInLeaf(leaf, mask);
    keys.insert(keys.end(), in_leaf.begin(), in_leaf.end());
  }
  if (keys.empty()) {
    return;
  }
  auto it = sessions_.find(session_id);
  if (it != sessions_.end()) {
    ++it->second.outstanding_streams;
  }
  hooks_.stream_keys(target, std::move(keys),
                     [this, session_id](int64_t bytes, int64_t) {
                       hooks_.stats->repair_bytes_streamed += bytes;
                       ChargeBytes(bytes);
                       auto jt = sessions_.find(session_id);
                       if (jt == sessions_.end()) {
                         return;
                       }
                       --jt->second.outstanding_streams;
                       FinishIfIdle(session_id);
                     });
}

void AntiEntropy::OnTimeout(uint64_t id) {
  auto it = sessions_.find(id);
  if (it == sessions_.end()) {
    return;
  }
  Session& s = it->second;
  s.timeout_timer = kInvalidTimer;
  if (!hooks_.gossiper->IsAlive(s.peer) || s.retries >= config_.max_retries) {
    AbortSession(id);
    return;
  }
  ++s.retries;
  ++hooks_.stats->repair_retries;
  // Re-queue the in-flight batch and go through the normal send path (which
  // re-applies the rate limit and pressure checks).
  const int level = s.awaiting_level;
  std::vector<uint64_t> nodes = std::move(s.awaiting_nodes);
  s.awaiting_level = -1;
  s.awaiting_nodes.clear();
  for (auto rit = nodes.rbegin(); rit != nodes.rend(); ++rit) {
    s.frontier.push_front({level, *rit});
  }
  SendNextBatch(id);
}

void AntiEntropy::AbortSession(uint64_t id) {
  auto it = sessions_.find(id);
  if (it == sessions_.end()) {
    return;
  }
  CancelSessionTimers(&it->second);
  sessions_.erase(it);
  ++hooks_.stats->repair_aborted;
}

void AntiEntropy::FinishIfIdle(uint64_t id) {
  auto it = sessions_.find(id);
  if (it == sessions_.end()) {
    return;
  }
  Session& s = it->second;
  if (!s.frontier.empty() || s.awaiting_level >= 0 ||
      s.outstanding_streams > 0) {
    return;
  }
  CancelSessionTimers(&s);
  sessions_.erase(it);
}

void AntiEntropy::CancelSessionTimers(Session* s) {
  if (s->timeout_timer != kInvalidTimer) {
    hooks_.clock->CancelTimer(s->timeout_timer);
    s->timeout_timer = kInvalidTimer;
  }
  if (s->resume_timer != kInvalidTimer) {
    hooks_.clock->CancelTimer(s->resume_timer);
    s->resume_timer = kInvalidTimer;
  }
}

}  // namespace scalecheck
