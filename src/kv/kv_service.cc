#include "src/kv/kv_service.h"

#include <algorithm>
#include <utility>

#include "src/common/check.h"
#include "src/kv/kv_history.h"

namespace scalecheck {

KvService::KvService(Deps deps)
    : deps_(deps),
      storage_(std::make_unique<StorageEngine>()),
      retry_rng_(deps.retry_seed) {
  CHECK_NOTNULL(deps_.clock);
  CHECK_NOTNULL(deps_.transport);
  CHECK_NOTNULL(deps_.stage);
  CHECK_NOTNULL(deps_.ring);
  CHECK_NOTNULL(deps_.gossiper);
}

void KvService::Write(uint64_t key, std::string value, DoneFn done) {
  Submit(/*is_write=*/true, key, std::move(value), std::move(done));
}

void KvService::Read(uint64_t key, DoneFn done) {
  Submit(/*is_write=*/false, key, "", std::move(done));
}

void KvService::Submit(bool is_write, uint64_t key, std::string value, DoneFn done) {
  auto op = std::make_shared<ClientOp>();
  op->is_write = is_write;
  op->key = key;
  op->value = std::move(value);
  op->done = std::move(done);
  op->started = deps_.clock->Now();
  op->deadline_at = op->started + deps_.request_deadline;
  if (deps_.history != nullptr) {
    op->history_id = deps_.history->RecordIssued(deps_.self, is_write, key,
                                                 op->value, op->started);
  }
  Attempt(std::move(op));
}

void KvService::Attempt(std::shared_ptr<ClientOp> op) {
  ++op->attempt;
  if (down_) {
    Conclude(op, KvOutcome::kUnavailable, "");
    return;
  }
  // The per-attempt timeout never extends past the request deadline.
  VirtualDuration budget = op->deadline_at - deps_.clock->Now();
  VirtualDuration timeout = std::min(deps_.timeout, budget);
  if (timeout.nanos() < 1) {
    timeout = VirtualDuration::Nanos(1);
  }
  StartOp(op->is_write, op->key, op->value,
          [this, op](KvOutcome outcome, std::string value) {
            OnAttemptDone(op, outcome, std::move(value));
          },
          timeout);
}

void KvService::OnAttemptDone(const std::shared_ptr<ClientOp>& op, KvOutcome outcome,
                              std::string value) {
  if (outcome == KvOutcome::kOk) {
    Conclude(op, outcome, std::move(value));
    return;
  }
  int max_attempts = std::max(1, deps_.max_attempts);
  if (op->attempt >= max_attempts) {
    Conclude(op, outcome, "");
    return;
  }
  // Exponential backoff with deterministic jitter in [0.5, 1.5).
  double scale = static_cast<double>(int64_t{1} << (op->attempt - 1));
  double jitter = 0.5 + retry_rng_.UniformDouble();
  auto backoff = VirtualDuration::Nanos(static_cast<int64_t>(
      static_cast<double>(deps_.retry_base_backoff.nanos()) * scale * jitter));
  if (deps_.clock->Now() + backoff >= op->deadline_at) {
    Conclude(op, outcome, "");
    return;
  }
  ++stats_.retries;
  deps_.clock->ScheduleAfter(backoff, [this, op] { Attempt(op); });
}

void KvService::Conclude(const std::shared_ptr<ClientOp>& op, KvOutcome outcome,
                         std::string value) {
  switch (outcome) {
    case KvOutcome::kOk:
      ++stats_.ok;
      stats_.latency.AddDuration(deps_.clock->Now() - op->started);
      break;
    case KvOutcome::kUnavailable:
      ++stats_.unavailable;
      ++stats_.gave_up;
      break;
    case KvOutcome::kTimeout:
      ++stats_.timeout;
      ++stats_.gave_up;
      break;
  }
  if (deps_.history != nullptr) {
    deps_.history->RecordConcluded(op->history_id, outcome, value,
                                   deps_.clock->Now());
  }
  if (op->done) {
    op->done(outcome, std::move(value));
  }
}

void KvService::StartOp(bool is_write, uint64_t key, std::string value, DoneFn done,
                        VirtualDuration timeout) {
  if (deps_.ring->num_entries() == 0) {
    done(KvOutcome::kUnavailable, "");
    return;
  }
  std::vector<NodeId> replicas =
      deps_.ring->NaturalEndpointsForKey(key, deps_.replication_factor);
  std::vector<NodeId> live;
  for (NodeId replica : replicas) {
    if (replica == deps_.self || deps_.gossiper->IsAlive(replica)) {
      live.push_back(replica);
    }
  }
  if (static_cast<int>(live.size()) < Quorum()) {
    // The §2 user impact: replicas convicted by the flapping failure
    // detector are skipped, so the operation cannot reach quorum.
    done(KvOutcome::kUnavailable, "");
    return;
  }

  uint64_t op_id = next_op_++;
  InFlight& op = inflight_[op_id];
  op.is_write = is_write;
  op.needed = Quorum();
  op.outstanding = static_cast<int>(live.size());
  op.started = deps_.clock->Now();
  op.done = std::move(done);
  op.timeout_timer = deps_.clock->ScheduleAfter(timeout, [this, op_id] {
    auto it = inflight_.find(op_id);
    if (it == inflight_.end()) {
      return;
    }
    it->second.timeout_timer = kInvalidTimer;
    Finish(op_id, KvOutcome::kTimeout, "");
  });

  // Hybrid timestamp: virtual time in the high bits, coordinator id in the
  // low bits, clamped monotonic per coordinator. Comparable across
  // coordinators, so last-write-wins read resolution agrees with the real
  // order in which quorum writes were issued.
  clock_counter_ = std::max<int64_t>(
      clock_counter_ + 1, deps_.clock->Now().nanos() * 1024 +
                              (static_cast<int64_t>(deps_.self) & 1023));
  int64_t timestamp = clock_counter_;
  for (NodeId replica : live) {
    auto req = std::make_shared<KvRequestPayload>();
    req->op_id = op_id;
    req->key = key;
    req->value = value;
    req->timestamp = timestamp;
    if (replica == deps_.self) {
      // Local replica: apply on our own stage without the network hop.
      Message self_msg;
      self_msg.from = deps_.self;
      self_msg.to = deps_.self;
      self_msg.type = is_write ? kKvWriteReq : kKvReadReq;
      self_msg.payload = req;
      HandleMessage(self_msg);
    } else {
      deps_.transport->Send(deps_.self, replica, is_write ? kKvWriteReq : kKvReadReq,
                          std::move(req));
    }
  }
}

void KvService::HandleMessage(const Message& msg) {
  switch (msg.type) {
    case kKvWriteReq: {
      auto req = std::static_pointer_cast<const KvRequestPayload>(msg.payload);
      NodeId coordinator = msg.from;
      deps_.stage->Submit(
          "kv.write-replica",
          [this, req] {
            return storage_->Put(req->key, req->value, req->timestamp);
          },
          [this, req, coordinator] {
            auto resp = std::make_shared<KvResponsePayload>();
            resp->op_id = req->op_id;
            resp->ack = true;
            if (coordinator == deps_.self) {
              Message self_msg;
              self_msg.from = deps_.self;
              self_msg.to = deps_.self;
              self_msg.type = kKvWriteResp;
              self_msg.payload = resp;
              HandleMessage(self_msg);
            } else {
              deps_.transport->Send(deps_.self, coordinator, kKvWriteResp,
                                    std::move(resp));
            }
          });
      break;
    }
    case kKvReadReq: {
      auto req = std::static_pointer_cast<const KvRequestPayload>(msg.payload);
      NodeId coordinator = msg.from;
      auto value = std::make_shared<std::optional<std::string>>();
      auto version = std::make_shared<int64_t>(0);
      deps_.stage->Submit(
          "kv.read-replica",
          [this, req, value, version] {
            WorkUnits work = 0;
            *value = storage_->Get(req->key, &work);
            *version = storage_->TimestampOf(req->key);
            return work;
          },
          [this, req, coordinator, value, version] {
            auto resp = std::make_shared<KvResponsePayload>();
            resp->op_id = req->op_id;
            resp->ack = true;
            resp->found = value->has_value();
            resp->timestamp = *version;
            resp->value = value->value_or("");
            if (coordinator == deps_.self) {
              Message self_msg;
              self_msg.from = deps_.self;
              self_msg.to = deps_.self;
              self_msg.type = kKvReadResp;
              self_msg.payload = resp;
              HandleMessage(self_msg);
            } else {
              deps_.transport->Send(deps_.self, coordinator, kKvReadResp,
                                    std::move(resp));
            }
          });
      break;
    }
    case kKvWriteResp:
    case kKvReadResp: {
      auto resp = std::static_pointer_cast<const KvResponsePayload>(msg.payload);
      auto it = inflight_.find(resp->op_id);
      if (it == inflight_.end()) {
        return;  // already finished (timeout or quorum)
      }
      InFlight& op = it->second;
      --op.outstanding;
      if (resp->ack) {
        ++op.acks;
        // Quorum read resolution: the newest version wins (last-write-wins
        // by coordinator timestamp, as the write path orders them).
        if (resp->found && resp->timestamp > op.read_timestamp) {
          op.read_timestamp = resp->timestamp;
          op.read_value = resp->value;
        }
      }
      if (op.acks >= op.needed) {
        Finish(resp->op_id, KvOutcome::kOk, op.read_value);
      } else if (op.outstanding == 0) {
        Finish(resp->op_id, KvOutcome::kTimeout, "");
      }
      break;
    }
    default:
      CHECK(false) << "not a KV message type" << msg.type;
  }
}

void KvService::Finish(uint64_t op_id, KvOutcome outcome, std::string value) {
  auto it = inflight_.find(op_id);
  CHECK(it != inflight_.end());
  InFlight op = std::move(it->second);
  inflight_.erase(it);
  if (op.timeout_timer != kInvalidTimer) {
    deps_.clock->CancelTimer(op.timeout_timer);
  }
  // Outcome accounting happens at the client-request layer (Conclude), so a
  // retried attempt's failure is not double-counted.
  if (op.done) {
    op.done(outcome, std::move(value));
  }
}

}  // namespace scalecheck
