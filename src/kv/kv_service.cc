#include "src/kv/kv_service.h"

#include <algorithm>
#include <utility>

#include "src/common/check.h"
#include "src/common/hash.h"
#include "src/kv/anti_entropy.h"
#include "src/kv/kv_history.h"

namespace scalecheck {

Token KvTokenForKey(uint64_t key) { return Mix64(key); }

KvService::KvService(Deps deps)
    : deps_(deps),
      storage_(std::make_unique<StorageEngine>()),
      retry_rng_(deps.retry_seed),
      repair_rng_(deps.repair_seed) {
  CHECK_NOTNULL(deps_.clock);
  CHECK_NOTNULL(deps_.transport);
  CHECK_NOTNULL(deps_.stage);
  CHECK_NOTNULL(deps_.ring);
  CHECK_NOTNULL(deps_.gossiper);
  if (deps_.repair_enabled) {
    AntiEntropy::Config cfg;
    cfg.interval = deps_.repair_interval;
    cfg.rate_bytes_per_sec = deps_.repair_rate_bytes;
    cfg.max_sessions = deps_.repair_max_sessions;
    cfg.session_timeout = deps_.repair_session_timeout;
    cfg.max_retries = deps_.repair_max_retries;
    cfg.pressure_max_inflight = deps_.repair_pressure_max_inflight;
    cfg.plant_storm = deps_.plant_repair_storm;
    cfg.seed = deps_.anti_entropy_seed;
    AntiEntropy::Hooks hooks;
    hooks.clock = deps_.clock;
    hooks.transport = deps_.transport;
    hooks.ring = deps_.ring;
    hooks.gossiper = deps_.gossiper;
    hooks.self = deps_.self;
    hooks.replication_factor = deps_.replication_factor;
    hooks.stream_keys = [this](NodeId target,
                               std::vector<std::pair<uint64_t, int64_t>> keys,
                               AntiEntropy::StreamDoneFn done) {
      StreamRepairKeys(target, std::move(keys), std::move(done));
    };
    hooks.pressure = [this] { return inflight_.size(); };
    hooks.stats = &stats_;
    repair_ = std::make_unique<AntiEntropy>(std::move(cfg), std::move(hooks));
  }
}

KvService::~KvService() = default;

void KvService::Start() {
  if (repair_ != nullptr && !down_) {
    repair_->Start();
  }
}

void KvService::Shutdown() {
  if (repair_ != nullptr) {
    repair_->Shutdown();
  }
}

void KvService::Write(uint64_t key, std::string value, DoneFn done) {
  Submit(/*is_write=*/true, key, std::move(value), std::move(done));
}

void KvService::Read(uint64_t key, DoneFn done) {
  Submit(/*is_write=*/false, key, "", std::move(done));
}

void KvService::Submit(bool is_write, uint64_t key, std::string value, DoneFn done) {
  auto op = std::make_shared<ClientOp>();
  op->is_write = is_write;
  op->key = key;
  op->value = std::move(value);
  op->done = std::move(done);
  op->started = deps_.clock->Now();
  op->deadline_at = op->started + deps_.request_deadline;
  switch (deps_.consistency) {
    case KvConsistency::kOne:
      ++stats_.ops_one;
      break;
    case KvConsistency::kQuorum:
      ++stats_.ops_quorum;
      break;
    case KvConsistency::kAll:
      ++stats_.ops_all;
      break;
  }
  if (deps_.history != nullptr) {
    op->history_id = deps_.history->RecordIssued(deps_.self, is_write, key,
                                                 op->value, op->started);
  }
  Attempt(std::move(op));
}

void KvService::Attempt(std::shared_ptr<ClientOp> op) {
  ++op->attempt;
  if (down_) {
    Conclude(op, KvOutcome::kUnavailable, "");
    return;
  }
  // The per-attempt timeout never extends past the request deadline.
  VirtualDuration budget = op->deadline_at - deps_.clock->Now();
  VirtualDuration timeout = std::min(deps_.timeout, budget);
  if (timeout.nanos() < 1) {
    timeout = VirtualDuration::Nanos(1);
  }
  StartOp(op,
          [this, op](KvOutcome outcome, std::string value) {
            OnAttemptDone(op, outcome, std::move(value));
          },
          timeout);
}

void KvService::OnAttemptDone(const std::shared_ptr<ClientOp>& op, KvOutcome outcome,
                              std::string value) {
  if (outcome == KvOutcome::kOk) {
    Conclude(op, outcome, std::move(value));
    return;
  }
  int max_attempts = std::max(1, deps_.max_attempts);
  if (op->attempt >= max_attempts) {
    Conclude(op, outcome, "");
    return;
  }
  // Exponential backoff with deterministic jitter in [0.5, 1.5).
  double scale = static_cast<double>(int64_t{1} << (op->attempt - 1));
  double jitter = 0.5 + retry_rng_.UniformDouble();
  auto backoff = VirtualDuration::Nanos(static_cast<int64_t>(
      static_cast<double>(deps_.retry_base_backoff.nanos()) * scale * jitter));
  if (deps_.clock->Now() + backoff >= op->deadline_at) {
    Conclude(op, outcome, "");
    return;
  }
  ++stats_.retries;
  deps_.clock->ScheduleAfter(backoff, [this, op] { Attempt(op); });
}

void KvService::Conclude(const std::shared_ptr<ClientOp>& op, KvOutcome outcome,
                         std::string value) {
  switch (outcome) {
    case KvOutcome::kOk:
      ++stats_.ok;
      stats_.latency.AddDuration(deps_.clock->Now() - op->started);
      break;
    case KvOutcome::kUnavailable:
      ++stats_.unavailable;
      ++stats_.gave_up;
      break;
    case KvOutcome::kTimeout:
      ++stats_.timeout;
      ++stats_.gave_up;
      break;
  }
  if (deps_.history != nullptr) {
    if (op->is_write && outcome == KvOutcome::kOk) {
      deps_.history->RecordWriteAcked(op->history_id, op->write_timestamp,
                                      op->ackers);
    }
    deps_.history->RecordConcluded(op->history_id, outcome, value,
                                   deps_.clock->Now());
  }
  if (op->done) {
    op->done(outcome, std::move(value));
  }
}

void KvService::StartOp(const std::shared_ptr<ClientOp>& op, DoneFn attempt_done,
                        VirtualDuration timeout) {
  const bool is_write = op->is_write;
  const uint64_t key = op->key;
  if (deps_.ring->num_entries() == 0) {
    attempt_done(KvOutcome::kUnavailable, "");
    return;
  }
  std::vector<NodeId> replicas = deps_.ring->NaturalEndpointsForKey(
      KvTokenForKey(key), deps_.replication_factor);
  std::vector<NodeId> live;
  std::vector<NodeId> dead;
  for (NodeId replica : replicas) {
    if (replica == deps_.self || deps_.gossiper->IsAlive(replica)) {
      live.push_back(replica);
    } else {
      dead.push_back(replica);
    }
  }
  if (static_cast<int>(live.size()) < RequiredAcks()) {
    // The §2 user impact: replicas convicted by the flapping failure
    // detector are skipped, so the operation cannot reach its ack threshold.
    attempt_done(KvOutcome::kUnavailable, "");
    return;
  }

  uint64_t op_id = next_op_++;
  InFlight& inflight = inflight_[op_id];
  inflight.client = op;
  inflight.is_write = is_write;
  inflight.key = key;
  inflight.needed = RequiredAcks();
  inflight.outstanding = static_cast<int>(live.size());
  inflight.targets = live;
  inflight.started = deps_.clock->Now();
  inflight.done = std::move(attempt_done);
  inflight.timeout_timer = deps_.clock->ScheduleAfter(timeout, [this, op_id] {
    auto it = inflight_.find(op_id);
    if (it == inflight_.end()) {
      return;
    }
    it->second.timeout_timer = kInvalidTimer;
    Finish(op_id, KvOutcome::kTimeout, "");
  });

  // Hybrid timestamp: virtual time in the high bits, coordinator id in the
  // low bits, clamped monotonic per coordinator. Comparable across
  // coordinators, so last-write-wins read resolution agrees with the real
  // order in which quorum writes were issued.
  clock_counter_ = std::max<int64_t>(
      clock_counter_ + 1, deps_.clock->Now().nanos() * 1024 +
                              (static_cast<int64_t>(deps_.self) & 1023));
  int64_t timestamp = clock_counter_;
  if (is_write) {
    op->write_timestamp = timestamp;
    // Hinted handoff: the write is proceeding without the convicted
    // replicas, so remember their copy for replay when they come back.
    for (NodeId replica : dead) {
      QueueHint(replica, key, op->value, timestamp);
    }
  }
  for (NodeId replica : live) {
    auto req = std::make_shared<KvRequestPayload>();
    req->op_id = op_id;
    req->key = key;
    req->value = op->value;
    req->timestamp = timestamp;
    if (replica == deps_.self) {
      // Local replica: apply on our own stage without the network hop.
      Message self_msg;
      self_msg.from = deps_.self;
      self_msg.to = deps_.self;
      self_msg.type = is_write ? kKvWriteReq : kKvReadReq;
      self_msg.payload = req;
      HandleMessage(self_msg);
    } else {
      deps_.transport->Send(deps_.self, replica, is_write ? kKvWriteReq : kKvReadReq,
                          std::move(req));
    }
  }
}

void KvService::HandleMessage(const Message& msg) {
  switch (msg.type) {
    case kKvWriteReq: {
      auto req = std::static_pointer_cast<const KvRequestPayload>(msg.payload);
      NodeId coordinator = msg.from;
      deps_.stage->Submit(
          "kv.write-replica",
          [this, req] {
            WorkUnits work = storage_->Put(req->key, req->value, req->timestamp);
            if (deps_.wal_enabled) {
              // Sequential append: cheap relative to the memtable insert.
              int64_t appended =
                  wal_.Append(req->key, req->timestamp, req->value);
              ++stats_.wal_appends;
              work += 100 + static_cast<WorkUnits>(appended) / 4;
            }
            if (repair_ != nullptr) {
              repair_->OnWriteApplied(req->key, req->timestamp);
            }
            return work;
          },
          [this, req, coordinator] {
            const bool fire_and_forget = req->op_id == 0;
            if (!deps_.wal_enabled) {
              if (!fire_and_forget) {
                SendWriteAck(coordinator, req->op_id);
              }
            } else {
              if (!fire_and_forget) {
                if (deps_.plant_ack_before_sync) {
                  // PLANTED BUG: acking here, before the group commit, is
                  // the ack-before-fsync mistake — a crash inside the sync
                  // window silently loses an acknowledged write.
                  SendWriteAck(coordinator, req->op_id);
                } else {
                  pending_acks_.push_back(PendingAck{coordinator, req->op_id});
                }
              }
              ScheduleWalSync();
            }
            MaybeRecharge();
          });
      break;
    }
    case kKvReadReq: {
      auto req = std::static_pointer_cast<const KvRequestPayload>(msg.payload);
      NodeId coordinator = msg.from;
      auto value = std::make_shared<std::optional<std::string>>();
      auto version = std::make_shared<int64_t>(0);
      deps_.stage->Submit(
          "kv.read-replica",
          [this, req, value, version] {
            WorkUnits work = 0;
            *value = storage_->Get(req->key, &work);
            *version = storage_->TimestampOf(req->key);
            return work;
          },
          [this, req, coordinator, value, version] {
            auto resp = std::make_shared<KvResponsePayload>();
            resp->op_id = req->op_id;
            resp->ack = true;
            resp->found = value->has_value();
            resp->timestamp = *version;
            resp->value = value->value_or("");
            if (coordinator == deps_.self) {
              Message self_msg;
              self_msg.from = deps_.self;
              self_msg.to = deps_.self;
              self_msg.type = kKvReadResp;
              self_msg.payload = resp;
              HandleMessage(self_msg);
            } else {
              deps_.transport->Send(deps_.self, coordinator, kKvReadResp,
                                    std::move(resp));
            }
          });
      break;
    }
    case kKvRepairHashReq:
    case kKvRepairHashResp: {
      if (repair_ != nullptr && !down_) {
        repair_->HandleMessage(msg);
      }
      break;
    }
    case kKvRepairStreamWrite: {
      auto req = std::static_pointer_cast<const KvRequestPayload>(msg.payload);
      deps_.stage->Submit(
          "kv.repair-apply",
          [this, req] {
            // TimestampOf guard instead of a bare Put: it makes the
            // "fixed" count honest (only actual advances count) and closes
            // the memtable-shadows-flushed-run edge for the repair path.
            if (storage_->TimestampOf(req->key) >= req->timestamp) {
              return WorkUnits{50};
            }
            WorkUnits work = storage_->Put(req->key, req->value, req->timestamp);
            if (deps_.wal_enabled) {
              int64_t appended =
                  wal_.Append(req->key, req->timestamp, req->value);
              ++stats_.wal_appends;
              work += 100 + static_cast<WorkUnits>(appended) / 4;
            }
            ++stats_.repair_keys_fixed;
            if (repair_ != nullptr) {
              repair_->OnWriteApplied(req->key, req->timestamp);
            }
            return work;
          },
          [this] {
            if (deps_.wal_enabled) {
              ScheduleWalSync();
            }
            MaybeRecharge();
          });
      break;
    }
    case kKvWriteResp:
    case kKvReadResp: {
      auto resp = std::static_pointer_cast<const KvResponsePayload>(msg.payload);
      auto it = inflight_.find(resp->op_id);
      if (it == inflight_.end()) {
        return;  // already finished, or a fire-and-forget (op_id 0) ack
      }
      InFlight& op = it->second;
      --op.outstanding;
      if (resp->ack) {
        ++op.acks;
        op.ack_from.push_back(msg.from);
        if (!op.is_write) {
          op.read_versions.emplace_back(msg.from,
                                        resp->found ? resp->timestamp : 0);
        }
        // Quorum read resolution: the newest version wins (last-write-wins
        // by coordinator timestamp, as the write path orders them).
        if (resp->found && resp->timestamp > op.read_timestamp) {
          op.read_timestamp = resp->timestamp;
          op.read_value = resp->value;
        }
      }
      if (op.acks >= op.needed) {
        Finish(resp->op_id, KvOutcome::kOk, op.read_value);
      } else if (op.outstanding == 0) {
        Finish(resp->op_id, KvOutcome::kTimeout, "");
      }
      break;
    }
    default:
      CHECK(false) << "not a KV message type" << msg.type;
  }
}

void KvService::Finish(uint64_t op_id, KvOutcome outcome, std::string value) {
  auto it = inflight_.find(op_id);
  CHECK(it != inflight_.end());
  InFlight op = std::move(it->second);
  inflight_.erase(it);
  if (op.timeout_timer != kInvalidTimer) {
    deps_.clock->CancelTimer(op.timeout_timer);
  }
  if (outcome == KvOutcome::kOk) {
    if (op.is_write) {
      // The durability audit trail: which replicas this ack rests on.
      op.client->ackers = op.ack_from;
    } else {
      MaybeReadRepair(op);
    }
  }
  // Outcome accounting happens at the client-request layer (Conclude), so a
  // retried attempt's failure is not double-counted.
  if (op.done) {
    op.done(outcome, std::move(value));
  }
}

void KvService::SendWriteAck(NodeId coordinator, uint64_t op_id) {
  auto resp = std::make_shared<KvResponsePayload>();
  resp->op_id = op_id;
  resp->ack = true;
  if (coordinator == deps_.self) {
    Message self_msg;
    self_msg.from = deps_.self;
    self_msg.to = deps_.self;
    self_msg.type = kKvWriteResp;
    self_msg.payload = resp;
    HandleMessage(self_msg);
  } else {
    deps_.transport->Send(deps_.self, coordinator, kKvWriteResp,
                          std::move(resp));
  }
}

void KvService::ScheduleWalSync() {
  if (wal_sync_timer_ != kInvalidTimer) {
    return;
  }
  wal_sync_timer_ = deps_.clock->ScheduleAfter(deps_.wal_sync_interval, [this] {
    wal_sync_timer_ = kInvalidTimer;
    SyncWal();
  });
}

void KvService::SyncWal() {
  if (down_) {
    return;  // the crash already dropped the tail and the pending acks
  }
  int64_t synced = wal_.Sync();
  if (synced > 0) {
    ++stats_.wal_syncs;
    stats_.wal_bytes += synced;
  }
  // Group commit: every write that made it into this sync acks together.
  std::vector<PendingAck> acks;
  acks.swap(pending_acks_);
  for (const PendingAck& ack : acks) {
    SendWriteAck(ack.coordinator, ack.op_id);
  }
}

void KvService::SendReplicaWrite(NodeId target, uint64_t key,
                                 const std::string& value, int64_t timestamp) {
  auto req = std::make_shared<KvRequestPayload>();
  req->op_id = 0;  // fire-and-forget: the replica's ack finds no in-flight op
  req->key = key;
  req->value = value;
  req->timestamp = timestamp;
  if (target == deps_.self) {
    Message self_msg;
    self_msg.from = deps_.self;
    self_msg.to = deps_.self;
    self_msg.type = kKvWriteReq;
    self_msg.payload = req;
    HandleMessage(self_msg);
  } else {
    deps_.transport->Send(deps_.self, target, kKvWriteReq, std::move(req));
  }
}

void KvService::QueueHint(NodeId target, uint64_t key, const std::string& value,
                          int64_t timestamp) {
  if (deps_.hint_limit == 0) {
    return;
  }
  if (total_hints_ >= static_cast<int64_t>(deps_.hint_limit)) {
    // Bounded queue: shedding new hints under sustained replica death is the
    // flood-control the hinted-handoff experiments probe.
    ++stats_.hints_dropped;
    return;
  }
  Hint hint;
  hint.key = key;
  hint.value = value;
  hint.timestamp = timestamp;
  hint.expires_at = deps_.clock->Now() + deps_.hint_ttl;
  hint_bytes_ += 64 + static_cast<int64_t>(value.size());
  hints_[target].push_back(std::move(hint));
  ++total_hints_;
  ++stats_.hints_queued;
  MaybeRecharge();
}

void KvService::OnReplicaAlive(NodeId target) {
  if (down_) {
    return;
  }
  auto it = hints_.find(target);
  if (it == hints_.end()) {
    return;
  }
  std::deque<Hint> hints = std::move(it->second);
  hints_.erase(it);
  total_hints_ -= static_cast<int64_t>(hints.size());
  VirtualTime now = deps_.clock->Now();
  for (const Hint& hint : hints) {
    hint_bytes_ -= 64 + static_cast<int64_t>(hint.value.size());
    if (now >= hint.expires_at) {
      ++stats_.hints_expired;
      continue;
    }
    // The hint carries the ORIGINAL write timestamp, so replaying after a
    // newer write to the same key is a no-op under last-write-wins —
    // replay is idempotent.
    SendReplicaWrite(target, hint.key, hint.value, hint.timestamp);
    ++stats_.hints_replayed;
  }
  MaybeRecharge();
}

void KvService::MaybeReadRepair(const InFlight& op) {
  if (op.read_timestamp < 0) {
    return;  // no replica had the key — nothing to converge toward
  }
  bool mismatch = false;
  for (const auto& [replica, version] : op.read_versions) {
    if (version < op.read_timestamp) {
      mismatch = true;
      break;
    }
  }
  if (mismatch) {
    // Blocking flavour: an observed stale responder is repaired before the
    // read returns (the client's value is already the winning version, so
    // the repair write cannot change this read's result).
    for (const auto& [replica, version] : op.read_versions) {
      if (version < op.read_timestamp) {
        SendReplicaWrite(replica, op.key, op.read_value, op.read_timestamp);
        ++stats_.read_repairs;
      }
    }
    return;
  }
  if (deps_.read_repair_chance <= 0.0) {
    return;
  }
  // Background flavour: every responder agreed, but replicas that never
  // answered may be behind. Probabilistically push the winning version to
  // them (deterministic draw: one per mismatch-free successful read).
  if (repair_rng_.UniformDouble() >= deps_.read_repair_chance) {
    return;
  }
  for (NodeId target : op.targets) {
    bool responded = false;
    for (const auto& [replica, version] : op.read_versions) {
      if (replica == target) {
        responded = true;
        break;
      }
    }
    if (!responded) {
      SendReplicaWrite(target, op.key, op.read_value, op.read_timestamp);
      ++stats_.read_repairs;
    }
  }
}

void KvService::StreamRepairKeys(
    NodeId target, std::vector<std::pair<uint64_t, int64_t>> keys,
    std::function<void(int64_t, int64_t)> done) {
  auto items = std::make_shared<std::vector<std::pair<uint64_t, int64_t>>>(
      std::move(keys));
  auto payloads =
      std::make_shared<std::vector<std::shared_ptr<KvRequestPayload>>>();
  deps_.stage->Submit(
      "kv.repair-stream",
      [this, items, payloads] {
        WorkUnits work = 0;
        for (const auto& [key, ts] : *items) {
          WorkUnits read_work = 0;
          auto value = storage_->Get(key, &read_work);
          work += read_work + 20;
          if (!value.has_value()) {
            continue;  // the tree was ahead of storage; nothing to send
          }
          auto req = std::make_shared<KvRequestPayload>();
          req->op_id = 0;  // fire-and-forget, like hint replay
          req->key = key;
          req->value = *std::move(value);
          // The CURRENT version, not the hashed one: if a foreground write
          // landed since the hashes were compared, the newer version is the
          // better repair and LWW keeps it correct either way.
          req->timestamp = storage_->TimestampOf(key);
          payloads->push_back(std::move(req));
        }
        return work;
      },
      [this, target, payloads, done = std::move(done)] {
        if (down_) {
          if (done) {
            done(0, 0);
          }
          return;
        }
        int64_t bytes = 0;
        for (auto& req : *payloads) {
          bytes += static_cast<int64_t>(req->SizeBytes());
          deps_.transport->Send(deps_.self, target, kKvRepairStreamWrite,
                                std::move(req));
        }
        if (done) {
          done(bytes, static_cast<int64_t>(payloads->size()));
        }
      });
}

void KvService::OnCrash() {
  down_ = true;
  if (wal_sync_timer_ != kInvalidTimer) {
    deps_.clock->CancelTimer(wal_sync_timer_);
    wal_sync_timer_ = kInvalidTimer;
  }
  // Un-acked group-commit candidates die with the process: their coordinators
  // never see an ack, which is exactly why losing the unsynced tail is safe.
  pending_acks_.clear();
  // The hint queue is volatile coordinator state.
  hints_.clear();
  total_hints_ = 0;
  hint_bytes_ = 0;
  if (deps_.wal_enabled) {
    stats_.wal_lost_records += wal_.DropUnsynced();
    // Process memory is gone; only the durable WAL prefix survives.
    storage_ = std::make_unique<StorageEngine>();
  }
  if (repair_ != nullptr) {
    // Active sessions die with the process (counted as aborted); the Merkle
    // tree follows the storage engine's fate.
    repair_->Stop();
    if (deps_.wal_enabled) {
      repair_->ClearTree();
    }
  }
  // The machine's ReleaseAll dropped our "kv-storage" charge with the rest.
  charged_bytes_ = 0;
}

void KvService::OnRestart() {
  down_ = false;
  if (deps_.wal_enabled) {
    KvWal::RecoverResult recovered = KvWal::Recover(wal_.DurableImage());
    CHECK(recovered.damage.ok())
        << "own durable WAL failed recovery:" << recovered.damage.ToString();
    storage_ = std::make_unique<StorageEngine>();
    for (const KvWal::Record& rec : recovered.records) {
      storage_->Put(rec.key, rec.value, rec.timestamp);
      if (repair_ != nullptr) {
        repair_->OnWriteApplied(rec.key, rec.timestamp);
      }
    }
    stats_.wal_recovered_records +=
        static_cast<int64_t>(recovered.records.size());
  }
  if (repair_ != nullptr) {
    repair_->Start();
  }
  MaybeRecharge();
}

void KvService::MaybeRecharge() {
  if (!deps_.charge) {
    return;
  }
  int64_t total = storage_->ApproxBytes() + hint_bytes_;
  if (deps_.wal_enabled) {
    total += wal_.total_bytes();
  }
  if (repair_ != nullptr) {
    total += repair_->ApproxBytes();
  }
  int64_t delta = total - charged_bytes_;
  if (delta != 0) {
    charged_bytes_ = total;
    deps_.charge(delta);
  }
}

}  // namespace scalecheck
