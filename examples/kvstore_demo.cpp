// User-visible impact: the quorum KV data path during a flap storm.
//
// §2: the C3831 instability "makes some data not reachable by the users" —
// coordinators skip replicas their failure detector has convicted, so
// operations die UNAVAILABLE even though every replica process is healthy.
//
// We run client load against a colocated 192-node cluster twice: once in
// steady state, once while a decommission triggers the cubic pending-range
// storm (basic colocation amplifies it at this scale, like a cheap test
// box would). Compare the unavailable fractions.

#include <cstdio>

#include "src/cluster/cluster.h"
#include "src/scalecheck/bug_catalog.h"
#include "src/scalecheck/scale_check.h"

using namespace scalecheck;

namespace {

RunResult RunWithLoad(WorkloadKind kind) {
  BugSpec bug = BugCatalog::Get("C3831");
  ClusterConfig config = bug.MakeConfig(192, RunMode::kColocated, 1717);
  config.enable_kv = true;

  WorkloadSpec wl = bug.MakeWorkload(192);
  wl.kind = kind;
  wl.horizon = VirtualDuration::Seconds(240);

  Cluster::Options options;
  options.config = config;
  options.workload = wl;
  options.kv_ops_per_second = 150.0;
  Cluster cluster(std::move(options));
  return cluster.Run();
}

}  // namespace

int main() {
  std::printf("=== data-path impact of a control-plane scalability bug ===\n\n");

  std::printf("[1/2] steady state, 192 colocated nodes, 150 ops/s...\n");
  RunResult steady = RunWithLoad(WorkloadKind::kSteadyState);
  std::printf("[2/2] same cluster, decommission triggers the C3831 storm...\n\n");
  RunResult storm = RunWithLoad(WorkloadKind::kDecommission);

  auto report = [](const char* label, const RunResult& r) {
    int64_t total = r.kv_ok + r.kv_unavailable + r.kv_timeout;
    std::printf("%-14s ops=%-7lld ok=%-7lld unavailable=%-6lld timeout=%-5lld "
                "p99=%-10s flaps=%lld\n",
                label, static_cast<long long>(total), static_cast<long long>(r.kv_ok),
                static_cast<long long>(r.kv_unavailable),
                static_cast<long long>(r.kv_timeout),
                r.kv_latency_p99.ToString().c_str(), static_cast<long long>(r.flaps));
  };
  report("steady:", steady);
  report("decommission:", storm);

  double steady_bad =
      static_cast<double>(steady.kv_unavailable + steady.kv_timeout) /
      std::max<int64_t>(1, steady.kv_ok + steady.kv_unavailable + steady.kv_timeout);
  double storm_bad =
      static_cast<double>(storm.kv_unavailable + storm.kv_timeout) /
      std::max<int64_t>(1, storm.kv_ok + storm.kv_unavailable + storm.kv_timeout);
  std::printf("\nfailed-operation fraction: steady %.2f%% vs storm %.2f%%\n",
              steady_bad * 100.0, storm_bad * 100.0);
  std::printf("Every replica stayed up the whole time — the outage is pure failure-\n"
              "detector collateral from the scale-dependent computation.\n");
  return 0;
}
