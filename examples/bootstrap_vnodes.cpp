// CASSANDRA-6127: path-dependent scalability bugs.
//
// The fresh-ring construction (O(E^2) with linear scans) is only executed
// when a cluster bootstraps FROM SCRATCH — an established cluster that
// scales out never reaches that code. §5: "in C6127, the last O(N^2) loop is
// only exercised if the cluster bootstraps from scratch", which is why the
// finder must report reachable paths, and why test *workload* selection is
// part of scale-checking.
//
// This demo profiles both workloads and shows which calculator paths each
// one reaches, then reproduces the fresh-bootstrap cost growth.

#include <cstdio>
#include <map>
#include <string>

#include "src/cluster/cluster.h"
#include "src/scalecheck/scale_check.h"

using namespace scalecheck;

namespace {

// Runs one workload and returns invocation counts per calculator path.
std::map<std::string, int64_t> ProfilePaths(WorkloadKind kind, int nodes) {
  ClusterConfig config;
  config.initial_nodes = nodes;
  config.vnodes_per_node = 8;
  config.calc_version = CalcVersion::kV3C3881Fix;  // post-fix era, as in C6127
  config.run_mode = RunMode::kRealScale;
  config.seed = 77;

  WorkloadSpec wl;
  wl.kind = kind;
  wl.joining_nodes = kind == WorkloadKind::kScaleOut ? nodes / 4 : 0;
  wl.horizon = VirtualDuration::Seconds(240);

  std::map<std::string, int64_t> by_path;
  Cluster::Options options;
  options.config = config;
  options.workload = wl;
  // The profile hook tells us which registered function each invocation hit.
  Cluster* cluster_ptr = nullptr;
  options.profile_hook = [&by_path, &cluster_ptr](PilFunctionId fn, int64_t ops,
                                                  size_t entries) {
    const PilFunctionInfo* info = cluster_ptr->registry().Find(fn);
    if (info != nullptr) {
      ++by_path[info->name];
    }
  };
  Cluster cluster(std::move(options));
  cluster_ptr = &cluster;
  cluster.Run();
  return by_path;
}

}  // namespace

int main() {
  std::printf("=== C6127: the code path only a fresh bootstrap reaches ===\n\n");

  for (WorkloadKind kind : {WorkloadKind::kScaleOut, WorkloadKind::kBootstrapFresh}) {
    std::printf("workload %s at 24 nodes:\n", WorkloadKindName(kind));
    auto paths = ProfilePaths(kind, 24);
    bool fresh_reached = false;
    for (const auto& [name, count] : paths) {
      std::printf("  %-32s invoked %lld times\n", name.c_str(),
                  static_cast<long long>(count));
      if (name.find("freshRingConstruction") != std::string::npos) {
        fresh_reached = true;
      }
    }
    std::printf("  -> fresh-ring construction %s\n\n",
                fresh_reached ? "REACHED (the C6127 path)" : "never reached");
  }

  std::printf("Fresh-bootstrap cost growth (the O(E^2) construction, E = N*P):\n");
  auto calc = MakeCalculator(CalcVersion::kBootstrapC6127);
  std::printf("%-8s %-12s %s\n", "#nodes", "entries", "single construction");
  for (int n : {32, 64, 128, 256, 512}) {
    TokenRing empty;
    CalcInput input;
    input.ring = &empty;
    input.rf = 3;
    for (NodeId id = 0; id < n; ++id) {
      input.changes.push_back(
          PendingChange{id, ChangeKind::kJoining, GenerateTokens(id, 16, 9)});
    }
    VirtualDuration d = VirtualDuration::FromSecondsF(
        static_cast<double>(calc->ModelWork(input)) / 1e9);
    std::printf("%-8d %-12d %s\n", n, n * 16, d.ToString().c_str());
  }
  std::printf("\nAt 500+ nodes each construction takes minutes — the C6127 customer\n"
              "report — yet no scale-out test of an existing cluster would see it.\n");
  return 0;
}
