// Quickstart: scale-check a known scalability bug on "one machine".
//
// This walks the whole Figure 2 pipeline for bug CASSANDRA-3831 at 64 nodes:
//   1. real-scale baseline (what an expensive 64-machine test would show)
//   2. basic colocation (cheap but inaccurate)
//   3. memoization run (one-time, colocated, records input/output/time)
//   4. PIL-infused replay (fast AND accurate)
//
// Build: cmake -B build -G Ninja && cmake --build build
// Run:   ./build/examples/quickstart

#include <cstdio>

#include "src/common/logging.h"
#include "src/scalecheck/bug_catalog.h"
#include "src/scalecheck/scale_check.h"

using namespace scalecheck;

int main() {
  SetLogLevel(LogLevel::kWarning);

  // A bug scenario = calculator generation + threading/locking placement +
  // vnode count + triggering workload. "C3831" is the paper's cubic
  // pending-range calculation triggered by decommissioning a node.
  BugSpec bug = BugCatalog::Get("C3831");
  std::printf("Scale-checking %s: %s\n\n", bug.id.c_str(), bug.description.c_str());

  const int kNodes = 64;
  ScaleCheckRunner runner(bug);

  std::printf("[1/3] real-scale baseline at N=%d...\n", kNodes);
  RunResult real = runner.RunReal(kNodes);
  std::printf("      %s\n\n", real.Summary().c_str());

  std::printf("[2/3] basic colocation on one 16-core machine...\n");
  RunResult colo = runner.RunColo(kNodes);
  std::printf("      %s\n\n", colo.Summary().c_str());

  std::printf("[3/3] scale check: memoize once, then PIL replay...\n");
  ScaleCheckResult full = runner.RunFull(kNodes);
  std::printf("      memoize: %s\n", full.memoize.Summary().c_str());
  std::printf("      replay:  %s\n\n", full.replay.Summary().c_str());

  std::printf("flaps observed:   Real=%lld  Colo=%lld  SC+PIL=%lld\n",
              static_cast<long long>(full.real.flaps),
              static_cast<long long>(full.colo.flaps),
              static_cast<long long>(full.replay.flaps));
  std::printf("replay error vs real: %.0f%%   colo error vs real: %.0f%%\n",
              full.replay_flap_error * 100.0, full.colo_flap_error * 100.0);
  std::printf("memoization DB: %llu records; replay hit rate %.0f%%\n\n",
              static_cast<unsigned long long>(full.memo.records),
              100.0 * (full.replay.pil.replay_hits == 0
                           ? 0.0
                           : static_cast<double>(full.replay.pil.replay_hits) /
                                 static_cast<double>(full.replay.pil.replay_hits +
                                                     full.replay.pil.replay_misses)));

  std::printf("At 64 nodes nothing flaps anywhere — run the fig3a_c3831 bench to see\n"
              "the symptom surface at 256 nodes while 128-node testing stays green.\n");
  return 0;
}
